package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// The overwrite guard shared by every artifact-writing mode
// (-benchjson, -events, -service).  The BENCH_*.json files are the
// repo's scaling and latency evidence; a single-core measurement
// (speedup_valid:false) silently replacing a multi-core one — someone
// regenerating on a 1-core laptop or CI runner — would erase it.
// -force overrides for deliberate regeneration.

// artifactValidity scans a decoded JSON value for the speedup_valid
// marker, wherever the artifact keeps it: top-level (BENCH_parallel,
// BENCH_service) or nested (BENCH_events keeps it under "replication").
// It returns the marker's value, the host_cores recorded beside it, and
// whether a marker was found at all.  Maps are walked in sorted key
// order so the first hit is deterministic.
func artifactValidity(v any) (valid bool, cores int, found bool) {
	switch node := v.(type) {
	case map[string]any:
		if sv, ok := node["speedup_valid"].(bool); ok {
			if hc, ok := node["host_cores"].(float64); ok {
				cores = int(hc)
			}
			return sv, cores, true
		}
		keys := make([]string, 0, len(node))
		for k := range node {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if v2, c2, ok := artifactValidity(node[k]); ok {
				return v2, c2, true
			}
		}
	case []any:
		for _, e := range node {
			if v2, c2, ok := artifactValidity(e); ok {
				return v2, c2, true
			}
		}
	}
	return false, 0, false
}

// guardArtifactOverwrite refuses to clobber a multi-core artifact at
// path with a measurement whose own validity marker is false.  Call it
// with the next run's validity BEFORE spending minutes measuring: for
// every mode the marker is known from the host alone.
func guardArtifactOverwrite(path string, nextValid, force bool) error {
	if nextValid || force {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil // no prior artifact (or unreadable): nothing to protect
	}
	var prev any
	if json.Unmarshal(data, &prev) != nil {
		return nil
	}
	valid, cores, found := artifactValidity(prev)
	if !found || !valid {
		return nil
	}
	return fmt.Errorf("refusing to overwrite %s: existing record was measured on %d cores (speedup_valid:true) and this run is single-core; rerun with -force to replace it",
		path, cores)
}

// writeArtifactJSON marshals v, re-checks the overwrite guard against
// v's own validity marker (cheap insurance for callers that probed
// before measuring), and writes the artifact with a trailing newline.
func writeArtifactJSON(path string, v any, force bool) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	var decoded any
	if json.Unmarshal(data, &decoded) == nil {
		if nextValid, _, found := artifactValidity(decoded); found {
			if gerr := guardArtifactOverwrite(path, nextValid, force); gerr != nil {
				return gerr
			}
		}
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
