package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"greednet/internal/chaos"
	"greednet/internal/selfish"
	"greednet/internal/service"
)

// The -service mode: a deterministic load harness for the greedd
// service.  It boots the service in-process on a loopback listener,
// drives it with hill-climbing selfish agents (the closed control
// loop) interleaved with all four service-level chaos injectors
// (slow-client, stalled-connection, malformed-payload, deadline-skew),
// and writes BENCH_service.json with request-latency percentiles, shed
// accounting, cache effectiveness, and the drain verdict.  The gate
// fails on the failure modes the service exists to prevent: queue
// growth past its bound, rejections without a typed reason, handler
// panics, and goroutines leaked across the drain.

// serviceReport is the BENCH_service.json artifact.
type serviceReport struct {
	Clients int `json:"clients"`
	Rounds  int `json:"rounds"`
	Drivers int `json:"drivers"`

	Requests     int64            `json:"requests"`
	Succeeded    int64            `json:"succeeded"`
	P50MS        float64          `json:"p50_ms"`
	P95MS        float64          `json:"p95_ms"`
	P99MS        float64          `json:"p99_ms"`
	ShedByReason map[string]int64 `json:"shed_by_reason"`
	ShedRate     float64          `json:"shed_rate"`
	// UntypedSheds counts rejections that arrived without one of the
	// service's typed reasons — the gate's zero-tolerance counter.
	UntypedSheds int64 `json:"untyped_sheds"`

	SolvesRun int64 `json:"solves_run"`
	CacheHits int64 `json:"cache_hits"`
	// ClassCacheHits is the subset of CacheHits served by the
	// class-canonical (identity-free) cache — the coalescing win over
	// the historical per-user key, recorded so the hit-rate change is
	// visible artifact to artifact.
	ClassCacheHits int64   `json:"class_cache_hits"`
	Coalesced      int64   `json:"coalesced"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	Panics         int64   `json:"panics"`

	QueueCap int `json:"queue_cap"`
	QueueMax int `json:"queue_max"`

	StalledConns     int   `json:"stalled_conns"`
	DrainNS          int64 `json:"drain_ns"`
	DrainClean       bool  `json:"drain_clean"`
	LeakedGoroutines int   `json:"leaked_goroutines"`

	HostCores int `json:"host_cores"`
	// SpeedupValid mirrors the other BENCH artifacts for the shared
	// overwrite guard: single-core latency percentiles are not
	// comparable with multi-core ones and must not replace them.
	SpeedupValid bool `json:"speedup_valid"`
}

// gateService returns the regression messages for a report, empty when
// the gate passes.  Pure — unit tests feed it synthetic reports with
// injected regressions.
func gateService(r serviceReport) []string {
	var fails []string
	if r.Requests == 0 {
		fails = append(fails, "harness made no requests")
		return fails
	}
	if r.QueueMax > r.QueueCap {
		fails = append(fails, fmt.Sprintf(
			"queue grew to %d past its %d bound (shedding failed to hold the line)",
			r.QueueMax, r.QueueCap))
	}
	if r.UntypedSheds > 0 {
		fails = append(fails, fmt.Sprintf(
			"%d rejections carried no typed reason", r.UntypedSheds))
	}
	if r.Panics > 0 {
		fails = append(fails, fmt.Sprintf("%d handler panics under load", r.Panics))
	}
	if !r.DrainClean {
		fails = append(fails, "service did not drain cleanly on shutdown")
	}
	if r.LeakedGoroutines > 0 {
		fails = append(fails, fmt.Sprintf(
			"%d goroutines leaked across the drain", r.LeakedGoroutines))
	}
	if r.Succeeded == 0 {
		fails = append(fails, "no request ever succeeded (the control loop never closed)")
	}
	if r.P99MS <= 0 {
		fails = append(fails, "no latency was measured")
	}
	return fails
}

// timingTransport measures every round trip into its driver's sample
// slice.  Each driver owns one instance, so no locking.
type timingTransport struct {
	inner *http.Transport
	lat   *[]float64 // milliseconds
}

func (t *timingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	start := time.Now()
	resp, err := t.inner.RoundTrip(req)
	*t.lat = append(*t.lat, float64(time.Since(start).Nanoseconds())/1e6)
	return resp, err
}

// serviceDriver runs one slice of the client population on its own
// goroutine: each of its clients is a hill-climbing agent plus a chaos
// schedule drawn from the driver's seeded injector.
type serviceDriver struct {
	base    string
	tcpAddr string
	rounds  int
	agents  []*selfish.Agent
	inj     *chaos.ServiceInjector
	hc      *http.Client
	tr      *timingTransport

	lat      []float64
	requests int64
	success  int64
	shed     map[string]int64
	untyped  int64
	stalled  []net.Conn
	err      error
}

func newServiceDriver(base string, rounds int, seed int64) *serviceDriver {
	d := &serviceDriver{
		base:    base,
		tcpAddr: base[len("http://"):],
		rounds:  rounds,
		shed:    make(map[string]int64),
		inj: chaos.NewServiceInjector(seed, chaos.ServiceInjector{
			SlowEvery:   40,
			SlowDelay:   2 * time.Millisecond,
			StallProb:   0.01,
			MalformProb: 0.05,
			SkewProb:    0.05,
		}),
	}
	d.tr = &timingTransport{
		inner: &http.Transport{MaxIdleConnsPerHost: 4},
		lat:   &d.lat,
	}
	d.hc = &http.Client{Transport: d.tr, Timeout: 30 * time.Second}
	return d
}

// addAgent registers one climbing client with this driver.  Rates are
// scaled so a population of n greedy-but-retreating agents can actually
// be admitted under the protection bound (each must keep n·r < 1).
func (d *serviceDriver) addAgent(id string, population int, seed int64) {
	scale := 1 / float64(population)
	d.agents = append(d.agents, selfish.NewAgent(d.base, id, d.hc, selfish.AgentOptions{
		Rate0:      0.4 * scale,
		Step0:      0.1 * scale,
		Lo:         0.01 * scale,
		Hi:         0.95,
		DeadlineMS: 25,
		Seed:       seed,
	}))
}

// run drives every agent through every round.  One chaos decision is
// drawn per agent-round: a stalled connection or a malformed payload
// replaces that round's traffic (the client misbehaved instead of
// participating); a skewed deadline adds a poisoned solve on top of the
// normal step.
func (d *serviceDriver) run(ctx context.Context, wg *sync.WaitGroup) {
	defer wg.Done()
	for round := 0; round < d.rounds; round++ {
		if ctx.Err() != nil {
			return
		}
		for _, a := range d.agents {
			if delay := d.inj.Delay(); delay > 0 {
				time.Sleep(delay)
			}
			if d.inj.Stall() {
				d.stallConn()
				continue
			}
			if body := d.inj.MutateBody(d.updateBody(a)); !bytes.Equal(body, d.updateBody(a)) {
				d.rawPost("/v1/update", body)
				continue
			}
			if ms := d.inj.SkewDeadline(25); ms != 25 {
				// A skew-clocked client retries hard: the volley both
				// exercises the typed deadline rejection and presses the
				// per-client token bucket into overload shedding.
				skew, merr := json.Marshal(service.SolveRequest{Client: a.ID(), DeadlineMS: ms})
				if merr == nil {
					for burst := 0; burst < 4; burst++ {
						d.rawPost("/v1/solve", skew)
					}
				}
			}
			res, err := a.Step(ctx)
			d.requests += 3 // update + solve + congestion legs
			if err != nil {
				d.err = err
				return
			}
			if res.Shed == "" {
				d.success++
			} else {
				d.recordShed(res.Shed)
			}
		}
	}
}

func (d *serviceDriver) updateBody(a *selfish.Agent) []byte {
	body, err := json.Marshal(service.UpdateRequest{Client: "chaos", Rate: a.Rate()})
	if err != nil {
		return []byte(`{"client":"chaos","rate":0.0001}`)
	}
	return body
}

// recordShed tallies a rejection reason, counting anything outside the
// service's typed vocabulary as untyped.
func (d *serviceDriver) recordShed(reason string) {
	switch reason {
	case service.ReasonAdmission, service.ReasonOverload, service.ReasonDeadline,
		service.ReasonMalformed, service.ReasonDraining, service.ReasonPanic:
		d.shed[reason]++
	default:
		d.untyped++
	}
}

// rawPost sends a raw (possibly corrupt) body and tallies the typed
// rejection it must come back with.
func (d *serviceDriver) rawPost(path string, body []byte) {
	d.requests++
	resp, err := d.hc.Post(d.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		d.untyped++
		return
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode/100 == 2 {
		// A mutation can survive as valid JSON (or a skewed-but-positive
		// budget can be met); success is not a shed.
		d.success++
		return
	}
	var rej service.Rejection
	if json.NewDecoder(resp.Body).Decode(&rej) != nil {
		d.untyped++
		return
	}
	d.recordShed(rej.Reason)
}

// stallConn opens a connection, sends an incomplete request, and walks
// away — the half-open client the server must carry without wedging.
// The connections are closed after the drive so the drain check proves
// their handlers exit.
func (d *serviceDriver) stallConn() {
	conn, err := net.DialTimeout("tcp", d.tcpAddr, time.Second)
	if err != nil {
		return
	}
	_, _ = conn.Write([]byte("POST /v1/update HTTP/1.1\r\nHost: greedd\r\nContent-Length: 512\r\n\r\n{\"client\":"))
	d.stalled = append(d.stalled, conn)
}

// percentile returns the p-th percentile (0 < p ≤ 1) of sorted samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// writeServiceJSON boots the service, runs the chaos load drive, writes
// BENCH_service.json, and returns exit code 1 when the gate fails.
func writeServiceJSON(path string, clients, rounds int, seed int64, force bool) (int, error) {
	if err := guardArtifactOverwrite(path, runtime.GOMAXPROCS(0) > 1, force); err != nil {
		return 0, err
	}

	baseline := runtime.NumGoroutine()

	// MaxClients is deliberately far below the driven population: the
	// harness's point is a thousand clients pressing against a service
	// sized for a hundred, so the admission, overload, and deadline shed
	// paths all fire for real while the admitted core still closes its
	// control loop.
	svc := service.New(service.Options{
		Workers:      2,
		QueueCap:     64,
		MaxClients:   128,
		SolveTimeout: 250 * time.Millisecond,
		// Tight enough that a chaos burst (skewed solve stacked on a
		// normal step) can trip a client's bucket, loose enough that the
		// steady control loop stays admitted.
		Burst:  4,
		Refill: 100,
	})
	svc.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	//lint:fanout http-serve runs the harness listener's accept loop; exits when the drive completes and Shutdown closes the listener, reporting into the buffered serveErr channel
	go func() { serveErr <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	nDrivers := runtime.GOMAXPROCS(0)
	if nDrivers > clients {
		nDrivers = clients
	}
	drivers := make([]*serviceDriver, nDrivers)
	for i := range drivers {
		drivers[i] = newServiceDriver(base, rounds, seed+int64(1000+i))
	}
	for i := 0; i < clients; i++ {
		drivers[i%nDrivers].addAgent(fmt.Sprintf("c%04d", i), clients, seed+int64(i))
	}

	ctx := context.Background()
	start := time.Now()
	var wg sync.WaitGroup
	for _, d := range drivers {
		wg.Add(1)
		//lint:fanout load-driver drives its slice of agents through the chaos schedule; exits when its rounds complete, joined via wg.Wait below
		go d.run(ctx, &wg)
	}
	wg.Wait()
	driveNS := time.Since(start).Nanoseconds()

	// Server-side counters before shutdown (drain rejections would
	// otherwise pollute the shed accounting).
	var stats service.Stats
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return 0, err
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	_ = resp.Body.Close()
	if err != nil {
		return 0, err
	}

	// The misbehaving clients go away; the drain must release their
	// handlers and every worker.
	report := serviceReport{
		Clients: clients, Rounds: rounds, Drivers: nDrivers,
		QueueCap: 64, QueueMax: stats.QueueMax,
		SolvesRun: stats.SolvesRun, CacheHits: stats.CacheHits,
		ClassCacheHits: stats.ClassCacheHits,
		Coalesced:      stats.Coalesced, Panics: stats.Panics,
		ShedByReason: make(map[string]int64),
		HostCores:    runtime.GOMAXPROCS(0),
		SpeedupValid: runtime.GOMAXPROCS(0) > 1,
	}
	var all []float64
	for _, d := range drivers {
		if d.err != nil {
			return 0, fmt.Errorf("driver error: %w", d.err)
		}
		report.Requests += d.requests
		report.Succeeded += d.success
		report.UntypedSheds += d.untyped
		report.StalledConns += len(d.stalled)
		for reason, n := range d.shed {
			report.ShedByReason[reason] += n
		}
		all = append(all, d.lat...)
		for _, conn := range d.stalled {
			_ = conn.Close()
		}
		d.tr.inner.CloseIdleConnections()
	}
	sort.Float64s(all)
	report.P50MS = percentile(all, 0.50)
	report.P95MS = percentile(all, 0.95)
	report.P99MS = percentile(all, 0.99)
	var sheds int64
	for _, n := range report.ShedByReason {
		sheds += n
	}
	sheds += report.UntypedSheds
	report.ShedRate = float64(sheds) / float64(report.Requests)
	if stats.Solves > 0 {
		report.CacheHitRate = float64(stats.CacheHits) / float64(stats.Solves)
	}

	drainStart := time.Now()
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	httpErr := httpSrv.Shutdown(sctx)
	svcErr := svc.Shutdown(sctx)
	<-serveErr // accept loop has exited
	report.DrainNS = time.Since(drainStart).Nanoseconds()
	report.DrainClean = httpErr == nil && svcErr == nil

	// Give trailing goroutines (connection handlers observing their
	// closed sockets) a beat to exit before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		report.LeakedGoroutines = n - baseline
	}

	fmt.Printf("service: %d clients × %d rounds over %d drivers in %v\n",
		clients, rounds, nDrivers, time.Duration(driveNS).Round(time.Millisecond))
	fmt.Printf("service: %d requests, p50 %.2fms p95 %.2fms p99 %.2fms, shed %.1f%% %v, cache hit %.1f%% (%d via class coalescing), %d coalesced, queue max %d/%d\n",
		report.Requests, report.P50MS, report.P95MS, report.P99MS,
		100*report.ShedRate, report.ShedByReason, 100*report.CacheHitRate,
		report.ClassCacheHits, report.Coalesced, report.QueueMax, report.QueueCap)
	fmt.Printf("service: drain %v clean=%v, %d stalled conns released, %d goroutines leaked\n",
		time.Duration(report.DrainNS).Round(time.Millisecond), report.DrainClean,
		report.StalledConns, report.LeakedGoroutines)

	if err := writeArtifactJSON(path, report, force); err != nil {
		return 0, err
	}
	fmt.Printf("service bench -> %s\n", path)

	code := 0
	for _, msg := range gateService(report) {
		fmt.Printf("  REGRESSION(%s)\n", msg)
		code = 1
	}
	return code, nil
}
