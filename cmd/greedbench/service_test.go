package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// cleanServiceReport is a report every gate accepts; tests inject one
// regression at a time into copies of it.
func cleanServiceReport() serviceReport {
	return serviceReport{
		Clients: 1000, Rounds: 2, Drivers: 4,
		Requests: 6000, Succeeded: 3000,
		P50MS: 0.1, P95MS: 1.5, P99MS: 3.0,
		ShedByReason: map[string]int64{"admission": 1500, "deadline": 50, "malformed": 80, "overload": 3},
		ShedRate:     0.3,
		SolvesRun:    200, CacheHits: 100, Coalesced: 40, CacheHitRate: 0.3,
		QueueCap: 64, QueueMax: 12,
		StalledConns: 20, DrainClean: true,
		HostCores: 4, SpeedupValid: true,
	}
}

func TestGateServiceCleanReportPasses(t *testing.T) {
	if fails := gateService(cleanServiceReport()); len(fails) != 0 {
		t.Fatalf("clean report failed the gate: %v", fails)
	}
}

func TestGateServiceCatchesQueueGrowth(t *testing.T) {
	r := cleanServiceReport()
	r.QueueMax = r.QueueCap + 1
	fails := gateService(r)
	if len(fails) != 1 || !strings.Contains(fails[0], "queue") {
		t.Fatalf("want one queue-growth failure, got %v", fails)
	}
}

func TestGateServiceCatchesUntypedSheds(t *testing.T) {
	r := cleanServiceReport()
	r.UntypedSheds = 1
	fails := gateService(r)
	if len(fails) != 1 || !strings.Contains(fails[0], "typed") {
		t.Fatalf("want one untyped-shed failure, got %v", fails)
	}
}

func TestGateServiceCatchesPanics(t *testing.T) {
	r := cleanServiceReport()
	r.Panics = 2
	fails := gateService(r)
	if len(fails) != 1 || !strings.Contains(fails[0], "panic") {
		t.Fatalf("want one panic failure, got %v", fails)
	}
}

func TestGateServiceCatchesDirtyDrain(t *testing.T) {
	r := cleanServiceReport()
	r.DrainClean = false
	fails := gateService(r)
	if len(fails) != 1 || !strings.Contains(fails[0], "drain") {
		t.Fatalf("want one drain failure, got %v", fails)
	}
}

func TestGateServiceCatchesLeakedGoroutines(t *testing.T) {
	r := cleanServiceReport()
	r.LeakedGoroutines = 3
	fails := gateService(r)
	if len(fails) != 1 || !strings.Contains(fails[0], "goroutine") {
		t.Fatalf("want one leak failure, got %v", fails)
	}
}

func TestGateServiceCatchesDeadLoop(t *testing.T) {
	r := cleanServiceReport()
	r.Succeeded = 0
	fails := gateService(r)
	if len(fails) != 1 || !strings.Contains(fails[0], "control loop") {
		t.Fatalf("want one dead-loop failure, got %v", fails)
	}
}

func TestGateServiceCatchesEmptyRun(t *testing.T) {
	if fails := gateService(serviceReport{}); len(fails) != 1 || !strings.Contains(fails[0], "no requests") {
		t.Fatalf("empty run must fail with exactly the no-requests message, got %v", gateService(serviceReport{}))
	}
}

func TestGateServiceReportsEveryRegression(t *testing.T) {
	r := cleanServiceReport()
	r.QueueMax = 1000
	r.UntypedSheds = 5
	r.LeakedGoroutines = 1
	if fails := gateService(r); len(fails) != 3 {
		t.Fatalf("want all 3 injected regressions reported, got %v", fails)
	}
}

// TestArtifactValidityFindsMarkerAnywhere pins the shared guard's probe
// against the real artifact shapes: top-level (BENCH_parallel,
// BENCH_service) and nested under replication (BENCH_events).
func TestArtifactValidityFindsMarkerAnywhere(t *testing.T) {
	cases := []struct {
		name  string
		v     any
		valid bool
		cores int
		found bool
	}{
		{"bench-record", benchRecord{HostCores: 8, SpeedupValid: true}, true, 8, true},
		{"service-report", cleanServiceReport(), true, 4, true},
		{"events-report", eventsReport{Replication: eventsReplicationRecord{HostCores: 2, SpeedupValid: true}}, true, 2, true},
		{"events-single-core", eventsReport{Replication: eventsReplicationRecord{HostCores: 1}}, false, 1, true},
		{"no-marker", map[string]any{"hello": "world"}, false, 0, false},
	}
	for _, c := range cases {
		data, err := json.Marshal(c.v)
		if err != nil {
			t.Fatal(err)
		}
		var decoded any
		if err := json.Unmarshal(data, &decoded); err != nil {
			t.Fatal(err)
		}
		valid, cores, found := artifactValidity(decoded)
		if valid != c.valid || cores != c.cores || found != c.found {
			t.Errorf("%s: got (valid=%v cores=%d found=%v), want (%v %d %v)",
				c.name, valid, cores, found, c.valid, c.cores, c.found)
		}
	}
}

// TestGuardedWriteSharedAcrossModes drives the one write helper with
// each artifact shape: a single-core events or service run must refuse
// to clobber its multi-core predecessor, exactly like -benchjson.
func TestGuardedWriteSharedAcrossModes(t *testing.T) {
	dir := t.TempDir()

	// Multi-core events artifact on disk; single-core rerun refused.
	evPath := dir + "/BENCH_events.json"
	multi := eventsReport{Replication: eventsReplicationRecord{HostCores: 4, SpeedupValid: true}}
	if err := writeArtifactJSON(evPath, multi, false); err != nil {
		t.Fatalf("first write: %v", err)
	}
	single := eventsReport{Replication: eventsReplicationRecord{HostCores: 1, SpeedupValid: false}}
	if err := writeArtifactJSON(evPath, single, false); err == nil {
		t.Fatal("single-core events run overwrote a multi-core artifact")
	}
	if err := guardArtifactOverwrite(evPath, false, false); err == nil {
		t.Fatal("pre-measurement probe let a single-core events run through")
	}
	if err := writeArtifactJSON(evPath, single, true); err != nil {
		t.Fatalf("-force must override: %v", err)
	}

	// Same contract for the service report.
	svcPath := dir + "/BENCH_service.json"
	svcMulti := cleanServiceReport()
	if err := writeArtifactJSON(svcPath, svcMulti, false); err != nil {
		t.Fatalf("first service write: %v", err)
	}
	svcSingle := cleanServiceReport()
	svcSingle.HostCores, svcSingle.SpeedupValid = 1, false
	if err := writeArtifactJSON(svcPath, svcSingle, false); err == nil {
		t.Fatal("single-core service run overwrote a multi-core artifact")
	}

	// The write lands with a trailing newline and round-trips.
	data, err := os.ReadFile(svcPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Fatal("artifact missing trailing newline")
	}
	var back serviceReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if back.HostCores != 4 || !back.SpeedupValid {
		t.Fatalf("surviving artifact should be the multi-core one, got %+v", back)
	}
}

// TestPercentile pins the index arithmetic at the edges.
func TestPercentile(t *testing.T) {
	if p := percentile(nil, 0.99); p != 0 {
		t.Fatalf("empty samples: got %v", p)
	}
	one := []float64{7}
	for _, p := range []float64{0.5, 0.95, 0.99} {
		if got := percentile(one, p); got != 7 {
			t.Fatalf("single sample p%v: got %v", p, got)
		}
	}
	hundred := make([]float64, 100)
	for i := range hundred {
		hundred[i] = float64(i + 1)
	}
	if got := percentile(hundred, 0.50); got != 50 {
		t.Fatalf("p50 of 1..100: got %v", got)
	}
	if got := percentile(hundred, 0.99); got != 99 {
		t.Fatalf("p99 of 1..100: got %v", got)
	}
}
