package main

import (
	"fmt"
	"runtime"
	"testing"

	"greednet/internal/hotpath"
)

// The -classes mode: the class-solver gate.  Each (K, N) scale solves
// the same K-class game with the O(K)-per-step class arithmetic; the
// small scales also run the exact per-user solver on the expanded
// profile, so BENCH_classes.json carries a measured class-vs-exact
// speedup rather than a claim.  Before any timing, the fast arithmetic
// is checked Float64bits-equal to the exact solver at K = N and K = 1
// (the documented bit-equality contract) — the gate never records the
// speed of a solver that drifted off the exact answers.

// classScaleRecord is one (K, N) datapoint in BENCH_classes.json.
type classScaleRecord struct {
	Name string `json:"name"`
	K    int    `json:"k"`
	N    int    `json:"n"`
	// Iters is the solve's round count — deterministic per scale, so a
	// changed count flags an algorithmic change even under the ceiling.
	Iters int `json:"iters"`

	NsPerOp float64 `json:"ns_per_op"`
	// NsCeiling is the gated ceiling: an order of magnitude above a warm
	// commodity-core measurement, catching accidental O(N) behavior
	// without contending with host variance.
	NsCeiling   float64 `json:"ns_ceiling"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`

	// ExactNsPerOp and SpeedupVsExact are present on the scales small
	// enough to time the exact per-user solver on the expansion.
	ExactNsPerOp   float64 `json:"exact_ns_per_op,omitempty"`
	SpeedupVsExact float64 `json:"speedup_vs_exact,omitempty"`
}

// classReport is the BENCH_classes.json artifact.
type classReport struct {
	HostCores int `json:"host_cores"`
	// SpeedupValid feeds the shared artifact overwrite guard.  Every
	// measurement here is single-threaded — the class-vs-exact ratio
	// compares algorithms on one core, not cores against cores — so the
	// record is valid on any host, including single-core runners.
	SpeedupValid bool `json:"speedup_valid"`
	// BitEqual records the pre-timing differential check: fast class
	// arithmetic vs the exact solver at K = N and K = 1.
	BitEqual bool               `json:"bit_equal"`
	Scales   []classScaleRecord `json:"scales"`
}

// gateClasses returns the regression messages for a report, empty when
// the gate passes.  Pure — unit tests feed it synthetic reports with
// injected regressions.
func gateClasses(r classReport) []string {
	var fails []string
	if !r.BitEqual {
		fails = append(fails, "class solver drifted off the exact per-user answers (K=N / K=1 bit-equality)")
	}
	for _, s := range r.Scales {
		if s.NsPerOp > s.NsCeiling {
			fails = append(fails, fmt.Sprintf(
				"scale %s: %.0f ns/op over ceiling %.0f (class solve cost must not scale with N)",
				s.Name, s.NsPerOp, s.NsCeiling))
		}
		if s.AllocsPerOp > 0 {
			fails = append(fails, fmt.Sprintf(
				"scale %s: %d allocs/op (warm class solve must be allocation-free)",
				s.Name, s.AllocsPerOp))
		}
		if s.SpeedupVsExact > 0 && s.SpeedupVsExact < 1 {
			fails = append(fails, fmt.Sprintf(
				"scale %s: class solve %.2fx vs exact — slower than the solver it aggregates",
				s.Name, s.SpeedupVsExact))
		}
	}
	return fails
}

// benchClassScale times one scale's class solve (and, on the comparison
// scales, the exact expanded solve) with testing.Benchmark.
func benchClassScale(s hotpath.ClassScale) (classScaleRecord, error) {
	cb, err := hotpath.NewClassBench(s)
	if err != nil {
		return classScaleRecord{}, err
	}
	res, err := cb.Solve()
	if err != nil {
		return classScaleRecord{}, err
	}
	var rerr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cb.Solve(); err != nil {
				rerr = err
				b.FailNow()
			}
		}
	})
	if rerr != nil {
		return classScaleRecord{}, rerr
	}
	rec := classScaleRecord{
		Name:        s.Name,
		K:           s.K,
		N:           s.N,
		Iters:       res.Iters,
		NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
		NsCeiling:   s.NsCeiling,
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
	}
	if s.ExactCompare {
		xr := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cb.ExactSolve(); err != nil {
					rerr = err
					b.FailNow()
				}
			}
		})
		if rerr != nil {
			return classScaleRecord{}, rerr
		}
		rec.ExactNsPerOp = float64(xr.T.Nanoseconds()) / float64(xr.N)
		rec.SpeedupVsExact = rec.ExactNsPerOp / rec.NsPerOp
	}
	return rec, nil
}

// writeClassesJSON runs the class-solver family, writes
// BENCH_classes.json, prints the human summary, and returns exit code 1
// when the gate fails.
func writeClassesJSON(path string, force bool) (int, error) {
	report := classReport{
		HostCores:    runtime.GOMAXPROCS(0),
		SpeedupValid: true, // single-threaded algorithm ratio: valid on any host
	}
	if err := guardArtifactOverwrite(path, report.SpeedupValid, force); err != nil {
		return 0, err
	}
	if err := hotpath.ClassBitEquality(); err != nil {
		fmt.Printf("classes bit-equality: FAILED: %v\n", err)
	} else {
		report.BitEqual = true
		fmt.Println("classes bit-equality: fast class arithmetic matches exact solver at K=N and K=1")
	}
	for _, s := range hotpath.ClassScales() {
		rec, err := benchClassScale(s)
		if err != nil {
			return 0, err
		}
		report.Scales = append(report.Scales, rec)
		exact := ""
		if rec.SpeedupVsExact > 0 {
			exact = fmt.Sprintf("  exact %12.0f ns/op (%.0fx)", rec.ExactNsPerOp, rec.SpeedupVsExact)
		}
		fmt.Printf("classes %-9s K=%-3d N=%-8d %12.0f ns/op (ceiling %.0e) %3d allocs/op  %d iters%s\n",
			rec.Name, rec.K, rec.N, rec.NsPerOp, rec.NsCeiling, rec.AllocsPerOp, rec.Iters, exact)
	}
	if err := writeArtifactJSON(path, report, force); err != nil {
		return 0, err
	}
	fmt.Printf("classes bench: %d scales -> %s\n", len(report.Scales), path)

	code := 0
	for _, msg := range gateClasses(report) {
		fmt.Printf("  REGRESSION(%s)\n", msg)
		code = 1
	}
	return code, nil
}
