package main

import (
	"fmt"
	"runtime"
	"testing"

	"greednet/internal/des"
	"greednet/internal/hotpath"
)

// The -events mode: the events/sec headline benchmark family.  Each
// population scale runs the calendar-queue engine and its frozen
// container/heap baseline over the IDENTICAL event sequence (the two are
// pinned bit-identical by internal/des's differential suite), so the
// speedup_vs_heap ratio is a pure runtime ratio and travels across
// hosts; absolute events/sec is recorded for trending only.  The gate
// fails the build when a ratio drops under its scale's floor, when the
// warm calendar engine allocates per event, or when a multi-core host
// stops seeing replication-throughput scaling from internal/parallel.

// eventsScaleRecord is one population point in BENCH_events.json.
type eventsScaleRecord struct {
	Name         string `json:"name"`
	Sources      int    `json:"sources"`
	EventsPerRun int64  `json:"events_per_run"`

	CalendarNsPerOp      float64 `json:"calendar_ns_per_op"`
	HeapNsPerOp          float64 `json:"heap_ns_per_op"`
	CalendarEventsPerSec float64 `json:"calendar_events_per_sec"`
	HeapEventsPerSec     float64 `json:"heap_events_per_sec"`

	// SpeedupVsHeap is calendar events/sec over heap events/sec — the
	// machine-independent headline the gate floors.
	SpeedupVsHeap float64 `json:"speedup_vs_heap"`
	RatioFloor    float64 `json:"ratio_floor"`

	// AllocsPerEvent is the two-horizon steady-state measurement; the
	// budget absorbs measurement noise only, not real per-event cost.
	AllocsPerEvent       float64 `json:"allocs_per_event"`
	AllocsPerEventBudget float64 `json:"allocs_per_event_budget"`
}

// eventsReplicationRecord times a batch of independent replications
// through des.RunReplications sequentially and at -workers, validating
// that internal/parallel turns cores into event throughput.
type eventsReplicationRecord struct {
	Replications int   `json:"replications"`
	Workers      int   `json:"workers"`
	HostCores    int   `json:"host_cores"`
	SequentialNS int64 `json:"sequential_ns"`
	ParallelNS   int64 `json:"parallel_ns"`

	// EventsPerSec is the aggregate throughput of the parallel pass.
	EventsPerSec float64 `json:"events_per_sec"`
	Speedup      float64 `json:"speedup"`
	// SpeedupValid mirrors BENCH_parallel.json: on a single-core host
	// the pooled pass cannot physically run in parallel, so Speedup
	// measures scheduling overhead and must not be trended or gated.
	SpeedupValid bool `json:"speedup_valid"`
}

// eventsReport is the BENCH_events.json artifact.
type eventsReport struct {
	Scales      []eventsScaleRecord     `json:"scales"`
	Replication eventsReplicationRecord `json:"replication"`
}

// replicationSpeedupFloor gates the multi-core replication pass: with
// GOMAXPROCS workers on a host where SpeedupValid holds, anything under
// this means the pool stopped scaling.  Deliberately loose — it must
// catch "parallelism broke", not contend with scheduler jitter.
const replicationSpeedupFloor = 1.2

// gateEvents returns the regression messages for a report, empty when
// the gate passes.  Pure — unit tests feed it synthetic reports with
// injected regressions.
func gateEvents(r eventsReport) []string {
	var fails []string
	for _, s := range r.Scales {
		if s.SpeedupVsHeap < s.RatioFloor {
			fails = append(fails, fmt.Sprintf(
				"scale %s: calendar/heap events/sec ratio %.2f under floor %.2f",
				s.Name, s.SpeedupVsHeap, s.RatioFloor))
		}
		if s.AllocsPerEvent > s.AllocsPerEventBudget {
			fails = append(fails, fmt.Sprintf(
				"scale %s: %.4f allocs/event over budget %g (warm event loop must be allocation-free)",
				s.Name, s.AllocsPerEvent, s.AllocsPerEventBudget))
		}
	}
	rep := r.Replication
	if rep.SpeedupValid && rep.Speedup < replicationSpeedupFloor {
		fails = append(fails, fmt.Sprintf(
			"replications: %.2fx speedup at %d workers on %d cores, floor %.1f",
			rep.Speedup, rep.Workers, rep.HostCores, replicationSpeedupFloor))
	}
	return fails
}

// benchEventScale times both engines at one scale with
// testing.Benchmark and measures the steady-state allocation rate.
func benchEventScale(s hotpath.EventScale) (eventsScaleRecord, error) {
	events, err := hotpath.EventRun(s, 1)
	if err != nil {
		return eventsScaleRecord{}, err
	}
	time := func(run func(hotpath.EventScale, float64) (int64, error)) (float64, error) {
		var rerr error
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := run(s, 1); err != nil {
					rerr = err
					b.FailNow()
				}
			}
		})
		if rerr != nil {
			return 0, rerr
		}
		return float64(r.T.Nanoseconds()) / float64(r.N), nil
	}
	calNs, err := time(hotpath.EventRun)
	if err != nil {
		return eventsScaleRecord{}, err
	}
	heapNs, err := time(hotpath.EventRunHeap)
	if err != nil {
		return eventsScaleRecord{}, err
	}
	ape, err := hotpath.EventAllocsPerEvent(s)
	if err != nil {
		return eventsScaleRecord{}, err
	}
	calEps := float64(events) / (calNs / 1e9)
	heapEps := float64(events) / (heapNs / 1e9)
	return eventsScaleRecord{
		Name:                 s.Name,
		Sources:              s.Sources,
		EventsPerRun:         events,
		CalendarNsPerOp:      calNs,
		HeapNsPerOp:          heapNs,
		CalendarEventsPerSec: calEps,
		HeapEventsPerSec:     heapEps,
		SpeedupVsHeap:        calEps / heapEps,
		RatioFloor:           s.RatioFloor,
		AllocsPerEvent:       ape,
		AllocsPerEventBudget: hotpath.AllocsPerEventBudget,
	}, nil
}

// benchReplications times a replication batch through des.RunReplications
// at one worker and at the host's core count.  Replication results are
// deterministic per seed, so both passes do identical work.
func benchReplications() (eventsReplicationRecord, error) {
	cfg := des.Config{
		Rates:   []float64{0.2, 0.2, 0.2, 0.2},
		Horizon: 4e4,
	}
	newDisc := func() des.Discipline { return &des.FIFO{} }
	seeds := make([]int64, 8)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	workers := runtime.GOMAXPROCS(0)

	time := func(w int) (int64, int64, error) {
		var totalEvents int64
		var rerr error
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := des.RunReplications(cfg, newDisc, seeds, w)
				if err != nil {
					rerr = err
					b.FailNow()
				}
				totalEvents = 0
				for _, res := range results {
					totalEvents += res.Arrivals + res.Departures
				}
			}
		})
		if rerr != nil {
			return 0, 0, rerr
		}
		return r.T.Nanoseconds() / int64(r.N), totalEvents, nil
	}
	seqNs, _, err := time(1)
	if err != nil {
		return eventsReplicationRecord{}, err
	}
	parNs, events, err := time(workers)
	if err != nil {
		return eventsReplicationRecord{}, err
	}
	return eventsReplicationRecord{
		Replications: len(seeds),
		Workers:      workers,
		HostCores:    runtime.GOMAXPROCS(0),
		SequentialNS: seqNs,
		ParallelNS:   parNs,
		EventsPerSec: float64(events) / (float64(parNs) / 1e9),
		Speedup:      float64(seqNs) / float64(parNs),
		SpeedupValid: runtime.GOMAXPROCS(0) > 1,
	}, nil
}

// writeEventsJSON runs the events/sec family, writes BENCH_events.json,
// prints the human summary, and returns exit code 1 when the gate
// fails.
func writeEventsJSON(path string, force bool) (int, error) {
	// The replication record's validity is known from the host alone —
	// apply the shared overwrite guard before spending the benchmark
	// time on a run whose artifact would be refused anyway.
	if err := guardArtifactOverwrite(path, runtime.GOMAXPROCS(0) > 1, force); err != nil {
		return 0, err
	}
	var report eventsReport
	for _, s := range hotpath.EventScales() {
		rec, err := benchEventScale(s)
		if err != nil {
			return 0, err
		}
		report.Scales = append(report.Scales, rec)
		fmt.Printf("events %-5s %8d events/run  calendar %12.0f ev/s  heap %12.0f ev/s  %5.2fx (floor %.2f)  %.4f allocs/event\n",
			rec.Name, rec.EventsPerRun, rec.CalendarEventsPerSec, rec.HeapEventsPerSec,
			rec.SpeedupVsHeap, rec.RatioFloor, rec.AllocsPerEvent)
	}
	rep, err := benchReplications()
	if err != nil {
		return 0, err
	}
	report.Replication = rep
	validity := ""
	if !rep.SpeedupValid {
		validity = "  (single core: speedup not gated)"
	}
	fmt.Printf("events replications: %d seeds, %.0f ev/s at %d workers, %.2fx vs sequential%s\n",
		rep.Replications, rep.EventsPerSec, rep.Workers, rep.Speedup, validity)

	if err := writeArtifactJSON(path, report, force); err != nil {
		return 0, err
	}
	fmt.Printf("events bench: %d scales -> %s\n", len(report.Scales), path)

	code := 0
	for _, msg := range gateEvents(report) {
		fmt.Printf("  REGRESSION(%s)\n", msg)
		code = 1
	}
	return code, nil
}
