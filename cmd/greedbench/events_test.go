package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// cleanEventsReport is a report every gate accepts; tests inject one
// regression at a time into copies of it.
func cleanEventsReport() eventsReport {
	return eventsReport{
		Scales: []eventsScaleRecord{
			{Name: "n1e2", SpeedupVsHeap: 1.5, RatioFloor: 0.9, AllocsPerEvent: 0.001, AllocsPerEventBudget: 0.01},
			{Name: "n1e5", SpeedupVsHeap: 2.2, RatioFloor: 2.0, AllocsPerEvent: 0.0, AllocsPerEventBudget: 0.01},
		},
		Replication: eventsReplicationRecord{
			Replications: 8, Workers: 4, HostCores: 4,
			Speedup: 3.1, SpeedupValid: true,
		},
	}
}

func TestGateEventsCleanReportPasses(t *testing.T) {
	if fails := gateEvents(cleanEventsReport()); len(fails) != 0 {
		t.Fatalf("clean report failed the gate: %v", fails)
	}
}

func TestGateEventsCatchesRatioRegression(t *testing.T) {
	r := cleanEventsReport()
	r.Scales[1].SpeedupVsHeap = 1.4 // under the 2.0 floor
	fails := gateEvents(r)
	if len(fails) != 1 {
		t.Fatalf("want exactly 1 failure, got %v", fails)
	}
	if !strings.Contains(fails[0], "n1e5") || !strings.Contains(fails[0], "ratio") {
		t.Fatalf("failure does not name the scale and regression kind: %q", fails[0])
	}
}

func TestGateEventsCatchesAllocRegression(t *testing.T) {
	r := cleanEventsReport()
	r.Scales[0].AllocsPerEvent = 0.5 // real per-event allocation, way over noise budget
	fails := gateEvents(r)
	if len(fails) != 1 {
		t.Fatalf("want exactly 1 failure, got %v", fails)
	}
	if !strings.Contains(fails[0], "n1e2") || !strings.Contains(fails[0], "allocs/event") {
		t.Fatalf("failure does not name the scale and regression kind: %q", fails[0])
	}
}

func TestGateEventsCatchesScalingRegression(t *testing.T) {
	r := cleanEventsReport()
	r.Replication.Speedup = 1.0 // pool stopped scaling on a multi-core host
	fails := gateEvents(r)
	if len(fails) != 1 {
		t.Fatalf("want exactly 1 failure, got %v", fails)
	}
	if !strings.Contains(fails[0], "replications") {
		t.Fatalf("failure does not name the replication pass: %q", fails[0])
	}
}

func TestGateEventsIgnoresInvalidSpeedup(t *testing.T) {
	// On a single-core host Speedup measures scheduling overhead; the gate
	// must not flag it no matter how low it reads.
	r := cleanEventsReport()
	r.Replication.Speedup = 0.8
	r.Replication.SpeedupValid = false
	if fails := gateEvents(r); len(fails) != 0 {
		t.Fatalf("invalid speedup must not be gated, got %v", fails)
	}
}

func TestGateEventsReportsEveryRegression(t *testing.T) {
	r := cleanEventsReport()
	r.Scales[0].SpeedupVsHeap = 0.5
	r.Scales[1].AllocsPerEvent = 1.0
	r.Replication.Speedup = 0.9
	if fails := gateEvents(r); len(fails) != 3 {
		t.Fatalf("want all 3 injected regressions reported, got %v", fails)
	}
}

func TestGuardBenchOverwrite(t *testing.T) {
	dir := t.TempDir()
	valid := benchRecord{HostCores: 8, SpeedupValid: true}
	invalid := benchRecord{HostCores: 1, SpeedupValid: false}
	write := func(name string, rec benchRecord) string {
		t.Helper()
		path := dir + "/" + name
		data, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	// Single-core run must not clobber a multi-core artifact...
	path := write("multi.json", valid)
	if err := guardBenchOverwrite(path, invalid, false); err == nil {
		t.Fatal("guard allowed a single-core run to overwrite a multi-core artifact")
	}
	// ...unless forced.
	if err := guardBenchOverwrite(path, invalid, true); err != nil {
		t.Fatalf("-force must override the guard: %v", err)
	}

	// A valid new record always wins.
	if err := guardBenchOverwrite(path, valid, false); err != nil {
		t.Fatalf("valid record must overwrite freely: %v", err)
	}

	// No prior artifact: nothing to protect.
	if err := guardBenchOverwrite(dir+"/absent.json", invalid, false); err != nil {
		t.Fatalf("missing artifact must not block: %v", err)
	}

	// Prior artifact already invalid (or pre-speedup_valid, which
	// unmarshals false): regeneration stays allowed.
	path = write("single.json", invalid)
	if err := guardBenchOverwrite(path, invalid, false); err != nil {
		t.Fatalf("invalid-over-invalid must not block: %v", err)
	}
}
