// Command greedbench runs the paper-reproduction experiment suite (E1–E20)
// and prints each experiment's table with a paper-vs-measured verdict.
// EXPERIMENTS.md is generated from this tool's output.
//
// Usage:
//
//	greedbench [-run E1,E8] [-fast] [-seed N] [-list]
//
// Exit status is nonzero if any selected experiment fails to reproduce the
// paper's shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"greednet/internal/experiment"
)

func main() {
	var (
		runList = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		fast    = flag.Bool("fast", false, "use reduced horizons and search budgets")
		seed    = flag.Int64("seed", 0, "override the per-experiment default seeds")
		list    = flag.Bool("list", false, "list experiments and exit")
		mdOut   = flag.String("md", "", "also write a Markdown verdict summary to this path")
	)
	flag.Parse()

	if *list {
		for _, e := range experiment.All() {
			fmt.Printf("%-4s %-28s %s\n", e.ID, e.Source, e.Title)
		}
		return
	}

	selected := experiment.All()
	if *runList != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*runList, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiment.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "greedbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	opt := experiment.Options{Fast: *fast, Seed: *seed}
	failures := 0
	type outcome struct {
		e  experiment.Experiment
		v  experiment.Verdict
		e2 error
	}
	var outcomes []outcome
	for _, e := range selected {
		v, err := e.Run(os.Stdout, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "greedbench: %s errored: %v\n", e.ID, err)
			failures++
		} else if !v.Match {
			failures++
		}
		outcomes = append(outcomes, outcome{e: e, v: v, e2: err})
	}
	fmt.Printf("suite: %d/%d experiments reproduce the paper\n",
		len(selected)-failures, len(selected))

	if *mdOut != "" {
		f, err := os.Create(*mdOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "greedbench:", err)
			os.Exit(2)
		}
		write := func(_ int, err error) {
			if err != nil {
				fmt.Fprintln(os.Stderr, "greedbench:", err)
				os.Exit(2)
			}
		}
		write(fmt.Fprintln(f, "| ID | Paper source | Claim | Verdict |"))
		write(fmt.Fprintln(f, "|----|--------------|-------|---------|"))
		for _, o := range outcomes {
			verdict := "MATCH"
			switch {
			case o.e2 != nil:
				verdict = "ERROR"
			case !o.v.Match:
				verdict = "MISMATCH"
			}
			write(fmt.Fprintf(f, "| %s | %s | %s | %s |\n", o.e.ID, o.e.Source, o.e.Title, verdict))
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "greedbench:", err)
			os.Exit(2)
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
}
