// Command greedbench runs the paper-reproduction experiment suite (E1–E21)
// and prints each experiment's table with a paper-vs-measured verdict.
// EXPERIMENTS.md is generated from this tool's output.
//
// Usage:
//
//	greedbench [-run E1,E8] [-fast] [-seed N] [-workers N] [-timeout D] [-chaos] [-list]
//
// Experiments fan out across -workers goroutines (default: all cores),
// each rendering into its own buffer; buffers are flushed in registry
// order, so stdout is byte-identical for every worker count.  An explicit
// -seed pins every experiment's seed — including -seed 0, which is a
// real seed, not "use the defaults".
//
// With -timeout each experiment runs under a watchdog: one that exceeds
// it renders a deterministic FAILED(deadline) block in its slot while
// the rest of the suite completes normally.  -chaos appends the
// deliberately misbehaving chaos experiments (EX1 hangs, EX2 panics) to
// the selection — use with -timeout to exercise the degradation paths.
//
// With -hotpath the experiment suite is skipped entirely: the hot-path
// micro-benchmarks (internal/hotpath) run instead and their ns/op,
// allocs/op and bytes/op land in the given JSON file; a gated case that
// allocates exits 1.  -cpuprofile and -memprofile write pprof profiles
// of whatever work the invocation did.
//
// With -classes the suite is skipped in favor of the class-solver gate:
// the class-aggregated Nash solver runs at K classes over N users up to
// 10^6, its ns/op is checked against each scale's ceiling, its warm
// steady state against zero allocs/op, and its arithmetic against the
// exact per-user solver (Float64bits at K = N and K = 1); results land
// in BENCH_classes.json.
//
// With -escapes the suite is also skipped: the module is compiled with
// -gcflags=-m and every "escapes to heap" / "moved to heap" diagnostic
// inside a //lint:hotpath function is diffed against the committed
// baseline (BENCH_escapes.json).  A new escape is a regression; a
// baseline entry the compiler no longer reports is stale; either fails
// the gate.  A clean comparison rewrites the baseline byte-identically
// so CI can assert reproducibility with git diff.
//
// Exit status: 1 if any selected experiment fails, times out, panics, or
// mismatches the paper's shape (or, under -hotpath, a gated benchmark
// allocates; under -escapes, the escape baseline drifted); 2 on
// infrastructure errors (bad flags, write failures).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"greednet/internal/experiment"
	"greednet/internal/hotpath"
)

// main delegates to run so that deferred cleanups — in particular
// pprof.StopCPUProfile — execute before the process exits.
func main() {
	os.Exit(run())
}

func run() int {
	var (
		runList = flag.String("run", "", "comma-separated experiment IDs (default: all; repeats are deduped)")
		fast    = flag.Bool("fast", false, "use reduced horizons and search budgets")
		seed    = flag.Int64("seed", 0, "pin every experiment's seed (an explicit -seed 0 is honored; default: per-experiment seeds)")
		list    = flag.Bool("list", false, "list experiments and exit")
		mdOut   = flag.String("md", "", "also write a Markdown verdict summary to this path")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel experiment runners (1 runs sequentially; output is identical either way)")
		benchJS = flag.String("benchjson", "", "time the suite sequentially and at -workers, write the comparison as JSON to this path")
		timeout = flag.Duration("timeout", 0, "per-experiment watchdog; a run exceeding it renders FAILED(deadline) in its slot (0 disables)")
		chaosOn = flag.Bool("chaos", false, "append the fault-injection chaos experiments (EX1 hangs; EX2 panics) to the selection")
		cpuProf = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
		memProf = flag.String("memprofile", "", "write a pprof heap profile (after the run) to this path")
		hotOut  = flag.String("hotpath", "", "run the hot-path micro-benchmarks instead of the suite, write ns/op+allocs/op JSON to this path; exit 1 if a gated path exceeds its allocs/op budget")
		escOut  = flag.String("escapes", "", "diff the compiler's hot-path escape analysis against the baseline JSON at this path instead of running the suite; exit 1 on new or stale escapes")
		evOut   = flag.String("events", "", "run the events/sec benchmark family (calendar vs heap engines plus replication throughput) instead of the suite, write JSON to this path; exit 1 on a ratio, allocation, or scaling regression")
		clsOut  = flag.String("classes", "", "run the class-solver benchmark family (K classes, N users up to 10^6) instead of the suite, write JSON to this path; exit 1 on a ceiling, allocation, speedup, or bit-equality regression")
		svcOut  = flag.String("service", "", "run the greedd chaos load harness instead of the suite, write latency/shed JSON to this path; exit 1 on queue growth, untyped rejections, panics, or leaked goroutines")
		svcN    = flag.Int("service-clients", 1000, "client population for -service")
		svcR    = flag.Int("service-rounds", 2, "control-loop rounds per client for -service")
		force   = flag.Bool("force", false, "allow -benchjson/-events/-service to overwrite a multi-core artifact with a single-core (speedup_valid:false) measurement")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "greedbench:", err)
			return 2
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "greedbench:", cerr)
			}
		}()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "greedbench:", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "greedbench:", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "greedbench:", err)
			}
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "greedbench:", cerr)
			}
		}()
	}

	if *hotOut != "" {
		code, err := writeHotpathJSON(*hotOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "greedbench:", err)
			return 2
		}
		return code
	}
	if *escOut != "" {
		code, err := writeEscapesJSON(*escOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "greedbench:", err)
			return 2
		}
		return code
	}
	if *evOut != "" {
		code, err := writeEventsJSON(*evOut, *force)
		if err != nil {
			fmt.Fprintln(os.Stderr, "greedbench:", err)
			return 2
		}
		return code
	}
	if *clsOut != "" {
		code, err := writeClassesJSON(*clsOut, *force)
		if err != nil {
			fmt.Fprintln(os.Stderr, "greedbench:", err)
			return 2
		}
		return code
	}
	if *svcOut != "" {
		code, err := writeServiceJSON(*svcOut, *svcN, *svcR, *seed, *force)
		if err != nil {
			fmt.Fprintln(os.Stderr, "greedbench:", err)
			return 2
		}
		return code
	}
	// The flag's zero value and an explicit -seed 0 must stay
	// distinguishable, or seed 0 is unpinnable; Visit only walks flags
	// that were actually set.
	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})

	if *list {
		for _, e := range experiment.All() {
			fmt.Printf("%-4s %-28s %s\n", e.ID, e.Source, e.Title)
		}
		if *chaosOn {
			for _, e := range experiment.ChaosExperiments() {
				fmt.Printf("%-4s %-28s %s\n", e.ID, e.Source, e.Title)
			}
		}
		return 0
	}

	selected := experiment.All()
	if *runList != "" {
		selected = selected[:0]
		seen := make(map[string]bool)
		for _, id := range strings.Split(*runList, ",") {
			id = strings.TrimSpace(id)
			if seen[id] {
				continue // -run E1,E1 must not double-count in the summary
			}
			seen[id] = true
			e, ok := experiment.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "greedbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	if *chaosOn {
		selected = append(selected, experiment.ChaosExperiments()...)
	}

	opt := experiment.Options{Fast: *fast, Seed: *seed, SeedSet: seedSet, Timeout: *timeout}

	if *benchJS != "" {
		if err := writeBenchJSON(*benchJS, selected, opt, *workers, *force); err != nil {
			fmt.Fprintln(os.Stderr, "greedbench:", err)
			return 2
		}
		return 0
	}

	outcomes, err := experiment.RunSuite(os.Stdout, selected, opt, *workers)
	var suiteErr *experiment.SuiteError
	if err != nil && !errors.As(err, &suiteErr) {
		// Infrastructure failure (e.g. stdout write error); experiment
		// failures are *SuiteError and are summarized from the outcomes.
		fmt.Fprintln(os.Stderr, "greedbench:", err)
		return 2
	}
	failures := 0
	for _, o := range outcomes {
		if o.Err != nil {
			fmt.Fprintf(os.Stderr, "greedbench: %s errored: %v\n", o.Experiment.ID, o.Err)
			failures++
		} else if !o.Verdict.Match {
			failures++
		}
	}
	fmt.Printf("suite: %d/%d experiments reproduce the paper\n",
		len(selected)-failures, len(selected))

	if *mdOut != "" {
		if err := writeMarkdown(*mdOut, outcomes); err != nil {
			fmt.Fprintln(os.Stderr, "greedbench:", err)
			return 2
		}
	}
	if failures > 0 {
		return 1
	}
	return 0
}

// writeMarkdown renders the verdict summary table for -md.
func writeMarkdown(path string, outcomes []experiment.Outcome) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	write := func(_ int, werr error) {
		if werr != nil && err == nil {
			err = werr
		}
	}
	write(fmt.Fprintln(f, "| ID | Paper source | Claim | Verdict |"))
	write(fmt.Fprintln(f, "|----|--------------|-------|---------|"))
	for _, o := range outcomes {
		verdict := "MATCH"
		switch {
		case o.Err != nil:
			verdict = "ERROR"
		case !o.Verdict.Match:
			verdict = "MISMATCH"
		}
		write(fmt.Fprintf(f, "| %s | %s | %s | %s |\n", o.Experiment.ID, o.Experiment.Source, o.Experiment.Title, verdict))
	}
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// hotpathRecord is one micro-benchmark datapoint in BENCH_hotpath.json.
type hotpathRecord struct {
	Name        string  `json:"name"`
	Gated       bool    `json:"gated"`
	Budget      int64   `json:"allocs_budget,omitempty"`
	Baseline    string  `json:"baseline,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// writeHotpathJSON benchmarks every hot-path case with testing.Benchmark
// and writes the records — including the legacy baselines, so the file
// carries the before/after comparison — to path.  The returned exit code
// is 1 when a gated case exceeded its allocation budget (zero for the
// workspace fast paths, the audited result-allocation count for the
// end-to-end cases), else 0.
func writeHotpathJSON(path string) (int, error) {
	cases := hotpath.Cases()
	recs := make([]hotpathRecord, 0, len(cases))
	code := 0
	for _, c := range cases {
		r := testing.Benchmark(c.Bench)
		rec := hotpathRecord{
			Name:        c.Name,
			Gated:       c.Gated,
			Budget:      c.Budget,
			Baseline:    c.Baseline,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		recs = append(recs, rec)
		status := ""
		if c.Gated && rec.AllocsPerOp > c.Budget {
			if c.Budget == 0 {
				status = "  REGRESSION(gated path allocates)"
			} else {
				status = fmt.Sprintf("  REGRESSION(gated path exceeds %d allocs/op budget)", c.Budget)
			}
			code = 1
		}
		fmt.Printf("hotpath %-36s %12.1f ns/op %6d allocs/op %8d B/op%s\n",
			c.Name, rec.NsPerOp, rec.AllocsPerOp, rec.BytesPerOp, status)
	}
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return 0, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return 0, err
	}
	fmt.Printf("hotpath bench: %d cases -> %s\n", len(recs), path)
	return code, nil
}

// benchRecord is the perf-trajectory datapoint `make bench` archives as
// BENCH_parallel.json.
type benchRecord struct {
	Benchmark    string  `json:"benchmark"`
	Experiments  int     `json:"experiments"`
	Fast         bool    `json:"fast"`
	Workers      int     `json:"workers"`
	HostCores    int     `json:"host_cores"`
	SequentialNS int64   `json:"sequential_ns"`
	ParallelNS   int64   `json:"parallel_ns"`
	Speedup      float64 `json:"speedup"`
	// SpeedupValid is false when the host has a single core: the pooled
	// pass cannot physically run anything in parallel there, so Speedup
	// measures scheduling overhead, not scaling, and downstream tooling
	// must not trend it.
	SpeedupValid bool `json:"speedup_valid"`
}

// guardBenchOverwrite applies the shared artifact guard (guard.go) to
// the -benchjson record before the timing run is spent.
func guardBenchOverwrite(path string, next benchRecord, force bool) error {
	return guardArtifactOverwrite(path, next.SpeedupValid, force)
}

// writeBenchJSON times the selected suite once sequentially and once at
// the requested worker count, and writes the comparison as JSON.
func writeBenchJSON(path string, selected []experiment.Experiment, opt experiment.Options, workers int, force bool) error {
	// Validity is known from the host alone — guard before spending
	// minutes timing a run whose artifact would be refused anyway.
	probe := benchRecord{HostCores: runtime.GOMAXPROCS(0), SpeedupValid: runtime.GOMAXPROCS(0) > 1}
	if err := guardBenchOverwrite(path, probe, force); err != nil {
		return err
	}
	run := func(w int) (time.Duration, error) {
		start := time.Now()
		outcomes, err := experiment.RunSuite(io.Discard, selected, opt, w)
		var se *experiment.SuiteError
		if err != nil && !errors.As(err, &se) {
			return 0, err
		}
		// A verdict mismatch (SuiteError with no outcome errors) still
		// times fine; only hard experiment errors invalidate the bench.
		for _, o := range outcomes {
			if o.Err != nil {
				return 0, fmt.Errorf("%s errored: %w", o.Experiment.ID, o.Err)
			}
		}
		return time.Since(start), nil
	}
	seq, err := run(1)
	if err != nil {
		return err
	}
	par, err := run(workers)
	if err != nil {
		return err
	}
	rec := benchRecord{
		Benchmark:    "experiment-suite",
		Experiments:  len(selected),
		Fast:         opt.Fast,
		Workers:      workers,
		HostCores:    runtime.GOMAXPROCS(0),
		SequentialNS: seq.Nanoseconds(),
		ParallelNS:   par.Nanoseconds(),
		Speedup:      float64(seq.Nanoseconds()) / float64(par.Nanoseconds()),
		SpeedupValid: runtime.GOMAXPROCS(0) > 1,
	}
	if err := writeArtifactJSON(path, rec, force); err != nil {
		return err
	}
	fmt.Printf("suite bench: sequential %v, %d workers %v (%.2fx), %d experiments -> %s\n",
		seq.Round(time.Millisecond), workers, par.Round(time.Millisecond), rec.Speedup, len(selected), path)
	return nil
}
