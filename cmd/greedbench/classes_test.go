package main

import (
	"strings"
	"testing"
)

// cleanClassReport is a report every gate accepts; tests inject one
// regression at a time into copies of it.
func cleanClassReport() classReport {
	return classReport{
		HostCores:    4,
		SpeedupValid: true,
		BitEqual:     true,
		Scales: []classScaleRecord{
			{Name: "k8_n256", K: 8, N: 256, NsPerOp: 5e5, NsCeiling: 1e7,
				ExactNsPerOp: 1.2e8, SpeedupVsExact: 240},
			{Name: "k8_n1e6", K: 8, N: 1_000_000, NsPerOp: 4e5, NsCeiling: 1e7},
		},
	}
}

func TestGateClassesCleanReportPasses(t *testing.T) {
	if fails := gateClasses(cleanClassReport()); len(fails) != 0 {
		t.Fatalf("clean report failed the gate: %v", fails)
	}
}

func TestGateClassesCatchesCeilingRegression(t *testing.T) {
	r := cleanClassReport()
	r.Scales[1].NsPerOp = 2e7 // over the 1e7 ceiling: the solve went O(N)
	fails := gateClasses(r)
	if len(fails) != 1 {
		t.Fatalf("want exactly 1 failure, got %v", fails)
	}
	if !strings.Contains(fails[0], "k8_n1e6") || !strings.Contains(fails[0], "ceiling") {
		t.Fatalf("failure does not name the scale and regression kind: %q", fails[0])
	}
}

func TestGateClassesCatchesAllocRegression(t *testing.T) {
	r := cleanClassReport()
	r.Scales[0].AllocsPerOp = 3 // warm scratch started escaping
	fails := gateClasses(r)
	if len(fails) != 1 {
		t.Fatalf("want exactly 1 failure, got %v", fails)
	}
	if !strings.Contains(fails[0], "k8_n256") || !strings.Contains(fails[0], "allocs/op") {
		t.Fatalf("failure does not name the scale and regression kind: %q", fails[0])
	}
}

func TestGateClassesCatchesBitDrift(t *testing.T) {
	r := cleanClassReport()
	r.BitEqual = false
	fails := gateClasses(r)
	if len(fails) != 1 {
		t.Fatalf("want exactly 1 failure, got %v", fails)
	}
	if !strings.Contains(fails[0], "bit-equality") {
		t.Fatalf("failure does not name the regression kind: %q", fails[0])
	}
}

func TestGateClassesCatchesSpeedupInversion(t *testing.T) {
	r := cleanClassReport()
	r.Scales[0].SpeedupVsExact = 0.8 // "aggregation" slower than the exact solver
	fails := gateClasses(r)
	if len(fails) != 1 {
		t.Fatalf("want exactly 1 failure, got %v", fails)
	}
	if !strings.Contains(fails[0], "k8_n256") || !strings.Contains(fails[0], "slower") {
		t.Fatalf("failure does not name the scale and regression kind: %q", fails[0])
	}
}

// A scale without the exact comparison (SpeedupVsExact zero) must not
// trip the speedup check.
func TestGateClassesIgnoresMissingExactComparison(t *testing.T) {
	r := cleanClassReport()
	r.Scales[1].SpeedupVsExact = 0
	if fails := gateClasses(r); len(fails) != 0 {
		t.Fatalf("missing exact comparison tripped the gate: %v", fails)
	}
}
