// Command greedsim computes game-theoretic operating points of the
// single-switch model: Nash equilibria, Stackelberg equilibria, Pareto
// diagnostics, envy, and protection, for a chosen service discipline and
// utility profile.
//
// Examples:
//
//	greedsim -disc fair-share -profile "linear:1,0.2;linear:1,0.3"
//	greedsim -disc fifo -profile "linear:1,0.2;linear:1,0.2" -mode stackelberg -leader 0
//	greedsim -disc fair-share -profile "linear:1,0.25;log:0.3,1" -mode envy
//	greedsim -disc fair-share -mode nash -multistart 32 -seed 7
//	greedsim -classes "500000xlinear:1,0.2@4e-7;500000xlinear:1,0.5@4e-7" -fluid
//
// With -classes the profile is class-aggregated: COUNTxSPEC@RATE entries
// describe K utility classes carrying N = ΣCOUNT users, solved by the
// O(K)-per-step class solver — a million-user game is as cheap as a
// K-user one.  -fluid additionally solves the N → ∞ fluid limit and
// prints the scaled per-class rates next to their finite-N counterparts.
//
// With -timeout the cooperative modes (nash, pareto, envy, dynamics,
// coalition) run their solves under a deadline; a solve that exceeds it
// prints FAILED(deadline) and exits non-zero.  -multistart N solves from
// N random starting points (seeded by -seed) and reports the distinct
// equilibria found plus the number of starts dropped for non-convergence.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"greednet/internal/cliutil"
	"greednet/internal/core"
	"greednet/internal/dynamics"
	"greednet/internal/game"
	"greednet/internal/mm1"
	"greednet/internal/numeric"
	"greednet/internal/plot"
	"greednet/internal/randdist"
	"greednet/internal/workload"
)

func main() {
	var (
		discName = flag.String("disc", "fair-share", "allocation: fair-share|proportional|hol|hol-largest|blend:θ")
		profile  = flag.String("profile", "linear:1,0.2;linear:1,0.3", "semicolon-separated utility specs")
		mode     = flag.String("mode", "nash", "nash|stackelberg|pareto|envy|protect|dynamics|coalition")
		leader   = flag.Int("leader", 0, "leader index for -mode stackelberg")
		startStr = flag.String("start", "", "starting rates (default 0.1 each)")
		rounds   = flag.Int("rounds", 400, "rounds for -mode dynamics")
		scenario = flag.String("scenario", "", "named scenario overriding -profile: symmetric:N,γ | ftptelnet | cheater:V,R | mixed | random:N,SEED")
		timeout  = flag.Duration("timeout", 0, "deadline for the solve; exceeding it prints FAILED(deadline) and exits 1 (0 disables)")
		nstarts  = flag.Int("multistart", 0, "solve -mode nash from N random starts and report distinct equilibria and dropped starts (0 disables)")
		msSeed   = flag.Int64("seed", 1, "RNG seed for the -multistart starting points")
		classStr = flag.String("classes", "", "class-aggregated profile \"COUNTxSPEC@RATE;...\" solved by the O(K) class solver instead of -profile")
		fluidOn  = flag.Bool("fluid", false, "with -classes: also solve the N→∞ fluid limit and print scaled per-class rates")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	a, err := cliutil.ParseAlloc(*discName)
	fatalIf(err)
	if *classStr != "" {
		runClasses(ctx, a, *classStr, *fluidOn, *timeout)
		return
	}
	var us core.Profile
	var start []float64
	var free []bool
	if *scenario != "" {
		sc, err := workload.Parse(*scenario)
		fatalIf(err)
		fmt.Printf("scenario %s (%d users)\n", sc.Name, len(sc.Users))
		us, start, free = sc.Users, sc.Start, sc.Free
	} else {
		us, err = cliutil.ParseProfile(*profile)
		fatalIf(err)
		start = make([]float64, len(us))
		for i := range start {
			start[i] = 0.1
		}
	}
	n := len(us)
	if *startStr != "" {
		start, err = cliutil.ParseRates(*startStr)
		fatalIf(err)
		if len(start) != n {
			fatalIf(fmt.Errorf("start has %d rates for %d users", len(start), n))
		}
	}
	if !core.Feasible(start) {
		fatalIf(fmt.Errorf("start rates %v are infeasible: need every r_i > 0 and Σr < 1", start))
	}

	switch *mode {
	case "nash":
		if *nstarts > 0 {
			runMultiStart(ctx, a, us, free, *nstarts, *msSeed, *timeout)
			return
		}
		res, err := game.SolveNashCtx(ctx, a, us, start, game.NashOptions{Free: free})
		fatalSolve(err, *timeout)
		printPoint(a.Name()+" Nash equilibrium", us, core.Point{R: res.R, C: res.C})
		fmt.Printf("converged=%v iters=%d maxDeviationGain=%.3g\n",
			res.Converged, res.Iters, res.MaxGain)
	case "stackelberg":
		adv, st, nash, err := game.LeaderAdvantage(a, us, *leader, start, game.StackOptions{})
		fatalIf(err)
		printPoint(a.Name()+" Nash equilibrium", us, core.Point{R: nash.R, C: nash.C})
		printPoint(fmt.Sprintf("%s Stackelberg (leader %d)", a.Name(), *leader),
			us, core.Point{R: st.R, C: st.C})
		fmt.Printf("leader advantage over Nash: %.6g\n", adv)
	case "pareto":
		res, err := game.SolveNashCtx(ctx, a, us, start, game.NashOptions{Free: free})
		fatalSolve(err, *timeout)
		p := core.Point{R: res.R, C: res.C}
		printPoint(a.Name()+" Nash equilibrium", us, p)
		resid := game.ParetoResidual(us, p)
		fmt.Printf("Pareto FDC residual: %v (‖·‖∞ = %.3g; zero ⇒ candidate Pareto point)\n",
			resid, numeric.VecNormInf(resid))
	case "envy":
		res, err := game.SolveNashCtx(ctx, a, us, start, game.NashOptions{Free: free})
		fatalSolve(err, *timeout)
		p := core.Point{R: res.R, C: res.C}
		printPoint(a.Name()+" Nash equilibrium", us, p)
		amount, i, j := game.MaxEnvy(us, p)
		if amount <= 1e-9 {
			fmt.Println("allocation is envy-free")
		} else {
			fmt.Printf("max envy: user %d envies user %d by %.6g\n", i, j, amount)
		}
	case "protect":
		slacks := game.ProtectionSlack(a, start)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "user\trate\tbound r/(1−Nr)\tC_i\tslack") //lint:allow errdrop console tabwriter over stdout: best-effort like fmt.Printf
		c := a.Congestion(start)
		for i := range start {
			fmt.Fprintf(tw, "%d\t%.4g\t%.4g\t%.4g\t%.4g\n", //lint:allow errdrop console tabwriter over stdout: best-effort like fmt.Printf
				i, start[i], mm1.ProtectionBound(n, start[i]), c[i], slacks[i])
		}
		tw.Flush() //lint:allow errdrop console tabwriter over stdout: best-effort like fmt.Printf
	case "dynamics":
		traj, err := dynamics.HillClimbCtx(ctx, a, us, start, dynamics.HillClimbOptions{
			Rounds: *rounds,
			Step:   0.005,
		})
		fatalSolve(err, *timeout)
		series := make([]plot.Series, n)
		for i := 0; i < n; i++ {
			series[i] = plot.Series{
				Name: fmt.Sprintf("user %d rate", i),
				Y:    plot.Column(traj, i),
			}
		}
		fmt.Printf("incremental hill climbing under %s (%d rounds):\n", a.Name(), *rounds)
		fmt.Print(plot.Chart{Width: 64, Height: 14}.Render(series...))
		final := traj[len(traj)-1]
		printPoint("final point", us, core.At(a, final))
	case "coalition":
		res, err := game.SolveNashCtx(ctx, a, us, start, game.NashOptions{Free: free})
		fatalSolve(err, *timeout)
		printPoint(a.Name()+" Nash equilibrium", us, core.Point{R: res.R, C: res.C})
		rng := randdist.NewRand(1)
		w := game.StrongEquilibriumCheck(a, us, res.R, rng, 1000)
		if w == nil {
			fmt.Println("no improving coalition found: the equilibrium is (empirically) strong")
		} else {
			fmt.Printf("coalition %v improves jointly: rates %v, gains %v\n",
				w.Members, w.Rates, w.Gains)
		}
	default:
		fatalIf(fmt.Errorf("unknown mode %q", *mode))
	}
}

func printPoint(title string, us core.Profile, p core.Point) {
	fmt.Println(title + ":")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "user\trate r_i\tcongestion c_i\tutility U_i") //lint:allow errdrop console tabwriter over stdout: best-effort like fmt.Printf
	for i := range p.R {
		fmt.Fprintf(tw, "%d\t%.6g\t%.6g\t%.6g\n", i, p.R[i], p.C[i], us[i].Value(p.R[i], p.C[i])) //lint:allow errdrop console tabwriter over stdout: best-effort like fmt.Printf
	}
	tw.Flush() //lint:allow errdrop console tabwriter over stdout: best-effort like fmt.Printf
	// Diagnostic footer for whatever point the solver produced; an
	// out-of-domain point prints ±Inf, which is the honest report.
	fmt.Printf("total load %.4g, total queue %.4g (M/M/1 predicts %.4g)\n",
		mm1.Sum(p.R), mm1.Sum(p.C), mm1.G(mm1.Sum(p.R))) //lint:allow feasguard diagnostic print of the solver's point; ±Inf is the honest rendering
}

// runClasses solves the class-aggregated game given by -classes with
// the O(K)-per-step class solver and prints one row per class; with
// -fluid it also solves the N → ∞ fluid limit and prints the scaled
// per-class rates next to their finite-N counterparts.  The printing
// loops live in ctx-free helpers: by the time anything prints, the
// solve is done and there is nothing left to cancel.
func runClasses(ctx context.Context, a core.Allocation, spec string, fluid bool, timeout time.Duration) {
	classes, err := cliutil.ParseClasses(spec)
	fatalIf(err)
	cg, err := game.NewClassGame(classes)
	fatalIf(err)
	if load := classLoad(cg, cg.Rates()); load >= 1 {
		fatalIf(fmt.Errorf("class starting rates are infeasible: Σ count·rate = %.4g ≥ 1", load))
	}
	res, err := game.SolveNashClassWS(ctx, nil, a, cg, nil, game.ClassNashOptions{})
	fatalSolve(err, timeout)
	printClassPoint(a, cg, res)
	if !fluid {
		return
	}
	fr, err := game.SolveNashFluid(ctx, a, cg, game.ClassNashOptions{})
	fatalSolve(err, timeout)
	printFluidPoint(cg, res, fr)
}

// classLoad is the total offered load Σ_j Count_j·r_j of per-class
// rates r.
func classLoad(cg game.ClassGame, r []float64) float64 {
	total := 0.0
	for j, c := range cg.Classes {
		total += float64(c.Count) * r[j]
	}
	return total
}

// printClassPoint renders a class-aggregated equilibrium, one row per
// class in canonical order.
func printClassPoint(a core.Allocation, cg game.ClassGame, res game.ClassNashResult) {
	fmt.Printf("%s class-aggregated Nash equilibrium (K=%d classes, N=%d users):\n",
		a.Name(), cg.K(), cg.N())
	fmt.Printf("%-6s %9s %-16s %12s %14s %12s\n",
		"class", "count", "utility", "rate r_j", "congestion c_j", "payoff U_j")
	for j, c := range cg.Classes {
		fmt.Printf("%-6d %9d %-16s %12.6g %14.6g %12.6g\n",
			j, c.Count, game.UtilitySpec(c.U), res.R[j], res.C[j], c.U.Value(res.R[j], res.C[j]))
	}
	fmt.Printf("converged=%v iters=%d maxDeviationGain=%.3g total load %.4g\n",
		res.Converged, res.Iters, res.MaxGain, classLoad(cg, res.R))
}

// printFluidPoint renders the N → ∞ fluid equilibrium beside the
// finite-N class solve: ŷ_j = lim N·ρ_j, so the finite-N column is
// N·r_j and the two converge as N grows.
func printFluidPoint(cg game.ClassGame, res game.ClassNashResult, fr game.FluidResult) {
	n := float64(cg.N())
	fmt.Printf("fluid limit (N→∞, scaled ŷ_j = lim N·ρ_j): converged=%v iters=%d maxScaledGain=%.3g\n",
		fr.Converged, fr.Iters, fr.MaxGain)
	fmt.Printf("%-6s %14s %14s %14s\n", "class", "ŷ_j (fluid)", "N·r_j (finite)", "ĉ_j (fluid)")
	for j := range cg.Classes {
		fmt.Printf("%-6d %14.6g %14.6g %14.6g\n", j, fr.Y[j], n*res.R[j], fr.Chat[j])
	}
}

// runMultiStart solves from n random feasible starting points and
// reports the distinct equilibria plus the starts dropped for
// non-convergence (or abandoned to the deadline).
func runMultiStart(ctx context.Context, a core.Allocation, us core.Profile, free []bool, n int, seed int64, timeout time.Duration) {
	rng := randdist.NewRand(seed)
	users := len(us)
	sts := make([][]float64, n)
	//lint:allow ctxflow O(starts*users) RNG draws before any solve begins; the deadline governs the solve, not its setup
	for m := range sts {
		s := make([]float64, users)
		for i := range s {
			// Scaled so Σs < users/(users+1) < 1: every start is feasible.
			s[i] = (0.01 + 0.98*rng.Float64()) / float64(users+1)
		}
		sts[m] = s
	}
	ms, err := game.MultiStartNashCtx(ctx, 0, a, us, sts, game.NashOptions{Free: free}, 1e-4)
	fatalSolve(err, timeout)
	fmt.Printf("%s multi-start: %d starts (seed %d), %d converged, %d distinct equilibria, %d dropped\n",
		a.Name(), n, seed, len(ms.All), len(ms.Distinct), ms.Dropped)
	//lint:allow ctxflow printing the handful of distinct equilibria after the solve finished; nothing left to cancel
	for i, res := range ms.Distinct {
		printPoint(fmt.Sprintf("equilibrium %d (reached by first start at iters=%d)", i, res.Iters),
			us, core.Point{R: res.R, C: res.C})
	}
	if ms.Dropped > 0 {
		fmt.Fprintf(os.Stderr, "greedsim: %d of %d starts dropped (solver error or non-convergence)\n",
			ms.Dropped, n)
		os.Exit(1)
	}
}

// fatalSolve reports a solve error; deadline and cancellation errors get
// the FAILED(...) rendering so scripts can grep for them.
func fatalSolve(err error, timeout time.Duration) {
	if err == nil {
		return
	}
	switch {
	case errors.Is(err, core.ErrDeadline) && timeout > 0:
		fmt.Fprintf(os.Stderr, "greedsim: FAILED(deadline): solve exceeded the %v deadline\n", timeout)
	case errors.Is(err, core.ErrDeadline) || errors.Is(err, core.ErrCanceled):
		fmt.Fprintf(os.Stderr, "greedsim: FAILED(%s): %v\n", reasonOf(err), err)
	default:
		fmt.Fprintln(os.Stderr, "greedsim:", err)
	}
	os.Exit(1)
}

// reasonOf maps a context-flavored error to its FAILED tag.
func reasonOf(err error) string {
	if errors.Is(err, core.ErrDeadline) {
		return "deadline"
	}
	return "canceled"
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "greedsim:", err)
		os.Exit(1)
	}
}
