// Command greedsim computes game-theoretic operating points of the
// single-switch model: Nash equilibria, Stackelberg equilibria, Pareto
// diagnostics, envy, and protection, for a chosen service discipline and
// utility profile.
//
// Examples:
//
//	greedsim -disc fair-share -profile "linear:1,0.2;linear:1,0.3"
//	greedsim -disc fifo -profile "linear:1,0.2;linear:1,0.2" -mode stackelberg -leader 0
//	greedsim -disc fair-share -profile "linear:1,0.25;log:0.3,1" -mode envy
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"greednet/internal/cliutil"
	"greednet/internal/core"
	"greednet/internal/dynamics"
	"greednet/internal/game"
	"greednet/internal/mm1"
	"greednet/internal/numeric"
	"greednet/internal/plot"
	"greednet/internal/randdist"
	"greednet/internal/workload"
)

func main() {
	var (
		discName = flag.String("disc", "fair-share", "allocation: fair-share|proportional|hol|hol-largest|blend:θ")
		profile  = flag.String("profile", "linear:1,0.2;linear:1,0.3", "semicolon-separated utility specs")
		mode     = flag.String("mode", "nash", "nash|stackelberg|pareto|envy|protect|dynamics|coalition")
		leader   = flag.Int("leader", 0, "leader index for -mode stackelberg")
		startStr = flag.String("start", "", "starting rates (default 0.1 each)")
		rounds   = flag.Int("rounds", 400, "rounds for -mode dynamics")
		scenario = flag.String("scenario", "", "named scenario overriding -profile: symmetric:N,γ | ftptelnet | cheater:V,R | mixed | random:N,SEED")
	)
	flag.Parse()

	a, err := cliutil.ParseAlloc(*discName)
	fatalIf(err)
	var us core.Profile
	var start []float64
	var free []bool
	if *scenario != "" {
		sc, err := workload.Parse(*scenario)
		fatalIf(err)
		fmt.Printf("scenario %s (%d users)\n", sc.Name, len(sc.Users))
		us, start, free = sc.Users, sc.Start, sc.Free
	} else {
		us, err = cliutil.ParseProfile(*profile)
		fatalIf(err)
		start = make([]float64, len(us))
		for i := range start {
			start[i] = 0.1
		}
	}
	n := len(us)
	if *startStr != "" {
		start, err = cliutil.ParseRates(*startStr)
		fatalIf(err)
		if len(start) != n {
			fatalIf(fmt.Errorf("start has %d rates for %d users", len(start), n))
		}
	}
	if !core.Feasible(start) {
		fatalIf(fmt.Errorf("start rates %v are infeasible: need every r_i > 0 and Σr < 1", start))
	}

	switch *mode {
	case "nash":
		res, err := game.SolveNash(a, us, start, game.NashOptions{Free: free})
		fatalIf(err)
		printPoint(a.Name()+" Nash equilibrium", us, core.Point{R: res.R, C: res.C})
		fmt.Printf("converged=%v iters=%d maxDeviationGain=%.3g\n",
			res.Converged, res.Iters, res.MaxGain)
	case "stackelberg":
		adv, st, nash, err := game.LeaderAdvantage(a, us, *leader, start, game.StackOptions{})
		fatalIf(err)
		printPoint(a.Name()+" Nash equilibrium", us, core.Point{R: nash.R, C: nash.C})
		printPoint(fmt.Sprintf("%s Stackelberg (leader %d)", a.Name(), *leader),
			us, core.Point{R: st.R, C: st.C})
		fmt.Printf("leader advantage over Nash: %.6g\n", adv)
	case "pareto":
		res, err := game.SolveNash(a, us, start, game.NashOptions{Free: free})
		fatalIf(err)
		p := core.Point{R: res.R, C: res.C}
		printPoint(a.Name()+" Nash equilibrium", us, p)
		resid := game.ParetoResidual(us, p)
		fmt.Printf("Pareto FDC residual: %v (‖·‖∞ = %.3g; zero ⇒ candidate Pareto point)\n",
			resid, numeric.VecNormInf(resid))
	case "envy":
		res, err := game.SolveNash(a, us, start, game.NashOptions{Free: free})
		fatalIf(err)
		p := core.Point{R: res.R, C: res.C}
		printPoint(a.Name()+" Nash equilibrium", us, p)
		amount, i, j := game.MaxEnvy(us, p)
		if amount <= 1e-9 {
			fmt.Println("allocation is envy-free")
		} else {
			fmt.Printf("max envy: user %d envies user %d by %.6g\n", i, j, amount)
		}
	case "protect":
		slacks := game.ProtectionSlack(a, start)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "user\trate\tbound r/(1−Nr)\tC_i\tslack") //lint:allow errdrop console tabwriter over stdout: best-effort like fmt.Printf
		c := a.Congestion(start)
		for i := range start {
			fmt.Fprintf(tw, "%d\t%.4g\t%.4g\t%.4g\t%.4g\n", //lint:allow errdrop console tabwriter over stdout: best-effort like fmt.Printf
				i, start[i], mm1.ProtectionBound(n, start[i]), c[i], slacks[i])
		}
		tw.Flush() //lint:allow errdrop console tabwriter over stdout: best-effort like fmt.Printf
	case "dynamics":
		traj := dynamics.HillClimb(a, us, start, dynamics.HillClimbOptions{
			Rounds: *rounds,
			Step:   0.005,
		})
		series := make([]plot.Series, n)
		for i := 0; i < n; i++ {
			series[i] = plot.Series{
				Name: fmt.Sprintf("user %d rate", i),
				Y:    plot.Column(traj, i),
			}
		}
		fmt.Printf("incremental hill climbing under %s (%d rounds):\n", a.Name(), *rounds)
		fmt.Print(plot.Chart{Width: 64, Height: 14}.Render(series...))
		final := traj[len(traj)-1]
		printPoint("final point", us, core.At(a, final))
	case "coalition":
		res, err := game.SolveNash(a, us, start, game.NashOptions{Free: free})
		fatalIf(err)
		printPoint(a.Name()+" Nash equilibrium", us, core.Point{R: res.R, C: res.C})
		rng := randdist.NewRand(1)
		w := game.StrongEquilibriumCheck(a, us, res.R, rng, 1000)
		if w == nil {
			fmt.Println("no improving coalition found: the equilibrium is (empirically) strong")
		} else {
			fmt.Printf("coalition %v improves jointly: rates %v, gains %v\n",
				w.Members, w.Rates, w.Gains)
		}
	default:
		fatalIf(fmt.Errorf("unknown mode %q", *mode))
	}
}

func printPoint(title string, us core.Profile, p core.Point) {
	fmt.Println(title + ":")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "user\trate r_i\tcongestion c_i\tutility U_i") //lint:allow errdrop console tabwriter over stdout: best-effort like fmt.Printf
	for i := range p.R {
		fmt.Fprintf(tw, "%d\t%.6g\t%.6g\t%.6g\n", i, p.R[i], p.C[i], us[i].Value(p.R[i], p.C[i])) //lint:allow errdrop console tabwriter over stdout: best-effort like fmt.Printf
	}
	tw.Flush() //lint:allow errdrop console tabwriter over stdout: best-effort like fmt.Printf
	// Diagnostic footer for whatever point the solver produced; an
	// out-of-domain point prints ±Inf, which is the honest report.
	fmt.Printf("total load %.4g, total queue %.4g (M/M/1 predicts %.4g)\n",
		mm1.Sum(p.R), mm1.Sum(p.C), mm1.G(mm1.Sum(p.R))) //lint:allow feasguard diagnostic print of the solver's point; ±Inf is the honest rendering
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "greedsim:", err)
		os.Exit(1)
	}
}
