// Command greedsweep generates the reproduction's parameter-sweep data
// series — the figure data — as CSV, optionally rendering an ASCII chart.
//
// Usage:
//
//	greedsweep -sweep eigen -n 5 -chart
//	greedsweep -sweep protection -csv protection.csv
//	greedsweep -sweep newton -workers 8
//	greedsweep -list
//
// With -timeout the sweep runs under a deadline; one that exceeds it
// prints FAILED(deadline) and exits non-zero (partial rows are
// discarded — a truncated figure is worse than none).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/plot"
	"greednet/internal/sweep"
	"greednet/internal/utility"
)

func main() {
	var (
		name    = flag.String("sweep", "eigen", "eigen|gap|protection|ghc|delay|newton|reaction")
		n       = flag.Int("n", 4, "number of users (eigen, gap upper bound, ghc, newton)")
		out     = flag.String("csv", "", "write CSV to this path (default stdout)")
		chart   = flag.Bool("chart", false, "render an ASCII chart instead of CSV")
		list    = flag.Bool("list", false, "list sweeps and exit")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for per-row sweep work (1 runs sequentially; output is identical either way)")
		timeout = flag.Duration("timeout", 0, "deadline for the sweep; exceeding it prints FAILED(deadline) and exits 1 (0 disables)")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *list {
		fmt.Println("eigen       ρ(A) vs γ under FIFO (§4.2.3 instability)")
		fmt.Println("gap         FIFO efficiency loss vs population size (§4.1.1)")
		fmt.Println("protection  victim congestion vs attacker rate (Thm 8)")
		fmt.Println("ghc         learning box width per round (Thm 5)")
		fmt.Println("delay       light-flow delay vs bulk load (§5.2)")
		fmt.Println("newton      Newton residual per step (Thm 7)")
		fmt.Println("reaction    best-reply curves vs opponent rate (insulation)")
		return
	}

	tab, series, logY, err := build(ctx, *name, *n, *workers)
	if err != nil {
		if errors.Is(err, core.ErrDeadline) && *timeout > 0 {
			fmt.Fprintf(os.Stderr, "greedsweep: FAILED(deadline): sweep exceeded the %v deadline\n", *timeout)
		} else if errors.Is(err, core.ErrDeadline) || errors.Is(err, core.ErrCanceled) {
			fmt.Fprintf(os.Stderr, "greedsweep: FAILED: %v\n", err)
		} else {
			fmt.Fprintln(os.Stderr, "greedsweep:", err)
		}
		os.Exit(1)
	}

	if *chart {
		fmt.Printf("sweep %s\n", tab.Name)
		fmt.Print(plot.Chart{Width: 64, Height: 14, LogY: logY}.Render(series...))
		return
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "greedsweep:", err)
			os.Exit(1)
		}
		defer func() {
			// A short write can surface only at close; don't report success
			// for a truncated CSV.
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "greedsweep:", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	if err := tab.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, "greedsweep:", err)
		os.Exit(1)
	}
}

// build constructs the requested sweep plus chart series.
func build(ctx context.Context, name string, n, workers int) (sweep.Table, []plot.Series, bool, error) {
	switch name {
	case "eigen":
		gammas := []float64{0.8, 0.5, 0.3, 0.2, 0.1, 0.05, 0.02, 0.01, 0.004}
		tab, err := sweep.EigenvalueCtx(ctx, workers, n, gammas)
		return tab, []plot.Series{
			{Name: "rho(A)", Y: tab.Column("rho")},
			{Name: "limit N-1", Y: tab.Column("limit")},
		}, false, err
	case "gap":
		ns := []int{2, 3, 4, 6, 8, 12, 16}
		tab, err := sweep.EfficiencyGapCtx(ctx, workers, 0.2, ns)
		return tab, []plot.Series{
			{Name: "relative loss", Y: tab.Column("relative_loss")},
		}, false, err
	case "protection":
		var atk []float64
		for a := 0.05; a <= 2.0; a += 0.05 {
			atk = append(atk, a)
		}
		tab, err := sweep.ProtectionCtx(ctx, 0.1, 2, atk)
		return tab, []plot.Series{
			{Name: "victim under FIFO", Y: tab.Column("victim_c_fifo")},
			{Name: "victim under Fair Share", Y: tab.Column("victim_c_fairshare")},
			{Name: "bound", Y: tab.Column("bound")},
		}, true, err
	case "ghc":
		tab, err := sweep.GHCWidthsCtx(ctx, n, 0.25, 14)
		return tab, []plot.Series{
			{Name: "Fair Share box width", Y: tab.Column("width_fairshare")},
			{Name: "FIFO box width", Y: tab.Column("width_fifo")},
		}, true, err
	case "delay":
		var bulk []float64
		for b := 0.05; b <= 0.95; b += 0.05 {
			bulk = append(bulk, b)
		}
		tab, err := sweep.InteractiveDelayCtx(ctx, 0.02, bulk)
		return tab, []plot.Series{
			{Name: "FIFO delay", Y: tab.Column("delay_fifo")},
			{Name: "Fair Share delay", Y: tab.Column("delay_fairshare")},
		}, true, err
	case "newton":
		tab, err := sweep.NewtonResidualsCtx(ctx, workers, n, 8)
		return tab, []plot.Series{
			{Name: "Fair Share residual", Y: tab.Column("resid_fairshare")},
			{Name: "FIFO residual", Y: tab.Column("resid_fifo")},
		}, true, err
	case "reaction":
		us := core.Profile{
			utility.NewLinear(1, 0.25),
			utility.NewLinear(1, 0.25),
		}
		tab, err := sweep.ReactionCurvesCtx(ctx, alloc.FairShare{}, us, 40)
		if err != nil {
			return tab, nil, false, err
		}
		tabF, err := sweep.ReactionCurvesCtx(ctx, alloc.Proportional{}, us, 40)
		if err != nil {
			return tab, nil, false, err
		}
		return tab, []plot.Series{
			{Name: "FS best reply", Y: tab.Column("br_user1")},
			{Name: "FIFO best reply", Y: tabF.Column("br_user1")},
		}, false, nil
	default:
		return sweep.Table{}, nil, false, fmt.Errorf("unknown sweep %q (use -list)", name)
	}
}
