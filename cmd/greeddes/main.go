// Command greeddes runs the discrete-event switch simulator under a chosen
// service discipline and compares the measured per-user average queues
// against the analytic allocation functions.
//
// Example:
//
//	greeddes -rates 0.1,0.15,0.2,0.25 -disc fairshare -horizon 4e5
//
// With -timeout the simulation runs under a wall-clock deadline; a run
// that exceeds it prints FAILED(deadline) and exits non-zero (no partial
// statistics are reported — truncated time averages are biased).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"greednet/internal/core"

	"greednet/internal/alloc"
	"greednet/internal/cliutil"
	"greednet/internal/des"
	"greednet/internal/mm1"
	"greednet/internal/randdist"
)

func main() {
	var (
		ratesStr = flag.String("rates", "0.1,0.15,0.2,0.25", "comma-separated Poisson rates (Σ < 1)")
		discName = flag.String("disc", "fairshare", "fifo|lifo|ps|holps|fairshare|ratepriority")
		horizon  = flag.Float64("horizon", 2e5, "simulated time after warmup")
		seed     = flag.Int64("seed", 1, "random seed")
		cv2      = flag.Float64("cv2", -1, "service-time CV² for the general-service engine (−1 = exponential fast path)")
		traceOut = flag.String("trace", "", "write a per-packet CSV trace to this path (memoryless engine only)")
		timeout  = flag.Duration("timeout", 0, "wall-clock deadline for the simulation; exceeding it prints FAILED(deadline) and exits 1 (0 disables)")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	rates, err := cliutil.ParseRates(*ratesStr)
	fatalIf(err)
	if !mm1.InDomain(rates) {
		fatalIf(fmt.Errorf("rates %v are infeasible: need every r_i > 0 and Σr < 1", rates))
	}

	var tracer *des.Tracer
	if *traceOut != "" {
		if *cv2 >= 0 {
			fatalIf(fmt.Errorf("-trace is only supported with the memoryless engine (omit -cv2)"))
		}
		tracer = des.NewTracer(0)
	}

	var res des.Result
	var discLabel string
	if *cv2 >= 0 {
		// General-service engine: fifo | fairshare | ratepriority.
		var cls des.Classifier
		switch *discName {
		case "fifo":
			cls = des.SingleClass{}
		case "fairshare", "fair-share", "fs":
			cls = &des.SerialClass{}
		case "ratepriority", "priority":
			cls = &des.RankClass{}
		default:
			fatalIf(fmt.Errorf("general-service engine supports fifo|fairshare|ratepriority, not %q", *discName))
		}
		discLabel = fmt.Sprintf("%s (M/G/1, cv²=%g)", cls.Name(), *cv2)
		res, err = des.RunGCtx(ctx, des.GConfig{
			Rates:    rates,
			Service:  randdist.FromCV2(*cv2),
			Classify: cls,
			Horizon:  *horizon,
			Seed:     *seed,
		})
		fatalSim(err, *timeout)
	} else {
		disc, err := cliutil.ParseDiscipline(*discName)
		fatalIf(err)
		discLabel = disc.Name() + " (M/M/1)"
		cfg := des.Config{
			Rates:      rates,
			Discipline: disc,
			Horizon:    *horizon,
			Seed:       *seed,
		}
		if tracer != nil {
			cfg.OnDeparture = tracer.Observe
		}
		res, err = des.RunCtx(ctx, cfg)
		fatalSim(err, *timeout)
	}
	if tracer != nil {
		f, err := os.Create(*traceOut)
		fatalIf(err)
		fatalIf(tracer.WriteCSV(f))
		fatalIf(f.Close())
		fmt.Printf("wrote %d packet records to %s (%d dropped)\n",
			len(tracer.Records), *traceOut, tracer.Dropped)
	}

	model := mm1.MG1{CV2: 1}
	if *cv2 >= 0 {
		model = mm1.MG1{CV2: *cv2}
	}
	fs := alloc.SerialG{Model: model}.Congestion(rates)
	prop := alloc.ProportionalG{Model: model}.Congestion(rates)

	fmt.Printf("discipline %s, %d users, load %.3g, horizon %.3g (%d departures)\n",
		discLabel, len(rates), mm1.Sum(rates), *horizon, res.Departures)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "user\trate\tavg queue\t±95% CI\tavg delay\tthroughput\tserial ideal\tproportional") //lint:allow errdrop console tabwriter over stdout: best-effort like fmt.Printf
	for i, r := range rates {
		fmt.Fprintf(tw, "%d\t%.4g\t%.5g\t%.2g\t%.5g\t%.4g\t%.5g\t%.5g\n", //lint:allow errdrop console tabwriter over stdout: best-effort like fmt.Printf
			i, r, res.AvgQueue[i], res.QueueCI95[i], res.AvgDelay[i],
			res.Throughput[i], fs[i], prop[i])
	}
	tw.Flush() //lint:allow errdrop console tabwriter over stdout: best-effort like fmt.Printf
	fmt.Printf("total queue %.5g (station model predicts %.5g)\n",
		res.TotalAvgQueue, model.L(mm1.Sum(rates)))
}

// fatalSim reports a simulation error; deadline and cancellation errors
// get the FAILED(...) rendering so scripts can grep for them.
func fatalSim(err error, timeout time.Duration) {
	if err == nil {
		return
	}
	switch {
	case errors.Is(err, core.ErrDeadline):
		fmt.Fprintf(os.Stderr, "greeddes: FAILED(deadline): simulation exceeded the %v deadline\n", timeout)
	case errors.Is(err, core.ErrCanceled):
		fmt.Fprintf(os.Stderr, "greeddes: FAILED(canceled): %v\n", err)
	default:
		fmt.Fprintln(os.Stderr, "greeddes:", err)
	}
	os.Exit(1)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "greeddes:", err)
		os.Exit(1)
	}
}
