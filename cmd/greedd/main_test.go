package main

import (
	"bufio"
	"fmt"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestRunServesAndDrainsClean boots the daemon on an ephemeral port,
// confirms it serves, sends it SIGTERM, and asserts the graceful-drain
// contract: exit 0 and the "drain clean" marker the CI smoke job greps
// for.  run prints to os.Stdout, so the test swaps it for a pipe.
func TestRunServesAndDrainsClean(t *testing.T) {
	rOut, wOut, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rOut.Close() }()
	origStdout := os.Stdout
	os.Stdout = wOut
	defer func() { os.Stdout = origStdout }()

	exitCh := make(chan int, 1)
	go func() {
		exitCh <- run([]string{"-addr", "127.0.0.1:0"})
		_ = wOut.Close()
	}()

	sc := bufio.NewScanner(rOut)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, "listening on ") {
			addr = strings.Fields(strings.SplitAfter(line, "listening on ")[1])[0]
			break
		}
	}
	if addr == "" {
		t.Fatal("daemon never announced its address")
	}

	// The daemon answers while alive.
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	var tail strings.Builder
	for sc.Scan() {
		tail.WriteString(sc.Text())
		tail.WriteByte('\n')
	}
	select {
	case code := <-exitCh:
		if code != 0 {
			t.Fatalf("exit code %d, output:\n%s", code, tail.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if !strings.Contains(tail.String(), "drain clean") {
		t.Fatalf("missing drain-clean marker; output:\n%s", tail.String())
	}
}

// TestRunBadFlags pins the usage exit code.
func TestRunBadFlags(t *testing.T) {
	if code := run([]string{"-alloc", "bogus"}); code != 2 {
		t.Fatalf("bad alloc: exit %d, want 2", code)
	}
	if code := run([]string{"-definitely-not-a-flag"}); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}
