// Command greedd serves the allocation game over HTTP: simulated
// selfish clients POST rate/utility updates, the daemon admits them
// under the Fair Share protection bound, batches concurrent solve
// requests into single Nash solves, and republishes each client's
// equilibrium congestion — the closed control loop of the paper run as
// a long-lived service.
//
// The daemon is built to degrade, not wedge: bounded queues with
// deadline-aware shedding, per-client token buckets, panic containment,
// and a stall watchdog that flips /healthz to draining.  On SIGTERM or
// SIGINT it drains gracefully and verifies that every goroutine it
// started has exited, printing "greedd: drain clean" (the marker the CI
// smoke job greps for) or "greedd: drain dirty" with a non-zero exit.
//
// Example:
//
//	greedd -addr 127.0.0.1:8080 -workers 4 -queue 128
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"greednet/internal/cliutil"
	"greednet/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("greedd", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address")
		allocName    = fs.String("alloc", "fair-share", "allocation: fair-share|proportional|hol|hol-largest|blend:θ")
		workers      = fs.Int("workers", 0, "solve workers (0 = default)")
		queueCap     = fs.Int("queue", 0, "solve queue bound (0 = default)")
		maxClients   = fs.Int("max-clients", 0, "admitted-population cap (0 = default)")
		solveTimeout = fs.Duration("solve-timeout", 0, "per-solve deadline (0 = default)")
		stallAfter   = fs.Duration("stall-after", 0, "watchdog stall threshold (0 = default)")
		drainBudget  = fs.Duration("drain", 10*time.Second, "graceful shutdown budget")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	al, err := cliutil.ParseAlloc(*allocName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "greedd:", err)
		return 2
	}

	// Install the signal handler before capturing the goroutine
	// baseline: the runtime's signal loop starts lazily on the first
	// Notify and (by design) never exits, so it must count as baseline,
	// not as a leak.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	baseline := runtime.NumGoroutine()

	svc := service.New(service.Options{
		Alloc:        al,
		Workers:      *workers,
		QueueCap:     *queueCap,
		MaxClients:   *maxClients,
		SolveTimeout: *solveTimeout,
		StallAfter:   *stallAfter,
	})
	svc.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "greedd:", err)
		return 1
	}
	httpSrv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
	}

	serveErr := make(chan error, 1)
	//lint:fanout http-serve runs the accept loop; exits when Shutdown closes the listener, reporting into the buffered serveErr channel
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stdout, "greedd: listening on %s (alloc=%s)\n", ln.Addr(), al.Name())

	select {
	case got := <-sig:
		fmt.Fprintf(os.Stdout, "greedd: %v, draining\n", got)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "greedd: serve:", err)
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainBudget)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "greedd: http shutdown:", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "greedd: serve:", err)
	}
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "greedd: service shutdown:", err)
		return 1
	}

	// The drain contract: every goroutine this process started must be
	// gone.  The count can trail the Shutdown return by a scheduler
	// beat, so poll briefly before declaring it dirty.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		fmt.Fprintf(os.Stderr, "greedd: drain dirty (goroutines=%d, baseline=%d)\n", n, baseline)
		return 1
	}
	fmt.Fprintf(os.Stdout, "greedd: drain clean (goroutines=%d)\n", runtime.NumGoroutine())
	return 0
}
