// Command greedlint runs greednet's in-tree static-analysis suite
// (internal/lint): the syntactic analyzers floateq, rngsource, panicfree,
// and errdrop; the dataflow-aware set feasguard, detorder, dimcheck, and
// parsafe; the interprocedural set allocfree, ctxflow, and wsalias,
// which flow per-function call-graph facts (who allocates, who carries a
// Ctx sibling) across package boundaries; and the concurrency-contract
// set guardedby, chanown, and fanout, which enforce the //lint:guardedby
// lock discipline on a CFG lock-held lattice, //lint:chanowner channel
// close ownership, and the parallel-only goroutine inventory.  A
// framework-level staleallow check reports //lint:allow directives that
// no longer suppress anything.
//
// It speaks the go command's (unpublished) vet driver protocol, so the
// canonical invocation is through the build system, which supplies export
// data, caches results, and forwards each dependency's facts through its
// vetx file:
//
//	go build -o bin/greedlint ./cmd/greedlint
//	go vet -vettool=bin/greedlint ./...
//
// It also runs standalone over package patterns, shelling out to `go list
// -deps` for file lists and export data and analyzing in dependency order
// so the facts flow the same way (test files are only covered by the
// vettool form, which analyzes each package's test variants):
//
//	greedlint ./...
//	greedlint -json ./...   # findings as a JSON array on stdout
//	greedlint -changed      # only packages with Go files changed vs HEAD
//
// Suppress an intentional finding with a trailing or preceding comment:
//
//	if cv2 == 0 { ... } //lint:allow floateq exact sentinel value
//
// Exit status: 0 when clean, 2 when findings were reported, 1 on errors.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"greednet/internal/lint"
)

var (
	analyzersFlag = flag.String("analyzers", "", "comma-separated analyzer subset to run (default: all)")
	versionFlag   = flag.String("V", "", "print version and exit (use -V=full for the build-system form)")
	flagsFlag     = flag.Bool("flags", false, "print analyzer flags in JSON (used by the go command)")
	jsonFlag      = flag.Bool("json", false, "standalone mode: also emit findings as a JSON array on stdout")
	changedFlag   = flag.Bool("changed", false, "standalone mode: lint only the packages holding Go files changed vs HEAD (plus untracked); exits 0 when nothing changed")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: greedlint [-analyzers=a,b] package... | vet.cfg\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *versionFlag != "" {
		printVersion()
		return
	}
	if *flagsFlag {
		printFlags()
		return
	}

	analyzers, err := lint.ByName(*analyzersFlag)
	if err != nil {
		fatal(err)
	}

	args := flag.Args()
	if *changedFlag {
		if len(args) > 0 {
			fatal(fmt.Errorf("greedlint: -changed selects its own packages; drop the %v arguments", args))
		}
		patterns, err := changedPackagePatterns()
		if err != nil {
			fatal(err)
		}
		if len(patterns) == 0 {
			fmt.Fprintln(os.Stderr, "greedlint: no Go files changed vs HEAD")
			return
		}
		runStandalone(patterns, analyzers)
		return
	}
	if len(args) == 0 {
		flag.Usage()
		os.Exit(1)
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnitchecker(args[0], analyzers)
		return
	}
	runStandalone(args, analyzers)
}

// printVersion implements -V / -V=full, which the go command uses to stamp
// the tool into its cache keys.  The output line must match the shape
// "<name> version devel ... buildID=<id>".
func printVersion() {
	progname := filepath.Base(os.Args[0])
	if *versionFlag != "full" {
		fmt.Printf("%s version devel\n", progname)
		return
	}
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:16])
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%s\n", progname, id)
}

// printFlags implements -flags: the go command queries the tool's flag set
// as JSON before parsing the `go vet` command line.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	out := []jsonFlag{
		{Name: "analyzers", Bool: false, Usage: "comma-separated analyzer subset to run"},
	}
	data, err := json.Marshal(out)
	if err != nil {
		fatal(err)
	}
	_, _ = os.Stdout.Write(data)
}

// vetConfig mirrors the JSON configuration cmd/go writes for each vetted
// package (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// runUnitchecker analyzes the single package described by a vet.cfg file.
//
// Facts protocol: the go command hands over each direct dependency's vetx
// file in PackageVetx and names the file to write in VetxOutput.  Every
// vetx file greedlint writes re-exports the merged transitive store (its
// own package facts plus everything it imported), so summaries reach
// dependents even though cmd/go only forwards direct dependencies.  A
// VetxOnly pass computes and writes facts without running the reporting
// analyzers.
func runUnitchecker(cfgFile string, analyzers []*lint.Analyzer) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("greedlint: parsing %s: %w", cfgFile, err))
	}
	store := lint.NewFactStore()
	for _, vetxFile := range cfg.PackageVetx {
		payload, err := os.ReadFile(vetxFile)
		if err != nil {
			continue // missing dependency facts degrade, never fail the build
		}
		dep, err := lint.DecodeFacts(payload)
		if err != nil {
			continue
		}
		store.Merge(dep)
	}

	// Always leave vetx output behind, even on failure: the go command
	// caches it and skips re-running the tool on unchanged dependencies.
	// The placeholder decodes as an empty store (header mismatch).
	writeVetx := func(payload []byte) {
		if cfg.VetxOutput == "" {
			return
		}
		if err := os.WriteFile(cfg.VetxOutput, payload, 0o666); err != nil {
			fatal(err)
		}
	}

	run := analyzers
	if cfg.VetxOnly {
		run = nil // dependency pass: compute facts, report nothing
	}
	diags, fset, facts, err := lint.AnalyzePkg(lint.LoadConfig{
		ImportPath:  cfg.ImportPath,
		GoFiles:     cfg.GoFiles,
		ImportMap:   cfg.ImportMap,
		PackageFile: cfg.PackageFile,
	}, run, store)
	if err != nil {
		writeVetx([]byte("greedlint\n"))
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatal(err)
	}
	store.Add(facts)
	payload, err := lint.EncodeFacts(store)
	if err != nil {
		fatal(err)
	}
	writeVetx(payload)
	if cfg.VetxOnly {
		return
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
		os.Exit(2)
	}
}

// listPackage is the subset of `go list -json` output the standalone mode
// consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	DepOnly    bool
	Standard   bool
}

// runStandalone resolves package patterns with `go list` and analyzes the
// module's packages in dependency order against the build cache's export
// data, threading one shared fact store through the sequence so the
// interprocedural analyzers see every dependency's summaries.  Findings
// are reported only for the named targets; dependency-only packages are
// analyzed for their facts alone.
func runStandalone(patterns []string, analyzers []*lint.Analyzer) {
	args := append([]string{"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,CgoFiles,Imports,DepOnly,Standard"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fatal(fmt.Errorf("greedlint: go list: %w", err))
	}

	exports := make(map[string]string)
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			fatal(fmt.Errorf("greedlint: decoding go list output: %w", err))
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard {
			pkgs = append(pkgs, p)
		}
	}

	// Collect every diagnostic across all target packages, then render one
	// globally sorted listing: byte-stable across runs and machines (paths
	// are reported relative to the working directory), so the output can
	// serve directly as a golden file.
	store := lint.NewFactStore()
	var all []renderedDiag
	for _, p := range topoOrder(pkgs) {
		if len(p.CgoFiles) > 0 {
			fmt.Fprintf(os.Stderr, "greedlint: skipping %s: cgo package\n", p.ImportPath)
			continue
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		run := analyzers
		if p.DepOnly {
			run = nil // facts only: not a named target
		}
		diags, fset, facts, err := lint.AnalyzePkg(lint.LoadConfig{
			ImportPath:  p.ImportPath,
			GoFiles:     files,
			PackageFile: exports,
		}, run, store)
		if err != nil {
			fatal(err)
		}
		store.Add(facts)
		if p.DepOnly {
			continue
		}
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			all = append(all, renderedDiag{
				File:     relPath(pos.Filename),
				Line:     pos.Line,
				Col:      pos.Column,
				Message:  d.Message,
				Analyzer: d.Analyzer,
			})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	for _, d := range all {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [%s]\n", d.File, d.Line, d.Col, d.Message, d.Analyzer)
	}
	if *jsonFlag {
		// The machine-readable artifact: same findings, same order, on
		// stdout (the text listing stays on stderr, so the two streams can
		// be captured independently).  An empty run emits [] rather than
		// null so consumers can always range over the result.
		if all == nil {
			all = []renderedDiag{}
		}
		data, err := json.MarshalIndent(all, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
	}
	if len(all) > 0 {
		os.Exit(2)
	}
}

// changedPackagePatterns maps the working tree's changed Go files —
// `git diff --name-only HEAD` plus untracked files — to the package
// patterns containing them, for the fail-fast pre-gate `greedlint
// -changed`.  Files under a testdata element are skipped (fixtures are
// not packages of this module), as are files whose directory no longer
// exists or lies outside the working directory.  The result is a lower
// bound on the full run, not a replacement: a change can break a
// *dependent* package's contract, which only `greedlint ./...` sees.
func changedPackagePatterns() ([]string, error) {
	top, err := gitLines("rev-parse", "--show-toplevel")
	if err != nil || len(top) == 0 {
		return nil, fmt.Errorf("greedlint: -changed needs a git worktree: %v", err)
	}
	changed, err := gitLines("diff", "--name-only", "HEAD")
	if err != nil {
		return nil, fmt.Errorf("greedlint: git diff: %w", err)
	}
	untracked, err := gitLines("ls-files", "--others", "--exclude-standard")
	if err != nil {
		return nil, fmt.Errorf("greedlint: git ls-files: %w", err)
	}
	wd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	dirs := make(map[string]bool)
	for _, f := range append(changed, untracked...) {
		if !strings.HasSuffix(f, ".go") {
			continue
		}
		// Git paths are repo-root-relative; patterns must be cwd-relative.
		rel, err := filepath.Rel(wd, filepath.Join(top[0], f))
		if err != nil || strings.HasPrefix(rel, "..") {
			continue
		}
		dir := filepath.ToSlash(filepath.Dir(rel))
		if dir != "." && slicesContainsTestdata(dir) {
			continue
		}
		if st, err := os.Stat(filepath.Dir(rel)); err != nil || !st.IsDir() {
			continue // the whole directory was deleted
		}
		dirs[dir] = true
	}
	patterns := make([]string, 0, len(dirs))
	for dir := range dirs {
		if dir == "." {
			patterns = append(patterns, ".")
		} else {
			patterns = append(patterns, "./"+dir)
		}
	}
	sort.Strings(patterns)
	return patterns, nil
}

// slicesContainsTestdata reports whether any element of the
// slash-separated path is the go tool's reserved testdata directory.
func slicesContainsTestdata(dir string) bool {
	for _, seg := range strings.Split(dir, "/") {
		if seg == "testdata" {
			return true
		}
	}
	return false
}

// gitLines runs a git subcommand and returns its non-empty output lines.
func gitLines(args ...string) ([]string, error) {
	cmd := exec.Command("git", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, err
	}
	var lines []string
	for _, l := range strings.Split(string(out), "\n") {
		if l != "" {
			lines = append(lines, l)
		}
	}
	return lines, nil
}

// topoOrder sorts packages dependencies-first (imports restricted to the
// listed set), so each package's analysis sees its dependencies' facts.
// go list already emits mostly-sorted output, but the contract here must
// not depend on that.
func topoOrder(pkgs []listPackage) []listPackage {
	byPath := make(map[string]*listPackage, len(pkgs))
	for i := range pkgs {
		byPath[pkgs[i].ImportPath] = &pkgs[i]
	}
	var out []listPackage
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *listPackage)
	visit = func(p *listPackage) {
		switch state[p.ImportPath] {
		case 1, 2:
			return // import cycles cannot happen in compiled Go code
		}
		state[p.ImportPath] = 1
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		state[p.ImportPath] = 2
		out = append(out, *p)
	}
	for i := range pkgs {
		visit(&pkgs[i])
	}
	return out
}

// renderedDiag is one finding resolved to its printable position; the
// field names are the -json output schema.
type renderedDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Analyzer string `json:"analyzer"`
}

// relPath reports p relative to the working directory when it lies inside
// it, keeping standalone output (and golden files) machine-independent.
func relPath(p string) string {
	wd, err := os.Getwd()
	if err != nil {
		return p
	}
	rel, err := filepath.Rel(wd, p)
	if err != nil || strings.HasPrefix(rel, "..") {
		return p
	}
	return rel
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
