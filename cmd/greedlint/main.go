// Command greedlint runs greednet's in-tree static-analysis suite
// (internal/lint): the syntactic analyzers floateq, rngsource, panicfree,
// and errdrop, plus the dataflow-aware set feasguard, detorder, dimcheck,
// and parsafe.
//
// It speaks the go command's (unpublished) vet driver protocol, so the
// canonical invocation is through the build system, which supplies export
// data and caches results:
//
//	go build -o bin/greedlint ./cmd/greedlint
//	go vet -vettool=bin/greedlint ./...
//
// It also runs standalone over package patterns, shelling out to `go list`
// for file lists and export data (test files are only covered by the
// vettool form, which analyzes each package's test variants):
//
//	greedlint ./...
//
// Suppress an intentional finding with a trailing or preceding comment:
//
//	if cv2 == 0 { ... } //lint:allow floateq exact sentinel value
//
// Exit status: 0 when clean, 2 when findings were reported, 1 on errors.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"greednet/internal/lint"
)

var (
	analyzersFlag = flag.String("analyzers", "", "comma-separated analyzer subset to run (default: all)")
	versionFlag   = flag.String("V", "", "print version and exit (use -V=full for the build-system form)")
	flagsFlag     = flag.Bool("flags", false, "print analyzer flags in JSON (used by the go command)")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: greedlint [-analyzers=a,b] package... | vet.cfg\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *versionFlag != "" {
		printVersion()
		return
	}
	if *flagsFlag {
		printFlags()
		return
	}

	analyzers, err := lint.ByName(*analyzersFlag)
	if err != nil {
		fatal(err)
	}

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(1)
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnitchecker(args[0], analyzers)
		return
	}
	runStandalone(args, analyzers)
}

// printVersion implements -V / -V=full, which the go command uses to stamp
// the tool into its cache keys.  The output line must match the shape
// "<name> version devel ... buildID=<id>".
func printVersion() {
	progname := filepath.Base(os.Args[0])
	if *versionFlag != "full" {
		fmt.Printf("%s version devel\n", progname)
		return
	}
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:16])
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%s\n", progname, id)
}

// printFlags implements -flags: the go command queries the tool's flag set
// as JSON before parsing the `go vet` command line.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	out := []jsonFlag{
		{Name: "analyzers", Bool: false, Usage: "comma-separated analyzer subset to run"},
	}
	data, err := json.Marshal(out)
	if err != nil {
		fatal(err)
	}
	_, _ = os.Stdout.Write(data)
}

// vetConfig mirrors the JSON configuration cmd/go writes for each vetted
// package (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// runUnitchecker analyzes the single package described by a vet.cfg file.
func runUnitchecker(cfgFile string, analyzers []*lint.Analyzer) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("greedlint: parsing %s: %w", cfgFile, err))
	}
	// Always leave (possibly empty) vetx output behind: the go command
	// caches it and skips re-running the tool on unchanged dependencies.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("greedlint\n"), 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		return // dependency pass: facts only, and greedlint has no facts
	}
	diags, fset, err := lint.Analyze(lint.LoadConfig{
		ImportPath:  cfg.ImportPath,
		GoFiles:     cfg.GoFiles,
		ImportMap:   cfg.ImportMap,
		PackageFile: cfg.PackageFile,
	}, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatal(err)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
		os.Exit(2)
	}
}

// listPackage is the subset of `go list -json` output the standalone mode
// consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	Standard   bool
}

// runStandalone resolves package patterns with `go list` and analyzes each
// non-dependency package against the build cache's export data.
func runStandalone(patterns []string, analyzers []*lint.Analyzer) {
	args := append([]string{"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,CgoFiles,DepOnly,Standard"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fatal(fmt.Errorf("greedlint: go list: %w", err))
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			fatal(fmt.Errorf("greedlint: decoding go list output: %w", err))
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	// Collect every diagnostic across all packages, then render one
	// globally sorted listing: byte-stable across runs and machines (paths
	// are reported relative to the working directory), so the output can
	// serve directly as a golden file.
	var all []renderedDiag
	for _, p := range targets {
		if len(p.CgoFiles) > 0 {
			fmt.Fprintf(os.Stderr, "greedlint: skipping %s: cgo package\n", p.ImportPath)
			continue
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		diags, fset, err := lint.Analyze(lint.LoadConfig{
			ImportPath:  p.ImportPath,
			GoFiles:     files,
			PackageFile: exports,
		}, analyzers)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			all = append(all, renderedDiag{
				file:     relPath(pos.Filename),
				line:     pos.Line,
				col:      pos.Column,
				message:  d.Message,
				analyzer: d.Analyzer,
			})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		if a.analyzer != b.analyzer {
			return a.analyzer < b.analyzer
		}
		return a.message < b.message
	})
	for _, d := range all {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [%s]\n", d.file, d.line, d.col, d.message, d.analyzer)
	}
	if len(all) > 0 {
		os.Exit(2)
	}
}

// renderedDiag is one finding resolved to its printable position.
type renderedDiag struct {
	file      string
	line, col int
	message   string
	analyzer  string
}

// relPath reports p relative to the working directory when it lies inside
// it, keeping standalone output (and golden files) machine-independent.
func relPath(p string) string {
	wd, err := os.Getwd()
	if err != nil {
		return p
	}
	rel, err := filepath.Rel(wd, p)
	if err != nil || strings.HasPrefix(rel, "..") {
		return p
	}
	return rel
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
