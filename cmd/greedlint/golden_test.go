package main

import (
	"errors"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.txt from the current output")

// TestGoldenStandalone builds the real binary, runs it twice over the
// self-contained fixture module in testdata/goldenmod, and requires
// (a) byte-identical output across runs — the determinism contract that
// lets the listing serve as a golden file — and (b) an exact match against
// testdata/golden.txt.  Regenerate with:
//
//	go test ./cmd/greedlint -run TestGoldenStandalone -update
func TestGoldenStandalone(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "greedlint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building greedlint: %v\n%s", err, out)
	}

	modDir, err := filepath.Abs(filepath.Join("testdata", "goldenmod"))
	if err != nil {
		t.Fatal(err)
	}
	run := func() []byte {
		cmd := exec.Command(bin, "./...")
		cmd.Dir = modDir
		out, err := cmd.CombinedOutput()
		var ee *exec.ExitError
		if !errors.As(err, &ee) || ee.ExitCode() != 2 {
			t.Fatalf("greedlint ./... in %s: err = %v, want exit status 2; output:\n%s",
				modDir, err, out)
		}
		return out
	}

	first := run()
	second := run()
	if string(first) != string(second) {
		t.Fatalf("standalone output is not deterministic across runs:\n--- first\n%s--- second\n%s",
			first, second)
	}

	golden := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.WriteFile(golden, first, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if string(first) != string(want) {
		t.Errorf("output does not match %s:\n--- got\n%s--- want\n%s", golden, first, want)
	}
}
