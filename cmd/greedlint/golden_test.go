package main

import (
	"encoding/json"
	"errors"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.txt and testdata/golden.json from the current output")

// buildLint compiles the real binary into a scratch dir and returns its
// path, together with the absolute path of the fixture module.
func buildLint(t *testing.T) (bin, modDir string) {
	t.Helper()
	bin = filepath.Join(t.TempDir(), "greedlint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building greedlint: %v\n%s", err, out)
	}
	modDir, err := filepath.Abs(filepath.Join("testdata", "goldenmod"))
	if err != nil {
		t.Fatal(err)
	}
	return bin, modDir
}

// checkGolden compares got against the named golden file, rewriting it
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("output does not match %s:\n--- got\n%s--- want\n%s", golden, got, want)
	}
}

// TestGoldenStandalone builds the real binary, runs it twice over the
// self-contained fixture module in testdata/goldenmod, and requires
// (a) byte-identical output across runs — the determinism contract that
// lets the listing serve as a golden file — and (b) an exact match against
// testdata/golden.txt.  The fixture module spans four packages with a
// dependency edge (solver imports alloc), so the run also proves the
// dependency-ordered fact flow of the interprocedural analyzers.
// Regenerate with:
//
//	go test ./cmd/greedlint -run TestGolden -update
func TestGoldenStandalone(t *testing.T) {
	bin, modDir := buildLint(t)
	run := func() []byte {
		cmd := exec.Command(bin, "./...")
		cmd.Dir = modDir
		out, err := cmd.CombinedOutput()
		var ee *exec.ExitError
		if !errors.As(err, &ee) || ee.ExitCode() != 2 {
			t.Fatalf("greedlint ./... in %s: err = %v, want exit status 2; output:\n%s",
				modDir, err, out)
		}
		return out
	}

	first := run()
	second := run()
	if string(first) != string(second) {
		t.Fatalf("standalone output is not deterministic across runs:\n--- first\n%s--- second\n%s",
			first, second)
	}
	checkGolden(t, "golden.txt", first)
}

// TestGoldenStandaloneJSON runs the same fixture module through -json and
// goldens the machine-readable stream: stdout must be exactly the findings
// array (CI parses it as an artifact), deterministic across runs, and in
// the same order as the text listing.
func TestGoldenStandaloneJSON(t *testing.T) {
	bin, modDir := buildLint(t)
	run := func() []byte {
		cmd := exec.Command(bin, "-json", "./...")
		cmd.Dir = modDir
		out, err := cmd.Output() // stdout only: the JSON must stand alone
		var ee *exec.ExitError
		if !errors.As(err, &ee) || ee.ExitCode() != 2 {
			t.Fatalf("greedlint -json ./... in %s: err = %v, want exit status 2; output:\n%s",
				modDir, err, out)
		}
		return out
	}

	first := run()
	second := run()
	if string(first) != string(second) {
		t.Fatalf("-json output is not deterministic across runs:\n--- first\n%s--- second\n%s",
			first, second)
	}

	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Message  string `json:"message"`
		Analyzer string `json:"analyzer"`
	}
	if err := json.Unmarshal(first, &findings); err != nil {
		t.Fatalf("stdout is not a JSON findings array: %v\n%s", err, first)
	}
	if len(findings) == 0 {
		t.Fatalf("-json reported no findings; the fixture module has several")
	}
	for i, f := range findings {
		if f.File == "" || f.Line == 0 || f.Message == "" || f.Analyzer == "" {
			t.Errorf("finding %d is missing fields: %+v", i, f)
		}
	}
	checkGolden(t, "golden.json", first)
}
