// Package solver is the dependent half of the interprocedural fixture:
// every finding below needs alloc's facts — cross-package allocation
// summaries and Ctx-variant records — so the golden file proves the
// dependency-ordered fact flow end to end.
package solver

import (
	"context"

	"goldenfixture/alloc"
)

// Workspace is the scratch type the goroutine-capture rule keys off.
type Workspace struct{ buf []float64 }

// HotScale stays allocation-free through the cross-package call: no
// finding, because alloc.Scale's summary says it is clean.
//
//lint:hotpath
func HotScale(x float64) float64 {
	return alloc.Scale(x)
}

// HotGrow calls a cross-package allocator: an allocfree finding at the
// call site, witnessed by alloc's exported summary.
//
//lint:hotpath
func HotGrow(n int) []float64 {
	return alloc.Grow(n)
}

// Relax holds a context but hands the work to the variant that ignores
// it: a ctxflow finding steering toward alloc.RunCtx.
func Relax(ctx context.Context, xs []float64) float64 {
	return alloc.Run(xs)
}

// Iterate does per-round work through a function call and never polls
// its context on the back-edge: a ctxflow finding.
func Iterate(ctx context.Context, xs []float64, rounds int) float64 {
	s := 0.0
	for k := 0; k < rounds; k++ {
		s += alloc.Scale(xs[k%len(xs)])
	}
	return s
}

// ScaleInto rebinds dst onto its input slice, so the "caller owns dst"
// contract silently breaks: a wsalias finding.
func ScaleInto(dst, rates []float64) []float64 {
	dst = rates[:len(rates)]
	for i := range dst {
		dst[i] *= 2
	}
	return dst
}

// Spawn captures the shared Workspace inside a goroutine: a wsalias
// finding (per-worker slices are the sanctioned shape).
func Spawn(ws *Workspace, done chan struct{}) {
	go func() {
		ws.buf = ws.buf[:0]
		close(done)
	}()
}
