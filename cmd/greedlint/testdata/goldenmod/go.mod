module goldenfixture

go 1.24
