// Package report is the other half of the golden fixture: determinism and
// concurrency violations, in a second package so the golden file exercises
// cross-package path sorting.
package report

import "fmt"

// Dump prints a map in iteration order: a detorder finding.
func Dump(m map[string]float64) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// Count races a goroutine against the spawner on total: a parsafe finding.
func Count() int {
	total := 0
	go func() {
		total++
	}()
	total = 5
	return total
}
