// Package conc seeds one violation per concurrency-contract analyzer
// (guardedby, chanown, fanout) so the golden output pins the v4 set.
package conc

import "sync"

// Counter guards its count with a mutex.
type Counter struct {
	mu sync.Mutex
	//lint:guardedby mu
	n int
}

// Bump writes the guarded field with no lock: a guardedby finding.
func (c *Counter) Bump() {
	c.n++
}

// Snapshot is the disciplined shape: no finding.
func (c *Counter) Snapshot() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Feed owns its channel through Run.
type Feed struct {
	//lint:chanowner Run
	out chan int
}

// Run is the declared owner: clean.
func (f *Feed) Run(n int) {
	for i := 0; i < n; i++ {
		f.out <- i
	}
	close(f.out)
}

// Stop closes from outside the owner: a chanown finding.
func (f *Feed) Stop() {
	close(f.out)
}

// Watch spawns an unannotated goroutine: a fanout finding.
func (f *Feed) Watch(c *Counter) {
	go func() {
		for range f.out {
			c.Snapshot()
		}
	}()
}
