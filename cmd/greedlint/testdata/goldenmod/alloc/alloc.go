// Package alloc is the dependency half of the interprocedural fixture:
// it is analyzed first, and its exported function summaries — who
// allocates, who carries a Ctx sibling — feed the solver package's pass
// through the fact store.  Nothing in here is flagged; the findings land
// in solver, at the call sites that consume these facts.
package alloc

import "context"

// Grow allocates on every call; the exported summary records the make,
// and solver's hot path pays for it at the call site.
func Grow(n int) []float64 {
	return make([]float64, n)
}

// Scale is allocation-free, so hot callers cross into it for free.
func Scale(x float64) float64 { return 2 * x }

// Run ignores cancellation; RunCtx below is its context-aware sibling,
// and the summary records the pairing.
func Run(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// RunCtx is the ctx-aware variant of Run.
func RunCtx(ctx context.Context, xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		if ctx.Err() != nil {
			return s
		}
		s += x
	}
	return s
}
