package queue

// Load evaluates the congestion formula with no feasibility guard in
// sight: a feasguard finding.
func Load(r Rate) Congestion {
	return G(r)
}

// Headroom mixes the two dimensions additively: a dimcheck finding.
func Headroom(r Rate, c Congestion) float64 {
	return c - r
}

// Converged compares floats exactly: a floateq finding.
func Converged(prev, next float64) bool {
	return prev == next
}

// Guarded is the clean shape of Load and produces no finding.
func Guarded(r []Rate) Congestion {
	if !InDomain(r) {
		return 0
	}
	return G(Sum(r))
}
