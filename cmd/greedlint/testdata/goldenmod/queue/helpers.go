// Package queue is half of the golden fixture: a stdlib-only module with
// one deliberate violation per dataflow analyzer, so the standalone
// greedlint output can be diffed byte-for-byte against golden.txt.
//
// The formula helpers live in this file, separate from the call sites in
// queue.go, because feasguard exempts same-file callees.
package queue

import "math"

type Rate = float64

type Congestion = float64

// G is the M/M/1 congestion formula.
func G(x Rate) Congestion {
	if x >= 1 {
		return Congestion(math.Inf(1))
	}
	return Congestion(x / (1 - x))
}

// Sum is the total arrival rate.
func Sum(r []Rate) Rate {
	var s Rate
	for _, v := range r {
		s += v
	}
	return s
}

// InDomain reports whether the rate vector lies in the feasible region.
func InDomain(r []Rate) bool {
	var s Rate
	for _, v := range r {
		if v <= 0 {
			return false
		}
		s += v
	}
	return s < 1
}
