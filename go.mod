module greednet

go 1.22
