module greednet

go 1.24
