// Learning: users know nothing about each other or the switch — they only
// observe their own payoffs and eliminate rate choices that prove
// dominated (the paper's "generalized hill climbing").  Under Fair Share
// every such learner is funneled to the unique Nash equilibrium; under
// FIFO elimination cannot even begin, because any candidate can be starved
// by the others' remaining candidates.
package main

import (
	"fmt"
	"math"

	"greednet"
)

func main() {
	const n = 3
	gamma := 0.25
	users := greednet.IdenticalProfile(greednet.NewLinearUtility(1, gamma), n)
	nashRate := (1 - math.Sqrt(gamma)) / float64(n) // closed form for FS

	fmt.Printf("3 identical users, U = r − %.2f·c;  FS Nash rate = %.4f each\n\n", gamma, nashRate)

	for _, disc := range []greednet.Allocation{
		greednet.NewFairShare(),
		greednet.NewProportional(),
	} {
		res := greednet.GeneralizedHillClimb(disc, users,
			greednet.NewBox(n, 1e-6, 1-1e-6),
			greednet.EliminationOptions{Tol: 1e-3})
		fmt.Printf("%s: candidate interval for user 0 by elimination round:\n", disc.Name())
		width := 1.0
		fmt.Printf("  start: [0.000, 1.000] (width %.3f)\n", width)
		for i, w := range res.Widths {
			if i < 6 || i == len(res.Widths)-1 {
				fmt.Printf("  round %2d: width %.5f\n", i+1, w)
			} else if i == 6 {
				fmt.Println("  ...")
			}
		}
		mid := res.Final.Mid()
		fmt.Printf("  outcome: converged=%v stalled=%v, midpoint %.4f (Nash %.4f)\n\n",
			res.Converged, res.Stalled, mid[0], nashRate)
	}

	fmt.Println("Under Fair Share, ignorance is no obstacle: any reasonable learner")
	fmt.Println("ends at the equilibrium. Under FIFO the candidate set barely shrinks —")
	fmt.Println("no rate is safe while others might flood the switch.")
}
