// Cheater: a malicious flow floods a switch shared with naive, fixed-rate
// users.  Under FIFO the victims' queues blow up with the attacker's rate;
// under Fair Share they are capped at the Definition-7 protection bound
// r/(1−N·r) no matter how hard the attacker pushes — even past the
// server's capacity.
package main

import (
	"fmt"
	"sort"

	"greednet"
)

func main() {
	const victims = 2
	victimRate := 0.1
	n := victims + 1 // two victims + the attacker
	bound := greednet.ProtectionBound(n, victimRate)
	fmt.Printf("victims send %.2f each; protection bound r/(1−Nr) = %.4f\n\n",
		victimRate, bound)

	fmt.Printf("%-10s %-12s %-14s %-14s\n", "attacker", "discipline", "victim queue", "within bound?")
	for _, atk := range []float64{0.2, 0.5, 0.7, 0.79, 1.5, 5.0} {
		rates := []float64{victimRate, victimRate, atk}
		for _, disc := range []greednet.Allocation{
			greednet.NewProportional(),
			greednet.NewFairShare(),
		} {
			// The attack deliberately pushes past server capacity (Σr > 1)
			// to show FIFO's blowup vs Fair Share's protection bound.
			c := disc.Congestion(rates) //lint:allow feasguard infeasible rates are the point of the demo
			ok := c[0] <= bound+1e-9
			fmt.Printf("%-10.2f %-12s %-14.4g %v\n", atk, disc.Name(), c[0], ok)
		}
	}

	// Confirm the analytic story with the event-driven simulator at a
	// stable-but-hostile load.
	rates := []float64{victimRate, victimRate, 0.75}
	fmt.Printf("\nsimulated victim queues at attacker rate %.2f:\n", rates[2])
	discs := map[string]greednet.Discipline{
		"fifo":       &greednet.SimFIFO{},
		"fair-share": &greednet.SimFairShare{},
	}
	names := make([]string, 0, len(discs))
	for name := range discs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d := discs[name]
		res, err := greednet.Simulate(greednet.SimConfig{
			Rates:      rates,
			Discipline: d,
			Horizon:    2e5,
			Seed:       7,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-11s victim queue %.4f (bound %.4f), victim delay %.3f\n",
			name, res.AvgQueue[0], bound, res.AvgDelay[0])
	}
	fmt.Println("\nFair Share's insulation: the victims' congestion depends only on")
	fmt.Println("senders no greedier than themselves — the attack hurts the attacker.")
}
