// Revelation (Theorem 6): instead of hill climbing, users may simply tell
// the switch their utility function, and the switch allocates at the Nash
// equilibrium of the reported profile.  Built on Fair Share (the B^FS
// mechanism) this is truthful — no lie helps.  Built on FIFO it is a
// manipulation playground: exaggerating your appetite acts like a
// Stackelberg commitment and pays.
package main

import (
	"fmt"

	"greednet"
)

func main() {
	truth := greednet.NewLinearUtility(1, 0.3) // our user's real preferences
	others := greednet.Profile{
		nil, // slot 0 belongs to our user
		greednet.NewLinearUtility(1, 0.25),
		greednet.NewLinearUtility(1, 0.4),
	}
	// Candidate misreports: pretend to be more/less congestion averse.
	lies := []struct {
		label string
		u     greednet.Utility
	}{
		{"claim γ=0.05 (very greedy)", greednet.NewLinearUtility(1, 0.05)},
		{"claim γ=0.15", greednet.NewLinearUtility(1, 0.15)},
		{"truth   γ=0.30", truth},
		{"claim γ=0.60 (meek)", greednet.NewLinearUtility(1, 0.6)},
	}

	for _, disc := range []greednet.Allocation{
		greednet.NewFairShare(),
		greednet.NewProportional(),
	} {
		m := greednet.Mechanism{Alloc: disc}
		fmt.Printf("\nmechanism on %s:\n", disc.Name())
		// Truthful baseline first: the yardstick every lie is judged by.
		baseReports := make(greednet.Profile, len(others))
		copy(baseReports, others)
		baseReports[0] = truth
		base, err := m.Allocate(baseReports)
		if err != nil {
			panic(err)
		}
		truthU := truth.Value(base.R[0], base.C[0])
		for _, lie := range lies {
			reports := make(greednet.Profile, len(others))
			copy(reports, others)
			reports[0] = lie.u
			p, err := m.Allocate(reports)
			if err != nil {
				fmt.Printf("  %-28s (no stable outcome)\n", lie.label)
				continue
			}
			// Judge the outcome with the TRUE utility.
			v := truth.Value(p.R[0], p.C[0])
			mark := ""
			switch {
			case lie.u == greednet.Utility(truth):
				mark = "  ← truthful baseline"
			case v > truthU+1e-9:
				mark = "  ← LIE PAYS"
			}
			fmt.Printf("  %-28s rate %.4f  queue %.4f  true utility %+.5f%s\n",
				lie.label, p.R[0], p.C[0], v, mark)
		}
	}
	fmt.Println("\nUnder B^FS the truthful report maximizes your true utility (Theorem 6);")
	fmt.Println("under the FIFO mechanism, overstating greed is rewarded.")
}
