// M/G/1 generalization (footnote 5 of the paper): the serial (Fair Share)
// allocation and its guarantees do not depend on exponential service —
// only on the station's total-congestion curve being increasing and
// convex.  This example runs the same selfish users over M/D/1
// (deterministic service) and a bursty M/G/1 (cv² = 2), and also shows the
// one thing that does NOT generalize: the Table-1 priority construction
// realizes the serial ideal exactly only for exponential service.
package main

import (
	"fmt"

	"greednet"
)

func main() {
	users := greednet.Profile{
		greednet.NewLinearUtility(1, 0.15),
		greednet.NewLinearUtility(1, 0.30),
		greednet.NewLinearUtility(1, 0.45),
	}
	start := []float64{0.1, 0.1, 0.1}

	for _, cv2 := range []float64{0, 1, 2} {
		model := greednet.MG1Model{CV2: cv2}
		serial := greednet.SerialAllocation{Model: model}
		res, err := greednet.SolveNash(serial, users, start, greednet.NashOptions{})
		if err != nil || !res.Converged {
			panic("solve failed")
		}
		if !greednet.Feasible(res.R) {
			panic("equilibrium left the feasible region")
		}
		p := greednet.Point{R: res.R, C: res.C}
		envy, _, _ := greednet.MaxEnvy(users, p)
		fmt.Printf("\n%s equilibrium:\n", serial.Name())
		for i := range res.R {
			fmt.Printf("  user %d: rate %.4f  queue %.4f\n", i, res.R[i], res.C[i])
		}
		fmt.Printf("  envy at equilibrium: %.2g (envy-free for every service law)\n", envy)

		// Realization drift: the Table-1 priority construction vs the ideal.
		table := greednet.TablePriorityAllocation{Model: model}
		ideal := serial.Congestion(res.R)
		real := table.Congestion(res.R)
		worst := 0.0
		for i := range ideal {
			d := (real[i] - ideal[i]) / ideal[i]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		fmt.Printf("  Table-1 realization drift from serial ideal: %.2f%%\n", 100*worst)
	}

	// Confirm with the general-service simulator at cv² = 2.
	fmt.Println("\ngeneral-service simulation check (cv² = 2, Table-1 splitter):")
	rates := []float64{0.1, 0.2, 0.3}
	sim, err := greednet.SimulateG(greednet.GSimConfig{
		Rates:    rates,
		Service:  greednet.ServiceFromCV2(2),
		Classify: &greednet.SerialClassifier{},
		Horizon:  2e5,
		Seed:     5,
	})
	if err != nil {
		panic(err)
	}
	exact := greednet.TablePriorityAllocation{Model: greednet.MG1Model{CV2: 2}}.Congestion(rates)
	for i := range rates {
		fmt.Printf("  user %d: measured %.4f  exact priority formula %.4f\n",
			i, sim.AvgQueue[i], exact[i])
	}
	fmt.Println("\nThe guarantees travel with the constraint's convexity; the specific")
	fmt.Println("queueing realization is an exponential-service artifact.")
}
