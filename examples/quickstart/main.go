// Quickstart: three selfish users share one switch.  We compute the Nash
// equilibrium that their self-optimization reaches under FIFO and under
// Fair Share, and show why the discipline choice matters: same users, same
// switch, very different outcomes.
package main

import (
	"fmt"

	"greednet"
)

func main() {
	// Three users with different congestion sensitivities: an aggressive
	// bulk mover, a balanced user, and a latency-conscious one.
	users := greednet.Profile{
		greednet.NewLinearUtility(1, 0.15), // aggressive
		greednet.NewLinearUtility(1, 0.30), // balanced
		greednet.NewLinearUtility(1, 0.45), // cautious
	}
	start := []float64{0.1, 0.1, 0.1}

	for _, disc := range []greednet.Allocation{
		greednet.NewProportional(), // what FIFO gives you
		greednet.NewFairShare(),    // what serial cost sharing gives you
	} {
		res, err := greednet.SolveNash(disc, users, start, greednet.NashOptions{})
		if err != nil {
			panic(err)
		}
		fmt.Printf("\n%s equilibrium (converged=%v in %d rounds):\n",
			disc.Name(), res.Converged, res.Iters)
		for i := range res.R {
			fmt.Printf("  user %d: rate %.4f  congestion %.4f  utility %+.4f\n",
				i, res.R[i], res.C[i], users[i].Value(res.R[i], res.C[i]))
		}
		p := greednet.Point{R: res.R, C: res.C}
		if amount, i, j := greednet.MaxEnvy(users, p); amount > 1e-9 {
			fmt.Printf("  fairness: user %d envies user %d by %.4f\n", i, j, amount)
		} else {
			fmt.Println("  fairness: envy-free")
		}
		resid := greednet.ParetoResidual(users, p)
		fmt.Printf("  Pareto FDC residual: %.3g %.3g %.3g\n", resid[0], resid[1], resid[2])
	}

	fmt.Println("\nLesson: under FIFO the cautious user is squeezed and envies the")
	fmt.Println("aggressive one; Fair Share yields an envy-free equilibrium where each")
	fmt.Println("user's congestion is insulated from bigger senders.")
}
