// FTP vs Telnet (§5.2 of the paper): two greedy bulk transfers share a
// switch with two light interactive sessions.  The bulk flows self-
// optimize; the interactive flows just need their few packets through
// quickly.  We compute the selfish operating point analytically under FIFO
// and Fair Share, then replay it in the discrete-event simulator to
// measure actual packet delays.
package main

import (
	"fmt"

	"greednet"
)

func main() {
	// FTP-like users: throughput hungry, barely congestion sensitive.
	// Telnet-like users: fixed tiny rate (they do not optimize).
	users := greednet.Profile{
		greednet.NewLinearUtility(1, 0.06),
		greednet.NewLinearUtility(1, 0.10),
		greednet.NewLinearUtility(1, 0.50),
		greednet.NewLinearUtility(1, 0.50),
	}
	free := []bool{true, true, false, false}
	start := []float64{0.1, 0.1, 0.01, 0.01}

	type outcome struct {
		name        string
		rates       []float64
		telnetDelay float64
	}
	var outs []outcome
	for _, disc := range []greednet.Allocation{
		greednet.NewProportional(),
		greednet.NewFairShare(),
	} {
		res, err := greednet.SolveNash(disc, users, start, greednet.NashOptions{Free: free})
		if err != nil || !res.Converged {
			panic(fmt.Sprint("solve failed: ", err))
		}
		var sim greednet.Discipline
		if disc.Name() == "fair-share" {
			sim = &greednet.SimFairShare{}
		} else {
			sim = &greednet.SimFIFO{}
		}
		meas, err := greednet.Simulate(greednet.SimConfig{
			Rates:      res.R,
			Discipline: sim,
			Horizon:    2e5,
			Seed:       42,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("\n%s selfish operating point:\n", disc.Name())
		labels := []string{"FTP-1 ", "FTP-2 ", "telnet", "telnet"}
		for i := range res.R {
			fmt.Printf("  %s rate %.4f  queue %.4f  measured delay %.3f\n",
				labels[i], res.R[i], res.C[i], meas.AvgDelay[i])
		}
		outs = append(outs, outcome{disc.Name(), res.R, meas.AvgDelay[2]})
	}

	fmt.Printf("\ninteractive delay: FIFO %.3f vs Fair Share %.3f (%.1f× better)\n",
		outs[0].telnetDelay, outs[1].telnetDelay, outs[0].telnetDelay/outs[1].telnetDelay)
	fmt.Println("Fair Queueing's §5.2 claims in action: fair bulk throughput, low")
	fmt.Println("interactive delay, and the light flows never pay for the FTP backlog.")
}
