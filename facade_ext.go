package greednet

import (
	"math/rand"

	"greednet/internal/alloc"
	"greednet/internal/des"
	"greednet/internal/game"
	"greednet/internal/mm1"
	"greednet/internal/randdist"
	"greednet/internal/selfish"
)

// This file extends the public facade with the general-service (M/G/1)
// layer, the closed-loop selfish simulation, and the coalition analysis.

// ---- Server models (footnote 5) -----------------------------------------

// ServerModel abstracts a station's total-congestion curve L(x).
type ServerModel = mm1.ServerModel

// MM1Model is the exponential-service station (the paper's base model).
type MM1Model = mm1.MM1

// MG1Model is the Pollaczek–Khinchine station with chosen service CV².
type MG1Model = mm1.MG1

// SerialAllocation is Fair Share generalized to an arbitrary server model.
type SerialAllocation = alloc.SerialG

// ProportionalAllocation is the FIFO-like allocation over an arbitrary
// server model.
type ProportionalAllocation = alloc.ProportionalG

// TablePriorityAllocation is the exact allocation of the paper's Table-1
// priority construction under general service (equals Fair Share at CV²=1).
type TablePriorityAllocation = alloc.TablePriorityG

// ---- General-service simulation -------------------------------------------

// ServiceDist is a unit-mean service-time distribution.
type ServiceDist = randdist.Dist

// ServiceFromCV2 returns the natural unit-mean distribution with the given
// squared coefficient of variation (deterministic, exponential, or gamma).
func ServiceFromCV2(cv2 float64) ServiceDist { return randdist.FromCV2(cv2) }

// GSimConfig configures the general-service simulator.
type GSimConfig = des.GConfig

// Classifier assigns priority classes to arriving packets.
type Classifier = des.Classifier

// Classifiers for SimulateG.
type (
	// SingleClassifier is plain M/G/1 FIFO.
	SingleClassifier = des.SingleClass
	// SerialClassifier is the Table-1 thinning splitter.
	SerialClassifier = des.SerialClass
	// RankClassifier is strict priority by ascending rate.
	RankClassifier = des.RankClass
)

// SimulateG runs the general-service preemptive-priority simulator.
func SimulateG(cfg GSimConfig) (SimResult, error) { return des.RunG(cfg) }

// ---- Packet scheduling (non-preemptive) ------------------------------------

// Scheduler picks the next packet to transmit whole (non-preemptive).
type Scheduler = des.Scheduler

// FairQueueing is the Demers–Keshav–Shenker Fair Queueing scheduler
// (virtual-time finish tags), reference [3] of the paper.
type FairQueueing = des.FQSched

// FCFSScheduler is plain first-come-first-served transmission.
type FCFSScheduler = des.FCFSSched

// SchedSimConfig configures the non-preemptive packet simulator.
type SchedSimConfig = des.SchedConfig

// SimulateSched runs the non-preemptive packet scheduler simulator.
func SimulateSched(cfg SchedSimConfig) (SimResult, error) { return des.RunSched(cfg) }

// ---- Closed-loop selfish users ----------------------------------------------

// SelfishOptions configures a closed-loop run of measurement-driven users.
type SelfishOptions = selfish.Options

// SelfishResult reports a closed-loop run.
type SelfishResult = selfish.Result

// DisciplineFactory builds a fresh simulator discipline per epoch.
type DisciplineFactory = selfish.DisciplineFactory

// RunSelfish simulates users that hill-climb on congestion measured in the
// discrete-event simulator (§2.2's knob-turning users).
func RunSelfish(factory DisciplineFactory, us Profile, r0 []Rate, opt SelfishOptions) SelfishResult {
	return selfish.Run(factory, us, r0, opt)
}

// ---- Coalitions (footnote 14) --------------------------------------------------

// CoalitionDeviation is a joint deviation improving every coalition member.
type CoalitionDeviation = game.CoalitionDeviation

// FindCoalitionDeviation searches for an improving joint deviation by the
// given coalition from the point r.
func FindCoalitionDeviation(a Allocation, us Profile, r []Rate, coalition []int, rng *rand.Rand, samples int) *CoalitionDeviation {
	return game.FindCoalitionDeviation(a, us, r, coalition, rng, samples)
}

// StrongEquilibriumCheck searches every coalition for an improving joint
// deviation; nil means r resisted all sampled coalitional manipulation.
func StrongEquilibriumCheck(a Allocation, us Profile, r []Rate, rng *rand.Rand, samplesPerCoalition int) *CoalitionDeviation {
	return game.StrongEquilibriumCheck(a, us, r, rng, samplesPerCoalition)
}
