package greednet

import (
	"context"

	"greednet/internal/game"
)

// This file extends the public facade with the class-aggregated game
// layer: K utility classes with integer multiplicities standing in for N
// individual users, the O(K)-per-round Nash solver over them, and the
// N → ∞ fluid (heavy-traffic) limit.  See DESIGN.md §13.

// ---- Class-aggregated games -----------------------------------------------

// Class is a group of identical users: a shared utility, a shared
// per-member rate, and an integer multiplicity.
type Class = game.Class

// ClassGame is a canonical (sorted, duplicate-merged) list of classes.
type ClassGame = game.ClassGame

// ClassNashOptions configures SolveNashClass; the embedded NashOptions
// carry Tol/Damping/MaxIter with the same defaults as SolveNash.
type ClassNashOptions = game.ClassNashOptions

// ClassNashResult reports a class-aggregated solve: R and C are per
// class, in canonical class order (ClassGame.ExpandVec expands them to
// per-user vectors).
type ClassNashResult = game.ClassNashResult

// ClassWorkspace owns the scratch buffers of a class solve; the zero
// value is ready and is reused allocation-free across solves.
type ClassWorkspace = game.ClassWorkspace

// ClassSummation selects the class solver's arithmetic.
type ClassSummation = game.ClassSummation

// ClassFast runs the O(K)-per-round aggregated arithmetic (the default);
// ClassMirror expands to per-user vectors and mirrors SolveNash
// bit-for-bit — the oracle the fast path is tested against.
const (
	ClassFast   = game.ClassFast
	ClassMirror = game.ClassMirror
)

// ErrBadClass reports an invalid class specification.
var ErrBadClass = game.ErrBadClass

// NewClassGame validates, canonicalizes, and merges a class list.
func NewClassGame(classes []Class) (ClassGame, error) { return game.NewClassGame(classes) }

// AggregateClasses groups a per-user profile into a ClassGame; classOf
// maps each user index to its class in the canonical order.  Expand is
// its inverse: Aggregate-then-Expand reproduces the (sorted) profile and
// rates bit-exactly.
func AggregateClasses(us Profile, r []Rate) (cg ClassGame, classOf []int, err error) {
	return game.Aggregate(us, r)
}

// ClassUtilitySpec renders a utility as the deterministic string used to
// decide class membership: equal specs (and bit-equal rates) merge.
func ClassUtilitySpec(u Utility) string { return game.UtilitySpec(u) }

// NewClassWorkspace returns an empty class workspace (the zero value
// also works).
func NewClassWorkspace() *ClassWorkspace { return game.NewClassWorkspace() }

// SolveNashClass runs best-response iteration on the class-aggregated
// game: one representative per class, each round O(K) for Fair Share.
// At K classes over N = ΣCount users the cost is independent of N, so a
// million-user solve prices like a K-user one.
func SolveNashClass(a Allocation, cg ClassGame, opt ClassNashOptions) (ClassNashResult, error) {
	return game.SolveNashClass(a, cg, opt)
}

// SolveNashClassWS is SolveNashClass under a context with a reusable
// workspace; r0 overrides the classes' own starting rates when non-nil.
func SolveNashClassWS(ctx context.Context, ws *ClassWorkspace, a Allocation, cg ClassGame, r0 []Rate, opt ClassNashOptions) (ClassNashResult, error) {
	return game.SolveNashClassWS(ctx, ws, a, cg, r0, opt)
}

// SolveNashClassInto is the allocation-free form: results land in the
// caller's rdst/cdst (length K) and the returned result aliases them.
func SolveNashClassInto(ctx context.Context, ws *ClassWorkspace, a Allocation, cg ClassGame, r0 []Rate, opt ClassNashOptions, rdst, cdst []float64) (ClassNashResult, error) {
	return game.SolveNashClassInto(ctx, ws, a, cg, r0, opt, rdst, cdst)
}

// ---- Fluid (heavy-traffic) limit -------------------------------------------

// FluidResult reports the N → ∞ equilibrium in scaled units: Y[j] is
// class j's scaled per-user rate ŷ_j = lim N·ρ_j and Chat[j] its scaled
// congestion, in canonical class order.  Divide by N to compare with a
// finite-N solve.
type FluidResult = game.FluidResult

// Fluid-solver domain errors: the limit exists N-free only for linear
// utilities, and only Fair Share and Proportional have a fluid evaluator.
var (
	ErrFluidUtility = game.ErrFluidUtility
	ErrFluidAlloc   = game.ErrFluidAlloc
)

// SolveNashFluid solves the N → ∞ fluid equilibrium of a class game
// directly in scaled units — the heavy-traffic operating point a large
// finite-N solve converges to.  Class counts set the population shares;
// the absolute N only matters when unscaling.
func SolveNashFluid(ctx context.Context, a Allocation, cg ClassGame, opt ClassNashOptions) (FluidResult, error) {
	return game.SolveNashFluid(ctx, a, cg, opt)
}
