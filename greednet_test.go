package greednet_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"greednet"
)

// TestPublicAPIQuickstart exercises the facade exactly as the README's
// quickstart does.
func TestPublicAPIQuickstart(t *testing.T) {
	us := greednet.Profile{
		greednet.NewLinearUtility(1, 0.2),
		greednet.NewLinearUtility(1, 0.3),
	}
	res, err := greednet.SolveNash(greednet.NewFairShare(), us,
		[]float64{0.1, 0.1}, greednet.NashOptions{})
	if err != nil || !res.Converged {
		t.Fatalf("SolveNash: %v %+v", err, res)
	}
	if res.R[0] <= res.R[1] {
		t.Errorf("less congestion-averse user should send more: %v", res.R)
	}
	rep := greednet.CheckFeasible(res.R, res.C, 1e-7)
	if !rep.Feasible {
		t.Errorf("equilibrium allocation infeasible: %+v", rep)
	}
}

func TestPublicAPISimulation(t *testing.T) {
	res, err := greednet.Simulate(greednet.SimConfig{
		Rates:      []float64{0.2, 0.3},
		Discipline: &greednet.SimFairShare{},
		Horizon:    5e4,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := greednet.NewFairShare().Congestion([]float64{0.2, 0.3})
	for i := range want {
		if math.Abs(res.AvgQueue[i]-want[i]) > 0.15*want[i]+0.05 {
			t.Errorf("sim queue[%d] = %v, want ≈%v", i, res.AvgQueue[i], want[i])
		}
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	if got := len(greednet.Experiments()); got != 21 {
		t.Fatalf("Experiments() = %d entries, want 21", got)
	}
	var buf bytes.Buffer
	v, err := greednet.RunExperiment("E5", &buf, greednet.ExperimentOptions{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Match {
		t.Errorf("E5 mismatch: %s", v.Note)
	}
	if !strings.Contains(buf.String(), "verdict:") {
		t.Error("missing verdict output")
	}
	if _, err := greednet.RunExperiment("E99", &buf, greednet.ExperimentOptions{}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestPublicAPINetwork(t *testing.T) {
	nw, err := greednet.LineNetwork(2, greednet.NewFairShare())
	if err != nil {
		t.Fatal(err)
	}
	us := greednet.IdenticalProfile(greednet.NewLinearUtility(1, 0.25), 3)
	res, err := greednet.SolveNash(nw, us, []float64{0.1, 0.1, 0.1}, greednet.NashOptions{})
	if err != nil || !res.Converged {
		t.Fatalf("network solve: %v", err)
	}
	if res.R[0] >= res.R[1] {
		t.Errorf("long flow should send less: %v", res.R)
	}
}

func TestPublicAPIGHC(t *testing.T) {
	us := greednet.IdenticalProfile(greednet.NewLinearUtility(1, 0.25), 2)
	res := greednet.GeneralizedHillClimb(greednet.NewFairShare(), us,
		greednet.NewBox(2, 1e-6, 1-1e-6), greednet.EliminationOptions{Tol: 1e-3})
	if !res.Converged {
		t.Errorf("GHC should converge for 2 FS users: %+v", res)
	}
}

func TestPublicAPIProtectionBound(t *testing.T) {
	if b := greednet.ProtectionBound(2, 0.25); math.Abs(b-0.5) > 1e-12 {
		t.Errorf("ProtectionBound = %v", b)
	}
	if g := greednet.G(0.5); math.Abs(g-1) > 1e-12 {
		t.Errorf("G(0.5) = %v", g)
	}
}
