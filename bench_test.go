// Benchmarks: one per reproduced table/figure-equivalent (E1–E21, run in
// fast mode through the experiment registry), plus micro-benchmarks of the
// core machinery and the ablations called out in DESIGN.md §6.
package greednet_test

import (
	"io"
	"testing"

	"greednet"
	"greednet/internal/alloc"
	"greednet/internal/des"
	"greednet/internal/game"
	"greednet/internal/numeric"
	"greednet/internal/utility"
)

// benchExperiment runs one registered experiment end to end in fast mode.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		v, err := greednet.RunExperiment(id, io.Discard, greednet.ExperimentOptions{Fast: true})
		if err != nil {
			b.Fatal(err)
		}
		if !v.Match {
			b.Fatalf("%s stopped reproducing the paper: %s", id, v.Note)
		}
	}
}

func BenchmarkE1Table1Priority(b *testing.B)  { benchExperiment(b, "E1") }
func BenchmarkE2FIFONashPareto(b *testing.B)  { benchExperiment(b, "E2") }
func BenchmarkE3SymmetricPareto(b *testing.B) { benchExperiment(b, "E3") }
func BenchmarkE4EnvyScan(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5Uniqueness(b *testing.B)      { benchExperiment(b, "E5") }
func BenchmarkE6GHC(b *testing.B)             { benchExperiment(b, "E6") }
func BenchmarkE7Revelation(b *testing.B)      { benchExperiment(b, "E7") }
func BenchmarkE8Relaxation(b *testing.B)      { benchExperiment(b, "E8") }
func BenchmarkE9Protection(b *testing.B)      { benchExperiment(b, "E9") }
func BenchmarkE10FtpTelnet(b *testing.B)      { benchExperiment(b, "E10") }
func BenchmarkE11Separable(b *testing.B)      { benchExperiment(b, "E11") }
func BenchmarkE12Network(b *testing.B)        { benchExperiment(b, "E12") }
func BenchmarkE13FQvsFS(b *testing.B)         { benchExperiment(b, "E13") }

// ---- Core machinery ------------------------------------------------------

var sinkF float64
var sinkV []float64

func BenchmarkFairShareCongestionN8(b *testing.B) {
	r := []float64{0.02, 0.04, 0.06, 0.08, 0.1, 0.12, 0.14, 0.16}
	fs := alloc.FairShare{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkV = fs.Congestion(r)
	}
}

func BenchmarkProportionalCongestionN8(b *testing.B) {
	r := []float64{0.02, 0.04, 0.06, 0.08, 0.1, 0.12, 0.14, 0.16}
	p := alloc.Proportional{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkV = p.Congestion(r)
	}
}

func BenchmarkNashSolveFairShareN4(b *testing.B) {
	us := utility.Identical(utility.NewLinear(1, 0.25), 4)
	r0 := []float64{0.05, 0.1, 0.15, 0.2}
	for i := 0; i < b.N; i++ {
		res, err := game.SolveNash(alloc.FairShare{}, us, r0, game.NashOptions{})
		if err != nil || !res.Converged {
			b.Fatal("solve failed")
		}
	}
}

func BenchmarkBestResponseFairShare(b *testing.B) {
	u := utility.NewLinear(1, 0.25)
	r := []float64{0.1, 0.2, 0.15}
	for i := 0; i < b.N; i++ {
		sinkF, _ = game.BestResponse(alloc.FairShare{}, u, r, 0, game.BROptions{})
	}
}

func BenchmarkDESFairShare100kEvents(b *testing.B) {
	rates := []float64{0.1, 0.15, 0.2, 0.25}
	for i := 0; i < b.N; i++ {
		// Horizon ≈ 100k events at total event rate ≈ 1.7/time unit.
		_, err := des.Run(des.Config{
			Rates:      rates,
			Discipline: &des.FairShareSplitter{},
			Horizon:    6e4,
			Seed:       int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDESFIFO100kEvents(b *testing.B) {
	rates := []float64{0.1, 0.15, 0.2, 0.25}
	for i := 0; i < b.N; i++ {
		_, err := des.Run(des.Config{
			Rates:      rates,
			Discipline: &des.FIFO{},
			Horizon:    6e4,
			Seed:       int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigenvalues8x8(b *testing.B) {
	m := numeric.NewMatrix(8, 8)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			m.Set(i, j, float64((i*7+j*3)%11)-5)
		}
	}
	for i := 0; i < b.N; i++ {
		if _, err := numeric.Eigenvalues(m); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations (DESIGN.md §6) ----------------------------------------------

// Analytic triangular Jacobian vs finite differences for Fair Share.
func BenchmarkFSJacobianAnalyticN6(b *testing.B) {
	r := []float64{0.03, 0.06, 0.09, 0.12, 0.15, 0.18}
	fs := alloc.FairShare{}
	for i := 0; i < b.N; i++ {
		_ = fs.Jacobian(r)
	}
}

func BenchmarkFSJacobianFDN6(b *testing.B) {
	r := []float64{0.03, 0.06, 0.09, 0.12, 0.15, 0.18}
	fs := alloc.FairShare{}
	for i := 0; i < b.N; i++ {
		_ = numeric.JacobianFD(fs.Congestion, r, 1e-7)
	}
}

// Gauss–Seidel vs Jacobi best-response iteration.
func BenchmarkNashGaussSeidelN4(b *testing.B) {
	us := utility.Identical(utility.NewLinear(1, 0.25), 4)
	r0 := []float64{0.05, 0.1, 0.15, 0.2}
	for i := 0; i < b.N; i++ {
		res, _ := game.SolveNash(alloc.FairShare{}, us, r0,
			game.NashOptions{Scheme: game.GaussSeidel})
		if !res.Converged {
			b.Fatal("GS failed")
		}
	}
}

func BenchmarkNashJacobiN4(b *testing.B) {
	us := utility.Identical(utility.NewLinear(1, 0.25), 4)
	r0 := []float64{0.05, 0.1, 0.15, 0.2}
	for i := 0; i < b.N; i++ {
		res, _ := game.SolveNash(alloc.FairShare{}, us, r0,
			game.NashOptions{Scheme: game.Jacobi})
		if !res.Converged {
			b.Fatal("Jacobi failed")
		}
	}
}

// Grid-seeded golden section vs plain golden section in best response.
func BenchmarkBRGridSeeded(b *testing.B) {
	u := utility.NewLinear(1, 0.25)
	r := []float64{0.1, 0.2, 0.15}
	for i := 0; i < b.N; i++ {
		sinkF, _ = game.BestResponse(alloc.FairShare{}, u, r, 0,
			game.BROptions{GridPoints: 64})
	}
}

func BenchmarkBRCoarseGrid(b *testing.B) {
	u := utility.NewLinear(1, 0.25)
	r := []float64{0.1, 0.2, 0.15}
	for i := 0; i < b.N; i++ {
		sinkF, _ = game.BestResponse(alloc.FairShare{}, u, r, 0,
			game.BROptions{GridPoints: 8})
	}
}
