// Suite-level benchmarks: the full fast experiment suite end to end,
// sequential vs pooled — the repo's perf-trajectory datapoint for the
// parallel driver (`make bench` archives the comparison as
// BENCH_parallel.json via greedbench -benchjson).
package greednet_test

import (
	"io"
	"runtime"
	"testing"

	"greednet"
)

// benchSuite runs the whole registry through the parallel driver.
func benchSuite(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		outcomes, err := greednet.RunAllExperiments(io.Discard, greednet.ExperimentOptions{Fast: true}, workers)
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range outcomes {
			if o.Err != nil {
				b.Fatalf("%s errored: %v", o.Experiment.ID, o.Err)
			}
			if !o.Verdict.Match {
				b.Fatalf("%s stopped reproducing the paper: %s", o.Experiment.ID, o.Verdict.Note)
			}
		}
	}
}

func BenchmarkSuiteSequential(b *testing.B) { benchSuite(b, 1) }

func BenchmarkSuiteParallel(b *testing.B) { benchSuite(b, runtime.GOMAXPROCS(0)) }
