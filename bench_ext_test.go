// Benchmarks for the extension layer: the paper's footnote-5/14 and ref-[8]
// reproductions (E14–E17), the general-service engine, and the coalition
// search.
package greednet_test

import (
	"math/rand"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/des"
	"greednet/internal/game"
	"greednet/internal/learnauto"
	"greednet/internal/mm1"
	"greednet/internal/randdist"
	"greednet/internal/utility"
)

func BenchmarkE14ClosedLoop(b *testing.B)    { benchExperiment(b, "E14") }
func BenchmarkE15MG1(b *testing.B)           { benchExperiment(b, "E15") }
func BenchmarkE16Coalition(b *testing.B)     { benchExperiment(b, "E16") }
func BenchmarkE17Automata(b *testing.B)      { benchExperiment(b, "E17") }
func BenchmarkE18DKSFQ(b *testing.B)         { benchExperiment(b, "E18") }
func BenchmarkE19Tandem(b *testing.B)        { benchExperiment(b, "E19") }
func BenchmarkE20OnlyFairShare(b *testing.B) { benchExperiment(b, "E20") }

func BenchmarkE21ClassAggregation(b *testing.B) { benchExperiment(b, "E21") }

// DESIGN.md §6 ablation: grid+golden best response vs Newton-on-FDC.
func BenchmarkBRNewtonFDC(b *testing.B) {
	us := utility.Identical(utility.NewLinear(1, 0.25), 3)
	r := []float64{0.1, 0.2, 0.15}
	for i := 0; i < b.N; i++ {
		sinkF, _ = game.BestResponseNewton(alloc.FairShare{}, us, r, 0, game.BROptions{})
	}
}

func BenchmarkFairQueueing100kEvents(b *testing.B) {
	rates := []float64{0.1, 0.15, 0.2, 0.25}
	for i := 0; i < b.N; i++ {
		_, err := des.RunSched(des.SchedConfig{
			Rates:   rates,
			Sched:   &des.FQSched{},
			Horizon: 6e4,
			Seed:    int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDESGeneralService100kEvents(b *testing.B) {
	rates := []float64{0.1, 0.15, 0.2, 0.25}
	for i := 0; i < b.N; i++ {
		_, err := des.RunG(des.GConfig{
			Rates:    rates,
			Service:  randdist.FromCV2(2),
			Classify: &des.SerialClass{},
			Horizon:  6e4,
			Seed:     int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialGCongestionN8(b *testing.B) {
	r := []float64{0.02, 0.04, 0.06, 0.08, 0.1, 0.12, 0.14, 0.16}
	s := alloc.SerialG{Model: mm1.MG1{CV2: 2}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkV = s.Congestion(r)
	}
}

func BenchmarkCoalitionSearchN3(b *testing.B) {
	us := utility.Identical(utility.NewLinear(1, 0.2), 3)
	res, err := game.SolveNash(alloc.Proportional{}, us, []float64{0.1, 0.1, 0.1}, game.NashOptions{})
	if err != nil || !res.Converged {
		b.Fatal("solve failed")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		if w := game.FindCoalitionDeviation(alloc.Proportional{}, us, res.R, []int{0, 1, 2}, rng, 500); w == nil {
			b.Fatal("expected a deviation at FIFO Nash")
		}
	}
}

func BenchmarkLearningAutomata(b *testing.B) {
	us := utility.Identical(utility.NewLinear(1, 0.25), 3)
	payoff := learnauto.AnalyticPayoff(alloc.FairShare{}, us)
	for i := 0; i < b.N; i++ {
		learnauto.Run(payoff, 3, learnauto.Options{Seed: int64(i + 1), Rounds: 3000})
	}
}

func BenchmarkGammaSampling(b *testing.B) {
	g := randdist.GammaFromCV2(2)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		sinkF = g.Sample(rng)
	}
}
