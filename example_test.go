package greednet_test

import (
	"fmt"
	"math"

	"greednet"
)

// ExampleSolveNash computes the selfish operating point of two users under
// the Fair Share discipline.
func ExampleSolveNash() {
	users := greednet.Profile{
		greednet.NewLinearUtility(1, 0.25),
		greednet.NewLinearUtility(1, 0.25),
	}
	res, err := greednet.SolveNash(greednet.NewFairShare(), users,
		[]float64{0.1, 0.1}, greednet.NashOptions{})
	if err != nil {
		panic(err)
	}
	// Identical users split the closed-form symmetric rate (1−√γ)/N.
	fmt.Printf("rates: %.4f %.4f converged: %v\n", res.R[0], res.R[1], res.Converged)
	// Output:
	// rates: 0.2500 0.2500 converged: true
}

// ExampleProtectionBound shows the Definition-7 guarantee.
func ExampleProtectionBound() {
	fmt.Printf("%.4f\n", greednet.ProtectionBound(3, 0.1))
	// Output:
	// 0.1429
}

// ExampleFairShare demonstrates the insulation property: a flooding user
// cannot raise a light user's congestion above its symmetric share.
func ExampleFairShare() {
	fs := greednet.NewFairShare()
	calm := fs.Congestion([]float64{0.1, 0.2})
	flood := fs.Congestion([]float64{0.1, 5.0})
	fmt.Printf("light user: calm %.4f, under flood %.4f\n", calm[0], flood[0])
	fmt.Printf("flooder gets: %v\n", flood[1])
	// Output:
	// light user: calm 0.1250, under flood 0.1250
	// flooder gets: +Inf
}

// ExampleMaxEnvy evaluates fairness of an allocation point.
func ExampleMaxEnvy() {
	users := greednet.Profile{
		greednet.NewLinearUtility(1, 0.25),
		greednet.NewLinearUtility(1, 0.25),
	}
	p := greednet.Point{R: []float64{0.1, 0.4}, C: []float64{0.2, 0.5}}
	amount, envier, envied := greednet.MaxEnvy(users, p)
	fmt.Printf("user %d envies user %d by %.4f\n", envier, envied, amount)
	// Output:
	// user 0 envies user 1 by 0.2250
}

// ExampleG evaluates the M/M/1 mean-queue curve.
func ExampleG() {
	fmt.Printf("%.1f %.1f\n", greednet.G(0.5), greednet.G(0.9))
	// Output:
	// 1.0 9.0
}

func ExampleCheckFeasible() {
	r := []float64{0.2, 0.3}
	c := greednet.NewFairShare().Congestion(r)
	rep := greednet.CheckFeasible(r, c, 1e-9)
	fmt.Println(rep.Feasible, rep.Interior)
	// Output:
	// true true
}

// ExampleSimulate validates an analytic allocation against the exact
// event-driven simulation.
func ExampleSimulate() {
	rates := []float64{0.2, 0.3}
	res, err := greednet.Simulate(greednet.SimConfig{
		Rates:      rates,
		Discipline: &greednet.SimFairShare{},
		Horizon:    2e5,
		Seed:       1,
	})
	if err != nil {
		panic(err)
	}
	want := greednet.NewFairShare().Congestion(rates)
	ok := math.Abs(res.AvgQueue[0]-want[0]) < 0.05 && math.Abs(res.AvgQueue[1]-want[1]) < 0.1
	fmt.Println("simulation matches analytics:", ok)
	// Output:
	// simulation matches analytics: true
}
