GO ?= go
LINT := bin/greedlint
FUZZTIME ?= 30s

.PHONY: all build lint lint-changed lint-json lint-golden test race bench bench-micro bench-events bench-classes service-bench escapes escapes-update fuzz clean

all: build lint test

build:
	$(GO) build ./...

$(LINT): cmd/greedlint/*.go internal/lint/*.go
	$(GO) build -o $(LINT) ./cmd/greedlint

# The fail-fast pre-gate first (only the packages whose Go files changed
# vs HEAD — seconds, not the whole module), then go vet's standard
# checks, then the full in-tree greedlint suite — floateq, rngsource,
# panicfree, errdrop, the dataflow-aware feasguard, detorder, dimcheck,
# parsafe, the interprocedural allocfree, ctxflow, wsalias, and the
# concurrency-contract guardedby, chanown, fanout — through the vettool
# protocol (covers test files, flows call-graph facts through vetx),
# then once standalone for the sorted listing.
lint: $(LINT) lint-changed
	$(GO) vet ./...
	$(GO) vet -vettool=$(abspath $(LINT)) ./...
	$(LINT) ./...

# Standalone run scoped to the git-changed packages: the quick local
# loop (and the first thing `make lint` tries, so a broken edit fails in
# seconds).  A lower bound only — dependents of a changed package are
# not re-checked until the full run.
lint-changed: $(LINT)
	$(LINT) -changed

# Machine-readable findings stream (CI archives it as an artifact).
# Exit 0 writes [], so the artifact always exists and always parses.
lint-json: $(LINT)
	$(LINT) -json ./... > LINT.json || true

# Regenerate cmd/greedlint/testdata/golden.{txt,json} after changing
# analyzer messages or the golden fixture module.
lint-golden:
	$(GO) test ./cmd/greedlint -run TestGolden -update

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 5m ./...

# Suite benchmarks plus the perf-trajectory artifact: one sequential and
# one pooled pass over the fast suite, archived as BENCH_parallel.json
# (sequential vs parallel wall-clock, worker count, host cores).
bench:
	$(GO) test -run='^$$' -bench='BenchmarkSuite(Sequential|Parallel)$$' -benchtime=1x .
	$(GO) run ./cmd/greedbench -fast -benchjson BENCH_parallel.json

# Hot-path micro-benchmarks (internal/hotpath): ns/op, allocs/op and
# bytes/op for the five hottest paths plus their legacy baselines,
# archived as BENCH_hotpath.json.  Exits 1 if a gated zero-allocation
# path regressed to allocating.
bench-micro:
	$(GO) run ./cmd/greedbench -hotpath BENCH_hotpath.json

# Events/sec headline gate: the calendar-queue engine vs the frozen heap
# baseline over identical event sequences at N = 10², 10⁴, 10⁵ sources,
# plus the multicore replication-throughput pass.  Archived as
# BENCH_events.json; exits 1 when a calendar/heap ratio drops under its
# scale's floor, the warm event loop allocates, or (multi-core hosts
# only) replication throughput stops scaling.
bench-events:
	$(GO) run ./cmd/greedbench -events BENCH_events.json

# Class-solver gate: the class-aggregated Nash solver at K classes over
# N users up to 10^6, archived as BENCH_classes.json.  Exits 1 when a
# scale's ns/op exceeds its ceiling (the solve went O(N)), the warm
# steady state allocates, the class solve measures slower than the exact
# solver it aggregates, or the fast arithmetic drifts off the exact
# per-user answers (Float64bits at K = N and K = 1).
bench-classes:
	$(GO) run ./cmd/greedbench -classes BENCH_classes.json

# greedd chaos load harness: a thousand hill-climbing selfish clients
# plus the four service-level chaos injectors against an in-process
# greedd, archived as BENCH_service.json (latency percentiles, shed
# accounting by typed reason, cache hit rate, drain verdict).  Exits 1
# on queue growth past its bound, rejections without a typed reason,
# handler panics, or goroutines leaked across the drain.  The shared
# overwrite guard refuses to replace a multi-core artifact with a
# single-core run; override deliberately with FORCE=-force.
service-bench:
	$(GO) run ./cmd/greedbench -service BENCH_service.json -seed 7 $(FORCE)

# Compiler escape-analysis gate: diff `go build -gcflags=-m` output over
# the //lint:hotpath functions against BENCH_escapes.json.  Exits 1 on
# a new heap escape (regression) or a stale baseline entry (fixed
# escape still listed); a clean run rewrites the file byte-identically.
escapes:
	$(GO) run ./cmd/greedbench -escapes BENCH_escapes.json

# Accept the current escape set as the new baseline (after auditing the
# gate's ESCAPE(new)/ESCAPE(stale) listing).
escapes-update:
	rm -f BENCH_escapes.json
	$(GO) run ./cmd/greedbench -escapes BENCH_escapes.json

# Short fuzz smoke over the allocation invariants; CI runs this on every
# push, longer local runs via FUZZTIME=5m make fuzz.
fuzz:
	$(GO) test ./internal/alloc -run='^$$' -fuzz=FuzzFairShareInvariants -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/alloc -run='^$$' -fuzz=FuzzTablePriorityGMatchesFairShareAtCV1 -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/chaos -run='^$$' -fuzz=FuzzAllocationPassThrough -fuzztime=$(FUZZTIME)

clean:
	rm -rf bin
