GO ?= go
LINT := bin/greedlint
FUZZTIME ?= 30s

.PHONY: all build lint test race fuzz clean

all: build lint test

build:
	$(GO) build ./...

$(LINT): cmd/greedlint/*.go internal/lint/*.go
	$(GO) build -o $(LINT) ./cmd/greedlint

# go vet's standard checks, then the in-tree greedlint suite (floateq,
# rngsource, panicfree, errdrop) through the same vettool protocol.
lint: $(LINT)
	$(GO) vet ./...
	$(GO) vet -vettool=$(abspath $(LINT)) ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz smoke over the allocation invariants; CI runs this on every
# push, longer local runs via FUZZTIME=5m make fuzz.
fuzz:
	$(GO) test ./internal/alloc -run='^$$' -fuzz=FuzzFairShareInvariants -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/alloc -run='^$$' -fuzz=FuzzTablePriorityGMatchesFairShareAtCV1 -fuzztime=$(FUZZTIME)

clean:
	rm -rf bin
