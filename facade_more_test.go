package greednet_test

import (
	"math"
	"math/rand"
	"testing"

	"greednet"
)

func TestFacadeDerivativeHelpers(t *testing.T) {
	fs := greednet.NewFairShare()
	r := []float64{0.1, 0.2, 0.3}
	jac := greednet.JacobianOf(fs, r)
	if jac.Rows() != 3 || jac.Cols() != 3 {
		t.Fatalf("Jacobian shape %dx%d", jac.Rows(), jac.Cols())
	}
	// Triangular structure through the facade.
	if math.Abs(jac.At(0, 2)) > 1e-12 {
		t.Errorf("∂C_0/∂r_2 should vanish: %v", jac.At(0, 2))
	}
	if rep := greednet.CheckMAC(fs, r, 1e-6); !rep.OK {
		t.Errorf("FS should pass MAC: %+v", rep)
	}
	u := greednet.NewLinearUtility(1, 0.3)
	if m := greednet.MarginalRate(u, 0.2, 0.4); math.Abs(m+1/0.3) > 1e-12 {
		t.Errorf("marginal rate %v", m)
	}
}

func TestFacadeGameHelpers(t *testing.T) {
	us := greednet.IdenticalProfile(greednet.NewLinearUtility(1, 0.25), 2)
	fs := greednet.NewFairShare()
	x, val := greednet.BestResponse(fs, us[0], []float64{0.1, 0.1}, 0, greednet.BROptions{})
	if x <= 0 || math.IsInf(val, 0) {
		t.Errorf("best response %v %v", x, val)
	}
	res, err := greednet.SolveNash(fs, us, []float64{0.1, 0.1}, greednet.NashOptions{})
	if err != nil || !res.Converged {
		t.Fatal("solve failed")
	}
	e := greednet.NashResidual(fs, us, res.R)
	if math.Abs(e[0]) > 1e-4 {
		t.Errorf("residual %v at equilibrium", e)
	}
	p := greednet.Point{R: res.R, C: res.C}
	pr := greednet.ParetoResidual(us, p)
	if math.Abs(pr[0]) > 1e-3 {
		t.Errorf("symmetric FS Nash should be Pareto: %v", pr)
	}
	st, err := greednet.SolveStackelberg(fs, us, 0, []float64{0.1, 0.1}, greednet.StackOptions{})
	if err != nil || !st.FollowersConverged {
		t.Fatalf("stackelberg failed: %v", err)
	}
	A := greednet.RelaxationMatrix(greednet.NewProportional(), us, res.R, 1e-6)
	if _, err := greednet.SpectralRadius(A); err != nil {
		t.Errorf("spectral radius: %v", err)
	}
}

func TestFacadeCoalitions(t *testing.T) {
	us := greednet.IdenticalProfile(greednet.NewLinearUtility(1, 0.2), 2)
	prop := greednet.NewProportional()
	res, err := greednet.SolveNash(prop, us, []float64{0.1, 0.1}, greednet.NashOptions{})
	if err != nil || !res.Converged {
		t.Fatal("solve failed")
	}
	rng := rand.New(rand.NewSource(1))
	if w := greednet.FindCoalitionDeviation(prop, us, res.R, []int{0, 1}, rng, 2000); w == nil {
		t.Error("grand coalition should improve at FIFO Nash")
	}
	fsRes, _ := greednet.SolveNash(greednet.NewFairShare(), us, []float64{0.1, 0.1}, greednet.NashOptions{})
	if w := greednet.StrongEquilibriumCheck(greednet.NewFairShare(), us, fsRes.R, rng, 400); w != nil {
		t.Errorf("FS Nash should resist coalitions: %+v", w)
	}
}

func TestFacadeSelfishLoop(t *testing.T) {
	us := greednet.IdenticalProfile(greednet.NewLinearUtility(1, 0.25), 2)
	res := greednet.RunSelfish(
		func() greednet.Discipline { return &greednet.SimFairShare{} },
		us, []float64{0.1, 0.3},
		greednet.SelfishOptions{Seed: 1, Rounds: 15, Epoch: 1500},
	)
	if len(res.Trajectory) != 16 || res.Epochs == 0 {
		t.Errorf("unexpected selfish run: rounds=%d epochs=%d", len(res.Trajectory), res.Epochs)
	}
}

func TestFacadeGeneralService(t *testing.T) {
	res, err := greednet.SimulateG(greednet.GSimConfig{
		Rates:    []float64{0.2, 0.3},
		Service:  greednet.ServiceFromCV2(2),
		Classify: &greednet.SerialClassifier{},
		Horizon:  3e4,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Departures == 0 {
		t.Error("no departures")
	}
	serial := greednet.SerialAllocation{Model: greednet.MG1Model{CV2: 2}}
	if c := serial.Congestion([]float64{0.2, 0.3}); c[0] <= 0 || c[1] <= c[0] {
		t.Errorf("serial allocation %v", c)
	}
	tp := greednet.TablePriorityAllocation{Model: greednet.MG1Model{CV2: 1}}
	fsC := greednet.NewFairShare().Congestion([]float64{0.2, 0.3})
	tpC := tp.Congestion([]float64{0.2, 0.3})
	for i := range fsC {
		if math.Abs(fsC[i]-tpC[i]) > 1e-9 {
			t.Errorf("cv²=1 table priority should equal FS: %v vs %v", tpC, fsC)
		}
	}
	var m greednet.ServerModel = greednet.MM1Model{}
	if m.L(0.5) != 1 {
		t.Errorf("MM1 model L(0.5) = %v", m.L(0.5))
	}
	pa := greednet.ProportionalAllocation{Model: greednet.MG1Model{CV2: 0}}
	if c := pa.Congestion([]float64{0.2, 0.2}); c[0] != c[1] {
		t.Errorf("equal rates must get equal proportional congestion: %v", c)
	}
}

func TestFacadeScheduledSim(t *testing.T) {
	res, err := greednet.SimulateSched(greednet.SchedSimConfig{
		Rates:   []float64{0.1, 0.4},
		Sched:   &greednet.FairQueueing{},
		Horizon: 5e4,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ff, err := greednet.SimulateSched(greednet.SchedSimConfig{
		Rates:   []float64{0.1, 0.4},
		Sched:   &greednet.FCFSScheduler{},
		Horizon: 5e4,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgDelay[0] >= ff.AvgDelay[0] {
		t.Errorf("FQ should cut the light flow's delay: %v vs %v",
			res.AvgDelay[0], ff.AvgDelay[0])
	}
}

func TestFacadeMechanism(t *testing.T) {
	m := greednet.Mechanism{Alloc: greednet.NewFairShare()}
	us := greednet.Profile{
		greednet.NewLinearUtility(1, 0.3),
		greednet.NewLinearUtility(1, 0.4),
	}
	p, err := m.Allocate(us)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.R) != 2 {
		t.Errorf("allocation %+v", p)
	}
}
