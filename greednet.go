// Package greednet is a game-theoretic queueing library reproducing Scott
// Shenker's "Making Greed Work in Networks: A Game-Theoretic Analysis of
// Switch Service Disciplines" (SIGCOMM 1994).
//
// The model: one exponential server of rate 1 (the switch) is shared by N
// independent Poisson sources.  A service discipline induces an allocation
// function C(r) from offered rates to per-user average queue lengths
// (congestion); each user holds a private utility U(r_i, c_i) and adjusts
// its rate selfishly, so operating points are Nash equilibria.  The paper
// shows the Fair Share allocation (serial cost sharing) is the unique
// monotonic discipline giving envy-free, unique, robustly learnable,
// Stackelberg-immune, rapidly convergent, truthfully implementable, and
// protective equilibria — while FIFO-like disciplines guarantee none of
// those — and that no discipline guarantees Pareto-optimal equilibria.
//
// This package is the public facade: it re-exports the model interfaces,
// the allocation functions, the utility families, the game solvers, the
// self-optimization dynamics, the revelation mechanism, the discrete-event
// simulator, and the multi-switch network model from the internal
// packages.  A minimal session:
//
//	us := greednet.Profile{
//		greednet.NewLinearUtility(1, 0.2),
//		greednet.NewLinearUtility(1, 0.3),
//	}
//	res, _ := greednet.SolveNash(greednet.NewFairShare(), us,
//		[]float64{0.1, 0.1}, greednet.NashOptions{})
//	fmt.Println(res.R, res.C)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every reproduced table and theorem.
package greednet

import (
	"context"
	"io"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/des"
	"greednet/internal/dynamics"
	"greednet/internal/experiment"
	"greednet/internal/game"
	"greednet/internal/mechanism"
	"greednet/internal/mm1"
	"greednet/internal/network"
	"greednet/internal/numeric"
	"greednet/internal/utility"
)

// ---- Model vocabulary -------------------------------------------------

// Rate is the dimension of a Poisson arrival rate (a float64 alias); the
// greedlint dimcheck analyzer keeps it from mixing with Congestion.
type Rate = core.Rate

// Congestion is the dimension of an average queue length (a float64 alias).
type Congestion = core.Congestion

// Feasible reports whether rates lie inside the M/M/1 region Σr < 1 with
// every r_i > 0 — the canonical guard before evaluating g(x) or an
// allocation outside solver-controlled domains.
func Feasible(r []Rate) bool { return core.Feasible(r) }

// Allocation is a switch allocation function C(r); see core.Allocation.
type Allocation = core.Allocation

// Utility is a user preference U(r, c); see core.Utility.
type Utility = core.Utility

// Profile is one utility per user.
type Profile = core.Profile

// Point is an operating point (rates with their congestions).
type Point = core.Point

// MarginalRate returns M = U_r/U_c, the paper's marginal-utility ratio.
func MarginalRate(u Utility, r Rate, c Congestion) float64 { return core.MarginalRate(u, r, c) }

// ---- M/M/1 analytics ---------------------------------------------------

// G is the M/M/1 total-queue function g(x) = x/(1−x).  Like the internal
// helper it wraps, it is only meaningful for x < 1; guard with Feasible.
func G(x Rate) Congestion { return mm1.G(x) } //lint:allow feasguard thin facade re-export; the domain is the caller's contract

// FeasibilityReport describes how an allocation relates to the
// work-conserving feasible set.
type FeasibilityReport = mm1.FeasibilityReport

// CheckFeasible validates (r, c) against the Coffman–Mitrani feasible set.
func CheckFeasible(r []Rate, c []Congestion, tol float64) FeasibilityReport {
	return mm1.CheckFeasible(r, c, tol)
}

// ProtectionBound is the Definition-7 guarantee r/(1 − n·r), finite only
// while n·r < 1; guard with Feasible.
func ProtectionBound(n int, r Rate) Congestion { return mm1.ProtectionBound(n, r) } //lint:allow feasguard thin facade re-export; the domain is the caller's contract

// ---- Allocation functions ----------------------------------------------

// FairShare is the serial cost sharing allocation (the paper's hero).
type FairShare = alloc.FairShare

// Proportional is the FIFO/LIFO/PS allocation C_i = r_i/(1−Σr).
type Proportional = alloc.Proportional

// HOLPriority is strict preemptive priority keyed to the rate order.
type HOLPriority = alloc.HOLPriority

// Blend interpolates between Fair Share and proportional.
type Blend = alloc.Blend

// PriorityOrder selects the HOLPriority direction.
type PriorityOrder = alloc.PriorityOrder

// Priority orderings for HOLPriority.
const (
	SmallestFirst = alloc.SmallestFirst
	LargestFirst  = alloc.LargestFirst
)

// NewFairShare returns the Fair Share allocation function.
func NewFairShare() Allocation { return alloc.FairShare{} }

// NewProportional returns the proportional (FIFO) allocation function.
func NewProportional() Allocation { return alloc.Proportional{} }

// JacobianOf returns ∂C_i/∂r_j for any allocation (analytic when
// implemented, finite differences otherwise).
func JacobianOf(a Allocation, r []Rate) *numeric.Matrix { return alloc.JacobianOf(a, r) }

// CheckMAC verifies the paper's monotonicity (MAC) conditions at r.
func CheckMAC(a Allocation, r []Rate, tol float64) alloc.MACReport {
	return alloc.CheckMAC(a, r, tol)
}

// ---- Utility families ----------------------------------------------------

// LinearUtility is U = A·r − Γ·c.
type LinearUtility = utility.Linear

// ExponentialUtility is the Lemma-5 planting family.
type ExponentialUtility = utility.Exponential

// LogUtility is U = W·log r − Γ·c.
type LogUtility = utility.Log

// PowerUtility is U = A·r − Γ·c^P.
type PowerUtility = utility.Power

// SqrtUtility is U = W·√r − Γ·c.
type SqrtUtility = utility.Sqrt

// DelaySensitiveUtility penalizes delay c/r (a §5.2 Telnet archetype).
type DelaySensitiveUtility = utility.DelaySensitive

// NewLinearUtility returns U = a·r − gamma·c.
func NewLinearUtility(a, gamma float64) LinearUtility { return utility.NewLinear(a, gamma) }

// IdenticalProfile replicates one utility for n users.
func IdenticalProfile(u Utility, n int) Profile { return utility.Identical(u, n) }

// ---- Game solvers ---------------------------------------------------------

// BROptions configures best-response searches.
type BROptions = game.BROptions

// NashOptions configures SolveNash.
type NashOptions = game.NashOptions

// NashResult reports a Nash solve.
type NashResult = game.NashResult

// StackOptions and StackelbergResult configure/report leader-follower
// equilibria.
type (
	StackOptions      = game.StackOptions
	StackelbergResult = game.StackelbergResult
)

// Update schemes for best-response iteration.
const (
	GaussSeidel = game.GaussSeidel
	Jacobi      = game.Jacobi
)

// BestResponse maximizes user i's utility over its own rate.
func BestResponse(a Allocation, u Utility, r []Rate, i int, opt BROptions) (x, val float64) {
	return game.BestResponse(a, u, r, i, opt)
}

// SolveNash runs best-response iteration to a Nash equilibrium.
func SolveNash(a Allocation, us Profile, r0 []Rate, opt NashOptions) (NashResult, error) {
	return game.SolveNash(a, us, r0, opt)
}

// SolveNashCtx is SolveNash under a context: the solver polls ctx once
// per best-response round and gives up with ErrCanceled / ErrDeadline.
func SolveNashCtx(ctx context.Context, a Allocation, us Profile, r0 []Rate, opt NashOptions) (NashResult, error) {
	return game.SolveNashCtx(ctx, a, us, r0, opt)
}

// Typed cancellation sentinels: every cooperative loop in the tree (Nash
// solvers, dynamics, sweeps, DES engines, the experiment suite) reports
// giving up to a context with one of these, so callers can distinguish
// "gave up" from "diverged" with errors.Is.  They unwrap to the stdlib
// context causes.
var (
	ErrCanceled = core.ErrCanceled
	ErrDeadline = core.ErrDeadline
)

// SolveStackelberg computes a leader-follower equilibrium.
func SolveStackelberg(a Allocation, us Profile, leader int, r0 []Rate, opt StackOptions) (StackelbergResult, error) {
	return game.SolveStackelberg(a, us, leader, r0, opt)
}

// NashResidual is the paper's E_i = M_i + ∂C_i/∂r_i distance from the Nash
// first-derivative condition.
func NashResidual(a Allocation, us Profile, r []Rate) []float64 {
	return game.NashResidual(a, us, r)
}

// ParetoResidual measures violation of the Pareto FDC M_i = Z(r).
func ParetoResidual(us Profile, p Point) []float64 { return game.ParetoResidual(us, p) }

// MaxEnvy returns the largest envy at a point and the pair involved.
func MaxEnvy(us Profile, p Point) (amount float64, envier, envied int) {
	return game.MaxEnvy(us, p)
}

// RelaxationMatrix builds the §4.2.3 synchronous-Newton relaxation matrix.
func RelaxationMatrix(a Allocation, us Profile, r []Rate, h float64) *numeric.Matrix {
	return game.RelaxationMatrix(a, us, r, h)
}

// SpectralRadius returns max |λ| of a real matrix.
func SpectralRadius(m *numeric.Matrix) (float64, error) { return numeric.SpectralRadius(m) }

// ---- Dynamics ---------------------------------------------------------------

// Box is a product of per-user candidate intervals for learning.
type Box = dynamics.Box

// EliminationOptions and EliminationResult configure/report generalized
// hill climbing.
type (
	EliminationOptions = dynamics.EliminationOptions
	EliminationResult  = dynamics.EliminationResult
)

// NewBox returns the initial candidate box [lo, hi]^n.
func NewBox(n int, lo, hi float64) Box { return dynamics.NewBox(n, lo, hi) }

// GeneralizedHillClimb runs sound candidate-elimination learning.
func GeneralizedHillClimb(a Allocation, us Profile, start Box, opt EliminationOptions) EliminationResult {
	return dynamics.GeneralizedHillClimb(a, us, start, opt)
}

// ---- Mechanism ----------------------------------------------------------------

// Mechanism maps reported utilities to the reported profile's equilibrium
// allocation (B^FS when built on Fair Share).
type Mechanism = mechanism.Mechanism

// ---- Discrete-event simulation --------------------------------------------------

// SimConfig configures a simulator run (alias of des.Config).
type SimConfig = des.Config

// SimResult reports measured queue statistics (alias of des.Result).
type SimResult = des.Result

// Discipline is a pluggable simulator service discipline.
type Discipline = des.Discipline

// Simulate runs the CTMC-exact discrete-event simulation.
func Simulate(cfg SimConfig) (SimResult, error) { return des.Run(cfg) }

// Simulator disciplines.
type (
	// SimFIFO serves in arrival order (proportional allocation).
	SimFIFO = des.FIFO
	// SimLIFO is preemptive last-come-first-served.
	SimLIFO = des.LIFOPreemptive
	// SimPS is packet-wise processor sharing.
	SimPS = des.ProcessorSharing
	// SimHOLPS shares the server equally among backlogged users (the
	// Fair Queueing fluid ideal).
	SimHOLPS = des.HOLProcessorSharing
	// SimFairShare is the Table-1 priority splitter realizing C^FS.
	SimFairShare = des.FairShareSplitter
	// SimRatePriority is strict priority keyed to the rate order.
	SimRatePriority = des.RatePriority
)

// ---- Networks ---------------------------------------------------------------------

// Network is a multi-switch topology implementing Allocation (§5.4).
type Network = network.Network

// NewNetwork builds a topology with the given per-switch discipline.
func NewNetwork(switches int, routes [][]int, disc Allocation) (*Network, error) {
	return network.New(switches, routes, disc)
}

// LineNetwork builds the classic k-switch line with one long flow.
func LineNetwork(k int, disc Allocation) (*Network, error) { return network.Line(k, disc) }

// ---- Experiments --------------------------------------------------------------------

// ExperimentOptions tunes experiment runs.
type ExperimentOptions = experiment.Options

// PaperExperiment is one reproducible claim from the paper.
type PaperExperiment = experiment.Experiment

// ExperimentVerdict is the paper-vs-measured outcome.
type ExperimentVerdict = experiment.Verdict

// Experiments returns the registry of all paper reproductions (E1–E21).
func Experiments() []PaperExperiment { return experiment.All() }

// RunExperiment executes one experiment by ID, writing its table to w.
func RunExperiment(id string, w io.Writer, opt ExperimentOptions) (ExperimentVerdict, error) {
	e, ok := experiment.ByID(id)
	if !ok {
		return ExperimentVerdict{}, errUnknownExperiment(id)
	}
	return e.Run(w, opt)
}

// ExperimentOutcome pairs an experiment with its run result.
type ExperimentOutcome = experiment.Outcome

// RunAllExperiments runs the full registry, fanning experiments across a
// pool of workers (≤ 0 means all cores, 1 runs sequentially).  Each
// experiment renders into its own buffer and buffers flush to w in
// registry order, so the output is byte-identical for every worker count.
func RunAllExperiments(w io.Writer, opt ExperimentOptions, workers int) ([]ExperimentOutcome, error) {
	return experiment.RunAll(w, opt, workers)
}

type unknownExperimentError string

func (e unknownExperimentError) Error() string {
	return "greednet: unknown experiment " + string(e)
}

func errUnknownExperiment(id string) error { return unknownExperimentError(id) }
