// Package parallel is the repo's fan-out primitive: a fixed-size worker
// pool executing n indexed tasks with order-preserving semantics.  Results
// land at their task's index and errors are reported lowest-index-first,
// so for deterministic task functions every observable output — returned
// error included — is identical for any worker count.  That invariant is
// what lets the experiment suite, the multi-start Nash solver, the figure
// sweeps, and DES replications fan out while staying byte-reproducible.
//
// The package is stdlib-only and contains the tree's only `go` statements
// outside tests; the greedlint parsafe analyzer gates the goroutine
// bodies (workers write exclusively through per-index slice slots and
// join on a WaitGroup, so there is nothing for it to flag).
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers clamps a requested worker count to [1, n]: non-positive
// requests mean "use the hardware" (runtime.GOMAXPROCS(0)), and a pool
// never holds more workers than tasks.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// MapOrdered runs fn(0), …, fn(n-1) on a pool of workers and returns
// once every call has finished.  Tasks are claimed in index order but may
// complete in any order; callers record results by index (into
// preallocated slots) so the aggregate is independent of scheduling.  A
// panicking task does not take down its worker: the panic is contained,
// the remaining tasks still run, and the lowest-index panic is re-raised
// on the calling goroutine with the task index and original stack.
func MapOrdered(workers, n int, fn func(i int)) {
	// The wrapped fn never errors, so the only non-nil outcome is a
	// contained panic, which mustRun re-raises before returning.
	_ = mustRun(workers, n, func(i int) error {
		fn(i)
		return nil
	})
}

// MapOrderedErr is MapOrdered for fallible tasks: every task runs to
// completion (an error does not cancel the rest, matching sequential
// collect-then-report semantics), and the error of the lowest-index
// failing task is returned — deterministic whatever the completion order.
func MapOrderedErr(workers, n int, fn func(i int) error) error {
	return mustRun(workers, n, fn)
}

// contained is one captured task panic.
type contained struct {
	val   interface{}
	stack []byte
}

// runTask executes one task, converting a panic into a contained record
// so a worker survives to claim its next index.
func runTask(fn func(int) error, i int, errs []error, panics []*contained) {
	defer func() {
		if r := recover(); r != nil {
			panics[i] = &contained{val: r, stack: debug.Stack()}
		}
	}()
	errs[i] = fn(i)
}

// mustRun drives the pool and re-raises the lowest-index contained panic
// (the "must" prefix marks the deliberate re-panic: a task panic is the
// caller's bug surfacing, not a pool failure to downgrade into an error).
func mustRun(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	panics := make([]*contained, n)
	w := Workers(workers, n)
	if w == 1 {
		// Degenerate pool: run on the calling goroutine, same containment.
		for i := 0; i < n; i++ {
			runTask(fn, i, errs, panics)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					runTask(fn, i, errs, panics)
				}
			}()
		}
		wg.Wait()
	}
	for i, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("parallel: task %d panicked: %v\n%s", i, p.val, p.stack))
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
