// Package parallel is the repo's fan-out primitive: a fixed-size worker
// pool executing n indexed tasks with order-preserving semantics.  Results
// land at their task's index and errors are reported lowest-index-first,
// so for deterministic task functions every observable output — returned
// error included — is identical for any worker count.  That invariant is
// what lets the experiment suite, the multi-start Nash solver, the figure
// sweeps, and DES replications fan out while staying byte-reproducible.
//
// The package is stdlib-only and contains the tree's only `go` statements
// outside tests; the greedlint parsafe analyzer gates the goroutine
// bodies (workers write exclusively through per-index slice slots and
// join on a WaitGroup, so there is nothing for it to flag).
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"greednet/internal/core"
)

// Workers clamps a requested worker count to [1, n]: non-positive
// requests mean "use the hardware" (runtime.GOMAXPROCS(0)), and a pool
// never holds more workers than tasks.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// MapOrdered runs fn(0), …, fn(n-1) on a pool of workers and returns
// once every call has finished.  Tasks are claimed in index order but may
// complete in any order; callers record results by index (into
// preallocated slots) so the aggregate is independent of scheduling.  A
// panicking task does not take down its worker: the panic is contained,
// the remaining tasks still run, and the lowest-index panic is re-raised
// on the calling goroutine with the task index and original stack.
func MapOrdered(workers, n int, fn func(i int)) {
	// The wrapped fn never errors, so the only non-nil outcome is a
	// contained panic, which mustRun re-raises before returning.
	_ = mustRun(nil, workers, n, func(i int) error {
		fn(i)
		return nil
	})
}

// MapOrderedErr is MapOrdered for fallible tasks: every task runs to
// completion (an error does not cancel the rest, matching sequential
// collect-then-report semantics), and the error of the lowest-index
// failing task is returned — deterministic whatever the completion order.
func MapOrderedErr(workers, n int, fn func(i int) error) error {
	return mustRun(nil, workers, n, fn)
}

// MapOrderedCtx is MapOrderedErr under a context: workers stop claiming
// new indices once ctx is done, while tasks already claimed run to
// completion (a task is never interrupted mid-flight — cooperative tasks
// observe the same ctx themselves).  The order-and-determinism contract
// is preserved on the only deterministic axis a cancellation leaves: an
// uncanceled run behaves exactly like MapOrderedErr, and a canceled run
// always returns the typed core.ErrCanceled / core.ErrDeadline — never a
// task error, since which tasks got to run (and hence which errors exist)
// depends on scheduling.  Contained task panics still re-raise first:
// a panic is the caller's bug surfacing, cancellation or not.
func MapOrderedCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	return mustRun(ctx, workers, n, fn)
}

// contained is one captured task panic.
type contained struct {
	val   interface{}
	stack []byte
}

// runTask executes one task, converting a panic into a contained record
// so a worker survives to claim its next index.
func runTask(fn func(int) error, i int, errs []error, panics []*contained) {
	defer func() {
		if r := recover(); r != nil {
			panics[i] = &contained{val: r, stack: debug.Stack()}
		}
	}()
	errs[i] = fn(i)
}

// mustRun drives the pool and re-raises the lowest-index contained panic
// (the "must" prefix marks the deliberate re-panic: a task panic is the
// caller's bug surfacing, not a pool failure to downgrade into an error).
// A nil ctx means "never cancel"; with a live ctx, workers poll it before
// claiming each index and stop claiming once it fires.
func mustRun(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return core.CtxErr(ctx)
	}
	errs := make([]error, n)
	panics := make([]*contained, n)
	w := Workers(workers, n)
	if w == 1 {
		// Degenerate pool: run on the calling goroutine, same containment
		// and the same claim-time cancellation point.
		for i := 0; i < n; i++ {
			if core.CtxErr(ctx) != nil {
				break
			}
			runTask(fn, i, errs, panics)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if core.CtxErr(ctx) != nil {
						return
					}
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					runTask(fn, i, errs, panics)
				}
			}()
		}
		wg.Wait()
	}
	//lint:allow ctxflow O(tasks) failure scan after the pool drained; Sprintf runs only on the re-panic path
	for i, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("parallel: task %d panicked: %v\n%s", i, p.val, p.stack))
		}
	}
	if err := core.CtxErr(ctx); err != nil {
		// Canceled: the set of executed tasks is scheduling-dependent, so
		// the typed ctx error is the only deterministic report.
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
