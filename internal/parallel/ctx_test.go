package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"greednet/internal/core"
)

// TestMapOrderedCtxUncanceledMatchesErr pins the compatibility contract:
// with a live (or background) context the ctx variant is observably
// identical to MapOrderedErr.
func TestMapOrderedCtxUncanceledMatchesErr(t *testing.T) {
	boom := errors.New("boom")
	fn := func(i int) error {
		if i == 3 || i == 7 {
			return boom
		}
		return nil
	}
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := MapOrderedCtx(context.Background(), workers, 10, func(i int) error {
			ran.Add(1)
			return fn(i)
		})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: got %v, want the task error", workers, err)
		}
		if ran.Load() != 10 {
			t.Errorf("workers=%d: ran %d tasks, want all 10", workers, ran.Load())
		}
	}
}

// TestMapOrderedCtxCancelMidFan cancels the context from inside an early
// task and checks (a) the pool stops claiming new indices, (b) the typed
// core.ErrCanceled is returned rather than any task error — the only
// deterministic report once the executed set depends on scheduling.
func TestMapOrderedCtxCancelMidFan(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		const n = 1000
		err := MapOrderedCtx(ctx, workers, n, func(i int) error {
			ran.Add(1)
			if i == 0 {
				cancel()
			}
			return errors.New("task error that cancellation must mask")
		})
		if !errors.Is(err, core.ErrCanceled) {
			t.Errorf("workers=%d: got %v, want core.ErrCanceled", workers, err)
		}
		if errors.Is(err, core.ErrDeadline) {
			t.Errorf("workers=%d: plain cancellation must not read as a deadline", workers)
		}
		// Task 0 cancels; only tasks claimed before the cancellation was
		// observed may run.  With w workers at most w tasks are in flight
		// when the flag flips, so far fewer than n run.
		if got := ran.Load(); got >= n {
			t.Errorf("workers=%d: pool kept claiming after cancel (%d/%d ran)", workers, got, n)
		}
		cancel()
	}
}

// TestMapOrderedCtxDeadline runs tasks that outlive a short deadline and
// checks the typed core.ErrDeadline surfaces.
func TestMapOrderedCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	var ran atomic.Int64
	const n = 10000
	err := MapOrderedCtx(ctx, 2, n, func(i int) error {
		ran.Add(1)
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("got %v, want core.ErrDeadline", err)
	}
	if ran.Load() >= n {
		t.Errorf("pool claimed every task despite the deadline")
	}
}

// TestMapOrderedCtxEmpty keeps the n == 0 path consistent: a canceled
// context still reports, a live one still returns nil.
func TestMapOrderedCtxEmpty(t *testing.T) {
	if err := MapOrderedCtx(context.Background(), 4, 0, func(int) error { return nil }); err != nil {
		t.Errorf("empty fan on live ctx: got %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := MapOrderedCtx(ctx, 4, 0, func(int) error { return nil }); !errors.Is(err, core.ErrCanceled) {
		t.Errorf("empty fan on canceled ctx: got %v, want core.ErrCanceled", err)
	}
}
