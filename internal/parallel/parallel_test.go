package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrderedAdversarialCompletion makes later tasks finish first
// (each sleeps inversely to its index) and checks every result still
// lands at its own index and the call joins all tasks before returning.
func TestMapOrderedAdversarialCompletion(t *testing.T) {
	const n = 16
	results := make([]int, n)
	var done atomic.Int64
	MapOrdered(8, n, func(i int) {
		time.Sleep(time.Duration(n-i) * time.Millisecond)
		results[i] = i * i
		done.Add(1)
	})
	if got := done.Load(); got != n {
		t.Fatalf("MapOrdered returned before all tasks finished: %d/%d", got, n)
	}
	for i, v := range results {
		if v != i*i {
			t.Errorf("results[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestMapOrderedErrLowestIndexWins checks the returned error is the
// lowest-index failure for every worker count, and that an error does
// not cancel the remaining tasks.
func TestMapOrderedErrLowestIndexWins(t *testing.T) {
	const n = 12
	for _, workers := range []int{1, 2, 4, 32} {
		var ran atomic.Int64
		err := MapOrderedErr(workers, n, func(i int) error {
			// Fail at several indices, the later ones completing sooner.
			switch i {
			case 3:
				time.Sleep(20 * time.Millisecond)
				ran.Add(1)
				return errors.New("error at 3")
			case 7, 10:
				ran.Add(1)
				return fmt.Errorf("error at %d", i)
			}
			ran.Add(1)
			return nil
		})
		if err == nil || err.Error() != "error at 3" {
			t.Errorf("workers=%d: got %v, want the index-3 error", workers, err)
		}
		if got := ran.Load(); got != n {
			t.Errorf("workers=%d: only %d/%d tasks ran after an error", workers, got, n)
		}
	}
}

func TestMapOrderedErrNilOnSuccess(t *testing.T) {
	if err := MapOrderedErr(4, 9, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestWorkersClamp pins the clamp: non-positive → GOMAXPROCS, more
// workers than tasks → n, and never below 1.
func TestWorkersClamp(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	cases := []struct{ workers, n, want int }{
		{0, 1 << 20, procs},
		{-5, 1 << 20, procs},
		{100, 5, 5},
		{3, 5, 3},
		{1, 5, 1},
		{4, 0, 1},
	}
	for _, c := range cases {
		if got := Workers(c.workers, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

func TestMapOrderedZeroTasks(t *testing.T) {
	called := false
	MapOrdered(4, 0, func(int) { called = true })
	if called {
		t.Error("fn called for n=0")
	}
	if err := MapOrderedErr(4, -3, func(int) error { return errors.New("x") }); err != nil {
		t.Errorf("negative n should be a no-op, got %v", err)
	}
}

// TestPanicContainment checks a panicking task neither kills its worker
// nor vanishes: the remaining tasks run, and the lowest-index panic is
// re-raised on the caller with the task index attached.
func TestPanicContainment(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("workers=%d: task panic was swallowed", workers)
					return
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "task 2 panicked: boom 2") {
					t.Errorf("workers=%d: re-panic %v should name task 2", workers, r)
				}
			}()
			MapOrdered(workers, 8, func(i int) {
				ran.Add(1)
				if i == 2 || i == 5 {
					panic(fmt.Sprintf("boom %d", i))
				}
			})
		}()
		if got := ran.Load(); got != 8 {
			t.Errorf("workers=%d: only %d/8 tasks ran despite containment", workers, got)
		}
	}
}
