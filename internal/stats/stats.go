// Package stats provides the small statistical toolkit used by the
// discrete-event simulator and the experiment harness: summary statistics,
// batch-means confidence intervals, and streaming accumulators.
package stats

import "math"

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (NaN for fewer than two
// samples).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// tQuantile975 approximates the two-sided 95% Student-t quantile for the
// given degrees of freedom (a short table with asymptote 1.96).
func tQuantile975(df int) float64 {
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
		2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
		2.086,
	}
	switch {
	case df <= 0:
		return math.NaN()
	case df < len(table):
		return table[df]
	case df < 30:
		return 2.045
	case df < 60:
		return 2.000
	default:
		return 1.96
	}
}

// CI95 returns the half-width of a 95% confidence interval for the mean of
// xs using the Student-t quantile on len(xs)−1 degrees of freedom.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	return tQuantile975(n-1) * StdDev(xs) / math.Sqrt(float64(n))
}

// Welford is a streaming mean/variance accumulator.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds a sample into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (NaN when empty).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the running unbiased variance (NaN below two samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// TimeAverage accumulates a time-weighted average of a piecewise-constant
// signal, as used for average queue lengths.
type TimeAverage struct {
	integral float64
	duration float64
}

// Accumulate adds a segment where the signal held value for dt.
func (t *TimeAverage) Accumulate(value, dt float64) {
	t.integral += value * dt
	t.duration += dt
}

// Value returns the time average so far (NaN with no elapsed time).
func (t *TimeAverage) Value() float64 {
	if t.duration == 0 { //lint:allow floateq zero elapsed time has no average; exact guard
		return math.NaN()
	}
	return t.integral / t.duration
}

// Duration returns the accumulated time span.
func (t *TimeAverage) Duration() float64 { return t.duration }
