package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want 32/7", v)
	}
}

func TestMeanEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Error("degenerate inputs should be NaN")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	small := make([]float64, 10)
	big := make([]float64, 1000)
	for i := range small {
		small[i] = rng.NormFloat64()
	}
	for i := range big {
		big[i] = rng.NormFloat64()
	}
	if CI95(big) >= CI95(small) {
		t.Errorf("CI should shrink with n: %v vs %v", CI95(big), CI95(small))
	}
}

func TestCI95Coverage(t *testing.T) {
	// ~95% of unit-normal sample means should be within the CI of 0.
	rng := rand.New(rand.NewSource(2))
	hits, trials := 0, 400
	for k := 0; k < trials; k++ {
		xs := make([]float64, 25)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		if math.Abs(Mean(xs)) <= CI95(xs) {
			hits++
		}
	}
	cov := float64(hits) / float64(trials)
	if cov < 0.90 || cov > 0.99 {
		t.Errorf("CI coverage %v outside [0.90, 0.99]", cov)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) < 2 {
			return true
		}
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		return math.Abs(w.Mean()-Mean(xs)) < 1e-9*(1+math.Abs(Mean(xs))) &&
			math.Abs(w.Variance()-Variance(xs)) < 1e-6*(1+Variance(xs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeAverage(t *testing.T) {
	var ta TimeAverage
	ta.Accumulate(2, 1) // value 2 for 1s
	ta.Accumulate(0, 3) // value 0 for 3s
	if v := ta.Value(); math.Abs(v-0.5) > 1e-15 {
		t.Errorf("TimeAverage = %v, want 0.5", v)
	}
	if ta.Duration() != 4 {
		t.Errorf("Duration = %v", ta.Duration())
	}
	var empty TimeAverage
	if !math.IsNaN(empty.Value()) {
		t.Error("empty time average should be NaN")
	}
}

func TestTQuantileMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df < 100; df++ {
		q := tQuantile975(df)
		if q > prev+1e-12 {
			t.Fatalf("t quantile not nonincreasing at df=%d: %v > %v", df, q, prev)
		}
		prev = q
	}
	if tQuantile975(1000) != 1.96 {
		t.Error("asymptote should be 1.96")
	}
}
