package mechanism

import (
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/utility"
)

// lieFamily returns misreports derived from a linear truth by scaling the
// congestion aversion and the throughput weight.
func lieFamily(truth utility.Linear) []core.Utility {
	scales := []float64{0.2, 0.5, 0.8, 1.25, 2, 5}
	var lies []core.Utility
	for _, s := range scales {
		lies = append(lies,
			utility.Linear{A: truth.A, Gamma: truth.Gamma * s},
			utility.Linear{A: truth.A * s, Gamma: truth.Gamma},
		)
	}
	return lies
}

func TestFairShareMechanismTruthful(t *testing.T) {
	// Theorem 6: under B^FS no misreport in the sampled family helps.
	m := Mechanism{Alloc: alloc.FairShare{}}
	truth := utility.NewLinear(1, 0.3)
	others := core.Profile{
		truth,
		utility.NewLinear(1, 0.15),
		utility.NewLinear(1, 0.5),
	}
	man, err := SearchManipulation(m, truth, 0, others, lieFamily(truth))
	if err != nil {
		t.Fatal(err)
	}
	if man.Evaluated == 0 {
		t.Fatal("no lies evaluated")
	}
	if man.BestGain > 1e-6 {
		t.Errorf("B^FS manipulable: gain %v via lie %d", man.BestGain, man.BestLie)
	}
}

func TestFairShareMechanismTruthfulHeterogeneous(t *testing.T) {
	m := Mechanism{Alloc: alloc.FairShare{}}
	truth := utility.NewLinear(1, 0.25)
	others := core.Profile{
		nil, // slot for the manipulator
		utility.Log{W: 0.3, Gamma: 1},
		utility.Sqrt{W: 1, Gamma: 2},
	}
	man, err := SearchManipulation(m, truth, 0, others, lieFamily(truth))
	if err != nil {
		t.Fatal(err)
	}
	if man.BestGain > 1e-6 {
		t.Errorf("B^FS manipulable: gain %v", man.BestGain)
	}
}

func TestProportionalMechanismManipulable(t *testing.T) {
	// The same construction on FIFO is not a revelation mechanism:
	// overstating aggressiveness (lower reported γ) acts like a
	// Stackelberg commitment and pays.
	m := Mechanism{Alloc: alloc.Proportional{}}
	truth := utility.NewLinear(1, 0.3)
	others := core.Profile{
		truth,
		utility.NewLinear(1, 0.25),
	}
	man, err := SearchManipulation(m, truth, 0, others, lieFamily(truth))
	if err != nil {
		t.Fatal(err)
	}
	if man.BestGain <= 1e-6 {
		t.Errorf("expected profitable lie under proportional mechanism, best gain %v", man.BestGain)
	}
}

func TestAllocateMatchesDirectNash(t *testing.T) {
	m := Mechanism{Alloc: alloc.FairShare{}}
	us := core.Profile{utility.NewLinear(1, 0.3), utility.NewLinear(1, 0.4)}
	p, err := m.Allocate(us)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.R) != 2 || p.R[0] <= 0 || p.R[1] <= 0 {
		t.Errorf("bad allocation %+v", p)
	}
	// More congestion-averse user sends less.
	if p.R[1] >= p.R[0] {
		t.Errorf("γ=0.4 user should send less: %v", p.R)
	}
}
