// Package mechanism implements the direct revelation mechanisms of §4.2.2:
// users report utility functions to the switch, and the switch computes the
// allocation that the selfish play of the *reported* profile would reach —
// the map B(Û) of the paper.  B^FS (built on Fair Share) is a revelation
// mechanism: truth-telling is a dominant strategy (Theorem 6).  The same
// construction built on the proportional allocation is manipulable, which
// the experiments demonstrate by explicit lie search.
package mechanism

import (
	"errors"

	"greednet/internal/core"
	"greednet/internal/game"
)

// Mechanism maps reported utility profiles to allocations by solving the
// Nash equilibrium of the reports under a fixed service discipline.
type Mechanism struct {
	// Alloc is the discipline whose induced game is solved on reports.
	Alloc core.Allocation
	// Nash configures the equilibrium computation.
	Nash game.NashOptions
	// Start is the solver's starting rate vector; nil defaults to 0.1/n
	// per user (any start works for Fair Share by Theorem 4).
	Start []float64
}

// ErrNotConverged is returned when the inner Nash solve fails, so the
// mechanism has no well-defined outcome for the reports.
var ErrNotConverged = errors.New("mechanism: reported-profile equilibrium did not converge")

// Allocate computes B(reports): the allocation point of the reported
// profile's Nash equilibrium.
func (m Mechanism) Allocate(reports core.Profile) (core.Point, error) {
	n := len(reports)
	start := m.Start
	if start == nil {
		start = make([]float64, n)
		for i := range start {
			start[i] = 0.1 / float64(n)
		}
	}
	res, err := game.SolveNash(m.Alloc, reports, start, m.Nash)
	if err != nil {
		return core.Point{}, err
	}
	if !res.Converged {
		return core.Point{}, ErrNotConverged
	}
	return core.Point{R: res.R, C: res.C}, nil
}

// Manipulation describes the outcome of a lie search for one user.
type Manipulation struct {
	// TruthfulUtility is the user's true utility at the truthful outcome.
	TruthfulUtility float64
	// BestGain is max over sampled lies of (true utility at lying outcome)
	// − TruthfulUtility.  ≤ 0 means no sampled lie helps.
	BestGain float64
	// BestLie indexes the most profitable lie in the candidate slice, or
	// −1 when no lie was evaluated successfully.
	BestLie int
	// Evaluated counts the lies whose outcome converged.
	Evaluated int
}

// SearchManipulation evaluates, for user i with true utility truth and
// opponents reporting others (others[i] is ignored), whether any candidate
// misreport improves user i's true utility over truthful reporting.
func SearchManipulation(m Mechanism, truth core.Utility, i int, others core.Profile, lies []core.Utility) (Manipulation, error) {
	reports := make(core.Profile, len(others))
	copy(reports, others)
	reports[i] = truth
	base, err := m.Allocate(reports)
	if err != nil {
		return Manipulation{}, err
	}
	out := Manipulation{
		TruthfulUtility: truth.Value(base.R[i], base.C[i]),
		BestLie:         -1,
	}
	for k, lie := range lies {
		reports[i] = lie
		p, err := m.Allocate(reports)
		if err != nil {
			continue
		}
		out.Evaluated++
		if gain := truth.Value(p.R[i], p.C[i]) - out.TruthfulUtility; out.BestLie == -1 || gain > out.BestGain {
			out.BestGain = gain
			out.BestLie = k
		}
	}
	return out, nil
}
