// Package service packages the game solvers behind a long-running,
// stdlib-only HTTP/JSON allocation daemon ("greedd"): thousands of
// selfish clients submit rate/utility updates, the service solves the
// induced game and republishes each client's equilibrium congestion,
// closing the control loop the paper's premises describe.
//
// Robustness is the point, not an afterthought.  Admission control is
// the paper's out-of-equilibrium protection bound (Definition 7 /
// Theorem 8): a client is admitted only while every admitted bound
// r_i/(1 − N·r_i) stays finite, so Fair Share can honor its guarantee
// whatever the admitted population later does.  Concurrent solve
// requests for the same canonicalized profile coalesce into a single
// SolveNashCtx call; solved games are cached until a utility changes.
// Overload degrades by shedding, never by stalling: the work queue is
// bounded, enqueueing rejects the newest request once the queue's head
// has aged past the request's deadline, each client spends a token
// bucket, handlers contain panics into canonical FAILED(panic) bodies,
// and a watchdog flips the health endpoint to draining when the queue
// stops progressing.  Every rejection carries a typed machine-readable
// reason; nothing wedges a goroutine.
package service

// Rejection reasons.  Every non-2xx response body is a Rejection whose
// Reason is one of these strings, so load harnesses and clients can
// classify shed traffic without parsing prose.
const (
	// ReasonAdmission rejects a join/update that would push some admitted
	// client's protection bound r/(1−N·r) past the pole (HTTP 429).
	ReasonAdmission = "admission"
	// ReasonOverload rejects work the service has no capacity for: a full
	// work queue (503) or an exhausted per-client token bucket (429).
	ReasonOverload = "overload"
	// ReasonDeadline rejects a request whose deadline cannot be met: the
	// queue head is older than the request's budget, the budget is
	// non-positive (clock skew), or the solve itself timed out (503).
	ReasonDeadline = "deadline"
	// ReasonMalformed rejects an undecodable or invalid request body —
	// including NaN/Inf/non-positive rates (HTTP 400).
	ReasonMalformed = "malformed"
	// ReasonDraining rejects new work while the service is shutting down
	// or the watchdog has declared a stall (HTTP 503).
	ReasonDraining = "draining"
	// ReasonPanic tags a contained handler or solver panic; the body's
	// Status is "FAILED(panic)" (HTTP 500).
	ReasonPanic = "panic"
)

// Rejection is the canonical non-2xx response body.
type Rejection struct {
	// Status is "REJECTED" for typed sheds and "FAILED(panic)" for
	// contained panics, mirroring the experiment suite's FAILED blocks.
	Status string `json:"status"`
	// Reason is one of the Reason* constants.
	Reason string `json:"reason"`
	// Detail is a human-readable explanation.
	Detail string `json:"detail,omitempty"`
}

// UpdateRequest is the POST /v1/update body: one client's rate (and
// optionally utility) update, or its departure.
type UpdateRequest struct {
	// Client identifies the sender; non-empty, at most 64 bytes.
	Client string `json:"client"`
	// Rate is the client's demanded Poisson rate, in units of the server
	// rate.  Must be positive and finite.
	Rate float64 `json:"rate"`
	// Utility is a cliutil spec ("linear:1,4", "log:2,1", …).  Empty
	// keeps the client's previous utility (or the server default on
	// first contact).  Changing it invalidates the solve cache.
	Utility string `json:"utility,omitempty"`
	// Leave, when true, removes the client; Rate is ignored.
	Leave bool `json:"leave,omitempty"`
}

// UpdateResponse answers an admitted update.
type UpdateResponse struct {
	// Admitted is always true on a 2xx response.
	Admitted bool `json:"admitted"`
	// Clients is the admitted population after the update.
	Clients int `json:"clients"`
	// Bound is the client's Definition-7 protection guarantee
	// r/(1 − N·r) at the admitted population — the congestion ceiling
	// Fair Share will enforce whatever the other clients do.
	Bound float64 `json:"bound"`
}

// SolveRequest is the POST /v1/solve body: solve the current admitted
// profile (or join the in-flight solve of the same profile).
type SolveRequest struct {
	// Client identifies the requester for token-bucket accounting.
	Client string `json:"client"`
	// DeadlineMS is the caller's latency budget in milliseconds.  Zero
	// means the server default; negative values are rejected with a
	// typed deadline rejection (a skewed clock cannot buy an infinite
	// budget); large values are clamped to the server maximum.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// SolveResponse reports a solved (or cache-served) equilibrium.
type SolveResponse struct {
	// Key is the canonicalized profile key the result is cached under.
	Key string `json:"key"`
	// Cached is true when the result was served from the solve cache.
	Cached bool `json:"cached"`
	// Coalesced is true when this request joined an in-flight solve
	// instead of enqueueing its own.
	Coalesced bool `json:"coalesced"`
	// Converged and Iters mirror game.NashResult.
	Converged bool `json:"converged"`
	Iters     int  `json:"iters"`
	// Clients lists the profile's client ids in canonical (sorted)
	// order; R and C are the equilibrium rates and congestions in the
	// same order.
	Clients []string  `json:"clients"`
	R       []float64 `json:"r"`
	C       []float64 `json:"c"`
}

// CongestionResponse is the GET /v1/congestion republication: the
// closed loop's feedback signal for one client.
type CongestionResponse struct {
	Client string `json:"client"`
	// Rate and Congestion are the client's equilibrium operating point
	// from the most recent solve that included it.
	Rate       float64 `json:"rate"`
	Congestion float64 `json:"congestion"`
	// Stale is true when the admitted profile has changed since this
	// point was solved.
	Stale bool `json:"stale"`
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	// Status is "ok", or "draining" while shutting down or stalled.
	Status string `json:"status"`
	// QueueDepth and Clients describe the live state.
	QueueDepth int `json:"queue_depth"`
	Clients    int `json:"clients"`
}

// Stats is the GET /v1/stats body: monotone counters since start.
type Stats struct {
	Updates           int64 `json:"updates"`
	Leaves            int64 `json:"leaves"`
	RejectedAdmission int64 `json:"rejected_admission"`
	RejectedMalformed int64 `json:"rejected_malformed"`

	Solves    int64 `json:"solves"`
	CacheHits int64 `json:"cache_hits"`
	// ClassCacheHits counts the subset of CacheHits served by the
	// class-canonical cache: the per-user key missed, but a game with
	// the same multiset of (utility, rate) — identical-utility clients
	// coalesced, ids ignored — had already been solved.
	ClassCacheHits int64 `json:"class_cache_hits"`
	Coalesced      int64 `json:"coalesced"`
	SolvesRun      int64 `json:"solves_run"`
	SolveFails     int64 `json:"solve_fails"`

	ShedOverload int64 `json:"shed_overload"`
	ShedDeadline int64 `json:"shed_deadline"`
	ShedDraining int64 `json:"shed_draining"`
	Panics       int64 `json:"panics"`

	// QueueMax is the high-water queue depth — the load harness gates on
	// it staying bounded.
	QueueMax int `json:"queue_max"`
	// QueueDepth and CacheSize are point-in-time gauges.
	QueueDepth int `json:"queue_depth"`
	CacheSize  int `json:"cache_size"`
}
