package service

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"greednet/internal/cliutil"
)

// FuzzDecodeUpdate throws arbitrary bytes at the update decoder and pins
// the boundary invariant: whatever arrives, either the request is
// rejected as malformed, or the decoded rate satisfies the same cliutil
// validation the CLIs use — positive and finite, never NaN/Inf.  The
// handler itself must always answer with a well-formed JSON body and a
// known status code (no panic escapes the containment wrapper).
func FuzzDecodeUpdate(f *testing.F) {
	f.Add([]byte(`{"client":"a","rate":0.25}`))
	f.Add([]byte(`{"client":"a","rate":0.1,"utility":"linear:1,4"}`))
	f.Add([]byte(`{"client":"a","rate":-1}`))
	f.Add([]byte(`{"client":"a","rate":1e999}`))
	f.Add([]byte(`{"client":"a","rate":NaN}`))
	f.Add([]byte(`{"client":"a","leave":true}`))
	f.Add([]byte(`{"client":"","rate":0.5}`))
	f.Add([]byte(`{"client":"a","rate":0.5,"utility":"log:2,"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		req := httptest.NewRequest("POST", "/v1/update", bytes.NewReader(data))
		dec, err := decodeUpdate(req)
		if err == nil && !dec.Leave {
			if cerr := cliutil.CheckRate(dec.Rate); cerr != nil {
				t.Fatalf("decoder admitted invalid rate %v (%v) from %q", dec.Rate, cerr, data)
			}
			if math.IsNaN(dec.Rate) || math.IsInf(dec.Rate, 0) {
				t.Fatalf("decoder admitted non-finite rate %v from %q", dec.Rate, data)
			}
			if dec.Utility != "" {
				if _, uerr := cliutil.ParseUtility(dec.Utility); uerr != nil {
					t.Fatalf("decoder admitted unparseable utility %q from %q", dec.Utility, data)
				}
			}
		}

		// End to end: the handler always answers typed JSON.
		s := New(Options{})
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/update", bytes.NewReader(data)))
		switch rec.Code {
		case http.StatusOK:
			var resp UpdateResponse
			if jerr := json.Unmarshal(rec.Body.Bytes(), &resp); jerr != nil {
				t.Fatalf("200 with undecodable body %q", rec.Body.String())
			}
		case http.StatusBadRequest, http.StatusTooManyRequests, http.StatusServiceUnavailable:
			var rej Rejection
			if jerr := json.Unmarshal(rec.Body.Bytes(), &rej); jerr != nil {
				t.Fatalf("%d with undecodable body %q", rec.Code, rec.Body.String())
			}
			switch rej.Reason {
			case ReasonAdmission, ReasonOverload, ReasonDeadline, ReasonMalformed, ReasonDraining:
			default:
				t.Fatalf("%d with unknown reason %q", rec.Code, rej.Reason)
			}
		default:
			t.Fatalf("unexpected status %d for %q", rec.Code, data)
		}
	})
}
