package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"greednet/internal/core"
)

// fakeClock is a mutable, goroutine-safe time source for the tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// doJSON POSTs (or GETs, with a nil body) against the handler and
// decodes the response body into out, returning the status code.
func doJSON(t *testing.T, h http.Handler, method, path string, body any, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if raw, ok := body.([]byte); ok {
		rd = bytes.NewReader(raw)
	} else if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: undecodable body %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec.Code
}

// update admits one client and fails the test on rejection.
func update(t *testing.T, h http.Handler, id string, rate float64, spec string) UpdateResponse {
	t.Helper()
	var resp UpdateResponse
	code := doJSON(t, h, "POST", "/v1/update", UpdateRequest{Client: id, Rate: rate, Utility: spec}, &resp)
	if code != http.StatusOK {
		t.Fatalf("update %s rate %v: status %d", id, rate, code)
	}
	return resp
}

func TestUpdateSolveCongestionLoop(t *testing.T) {
	s := New(Options{Workers: 1})
	s.Start()
	defer func() {
		if err := s.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	h := s.Handler()

	up := update(t, h, "a", 0.1, "linear:1,4")
	if !up.Admitted || up.Clients != 1 {
		t.Fatalf("bad update response: %+v", up)
	}
	wantBound := 0.1 / (1 - 0.1)
	if diff := up.Bound - wantBound; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("bound = %v, want %v", up.Bound, wantBound)
	}
	update(t, h, "b", 0.15, "linear:1,4")

	var sol SolveResponse
	if code := doJSON(t, h, "POST", "/v1/solve", SolveRequest{Client: "a"}, &sol); code != http.StatusOK {
		t.Fatalf("solve: status %d", code)
	}
	if !sol.Converged || len(sol.R) != 2 || len(sol.C) != 2 {
		t.Fatalf("bad solve: %+v", sol)
	}
	if sol.Clients[0] != "a" || sol.Clients[1] != "b" {
		t.Errorf("canonical client order broken: %v", sol.Clients)
	}
	if sol.Cached {
		t.Error("first solve claims cached")
	}

	// Same profile again: must be a cache hit with identical vectors.
	var sol2 SolveResponse
	if code := doJSON(t, h, "POST", "/v1/solve", SolveRequest{Client: "b"}, &sol2); code != http.StatusOK {
		t.Fatalf("second solve: status %d", code)
	}
	if !sol2.Cached {
		t.Error("unchanged profile not served from cache")
	}
	for i := range sol.R {
		if sol.R[i] != sol2.R[i] || sol.C[i] != sol2.C[i] {
			t.Errorf("cached solve differs at %d: %v vs %v", i, sol.R[i], sol2.R[i])
		}
	}

	// The republished congestion closes the loop.
	var cg CongestionResponse
	if code := doJSON(t, h, "GET", "/v1/congestion?client=a", nil, &cg); code != http.StatusOK {
		t.Fatalf("congestion: status %d", code)
	}
	if cg.Congestion != sol.C[0] || cg.Rate != sol.R[0] {
		t.Errorf("republished point %+v does not match solve %v/%v", cg, sol.R[0], sol.C[0])
	}
	if cg.Stale {
		t.Error("fresh point reported stale")
	}

	// A rate update makes the published point stale.
	update(t, h, "a", 0.12, "")
	if code := doJSON(t, h, "GET", "/v1/congestion?client=a", nil, &cg); code != http.StatusOK {
		t.Fatalf("congestion after update: status %d", code)
	}
	if !cg.Stale {
		t.Error("point not stale after profile change")
	}

	var st Stats
	if code := doJSON(t, h, "GET", "/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.CacheHits != 1 || st.SolvesRun != 1 {
		t.Errorf("stats: %d hits, %d runs; want 1, 1", st.CacheHits, st.SolvesRun)
	}
}

func TestAdmissionRejectsPoleCrossing(t *testing.T) {
	s := New(Options{})
	h := s.Handler()
	// Single client at N·r = 1 exactly: rejected.
	var rej Rejection
	code := doJSON(t, h, "POST", "/v1/update", UpdateRequest{Client: "hog", Rate: 1.0}, &rej)
	if code != http.StatusTooManyRequests || rej.Reason != ReasonAdmission {
		t.Fatalf("N·r = 1 admitted: status %d, %+v", code, rej)
	}
	// 0.5 alone is fine (1·0.5 < 1)…
	update(t, h, "a", 0.5, "")
	// …but a second client pushes a's bound past the pole (2·0.5 = 1):
	// the NEWCOMER is rejected, whatever its own rate.
	code = doJSON(t, h, "POST", "/v1/update", UpdateRequest{Client: "b", Rate: 0.01}, &rej)
	if code != http.StatusTooManyRequests || rej.Reason != ReasonAdmission {
		t.Fatalf("join breaking an incumbent bound admitted: status %d, %+v", code, rej)
	}
	if !strings.Contains(rej.Detail, "incumbent") {
		t.Errorf("rejection does not name the incumbent: %q", rej.Detail)
	}
	// After a retreats to 0.3, b fits (2·0.3 < 1, 2·0.01 < 1).
	update(t, h, "a", 0.3, "")
	update(t, h, "b", 0.01, "")
}

func TestMalformedRejections(t *testing.T) {
	s := New(Options{})
	h := s.Handler()
	cases := []struct {
		name string
		body []byte
	}{
		{"truncated", []byte(`{"client":"a","rate":`)},
		{"not json", []byte(`hello`)},
		{"nan rate", []byte(`{"client":"a","rate":NaN}`)},
		{"negative rate", []byte(`{"client":"a","rate":-0.5}`)},
		{"zero rate", []byte(`{"client":"a","rate":0}`)},
		{"inf rate", []byte(`{"client":"a","rate":1e999}`)},
		{"no client", []byte(`{"rate":0.1}`)},
		{"bad utility", []byte(`{"client":"a","rate":0.1,"utility":"bogus:1"}`)},
		{"unknown field", []byte(`{"client":"a","rate":0.1,"rats":9}`)},
	}
	for _, tc := range cases {
		var rej Rejection
		code := doJSON(t, h, "POST", "/v1/update", tc.body, &rej)
		if code != http.StatusBadRequest || rej.Reason != ReasonMalformed {
			t.Errorf("%s: status %d reason %q, want 400 %q", tc.name, code, rej.Reason, ReasonMalformed)
		}
	}
	st := s.snapshotStats()
	if st.RejectedMalformed != int64(len(cases)) {
		t.Errorf("malformed counter %d, want %d", st.RejectedMalformed, len(cases))
	}
}

func TestTokenBucketSheds(t *testing.T) {
	clk := newFakeClock()
	s := New(Options{Burst: 3, Refill: 1, Clock: clk.now})
	h := s.Handler()
	update(t, h, "a", 0.1, "") // join spends 1 of 3 tokens
	update(t, h, "a", 0.11, "")
	update(t, h, "a", 0.12, "")
	var rej Rejection
	code := doJSON(t, h, "POST", "/v1/update", UpdateRequest{Client: "a", Rate: 0.13}, &rej)
	if code != http.StatusTooManyRequests || rej.Reason != ReasonOverload {
		t.Fatalf("empty bucket: status %d reason %q, want 429 %q", code, rej.Reason, ReasonOverload)
	}
	// One second refills one token.
	clk.advance(time.Second)
	update(t, h, "a", 0.13, "")
}

func TestSolveDeadlineSkewRejected(t *testing.T) {
	s := New(Options{})
	h := s.Handler()
	update(t, h, "a", 0.1, "")
	var rej Rejection
	code := doJSON(t, h, "POST", "/v1/solve", SolveRequest{Client: "a", DeadlineMS: -50}, &rej)
	if code != http.StatusServiceUnavailable || rej.Reason != ReasonDeadline {
		t.Fatalf("negative deadline: status %d reason %q, want 503 %q", code, rej.Reason, ReasonDeadline)
	}
}

func TestSolveNoClients(t *testing.T) {
	s := New(Options{})
	var rej Rejection
	code := doJSON(t, s.Handler(), "POST", "/v1/solve", SolveRequest{Client: "x"}, &rej)
	if code != http.StatusTooManyRequests || rej.Reason != ReasonAdmission {
		t.Fatalf("empty profile solve: status %d reason %q", code, rej.Reason)
	}
}

// blockingAlloc parks every congestion evaluation until released, so
// tests can hold a solve in flight deterministically.
type blockingAlloc struct {
	inner   core.Allocation
	release chan struct{}
}

func (b *blockingAlloc) Name() string { return "blocking(" + b.inner.Name() + ")" }
func (b *blockingAlloc) Congestion(r []core.Rate) []core.Congestion {
	<-b.release
	return b.inner.Congestion(r)
}
func (b *blockingAlloc) CongestionOf(r []core.Rate, i int) core.Congestion {
	<-b.release
	return b.inner.CongestionOf(r, i)
}

func TestQueueShedsOverloadAndDeadline(t *testing.T) {
	clk := newFakeClock()
	rel := make(chan struct{})
	s := New(Options{
		Workers:  1,
		QueueCap: 1,
		Clock:    clk.now,
		Alloc:    &blockingAlloc{inner: passAlloc{}, release: rel},
	})
	s.Start()
	h := s.Handler()
	update(t, h, "a", 0.1, "")

	type result struct {
		code int
		rej  Rejection
	}
	results := make(chan result, 3)
	solve := func(deadlineMS int64) {
		var rej Rejection
		code := doJSON(t, h, "POST", "/v1/solve", SolveRequest{Client: "a", DeadlineMS: deadlineMS}, &rej)
		results <- result{code, rej}
	}
	// First solve: dequeued by the worker, parked on the allocation.
	go solve(60_000)
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.flights) == 1 && len(s.queue) == 0
	})
	// Second solve: different profile (rate changed), sits in the queue.
	update(t, h, "a", 0.11, "")
	go solve(60_000)
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.queue) == 1
	})

	// Third: queue full → typed overload shed.
	update(t, h, "a", 0.12, "")
	var rej Rejection
	code := doJSON(t, h, "POST", "/v1/solve", SolveRequest{Client: "a", DeadlineMS: 60_000}, &rej)
	if code != http.StatusServiceUnavailable || rej.Reason != ReasonOverload {
		t.Fatalf("full queue: status %d reason %q, want 503 %q", code, rej.Reason, ReasonOverload)
	}

	// Raise the cap effect by aging the head instead: with the head job
	// 2s old, a 500ms-deadline request is shed with a typed deadline
	// reason even though the queue has room.
	s.mu.Lock()
	s.opt.QueueCap = 8
	s.mu.Unlock()
	clk.advance(2 * time.Second)
	code = doJSON(t, h, "POST", "/v1/solve", SolveRequest{Client: "a", DeadlineMS: 500}, &rej)
	if code != http.StatusServiceUnavailable || rej.Reason != ReasonDeadline {
		t.Fatalf("aged head: status %d reason %q, want 503 %q", code, rej.Reason, ReasonDeadline)
	}
	if !strings.Contains(rej.Detail, "queue head") {
		t.Errorf("deadline shed detail: %q", rej.Detail)
	}

	close(rel) // release both parked solves
	for i := 0; i < 2; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Errorf("parked solve %d: status %d %+v", i, r.code, r.rej)
		}
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	st := s.snapshotStats()
	if st.ShedOverload == 0 || st.ShedDeadline == 0 {
		t.Errorf("shed counters not bumped: %+v", st)
	}
	if st.QueueMax > 8 {
		t.Errorf("queue grew past its cap: max %d", st.QueueMax)
	}
}

// passAlloc is a trivial exact allocation for tests that never reach
// real congestion values.
type passAlloc struct{}

func (passAlloc) Name() string { return "pass" }
func (passAlloc) Congestion(r []core.Rate) []core.Congestion {
	out := make([]core.Congestion, len(r))
	for i, v := range r {
		out[i] = core.Congestion(float64(v))
	}
	return out
}
func (passAlloc) CongestionOf(r []core.Rate, i int) core.Congestion {
	return core.Congestion(float64(r[i]))
}

// panicAlloc blows up on first use: the solver containment test.
type panicAlloc struct{ passAlloc }

func (panicAlloc) CongestionOf(r []core.Rate, i int) core.Congestion { panic("hostile profile") }
func (panicAlloc) Congestion(r []core.Rate) []core.Congestion        { panic("hostile profile") }

func TestSolverPanicContained(t *testing.T) {
	s := New(Options{Workers: 1, Alloc: panicAlloc{}})
	s.Start()
	h := s.Handler()
	update(t, h, "a", 0.1, "")
	var rej Rejection
	code := doJSON(t, h, "POST", "/v1/solve", SolveRequest{Client: "a"}, &rej)
	if code != http.StatusInternalServerError || rej.Reason != ReasonPanic || rej.Status != "FAILED(panic)" {
		t.Fatalf("solver panic: status %d body %+v", code, rej)
	}
	// The worker survived: a sane allocation would now solve; at minimum
	// the server still answers and drains cleanly.
	if code := doJSON(t, h, "GET", "/healthz", nil, &HealthResponse{}); code != http.StatusOK {
		t.Errorf("healthz after panic: %d", code)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("shutdown after panic: %v", err)
	}
	if st := s.snapshotStats(); st.Panics == 0 {
		t.Error("panic not counted")
	}
}

func TestHandlerPanicContained(t *testing.T) {
	s := New(Options{})
	h := s.contain(func(w http.ResponseWriter, r *http.Request) { panic("boom") })
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/x", nil))
	var rej Rejection
	if err := json.Unmarshal(rec.Body.Bytes(), &rej); err != nil {
		t.Fatalf("bad body: %v", err)
	}
	if rec.Code != http.StatusInternalServerError || rej.Status != "FAILED(panic)" || rej.Reason != ReasonPanic {
		t.Fatalf("contained panic rendered %d %+v", rec.Code, rej)
	}
}

func TestWatchdogFlipsHealthOnStall(t *testing.T) {
	clk := newFakeClock()
	s := New(Options{StallAfter: time.Second, Clock: clk.now})
	h := s.Handler()
	update(t, h, "a", 0.1, "")

	if code := doJSON(t, h, "GET", "/healthz", nil, &HealthResponse{}); code != http.StatusOK {
		t.Fatalf("healthy server: %d", code)
	}
	// Plant a queued job that nobody is serving and let the stall clock
	// run out.
	s.mu.Lock()
	s.queue = append(s.queue, &job{enqueued: clk.now(), fl: &flight{done: make(chan struct{})}})
	s.mu.Unlock()
	clk.advance(1500 * time.Millisecond)
	s.checkStall(clk.now())

	var hr HealthResponse
	if code := doJSON(t, h, "GET", "/healthz", nil, &hr); code != http.StatusServiceUnavailable || hr.Status != "draining" {
		t.Fatalf("stalled healthz: %d %+v", code, hr)
	}
	var rej Rejection
	if code := doJSON(t, h, "POST", "/v1/solve", SolveRequest{Client: "a"}, &rej); code != http.StatusServiceUnavailable || rej.Reason != ReasonDraining {
		t.Fatalf("stalled solve: %d %+v", code, rej)
	}
	// Progress resumes (queue drained): health recovers.
	s.mu.Lock()
	s.queue = nil
	s.mu.Unlock()
	s.checkStall(clk.now())
	if code := doJSON(t, h, "GET", "/healthz", nil, &hr); code != http.StatusOK {
		t.Fatalf("recovered healthz: %d %+v", code, hr)
	}
}

func TestCoalescingSingleSolve(t *testing.T) {
	rel := make(chan struct{})
	s := New(Options{Workers: 2, Alloc: &blockingAlloc{inner: passAlloc{}, release: rel}})
	s.Start()
	h := s.Handler()
	update(t, h, "a", 0.1, "")
	update(t, h, "b", 0.2, "")

	const waiters = 8
	codes := make(chan int, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			var sol SolveResponse
			codes <- doJSON(t, h, "POST", "/v1/solve", SolveRequest{Client: "a", DeadlineMS: 60_000}, &sol)
		}()
	}
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.stats.Solves == waiters
	})
	close(rel)
	for i := 0; i < waiters; i++ {
		if c := <-codes; c != http.StatusOK {
			t.Errorf("waiter %d: status %d", i, c)
		}
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	st := s.snapshotStats()
	if st.SolvesRun != 1 {
		t.Errorf("%d solver runs for %d identical requests, want exactly 1", st.SolvesRun, waiters)
	}
	if st.Coalesced != waiters-1 {
		t.Errorf("coalesced = %d, want %d", st.Coalesced, waiters-1)
	}
}

func TestUtilityChangeInvalidatesCache(t *testing.T) {
	s := New(Options{Workers: 1})
	s.Start()
	defer func() {
		if err := s.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	h := s.Handler()
	update(t, h, "a", 0.1, "linear:1,4")
	var sol SolveResponse
	if code := doJSON(t, h, "POST", "/v1/solve", SolveRequest{Client: "a"}, &sol); code != http.StatusOK {
		t.Fatalf("solve: %d", code)
	}
	s.mu.Lock()
	cached := len(s.cache)
	s.mu.Unlock()
	if cached != 1 {
		t.Fatalf("cache size %d after solve", cached)
	}
	// Changing the utility clears the cache outright.
	update(t, h, "a", 0.1, "linear:2,4")
	s.mu.Lock()
	cached = len(s.cache)
	s.mu.Unlock()
	if cached != 0 {
		t.Errorf("cache holds %d entries after a utility change, want 0", cached)
	}
}

func TestShutdownDrainsAndRejects(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Options{Workers: 3})
	s.Start()
	h := s.Handler()
	update(t, h, "a", 0.1, "")
	if code := doJSON(t, h, "POST", "/v1/solve", SolveRequest{Client: "a"}, &SolveResponse{}); code != http.StatusOK {
		t.Fatalf("solve: %d", code)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Draining: every new request is a typed draining rejection.
	var rej Rejection
	if code := doJSON(t, h, "POST", "/v1/update", UpdateRequest{Client: "b", Rate: 0.1}, &rej); code != http.StatusServiceUnavailable || rej.Reason != ReasonDraining {
		t.Errorf("post-drain update: %d %+v", code, rej)
	}
	if code := doJSON(t, h, "POST", "/v1/solve", SolveRequest{Client: "a"}, &rej); code != http.StatusServiceUnavailable || rej.Reason != ReasonDraining {
		t.Errorf("post-drain solve: %d %+v", code, rej)
	}
	var hr HealthResponse
	if code := doJSON(t, h, "GET", "/healthz", nil, &hr); code != http.StatusServiceUnavailable || hr.Status != "draining" {
		t.Errorf("post-drain healthz: %d %+v", code, hr)
	}
	// All workers and the watchdog exited: goroutine count settles back.
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before })
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestCacheEvictionIsFIFOAndBounded(t *testing.T) {
	s := New(Options{CacheCap: 2})
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < 5; i++ {
		s.cacheStore(fmt.Sprintf("k%d", i), &SolveResponse{Key: fmt.Sprintf("k%d", i)})
	}
	if len(s.cache) > 2 {
		t.Fatalf("cache size %d over cap 2", len(s.cache))
	}
	if _, ok := s.cache["k4"]; !ok {
		t.Error("newest entry evicted")
	}
	if _, ok := s.cache["k0"]; ok {
		t.Error("oldest entry survived FIFO eviction")
	}
}

// TestClassCacheServesRenamedClients pins the class-canonical cache
// round trip: a game solved for one client population is served from
// cache to a disjoint population with the same multiset of
// (utility, rate), identical-utility clients coalescing into classes.
func TestClassCacheServesRenamedClients(t *testing.T) {
	s := New(Options{Workers: 1})
	s.Start()
	defer func() {
		if err := s.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	h := s.Handler()

	// Two classes: a1/a2 coalesce (same spec and rate), a3 is its own.
	update(t, h, "a1", 0.1, "linear:1,4")
	update(t, h, "a2", 0.1, "linear:1,4")
	update(t, h, "a3", 0.15, "linear:1,2")
	var first SolveResponse
	if code := doJSON(t, h, "POST", "/v1/solve", SolveRequest{Client: "a1"}, &first); code != http.StatusOK {
		t.Fatalf("first solve: status %d", code)
	}
	if first.Cached {
		t.Fatal("first solve claims cached")
	}

	// Replace the population: same game, new identities, permuted order.
	for _, id := range []string{"a1", "a2", "a3"} {
		doJSON(t, h, "POST", "/v1/update", UpdateRequest{Client: id, Leave: true}, nil)
	}
	update(t, h, "z9", 0.15, "linear:1,2")
	update(t, h, "z1", 0.1, "linear:1,4")
	update(t, h, "z2", 0.1, "linear:1,4")
	var second SolveResponse
	if code := doJSON(t, h, "POST", "/v1/solve", SolveRequest{Client: "z1"}, &second); code != http.StatusOK {
		t.Fatalf("second solve: status %d", code)
	}
	if !second.Cached {
		t.Fatal("renamed population missed the class cache")
	}
	if got := []string{"z1", "z2", "z9"}; !slicesEqual(second.Clients, got) {
		t.Fatalf("clients = %v, want %v", second.Clients, got)
	}
	// The multiset of solved (rate, congestion) pairs must round-trip
	// exactly: z1/z2 get the a1/a2 class values, z9 gets a3's.
	for i, want := range []int{0, 1, 2} {
		if second.R[i] != first.R[want] || second.C[i] != first.C[want] {
			t.Errorf("member %d: got (%v, %v), want (%v, %v)",
				i, second.R[i], second.C[i], first.R[want], first.C[want])
		}
	}

	var st Stats
	if code := doJSON(t, h, "GET", "/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.ClassCacheHits != 1 {
		t.Errorf("class cache hits = %d, want 1", st.ClassCacheHits)
	}
	if st.SolvesRun != 1 {
		t.Errorf("solves run = %d, want 1", st.SolvesRun)
	}

	// The rebuilt response is now in the per-user cache too: a repeat
	// solve hits without touching the class path again.
	var third SolveResponse
	if code := doJSON(t, h, "POST", "/v1/solve", SolveRequest{Client: "z2"}, &third); code != http.StatusOK {
		t.Fatalf("third solve: status %d", code)
	}
	if !third.Cached {
		t.Error("repeat solve missed the per-user cache")
	}
	doJSON(t, h, "GET", "/v1/stats", nil, &st)
	if st.ClassCacheHits != 1 {
		t.Errorf("class cache hits grew to %d; repeat should hit per-user", st.ClassCacheHits)
	}
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
