package service

import (
	"fmt"
	"math"
	"time"
)

// Admission control is the paper's out-of-equilibrium protection bound
// made operational.  Theorem 8: under Fair Share every user i is
// guaranteed c_i ≤ r_i/(1 − N·r_i) whatever the other users send — but
// the guarantee is vacuous once N·r_i ≥ 1, where the bound diverges.
// The service therefore admits a rate update only while every admitted
// client's bound stays finite: the newcomer's own N·r < 1, and — because
// admitting one more client raises N for everyone — no incumbent's
// bound is pushed past the pole either.  An admitted population always
// satisfies Σr < 1 as a corollary (each r_i < 1/N), so solves start
// from a feasible point by construction.

// admitResult reports one admission decision.
type admitResult struct {
	ok     bool
	bound  float64 // r/(1−N·r) at the admitted population, when ok
	detail string  // rejection explanation, when !ok
}

// admit decides whether client id may set its rate to r.  mu must be
// held.
//
//lint:locked mu
func (s *Server) admit(id string, r float64) admitResult {
	n := len(s.clients)
	_, known := s.clients[id]
	if !known {
		if n >= s.opt.MaxClients {
			return admitResult{detail: fmt.Sprintf("population cap %d reached", s.opt.MaxClients)}
		}
		n++
	}
	// The newcomer's own bound must be finite: N·r < 1.
	if float64(n)*r >= 1 {
		return admitResult{detail: fmt.Sprintf(
			"rate %v at population %d puts N·r = %v past the protection pole (need N·r < 1)", r, n, float64(n)*r)}
	}
	// A join raises N for every incumbent; none of their bounds may
	// cross the pole.  A pure rate update keeps N, so incumbents are
	// unaffected and the scan is skipped.
	if !known {
		for _, other := range s.sortedClientIDs() {
			if other == id {
				continue
			}
			if ro := s.clients[other].rate; float64(n)*ro >= 1 {
				return admitResult{detail: fmt.Sprintf(
					"admitting a %dth client would push incumbent %q (rate %v) past its protection pole", n, other, ro)}
			}
		}
	}
	// Definition 7's bound r/(1−N·r), inline: the N·r < 1 guards above
	// dominate this expression, which is mm1.ProtectionBound(n, r)
	// restricted to its finite branch.
	return admitResult{ok: true, bound: r / (1 - float64(n)*r)}
}

// takeToken spends one token from the client's bucket, refilling first
// at the configured rate.  mu must be held.
//
//lint:locked mu
func (s *Server) takeToken(c *client, now time.Time) bool {
	if dt := now.Sub(c.lastRefill).Seconds(); dt > 0 {
		c.tokens = math.Min(s.opt.Burst, c.tokens+dt*s.opt.Refill)
		c.lastRefill = now
	}
	if c.tokens < 1 {
		return false
	}
	c.tokens--
	return true
}
