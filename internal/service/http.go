package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"greednet/internal/cliutil"
)

// maxBodyBytes bounds request bodies; a malformed-payload injector
// sending megabytes must cost a read of at most this much.
const maxBodyBytes = 1 << 16

// Handler returns the service's HTTP mux.  Every handler runs inside
// the panic-containment wrapper, so a handler (or solver) panic renders
// a canonical FAILED(panic) body instead of killing the connection or
// the process.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/update", s.contain(s.handleUpdate))
	mux.HandleFunc("POST /v1/solve", s.contain(s.handleSolve))
	mux.HandleFunc("GET /v1/congestion", s.contain(s.handleCongestion))
	mux.HandleFunc("GET /v1/stats", s.contain(s.handleStats))
	mux.HandleFunc("GET /healthz", s.contain(s.handleHealth))
	return mux
}

// contain wraps a handler with panic containment.
func (s *Server) contain(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.mu.Lock()
				s.stats.Panics++
				s.mu.Unlock()
				writeJSON(w, http.StatusInternalServerError,
					Rejection{Status: "FAILED(panic)", Reason: ReasonPanic, Detail: fmt.Sprint(v)})
			}
		}()
		h(w, r)
	}
}

// writeJSON renders v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// A failed write means the client hung up mid-response; there is
	// nobody left to tell.
	_ = json.NewEncoder(w).Encode(v)
}

// reject renders a typed rejection.
func reject(w http.ResponseWriter, code int, reason, detail string) {
	writeJSON(w, code, Rejection{Status: "REJECTED", Reason: reason, Detail: detail})
}

// decodeUpdate parses and validates an update body.  Validation reuses
// the cliutil rules: rates must be positive and finite (NaN/Inf smuggled
// through json.Number-ish tricks die here, not in the solver), utility
// specs must parse.
func decodeUpdate(r *http.Request) (UpdateRequest, error) {
	var req UpdateRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("bad update body: %w", err)
	}
	if req.Client == "" || len(req.Client) > 64 {
		return req, errors.New("client id must be 1–64 bytes")
	}
	if req.Leave {
		return req, nil
	}
	if err := cliutil.CheckRate(req.Rate); err != nil {
		return req, err
	}
	if req.Utility != "" {
		if _, err := cliutil.ParseUtility(req.Utility); err != nil {
			return req, err
		}
	}
	return req, nil
}

// handleUpdate admits (or rejects) one client's rate/utility update.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	req, err := decodeUpdate(r)
	if err != nil {
		s.mu.Lock()
		s.stats.RejectedMalformed++
		s.mu.Unlock()
		reject(w, http.StatusBadRequest, ReasonMalformed, err.Error())
		return
	}
	now := s.opt.Clock()

	s.mu.Lock()
	if s.draining {
		s.stats.ShedDraining++
		s.mu.Unlock()
		reject(w, http.StatusServiceUnavailable, ReasonDraining, "service is draining")
		return
	}
	if c, known := s.clients[req.Client]; known && !s.takeToken(c, now) {
		s.stats.ShedOverload++
		s.mu.Unlock()
		reject(w, http.StatusTooManyRequests, ReasonOverload, "token bucket empty; slow down")
		return
	}
	if req.Leave {
		if _, known := s.clients[req.Client]; known {
			delete(s.clients, req.Client)
			delete(s.published, req.Client)
			s.profGen++
			s.stats.Leaves++
		}
		n := len(s.clients)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, UpdateResponse{Admitted: true, Clients: n})
		return
	}
	ad := s.admit(req.Client, req.Rate)
	if !ad.ok {
		s.stats.RejectedAdmission++
		s.mu.Unlock()
		reject(w, http.StatusTooManyRequests, ReasonAdmission, ad.detail)
		return
	}
	c, known := s.clients[req.Client]
	if !known {
		c = &client{u: s.opt.DefaultUtility, tokens: s.opt.Burst - 1, lastRefill: now}
		s.clients[req.Client] = c
	}
	c.rate = req.Rate
	if req.Utility != "" && req.Utility != c.spec {
		// Parse errors were rejected in decodeUpdate; this cannot fail.
		u, perr := cliutil.ParseUtility(req.Utility)
		if perr == nil {
			c.spec = req.Utility
			c.u = u
			// An existing client's game changed: drop equilibria of the
			// dead game (stale keys can never be re-hit — clearing is
			// capacity hygiene, not correctness).  A freshly admitted
			// client has no old game, so the caches — including the
			// identity-free class cache, which survives population churn
			// by design — stay warm.
			if known {
				s.cacheClear()
			}
		}
	}
	s.profGen++
	s.stats.Updates++
	n := len(s.clients)
	s.mu.Unlock()

	writeJSON(w, http.StatusOK, UpdateResponse{Admitted: true, Clients: n, Bound: ad.bound})
}

// solveBudget maps the requested deadline to the server's policy:
// default when absent, clamped above, and rejected when non-positive
// (a skewed client clock must not buy an unbounded or instant-expired
// budget).
func (s *Server) solveBudget(req SolveRequest) (time.Duration, error) {
	if req.DeadlineMS == 0 {
		return s.opt.DefaultDeadline, nil
	}
	if req.DeadlineMS < 0 {
		return 0, fmt.Errorf("deadline %dms already expired (skewed clock?)", req.DeadlineMS)
	}
	d := time.Duration(req.DeadlineMS) * time.Millisecond
	if d > s.opt.MaxDeadline {
		d = s.opt.MaxDeadline
	}
	return d, nil
}

// handleSolve serves an equilibrium for the current admitted profile:
// from the cache when the profile is unchanged, by joining an in-flight
// solve of the same canonical profile, or by enqueueing a new solve —
// unless the queue's age says the deadline cannot be met, in which case
// the request is shed immediately with a typed reason.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.mu.Lock()
		s.stats.RejectedMalformed++
		s.mu.Unlock()
		reject(w, http.StatusBadRequest, ReasonMalformed, "bad solve body: "+err.Error())
		return
	}
	budget, err := s.solveBudget(req)
	if err != nil {
		s.mu.Lock()
		s.stats.ShedDeadline++
		s.mu.Unlock()
		reject(w, http.StatusServiceUnavailable, ReasonDeadline, err.Error())
		return
	}
	now := s.opt.Clock()

	s.mu.Lock()
	if s.draining || s.stalled {
		s.stats.ShedDraining++
		s.mu.Unlock()
		reject(w, http.StatusServiceUnavailable, ReasonDraining, "service is draining")
		return
	}
	if c, known := s.clients[req.Client]; known && !s.takeToken(c, now) {
		s.stats.ShedOverload++
		s.mu.Unlock()
		reject(w, http.StatusTooManyRequests, ReasonOverload, "token bucket empty; slow down")
		return
	}
	if len(s.clients) == 0 {
		s.mu.Unlock()
		reject(w, http.StatusTooManyRequests, ReasonAdmission, "no admitted clients to solve for")
		return
	}
	s.stats.Solves++
	ids := s.sortedClientIDs()
	key := s.canonicalKey(ids)
	if res, hit := s.cache[key]; hit {
		s.stats.CacheHits++
		out := *res
		out.Cached = true
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, out)
		return
	}
	// Per-user miss: the same game may still be cached class-canonically
	// — identical-utility clients coalesce, so a renamed or permuted
	// client population with the same multiset of (spec, rate) rebuilds
	// its response without re-solving.
	if out, hit := s.classServe(ids, key); hit {
		s.stats.CacheHits++
		s.stats.ClassCacheHits++
		s.cacheStore(key, out)
		resp := *out
		resp.Cached = true
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	fl, inFlight := s.flights[key]
	if inFlight {
		s.stats.Coalesced++
		s.mu.Unlock()
		s.awaitFlight(w, r, fl, budget, true)
		return
	}
	// No flight to join: this request pays the queue admission checks.
	if len(s.queue) >= s.opt.QueueCap {
		s.stats.ShedOverload++
		s.mu.Unlock()
		reject(w, http.StatusServiceUnavailable, ReasonOverload,
			fmt.Sprintf("solve queue full (%d deep)", s.opt.QueueCap))
		return
	}
	if len(s.queue) > 0 {
		if age := now.Sub(s.queue[0].enqueued); age > budget {
			// Reject-newest: the head has already waited longer than this
			// request's whole budget, so service within the deadline is
			// impossible; shedding now is strictly kinder than timing out
			// later with the queue even deeper.
			s.stats.ShedDeadline++
			s.mu.Unlock()
			reject(w, http.StatusServiceUnavailable, ReasonDeadline,
				fmt.Sprintf("queue head is %v old, past the %v deadline", age, budget))
			return
		}
	}
	j := s.snapshotJob(now)
	s.flights[key] = j.fl
	s.queue = append(s.queue, j)
	if d := len(s.queue); d > s.stats.QueueMax {
		s.stats.QueueMax = d
	}
	fl = j.fl
	s.mu.Unlock()

	select {
	case s.wake <- struct{}{}:
	default: // a worker is already awake
	}
	s.awaitFlight(w, r, fl, budget, false)
}

// awaitFlight waits for a flight to complete within the request's
// budget and renders its result.
func (s *Server) awaitFlight(w http.ResponseWriter, r *http.Request, fl *flight, budget time.Duration, coalesced bool) {
	t := time.NewTimer(budget)
	defer t.Stop()
	select {
	case <-fl.done:
		if fl.rej != nil {
			code := http.StatusServiceUnavailable
			if fl.rej.Reason == ReasonPanic {
				code = http.StatusInternalServerError
			}
			writeJSON(w, code, *fl.rej)
			return
		}
		out := *fl.res
		out.Coalesced = coalesced
		writeJSON(w, http.StatusOK, out)
	case <-t.C:
		s.mu.Lock()
		s.stats.ShedDeadline++
		s.mu.Unlock()
		reject(w, http.StatusServiceUnavailable, ReasonDeadline,
			fmt.Sprintf("solve still in flight after the %v deadline", budget))
	case <-r.Context().Done():
		// Client hung up; the flight itself keeps running for the
		// benefit of its other joiners and the cache.
	}
}

// handleCongestion republishes one client's equilibrium point — the
// feedback half of the closed control loop.
func (s *Server) handleCongestion(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("client")
	s.mu.Lock()
	p, known := s.published[id]
	gen := s.profGen
	s.mu.Unlock()
	if !known {
		reject(w, http.StatusNotFound, ReasonAdmission,
			"client has no published point (not admitted, or no solve has included it yet)")
		return
	}
	writeJSON(w, http.StatusOK, CongestionResponse{
		Client:     id,
		Rate:       p.rate,
		Congestion: p.congestion,
		Stale:      p.profGen != gen,
	})
}

// handleStats serves the counters.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.snapshotStats())
}

// handleHealth serves the watchdog-driven health state: 200 ok while
// accepting, 503 draining while shutting down or stalled.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	h, ok := s.health()
	code := http.StatusOK
	if !ok {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}
