package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"greednet/internal/core"
	"greednet/internal/game"
	"greednet/internal/profkey"
)

// flight is one in-flight solve that concurrent requests for the same
// canonical profile join instead of duplicating (singleflight).  res and
// rej are written by the completing worker strictly before done is
// closed and read by waiters strictly after it, so the close is the
// happens-before edge and no lock is needed on the payload.
type flight struct {
	// done is closed exactly once, by the worker completing the job.
	//lint:chanowner runJob
	done chan struct{}
	res  *SolveResponse
	rej  *Rejection
}

// job is one queued solve: an immutable snapshot of the admitted
// profile at enqueue time.
type job struct {
	key     string
	ids     []string // canonical (sorted) client order
	us      core.Profile
	rates   []core.Rate
	specs   []string // utility specs, parallel to ids (class storage)
	profGen int64
	// enqueued stamps the shedding clock: the head job's age is the
	// queue's age.
	enqueued time.Time
	fl       *flight
}

// sortedClientIDs returns the client ids in canonical order.  The
// explicit collect-sort walk keeps map iteration order out of every
// output (cache keys, response vectors).  mu must be held.
//
//lint:locked mu
func (s *Server) sortedClientIDs() []string {
	ids := make([]string, 0, len(s.clients))
	for id := range s.clients {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// canonicalKey renders the admitted profile as the flight/cache key via
// the shared profkey rendering: client ids in sorted order, each with
// its exact rate (hex float, so distinct profiles never collide) and
// utility spec.  Utility changes therefore change the key — the cache
// can never serve a solution from a stale utility.  mu must be held.
//
//lint:locked mu
func (s *Server) canonicalKey(ids []string) string {
	rates := make([]float64, len(ids))
	specs := make([]string, len(ids))
	for i, id := range ids {
		c := s.clients[id]
		rates[i] = c.rate
		specs[i] = c.spec
	}
	return profkey.PerUser(ids, rates, specs)
}

// snapshotJob builds the solve job for the current profile.  mu must be
// held.
//
//lint:locked mu
func (s *Server) snapshotJob(now time.Time) *job {
	ids := s.sortedClientIDs()
	j := &job{
		key:      s.canonicalKey(ids),
		ids:      ids,
		us:       make(core.Profile, len(ids)),
		rates:    make([]core.Rate, len(ids)),
		specs:    make([]string, len(ids)),
		profGen:  s.profGen,
		enqueued: now,
		fl:       &flight{done: make(chan struct{})},
	}
	for i, id := range ids {
		c := s.clients[id]
		j.us[i] = c.u
		j.rates[i] = c.rate
		j.specs[i] = c.spec
	}
	return j
}

// classSolution is one solved game stored under its class-canonical key:
// member equilibrium values grouped per (spec, rate) class, so a later
// profile with the same multiset of (spec, rate) — under any client ids
// — rebuilds a full response without re-solving.  Every in-tree
// allocation is permutation-equivariant, so the solution genuinely
// depends only on the multiset.
type classSolution struct {
	classes []profkey.ClassEntry
	// rs and cs hold, per class, its members' solved rates and
	// congestions in solve order.
	rs, cs    [][]float64
	converged bool
	iters     int
}

// classIndex finds the class of (spec, rate) in canonical entries, or
// −1.  Rates match bit-exactly, the same test profkey.Coalesce merges
// by.
func classIndex(classes []profkey.ClassEntry, spec string, rate float64) int {
	for j := range classes {
		if classes[j].Spec == spec &&
			math.Float64bits(classes[j].RateVal) == math.Float64bits(rate) {
			return j
		}
	}
	return -1
}

// classStore files a solved response under the job's class-canonical
// key with FIFO eviction, sharing CacheCap with the per-user cache.
// mu must be held.
//
//lint:locked mu
func (s *Server) classStore(j *job, res *SolveResponse) {
	rates := make([]float64, len(j.ids))
	for i, r := range j.rates {
		rates[i] = float64(r)
	}
	classes := profkey.Coalesce(j.specs, rates)
	key := profkey.Classes(classes)
	sol := &classSolution{
		classes:   classes,
		rs:        make([][]float64, len(classes)),
		cs:        make([][]float64, len(classes)),
		converged: res.Converged,
		iters:     res.Iters,
	}
	for i := range j.ids {
		slot := classIndex(classes, j.specs[i], rates[i])
		if slot < 0 {
			return // cannot happen: classes were built from these inputs
		}
		sol.rs[slot] = append(sol.rs[slot], res.R[i])
		sol.cs[slot] = append(sol.cs[slot], res.C[i])
	}
	if _, dup := s.classCache[key]; !dup {
		for len(s.classCache) >= s.opt.CacheCap && len(s.classOrder) > 0 {
			delete(s.classCache, s.classOrder[0])
			s.classOrder = s.classOrder[1:]
		}
		s.classOrder = append(s.classOrder, key)
	}
	s.classCache[key] = sol
}

// classServe rebuilds a response for the current client set from the
// class cache, if a game with the same multiset of (spec, rate) was
// solved before.  perUserKey becomes the response's Key so the caller
// sees its own canonical identity.  mu must be held.
//
//lint:locked mu
func (s *Server) classServe(ids []string, perUserKey string) (*SolveResponse, bool) {
	rates := make([]float64, len(ids))
	specs := make([]string, len(ids))
	for i, id := range ids {
		c := s.clients[id]
		rates[i] = c.rate
		specs[i] = c.spec
	}
	sol, ok := s.classCache[profkey.ClassKey(specs, rates)]
	if !ok {
		return nil, false
	}
	out := &SolveResponse{
		Key:       perUserKey,
		Converged: sol.converged,
		Iters:     sol.iters,
		Clients:   ids,
		R:         make([]float64, len(ids)),
		C:         make([]float64, len(ids)),
	}
	// Members of a class receive the class's solved values in sorted-id
	// order — the multiset of (rate, congestion) pairs is preserved
	// exactly, and key equality guarantees the cursors stay in bounds.
	cursors := make([]int, len(sol.classes))
	for i := range ids {
		slot := classIndex(sol.classes, specs[i], rates[i])
		if slot < 0 || cursors[slot] >= len(sol.rs[slot]) {
			return nil, false // defensive: key equality should preclude this
		}
		out.R[i] = sol.rs[slot][cursors[slot]]
		out.C[i] = sol.cs[slot][cursors[slot]]
		cursors[slot]++
	}
	return out, true
}

// cacheStore inserts a solved response under its key with FIFO
// eviction.  mu must be held.
//
//lint:locked mu
func (s *Server) cacheStore(key string, res *SolveResponse) {
	if _, dup := s.cache[key]; !dup {
		for len(s.cache) >= s.opt.CacheCap && len(s.cacheOrder) > 0 {
			delete(s.cache, s.cacheOrder[0])
			s.cacheOrder = s.cacheOrder[1:]
		}
		s.cacheOrder = append(s.cacheOrder, key)
	}
	s.cache[key] = res
}

// cacheClear drops every cached solve.  Called when a utility spec
// changes: the game itself changed, and although changed keys can never
// be re-hit, holding solutions of dead games would only displace live
// ones.  mu must be held.
//
//lint:locked mu
func (s *Server) cacheClear() {
	s.cache = make(map[string]*SolveResponse)
	s.cacheOrder = s.cacheOrder[:0]
	s.classCache = make(map[string]*classSolution)
	s.classOrder = s.classOrder[:0]
}

// dequeue pops the oldest queued job, or nil.
func (s *Server) dequeue() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return nil
	}
	j := s.queue[0]
	s.queue[0] = nil // release the slot's reference
	s.queue = s.queue[1:]
	return j
}

// worker drains the solve queue.  It exits only once the queue is empty
// AND ctx is done — with ctx canceled mid-drain the remaining jobs
// fast-fail (SolveNashCtx observes the canceled context immediately),
// so every queued flight still closes and no waiter is left hanging.
func (s *Server) worker(ctx context.Context) {
	defer s.wg.Done()
	// One workspace per worker: solver scratch is reused across every
	// job this worker runs, never shared across goroutines.
	ws := game.NewWorkspace()
	for {
		j := s.dequeue()
		if j == nil {
			select {
			case <-ctx.Done():
				return
			case <-s.wake:
				continue
			}
		}
		s.runJob(ctx, j, ws)
	}
}

// runJob executes one solve under the per-job timeout, publishes the
// result, and closes the job's flight.  Panics out of the solver are
// contained into a FAILED(panic) rejection: one hostile profile must
// not take down the worker.
func (s *Server) runJob(ctx context.Context, j *job, ws *game.Workspace) {
	res, rej := s.solveContained(ctx, j, ws)

	s.mu.Lock()
	if res != nil {
		s.cacheStore(j.key, res)
		s.classStore(j, res)
		for i, id := range j.ids {
			s.published[id] = pub{rate: res.R[i], congestion: res.C[i], profGen: j.profGen}
		}
		s.stats.SolvesRun++
	} else {
		s.stats.SolveFails++
		if rej.Reason == ReasonPanic {
			s.stats.Panics++
		}
	}
	delete(s.flights, j.key)
	s.lastProgress = s.opt.Clock()
	s.mu.Unlock()

	j.fl.res = res
	j.fl.rej = rej
	close(j.fl.done)
}

// solveContained runs SolveNashCtx with panic containment and maps the
// outcome to a response or a typed rejection.
func (s *Server) solveContained(ctx context.Context, j *job, ws *game.Workspace) (res *SolveResponse, rej *Rejection) {
	defer func() {
		if v := recover(); v != nil {
			res = nil
			rej = &Rejection{Status: "FAILED(panic)", Reason: ReasonPanic,
				Detail: fmt.Sprintf("solver panicked: %v", v)}
		}
	}()
	sctx, cancel := context.WithTimeout(ctx, s.opt.SolveTimeout)
	defer cancel()
	nr, err := game.SolveNashWS(sctx, ws, s.opt.Alloc, j.us, j.rates, s.opt.Nash)
	if err != nil {
		reason := ReasonDraining // canceled by shutdown
		detail := "solve canceled: " + err.Error()
		if errors.Is(err, core.ErrDeadline) {
			reason = ReasonDeadline
			detail = fmt.Sprintf("solve exceeded the %v solver timeout after %d rounds", s.opt.SolveTimeout, nr.Iters)
		}
		return nil, &Rejection{Status: "REJECTED", Reason: reason, Detail: detail}
	}
	return &SolveResponse{
		Key:       j.key,
		Converged: nr.Converged,
		Iters:     nr.Iters,
		Clients:   j.ids,
		R:         nr.R,
		C:         nr.C,
	}, nil
}
