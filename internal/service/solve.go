package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"greednet/internal/core"
	"greednet/internal/game"
)

// flight is one in-flight solve that concurrent requests for the same
// canonical profile join instead of duplicating (singleflight).  res and
// rej are written by the completing worker strictly before done is
// closed and read by waiters strictly after it, so the close is the
// happens-before edge and no lock is needed on the payload.
type flight struct {
	// done is closed exactly once, by the worker completing the job.
	//lint:chanowner runJob
	done chan struct{}
	res  *SolveResponse
	rej  *Rejection
}

// job is one queued solve: an immutable snapshot of the admitted
// profile at enqueue time.
type job struct {
	key     string
	ids     []string // canonical (sorted) client order
	us      core.Profile
	rates   []core.Rate
	profGen int64
	// enqueued stamps the shedding clock: the head job's age is the
	// queue's age.
	enqueued time.Time
	fl       *flight
}

// sortedClientIDs returns the client ids in canonical order.  The
// explicit collect-sort walk keeps map iteration order out of every
// output (cache keys, response vectors).  mu must be held.
//
//lint:locked mu
func (s *Server) sortedClientIDs() []string {
	ids := make([]string, 0, len(s.clients))
	for id := range s.clients {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// canonicalKey renders the admitted profile as the cache/coalescing
// key: client ids in sorted order, each with its exact rate (hex float,
// so distinct profiles never collide) and utility spec.  Utility
// changes therefore change the key — the cache can never serve a
// solution from a stale utility.  mu must be held.
//
//lint:locked mu
func (s *Server) canonicalKey(ids []string) string {
	var b strings.Builder
	for _, id := range ids {
		c := s.clients[id]
		b.WriteString(id)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(c.rate, 'x', -1, 64))
		b.WriteByte(':')
		b.WriteString(c.spec)
		b.WriteByte(';')
	}
	return b.String()
}

// snapshotJob builds the solve job for the current profile.  mu must be
// held.
//
//lint:locked mu
func (s *Server) snapshotJob(now time.Time) *job {
	ids := s.sortedClientIDs()
	j := &job{
		key:      s.canonicalKey(ids),
		ids:      ids,
		us:       make(core.Profile, len(ids)),
		rates:    make([]core.Rate, len(ids)),
		profGen:  s.profGen,
		enqueued: now,
		fl:       &flight{done: make(chan struct{})},
	}
	for i, id := range ids {
		c := s.clients[id]
		j.us[i] = c.u
		j.rates[i] = c.rate
	}
	return j
}

// cacheStore inserts a solved response under its key with FIFO
// eviction.  mu must be held.
//
//lint:locked mu
func (s *Server) cacheStore(key string, res *SolveResponse) {
	if _, dup := s.cache[key]; !dup {
		for len(s.cache) >= s.opt.CacheCap && len(s.cacheOrder) > 0 {
			delete(s.cache, s.cacheOrder[0])
			s.cacheOrder = s.cacheOrder[1:]
		}
		s.cacheOrder = append(s.cacheOrder, key)
	}
	s.cache[key] = res
}

// cacheClear drops every cached solve.  Called when a utility spec
// changes: the game itself changed, and although changed keys can never
// be re-hit, holding solutions of dead games would only displace live
// ones.  mu must be held.
//
//lint:locked mu
func (s *Server) cacheClear() {
	s.cache = make(map[string]*SolveResponse)
	s.cacheOrder = s.cacheOrder[:0]
}

// dequeue pops the oldest queued job, or nil.
func (s *Server) dequeue() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return nil
	}
	j := s.queue[0]
	s.queue[0] = nil // release the slot's reference
	s.queue = s.queue[1:]
	return j
}

// worker drains the solve queue.  It exits only once the queue is empty
// AND ctx is done — with ctx canceled mid-drain the remaining jobs
// fast-fail (SolveNashCtx observes the canceled context immediately),
// so every queued flight still closes and no waiter is left hanging.
func (s *Server) worker(ctx context.Context) {
	defer s.wg.Done()
	// One workspace per worker: solver scratch is reused across every
	// job this worker runs, never shared across goroutines.
	ws := game.NewWorkspace()
	for {
		j := s.dequeue()
		if j == nil {
			select {
			case <-ctx.Done():
				return
			case <-s.wake:
				continue
			}
		}
		s.runJob(ctx, j, ws)
	}
}

// runJob executes one solve under the per-job timeout, publishes the
// result, and closes the job's flight.  Panics out of the solver are
// contained into a FAILED(panic) rejection: one hostile profile must
// not take down the worker.
func (s *Server) runJob(ctx context.Context, j *job, ws *game.Workspace) {
	res, rej := s.solveContained(ctx, j, ws)

	s.mu.Lock()
	if res != nil {
		s.cacheStore(j.key, res)
		for i, id := range j.ids {
			s.published[id] = pub{rate: res.R[i], congestion: res.C[i], profGen: j.profGen}
		}
		s.stats.SolvesRun++
	} else {
		s.stats.SolveFails++
		if rej.Reason == ReasonPanic {
			s.stats.Panics++
		}
	}
	delete(s.flights, j.key)
	s.lastProgress = s.opt.Clock()
	s.mu.Unlock()

	j.fl.res = res
	j.fl.rej = rej
	close(j.fl.done)
}

// solveContained runs SolveNashCtx with panic containment and maps the
// outcome to a response or a typed rejection.
func (s *Server) solveContained(ctx context.Context, j *job, ws *game.Workspace) (res *SolveResponse, rej *Rejection) {
	defer func() {
		if v := recover(); v != nil {
			res = nil
			rej = &Rejection{Status: "FAILED(panic)", Reason: ReasonPanic,
				Detail: fmt.Sprintf("solver panicked: %v", v)}
		}
	}()
	sctx, cancel := context.WithTimeout(ctx, s.opt.SolveTimeout)
	defer cancel()
	nr, err := game.SolveNashWS(sctx, ws, s.opt.Alloc, j.us, j.rates, s.opt.Nash)
	if err != nil {
		reason := ReasonDraining // canceled by shutdown
		detail := "solve canceled: " + err.Error()
		if errors.Is(err, core.ErrDeadline) {
			reason = ReasonDeadline
			detail = fmt.Sprintf("solve exceeded the %v solver timeout after %d rounds", s.opt.SolveTimeout, nr.Iters)
		}
		return nil, &Rejection{Status: "REJECTED", Reason: reason, Detail: detail}
	}
	return &SolveResponse{
		Key:       j.key,
		Converged: nr.Converged,
		Iters:     nr.Iters,
		Clients:   j.ids,
		R:         nr.R,
		C:         nr.C,
	}, nil
}
