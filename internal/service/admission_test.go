package service

import (
	"math"
	"net/http"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/game"
	"greednet/internal/mm1"
	"greednet/internal/randdist"
)

// TestAdmissionNeverViolatesProtectionBound drives the service boundary
// with an adversarial stream of joins, rate updates, and leaves —
// including rates crafted to sit exactly at, just under, and far past
// the protection pole — and checks after every operation that the
// admitted profile can never violate Theorem 8's guarantee:
//
//  1. every admitted client's bound r_i/(1 − N·r_i) is finite
//     (N·r_i < 1), and
//  2. the Fair Share congestion actually delivered at the admitted
//     rates keeps every protection slack nonnegative — the same
//     cross-check the E9 protection sweep performs against the paper.
func TestAdmissionNeverViolatesProtectionBound(t *testing.T) {
	s := New(Options{MaxClients: 32, Burst: 1e9, Refill: 1e9})
	h := s.Handler()
	rng := randdist.NewRand(99)
	fs := alloc.FairShare{}

	ids := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for step := 0; step < 2000; step++ {
		id := ids[rng.Intn(len(ids))]
		var rate float64
		switch rng.Intn(6) {
		case 0: // innocuous
			rate = 0.01 + 0.1*rng.Float64()
		case 1: // hostile: far past any pole
			rate = 1 + 10*rng.Float64()
		case 2: // hostile: exactly at the single-client pole
			rate = 1.0
		case 3: // adversarial: just under the current-population pole
			n := float64(s.clientCount() + 1)
			rate = (1 - 1e-9) / n
		case 4: // adversarial: just over the current-population pole
			n := float64(s.clientCount() + 1)
			rate = (1 + 1e-9) / n
		case 5: // leave
			doJSON(t, h, "POST", "/v1/update", UpdateRequest{Client: id, Leave: true}, nil)
			assertProtected(t, s, fs)
			continue
		}
		code := doJSON(t, h, "POST", "/v1/update", UpdateRequest{Client: id, Rate: rate}, nil)
		if code != http.StatusOK && code != http.StatusTooManyRequests {
			t.Fatalf("step %d: unexpected status %d for rate %v", step, code, rate)
		}
		assertProtected(t, s, fs)
	}
}

// clientCount reads the admitted population.
func (s *Server) clientCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clients)
}

// admittedRates snapshots the admitted rate vector in canonical order.
func (s *Server) admittedRates() []core.Rate {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := s.sortedClientIDs()
	r := make([]core.Rate, len(ids))
	for i, id := range ids {
		r[i] = s.clients[id].rate
	}
	return r
}

// assertProtected checks both halves of the admission invariant on the
// currently admitted profile.
func assertProtected(t *testing.T, s *Server, fs alloc.FairShare) {
	t.Helper()
	r := s.admittedRates()
	n := len(r)
	if n == 0 {
		return
	}
	for i, ri := range r {
		if float64(n)*ri >= 1 {
			t.Fatalf("admitted profile %v: client %d has N·r = %v ≥ 1 (infinite bound)", r, i, float64(n)*ri)
		}
		if b := mm1.ProtectionBound(n, ri); math.IsInf(b, 1) || math.IsNaN(b) {
			t.Fatalf("admitted profile %v: client %d bound %v not finite", r, i, b)
		}
	}
	// Cross-check against the E9 claim: under Fair Share the delivered
	// congestion respects every admitted bound (slack ≥ 0).
	for i, slack := range game.ProtectionSlack(fs, r) {
		if slack < -1e-9 || math.IsNaN(slack) {
			t.Fatalf("admitted profile %v: protection slack[%d] = %v < 0", r, i, slack)
		}
	}
}

// TestAdmittedProfileAlwaysFeasible pins the corollary the solver path
// relies on: each admitted r_i < 1/N forces Σr < 1, so solves always
// start inside the M/M/1 feasibility region.
func TestAdmittedProfileAlwaysFeasible(t *testing.T) {
	s := New(Options{Burst: 1e9, Refill: 1e9})
	h := s.Handler()
	rng := randdist.NewRand(7)
	for step := 0; step < 500; step++ {
		id := string(rune('a' + rng.Intn(12)))
		doJSON(t, h, "POST", "/v1/update", UpdateRequest{Client: id, Rate: rng.Float64() * 2}, nil)
		if r := s.admittedRates(); len(r) > 0 && !core.Feasible(r) {
			t.Fatalf("step %d: admitted profile %v infeasible", step, r)
		}
	}
}
