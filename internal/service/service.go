package service

import (
	"context"
	"sync"
	"time"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/game"
	"greednet/internal/utility"
)

// Options configures a Server.  The zero value is usable: every field
// has a production default.
type Options struct {
	// Alloc is the allocation function solved against; default
	// alloc.FairShare{} (the only discipline whose protection bound the
	// admission rule can honestly promise — Theorem 8).
	Alloc core.Allocation
	// DefaultUtility is the utility assumed for clients that never sent
	// a spec; default utility.Linear{A: 1, Gamma: 4}.
	DefaultUtility core.Utility
	// MaxClients caps the admitted population; default 4096.
	MaxClients int
	// QueueCap bounds the solve work queue; default 64.
	QueueCap int
	// Workers is the solve worker count; default 2.
	Workers int
	// SolveTimeout caps each SolveNashCtx call; default 2s.
	SolveTimeout time.Duration
	// DefaultDeadline is the request budget assumed when a solve request
	// carries none; default 1s.
	DefaultDeadline time.Duration
	// MaxDeadline clamps client-supplied budgets; default 10s.
	MaxDeadline time.Duration
	// Burst and Refill shape the per-client token bucket: a client holds
	// at most Burst tokens, regains Refill tokens/second, and spends one
	// per request.  Defaults 32 and 16.
	Burst, Refill float64
	// CacheCap bounds the solved-game cache (FIFO eviction); default 1024.
	CacheCap int
	// StallAfter is the watchdog threshold: queued work with no job
	// completion for this long flips health to draining; default 5s.
	StallAfter time.Duration
	// WatchTick is the watchdog poll period; default StallAfter/4.
	WatchTick time.Duration
	// Nash configures the solves; default MaxIter 200, Tol 1e-6.
	Nash game.NashOptions
	// Clock substitutes a fake time source in tests; default time.Now.
	Clock func() time.Time
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Alloc == nil {
		o.Alloc = alloc.FairShare{}
	}
	if o.DefaultUtility == nil {
		o.DefaultUtility = utility.Linear{A: 1, Gamma: 4}
	}
	if o.MaxClients <= 0 {
		o.MaxClients = 4096
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.SolveTimeout <= 0 {
		o.SolveTimeout = 2 * time.Second
	}
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = time.Second
	}
	if o.MaxDeadline <= 0 {
		o.MaxDeadline = 10 * time.Second
	}
	if o.Burst <= 0 {
		o.Burst = 32
	}
	if o.Refill <= 0 {
		o.Refill = 16
	}
	if o.CacheCap <= 0 {
		o.CacheCap = 1024
	}
	if o.StallAfter <= 0 {
		o.StallAfter = 5 * time.Second
	}
	if o.WatchTick <= 0 {
		o.WatchTick = o.StallAfter / 4
	}
	if o.Nash.MaxIter <= 0 {
		o.Nash.MaxIter = 200
	}
	if o.Nash.Tol <= 0 {
		o.Nash.Tol = 1e-6
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// client is one admitted client's state.  All fields are reached only
// through Server.clients, so Server.mu guards them transitively.
type client struct {
	rate float64
	spec string // cliutil utility spec, "" for the server default
	u    core.Utility

	// token bucket
	tokens     float64
	lastRefill time.Time
}

// pub is one client's republished equilibrium point.
type pub struct {
	rate, congestion float64
	profGen          int64 // profile generation the point was solved at
}

// Server is the allocation service.  Create with New, wire Handler into
// an http.Server, call Start, and Shutdown to drain.
type Server struct {
	opt Options

	mu sync.Mutex
	//lint:guardedby mu
	clients map[string]*client
	//lint:guardedby mu
	queue []*job
	//lint:guardedby mu
	flights map[string]*flight
	//lint:guardedby mu
	cache map[string]*SolveResponse
	//lint:guardedby mu
	cacheOrder []string
	//lint:guardedby mu
	classCache map[string]*classSolution
	//lint:guardedby mu
	classOrder []string
	//lint:guardedby mu
	published map[string]pub
	//lint:guardedby mu
	profGen int64
	//lint:guardedby mu
	stats Stats
	//lint:guardedby mu
	lastProgress time.Time
	//lint:guardedby mu
	draining bool
	//lint:guardedby mu
	stalled bool

	// wake nudges an idle worker after an enqueue.  Capacity 1, never
	// closed: workers exit via ctx, so there is no close-ownership to
	// transfer and no send-on-closed hazard.
	wake chan struct{}

	runCtx context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// New builds a stopped Server; call Start before serving traffic.
func New(opt Options) *Server {
	opt = opt.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		opt:          opt,
		clients:      make(map[string]*client),
		flights:      make(map[string]*flight),
		cache:        make(map[string]*SolveResponse),
		classCache:   make(map[string]*classSolution),
		published:    make(map[string]pub),
		lastProgress: opt.Clock(),
		wake:         make(chan struct{}, 1),
		runCtx:       ctx,
		cancel:       cancel,
	}
}

// Start launches the solve workers and the watchdog.
func (s *Server) Start() {
	for i := 0; i < s.opt.Workers; i++ {
		s.wg.Add(1)
		//lint:fanout worker drains the bounded solve queue; exits when Shutdown cancels runCtx after the queue is empty
		go s.worker(s.runCtx)
	}
	s.wg.Add(1)
	//lint:fanout watchdog flips health to draining when queued work stops progressing; exits with runCtx
	go s.watchdog(s.runCtx)
}

// Shutdown drains the service: new work is rejected with ReasonDraining,
// queued solves run to completion (or fast-fail once ctx expires), and
// every worker and the watchdog exit before it returns.  The returned
// error is nil on a clean drain and the typed core.ErrCanceled /
// core.ErrDeadline when ctx fired first.
func (s *Server) Shutdown(ctx context.Context) error {
	for {
		s.mu.Lock()
		s.draining = true
		idle := len(s.queue) == 0 && len(s.flights) == 0
		s.mu.Unlock()
		if idle || core.CtxErr(ctx) != nil {
			break
		}
		select {
		case <-ctx.Done():
		case <-time.After(5 * time.Millisecond):
		}
	}
	// Cancel the run context: idle workers return immediately; with ctx
	// expired early, busy workers fast-fail the remaining queue (every
	// flight still closes, so no waiter hangs) and then return.
	s.cancel()
	s.wg.Wait()
	return core.CtxErr(ctx)
}

// watchdog periodically compares the queue's progress against the stall
// threshold and drives the stalled health flag both ways: a wedged solve
// flips /healthz to draining before clients pile onto a dead queue, and
// resumed progress flips it back.
func (s *Server) watchdog(ctx context.Context) {
	defer s.wg.Done()
	t := time.NewTicker(s.opt.WatchTick)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.checkStall(s.opt.Clock())
		}
	}
}

// checkStall recomputes the stalled flag at the given instant.  Split
// from the watchdog loop so tests can drive it with a fake clock.
func (s *Server) checkStall(now time.Time) {
	s.mu.Lock()
	busy := len(s.queue) > 0 || len(s.flights) > 0
	s.stalled = busy && now.Sub(s.lastProgress) > s.opt.StallAfter
	s.mu.Unlock()
}

// snapshotStats returns the counters with the point-in-time gauges
// filled in.
func (s *Server) snapshotStats() Stats {
	s.mu.Lock()
	st := s.stats
	st.QueueDepth = len(s.queue)
	st.CacheSize = len(s.cache)
	s.mu.Unlock()
	return st
}

// health reports the health body and whether the service is accepting.
func (s *Server) health() (HealthResponse, bool) {
	s.mu.Lock()
	h := HealthResponse{Status: "ok", QueueDepth: len(s.queue), Clients: len(s.clients)}
	ok := !s.draining && !s.stalled
	s.mu.Unlock()
	if !ok {
		h.Status = "draining"
	}
	return h, ok
}
