// Package experiment contains the reproduction harness: one runner per
// paper claim (Table 1 and Theorems 1–8, plus the §5 discussion claims),
// each printing the measured table and a paper-vs-measured verdict line.
// cmd/greedbench drives the full suite; EXPERIMENTS.md records the output.
package experiment

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"text/tabwriter"
	"time"
)

// Options tunes a run.
type Options struct {
	// Fast shrinks simulation horizons and search budgets for use in
	// benchmarks and smoke tests.
	Fast bool
	// Seed makes randomized searches reproducible; 0 means the per-
	// experiment default unless SeedSet marks the zero as intentional.
	Seed int64
	// SeedSet marks Seed as explicitly chosen, which makes seed 0
	// pinnable (cmd/greedbench sets it whenever -seed appears on the
	// command line, whatever its value).
	SeedSet bool
	// Timeout, when positive, arms a per-experiment watchdog in RunSuite:
	// an experiment still running after Timeout is abandoned and its slot
	// renders a deterministic FAILED(deadline) block.  Zero (the default)
	// disables the watchdog.
	Timeout time.Duration
	// Ctx, when non-nil, cancels the whole run: the suite driver stops
	// starting experiments once it fires, and cooperative experiments
	// observe it via Context().  Nil means context.Background().
	Ctx context.Context
}

// Context resolves the run's context, never nil.
func (o Options) Context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// SeedOr resolves the run's seed: Seed when pinned (nonzero, or zero
// with SeedSet), otherwise the experiment's default def.
func (o Options) SeedOr(def int64) int64 {
	if o.SeedSet || o.Seed != 0 {
		return o.Seed
	}
	return def
}

// Experiment is one reproducible claim from the paper.
type Experiment struct {
	// ID is the short handle, e.g. "E1".
	ID string
	// Source cites the paper location, e.g. "Table 1" or "Theorem 4".
	Source string
	// Title summarizes the claim.
	Title string
	// Run executes the experiment, writing its table to w.  The returned
	// Verdict reports whether the measured shape matches the paper.
	Run func(w io.Writer, opt Options) (Verdict, error)
}

// Verdict is the outcome of comparing measurement to the paper's claim.
type Verdict struct {
	// Match is true when the measured shape reproduces the paper.
	Match bool
	// Note is a one-line summary of what was checked.
	Note string
}

// All returns the experiment registry in presentation order.
func All() []Experiment {
	return []Experiment{
		E1Table1(),
		E2Efficiency(),
		E3SymmetricPareto(),
		E4Envy(),
		E5Uniqueness(),
		E6Learning(),
		E7Revelation(),
		E8Relaxation(),
		E9Protection(),
		E10FTPTelnet(),
		E11Separable(),
		E12Network(),
		E13FairQueueing(),
		E14ClosedLoop(),
		E15GeneralService(),
		E16Coalition(),
		E17Automata(),
		E18DKSFairQueueing(),
		E19Tandem(),
		E20OnlyFairShare(),
		E21ClassAggregation(),
	}
}

// registryByID is the one-time ID index over All(); constructors run
// once instead of once per lookup.  All() itself still materializes a
// fresh slice per call, so callers remain free to reslice it.
var (
	registryOnce sync.Once
	registryByID map[string]Experiment
)

// ByID returns the experiment with the given ID, or false.
func ByID(id string) (Experiment, bool) {
	registryOnce.Do(func() {
		all := All()
		registryByID = make(map[string]Experiment, len(all))
		for _, e := range all {
			registryByID[e.ID] = e
		}
	})
	e, ok := registryByID[id]
	return e, ok
}

// IDs returns all registered IDs sorted.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// table wraps a tabwriter with convenience row helpers.  Write errors are
// latched on first occurrence and surfaced by flush, so row stays chainable.
type table struct {
	tw  *tabwriter.Writer
	err error
}

func newTable(w io.Writer) *table {
	return &table{tw: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)}
}

func (t *table) record(_ int, err error) {
	if t.err == nil {
		t.err = err
	}
}

func (t *table) row(cells ...interface{}) {
	for i, c := range cells {
		if i > 0 {
			t.record(fmt.Fprint(t.tw, "\t"))
		}
		switch v := c.(type) {
		case float64:
			t.record(fmt.Fprintf(t.tw, "%s", fnum(v)))
		default:
			t.record(fmt.Fprintf(t.tw, "%v", v))
		}
	}
	t.record(fmt.Fprintln(t.tw))
}

// flush writes the buffered table and reports the first error from any row
// or from the flush itself.
func (t *table) flush() error {
	if err := t.tw.Flush(); t.err == nil {
		t.err = err
	}
	return t.err
}

// fnum renders a float compactly.
func fnum(v float64) string {
	switch {
	case math.IsNaN(v):
		return "nan"
	case math.IsInf(v, 1):
		return "+inf"
	case math.IsInf(v, -1):
		return "-inf"
	case v == 0: //lint:allow floateq exact sentinel: render literal zero as "0"
		return "0"
	case math.Abs(v) >= 1e4 || math.Abs(v) < 1e-4:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.5g", v)
	}
}

// yesno renders a boolean as a table cell.
func yesno(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// errf builds an experiment error.
func errf(format string, args ...interface{}) error {
	return fmt.Errorf("experiment: "+format, args...)
}

// header prints the experiment banner.
func header(w io.Writer, e Experiment) error {
	_, err := fmt.Fprintf(w, "== %s (%s): %s ==\n", e.ID, e.Source, e.Title)
	return err
}

// verdictLine prints and returns the verdict.
func verdictLine(w io.Writer, match bool, note string) (Verdict, error) {
	status := "MATCH"
	if !match {
		status = "MISMATCH"
	}
	_, err := fmt.Fprintf(w, "verdict: %s — %s\n\n", status, note)
	return Verdict{Match: match, Note: note}, err
}
