package experiment

import (
	"io"
	"math"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/game"
	"greednet/internal/numeric"
	"greednet/internal/utility"
)

// E3SymmetricPareto reproduces Theorem 2: a MAC Nash equilibrium can be
// Pareto optimal only at completely symmetric rates, and every symmetric
// Pareto point is a Nash equilibrium of Fair Share.
func E3SymmetricPareto() Experiment {
	e := Experiment{
		ID:     "E3",
		Source: "Theorem 2",
		Title:  "Pareto∩Nash requires symmetric rates; symmetric Pareto points are FS Nash",
	}
	e.Run = func(w io.Writer, opt Options) (Verdict, error) {
		if err := header(w, e); err != nil {
			return Verdict{}, err
		}
		match := true
		tb := newTable(w)
		tb.row("case", "utility family", "N", "FS Nash spread", "Pareto FDC resid", "shape holds?")

		// (a) Identical users, several families: FS Nash symmetric and
		// satisfies the Pareto FDC.
		idCases := []struct {
			name string
			u    core.Utility
		}{
			{"linear γ=0.25", utility.NewLinear(1, 0.25)},
			{"log w=0.4 γ=1", utility.Log{W: 0.4, Gamma: 1}},
			{"sqrt w=1 γ=2", utility.Sqrt{W: 1, Gamma: 2}},
			{"power p=1.5", utility.Power{A: 1, Gamma: 1, P: 1.5}},
		}
		for _, tc := range idCases {
			n := 4
			us := utility.Identical(tc.u, n)
			res, err := game.SolveNash(alloc.FairShare{}, us, []float64{0.02, 0.05, 0.1, 0.2}, game.NashOptions{})
			if err != nil || !res.Converged {
				return Verdict{}, errf("FS solve failed for %s", tc.name)
			}
			spread := spreadOf(res.R)
			resid := numeric.VecNormInf(game.ParetoResidual(us, core.Point{R: res.R, C: res.C}))
			ok := spread < 1e-5 && resid < 1e-3
			if !ok {
				match = false
			}
			tb.row("identical", tc.name, n, spread, resid, yesno(ok))
		}

		// (b) Heterogeneous users: FS Nash is asymmetric, hence (Thm 2)
		// not Pareto — the FDC residual must be bounded away from zero.
		hetero := core.Profile{
			utility.NewLinear(1, 0.15),
			utility.NewLinear(1, 0.45),
			utility.Log{W: 0.3, Gamma: 1},
		}
		res, err := game.SolveNash(alloc.FairShare{}, hetero, []float64{0.1, 0.1, 0.1}, game.NashOptions{})
		if err != nil || !res.Converged {
			return Verdict{}, errf("heterogeneous FS solve failed")
		}
		spread := spreadOf(res.R)
		resid := numeric.VecNormInf(game.ParetoResidual(hetero, core.Point{R: res.R, C: res.C}))
		ok := spread > 1e-3 && resid > 1e-3
		if !ok {
			match = false
		}
		tb.row("heterogeneous", "mixed", 3, spread, resid, yesno(ok))

		// (c) The symmetric Pareto point is itself an FS Nash equilibrium:
		// plant it and verify no user can deviate profitably.
		u := utility.NewLinear(1, 0.25)
		n := 5
		rp, _, okP := game.SymmetricParetoRate(u, n)
		if !okP {
			return Verdict{}, errf("no symmetric Pareto point")
		}
		rvec := make([]float64, n)
		for i := range rvec {
			rvec[i] = rp
		}
		us := utility.Identical(u, n)
		maxGain := 0.0
		for i := 0; i < n; i++ {
			if g := game.DeviationGain(alloc.FairShare{}, us[i], rvec, i, game.BROptions{}); g > maxGain {
				maxGain = g
			}
		}
		okC := maxGain < 1e-7
		if !okC {
			match = false
		}
		tb.row("planted Pareto", "linear γ=0.25", n, 0.0, maxGain, yesno(okC))
		if err := tb.flush(); err != nil {
			return Verdict{}, err
		}
		return verdictLine(w, match,
			"FS Nash symmetric+Pareto for identical users, asymmetric+non-Pareto otherwise; symmetric Pareto points are FS-stable")
	}
	return e
}

func spreadOf(r []float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range r {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return hi - lo
}
