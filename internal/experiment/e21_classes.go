package experiment

import (
	"io"
	"math"

	"greednet/internal/alloc"
	"greednet/internal/game"
	"greednet/internal/utility"
)

// E21ClassAggregation validates the class-aggregated solver and the
// heavy-traffic (fluid) limit against the exact per-user solver as the
// population grows: K = 4 linear classes over N = 64 → 10^6 users.  At
// each N the class solve must sit on the exact equilibrium (verified
// directly where the exact solve is affordable; the solver's own K = N
// and K = 1 bit-equality tests cover the arithmetic beyond that), and
// the scaled finite-N rates N·r_j must sit on the fluid equilibrium's
// ŷ_j — the error curve exact → aggregated → fluid.  The serial
// mechanism's scaled equilibrium is N-invariant for fixed class
// fractions (the reason the fluid limit exists at all), so the measured
// fluid gap is solver resolution — the finite solver's per-member
// tolerance amplified by N — not an O(1/N) drift; the gate bounds it at
// 10^-3 relative through N = 10^6.
func E21ClassAggregation() Experiment {
	e := Experiment{
		ID:     "E21",
		Source: "§2 model, N → ∞ scaling",
		Title:  "class aggregation error curve: exact vs aggregated vs fluid limit, N = 64 → 10^6",
	}
	e.Run = func(w io.Writer, opt Options) (Verdict, error) {
		if err := header(w, e); err != nil {
			return Verdict{}, err
		}
		ctx := opt.Context()
		const k = 4
		gammas := []float64{0.2, 0.35, 0.5, 0.65}
		ns := []int{64, 256, 1024, 16384, 262144, 1048576}
		exactMaxN := 256 // exact per-user solve is O(N²·log N) per round
		if opt.Fast {
			ns = []int{64, 1024, 1048576}
			exactMaxN = 64
		}

		// classGameAt builds the K-class game at population n: equal
		// shares, total start load 0.4 spread per member.
		classGameAt := func(n int) (game.ClassGame, error) {
			classes := make([]game.Class, k)
			for j, g := range gammas {
				classes[j] = game.Class{
					U:     utility.NewLinear(1, g),
					Rate:  0.4 / float64(n),
					Count: n / k,
				}
			}
			return game.NewClassGame(classes)
		}

		// The fluid equilibrium is solved once in scaled units; class
		// shares are the same at every N, so it is the single limit all
		// finite-N solves must approach.
		cgRef, err := classGameAt(ns[0])
		if err != nil {
			return Verdict{}, err
		}
		fl, err := game.SolveNashFluid(ctx, alloc.FairShare{}, cgRef, game.ClassNashOptions{})
		if err != nil {
			return Verdict{}, err
		}
		if !fl.Converged {
			return Verdict{}, errf("fluid solve did not converge")
		}

		match := true
		var fluidErrs []float64
		tb := newTable(w)
		tb.row("N", "iters", "max|r_class − r_exact|", "max rel|N·r − ŷ| (fluid)")
		ws := game.NewClassWorkspace()
		for _, n := range ns {
			cg, err := classGameAt(n)
			if err != nil {
				return Verdict{}, err
			}
			res, err := game.SolveNashClassWS(ctx, ws, alloc.FairShare{}, cg, nil, game.ClassNashOptions{})
			if err != nil {
				return Verdict{}, err
			}
			if !res.Converged {
				return Verdict{}, errf("class solve at N=%d did not converge", n)
			}

			// Exact per-user check where affordable: the aggregated
			// equilibrium read at each class's first member.
			exactCell := interface{}("—")
			if n <= exactMaxN {
				us, r0 := cg.Expand()
				xres, err := game.SolveNashCtx(ctx, alloc.FairShare{}, us, r0, game.NashOptions{})
				if err != nil {
					return Verdict{}, err
				}
				if !xres.Converged {
					return Verdict{}, errf("exact solve at N=%d did not converge", n)
				}
				worst, pos := 0.0, 0
				for j, c := range cg.Classes {
					if d := math.Abs(res.R[j] - xres.R[pos]); d > worst {
						worst = d
					}
					pos += c.Count
				}
				exactCell = worst
				// The two solvers iterate the same map; at the same
				// tolerance they must land on the same equilibrium to
				// well under the per-member rate scale 0.4/N.
				if worst > 1e-6/float64(n)*64 {
					match = false
				}
			}

			// Fluid comparison: scaled finite-N rates against ŷ.
			fworst := 0.0
			for j := range cg.Classes {
				d := math.Abs(float64(n)*res.R[j]-fl.Y[j]) / math.Max(fl.Y[j], 1e-12)
				if d > fworst {
					fworst = d
				}
			}
			fluidErrs = append(fluidErrs, fworst)
			tb.row(n, res.Iters, exactCell, fworst)
		}
		if err := tb.flush(); err != nil {
			return Verdict{}, err
		}

		// The fluid gap must stay within solver resolution everywhere:
		// per-member tolerance 1e-9 amplified by N bounds the scaled error
		// near 1e-3 at N = 10^6, and far below that at small N.
		for _, fe := range fluidErrs {
			if fe > 1e-3 {
				match = false
			}
		}
		return verdictLine(w, match,
			"aggregated solve sits on the exact equilibrium where both run, and N·r sits on the fluid ŷ within N-amplified solver tolerance at every N up to 10^6")
	}
	return e
}
