package experiment

import (
	"io"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/mechanism"
	"greednet/internal/utility"
)

// E7Revelation reproduces Theorem 6: the direct mechanism B^FS (allocate
// at the Fair Share Nash equilibrium of the reported utilities) gives no
// user an incentive to misreport, while the same construction on the
// proportional allocation is manipulable.
func E7Revelation() Experiment {
	e := Experiment{
		ID:     "E7",
		Source: "Theorem 6, §4.2.2",
		Title:  "B^FS is a revelation mechanism; the FIFO analogue is manipulable",
	}
	e.Run = func(w io.Writer, opt Options) (Verdict, error) {
		if err := header(w, e); err != nil {
			return Verdict{}, err
		}
		truths := []utility.Linear{
			utility.NewLinear(1, 0.2),
			utility.NewLinear(1, 0.35),
			utility.NewLinear(1, 0.5),
		}
		scales := []float64{0.1, 0.25, 0.5, 0.8, 1.3, 2, 4, 10}
		if opt.Fast {
			scales = []float64{0.25, 0.5, 2, 4}
		}
		others := core.Profile{nil, utility.NewLinear(1, 0.3), utility.Log{W: 0.3, Gamma: 1}}
		match := true
		tb := newTable(w)
		tb.row("mechanism", "true γ", "truthful U", "best lie gain", "lies tried", "truthful best?")
		for _, a := range []core.Allocation{alloc.FairShare{}, alloc.Proportional{}} {
			m := mechanism.Mechanism{Alloc: a}
			anyGain := false
			for _, truth := range truths {
				var lies []core.Utility
				for _, s := range scales {
					lies = append(lies,
						utility.Linear{A: truth.A, Gamma: truth.Gamma * s},
						utility.Linear{A: truth.A * s, Gamma: truth.Gamma})
				}
				man, err := mechanism.SearchManipulation(m, truth, 0, others, lies)
				if err != nil {
					return Verdict{}, err
				}
				honest := man.BestGain <= 1e-6
				if !honest {
					anyGain = true
				}
				tb.row(a.Name(), truth.Gamma, man.TruthfulUtility, man.BestGain,
					man.Evaluated, yesno(honest))
				if _, isFS := a.(alloc.FairShare); isFS && !honest {
					match = false
				}
			}
			if _, isFS := a.(alloc.FairShare); !isFS && !anyGain {
				match = false // FIFO mechanism should be exploitable somewhere
			}
		}
		if err := tb.flush(); err != nil {
			return Verdict{}, err
		}
		return verdictLine(w, match,
			"no sampled misreport beats the truth under B^FS; lies pay under the FIFO-based mechanism")
	}
	return e
}
