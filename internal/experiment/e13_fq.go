package experiment

import (
	"io"
	"math"

	"greednet/internal/alloc"
	"greednet/internal/des"
)

// E13FairQueueing reproduces the §5.2 kinship claim: head-of-line
// processor sharing — the fluid ideal behind Fair Queueing — produces a
// congestion allocation much closer to Fair Share than to the proportional
// (FIFO) allocation, sharing its signature: light flows insulated, heavy
// flows absorbing the backlog they create.
func E13FairQueueing() Experiment {
	e := Experiment{
		ID:     "E13",
		Source: "§5.2 (Fair Queueing kinship)",
		Title:  "HOL processor sharing tracks the Fair Share allocation, not the proportional one",
	}
	e.Run = func(w io.Writer, opt Options) (Verdict, error) {
		if err := header(w, e); err != nil {
			return Verdict{}, err
		}
		rates := []float64{0.05, 0.1, 0.25, 0.45}
		horizon := 4e5
		if opt.Fast {
			horizon = 4e4
		}
		seed := opt.SeedOr(1313)
		sim, err := des.Run(des.Config{
			Rates:      rates,
			Discipline: &des.HOLProcessorSharing{},
			Horizon:    horizon,
			Seed:       seed,
		})
		if err != nil {
			return Verdict{}, err
		}
		fs := alloc.FairShare{}.Congestion(rates)
		prop := alloc.Proportional{}.Congestion(rates)

		tb := newTable(w)
		tb.row("user", "rate", "HOL-PS (DES)", "±CI", "Fair Share", "proportional/FIFO")
		for i, r := range rates {
			tb.row(i+1, r, sim.AvgQueue[i], sim.QueueCI95[i], fs[i], prop[i])
		}
		if err := tb.flush(); err != nil {
			return Verdict{}, err
		}
		// The paper (footnote 15) claims kinship of *intuition*, not of
		// formula: both FS and the FQ fluid ideal give partial insularity.
		// Shape checks:
		//   (1) light flows are pulled well below their FIFO share and
		//       toward the FS value;
		//   (2) the heaviest flow absorbs more than its FIFO share;
		//   (3) over the lighter half of the flows, HOL-PS is closer to FS
		//       than to proportional in L2.
		half := len(rates) / 2
		var dFS, dProp float64
		lightOK := true
		for i := 0; i < half; i++ {
			dFS += sq(sim.AvgQueue[i] - fs[i])
			dProp += sq(sim.AvgQueue[i] - prop[i])
			if sim.AvgQueue[i] > 0.7*prop[i] {
				lightOK = false
			}
		}
		dFS, dProp = math.Sqrt(dFS), math.Sqrt(dProp)
		heavyOK := sim.AvgQueue[len(rates)-1] > prop[len(rates)-1]
		closer := dFS < dProp
		tb2 := newTable(w)
		tb2.row("light-half ‖HOL-PS − FS‖₂", "light-half ‖HOL-PS − FIFO‖₂",
			"light flows insulated?", "heavy flow absorbs backlog?")
		tb2.row(dFS, dProp, yesno(lightOK && closer), yesno(heavyOK))
		if err := tb2.flush(); err != nil {
			return Verdict{}, err
		}
		match := closer && lightOK && heavyOK
		return verdictLine(w, match,
			"HOL-PS shows Fair-Share-style partial insularity: light flows shielded, heavy flow carries its own backlog")
	}
	return e
}

func sq(x float64) float64 { return x * x }
