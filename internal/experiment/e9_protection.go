package experiment

import (
	"io"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/game"
	"greednet/internal/randdist"
	"greednet/internal/utility"
)

// E9Protection reproduces Theorem 8: Fair Share caps every user's
// congestion at the symmetric bound r/(1 − N·r) no matter what the others
// do (including overload), and it is the only such discipline — the
// proportional and even the meek-first priority allocations are driven
// past the bound by adversarial senders.
func E9Protection() Experiment {
	e := Experiment{
		ID:     "E9",
		Source: "Theorem 8, Definition 7",
		Title:  "out-of-equilibrium protection: adversarial attacks vs the symmetric bound",
	}
	e.Run = func(w io.Writer, opt Options) (Verdict, error) {
		if err := header(w, e); err != nil {
			return Verdict{}, err
		}
		seed := opt.SeedOr(909)
		iters := 600
		if opt.Fast {
			iters = 120
		}
		match := true
		tb := newTable(w)
		tb.row("disc", "N", "victim rate", "bound r/(1−Nr)", "worst C found", "violated?")
		cases := []struct {
			n    int
			rate float64
		}{
			{3, 0.05}, {3, 0.1}, {3, 0.2}, {5, 0.05}, {5, 0.1}, {8, 0.05},
		}
		discs := []struct {
			a       core.Allocation
			maxLoad float64 // FS tolerates overload probes; FIFO needs < 1
		}{
			{alloc.FairShare{}, 2.0},
			{alloc.Proportional{}, 0.995},
			{alloc.HOLPriority{Order: alloc.SmallestFirst}, 0.995},
		}
		for _, d := range discs {
			anyViolation := false
			for _, tc := range cases {
				rng := randdist.NewRand(seed + int64(tc.n*100) + int64(tc.rate*1000))
				res := game.AttackProtection(d.a, tc.rate, tc.n, d.maxLoad, rng, iters)
				tb.row(d.a.Name(), tc.n, tc.rate, res.Bound, res.WorstCongestion, yesno(res.Violated))
				if res.Violated {
					anyViolation = true
				}
			}
			if _, isFS := d.a.(alloc.FairShare); isFS {
				if anyViolation {
					match = false
				}
			} else if !anyViolation {
				match = false
			}
		}
		if err := tb.flush(); err != nil {
			return Verdict{}, err
		}

		// Show the worst attack FIFO suffers for one scenario, plus the
		// out-of-equilibrium satisfaction comparison the paper mentions:
		// under FS, a non-optimizing victim never drops below the utility
		// it would get in a fully symmetric system.
		u := utility.NewLinear(1, 0.3)
		rate := 0.1
		n := 3
		rng := randdist.NewRand(seed)
		fsRes := game.AttackProtection(alloc.FairShare{}, rate, n, 2.0, rng, iters)
		symC := alloc.FairShare{}.Congestion([]float64{rate, rate, rate})[0]
		uWorst := u.Value(rate, fsRes.WorstCongestion)
		uSym := u.Value(rate, symC)
		tb2 := newTable(w)
		tb2.row("victim U under worst FS attack", "victim U in symmetric system", "guarantee holds?")
		ok := uWorst >= uSym-1e-9
		tb2.row(uWorst, uSym, yesno(ok))
		if err := tb2.flush(); err != nil {
			return Verdict{}, err
		}
		if !ok {
			match = false
		}
		return verdictLine(w, match,
			"FS never exceeds the protective bound under adversarial search; FIFO and meek-first priority are driven far past it")
	}
	return e
}
