package experiment

import (
	"io"
	"math"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/des"
	"greednet/internal/game"
	"greednet/internal/utility"
)

// E10FTPTelnet reproduces the §5.2 application claims: with primitive
// utility archetypes — FTP transfers that care only about throughput and
// Telnet sessions that care only about delay — Fair Share (Fair Queueing's
// analytic ideal) gives fair throughput to the greedy flows, low delay to
// the light interactive flows, and protection; FIFO gives none of these.
// The selfish equilibrium is computed analytically, then the resulting
// rate operating point is replayed in the discrete-event simulator to
// measure packet delays.
func E10FTPTelnet() Experiment {
	e := Experiment{
		ID:     "E10",
		Source: "§5.2 (Fair Queueing applications)",
		Title:  "FTP vs Telnet: throughput fairness and interactive delay under FIFO vs Fair Share",
	}
	e.Run = func(w io.Writer, opt Options) (Verdict, error) {
		if err := header(w, e); err != nil {
			return Verdict{}, err
		}
		// Two greedy FTPs (nearly congestion-insensitive) and two fixed
		// light Telnet flows that do not optimize (they just need their
		// keystrokes through).
		ftpA := utility.NewLinear(1, 0.06)
		ftpB := utility.NewLinear(1, 0.10) // slightly less aggressive
		telnetRate := 0.01
		us := core.Profile{ftpA, ftpB, utility.NewLinear(1, 0.5), utility.NewLinear(1, 0.5)}
		free := []bool{true, true, false, false}
		r0 := []float64{0.1, 0.1, telnetRate, telnetRate}

		horizon := 3e5
		if opt.Fast {
			horizon = 3e4
		}
		seed := opt.SeedOr(1010)

		type row struct {
			name                string
			ftp1, ftp2          float64
			telnetDelayAnalytic float64
			telnetDelayDES      float64
			ftpShareRatio       float64
			telnetProtected     bool
		}
		var rows []row
		for _, a := range []core.Allocation{alloc.Proportional{}, alloc.FairShare{}} {
			res, err := game.SolveNash(a, us, r0, game.NashOptions{Free: free})
			if err != nil || !res.Converged {
				return Verdict{}, errf("nash failed for %s", a.Name())
			}
			// Analytic telnet delay d = c/r at the equilibrium.
			dTelnet := res.C[2] / res.R[2]
			// Replay the operating point in the DES with the discipline
			// that realizes this allocation.
			var disc des.Discipline
			if _, isFS := a.(alloc.FairShare); isFS {
				disc = &des.FairShareSplitter{}
			} else {
				disc = &des.FIFO{}
			}
			sim, err := des.Run(des.Config{
				Rates:      res.R,
				Discipline: disc,
				Horizon:    horizon,
				Seed:       seed,
			})
			if err != nil {
				return Verdict{}, err
			}
			bound := res.R[2] / (1 - 4*res.R[2])
			rows = append(rows, row{
				name:                a.Name(),
				ftp1:                res.R[0],
				ftp2:                res.R[1],
				telnetDelayAnalytic: dTelnet,
				telnetDelayDES:      sim.AvgDelay[2],
				ftpShareRatio:       res.R[0] / res.R[1],
				telnetProtected:     res.C[2] <= bound+1e-9,
			})
		}

		tb := newTable(w)
		tb.row("disc", "FTP-1 rate", "FTP-2 rate", "FTP ratio", "telnet delay (analytic)",
			"telnet delay (DES)", "telnet protected?")
		for _, r := range rows {
			tb.row(r.name, r.ftp1, r.ftp2, r.ftpShareRatio, r.telnetDelayAnalytic,
				r.telnetDelayDES, yesno(r.telnetProtected))
		}
		if err := tb.flush(); err != nil {
			return Verdict{}, err
		}

		fifo, fs := rows[0], rows[1]
		// Paper shape: FS gives the light flows far lower delay than FIFO,
		// keeps them protected, and the DES agrees with the analytics.
		match := fs.telnetDelayAnalytic < 0.5*fifo.telnetDelayAnalytic &&
			fs.telnetProtected &&
			relClose(fs.telnetDelayDES, fs.telnetDelayAnalytic, 0.25) &&
			relClose(fifo.telnetDelayDES, fifo.telnetDelayAnalytic, 0.25)
		return verdictLine(w, match,
			"Fair Share cuts interactive delay and protects light flows; FIFO couples them to the FTP backlog")
	}
	return e
}

func relClose(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}
