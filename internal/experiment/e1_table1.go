package experiment

import (
	"fmt"
	"io"
	"math"

	"greednet/internal/alloc"
	"greednet/internal/des"
)

// E1Table1 reproduces Table 1: the preemptive-priority splitting that
// realizes the Fair Share allocation, validated by simulating the priority
// queue and comparing each user's measured average queue against C^FS.
func E1Table1() Experiment {
	e := Experiment{
		ID:     "E1",
		Source: "Table 1",
		Title:  "priority-class splitter realizes the Fair Share allocation",
	}
	e.Run = func(w io.Writer, opt Options) (Verdict, error) {
		if err := header(w, e); err != nil {
			return Verdict{}, err
		}
		rates := []float64{0.10, 0.15, 0.20, 0.25}
		horizon := 4e5
		if opt.Fast {
			horizon = 4e4
		}
		seed := opt.SeedOr(101)
		want := alloc.FairShare{}.Congestion(rates)
		res, err := des.Run(des.Config{
			Rates:      rates,
			Discipline: &des.FairShareSplitter{},
			Horizon:    horizon,
			Seed:       seed,
		})
		if err != nil {
			return Verdict{}, err
		}
		// Contrast: the same load under plain FIFO.
		prop := alloc.Proportional{}.Congestion(rates)

		tb := newTable(w)
		tb.row("user", "rate", "C^FS analytic", "DES mean", "±95% CI", "rel err", "FIFO C (contrast)")
		match := true
		for i, r := range rates {
			rel := math.Abs(res.AvgQueue[i]-want[i]) / want[i]
			if math.Abs(res.AvgQueue[i]-want[i]) > math.Max(5*res.QueueCI95[i], 0.03*want[i]+0.01) {
				match = false
			}
			tb.row(i+1, r, want[i], res.AvgQueue[i], res.QueueCI95[i], rel, prop[i])
		}
		if err := tb.flush(); err != nil {
			return Verdict{}, err
		}
		if _, err := fmt.Fprintf(w, "total queue: DES %s vs M/M/1 %s (work conservation)\n",
			fnum(res.TotalAvgQueue), fnum(sumOf(want))); err != nil {
			return Verdict{}, err
		}
		return verdictLine(w, match,
			"simulated Table-1 priority queue matches the serial Fair Share formula per user")
	}
	return e
}

func sumOf(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
