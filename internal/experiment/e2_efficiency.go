package experiment

import (
	"io"
	"math"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/game"
	"greednet/internal/numeric"
	"greednet/internal/randdist"
	"greednet/internal/utility"
)

// E2Efficiency reproduces the §4.1.1 efficiency analysis: proportional
// (FIFO) Nash equilibria violate the Pareto first-derivative condition and
// are Pareto-dominated, while Fair Share's symmetric Nash coincides with
// the symmetric Pareto point for identical users (the overgrazing gap).
func E2Efficiency() Experiment {
	e := Experiment{
		ID:     "E2",
		Source: "Theorem 1, §4.1.1",
		Title:  "FIFO Nash equilibria are never Pareto optimal; the selfish overgrazing gap",
	}
	e.Run = func(w io.Writer, opt Options) (Verdict, error) {
		if err := header(w, e); err != nil {
			return Verdict{}, err
		}
		seed := opt.SeedOr(202)
		rng := randdist.NewRand(seed)
		gamma := 0.2
		u := utility.NewLinear(1, gamma)
		tb := newTable(w)
		tb.row("N", "disc", "Nash rate", "Pareto rate", "U@Nash", "U@Pareto",
			"FDC residual", "dominated?")
		match := true
		samples := 4000
		if opt.Fast {
			samples = 500
		}
		for _, n := range []int{2, 4, 8} {
			us := utility.Identical(u, n)
			rp, cp, ok := game.SymmetricParetoRate(u, n)
			if !ok {
				return Verdict{}, errf("no symmetric Pareto rate for n=%d", n)
			}
			uPareto := u.Value(rp, cp)
			for _, a := range []core.Allocation{alloc.Proportional{}, alloc.FairShare{}} {
				r0 := make([]float64, n)
				for i := range r0 {
					r0[i] = 0.5 / float64(n)
				}
				res, err := game.SolveNash(a, us, r0, game.NashOptions{})
				if err != nil || !res.Converged {
					return Verdict{}, errf("nash solve failed for %s n=%d", a.Name(), n)
				}
				p := core.Point{R: res.R, C: res.C}
				resid := numeric.VecNormInf(game.ParetoResidual(us, p))
				uNash := u.Value(res.R[0], res.C[0])
				witness := game.FindDominating(us, p, rng, samples)
				dominated := witness != nil
				tb.row(n, a.Name(), res.R[0], rp, uNash, uPareto, resid, yesno(dominated))
				switch a.(type) {
				case alloc.Proportional:
					// Paper shape: FIFO Nash over-grazes (rate above the
					// Pareto rate), violates the FDC, is dominated.
					if res.R[0] <= rp || resid < 1e-3 || !dominated || uNash >= uPareto {
						match = false
					}
				case alloc.FairShare:
					// Paper shape: FS symmetric Nash IS the Pareto point.
					if math.Abs(res.R[0]-rp) > 1e-4 || resid > 1e-3 || dominated {
						match = false
					}
				}
			}
		}
		if err := tb.flush(); err != nil {
			return Verdict{}, err
		}
		return verdictLine(w, match,
			"FIFO Nash overshoots the symmetric Pareto rate and is dominated; FS Nash sits on it")
	}
	return e
}
