package experiment

import (
	"fmt"
	"io"
	"time"

	"greednet/internal/alloc"
	"greednet/internal/chaos"
	"greednet/internal/game"
	"greednet/internal/utility"
)

// Chaos experiments: deliberately misbehaving registry entries used to
// prove the suite's degradation paths (watchdog, panic containment,
// non-zero exits) end to end.  They are NOT part of All() — greedbench
// appends them only under -chaos, and the robustness tests use them
// directly.

// ChaosExperiments returns the fault-injection registry.
func ChaosExperiments() []Experiment {
	return []Experiment{ChaosHang(), ChaosPanic()}
}

// ChaosHang is an experiment that never finishes on its own: it solves a
// Nash system through a slowed, never-settling congestion oracle with an
// effectively unbounded iteration budget.  It is cooperative — it polls
// opt.Context() through SolveNashCtx — so a watchdog or suite
// cancellation stops it at the next best-response round; without one it
// runs for (practical) ever.  Exists to prove FAILED(deadline) fires.
func ChaosHang() Experiment {
	e := Experiment{
		ID:     "EX1",
		Source: "chaos",
		Title:  "hanging experiment (never-converging slowed solve)",
	}
	e.Run = func(w io.Writer, opt Options) (Verdict, error) {
		if err := header(w, e); err != nil {
			return Verdict{}, err
		}
		us := utility.Identical(utility.NewLinear(1, 0.25), 2)
		a := &chaos.SlowAllocation{
			Inner: &chaos.Allocation{Inner: alloc.FairShare{}, Oscillate: 0.5},
			Delay: 200 * time.Microsecond, // ≈ tens of ms per best-response round
		}
		res, err := game.SolveNashCtx(opt.Context(), a, us, []float64{0.1, 0.1},
			game.NashOptions{MaxIter: 1 << 30, Tol: 1e-300})
		if err != nil {
			return Verdict{}, err
		}
		if _, err := fmt.Fprintf(w, "unexpectedly finished after %d rounds\n\n", res.Iters); err != nil {
			return Verdict{}, err
		}
		return Verdict{Match: false, Note: "the hang experiment must not finish"}, nil
	}
	return e
}

// ChaosPanic is an experiment that dies of a genuine runtime panic (an
// out-of-range index, not a panic() call), with a deterministic panic
// message.  Exists to prove the suite's containment renders FAILED(panic)
// and keeps sibling experiments alive.
func ChaosPanic() Experiment {
	e := Experiment{
		ID:     "EX2",
		Source: "chaos",
		Title:  "panicking experiment (runtime out-of-range)",
	}
	e.Run = func(w io.Writer, opt Options) (Verdict, error) {
		if err := header(w, e); err != nil {
			return Verdict{}, err
		}
		empty := make([]int, 0)
		i := 3
		// The index expression panics while building the arguments, so the
		// write never happens; the error path exists for the analyzer's sake.
		if _, err := fmt.Fprintf(w, "this line is unreachable: %d\n", empty[i]); err != nil {
			return Verdict{}, err
		}
		return Verdict{Match: false, Note: "the panic experiment must not finish"}, nil
	}
	return e
}
