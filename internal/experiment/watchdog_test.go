package experiment

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"greednet/internal/core"
)

// TestWatchdogGoldenByteIdentity is the acceptance check for the
// watchdog: a suite containing a hanging chaos experiment, run under a
// timeout, must render a deterministic FAILED(deadline) block in the
// hanging slot while every OTHER experiment's output stays byte-identical
// to a run with no timeout at all.
func TestWatchdogGoldenByteIdentity(t *testing.T) {
	healthy := All()[:3]
	timeout := 300 * time.Millisecond
	opt := Options{Fast: true}

	// Reference: the healthy experiments with no watchdog.
	var refBufs []string
	for _, e := range healthy {
		var b bytes.Buffer
		if _, err := e.Run(&b, opt); err != nil {
			t.Fatalf("reference %s: %v", e.ID, err)
		}
		refBufs = append(refBufs, b.String())
	}

	es := append(append([]Experiment{}, healthy...), ChaosHang())
	var out bytes.Buffer
	optT := opt
	optT.Timeout = timeout
	outcomes, err := RunSuite(&out, es, optT, 2)

	var se *SuiteError
	if !errors.As(err, &se) {
		t.Fatalf("want a *SuiteError for the hung slot, got %v", err)
	}
	if len(se.Failures) != 1 || !strings.Contains(se.Failures[0], "EX1: FAILED(deadline)") {
		t.Errorf("SuiteError = %v, want exactly the EX1 deadline failure", se.Failures)
	}
	if len(outcomes) != len(es) {
		t.Fatalf("%d outcomes, want %d", len(outcomes), len(es))
	}
	for i, o := range outcomes[:len(healthy)] {
		if o.Err != nil {
			t.Errorf("healthy %s errored: %v", o.Experiment.ID, o.Err)
		}
		_ = i
	}
	if !errors.Is(outcomes[len(healthy)].Err, core.ErrDeadline) {
		t.Errorf("hung outcome error = %v, want core.ErrDeadline", outcomes[len(healthy)].Err)
	}

	// The combined output must be exactly: every healthy slot's reference
	// bytes, then the canonical FAILED(deadline) block.
	want := strings.Join(refBufs, "")
	hang := ChaosHang()
	want += fmt.Sprintf("== %s (%s): %s ==\nFAILED(deadline): exceeded the %v watchdog\n\n",
		hang.ID, hang.Source, hang.Title, timeout)
	if out.String() != want {
		t.Errorf("suite output diverged from the golden composition (%d vs %d bytes)",
			out.Len(), len(want))
	}

	// And the FAILED block itself must be byte-stable across repeat runs.
	var again bytes.Buffer
	if _, err := RunSuite(&again, []Experiment{ChaosHang()}, optT, 1); err == nil {
		t.Fatal("second hung run should also report a SuiteError")
	}
	wantBlock := fmt.Sprintf("== %s (%s): %s ==\nFAILED(deadline): exceeded the %v watchdog\n\n",
		hang.ID, hang.Source, hang.Title, timeout)
	if again.String() != wantBlock {
		t.Errorf("FAILED block not deterministic:\n%q\nwant\n%q", again.String(), wantBlock)
	}
}

// TestPanicContainment proves a panicking experiment renders a
// deterministic FAILED(panic) block and leaves its siblings intact —
// with and without a watchdog armed.
func TestPanicContainment(t *testing.T) {
	for _, timeout := range []time.Duration{0, 2 * time.Second} {
		es := []Experiment{All()[0], ChaosPanic()}
		var healthyRef bytes.Buffer
		if _, err := es[0].Run(&healthyRef, Options{Fast: true}); err != nil {
			t.Fatalf("reference: %v", err)
		}
		var out bytes.Buffer
		outcomes, err := RunSuite(&out, es, Options{Fast: true, Timeout: timeout}, 2)
		var se *SuiteError
		if !errors.As(err, &se) {
			t.Fatalf("timeout=%v: want *SuiteError, got %v", timeout, err)
		}
		var pe *PanicError
		if !errors.As(outcomes[1].Err, &pe) {
			t.Fatalf("timeout=%v: outcome error = %v, want *PanicError", timeout, outcomes[1].Err)
		}
		if !strings.Contains(pe.Value, "index out of range") {
			t.Errorf("timeout=%v: panic value %q lost the runtime message", timeout, pe.Value)
		}
		p := ChaosPanic()
		want := healthyRef.String() + fmt.Sprintf(
			"== %s (%s): %s ==\nFAILED(panic): runtime error: index out of range [3] with length 0\n\n",
			p.ID, p.Source, p.Title)
		if out.String() != want {
			t.Errorf("timeout=%v: output diverged:\n%q\nwant\n%q", timeout, out.String(), want)
		}
	}
}

// TestSuiteCancellation cancels the suite context up front: every slot
// must render FAILED(canceled) and the aggregate error must list them
// all, in registry order.
func TestSuiteCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	es := All()[:3]
	var out bytes.Buffer
	outcomes, err := RunSuite(&out, es, Options{Fast: true, Ctx: ctx}, 2)
	var se *SuiteError
	if !errors.As(err, &se) {
		t.Fatalf("want *SuiteError, got %v", err)
	}
	if len(se.Failures) != len(es) {
		t.Fatalf("%d failures, want %d", len(se.Failures), len(es))
	}
	for i, o := range outcomes {
		if !errors.Is(o.Err, core.ErrCanceled) {
			t.Errorf("slot %d: err = %v, want core.ErrCanceled", i, o.Err)
		}
		if !strings.HasPrefix(se.Failures[i], es[i].ID+":") {
			t.Errorf("failure %d = %q, want registry order (%s first)", i, se.Failures[i], es[i].ID)
		}
	}
	if got := strings.Count(out.String(), "FAILED(canceled)"); got != len(es) {
		t.Errorf("%d FAILED(canceled) blocks, want %d", got, len(es))
	}
}

// TestVerdictMismatchAggregates checks a mismatched verdict (no error)
// still surfaces in the SuiteError, so CLIs exit non-zero on silent
// disagreements with the paper.
func TestVerdictMismatchAggregates(t *testing.T) {
	mismatch := Experiment{ID: "EZ", Source: "test", Title: "always mismatches"}
	mismatch.Run = func(w io.Writer, opt Options) (Verdict, error) {
		return Verdict{Match: false, Note: "deliberate"}, nil
	}
	var out bytes.Buffer
	_, err := RunSuite(&out, []Experiment{mismatch}, Options{}, 1)
	var se *SuiteError
	if !errors.As(err, &se) {
		t.Fatalf("want *SuiteError, got %v", err)
	}
	if len(se.Failures) != 1 || se.Failures[0] != "EZ: verdict MISMATCH" {
		t.Errorf("Failures = %v", se.Failures)
	}
}
