package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Source == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
	}
	if len(seen) != 21 {
		t.Errorf("expected 21 experiments, got %d", len(seen))
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E1"); !ok {
		t.Error("E1 should exist")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("E99 should not exist")
	}
	if len(IDs()) != 21 {
		t.Error("IDs should list 21 experiments")
	}
}

// TestAllExperimentsFastMatch runs the complete suite in fast mode; every
// experiment must reproduce the paper's shape even with reduced budgets.
func TestAllExperimentsFastMatch(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			v, err := e.Run(&buf, Options{Fast: true})
			if err != nil {
				t.Fatalf("%s failed: %v\noutput:\n%s", e.ID, err, buf.String())
			}
			if !v.Match {
				t.Errorf("%s verdict mismatch: %s\noutput:\n%s", e.ID, v.Note, buf.String())
			}
			out := buf.String()
			if !strings.Contains(out, "== "+e.ID+" ") {
				t.Errorf("%s output missing banner", e.ID)
			}
			if !strings.Contains(out, "verdict:") {
				t.Errorf("%s output missing verdict line", e.ID)
			}
		})
	}
}

func TestFnumFormats(t *testing.T) {
	cases := map[float64]string{
		0: "0",
	}
	for in, want := range cases {
		if got := fnum(in); got != want {
			t.Errorf("fnum(%v) = %q, want %q", in, got, want)
		}
	}
	if got := fnum(1e-9); !strings.Contains(got, "e-") {
		t.Errorf("tiny values should use scientific notation: %q", got)
	}
	if fnum(12345678) == "12345678" {
		t.Error("huge values should be scientific")
	}
}
