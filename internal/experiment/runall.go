package experiment

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"

	"greednet/internal/core"
	"greednet/internal/parallel"
)

// Outcome pairs an experiment with its run result.
type Outcome struct {
	// Experiment is the registry entry that ran.
	Experiment Experiment
	// Verdict is the paper-vs-measured comparison (zero when Err != nil).
	Verdict Verdict
	// Err is the run's error, if any; a failed experiment does not stop
	// the rest of the suite.  Watchdog and cancellation failures carry
	// core.ErrDeadline / core.ErrCanceled; contained panics carry a
	// *PanicError.
	Err error
}

// PanicError wraps a panic contained by the suite driver so a panicking
// experiment degrades into a FAILED(panic) block instead of taking down
// the process (and every sibling experiment's output with it).
type PanicError struct {
	// Value is the recovered panic value, stringified.
	Value string
}

// Error implements error.
func (p *PanicError) Error() string { return "experiment panicked: " + p.Value }

// SuiteError aggregates a suite run's failed or mismatched experiments
// into one error, so CLI drivers can exit non-zero off a single check.
// Write errors and infrastructure failures are NOT SuiteErrors; callers
// distinguish them with errors.As.
type SuiteError struct {
	// Failures lists "ID: description" entries in registry order —
	// deterministic whatever the worker count.
	Failures []string
}

// Error implements error.
func (e *SuiteError) Error() string {
	return fmt.Sprintf("experiment: %d failed: %s", len(e.Failures), strings.Join(e.Failures, "; "))
}

// RunSuite executes the given experiments, fanning the runs across a
// worker pool.  Each experiment renders into its own buffer and the
// buffers are flushed to w in the given order, so the combined output is
// byte-identical for every worker count (workers ≤ 0 means
// runtime.GOMAXPROCS(0), 1 runs on the calling goroutine).
//
// Panics are always contained: a panicking experiment renders a
// FAILED(panic) block in its slot and the rest of the suite completes.
// With opt.Timeout > 0 each experiment additionally runs under a
// watchdog; one that exceeds it is abandoned and renders a deterministic
// FAILED(deadline) block, leaving every other slot byte-identical to an
// untimed run.  With opt.Ctx set, the suite stops claiming experiments
// once the context fires and never-started slots render FAILED(canceled).
//
// The returned outcomes are in the same order as es.  The error is the
// first failure writing to w if any; otherwise a *SuiteError aggregating
// every failed or verdict-mismatched experiment; otherwise nil.
func RunSuite(w io.Writer, es []Experiment, opt Options, workers int) ([]Outcome, error) {
	bufs := make([]bytes.Buffer, len(es))
	out := make([]Outcome, len(es))
	started := make([]bool, len(es))
	suiteCtx := opt.Context()
	// The pool's own error channel is unused: per-experiment failures are
	// rendered into their slots, and suite-level cancellation is re-read
	// from the context below.
	_ = parallel.MapOrderedCtx(suiteCtx, workers, len(es), func(i int) error {
		started[i] = true
		out[i] = runGuarded(&bufs[i], es[i], opt, suiteCtx)
		return nil
	})
	for i := range bufs {
		if !started[i] {
			// Never claimed: the suite context fired first.
			err := core.CtxErr(suiteCtx)
			if err == nil {
				err = core.ErrCanceled
			}
			renderFailed(&bufs[i], es[i], reasonOf(err), "suite canceled before this experiment started")
			out[i] = Outcome{Experiment: es[i], Err: err}
		}
		if _, err := w.Write(bufs[i].Bytes()); err != nil {
			return out, err
		}
	}
	return out, suiteErr(out)
}

// RunAll runs the full registry in presentation order; see RunSuite.
func RunAll(w io.Writer, opt Options, workers int) ([]Outcome, error) {
	return RunSuite(w, All(), opt, workers)
}

// runGuarded runs one experiment with panic containment and, when
// opt.Timeout > 0, a wall-clock watchdog.  Failure modes render a
// canonical FAILED block into buf; partial output from a failed run is
// discarded (it would vary with where the run died, breaking the
// byte-determinism contract for the surviving slots' siblings).
func runGuarded(buf *bytes.Buffer, e Experiment, opt Options, suiteCtx context.Context) Outcome {
	if opt.Timeout <= 0 {
		// No watchdog: run on the calling goroutine, containment only.
		scratch := &bytes.Buffer{}
		o := runContained(scratch, e, opt)
		adoptOrFail(buf, scratch, e, opt, o)
		return o
	}
	ctx, cancel := context.WithTimeout(suiteCtx, opt.Timeout)
	defer cancel()
	optCtx := opt
	optCtx.Ctx = ctx
	// The runner goroutine owns scratch exclusively.  If the watchdog
	// fires we abandon both: a leaked cooperative experiment stops at its
	// next ctx poll, and scratch is never read after abandonment, so
	// there is no data race and no nondeterministic partial output.
	scratch := &bytes.Buffer{}
	done := make(chan Outcome, 1)
	//lint:fanout watchdog runs one experiment so the select below can abandon it at the deadline; done is buffered so the leaked runner never blocks
	go func() {
		done <- runContained(scratch, e, optCtx)
	}()
	select {
	case o := <-done:
		adoptOrFail(buf, scratch, e, opt, o)
		return o
	case <-ctx.Done():
		// Prefer a result that raced the deadline in: its bytes are real.
		select {
		case o := <-done:
			adoptOrFail(buf, scratch, e, opt, o)
			return o
		default:
		}
		err := core.CtxErr(ctx)
		renderFailed(buf, e, reasonOf(err), failDetail(err, opt))
		return Outcome{Experiment: e, Err: err}
	}
}

// runContained invokes the experiment with panic containment.
func runContained(w io.Writer, e Experiment, opt Options) (o Outcome) {
	o.Experiment = e
	defer func() {
		if r := recover(); r != nil {
			o.Verdict = Verdict{}
			o.Err = &PanicError{Value: fmt.Sprint(r)}
		}
	}()
	o.Verdict, o.Err = e.Run(w, opt)
	return o
}

// adoptOrFail moves a completed run's bytes into its slot, unless the run
// failed in a degradation mode (cooperative timeout/cancellation, or a
// contained panic) — those discard the partial output and render the same
// canonical FAILED block the abandonment path produces, so cooperative
// and abandoned failures are byte-identical.
func adoptOrFail(buf, scratch *bytes.Buffer, e Experiment, opt Options, o Outcome) {
	var pe *PanicError
	switch {
	case o.Err != nil && errors.As(o.Err, &pe):
		renderFailed(buf, e, "panic", pe.Value)
	case o.Err != nil && (errors.Is(o.Err, core.ErrDeadline) || errors.Is(o.Err, core.ErrCanceled)):
		renderFailed(buf, e, reasonOf(o.Err), failDetail(o.Err, opt))
	default:
		// Ordinary completion — including ordinary errors, whose partial
		// tables are deterministic and worth keeping.
		buf.Write(scratch.Bytes())
	}
}

// reasonOf maps a context-flavored error to its FAILED tag.
func reasonOf(err error) string {
	if errors.Is(err, core.ErrDeadline) {
		return "deadline"
	}
	return "canceled"
}

// failDetail renders the deterministic one-line explanation for a
// context-flavored failure.  It depends only on the configuration, never
// on elapsed wall-clock, so FAILED blocks are byte-stable across runs.
func failDetail(err error, opt Options) string {
	if errors.Is(err, core.ErrDeadline) && opt.Timeout > 0 {
		return fmt.Sprintf("exceeded the %v watchdog", opt.Timeout)
	}
	return err.Error()
}

// renderFailed writes the canonical failure block: the experiment's usual
// banner, one FAILED line, and the blank separator every experiment ends
// with — so a failed slot is the same shape as a healthy one.
func renderFailed(buf *bytes.Buffer, e Experiment, reason, detail string) {
	buf.Reset()
	fmt.Fprintf(buf, "== %s (%s): %s ==\n", e.ID, e.Source, e.Title)
	fmt.Fprintf(buf, "FAILED(%s): %s\n\n", reason, detail)
}

// suiteErr aggregates outcome failures into a *SuiteError (nil when the
// whole suite matched).
func suiteErr(out []Outcome) error {
	var fails []string
	for _, o := range out {
		switch {
		case o.Err != nil:
			var pe *PanicError
			if errors.As(o.Err, &pe) {
				fails = append(fails, o.Experiment.ID+": FAILED(panic)")
			} else if errors.Is(o.Err, core.ErrDeadline) {
				fails = append(fails, o.Experiment.ID+": FAILED(deadline)")
			} else if errors.Is(o.Err, core.ErrCanceled) {
				fails = append(fails, o.Experiment.ID+": FAILED(canceled)")
			} else {
				fails = append(fails, o.Experiment.ID+": "+o.Err.Error())
			}
		case !o.Verdict.Match:
			fails = append(fails, o.Experiment.ID+": verdict MISMATCH")
		}
	}
	if len(fails) == 0 {
		return nil
	}
	return &SuiteError{Failures: fails}
}
