package experiment

import (
	"bytes"
	"io"

	"greednet/internal/parallel"
)

// Outcome pairs an experiment with its run result.
type Outcome struct {
	// Experiment is the registry entry that ran.
	Experiment Experiment
	// Verdict is the paper-vs-measured comparison (zero when Err != nil).
	Verdict Verdict
	// Err is the run's error, if any; a failed experiment does not stop
	// the rest of the suite.
	Err error
}

// RunSuite executes the given experiments, fanning the runs across a
// worker pool.  Each experiment renders into its own buffer and the
// buffers are flushed to w in the given order, so the combined output is
// byte-identical for every worker count (workers ≤ 0 means
// runtime.GOMAXPROCS(0), 1 runs on the calling goroutine).  The returned
// outcomes are in the same order as es; the error is the first failure
// writing to w, not an experiment failure — those live in the outcomes.
func RunSuite(w io.Writer, es []Experiment, opt Options, workers int) ([]Outcome, error) {
	bufs := make([]bytes.Buffer, len(es))
	out := make([]Outcome, len(es))
	parallel.MapOrdered(workers, len(es), func(i int) {
		v, err := es[i].Run(&bufs[i], opt)
		out[i] = Outcome{Experiment: es[i], Verdict: v, Err: err}
	})
	for i := range bufs {
		if _, err := w.Write(bufs[i].Bytes()); err != nil {
			return out, err
		}
	}
	return out, nil
}

// RunAll runs the full registry in presentation order; see RunSuite.
func RunAll(w io.Writer, opt Options, workers int) ([]Outcome, error) {
	return RunSuite(w, All(), opt, workers)
}
