package experiment

import (
	"io"
	"math"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/des"
	"greednet/internal/game"
	"greednet/internal/mm1"
	"greednet/internal/randdist"
	"greednet/internal/utility"
)

// E15GeneralService reproduces footnote 5: every result rests only on the
// constraint function being strictly increasing and strictly convex, so the
// serial (Fair Share) allocation generalized to M/D/1 and M/G/1 stations
// retains uniqueness, envy-freeness, and protection.  It also quantifies a
// caveat the footnote leaves implicit: the Table-1 *priority realization*
// is exact only for exponential service — for other service laws its
// allocation (computed exactly via preemptive-resume priority formulas and
// confirmed by general-service simulation) drifts from the serial ideal.
func E15GeneralService() Experiment {
	e := Experiment{
		ID:     "E15",
		Source: "footnote 5 (M/G/1 generalization)",
		Title:  "serial allocation over M/D/1 and M/G/1: properties persist; Table-1 realization drifts",
	}
	e.Run = func(w io.Writer, opt Options) (Verdict, error) {
		if err := header(w, e); err != nil {
			return Verdict{}, err
		}
		seed := opt.SeedOr(1515)
		match := true
		models := []mm1.MG1{{CV2: 0}, {CV2: 2}}

		// (a) Game-theoretic properties of the generalized serial rule.
		tb := newTable(w)
		tb.row("model", "distinct Nash (8 starts)", "max envy at Nash", "protection violations", "properties hold?")
		rng := randdist.NewRand(seed)
		for _, m := range models {
			a := alloc.SerialG{Model: m}
			us := utility.RandomProfile(rng, 3)
			starts := make([][]float64, 8)
			for k := range starts {
				s := make([]float64, 3)
				for i := range s {
					s[i] = 0.02 + 0.4*rng.Float64()
				}
				starts[k] = s
			}
			ms := game.MultiStartNash(a, us, starts, game.NashOptions{}, 1e-4)
			envy := 0.0
			if len(ms.All) > 0 {
				envy, _, _ = game.MaxEnvy(us, core.Point{R: ms.All[0].R, C: ms.All[0].C})
			}
			// Adversarial protection probe with the generalized bound.
			violations := 0
			probes := 300
			if opt.Fast {
				probes = 60
			}
			for k := 0; k < probes; k++ {
				n := 2 + rng.Intn(3)
				r := make([]float64, n)
				for i := range r {
					r[i] = 0.01 + 1.2*rng.Float64()
				}
				c := a.Congestion(r) //lint:allow feasguard probes deliberately sample outside the feasible region to stress the bound
				for i := range r {
					bound := mm1.SymmetricCongestionG(m, n, r[i]) //lint:allow feasguard symmetric bound evaluated at possibly infeasible probe rates by design
					if c[i] > bound*(1+1e-9)+1e-9 {
						violations++
					}
				}
			}
			ok := len(ms.All) == len(starts) && len(ms.Distinct) == 1 && envy <= 1e-7 && violations == 0
			if !ok {
				match = false
			}
			tb.row(m.Name(), len(ms.Distinct), envy, violations, yesno(ok))
		}
		if err := tb.flush(); err != nil {
			return Verdict{}, err
		}

		// (b) Realization drift: the Table-1 priority construction vs the
		// serial ideal, exact formulas confirmed by general-service DES.
		rates := []float64{0.1, 0.15, 0.2, 0.25}
		horizon := 3e5
		if opt.Fast {
			horizon = 4e4
		}
		tb2 := newTable(w)
		tb2.row("cv²", "serial ideal c₄", "Table-1 exact c₄", "drift", "DES c₄", "DES≈exact?")
		for _, cv2 := range []float64{0, 1, 2} {
			ideal := alloc.SerialG{Model: mm1.MG1{CV2: cv2}}.Congestion(rates)
			exact := alloc.TablePriorityG{Model: mm1.MG1{CV2: cv2}}.Congestion(rates)
			sim, err := des.RunG(des.GConfig{
				Rates:    rates,
				Service:  randdist.FromCV2(cv2),
				Classify: &des.SerialClass{},
				Horizon:  horizon,
				Seed:     seed,
			})
			if err != nil {
				return Verdict{}, err
			}
			last := len(rates) - 1
			drift := math.Abs(exact[last]-ideal[last]) / ideal[last]
			desOK := math.Abs(sim.AvgQueue[last]-exact[last]) <=
				math.Max(5*sim.QueueCI95[last], 0.06*exact[last])
			tb2.row(cv2, ideal[last], exact[last], drift, sim.AvgQueue[last], yesno(desOK))
			if !desOK {
				match = false
			}
			if cv2 == 1 && drift > 1e-9 { //lint:allow floateq exact sentinel: cv²=1 selects exponential service
				match = false // exponential service must realize the ideal exactly
			}
			if cv2 != 1 && drift == 0 { //lint:allow floateq exact sentinels: cv²=1 is exponential, exactly-zero drift impossible otherwise
				match = false // non-exponential service must drift
			}
		}
		if err := tb2.flush(); err != nil {
			return Verdict{}, err
		}
		return verdictLine(w, match,
			"the serial rule keeps uniqueness/envy-freeness/protection for M/D/1 and M/G/1; the Table-1 realization is exact only at cv²=1")
	}
	return e
}
