package experiment

import (
	"io"
	"math"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/game"
	"greednet/internal/numeric"
	"greednet/internal/utility"
)

// E8Relaxation reproduces Theorem 7 and the paper's explicit §4.2.3 numeric
// claim: the Fair Share relaxation matrix is nilpotent (synchronous Newton
// self-optimization converges in at most N steps in the linear regime),
// while the proportional allocation's leading eigenvalue approaches 1 − N
// for identical linear utilities and exceeds 1 in magnitude for N > 2.
func E8Relaxation() Experiment {
	e := Experiment{
		ID:     "E8",
		Source: "Theorem 7, §4.2.3",
		Title:  "relaxation spectra: FS nilpotent; FIFO leading eigenvalue → 1−N",
	}
	e.Run = func(w io.Writer, opt Options) (Verdict, error) {
		if err := header(w, e); err != nil {
			return Verdict{}, err
		}
		match := true

		// (a) Proportional eigenvalue sweep: smaller γ ⇒ heavier load ⇒
		// ρ(A) → N−1, the magnitude of the paper's 1−N claim.
		gammas := []float64{0.5, 0.1, 0.02, 0.004}
		if opt.Fast {
			gammas = []float64{0.1, 0.02}
		}
		tb := newTable(w)
		tb.row("N", "γ", "load Σr", "ρ(A) measured", "ρ(A) analytic", "N−1 limit", "unstable?")
		for _, n := range []int{3, 5, 8} {
			for _, gamma := range gammas {
				us := utility.Identical(utility.NewLinear(1, gamma), n)
				r0 := make([]float64, n)
				for i := range r0 {
					r0[i] = 0.5 / float64(n)
				}
				res, err := game.SolveNash(alloc.Proportional{}, us, r0, game.NashOptions{})
				if err != nil || !res.Converged {
					return Verdict{}, errf("proportional Nash failed n=%d γ=%v", n, gamma)
				}
				A := game.RelaxationMatrix(alloc.Proportional{}, us, res.R, 1e-6)
				rho, err := numeric.SpectralRadius(A)
				if err != nil {
					return Verdict{}, err
				}
				s := sumOf(res.R)
				r := res.R[0]
				t := 1 - s
				analytic := float64(n-1) * (t + 2*r) / (2 * (t + r))
				tb.row(n, gamma, s, rho, analytic, n-1, yesno(rho > 1))
				if math.Abs(rho-analytic) > 0.05*analytic {
					match = false
				}
				if n > 2 && rho <= 1 {
					match = false
				}
			}
			// The deepest-γ row should be close to the 1−N limit.
		}
		if err := tb.flush(); err != nil {
			return Verdict{}, err
		}

		// (b) Fair Share nilpotency and ≤N-step Newton convergence, with
		// distinct rates (FS is C² away from ties).
		tb2 := newTable(w)
		tb2.row("N", "‖A^N‖∞ (FS)", "nilpotent?", "Newton residuals (start→)", "steps to <1e-4·start")
		for _, n := range []int{2, 3, 4, 5} {
			us := make(core.Profile, n)
			for i := range us {
				us[i] = utility.NewLinear(1, 0.15+0.1*float64(i))
			}
			r0 := make([]float64, n)
			for i := range r0 {
				r0[i] = 0.3 / float64(n)
			}
			res, err := game.SolveNash(alloc.FairShare{}, us, r0, game.NashOptions{})
			if err != nil || !res.Converged {
				return Verdict{}, errf("FS Nash failed n=%d", n)
			}
			A := game.RelaxationMatrix(alloc.FairShare{}, us, res.R, 1e-6)
			powNorm := matrixPowerNorm(A, n)
			nil2 := numeric.IsNilpotent(A, 1e-3)
			start := append([]float64(nil), res.R...)
			for i := range start {
				start[i] *= 1.02
			}
			hist := game.NewtonConvergence(alloc.FairShare{}, us, start, n+2)
			// The exact ≤N-step collapse holds in the linear regime; the
			// 2% displacement leaves small quadratic corrections, so gate
			// on a 10⁻⁴ relative collapse within N+1 steps.
			steps := stepsToCollapse(hist, 1e-4)
			tb2.row(n, powNorm, yesno(nil2), fmtVec(hist), steps)
			if !nil2 || steps < 0 || steps > n+1 {
				match = false
			}
		}
		if err := tb2.flush(); err != nil {
			return Verdict{}, err
		}
		return verdictLine(w, match,
			"FIFO spectra track (N−1)(t+2r)/(2t+2r) → N−1; FS matrices are nilpotent and Newton collapses within ≈N steps")
	}
	return e
}

func matrixPowerNorm(a *numeric.Matrix, n int) float64 {
	p := a.Clone()
	for k := 1; k < n; k++ {
		p = p.Mul(a)
	}
	return p.MaxAbs()
}

// stepsToCollapse returns the first index where the residual history falls
// below frac·hist[0], or −1.
func stepsToCollapse(hist []float64, frac float64) int {
	if len(hist) == 0 || hist[0] == 0 { //lint:allow floateq division guard: collapse fraction undefined from exactly-zero start
		return 0
	}
	for i, v := range hist {
		if v <= frac*hist[0] {
			return i
		}
	}
	return -1
}
