package experiment

import (
	"fmt"
	"io"
	"math"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/dynamics"
	"greednet/internal/game"
	"greednet/internal/utility"
)

// E6Learning reproduces Theorem 5: generalized hill climbing (sound
// candidate-elimination learners) collapses onto the Fair Share Nash
// equilibrium but stalls wide under FIFO; and Stackelberg leadership pays
// nothing under Fair Share while it pays under FIFO.
func E6Learning() Experiment {
	e := Experiment{
		ID:     "E6",
		Source: "Theorem 5, §4.2.2",
		Title:  "robust convergence of generalized hill climbing; Stackelberg = Nash under FS",
	}
	e.Run = func(w io.Writer, opt Options) (Verdict, error) {
		if err := header(w, e); err != nil {
			return Verdict{}, err
		}
		match := true

		// (a) Interval-elimination learning from total ignorance.
		n := 3
		gamma := 0.25
		us := utility.Identical(utility.NewLinear(1, gamma), n)
		eo := dynamics.EliminationOptions{Tol: 1e-3}
		if opt.Fast {
			eo.Grid = 32
			eo.MaxRounds = 40
		}
		tb := newTable(w)
		tb.row("disc", "rounds", "final box width", "Nash inside?", "collapsed?")
		nashRate := (1 - math.Sqrt(gamma)) / float64(n)
		nashVec := []float64{nashRate, nashRate, nashRate}
		for _, a := range []core.Allocation{alloc.FairShare{}, alloc.Proportional{}} {
			res := dynamics.GeneralizedHillClimb(a, us, dynamics.NewBox(n, 1e-6, 1-1e-6), eo)
			inside := res.Final.Contains(nashVec, 1e-6)
			collapsed := res.Final.Width() <= 1e-2
			tb.row(a.Name(), res.Rounds, res.Final.Width(), yesno(inside), yesno(collapsed))
			if _, isFS := a.(alloc.FairShare); isFS {
				if !inside || !collapsed {
					match = false
				}
			} else if collapsed {
				match = false // FIFO must stall wide
			}
		}
		if err := tb.flush(); err != nil {
			return Verdict{}, err
		}

		// (b) Stackelberg leader advantage.
		prof := core.Profile{utility.NewLinear(1, 0.2), utility.NewLinear(1, 0.3)}
		so := game.StackOptions{}
		if opt.Fast {
			so.Grid = 24
		}
		tb2 := newTable(w)
		tb2.row("disc", "leader Nash U", "leader Stackelberg U", "advantage", "lead rate vs Nash rate")
		for _, a := range []core.Allocation{alloc.FairShare{}, alloc.Proportional{}} {
			adv, st, nash, err := game.LeaderAdvantage(a, prof, 0, []float64{0.1, 0.1}, so)
			if err != nil {
				return Verdict{}, err
			}
			nu := prof[0].Value(nash.R[0], nash.C[0])
			tb2.row(a.Name(), nu, st.LeaderUtility, adv,
				fmt.Sprintf("%s vs %s", fnum(st.R[0]), fnum(nash.R[0])))
			if _, isFS := a.(alloc.FairShare); isFS {
				if math.Abs(adv) > 1e-4 {
					match = false
				}
			} else if adv <= 1e-5 {
				match = false
			}
		}
		if err := tb2.flush(); err != nil {
			return Verdict{}, err
		}

		// (c) Timescale exploitation (§4.2.2 first paragraph): a naive
		// hill climber with a longer time constant becomes a de-facto
		// leader while fast followers equilibrate between its moves.
		// 80 slow epochs let the leader walk from 0.1 to the ≈0.6
		// Stackelberg rate at Step per epoch; fewer would cut the walk
		// short, so the budget is not reduced in fast mode (it is cheap).
		lfo := dynamics.LeaderFollowerOptions{Epochs: 80, Step: 0.008, Probe: 0.008}
		tb3 := newTable(w)
		tb3.row("disc", "slow-leader final U", "leader Nash U", "timescale gain")
		for _, a := range []core.Allocation{alloc.FairShare{}, alloc.Proportional{}} {
			nash, err := game.SolveNash(a, prof, []float64{0.1, 0.1}, game.NashOptions{})
			if err != nil || !nash.Converged {
				return Verdict{}, errf("nash failed for %s", a.Name())
			}
			nashU := prof[0].Value(nash.R[0], nash.C[0])
			lf := dynamics.LeaderFollower(a, prof, 0, []float64{0.1, 0.1}, lfo)
			gain := lf.LeaderUtility - nashU
			tb3.row(a.Name(), lf.LeaderUtility, nashU, gain)
			if _, isFS := a.(alloc.FairShare); isFS {
				if gain > 1e-3 {
					match = false
				}
			} else if gain <= 1e-4 {
				match = false
			}
		}
		if err := tb3.flush(); err != nil {
			return Verdict{}, err
		}
		return verdictLine(w, match,
			"learners collapse to FS Nash from total ignorance and leading pays nothing; FIFO stalls, rewards leaders, and lets slow hill climbers exploit fast ones")
	}
	return e
}
