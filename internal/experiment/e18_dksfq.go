package experiment

import (
	"io"
	"math"

	"greednet/internal/des"
	"greednet/internal/randdist"
)

// E18DKSFairQueueing runs the actual Fair Queueing algorithm of Demers,
// Keshav & Shenker (virtual-time finish tags, reference [3]) in the
// non-preemptive packet simulator and checks the three §5.2 claims against
// plain FIFO on the same load: fair treatment of equal flows, lower delay
// for flows using less than their share, and protection from ill-behaved
// sources.
func E18DKSFairQueueing() Experiment {
	e := Experiment{
		ID:     "E18",
		Source: "§5.2, reference [3] (Fair Queueing algorithm)",
		Title:  "DKS Fair Queueing in packet simulation: fairness, light-flow delay, protection",
	}
	e.Run = func(w io.Writer, opt Options) (Verdict, error) {
		if err := header(w, e); err != nil {
			return Verdict{}, err
		}
		horizon := 4e5
		if opt.Fast {
			horizon = 5e4
		}
		seed := opt.SeedOr(1818)
		match := true

		run := func(rates []float64, sched des.Scheduler, sd int64) (des.Result, error) {
			return des.RunSched(des.SchedConfig{
				Rates:   rates,
				Service: randdist.Exponential{},
				Sched:   sched,
				Horizon: horizon,
				Seed:    sd,
			})
		}

		// (a) Mixed load: one light interactive flow, one medium, one heavy.
		rates := []float64{0.05, 0.2, 0.6}
		fq, err := run(rates, &des.FQSched{}, seed)
		if err != nil {
			return Verdict{}, err
		}
		ff, err := run(rates, &des.FCFSSched{}, seed)
		if err != nil {
			return Verdict{}, err
		}
		tb := newTable(w)
		tb.row("flow", "rate", "FQ delay", "FIFO delay", "FQ queue", "FIFO queue")
		for i, r := range rates {
			tb.row(i+1, r, fq.AvgDelay[i], ff.AvgDelay[i], fq.AvgQueue[i], ff.AvgQueue[i])
		}
		if err := tb.flush(); err != nil {
			return Verdict{}, err
		}
		lightBetter := fq.AvgDelay[0] < 0.7*ff.AvgDelay[0] &&
			fq.AvgDelay[1] < 0.85*ff.AvgDelay[1]
		heavyPays := fq.AvgQueue[2] > ff.AvgQueue[2]
		if !lightBetter || !heavyPays {
			match = false
		}

		// (b) Protection: the light flow's delay as an attacker ramps up.
		tb2 := newTable(w)
		tb2.row("attacker rate", "light-flow FQ delay", "light-flow FIFO delay")
		var fqDelays []float64
		for _, atk := range []float64{0.3, 0.6, 0.9} {
			r := []float64{0.05, atk}
			a, err := run(r, &des.FQSched{}, seed+1)
			if err != nil {
				return Verdict{}, err
			}
			b, err := run(r, &des.FCFSSched{}, seed+1)
			if err != nil {
				return Verdict{}, err
			}
			fqDelays = append(fqDelays, a.AvgDelay[0])
			tb2.row(atk, a.AvgDelay[0], b.AvgDelay[0])
		}
		if err := tb2.flush(); err != nil {
			return Verdict{}, err
		}
		// FQ keeps the victim's delay nearly flat across a 3× load ramp.
		if fqDelays[2] > 3.5*fqDelays[0] {
			match = false
		}

		// (c) Equal flows get equal service.
		eq, err := run([]float64{0.25, 0.25, 0.25}, &des.FQSched{}, seed+2)
		if err != nil {
			return Verdict{}, err
		}
		spread := 0.0
		for i := 1; i < 3; i++ {
			if d := math.Abs(eq.AvgQueue[i] - eq.AvgQueue[0]); d > spread {
				spread = d
			}
		}
		tb3 := newTable(w)
		tb3.row("equal-flow queue spread", "mean queue", "relative")
		tb3.row(spread, eq.AvgQueue[0], spread/eq.AvgQueue[0])
		if err := tb3.flush(); err != nil {
			return Verdict{}, err
		}
		if spread > 0.2*eq.AvgQueue[0] {
			match = false
		}
		return verdictLine(w, match,
			"DKS Fair Queueing delivers §5.2's trio: equal shares, low light-flow delay, protection from flooding")
	}
	return e
}
