package experiment

import (
	"io"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/game"
	"greednet/internal/network"
	"greednet/internal/utility"
)

// E12Network reproduces the §5.4 discussion: with the Poisson
// approximation, the single-switch machinery generalizes to networks of
// switches — selfish best response still converges on a line of Fair Share
// switches and the per-switch protection bounds still hold for a long
// route, while a line of FIFO switches multiplies the damage greedy cross
// traffic does to the long flow.
func E12Network() Experiment {
	e := Experiment{
		ID:     "E12",
		Source: "§5.4 (network of switches)",
		Title:  "line topology: convergence and protection generalize to FS networks",
	}
	e.Run = func(w io.Writer, opt Options) (Verdict, error) {
		if err := header(w, e); err != nil {
			return Verdict{}, err
		}
		k := 3
		match := true

		// Users: 0 = long flow over all k switches; 1..k = cross flows.
		us := core.Profile{
			utility.NewLinear(1, 0.3),
			utility.NewLinear(1, 0.25),
			utility.NewLinear(1, 0.25),
			utility.NewLinear(1, 0.25),
		}
		tb := newTable(w)
		tb.row("disc", "converged?", "long-flow rate", "cross rates", "max deviation gain")
		results := map[string]game.NashResult{}
		for _, d := range []core.Allocation{alloc.FairShare{}, alloc.Proportional{}} {
			nw, err := network.Line(k, d)
			if err != nil {
				return Verdict{}, err
			}
			res, err := game.SolveNash(nw, us, []float64{0.1, 0.1, 0.1, 0.1}, game.NashOptions{})
			if err != nil {
				return Verdict{}, err
			}
			results[d.Name()] = res
			tb.row(nw.Name(), yesno(res.Converged), res.R[0], fmtVec(res.R[1:]), res.MaxGain)
			if _, isFS := d.(alloc.FairShare); isFS && (!res.Converged || res.MaxGain > 1e-5) {
				match = false
			}
		}
		if err := tb.flush(); err != nil {
			return Verdict{}, err
		}
		// Paper shape: the long user pays congestion at every hop, so it
		// settles at a lower rate than a cross user.
		if fs := results["network(fair-share)"]; fs.Converged && fs.R[0] >= fs.R[1] {
			match = false
		}

		// Protection of a naive long flow against flooding cross traffic.
		attack := []float64{0.1, 0.9, 0.95, 0.99}
		tb2 := newTable(w)
		tb2.row("disc", "long-flow congestion under flood", "summed bound", "protected?")
		for _, d := range []core.Allocation{alloc.FairShare{}, alloc.Proportional{}} {
			nw, _ := network.Line(k, d)
			c := nw.CongestionOf(attack, 0)           //lint:allow feasguard the flood attack is deliberately infeasible; protection under overload is the claim under test
			bound := nw.ProtectionBound(0, attack[0]) //lint:allow feasguard bound evaluated for the attack scenario; +Inf would be the honest value if the victim rate were infeasible
			prot := c <= bound+1e-9
			tb2.row(nw.Name(), c, bound, yesno(prot))
			if _, isFS := d.(alloc.FairShare); isFS {
				if !prot {
					match = false
				}
			} else if prot {
				match = false
			}
		}
		if err := tb2.flush(); err != nil {
			return Verdict{}, err
		}
		return verdictLine(w, match,
			"FS line networks converge and keep per-hop protection for the long flow; FIFO lines let cross floods destroy it")
	}
	return e
}
