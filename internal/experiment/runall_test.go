package experiment

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestRunAllByteIdenticalAcrossWorkers is the golden determinism check
// for the parallel suite driver: the full -fast suite must render the
// same bytes at workers=1 and workers=8, and both must match a plain
// sequential loop over the registry (the pre-pool reference behavior).
func TestRunAllByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full fast suite three times")
	}
	opt := Options{Fast: true}

	var ref bytes.Buffer
	for _, e := range All() {
		if _, err := e.Run(&ref, opt); err != nil {
			t.Fatalf("sequential reference: %s: %v", e.ID, err)
		}
	}

	for _, workers := range []int{1, 8} {
		var buf bytes.Buffer
		outcomes, err := RunAll(&buf, opt, workers)
		if err != nil {
			t.Fatalf("RunAll(workers=%d): %v", workers, err)
		}
		if len(outcomes) != len(All()) {
			t.Fatalf("RunAll(workers=%d): %d outcomes, want %d", workers, len(outcomes), len(All()))
		}
		for i, o := range outcomes {
			if o.Err != nil {
				t.Errorf("workers=%d: %s errored: %v", workers, o.Experiment.ID, o.Err)
			}
			if o.Experiment.ID != All()[i].ID {
				t.Errorf("workers=%d: outcome %d is %s, want registry order", workers, i, o.Experiment.ID)
			}
		}
		if !bytes.Equal(buf.Bytes(), ref.Bytes()) {
			t.Errorf("RunAll(workers=%d) output differs from the sequential reference (%d vs %d bytes)",
				workers, buf.Len(), ref.Len())
		}
	}
}

// failWriter fails after n bytes, exercising RunSuite's write-error path.
type failWriter struct{ left int }

var errWriterFull = errors.New("writer full")

func (f *failWriter) Write(p []byte) (int, error) {
	if len(p) > f.left {
		n := f.left
		f.left = 0
		return n, errWriterFull
	}
	f.left -= len(p)
	return len(p), nil
}

func TestRunSuiteReportsWriteError(t *testing.T) {
	es := All()[:2]
	outcomes, err := RunSuite(&failWriter{left: 10}, es, Options{Fast: true}, 2)
	if !errors.Is(err, errWriterFull) {
		t.Fatalf("want the writer's error, got %v", err)
	}
	if len(outcomes) != 2 {
		t.Fatalf("outcomes should still cover all runs, got %d", len(outcomes))
	}
}

func TestRunSuiteEmpty(t *testing.T) {
	outcomes, err := RunSuite(io.Discard, nil, Options{}, 4)
	if err != nil || len(outcomes) != 0 {
		t.Fatalf("empty selection: got %v, %v", outcomes, err)
	}
}

// TestSeedOr pins the seed-resolution contract: zero means the default
// unless SeedSet marks it intentional, so -seed 0 is a pinnable seed.
func TestSeedOr(t *testing.T) {
	cases := []struct {
		opt  Options
		def  int64
		want int64
	}{
		{Options{}, 101, 101},
		{Options{Seed: 7}, 101, 7},
		{Options{Seed: 0, SeedSet: true}, 101, 0},
		{Options{Seed: 7, SeedSet: true}, 101, 7},
	}
	for _, c := range cases {
		if got := c.opt.SeedOr(c.def); got != c.want {
			t.Errorf("SeedOr(%+v, %d) = %d, want %d", c.opt, c.def, got, c.want)
		}
	}
}

// TestExplicitSeedZeroChangesOutput checks pinned seed 0 actually reaches
// an experiment: E1's output must differ between the default seed and an
// explicit seed 0 (they drive different rng streams).
func TestExplicitSeedZeroChangesOutput(t *testing.T) {
	e, ok := ByID("E1")
	if !ok {
		t.Fatal("E1 missing")
	}
	var def, pinned bytes.Buffer
	if _, err := e.Run(&def, Options{Fast: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(&pinned, Options{Fast: true, SeedSet: true}); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(def.Bytes(), pinned.Bytes()) {
		t.Error("explicit seed 0 produced the default-seed output; seed 0 is not pinnable")
	}
}
