package experiment

import (
	"io"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/des"
	"greednet/internal/game"
	"greednet/internal/numeric"
	"greednet/internal/selfish"
	"greednet/internal/utility"
)

// E14ClosedLoop validates the paper's premise 2 end to end: blind
// stochastic hill climbers that observe only their own simulated service
// (no model, no analytic allocation, no knowledge of others) settle on the
// Nash equilibrium of the discipline-induced allocation function — the
// efficient Fair Share point under FS, the overgrazed point under FIFO.
func E14ClosedLoop() Experiment {
	e := Experiment{
		ID:     "E14",
		Source: "§2.1 premise 2, §2.2 (hill-climbing users)",
		Title:  "closed loop: blind hill climbers over the simulator land on the analytic Nash point",
	}
	e.Run = func(w io.Writer, opt Options) (Verdict, error) {
		if err := header(w, e); err != nil {
			return Verdict{}, err
		}
		seed := opt.SeedOr(1414)
		n := 3
		gamma := 0.25
		us := utility.Identical(utility.NewLinear(1, gamma), n)
		start := []float64{0.05, 0.3, 0.15}
		so := selfish.Options{Seed: seed}
		if opt.Fast {
			so.Rounds = 25
			so.Epoch = 2000
		}

		cases := []struct {
			name    string
			factory selfish.DisciplineFactory
			analyt  core.Allocation
		}{
			{"fair-share", func() des.Discipline { return &des.FairShareSplitter{} }, alloc.FairShare{}},
			{"fifo", func() des.Discipline { return &des.FIFO{} }, alloc.Proportional{}},
		}
		tb := newTable(w)
		tb.row("switch", "settled rates (tail avg)", "analytic Nash", "‖settled − Nash‖∞", "epochs", "on target?")
		match := true
		tol := 0.035
		if opt.Fast {
			tol = 0.06
		}
		for _, tc := range cases {
			nash, err := game.SolveNash(tc.analyt, us, start, game.NashOptions{})
			if err != nil || !nash.Converged {
				return Verdict{}, errf("analytic Nash failed for %s", tc.name)
			}
			res := selfish.Run(tc.factory, us, start, so)
			settled := res.TailAverage(10)
			dist := numeric.VecDist(settled, nash.R)
			ok := dist <= tol
			if !ok {
				match = false
			}
			tb.row(tc.name, fmtVec(settled), fmtVec(nash.R), dist, res.Epochs, yesno(ok))
		}
		if err := tb.flush(); err != nil {
			return Verdict{}, err
		}
		return verdictLine(w, match,
			"selfish measurement-driven optimizers reproduce the predicted equilibria of both disciplines")
	}
	return e
}
