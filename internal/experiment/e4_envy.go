package experiment

import (
	"io"
	"math"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/game"
	"greednet/internal/randdist"
	"greednet/internal/utility"
)

// E4Envy reproduces Theorem 3: Fair Share is unilaterally envy-free (so
// its equilibria are fair), while proportional equilibria leave optimizing
// users envying larger senders.
func E4Envy() Experiment {
	e := Experiment{
		ID:     "E4",
		Source: "Theorem 3, §4.1.2",
		Title:  "Fair Share equilibria are envy-free; FIFO equilibria are not",
	}
	e.Run = func(w io.Writer, opt Options) (Verdict, error) {
		if err := header(w, e); err != nil {
			return Verdict{}, err
		}
		seed := opt.SeedOr(404)
		rng := randdist.NewRand(seed)
		match := true

		// (a) Envy at equilibrium for heterogeneous linear users.
		us := core.Profile{
			utility.NewLinear(1, 0.2),
			utility.NewLinear(1, 0.25),
			utility.NewLinear(1, 0.3),
		}
		tb := newTable(w)
		tb.row("disc", "Nash rates", "max envy", "envier→envied", "envy-free?")
		for _, a := range []core.Allocation{alloc.Proportional{}, alloc.FairShare{}} {
			res, err := game.SolveNash(a, us, []float64{0.1, 0.1, 0.1}, game.NashOptions{})
			if err != nil || !res.Converged {
				return Verdict{}, errf("nash solve failed for %s", a.Name())
			}
			amount, i, j := game.MaxEnvy(us, core.Point{R: res.R, C: res.C})
			free := amount <= 1e-7
			pair := "-"
			if !free {
				pair = fmtPair(i, j)
			}
			tb.row(a.Name(), fmtVec(res.R), amount, pair, yesno(free))
			switch a.(type) {
			case alloc.Proportional:
				if free {
					match = false
				}
			case alloc.FairShare:
				if !free {
					match = false
				}
			}
		}
		if err := tb.flush(); err != nil {
			return Verdict{}, err
		}

		// (b) Unilateral envy scan over random opponent configurations.
		trials := 200
		if opt.Fast {
			trials = 40
		}
		worstFS, worstProp := math.Inf(-1), math.Inf(-1)
		propPositive := 0
		for k := 0; k < trials; k++ {
			n := 2 + rng.Intn(3)
			prof := utility.RandomProfile(rng, n)
			r := make([]float64, n)
			for i := range r {
				r[i] = 0.02 + 0.6*rng.Float64()
			}
			i := rng.Intn(n)
			if v := game.UnilateralEnvy(alloc.FairShare{}, prof, r, i, game.BROptions{}); v > worstFS {
				worstFS = v
			}
			// Keep the proportional probe inside the stable region so the
			// optimizer's payoff is finite.
			scale := 0.9 / sumOf(r)
			if scale < 1 {
				for j := range r {
					r[j] *= scale
				}
			}
			if v := game.UnilateralEnvy(alloc.Proportional{}, prof, r, i, game.BROptions{}); v > 1e-7 {
				propPositive++
				if v > worstProp {
					worstProp = v
				}
			}
		}
		tbl2 := newTable(w)
		tbl2.row("scan", "trials", "worst FS unilateral envy", "FIFO trials with envy", "worst FIFO envy")
		tbl2.row("random opponents", trials, worstFS, propPositive, worstProp)
		if err := tbl2.flush(); err != nil {
			return Verdict{}, err
		}
		if worstFS > 1e-6 || propPositive == 0 {
			match = false
		}
		return verdictLine(w, match,
			"optimizing users never envy under FS; under FIFO smaller senders envy larger ones")
	}
	return e
}

func fmtVec(r []float64) string {
	s := "["
	for i, v := range r {
		if i > 0 {
			s += " "
		}
		s += fnum(v)
	}
	return s + "]"
}

func fmtPair(i, j int) string {
	return fnum(float64(i)) + "→" + fnum(float64(j))
}
