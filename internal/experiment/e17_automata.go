package experiment

import (
	"io"
	"math"

	"greednet/internal/alloc"
	"greednet/internal/learnauto"
	"greednet/internal/utility"
)

// E17Automata reproduces the reference-[8] learning model the paper leans
// on for Theorem 5: linear reward–inaction automata that know nothing of
// the game concentrate their play on the Fair Share Nash equilibrium
// (within the action-grid resolution).
func E17Automata() Experiment {
	e := Experiment{
		ID:     "E17",
		Source: "ref [8] (learning by distributed automata), §4.2.2",
		Title:  "reward–inaction automata concentrate on the Fair Share Nash equilibrium",
	}
	e.Run = func(w io.Writer, opt Options) (Verdict, error) {
		if err := header(w, e); err != nil {
			return Verdict{}, err
		}
		seed := opt.SeedOr(1717)
		n := 3
		gamma := 0.25
		us := utility.Identical(utility.NewLinear(1, gamma), n)
		want := (1 - math.Sqrt(gamma)) / float64(n)
		lo := learnauto.Options{Seed: seed, Rounds: 12000}
		if opt.Fast {
			lo.Rounds = 5000
		}
		match := true
		tb := newTable(w)
		tb.row("switch", "automaton", "modal rate", "modal mass", "target Nash", "on grid target?")
		for _, a := range []struct {
			name  string
			alloc interface {
				CongestionOf(r []float64, i int) float64
			}
			target float64
		}{
			{"fair-share", alloc.FairShare{}, want},
		} {
			payoff := func(r []float64, i int) float64 {
				return us[i].Value(r[i], a.alloc.CongestionOf(r, i))
			}
			res := learnauto.Run(payoff, n, lo)
			gridStep := res.Grid[1] - res.Grid[0]
			for i := range res.Modal {
				ok := math.Abs(res.Modal[i]-a.target) <= 1.5*gridStep && res.ModalMass[i] > 0.4
				if !ok {
					match = false
				}
				tb.row(a.name, i, res.Modal[i], res.ModalMass[i], a.target, yesno(ok))
			}
		}
		if err := tb.flush(); err != nil {
			return Verdict{}, err
		}
		return verdictLine(w, match,
			"blind L_R-I automata concentrate within one grid cell of the FS Nash rate")
	}
	return e
}
