package experiment

import (
	"io"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/game"
	"greednet/internal/numeric"
	"greednet/internal/randdist"
	"greednet/internal/utility"
)

// E5Uniqueness reproduces Theorem 4: Fair Share always has exactly one Nash
// equilibrium; multi-start best response always lands on the same point,
// across utility families and system sizes.
func E5Uniqueness() Experiment {
	e := Experiment{
		ID:     "E5",
		Source: "Theorem 4",
		Title:  "Fair Share has a unique Nash equilibrium (multi-start search)",
	}
	e.Run = func(w io.Writer, opt Options) (Verdict, error) {
		if err := header(w, e); err != nil {
			return Verdict{}, err
		}
		seed := opt.SeedOr(505)
		rng := randdist.NewRand(seed)
		starts := 24
		profiles := 8
		if opt.Fast {
			starts, profiles = 8, 3
		}
		tb := newTable(w)
		tb.row("profile", "N", "disc", "starts converged", "distinct limits", "max pairwise dist")
		match := true
		for k := 0; k < profiles; k++ {
			n := 2 + rng.Intn(4)
			us := utility.RandomProfile(rng, n)
			sts := make([][]float64, starts)
			for m := range sts {
				s := make([]float64, n)
				for i := range s {
					s[i] = 0.01 + 0.5*rng.Float64()
				}
				sts[m] = s
			}
			for _, a := range []core.Allocation{alloc.FairShare{}, alloc.Proportional{}} {
				ms := game.MultiStartNash(a, us, sts, game.NashOptions{}, 1e-4)
				maxDist := 0.0
				for i := range ms.All {
					for j := i + 1; j < len(ms.All); j++ {
						if d := numeric.VecDist(ms.All[i].R, ms.All[j].R); d > maxDist {
							maxDist = d
						}
					}
				}
				tb.row(k, n, a.Name(), len(ms.All), len(ms.Distinct), maxDist)
				if _, isFS := a.(alloc.FairShare); isFS {
					if len(ms.All) != starts || len(ms.Distinct) != 1 {
						match = false
					}
				}
			}
		}
		if err := tb.flush(); err != nil {
			return Verdict{}, err
		}
		return verdictLine(w, match,
			"every FS start converges to the same equilibrium (FIFO shown for contrast)")
	}
	return e
}
