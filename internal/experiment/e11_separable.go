package experiment

import (
	"io"
	"math"
	"math/rand"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/game"
	"greednet/internal/randdist"
	"greednet/internal/utility"
)

// E11Separable reproduces Corollary 2: when the constraint function is
// separable — here f̂(r) = Σ r_i², sharable as C_i = r_i² — the Nash and
// Pareto first-derivative conditions coincide, so *every* Nash equilibrium
// is Pareto optimal, in sharp contrast to the M/M/1 constraint g(Σr).
func E11Separable() Experiment {
	e := Experiment{
		ID:     "E11",
		Source: "Corollary 2",
		Title:  "separable constraint Σr²: every Nash equilibrium is Pareto optimal",
	}
	e.Run = func(w io.Writer, opt Options) (Verdict, error) {
		if err := header(w, e); err != nil {
			return Verdict{}, err
		}
		seed := opt.SeedOr(1111)
		rng := randdist.NewRand(seed)
		profiles := 10
		if opt.Fast {
			profiles = 4
		}
		a := alloc.Square{}
		tb := newTable(w)
		tb.row("profile", "N", "Nash rates", "max |M_i + 2r_i|", "Nash⇒Pareto FDC?")
		match := true
		for k := 0; k < profiles; k++ {
			n := 2 + rng.Intn(4)
			us := interiorSquareProfile(rng, n)
			r0 := make([]float64, n)
			for i := range r0 {
				r0[i] = 0.05 + 0.3*rng.Float64()
			}
			res, err := game.SolveNash(a, us, r0, game.NashOptions{})
			if err != nil || !res.Converged {
				return Verdict{}, errf("square-world Nash failed (profile %d)", k)
			}
			// In the Σr² world the Pareto FDC is M_i = −∂f̂/∂r_i = −2r_i,
			// identical to the Nash FDC for C_i = r_i².
			worst := 0.0
			for i := range res.R {
				m := marginal(us[i], res.R[i], res.C[i])
				if v := math.Abs(m + 2*res.R[i]); v > worst {
					worst = v
				}
			}
			ok := worst < 1e-3
			if !ok {
				match = false
			}
			tb.row(k, n, fmtVec(res.R), worst, yesno(ok))
		}
		if err := tb.flush(); err != nil {
			return Verdict{}, err
		}
		return verdictLine(w, match,
			"the Nash FDC equals the Pareto FDC at every equilibrium of the separable world")
	}
	return e
}

// interiorSquareProfile draws utilities whose optimum against C = r² is
// guaranteed interior to (0, 1), so the Nash FDC applies: Linear needs
// γ > 1/2 (optimum r = 1/(2γ)), Power needs 2γp > 1, Log needs w < 2γ.
func interiorSquareProfile(rng *rand.Rand, n int) core.Profile {
	out := make(core.Profile, n)
	for i := range out {
		switch rng.Intn(3) {
		case 0:
			out[i] = utility.Linear{A: 1, Gamma: 0.7 + 2*rng.Float64()}
		case 1:
			out[i] = utility.Power{A: 1, Gamma: 0.8 + 2*rng.Float64(), P: 1 + rng.Float64()}
		default:
			g := 1 + 2*rng.Float64()
			out[i] = utility.Log{W: g * (0.3 + 0.5*rng.Float64()), Gamma: g}
		}
	}
	return out
}

func marginal(u core.Utility, r, c float64) float64 {
	dr, dc := u.Gradient(r, c)
	return dr / dc
}
