package experiment

import (
	"io"
	"math"

	"greednet/internal/alloc"
	"greednet/internal/des"
	"greednet/internal/network"
)

// E19Tandem quantifies the §5.4 Poisson approximation on a simulated
// two-switch tandem: a FIFO tandem matches the approximation exactly
// (Burke's theorem gives Jackson product form), while a Fair Share
// (priority) tandem — whose first-stage output is not Poisson — deviates
// only modestly, supporting the paper's use of the approximation for the
// network generalization.
func E19Tandem() Experiment {
	e := Experiment{
		ID:     "E19",
		Source: "§5.4 (network of switches, output-process caveat)",
		Title:  "tandem simulation: Poisson approximation exact for FIFO, mild drift for Fair Share",
	}
	e.Run = func(w io.Writer, opt Options) (Verdict, error) {
		if err := header(w, e); err != nil {
			return Verdict{}, err
		}
		horizon := 5e5
		if opt.Fast {
			horizon = 6e4
		}
		seed := opt.SeedOr(1919)
		long, crossA, crossB := 0.15, 0.35, 0.3
		rates := []float64{long, crossA, crossB}
		routes := [][]int{{0, 1}, {0}, {1}}
		match := true

		tb := newTable(w)
		tb.row("disc", "user", "route", "measured Σ queue", "Poisson approx", "rel dev")
		maxDev := map[string]float64{}
		for _, tc := range []struct {
			name string
			mk   func() des.Discipline
			al   interface {
				Congestion(r []float64) []float64
				CongestionOf(r []float64, i int) float64
				Name() string
			}
		}{
			{"fifo", func() des.Discipline { return &des.FIFO{} }, alloc.Proportional{}},
			{"fair-share", func() des.Discipline { return &des.FairShareSplitter{} }, alloc.FairShare{}},
		} {
			res, err := des.RunTandem(des.TandemConfig{
				LongRates: []float64{long},
				CrossA:    []float64{crossA},
				CrossB:    []float64{crossB},
				NewDisc:   tc.mk,
				Horizon:   horizon,
				Seed:      seed,
			})
			if err != nil {
				return Verdict{}, err
			}
			nw, err := network.New(2, routes, tc.al)
			if err != nil {
				return Verdict{}, err
			}
			want := nw.Congestion(rates)
			routesStr := []string{"A→B", "A", "B"}
			worst := 0.0
			for u := range rates {
				rel := math.Abs(res.TotalQueue[u]-want[u]) / want[u]
				if rel > worst {
					worst = rel
				}
				tb.row(tc.name, u, routesStr[u], res.TotalQueue[u], want[u], rel)
			}
			maxDev[tc.name] = worst
		}
		if err := tb.flush(); err != nil {
			return Verdict{}, err
		}
		tb2 := newTable(w)
		tb2.row("disc", "max relative deviation", "within expectation?")
		fifoOK := maxDev["fifo"] < 0.05
		fsOK := maxDev["fair-share"] < 0.2
		tb2.row("fifo (Jackson exact)", maxDev["fifo"], yesno(fifoOK))
		tb2.row("fair-share (approximate)", maxDev["fair-share"], yesno(fsOK))
		if err := tb2.flush(); err != nil {
			return Verdict{}, err
		}
		if !fifoOK || !fsOK {
			match = false
		}
		return verdictLine(w, match,
			"the §5.4 Poisson approximation is exact for FIFO tandems and within ~20% for Fair Share tandems")
	}
	return e
}
