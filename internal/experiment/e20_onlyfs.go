package experiment

import (
	"io"
	"math"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/game"
	"greednet/internal/randdist"
	"greednet/internal/utility"
)

// E20OnlyFairShare probes the uniqueness halves of Theorems 3, 5, 7, and 8
// ("Fair Share is the ONLY MAC allocation function with any one of these
// properties") by ablation: the Blend family θ·FS + (1−θ)·FIFO is MAC for
// every θ, yet each property must fail for every θ < 1 and snap into place
// exactly at θ = 1.
func E20OnlyFairShare() Experiment {
	e := Experiment{
		ID:     "E20",
		Source: "Theorems 3/5/7/8 uniqueness parts",
		Title:  "MAC ablation: every Fair Share property fails for every blend θ < 1",
	}
	e.Run = func(w io.Writer, opt Options) (Verdict, error) {
		if err := header(w, e); err != nil {
			return Verdict{}, err
		}
		seed := opt.SeedOr(2020)
		thetas := []float64{0, 0.25, 0.5, 0.75, 0.9, 1}
		if opt.Fast {
			thetas = []float64{0, 0.5, 0.9, 1}
		}
		match := true
		tb := newTable(w)
		tb.row("θ", "MAC?", "unilateral envy", "protection slack", "Stackelberg adv", "all FS properties?")
		for _, th := range thetas {
			a := alloc.Blend{Theta: th}
			rng := randdist.NewRand(seed)

			// MAC membership at random interior points.
			macOK := true
			for k := 0; k < 10; k++ {
				r := []float64{0.05 + 0.2*rng.Float64(), 0.05 + 0.2*rng.Float64(), 0.05 + 0.2*rng.Float64()}
				if !alloc.CheckMAC(a, r, 1e-6).OK {
					macOK = false
				}
			}

			// (Thm 3) worst unilateral envy over adversarial opponents.
			worstEnvy := math.Inf(-1)
			us2 := core.Profile{utility.NewLinear(1, 0.2), utility.NewLinear(1, 0.2)}
			for k := 0; k < 40; k++ {
				r := []float64{0.02 + 0.3*rng.Float64(), 0.02 + 0.7*rng.Float64()}
				if r[0]+r[1] > 0.95 {
					continue
				}
				if v := game.UnilateralEnvy(a, us2, r, 0, game.BROptions{}); v > worstEnvy {
					worstEnvy = v
				}
			}

			// (Thm 8) worst protection slack under a flooding opponent.
			worstSlack := math.Inf(1)
			for _, atk := range []float64{0.5, 0.7, 0.85} {
				slacks := game.ProtectionSlack(a, []float64{0.1, atk})
				if slacks[0] < worstSlack {
					worstSlack = slacks[0]
				}
			}

			// (Thm 5) Stackelberg leader advantage.
			so := game.StackOptions{}
			if opt.Fast {
				so.Grid = 20
			}
			adv, _, _, err := game.LeaderAdvantage(a, us2, 0, []float64{0.1, 0.1}, so)
			if err != nil {
				return Verdict{}, err
			}

			fsLike := worstEnvy <= 1e-6 && worstSlack >= -1e-9 && math.Abs(adv) <= 1e-4
			tb.row(th, yesno(macOK), worstEnvy, worstSlack, adv, yesno(fsLike))
			if !macOK {
				match = false
			}
			if th == 1 && !fsLike { //lint:allow floateq exact sentinel: the θ=1 endpoint of the blend sweep
				match = false
			}
			if th < 1 && fsLike {
				match = false // a non-FS MAC blend must fail something
			}
		}
		if err := tb.flush(); err != nil {
			return Verdict{}, err
		}
		return verdictLine(w, match,
			"every blend is MAC, yet envy-freeness, protection, and Stackelberg-immunity hold only at θ = 1 (pure Fair Share)")
	}
	return e
}
