package experiment

import (
	"io"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/game"
	"greednet/internal/mm1"
	"greednet/internal/randdist"
	"greednet/internal/utility"
)

// E16Coalition reproduces footnote 14: Fair Share Nash equilibria are
// resilient against coalitional manipulation (they are strong equilibria),
// while the FIFO equilibrium is not even resilient against the grand
// coalition — everybody throttling back helps everybody, which is the
// tragedy-of-the-commons signature of §4.1.1 restated coalitionally.
func E16Coalition() Experiment {
	e := Experiment{
		ID:     "E16",
		Source: "footnote 14 (coalition resilience)",
		Title:  "Fair Share equilibria are strong equilibria; FIFO's fall to the grand coalition",
	}
	e.Run = func(w io.Writer, opt Options) (Verdict, error) {
		if err := header(w, e); err != nil {
			return Verdict{}, err
		}
		seed := opt.SeedOr(1616)
		samples := 1200
		if opt.Fast {
			samples = 300
		}
		profiles := []struct {
			name string
			us   core.Profile
		}{
			{"identical linear", utility.Identical(utility.NewLinear(1, 0.2), 3)},
			{"mixed families", core.Profile{
				utility.NewLinear(1, 0.25),
				utility.Log{W: 0.3, Gamma: 1},
				utility.Sqrt{W: 1, Gamma: 2},
			}},
		}
		tb := newTable(w)
		tb.row("profile", "disc", "improving coalition found?", "members", "total rate before→after")
		match := true
		for pi, p := range profiles {
			for _, a := range []core.Allocation{alloc.FairShare{}, alloc.Proportional{}} {
				res, err := game.SolveNash(a, p.us, []float64{0.1, 0.1, 0.1}, game.NashOptions{})
				if err != nil || !res.Converged {
					return Verdict{}, errf("nash failed: %s/%s", p.name, a.Name())
				}
				rng := randdist.NewRand(seed + int64(pi))
				wtn := game.StrongEquilibriumCheck(a, p.us, res.R, rng, samples)
				members := "-"
				loadChange := "-"
				if wtn != nil {
					members = fmtInts(wtn.Members)
					loadChange = fnum(mm1.Sum(res.R)) + "→" + fnum(mm1.Sum(wtn.Rates))
				}
				tb.row(p.name, a.Name(), yesno(wtn != nil), members, loadChange)
				if _, isFS := a.(alloc.FairShare); isFS {
					if wtn != nil {
						match = false
					}
				} else if wtn == nil {
					match = false
				}
			}
		}
		if err := tb.flush(); err != nil {
			return Verdict{}, err
		}
		return verdictLine(w, match,
			"no coalition improves on a Fair Share equilibrium; FIFO equilibria fall to joint throttling")
	}
	return e
}

func fmtInts(xs []int) string {
	s := "["
	for i, v := range xs {
		if i > 0 {
			s += " "
		}
		s += fnum(float64(v))
	}
	return s + "]"
}
