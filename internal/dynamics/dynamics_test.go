package dynamics

import (
	"math"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/game"
	"greednet/internal/numeric"
	"greednet/internal/utility"
)

func TestBoxBasics(t *testing.T) {
	b := NewBox(3, 0.1, 0.5)
	if w := b.Width(); math.Abs(w-0.4) > 1e-15 {
		t.Errorf("Width = %v", w)
	}
	m := b.Mid()
	for _, v := range m {
		if math.Abs(v-0.3) > 1e-15 {
			t.Errorf("Mid = %v", m)
		}
	}
}

func TestGHCConvergesFairShareIdentical(t *testing.T) {
	// Theorem 5(1): all generalized hill climbers converge under FS.
	n := 3
	gamma := 0.25
	us := utility.Identical(utility.NewLinear(1, gamma), n)
	res := GeneralizedHillClimb(alloc.FairShare{}, us, NewBox(n, 1e-6, 1-1e-6),
		EliminationOptions{Tol: 1e-3})
	if !res.Converged {
		t.Fatalf("GHC did not converge: rounds=%d widths=%v stalled=%v",
			res.Rounds, res.Widths, res.Stalled)
	}
	want := (1 - math.Sqrt(gamma)) / float64(n)
	nash := []float64{want, want, want}
	if !res.Final.Contains(nash, 1e-9) {
		t.Errorf("Nash %v escaped the terminal box %+v", nash, res.Final)
	}
	for i, v := range res.Final.Mid() {
		if math.Abs(v-want) > 1e-3 {
			t.Errorf("S∞ mid[%d] = %v, want Nash %v", i, v, want)
		}
	}
}

func TestGHCConvergesFairShareHeterogeneous(t *testing.T) {
	us := core.Profile{
		utility.NewLinear(1, 0.2),
		utility.Log{W: 0.3, Gamma: 1},
		utility.Sqrt{W: 1, Gamma: 2},
	}
	res := GeneralizedHillClimb(alloc.FairShare{}, us, NewBox(3, 1e-6, 1-1e-6), EliminationOptions{})
	// The interval relaxation stalls at a small floor; require the box to
	// have collapsed by more than an order of magnitude and to still
	// contain the Nash equilibrium.
	if w := res.Final.Width(); w > 0.06 {
		t.Fatalf("GHC box still wide (%v): widths=%v", w, res.Widths)
	}
	nash, err := game.SolveNash(alloc.FairShare{}, us, []float64{0.1, 0.1, 0.1}, game.NashOptions{})
	if err != nil || !nash.Converged {
		t.Fatal("nash solve failed")
	}
	if !res.Final.Contains(nash.R, 1e-6) {
		t.Errorf("Nash %v escaped the terminal box %+v", nash.R, res.Final)
	}
	if d := numeric.VecDist(res.Final.Mid(), nash.R); d > res.Final.Width() {
		t.Errorf("S∞ mid %v differs from Nash %v by %v", res.Final.Mid(), nash.R, d)
	}
}

func TestGHCStallsProportional(t *testing.T) {
	// Under FIFO a candidate's guaranteed payoff is −Inf while the box can
	// overload the switch, so elimination cannot begin from the full box.
	n := 3
	us := utility.Identical(utility.NewLinear(1, 0.25), n)
	res := GeneralizedHillClimb(alloc.Proportional{}, us, NewBox(n, 1e-6, 1-1e-6), EliminationOptions{})
	if res.Converged {
		t.Fatalf("proportional GHC should not converge from the full box: %+v", res.Final)
	}
	if !res.Stalled {
		t.Errorf("expected a stall, got rounds=%d widths=%v", res.Rounds, res.Widths)
	}
	if res.Final.Width() < 0.5 {
		t.Errorf("proportional box should remain wide, width=%v", res.Final.Width())
	}
}

func TestRoundEliminateSound(t *testing.T) {
	// The Nash equilibrium always survives elimination rounds under FS.
	n := 2
	gamma := 0.25
	us := utility.Identical(utility.NewLinear(1, gamma), n)
	want := (1 - math.Sqrt(gamma)) / float64(n)
	b := NewBox(n, 1e-6, 1-1e-6)
	for round := 0; round < 30; round++ {
		b = RoundEliminate(alloc.FairShare{}, us, b, EliminationOptions{})
		for i := 0; i < n; i++ {
			if want < b.Lo[i]-1e-9 || want > b.Hi[i]+1e-9 {
				t.Fatalf("round %d: Nash rate %v eliminated from [%v, %v]",
					round, want, b.Lo[i], b.Hi[i])
			}
		}
	}
}

func TestHillClimbConvergesFairShare(t *testing.T) {
	n := 3
	gamma := 0.25
	us := utility.Identical(utility.NewLinear(1, gamma), n)
	traj := HillClimb(alloc.FairShare{}, us, []float64{0.05, 0.2, 0.4}, HillClimbOptions{
		Step:   0.005,
		Rounds: 4000,
	})
	final := traj[len(traj)-1]
	want := (1 - math.Sqrt(gamma)) / float64(n)
	for i, v := range final {
		if math.Abs(v-want) > 5e-3 {
			t.Errorf("hill climb final[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestHillClimbHeterogeneousPeriods(t *testing.T) {
	// A slow user mixed with fast users still converges under FS.
	n := 3
	gamma := 0.25
	us := utility.Identical(utility.NewLinear(1, gamma), n)
	traj := HillClimb(alloc.FairShare{}, us, []float64{0.3, 0.1, 0.1}, HillClimbOptions{
		Step:   0.005,
		Rounds: 8000,
		Period: []int{7, 1, 1},
	})
	final := traj[len(traj)-1]
	want := (1 - math.Sqrt(gamma)) / float64(n)
	for i, v := range final {
		if math.Abs(v-want) > 5e-3 {
			t.Errorf("final[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestHillClimbTrajectoryShape(t *testing.T) {
	us := utility.Identical(utility.NewLinear(1, 0.3), 2)
	traj := HillClimb(alloc.FairShare{}, us, []float64{0.1, 0.1}, HillClimbOptions{Rounds: 10})
	if len(traj) != 11 {
		t.Fatalf("trajectory length %d, want 11", len(traj))
	}
	if traj[0][0] != 0.1 {
		t.Error("trajectory should include the start")
	}
}
