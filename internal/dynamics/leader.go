package dynamics

import (
	"context"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/game"
)

// LeaderFollowerOptions configures the §4.2.2 timescale experiment.
type LeaderFollowerOptions struct {
	// Epochs is the number of slow leader adjustments; default 60.
	Epochs int
	// Probe is the leader's ±probe distance for its local comparison;
	// default 0.01.
	Probe float64
	// Step is the leader's per-epoch move; default 0.01.
	Step float64
	// Nash configures the fast followers' equilibration between leader
	// moves.
	Nash game.NashOptions
}

func (o LeaderFollowerOptions) withDefaults() LeaderFollowerOptions {
	if o.Epochs <= 0 {
		o.Epochs = 60
	}
	if o.Probe <= 0 {
		o.Probe = 0.01
	}
	if o.Step <= 0 {
		o.Step = 0.01
	}
	return o
}

// LeaderFollowerResult reports the timescale experiment.
type LeaderFollowerResult struct {
	// R is the final rate vector (followers at their equilibrium).
	R []float64
	// LeaderUtility is the leader's final achieved utility.
	LeaderUtility float64
	// Trajectory records the leader's rate per epoch.
	Trajectory []float64
	// Converged is false if some follower equilibration failed.
	Converged bool
}

// LeaderFollower simulates the §4.2.2 story: one sophisticated user (the
// leader) adjusts its rate on a much longer time constant than everyone
// else, so between its moves the naive followers settle into the Nash
// equilibrium of their subsystem.  The leader itself is still a naive
// local hill climber — it merely compares the settled payoffs of r ± probe
// and steps uphill — yet this timescale separation alone steers it to the
// Stackelberg rate.  Under Fair Share that is the Nash rate (nothing to
// exploit, Theorem 5); under FIFO the leader ends up better off than at
// Nash without ever knowing the game.
func LeaderFollower(a core.Allocation, us core.Profile, leader int, r0 []core.Rate, opt LeaderFollowerOptions) LeaderFollowerResult {
	opt = opt.withDefaults()
	n := len(r0)
	free := make([]bool, n)
	for i := range free {
		free[i] = i != leader
	}
	inner := opt.Nash
	inner.Free = free

	res := LeaderFollowerResult{Converged: true}
	warm := append([]float64(nil), r0...)
	// settle equilibrates the followers at leader rate x and returns the
	// leader's achieved utility.  One game workspace and one start buffer
	// serve every epoch's probes: the inner solver copies the start vector
	// before iterating, so the buffer is free again on return.
	ws := game.NewWorkspace()
	start := make([]float64, n)
	cdst := make([]float64, n)
	var aws core.Workspace
	settle := func(x float64) float64 {
		copy(start, warm)
		start[leader] = x
		nr, err := game.SolveNashWS(context.Background(), ws, a, us, start, inner)
		if err != nil || !nr.Converged {
			res.Converged = false
			return us[leader].Value(x, alloc.CongestionOfInto(a, &aws, cdst, start, leader))
		}
		copy(warm, nr.R)
		return us[leader].Value(x, alloc.CongestionOfInto(a, &aws, cdst, nr.R, leader))
	}

	x := r0[leader]
	for e := 0; e < opt.Epochs; e++ {
		res.Trajectory = append(res.Trajectory, x)
		up := core.Clamp(x+opt.Probe, 1e-6, 1-1e-6)
		dn := core.Clamp(x-opt.Probe, 1e-6, 1-1e-6)
		vUp := settle(up)
		vDn := settle(dn)
		switch {
		case vUp > vDn:
			x = core.Clamp(x+opt.Step, 1e-6, 1-1e-6)
		case vDn > vUp:
			x = core.Clamp(x-opt.Step, 1e-6, 1-1e-6)
		}
	}
	res.LeaderUtility = settle(x)
	res.R = append([]float64(nil), warm...)
	res.R[leader] = x
	return res
}
