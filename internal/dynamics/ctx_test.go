package dynamics

import (
	"context"
	"errors"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/utility"
)

// TestGHCCtxCanceled checks an abandoned elimination run reports the
// typed cancellation error without claiming a verdict: the partial box is
// returned, but neither Converged nor Stalled is set.
func TestGHCCtxCanceled(t *testing.T) {
	n := 3
	us := utility.Identical(utility.NewLinear(1, 0.25), n)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := GeneralizedHillClimbCtx(ctx, alloc.FairShare{}, us, NewBox(n, 1e-6, 1-1e-6),
		EliminationOptions{Tol: 1e-3})
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("got %v, want core.ErrCanceled", err)
	}
	if res.Converged || res.Stalled {
		t.Errorf("abandoned run must not claim a verdict (converged=%v stalled=%v)",
			res.Converged, res.Stalled)
	}
	if res.Rounds != 0 {
		t.Errorf("pre-canceled ctx should stop before any round, got %d", res.Rounds)
	}
	if len(res.Final.Lo) != n {
		t.Errorf("partial result should still carry the box")
	}
}

// TestGHCCtxLiveMatchesPlain pins the wrapper contract: under a live
// context the Ctx variant is the plain function.
func TestGHCCtxLiveMatchesPlain(t *testing.T) {
	n := 2
	us := utility.Identical(utility.NewLinear(1, 0.25), n)
	opt := EliminationOptions{Tol: 1e-3}
	plain := GeneralizedHillClimb(alloc.FairShare{}, us, NewBox(n, 1e-6, 1-1e-6), opt)
	viaCtx, err := GeneralizedHillClimbCtx(context.Background(), alloc.FairShare{}, us, NewBox(n, 1e-6, 1-1e-6), opt)
	if err != nil {
		t.Fatalf("background ctx errored: %v", err)
	}
	if plain.Rounds != viaCtx.Rounds || plain.Converged != viaCtx.Converged {
		t.Errorf("ctx and plain disagree: %+v vs %+v", viaCtx, plain)
	}
}

// TestHillClimbCtxCanceled checks the gradient dynamics return the
// truncated trajectory (here just the start) plus the typed error.
func TestHillClimbCtxCanceled(t *testing.T) {
	us := utility.Identical(utility.NewLinear(1, 0.25), 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	traj, err := HillClimbCtx(ctx, alloc.FairShare{}, us, []float64{0.1, 0.1},
		HillClimbOptions{Rounds: 500})
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("got %v, want core.ErrCanceled", err)
	}
	if len(traj) != 1 {
		t.Errorf("pre-canceled run should return only the start, got %d entries", len(traj))
	}
}
