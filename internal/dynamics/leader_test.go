package dynamics

import (
	"math"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/game"
	"greednet/internal/utility"
)

func TestSlowLeaderExploitsFIFO(t *testing.T) {
	// §4.2.2: a naive hill climber with a longer time constant becomes a
	// de-facto Stackelberg leader under FIFO and beats its Nash utility.
	us := core.Profile{utility.NewLinear(1, 0.2), utility.NewLinear(1, 0.3)}
	nash, err := game.SolveNash(alloc.Proportional{}, us, []float64{0.1, 0.1}, game.NashOptions{})
	if err != nil || !nash.Converged {
		t.Fatal("nash solve failed")
	}
	nashU := us[0].Value(nash.R[0], nash.C[0])
	lf := LeaderFollower(alloc.Proportional{}, us, 0, []float64{0.1, 0.1},
		LeaderFollowerOptions{Epochs: 80, Step: 0.008, Probe: 0.008})
	if !lf.Converged {
		t.Fatal("follower equilibration failed")
	}
	if lf.LeaderUtility <= nashU+1e-4 {
		t.Errorf("slow leader gained nothing under FIFO: %v vs Nash %v",
			lf.LeaderUtility, nashU)
	}
	// The emergent commitment should approach the analytic Stackelberg rate.
	st, err := game.SolveStackelberg(alloc.Proportional{}, us, 0, []float64{0.1, 0.1}, game.StackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lf.R[0]-st.R[0]) > 0.03 {
		t.Errorf("emergent leader rate %v far from Stackelberg %v", lf.R[0], st.R[0])
	}
}

func TestSlowLeaderGainsNothingUnderFairShare(t *testing.T) {
	// Theorem 5: under FS the Stackelberg point IS the Nash point, so the
	// timescale trick yields no advantage.
	us := core.Profile{utility.NewLinear(1, 0.2), utility.NewLinear(1, 0.3)}
	nash, err := game.SolveNash(alloc.FairShare{}, us, []float64{0.1, 0.1}, game.NashOptions{})
	if err != nil || !nash.Converged {
		t.Fatal("nash solve failed")
	}
	nashU := us[0].Value(nash.R[0], nash.C[0])
	lf := LeaderFollower(alloc.FairShare{}, us, 0, []float64{0.1, 0.1},
		LeaderFollowerOptions{Epochs: 80, Step: 0.008, Probe: 0.008})
	if !lf.Converged {
		t.Fatal("follower equilibration failed")
	}
	if lf.LeaderUtility > nashU+1e-4 {
		t.Errorf("leader should gain nothing under FS: %v vs Nash %v",
			lf.LeaderUtility, nashU)
	}
	if math.Abs(lf.R[0]-nash.R[0]) > 0.02 {
		t.Errorf("leader should settle at the Nash rate: %v vs %v", lf.R[0], nash.R[0])
	}
}

func TestLeaderFollowerTrajectoryLength(t *testing.T) {
	us := core.Profile{utility.NewLinear(1, 0.25), utility.NewLinear(1, 0.25)}
	lf := LeaderFollower(alloc.FairShare{}, us, 0, []float64{0.1, 0.1},
		LeaderFollowerOptions{Epochs: 10})
	if len(lf.Trajectory) != 10 {
		t.Errorf("trajectory length %d, want 10", len(lf.Trajectory))
	}
}
