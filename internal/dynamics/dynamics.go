// Package dynamics implements the self-optimization processes of §4.2: the
// interval-elimination "generalized hill climbing" learners whose robust
// convergence Theorem 5 characterizes, and incremental gradient hill
// climbers with heterogeneous time constants (the setting that produces
// Stackelberg leaders under non-Fair-Share disciplines).
package dynamics

import (
	"context"
	"math"

	"greednet/internal/alloc"
	"greednet/internal/core"
)

// Box is a product of per-user candidate intervals — the set S^t of rate
// values each user still considers (§4.2.2 models learning as eliminating
// candidate values; we keep the interval hull of the survivors).
type Box struct {
	Lo, Hi []float64
}

// NewBox returns the initial candidate box [lo, hi]^n.
func NewBox(n int, lo, hi float64) Box {
	b := Box{Lo: make([]float64, n), Hi: make([]float64, n)}
	for i := 0; i < n; i++ {
		b.Lo[i] = lo
		b.Hi[i] = hi
	}
	return b
}

// Width returns the largest interval width in the box.
func (b Box) Width() float64 {
	w := 0.0
	for i := range b.Lo {
		if d := b.Hi[i] - b.Lo[i]; d > w {
			w = d
		}
	}
	return w
}

// Mid returns the box midpoint.
func (b Box) Mid() []float64 {
	m := make([]float64, len(b.Lo))
	for i := range m {
		m[i] = (b.Lo[i] + b.Hi[i]) / 2
	}
	return m
}

// Contains reports whether the rate vector lies in the box (within eps).
func (b Box) Contains(r []core.Rate, eps float64) bool {
	if len(r) != len(b.Lo) {
		return false
	}
	for i := range r {
		if r[i] < b.Lo[i]-eps || r[i] > b.Hi[i]+eps {
			return false
		}
	}
	return true
}

// clone deep-copies the box.
func (b Box) clone() Box {
	return Box{
		Lo: append([]float64(nil), b.Lo...),
		Hi: append([]float64(nil), b.Hi...),
	}
}

// EliminationOptions configures the generalized-hill-climbing round.
type EliminationOptions struct {
	// Grid is the number of candidate values sampled per user per round;
	// default 64.
	Grid int
	// Slack loosens the elimination threshold to keep the procedure sound
	// against discretization error; default 1e-9.
	Slack float64
	// MaxRounds bounds the iteration; default 200.
	MaxRounds int
	// Tol is the target box width; default 1e-6.
	Tol float64
}

func (o EliminationOptions) withDefaults() EliminationOptions {
	if o.Grid <= 0 {
		o.Grid = 64
	}
	if o.Slack <= 0 {
		o.Slack = 1e-9
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 200
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	return o
}

// EliminationResult reports a generalized hill climbing run.
type EliminationResult struct {
	// Final is the terminal candidate box S^∞ (its midpoint approximates
	// the Nash equilibrium when Converged is true).
	Final Box
	// Widths traces the largest box width after each round.
	Widths []float64
	// Rounds is the number of elimination rounds performed.
	Rounds int
	// Converged is true when the box shrank to Tol: every combination of
	// reasonable learners ends at the same single point.
	Converged bool
	// Stalled is true when a full round eliminated (numerically) nothing
	// while the box was still wide — the discipline does not guarantee
	// robust convergence.
	Stalled bool
}

// elimCand is one sampled candidate rate with its payoff bracket over the
// box: umin is the payoff guaranteed against any surviving profile, umax
// the best case.
type elimCand struct{ s, umin, umax float64 }

// elimWorkspace holds the per-round scratch of interval elimination: the
// two corner rate vectors that bracket C_i over the box, the candidate
// list, and the allocation layer's workspace.  One elimWorkspace serves
// every round of a GeneralizedHillClimb run; a nil workspace means
// transient scratch.  Not safe for concurrent use.
type elimWorkspace struct {
	rLo, rHi []float64
	cands    []elimCand
	cdst     []float64
	aws      core.Workspace
}

// growVec resizes buf to n, reusing capacity when possible.
func growVec(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// RoundEliminate performs one sound elimination round on the box: for each
// user it discards candidate rates whose best possible payoff against any
// profile in the box is worse than the guaranteed payoff of some other
// candidate.  Soundness relies on MAC monotonicity: C_i(·|s) over the box
// is bracketed by its values at the others-lo and others-hi corners, and
// U_i is decreasing in congestion.  The returned box is the interval hull
// of the surviving grid values (padded by one grid cell).
func RoundEliminate(a core.Allocation, us core.Profile, b Box, opt EliminationOptions) Box {
	return roundEliminateWS(nil, a, us, b, opt)
}

// roundEliminateWS is RoundEliminate on caller-owned scratch, bit-identical
// to it (the public entry point delegates here with nil).  The corner
// probes go through alloc.CongestionOfInto, so disciplines with a fast
// path evaluate without per-probe allocation.
func roundEliminateWS(ws *elimWorkspace, a core.Allocation, us core.Profile, b Box, opt EliminationOptions) Box {
	opt = opt.withDefaults()
	n := len(b.Lo)
	if ws == nil {
		ws = &elimWorkspace{}
	}
	out := b.clone()
	// Corner rate vectors for bracketing C_i: others at box-lo / box-hi,
	// slot i overwritten per candidate and restored per user.
	rLo := growVec(ws.rLo, n)
	rHi := growVec(ws.rHi, n)
	ws.rLo, ws.rHi = rLo, rHi
	copy(rLo, b.Lo)
	copy(rHi, b.Hi)
	cdst := growVec(ws.cdst, n)
	ws.cdst = cdst
	for i := 0; i < n; i++ {
		lo, hi := b.Lo[i], b.Hi[i]
		if hi-lo <= 0 {
			continue
		}
		step := (hi - lo) / float64(opt.Grid)
		cands := ws.cands[:0]
		bestMin := math.Inf(-1)
		for k := 0; k <= opt.Grid; k++ {
			s := lo + float64(k)*step
			rLo[i] = s
			rHi[i] = s
			cLo := alloc.CongestionOfInto(a, &ws.aws, cdst, rLo, i) // least congestion over the box
			cHi := alloc.CongestionOfInto(a, &ws.aws, cdst, rHi, i) // greatest congestion over the box
			umin := us[i].Value(s, cHi)
			umax := us[i].Value(s, cLo)
			cands = append(cands, elimCand{s, umin, umax})
			if umin > bestMin {
				bestMin = umin
			}
		}
		ws.cands = cands
		rLo[i] = b.Lo[i]
		rHi[i] = b.Hi[i]
		newLo, newHi := math.Inf(1), math.Inf(-1)
		for _, c := range cands {
			if c.umax >= bestMin-opt.Slack {
				if c.s < newLo {
					newLo = c.s
				}
				if c.s > newHi {
					newHi = c.s
				}
			}
		}
		if math.IsInf(newLo, 1) {
			// Nothing survived (can only happen with −Inf everywhere);
			// keep the box unchanged.
			continue
		}
		// Pad by one grid cell: the true optimum may sit between samples.
		out.Lo[i] = math.Max(lo, newLo-step)
		out.Hi[i] = math.Min(hi, newHi+step)
	}
	return out
}

// GeneralizedHillClimb iterates RoundEliminate until the box collapses, the
// round budget is exhausted, or no further progress is made.  Under Fair
// Share the box collapses around the unique Nash equilibrium (Theorem
// 5(1)); under the proportional allocation it typically stalls while still
// wide, because a candidate's guaranteed payoff is −Inf whenever the rest
// of the box can overload the switch.
//
// Note on completeness: the paper eliminates s when some ŝ beats it at
// every profile r in S^t; RoundEliminate uses the sound relaxation
// "guaranteed payoff of ŝ exceeds best-case payoff of s" with independent
// corner bounds, which discards the correlation between the two payoffs.
// The relaxation shrinks the box like √w per round and therefore stalls at
// a small positive width (the relaxation floor) instead of a point.  The
// Nash equilibrium always remains inside the box; Contains can certify it.
func GeneralizedHillClimb(a core.Allocation, us core.Profile, start Box, opt EliminationOptions) EliminationResult {
	// The background context cannot fire, so the error path is dead.
	res, _ := GeneralizedHillClimbCtx(context.Background(), a, us, start, opt)
	return res
}

// GeneralizedHillClimbCtx is GeneralizedHillClimb under a context, polled
// once per elimination round (each round grids every user's interval, so
// the poll is amortized to nothing).  On cancellation it returns the box
// as eliminated so far — still a sound enclosure of the equilibrium —
// with the typed core.ErrCanceled / core.ErrDeadline; Converged and
// Stalled both stay false, so an abandoned run cannot be mistaken for a
// verdict about the discipline.
func GeneralizedHillClimbCtx(ctx context.Context, a core.Allocation, us core.Profile, start Box, opt EliminationOptions) (EliminationResult, error) {
	opt = opt.withDefaults()
	res := EliminationResult{Final: start.clone()}
	prev := res.Final.Width()
	ws := &elimWorkspace{} // one scratch set for every round
	for res.Rounds = 0; res.Rounds < opt.MaxRounds; res.Rounds++ {
		if err := core.CtxErr(ctx); err != nil {
			return res, err
		}
		res.Final = roundEliminateWS(ws, a, us, res.Final, opt)
		w := res.Final.Width()
		res.Widths = append(res.Widths, w)
		if w <= opt.Tol {
			res.Converged = true
			res.Rounds++
			return res, nil
		}
		// A full grid refinement halves the effective resolution each
		// round; require at least 1% relative progress to continue.
		if w > prev*0.999 {
			res.Stalled = true
			res.Rounds++
			return res, nil
		}
		prev = w
	}
	return res, nil
}

// HillClimbOptions configures the incremental gradient dynamics.
type HillClimbOptions struct {
	// Step is the per-update rate increment scale; default 0.01.
	Step float64
	// Probe is the finite-difference probe distance; default 1e-5.
	Probe float64
	// Period[i] makes user i update only every Period[i] rounds (a time
	// constant); nil means everyone updates every round.
	Period []int
	// Rounds is the number of rounds to simulate; default 2000.
	Rounds int
	// Lo/Hi clamp the rates; defaults (1e-6, 1−1e-6).
	Lo, Hi float64
}

func (o HillClimbOptions) withDefaults(n int) HillClimbOptions {
	if o.Step <= 0 {
		o.Step = 0.01
	}
	if o.Probe <= 0 {
		o.Probe = 1e-5
	}
	if o.Rounds <= 0 {
		o.Rounds = 2000
	}
	if o.Lo <= 0 {
		o.Lo = 1e-6
	}
	if o.Hi <= 0 || o.Hi >= 1 {
		o.Hi = 1 - 1e-6
	}
	if o.Period == nil {
		o.Period = make([]int, n)
		for i := range o.Period {
			o.Period[i] = 1
		}
	}
	return o
}

// HillClimb runs naive simultaneous gradient hill climbing: each user, on
// its own period, probes its payoff derivative and takes a bounded step in
// the uphill direction.  It returns the trajectory of rate vectors (one
// entry per round, including the start).
func HillClimb(a core.Allocation, us core.Profile, r0 []core.Rate, opt HillClimbOptions) [][]float64 {
	// The background context cannot fire, so the error path is dead.
	traj, _ := HillClimbCtx(context.Background(), a, us, r0, opt)
	return traj
}

// HillClimbCtx is HillClimb under a context, polled once per round.  On
// cancellation it returns the trajectory simulated so far (every entry is
// real dynamics, just truncated) with the typed core.ErrCanceled /
// core.ErrDeadline.
func HillClimbCtx(ctx context.Context, a core.Allocation, us core.Profile, r0 []core.Rate, opt HillClimbOptions) ([][]float64, error) {
	n := len(r0)
	opt = opt.withDefaults(n)
	r := append([]float64(nil), r0...)
	traj := make([][]float64, 0, opt.Rounds+1)
	traj = append(traj, append([]float64(nil), r...))
	// Round scratch, hoisted out of the loop: next accumulates the round's
	// updates, rr is the probe vector r|ⁱ(r_i±probe) that historically was
	// two fresh core.WithRate copies per probing user per round.  The
	// trajectory still appends fresh copies — it is the output.
	next := make([]float64, n)
	rr := make([]float64, n)
	cdst := make([]float64, n)
	var aws core.Workspace
	for round := 1; round <= opt.Rounds; round++ {
		if err := core.CtxErr(ctx); err != nil {
			return traj, err
		}
		copy(next, r)
		copy(rr, r)
		for i := 0; i < n; i++ {
			if round%opt.Period[i] != 0 {
				continue
			}
			rr[i] = r[i] + opt.Probe
			up := us[i].Value(rr[i], alloc.CongestionOfInto(a, &aws, cdst, rr, i))
			rr[i] = r[i] - opt.Probe
			dn := us[i].Value(rr[i], alloc.CongestionOfInto(a, &aws, cdst, rr, i))
			rr[i] = r[i]
			grad := (up - dn) / (2 * opt.Probe)
			step := opt.Step * grad
			// Bound the move to one Step per round for stability.
			if step > opt.Step {
				step = opt.Step
			} else if step < -opt.Step {
				step = -opt.Step
			}
			next[i] = core.Clamp(r[i]+step, opt.Lo, opt.Hi)
		}
		copy(r, next)
		traj = append(traj, append([]float64(nil), r...))
	}
	return traj, nil
}
