package dynamics

import (
	"math"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/utility"
)

// A reused elimination workspace must be stateless across rounds: stepping
// RoundEliminate (fresh transient scratch per call) bit-matches the shared
// workspace that GeneralizedHillClimb threads through all its rounds.
func TestGHCSharedWorkspaceBitMatchesStepwiseRounds(t *testing.T) {
	for _, a := range []core.Allocation{alloc.FairShare{}, alloc.Proportional{}} {
		us := utility.Identical(utility.NewLinear(1, 0.25), 3)
		opt := EliminationOptions{Grid: 24, MaxRounds: 8}
		res := GeneralizedHillClimb(a, us, NewBox(3, 1e-6, 1-1e-6), opt)

		b := NewBox(3, 1e-6, 1-1e-6)
		for round := 0; round < res.Rounds; round++ {
			b = RoundEliminate(a, us, b, opt)
		}
		for i := range b.Lo {
			if math.Float64bits(res.Final.Lo[i]) != math.Float64bits(b.Lo[i]) ||
				math.Float64bits(res.Final.Hi[i]) != math.Float64bits(b.Hi[i]) {
				t.Fatalf("%s user %d: shared-ws box [%v,%v], stepwise [%v,%v]",
					a.Name(), i, res.Final.Lo[i], res.Final.Hi[i], b.Lo[i], b.Hi[i])
			}
		}
	}
}

// The hoisted probe buffers of HillClimbCtx must reproduce the historical
// trajectory: probing with the reused r|ⁱ(r_i±probe) vector is the same
// arithmetic as the fresh core.WithRate copies it replaced.
func TestHillClimbMatchesWithRateProbes(t *testing.T) {
	a := alloc.FairShare{}
	us := utility.Identical(utility.NewLinear(1, 0.3), 3)
	r0 := []core.Rate{0.05, 0.2, 0.12}
	opt := HillClimbOptions{Rounds: 40, Period: []int{1, 2, 3}}
	traj := HillClimb(a, us, r0, opt)

	o := opt.withDefaults(len(r0))
	r := append([]float64(nil), r0...)
	for round := 1; round < len(traj); round++ {
		next := append([]float64(nil), r...)
		for i := range r {
			if round%o.Period[i] != 0 {
				continue
			}
			up := us[i].Value(r[i]+o.Probe, a.CongestionOf(core.WithRate(r, i, r[i]+o.Probe), i))
			dn := us[i].Value(r[i]-o.Probe, a.CongestionOf(core.WithRate(r, i, r[i]-o.Probe), i))
			step := o.Step * (up - dn) / (2 * o.Probe)
			if step > o.Step {
				step = o.Step
			} else if step < -o.Step {
				step = -o.Step
			}
			next[i] = core.Clamp(r[i]+step, o.Lo, o.Hi)
		}
		r = next
		for i := range r {
			if math.Float64bits(traj[round][i]) != math.Float64bits(r[i]) {
				t.Fatalf("round %d user %d: trajectory %v, reference %v", round, i, traj[round][i], r[i])
			}
		}
	}
}

// Warm elimination rounds must not allocate per probe: the round's own
// outputs (the cloned box and the candidate list growth on first use) are
// the only allocations, independent of grid resolution.
func TestRoundEliminateWSAllocsIndependentOfGrid(t *testing.T) {
	us := utility.Identical(utility.NewLinear(1, 0.25), 4)
	b := NewBox(4, 1e-6, 1-1e-6)
	measure := func(grid int) float64 {
		ws := &elimWorkspace{}
		opt := EliminationOptions{Grid: grid}
		roundEliminateWS(ws, alloc.FairShare{}, us, b, opt) // warm
		return testing.AllocsPerRun(20, func() {
			roundEliminateWS(ws, alloc.FairShare{}, us, b, opt)
		})
	}
	coarse, fine := measure(16), measure(256)
	if fine > coarse {
		t.Errorf("allocs grew with grid resolution: %v at grid=16, %v at grid=256", coarse, fine)
	}
}
