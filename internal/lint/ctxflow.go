package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxFlowName is the analyzer's registered name.
const CtxFlowName = "ctxflow"

// CtxFlow statically enforces the cancellation contract PR 4 established
// dynamically with watchdog tests: a function that accepts a
// context.Context must actually let it flow.
//
// Rule 1 — poll on back-edges.  Every loop in a ctx-taking function must
// mention the context (or a value derived from it — a gate struct built
// around ctx counts) somewhere in the loop body, so cancellation is
// observed on the loop's back-edge.  Loops are found through the CFG
// dominator machinery, not syntax: a back-edge is an edge whose target
// dominates its source, which catches labeled continue and backward goto
// the same as for/range.  Only *outermost* loops are checked — the
// contract is amortized polling (an inner per-user loop inherits the
// enclosing round loop's poll), exactly the shape SolveNashWS uses.
// By the same amortization argument, a bounded loop whose body is
// straight-line arithmetic — a range or conditioned for with no function
// calls (builtins and stdlib math aside), no nested loop, and no channel
// operation — finishes in microseconds and is exempt: a poll there would
// cost more than the loop.  Unconditioned `for {}` loops and loops that
// call functions are never exempt.
//
// Rule 2 — don't drop ctx on the floor.  A call from a ctx-taking
// function to a non-ctx function is flagged when a ctx-aware sibling
// variant exists (Foo → FooCtx, locally or via the imported facts):
// calling des.Run where des.RunCtx exists silently discards the deadline.
//
// `//lint:allow ctxflow <reason>` marks audited exceptions — e.g. a
// tight O(starts) dedup loop whose full run is cheaper than a poll.
var CtxFlow = &Analyzer{
	Name: CtxFlowName,
	Doc: "ctx-taking functions must poll or propagate their context on " +
		"every outermost loop back-edge, and must not call a non-ctx " +
		"function when a Ctx variant exists",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	fc := newFlowCache(pass)
	for _, fi := range pass.Graph.Funcs {
		if !fi.TakesCtx || pass.InTestFile(fi.Decl.Pos()) {
			continue
		}
		checkCtxLoops(pass, fc, fi)
		checkCtxVariantCalls(pass, fi)
	}
	return nil
}

// checkCtxLoops applies Rule 1 to one function.
func checkCtxLoops(pass *Pass, fc *flowCache, fi *FuncInfo) {
	sig, _ := fi.Obj.Type().(*types.Signature)
	ff := fc.flowFor(fi.Decl.Body, sig)
	edges := ff.backEdges()
	if len(edges) == 0 {
		return
	}
	ctxVars := ctxDerivedVars(pass, ff, fi)

	// Collect each back-edge's natural-loop span, widened to the full
	// enclosing AST loop statement when one exists (so for-post statements
	// and range expressions count as part of the loop).
	type loopInfo struct {
		lo, hi token.Pos
		report token.Pos
		stmt   ast.Stmt // enclosing for/range statement; nil for goto loops
	}
	var loops []loopInfo
	for _, e := range edges {
		lo, hi, ok := ff.loopSpan(e[0], e[1])
		if !ok {
			continue // degenerate empty loop: nothing can poll, nothing runs
		}
		report := lo
		stmt := enclosingLoopStmt(fi.Decl.Body, lo, hi)
		if stmt != nil {
			lo, hi, report = stmt.Pos(), stmt.End(), stmt.Pos()
		}
		loops = append(loops, loopInfo{lo, hi, report, stmt})
	}

	// Outermost only: drop loops whose span sits inside another's.
	reported := make(map[token.Pos]bool)
	for i, l := range loops {
		inner := false
		for j, o := range loops {
			if i != j && o.lo <= l.lo && l.hi <= o.hi && (o.lo != l.lo || o.hi != l.hi || j < i) {
				inner = true
				break
			}
		}
		if inner || reported[l.report] {
			continue
		}
		reported[l.report] = true
		if spanMentionsVars(pass, fi.Decl.Body, l.lo, l.hi, ctxVars) {
			continue
		}
		if trivialLoop(pass, l.stmt) {
			continue
		}
		pass.Reportf(l.report,
			"loop in %s never polls or propagates its context on the back-edge; check ctx.Err() (or a ctx-derived gate) each iteration, or annotate //lint:allow ctxflow with why cancellation can lag here",
			fi.Display)
	}
}

// ctxDerivedVars returns the context parameters of fi plus every local
// variable whose definition mentions one (two hops), so a gate struct
// wrapping ctx — `gate := ctxGate{ctx: ctx}` — counts as the context.
func ctxDerivedVars(pass *Pass, ff *funcFlow, fi *FuncInfo) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	sig, _ := fi.Obj.Type().(*types.Signature)
	if sig == nil {
		return out
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if p := sig.Params().At(i); isCtxType(p.Type()) {
			out[p] = true
		}
	}
	for hop := 0; hop < 2; hop++ {
		for _, d := range ff.defs {
			if d.rhs == nil || out[d.v] {
				continue
			}
			if exprMentionsVars(pass, d.rhs, out) {
				out[d.v] = true
			}
		}
	}
	return out
}

// exprMentionsVars reports whether any identifier in e resolves to a
// variable in vars.
func exprMentionsVars(pass *Pass, e ast.Node, vars map[*types.Var]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && vars[v] {
				found = true
			}
		}
		return !found
	})
	return found
}

// spanMentionsVars reports whether body mentions one of vars inside
// [lo, hi].
func spanMentionsVars(pass *Pass, body ast.Node, lo, hi token.Pos, vars map[*types.Var]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if n.End() < lo || n.Pos() > hi {
			return false // subtree entirely outside the span
		}
		if id, ok := n.(*ast.Ident); ok && lo <= id.Pos() && id.End() <= hi {
			if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && vars[v] {
				found = true
			}
		}
		return !found
	})
	return found
}

// trivialLoop reports whether stmt is a bounded loop whose whole run is
// cheaper than a context poll: a range loop or a conditioned for whose
// body has no user-function calls, no nested loops, and no channel
// operations.  Such a loop is over in microseconds — cancellation cannot
// meaningfully lag behind it, so demanding a per-iteration poll (or an
// allow annotation) would only add noise.  stmt == nil (goto-formed
// loops) and `for {}` without a condition never qualify.
func trivialLoop(pass *Pass, stmt ast.Stmt) bool {
	var body *ast.BlockStmt
	switch s := stmt.(type) {
	case *ast.ForStmt:
		if s.Cond == nil {
			return false // for {}: unbounded, must poll
		}
		body = s.Body
	case *ast.RangeStmt:
		if t := pass.TypesInfo.TypeOf(s.X); t != nil {
			switch t.Underlying().(type) {
			case *types.Chan:
				return false // ranging over a channel blocks
			case *types.Signature:
				return false // range-over-func calls the iterator
			}
		}
		body = s.Body
	default:
		return false
	}
	trivial := true
	ast.Inspect(body, func(n ast.Node) bool {
		if !trivial {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.GoStmt, *ast.SendStmt:
			trivial = false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				trivial = false // channel receive blocks
			}
		case *ast.CallExpr:
			if !cheapCall(pass, n) {
				trivial = false
			}
		case *ast.FuncLit:
			return false // a declared-but-uncalled literal runs nothing here
		}
		return trivial
	})
	return trivial
}

// cheapCall reports whether call is a builtin, a type conversion, or a
// call into stdlib math/math/bits — per-iteration work measured in
// nanoseconds, which keeps the enclosing loop inside trivialLoop's
// microsecond budget.
func cheapCall(pass *Pass, call *ast.CallExpr) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		switch pass.TypesInfo.Uses[fun].(type) {
		case *types.Builtin, *types.TypeName:
			return true
		}
	case *ast.SelectorExpr:
		if f, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			if pkg := f.Pkg(); pkg != nil {
				switch pkg.Path() {
				case "math", "math/bits":
					return true
				}
			}
		}
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.FuncType,
		*ast.InterfaceType, *ast.StarExpr:
		return true // conversion to a composite type
	}
	return false
}

// enclosingLoopStmt returns the outermost for/range statement in body
// whose span contains [lo, hi], or nil for loops formed by goto alone.
func enclosingLoopStmt(body ast.Node, lo, hi token.Pos) ast.Stmt {
	var best ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if n.Pos() <= lo && hi <= n.End() {
				if best == nil || n.Pos() < best.Pos() || n.End() > best.End() {
					best = n.(ast.Stmt)
				}
			}
		}
		return true
	})
	return best
}

// checkCtxVariantCalls applies Rule 2 to one function.
func checkCtxVariantCalls(pass *Pass, fi *FuncInfo) {
	for _, c := range fi.Calls {
		if c.Callee == nil || c.Iface {
			continue
		}
		sig, _ := c.Callee.Type().(*types.Signature)
		if sigTakesCtx(sig) {
			continue // ctx already flows into the callee
		}
		variant := ""
		if c.Local != nil {
			if c.Local.Fact.CtxVariant != "" {
				variant = c.Local.Fact.CtxVariant
			}
		} else if fact, ok := pass.Graph.Imported.Lookup(FuncKey(c.Callee)); ok {
			variant = fact.CtxVariant
		}
		if variant == "" {
			continue
		}
		if variant == fi.Key {
			// The caller IS the callee's Ctx variant — the standard wrapper
			// shape (workCtx polls, then delegates to work).  The wrapper is
			// where polling is checked; the delegation is not a dropped ctx.
			continue
		}
		pass.Reportf(c.Pos,
			"%s holds a context but calls %s, which ignores it; call %s so the deadline propagates, or annotate //lint:allow ctxflow if the call is short-lived",
			fi.Display, displayKey(c.Callee), shortVariantName(variant))
	}
}

// shortVariantName trims the package path off a fact key, leaving
// pkgname-free "Name" or "(Recv).Name" plus the final path element for
// readability.
func shortVariantName(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		key = key[i+1:]
	}
	return key
}
