package lint

// This file is the dataflow substrate of the suite: a small intraprocedural
// control-flow graph over go/ast function bodies, with dominator sets and
// reaching definitions on top.  It deliberately trades precision for
// predictability — blocks are built per statement list, opaque definitions
// are injected wherever a variable could be written through an alias or a
// closure, and unsupported control flow degrades to extra edges rather
// than missing ones — because analyzers built on it (feasguard, dimcheck)
// must never crash on real code and should err toward *fewer* findings
// when the flow is unclear.

import (
	"go/ast"
	"go/token"
	"go/types"
	"math"
)

// A cfgBlock is a straight-line run of statements (and branch conditions)
// with edges to its possible successors.
type cfgBlock struct {
	index int
	// nodes holds statements and condition expressions in source order.
	nodes []ast.Node
	succs []int
}

// A cfg is the control-flow graph of one function body.  Block 0 is the
// entry; block 1 is the synthetic exit every return/panic feeds into.
type cfg struct {
	blocks []*cfgBlock
}

const (
	cfgEntry = 0
	cfgExit  = 1
)

// cfgBuilder carries the under-construction graph and the active
// break/continue/label targets.
type cfgBuilder struct {
	g    *cfg
	cur  *cfgBlock
	brk  []int // innermost-last break targets
	cont []int // innermost-last continue targets
	// labels maps a label name to its (break, continue) targets; continue
	// is −1 for non-loop labeled statements.
	labels map[string][2]int
	// gotos maps a label name to the entry block of its labeled statement.
	gotos map[string]int
	// pendingGotos are blocks that issued a goto before its label was built.
	pendingGotos map[string][]int
	// pendingLabel carries a label name between its LabeledStmt and the
	// loop statement it labels, so break/continue targets can bind.
	pendingLabel string
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *cfg {
	g := &cfg{}
	b := &cfgBuilder{
		g:            g,
		labels:       make(map[string][2]int),
		gotos:        make(map[string]int),
		pendingGotos: make(map[string][]int),
	}
	entry := b.newBlock() // 0
	b.newBlock()          // 1: exit
	b.cur = entry
	b.stmtList(body.List)
	b.edge(b.cur.index, cfgExit)
	// Resolve gotos whose labels appeared later in the source.
	for name, froms := range b.pendingGotos {
		if to, ok := b.gotos[name]; ok {
			for _, f := range froms {
				b.edge(f, to)
			}
		} // unknown label: cannot happen in type-checked code
	}
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to int) {
	blk := b.g.blocks[from]
	for _, s := range blk.succs {
		if s == to {
			return
		}
	}
	blk.succs = append(blk.succs, to)
}

// startBlock begins a fresh block reachable from the current one.
func (b *cfgBuilder) startBlock() *cfgBlock {
	nb := b.newBlock()
	b.edge(b.cur.index, nb.index)
	b.cur = nb
	return nb
}

// deadBlock begins a fresh unreachable block (after return/panic/branch).
func (b *cfgBuilder) deadBlock() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.ReturnStmt:
		b.cur.nodes = append(b.cur.nodes, s)
		b.edge(b.cur.index, cfgExit)
		b.deadBlock()
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.cur.nodes = append(b.cur.nodes, s.Tag)
		}
		b.caseClauses(s.Body, true)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.nodes = append(b.cur.nodes, s.Assign)
		b.caseClauses(s.Body, false)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	default:
		// Straight-line statement (assignment, declaration, call, send,
		// go, defer, incdec, empty).
		b.cur.nodes = append(b.cur.nodes, s)
		if isTerminatingStmt(s) {
			b.edge(b.cur.index, cfgExit)
			b.deadBlock()
		}
	}
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	b.cur.nodes = append(b.cur.nodes, s)
	switch s.Tok {
	case token.BREAK:
		to := -1
		if s.Label != nil {
			to = b.labels[s.Label.Name][0]
		} else if len(b.brk) > 0 {
			to = b.brk[len(b.brk)-1]
		}
		if to >= 0 {
			b.edge(b.cur.index, to)
		}
		b.deadBlock()
	case token.CONTINUE:
		to := -1
		if s.Label != nil {
			to = b.labels[s.Label.Name][1]
		} else if len(b.cont) > 0 {
			to = b.cont[len(b.cont)-1]
		}
		if to >= 0 {
			b.edge(b.cur.index, to)
		}
		b.deadBlock()
	case token.GOTO:
		if s.Label != nil {
			if to, ok := b.gotos[s.Label.Name]; ok {
				b.edge(b.cur.index, to)
			} else {
				b.pendingGotos[s.Label.Name] = append(b.pendingGotos[s.Label.Name], b.cur.index)
			}
		}
		b.deadBlock()
	case token.FALLTHROUGH:
		// Handled structurally by caseClauses; nothing to do here.
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.cur.nodes = append(b.cur.nodes, s.Cond)
	condIdx := b.cur.index

	after := b.newBlock()

	thenBlk := b.newBlock()
	b.edge(condIdx, thenBlk.index)
	b.cur = thenBlk
	b.stmtList(s.Body.List)
	b.edge(b.cur.index, after.index)

	if s.Else != nil {
		elseBlk := b.newBlock()
		b.edge(condIdx, elseBlk.index)
		b.cur = elseBlk
		b.stmt(s.Else)
		b.edge(b.cur.index, after.index)
	} else {
		b.edge(condIdx, after.index)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.startBlock()
	if s.Cond != nil {
		head.nodes = append(head.nodes, s.Cond)
	}
	after := b.newBlock()
	if s.Cond != nil {
		b.edge(head.index, after.index)
	}

	// continue re-evaluates Post then the condition; model Post in a block
	// of its own so defs in it reach the head.
	post := head.index
	var postBlk *cfgBlock
	if s.Post != nil {
		postBlk = b.newBlock()
		post = postBlk.index
	}

	body := b.newBlock()
	b.edge(head.index, body.index)
	b.cur = body
	b.brk = append(b.brk, after.index)
	b.cont = append(b.cont, post)
	b.registerLoopLabel(s, after.index, post)
	b.stmtList(s.Body.List)
	b.brk = b.brk[:len(b.brk)-1]
	b.cont = b.cont[:len(b.cont)-1]

	if postBlk != nil {
		b.edge(b.cur.index, postBlk.index)
		b.cur = postBlk
		b.stmt(s.Post)
		b.edge(b.cur.index, head.index)
	} else {
		b.edge(b.cur.index, head.index)
	}
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	head := b.startBlock()
	// The RangeStmt node itself carries X and the key/value definitions.
	head.nodes = append(head.nodes, s)
	after := b.newBlock()
	b.edge(head.index, after.index)

	body := b.newBlock()
	b.edge(head.index, body.index)
	b.cur = body
	b.brk = append(b.brk, after.index)
	b.cont = append(b.cont, head.index)
	b.registerLoopLabel(s, after.index, head.index)
	b.stmtList(s.Body.List)
	b.brk = b.brk[:len(b.brk)-1]
	b.cont = b.cont[:len(b.cont)-1]
	b.edge(b.cur.index, head.index)
	b.cur = after
}

// caseClauses builds switch/type-switch clause bodies.  withFallthrough
// wires each clause's end to the next clause's entry when the body ends in
// a fallthrough statement.
func (b *cfgBuilder) caseClauses(body *ast.BlockStmt, withFallthrough bool) {
	condIdx := b.cur.index
	after := b.newBlock()
	b.brk = append(b.brk, after.index)

	// Pre-create every clause entry so fallthrough edges can be added.
	var clauses []*ast.CaseClause
	var entries []*cfgBlock
	hasDefault := false
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		clauses = append(clauses, cc)
		entries = append(entries, b.newBlock())
		if cc.List == nil {
			hasDefault = true
		}
	}
	for i, cc := range clauses {
		b.edge(condIdx, entries[i].index)
		b.cur = entries[i]
		for _, e := range cc.List {
			b.cur.nodes = append(b.cur.nodes, e)
		}
		b.stmtList(cc.Body)
		if withFallthrough && endsInFallthrough(cc.Body) && i+1 < len(entries) {
			b.edge(b.cur.index, entries[i+1].index)
		} else {
			b.edge(b.cur.index, after.index)
		}
	}
	if !hasDefault {
		b.edge(condIdx, after.index)
	}
	b.brk = b.brk[:len(b.brk)-1]
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	condIdx := b.cur.index
	after := b.newBlock()
	b.brk = append(b.brk, after.index)
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.edge(condIdx, blk.index)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur.index, after.index)
	}
	b.brk = b.brk[:len(b.brk)-1]
	b.cur = after
}

// labeledStmt registers the label and builds its statement.  For labeled
// loops the loop builder fills in break/continue targets via
// registerLoopLabel; for other statements only goto targets matter.
func (b *cfgBuilder) labeledStmt(s *ast.LabeledStmt) {
	entry := b.startBlock()
	b.gotos[s.Label.Name] = entry.index
	b.pendingLabel = s.Label.Name
	b.stmt(s.Stmt)
	b.pendingLabel = ""
}

// registerLoopLabel binds the innermost pending label (if any) to the
// loop's break/continue targets.
func (b *cfgBuilder) registerLoopLabel(_ ast.Stmt, brk, cont int) {
	if b.pendingLabel != "" {
		b.labels[b.pendingLabel] = [2]int{brk, cont}
		b.pendingLabel = ""
	}
}

// endsInFallthrough reports whether a case body's last statement is
// fallthrough.
func endsInFallthrough(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	br, ok := list[len(list)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// isTerminatingStmt recognizes statements that never fall through: panic
// and the conventional process-exit helpers.
func isTerminatingStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		name := fn.Sel.Name
		return name == "Exit" || name == "Fatal" || name == "Fatalf" || name == "Fatalln"
	}
	return false
}

// ---- dominators ---------------------------------------------------------

// dominators returns, for every block, the set of blocks that dominate it
// (including itself), as bitsets indexed by block.  Unreachable blocks
// report the full set, which makes every guard appear to dominate them —
// dead code never produces findings.
func (g *cfg) dominators() []bitset {
	n := len(g.blocks)
	preds := make([][]int, n)
	for _, blk := range g.blocks {
		for _, s := range blk.succs {
			preds[s] = append(preds[s], blk.index)
		}
	}
	dom := make([]bitset, n)
	full := newBitset(n)
	for i := 0; i < n; i++ {
		full.set(i)
	}
	for i := range dom {
		if i == cfgEntry {
			dom[i] = newBitset(n)
			dom[i].set(cfgEntry)
		} else {
			dom[i] = full.clone()
		}
	}
	changed := true
	for changed {
		changed = false
		for i := 0; i < n; i++ {
			if i == cfgEntry {
				continue
			}
			var nw bitset
			first := true
			for _, p := range preds[i] {
				if first {
					nw = dom[p].clone()
					first = false
				} else {
					nw.intersect(dom[p])
				}
			}
			if first { // unreachable: keep full set
				continue
			}
			nw.set(i)
			if !nw.equal(dom[i]) {
				dom[i] = nw
				changed = true
			}
		}
	}
	return dom
}

// backEdges returns the CFG edges that close loops: edges whose target
// dominates their source.  Every loop a Go function can form — for/range
// statements, labeled continue, and backward goto — produces exactly such
// an edge, which is why the cancellation analyzer keys off this rather
// than off loop syntax.  Unreachable blocks are excluded: they carry the
// full dominator set by construction (see dominators), which would make
// every dead edge look like a loop.
func (g *cfg) backEdges(dom []bitset) [][2]int {
	reach := g.reachable()
	var out [][2]int
	for _, blk := range g.blocks {
		if !reach[blk.index] {
			continue
		}
		for _, s := range blk.succs {
			if s < len(dom) && dom[blk.index].has(s) {
				out = append(out, [2]int{blk.index, s})
			}
		}
	}
	return out
}

// reachable marks the blocks reachable from entry.
func (g *cfg) reachable() []bool {
	reach := make([]bool, len(g.blocks))
	stack := []int{cfgEntry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reach[b] {
			continue
		}
		reach[b] = true
		stack = append(stack, g.blocks[b].succs...)
	}
	return reach
}

// naturalLoop returns the block set of the natural loop of back-edge
// (from, to): to itself plus every block that reaches from without passing
// through to.
func (g *cfg) naturalLoop(from, to int) []int {
	preds := make([][]int, len(g.blocks))
	for _, blk := range g.blocks {
		for _, s := range blk.succs {
			preds[s] = append(preds[s], blk.index)
		}
	}
	in := make([]bool, len(g.blocks))
	in[to] = true
	stack := []int{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if in[b] {
			continue
		}
		in[b] = true
		stack = append(stack, preds[b]...)
	}
	var out []int
	for b, ok := range in {
		if ok {
			out = append(out, b)
		}
	}
	return out
}

// backEdges exposes the CFG back-edges of this function's flow facts.
func (ff *funcFlow) backEdges() [][2]int { return ff.cfg.backEdges(ff.dom) }

// loopSpan returns the source span covered by the natural loop of one
// back-edge: the positions of every statement and condition in the loop's
// blocks.  ok is false when the loop's blocks carry no nodes at all (a
// degenerate `for {}`).
func (ff *funcFlow) loopSpan(from, to int) (lo, hi token.Pos, ok bool) {
	for _, b := range ff.cfg.naturalLoop(from, to) {
		for _, n := range ff.cfg.blocks[b].nodes {
			if !ok || n.Pos() < lo {
				lo = n.Pos()
			}
			if !ok || n.End() > hi {
				hi = n.End()
			}
			ok = true
		}
	}
	return lo, hi, ok
}

// bitset is a fixed-size bit vector over block or definition indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

func (b bitset) clone() bitset {
	out := make(bitset, len(b))
	copy(out, b)
	return out
}

func (b bitset) intersect(o bitset) {
	for i := range b {
		b[i] &= o[i]
	}
}

func (b bitset) union(o bitset) bool {
	changed := false
	for i := range b {
		n := b[i] | o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// ---- reaching definitions ----------------------------------------------

// A vdef is one definition of a variable: an explicit assignment with its
// right-hand side, or an opaque definition (parameter, range variable,
// aliased or closure write) with rhs nil.
type vdef struct {
	v   *types.Var
	rhs ast.Expr // nil when the defined value is opaque
	// block and ord locate the definition for the dataflow solve; idx is
	// the definition's position in funcFlow.defs.
	block int
	ord   int
	idx   int
	pos   token.Pos
}

// funcFlow bundles the CFG, dominators, and reaching definitions of one
// function (or function literal) body.
type funcFlow struct {
	pass *Pass
	cfg  *cfg
	dom  []bitset

	defs []*vdef
	// defsOf indexes definitions by variable.
	defsOf map[*types.Var][]*vdef
	// in[b] is the set of definition indices reaching the start of block b.
	in []bitset
	// blockSpan locates each block's recorded nodes for blockFor lookups.
	nodeBlocks []nodeBlock
}

type nodeBlock struct {
	node  ast.Node
	block int
	ord   int
}

// newFuncFlow builds the flow facts for one function body.  typ is the
// function's signature (for parameter definitions); it may be nil.
func newFuncFlow(pass *Pass, body *ast.BlockStmt, sig *types.Signature) *funcFlow {
	ff := &funcFlow{
		pass:   pass,
		cfg:    buildCFG(body),
		defsOf: make(map[*types.Var][]*vdef),
	}
	ff.dom = ff.cfg.dominators()

	// Parameters and named results are opaque entry definitions.
	if sig != nil {
		for i := 0; i < sig.Params().Len(); i++ {
			ff.addDef(sig.Params().At(i), nil, cfgEntry, -1, sig.Params().At(i).Pos())
		}
		if recv := sig.Recv(); recv != nil {
			ff.addDef(recv, nil, cfgEntry, -1, recv.Pos())
		}
		for i := 0; i < sig.Results().Len(); i++ {
			ff.addDef(sig.Results().At(i), nil, cfgEntry, -1, sig.Results().At(i).Pos())
		}
	}

	// Collect definitions per block node.
	for _, blk := range ff.cfg.blocks {
		for ord, n := range blk.nodes {
			ff.nodeBlocks = append(ff.nodeBlocks, nodeBlock{n, blk.index, ord})
			ff.collectDefs(n, blk.index, ord)
		}
	}
	ff.solve()
	return ff
}

// objVar resolves an identifier to its variable object, if any.
func (ff *funcFlow) objVar(id *ast.Ident) *types.Var {
	if obj := ff.pass.TypesInfo.Defs[id]; obj != nil {
		v, _ := obj.(*types.Var)
		return v
	}
	if obj := ff.pass.TypesInfo.Uses[id]; obj != nil {
		v, _ := obj.(*types.Var)
		return v
	}
	return nil
}

func (ff *funcFlow) addDef(v *types.Var, rhs ast.Expr, block, ord int, pos token.Pos) {
	if v == nil {
		return
	}
	d := &vdef{v: v, rhs: rhs, block: block, ord: ord, idx: len(ff.defs), pos: pos}
	ff.defs = append(ff.defs, d)
	ff.defsOf[v] = append(ff.defsOf[v], d)
}

// collectDefs records the definitions made by one block node, including
// opaque ones for address-taken variables and closure writes.
func (ff *funcFlow) collectDefs(n ast.Node, block, ord int) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue // field/index writes are not tracked per-variable
			}
			var rhs ast.Expr
			if len(n.Rhs) == len(n.Lhs) {
				rhs = n.Rhs[i]
			}
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				// Compound assignment (+=, -=, …): value derives from the
				// variable itself as well; keep the RHS for dimension
				// purposes, the variable's own type covers the rest.
				rhs = n.Rhs[0]
			}
			ff.addDef(ff.objVar(id), rhs, block, ord, id.Pos())
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				var rhs ast.Expr
				if len(vs.Values) == len(vs.Names) {
					rhs = vs.Values[i]
				}
				ff.addDef(ff.objVar(name), rhs, block, ord, name.Pos())
			}
		}
	case *ast.IncDecStmt:
		if id, ok := n.X.(*ast.Ident); ok {
			ff.addDef(ff.objVar(id), n.X, block, ord, id.Pos())
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				ff.addDef(ff.objVar(id), nil, block, ord, id.Pos())
			}
		}
	case *ast.TypeSwitchStmt:
		// Handled via its Assign statement node.
	}
	// Opaque definitions: &x anywhere in the node makes x writable through
	// the pointer; a FuncLit writing x may run at any later point.  Model
	// both as an opaque def here.
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.UnaryExpr:
			if m.Op == token.AND {
				if id, ok := m.X.(*ast.Ident); ok {
					ff.addDef(ff.objVar(id), nil, block, ord, id.Pos())
				}
			}
		case *ast.FuncLit:
			for _, id := range assignedIdents(m.Body) {
				if v := ff.objVar(id); v != nil && v.Pos() < m.Pos() {
					ff.addDef(v, nil, block, ord, id.Pos())
				}
			}
			return false
		}
		return true
	})
}

// assignedIdents lists identifiers assigned (or inc/dec'd) anywhere in n.
func assignedIdents(n ast.Node) []*ast.Ident {
	var out []*ast.Ident
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					out = append(out, id)
				}
			}
		case *ast.IncDecStmt:
			if id, ok := m.X.(*ast.Ident); ok {
				out = append(out, id)
			}
		}
		return true
	})
	return out
}

// solve runs the classic iterative reaching-definitions dataflow.
func (ff *funcFlow) solve() {
	n := len(ff.cfg.blocks)
	nd := len(ff.defs)
	gen := make([]bitset, n)
	kill := make([]bitset, n)
	for i := range gen {
		gen[i] = newBitset(nd)
		kill[i] = newBitset(nd)
	}
	// Last definition of each variable per block generates; every
	// definition of the same variable elsewhere is killed.
	for bi := range ff.cfg.blocks {
		last := make(map[*types.Var]*vdef)
		for _, d := range ff.defs {
			if d.block == bi {
				if prev, ok := last[d.v]; !ok || prev.ord <= d.ord {
					last[d.v] = d
				}
			}
		}
		for v, d := range last {
			gen[bi].set(d.idx)
			for _, other := range ff.defsOf[v] {
				if other.idx != d.idx {
					kill[bi].set(other.idx)
				}
			}
		}
	}
	preds := make([][]int, n)
	for _, blk := range ff.cfg.blocks {
		for _, s := range blk.succs {
			preds[s] = append(preds[s], blk.index)
		}
	}
	ff.in = make([]bitset, n)
	out := make([]bitset, n)
	for i := range ff.in {
		ff.in[i] = newBitset(nd)
		out[i] = newBitset(nd)
	}
	// Entry's opaque parameter defs live in block 0's gen set already
	// (they were added with block = cfgEntry, ord = −1).
	changed := true
	for changed {
		changed = false
		for bi := range ff.cfg.blocks {
			// in[b] = ∪ out[p] over predecessors
			for _, p := range preds[bi] {
				if ff.in[bi].union(out[p]) {
					changed = true
				}
			}
			// out[b] = gen[b] ∪ (in[b] − kill[b])
			nw := gen[bi].clone()
			for i := range nw {
				nw[i] |= ff.in[bi][i] &^ kill[bi][i]
			}
			if !nw.equal(out[bi]) {
				out[bi] = nw
				changed = true
			}
		}
	}
}

// blockFor returns the innermost recorded node containing pos and its
// block, or (-1, -1, nil) when the position is not in any block (e.g. a
// type declaration).
func (ff *funcFlow) blockFor(pos token.Pos) (block, ord int, node ast.Node) {
	block, ord = -1, -1
	best := math.MaxInt64
	for _, nb := range ff.nodeBlocks {
		if nb.node.Pos() <= pos && pos <= nb.node.End() {
			if span := int(nb.node.End() - nb.node.Pos()); span < best {
				best = span
				block, ord, node = nb.block, nb.ord, nb.node
			}
		}
	}
	return block, ord, node
}

// reachingDefs returns the definitions of v that can reach the use at pos:
// the block-entry set adjusted for definitions earlier in the same block.
func (ff *funcFlow) reachingDefs(v *types.Var, pos token.Pos) []*vdef {
	block, ord, _ := ff.blockFor(pos)
	if block < 0 {
		return ff.defsOf[v] // unknown position: be conservative
	}
	// A definition in the same block before (or at) the use shadows all
	// earlier ones.
	var local *vdef
	for _, d := range ff.defsOf[v] {
		if d.block == block && d.ord <= ord {
			if local == nil || d.ord > local.ord {
				local = d
			}
		}
	}
	if local != nil {
		return []*vdef{local}
	}
	var out []*vdef
	for di, d := range ff.defs {
		if d.v == v && ff.in[block].has(di) {
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		return ff.defsOf[v] // degraded flow: fall back to all defs
	}
	return out
}

// dominatorNodes returns the nodes of every block dominating the given
// position's block, plus the nodes of the block itself up to (and
// including) the use's own statement, in arbitrary order.  This is what
// guard searches scan.
func (ff *funcFlow) dominatorNodes(pos token.Pos) []ast.Node {
	block, ord, _ := ff.blockFor(pos)
	if block < 0 || block >= len(ff.dom) {
		return nil
	}
	var out []ast.Node
	for bi, blk := range ff.cfg.blocks {
		if bi == block || !ff.dom[block].has(bi) {
			continue
		}
		out = append(out, blk.nodes...)
	}
	for i, n := range ff.cfg.blocks[block].nodes {
		if i <= ord {
			out = append(out, n)
		}
	}
	return out
}

// ---- lock-held lattice --------------------------------------------------
//
// A forward must-analysis over the CFG: at each program point, the set of
// locks provably held on *every* path from the function entry.  The join is
// set intersection (a lock is held only when all incoming paths hold it),
// acquisitions strengthen the state, releases clear it, and `defer
// mu.Unlock()` is ignored deliberately — a deferred release runs at return,
// so the lock stays held for the rest of the body.  Locks are identified by
// the printed receiver path of the Lock/Unlock call ("s.mu"): two
// syntactically equal paths are assumed to name the same lock, and paths
// the printer cannot canonicalize (index expressions, call results) are not
// tracked at all.  Methods are matched by name (Lock/RLock/TryLock/…), not
// by receiver type, so sync.Mutex, sync.RWMutex, and any sync.Locker-shaped
// type all participate.  Untracked paths follow the file's rule of erring
// toward fewer findings: the analyzers built on the lattice (guardedby)
// only consult it where the guard and the access share a tracked path.

// lockKind orders acquisition strength: a shared RLock licenses reads of
// guarded state, an exclusive Lock licenses writes too.
type lockKind uint8

const (
	lockHeldR lockKind = 1 + iota // shared (RLock)
	lockHeldW                     // exclusive (Lock)
)

// lockState maps canonical lock paths to the strongest kind held on all
// paths.  A nil map is the unreached (top) element; an empty map means
// "reached, nothing held".
type lockState map[string]lockKind

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// lockOp classifies what a mutex-method call does to the lattice.
type lockOp uint8

const (
	lockOpNone lockOp = iota
	lockOpAcquireW
	lockOpAcquireR
	lockOpRelease  // Unlock
	lockOpReleaseR // RUnlock
	lockOpTryW     // TryLock: acquires only on the true branch
	lockOpTryR     // TryRLock
)

// lockPath renders the receiver of a mutex-method call as a canonical
// textual path.  Only parenthesized identifier/selector chains qualify;
// anything else ("locks[i]", "getMu()") returns "" and is left untracked.
func lockPath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := lockPath(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	case *ast.ParenExpr:
		return lockPath(e.X)
	}
	return ""
}

// classifyLockCall recognizes zero-argument mutex-method calls by name.
func classifyLockCall(call *ast.CallExpr) (path string, op lockOp) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return "", lockOpNone
	}
	switch sel.Sel.Name {
	case "Lock":
		op = lockOpAcquireW
	case "RLock":
		op = lockOpAcquireR
	case "Unlock":
		op = lockOpRelease
	case "RUnlock":
		op = lockOpReleaseR
	case "TryLock":
		op = lockOpTryW
	case "TryRLock":
		op = lockOpTryR
	default:
		return "", lockOpNone
	}
	path = lockPath(sel.X)
	if path == "" {
		return "", lockOpNone
	}
	return path, op
}

// lockTransfer applies every lock operation inside node n to state, in
// source order.  until (when valid) stops before operations that end at or
// after it, so heldAt can evaluate mid-node.  Deferred statements are
// skipped (a deferred Unlock runs at return — the lock stays held here) and
// so are function literals (their bodies execute elsewhere; guardedby
// analyzes them as separate units).
func lockTransfer(state lockState, n ast.Node, until token.Pos) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if until.IsValid() && m.End() > until {
				return true
			}
			path, op := classifyLockCall(m)
			switch op {
			case lockOpAcquireW:
				state[path] = lockHeldW
			case lockOpAcquireR:
				if state[path] < lockHeldR {
					state[path] = lockHeldR
				}
			case lockOpRelease, lockOpReleaseR:
				delete(state, path)
			}
			// Try acquisitions act on branch edges (edgeAdd), not here.
		}
		return true
	})
}

// lockFlow is the solved lattice of one function body.
type lockFlow struct {
	ff *funcFlow
	// in[b] is the must-held set at block b's entry; nil marks unreached.
	in []lockState
	// edgeAdd refines TryLock: locks acquired only along one CFG edge.
	edgeAdd map[[2]int]lockState
}

// newLockFlow solves the lattice.  seed lists locks held on entry (from a
// //lint:locked annotation); nil means none.
func newLockFlow(ff *funcFlow, body *ast.BlockStmt, seed lockState) *lockFlow {
	lf := &lockFlow{ff: ff, edgeAdd: make(map[[2]int]lockState)}
	lf.collectTryBranches(body)
	lf.in = make([]lockState, len(ff.cfg.blocks))
	lf.in[cfgEntry] = seed.clone()
	for changed := true; changed; {
		changed = false
		for bi, blk := range ff.cfg.blocks {
			if lf.in[bi] == nil {
				continue
			}
			out := lf.in[bi].clone()
			for _, n := range blk.nodes {
				lockTransfer(out, n, token.NoPos)
			}
			for _, s := range blk.succs {
				eff := out
				if add := lf.edgeAdd[[2]int{bi, s}]; len(add) > 0 {
					eff = out.clone()
					for k, v := range add {
						if eff[k] < v {
							eff[k] = v
						}
					}
				}
				if lf.meetInto(s, eff) {
					changed = true
				}
			}
		}
	}
	return lf
}

// meetInto folds an incoming edge state into block b's entry state and
// reports whether it changed.  After the first visit the state can only
// shrink or weaken, so the fixpoint terminates.
func (lf *lockFlow) meetInto(b int, incoming lockState) bool {
	cur := lf.in[b]
	if cur == nil {
		lf.in[b] = incoming.clone()
		return true
	}
	changed := false
	for k, v := range cur {
		w, ok := incoming[k]
		if !ok {
			delete(cur, k)
			changed = true
		} else if w < v {
			cur[k] = w
			changed = true
		}
	}
	return changed
}

// collectTryBranches records the conditional acquisitions of
// `if mu.TryLock() { … }` (held only on the then-edge) and
// `if !mu.TryLock() { … }` (held on every edge but the then-edge).  The
// then-entry is identified as the condition block's first successor, which
// the if-builder guarantees (it wires the then-edge before any other edge
// out of the condition block).
func (lf *lockFlow) collectTryBranches(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return false
		case *ast.IfStmt:
			lf.tryBranch(n)
		}
		return true
	})
}

func (lf *lockFlow) tryBranch(s *ast.IfStmt) {
	cond := unparen(s.Cond)
	negated := false
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		cond, negated = unparen(u.X), true
	}
	call, ok := cond.(*ast.CallExpr)
	if !ok {
		return
	}
	path, op := classifyLockCall(call)
	var kind lockKind
	switch op {
	case lockOpTryW:
		kind = lockHeldW
	case lockOpTryR:
		kind = lockHeldR
	default:
		return
	}
	condBlk, _, _ := lf.ff.blockFor(s.Cond.Pos())
	if condBlk < 0 {
		return
	}
	succs := lf.ff.cfg.blocks[condBlk].succs
	if len(succs) == 0 {
		return
	}
	add := func(from, to int) {
		key := [2]int{from, to}
		st := lf.edgeAdd[key]
		if st == nil {
			st = lockState{}
			lf.edgeAdd[key] = st
		}
		if st[path] < kind {
			st[path] = kind
		}
	}
	if negated {
		for _, s := range succs[1:] {
			add(condBlk, s)
		}
	} else {
		add(condBlk, succs[0])
	}
}

// heldAt returns the lock set provably held just before pos.  reached is
// false when the position is in unreachable code or outside every recorded
// block — callers skip those uses, so dead code never produces findings.
func (lf *lockFlow) heldAt(pos token.Pos) (held lockState, reached bool) {
	block, ord, _ := lf.ff.blockFor(pos)
	if block < 0 || lf.in[block] == nil {
		return nil, false
	}
	state := lf.in[block].clone()
	for i, n := range lf.ff.cfg.blocks[block].nodes {
		if i > ord {
			break
		}
		if i < ord {
			lockTransfer(state, n, token.NoPos)
		} else {
			lockTransfer(state, n, pos)
		}
	}
	return state, true
}

// flowCache builds funcFlows lazily per function body so several analyzers
// share the work within one pass… pass instances are per-analyzer, so the
// cache lives on the package level of each Run call instead.
type flowCache struct {
	pass  *Pass
	flows map[*ast.BlockStmt]*funcFlow
}

func newFlowCache(pass *Pass) *flowCache {
	return &flowCache{pass: pass, flows: make(map[*ast.BlockStmt]*funcFlow)}
}

// flowFor returns the funcFlow for a function declaration or literal.
func (fc *flowCache) flowFor(body *ast.BlockStmt, sig *types.Signature) *funcFlow {
	if ff, ok := fc.flows[body]; ok {
		return ff
	}
	ff := newFuncFlow(fc.pass, body, sig)
	fc.flows[body] = ff
	return ff
}
