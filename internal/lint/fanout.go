package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// FanoutName is the analyzer's registered name (and //lint:allow token).
const FanoutName = "fanout"

// parallelPath is the one package allowed to spawn goroutines freely: its
// order-preserving worker pool is the sanctioned fan-out mechanism, and the
// byte-identical-output contract of the experiment suite rests on every
// other spawn being part of a small audited inventory.
const parallelPath = "greednet/internal/parallel"

// Fanout keeps the goroutine inventory of the tree closed: every go
// statement must live in internal/parallel (the worker pool), carry a
// `//lint:fanout <role> <why>` annotation admitting it to the audited
// inventory (the per-experiment deadline watchdogs are the canonical
// role), or be flagged.  An annotation that whitelists nothing is itself
// flagged, the same janitor rule //lint:allow lives under — dead
// annotations must not outlive their go statements.  Test files are
// exempt: tests may spawn helpers freely.
//
// parsafe checks that a spawn's captures are race-free; fanout checks that
// the spawn is *supposed to exist at all*.  The two together are what lets
// the golden tests trust byte-identical output under any worker count.
var Fanout = &Analyzer{
	Name: FanoutName,
	Doc: "go statements are only allowed in internal/parallel's worker " +
		"pool or under an audited //lint:fanout <role> <why> annotation; " +
		"stale fanout annotations are flagged too",
	Run: runFanout,
}

// fanoutEntry is one parsed //lint:fanout directive.
type fanoutEntry struct {
	role   string
	reason string
	file   string
	pos    token.Pos
	used   bool
}

func runFanout(pass *Pass) error {
	if pass.Pkg != nil && pass.Pkg.Path() == parallelPath {
		return nil // the sanctioned pool itself
	}
	// Index directives by file and covered line, mirroring //lint:allow: a
	// directive covers its own line, and the following line when it stands
	// alone.
	byLine := make(map[string]map[int][]*fanoutEntry)
	var entries []*fanoutEntry
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, FanoutDirective) {
					continue
				}
				rest := strings.TrimPrefix(text, FanoutDirective)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue
				}
				fields := strings.Fields(rest)
				p := pass.Fset.Position(c.Pos())
				e := &fanoutEntry{file: p.Filename, pos: c.Pos()}
				if len(fields) > 0 {
					e.role = fields[0]
					e.reason = strings.Join(fields[1:], " ")
				}
				if byLine[e.file] == nil {
					byLine[e.file] = make(map[int][]*fanoutEntry)
				}
				byLine[e.file][p.Line] = append(byLine[e.file][p.Line], e)
				if p.Column == 1 || onlyCommentOnLine(pass.Fset, f, c) {
					byLine[e.file][p.Line+1] = append(byLine[e.file][p.Line+1], e)
				}
				entries = append(entries, e)
			}
		}
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			p := pass.Fset.Position(g.Pos())
			var covering *fanoutEntry
			for _, e := range byLine[p.Filename][p.Line] {
				covering = e
				break
			}
			switch {
			case covering == nil:
				pass.Reportf(g.Pos(),
					"go statement outside internal/parallel; route fan-out through the worker pool (parallel.MapOrdered and friends) or, if this spawn belongs in the audited goroutine inventory, annotate it //lint:fanout <role> <why>")
			case covering.role == "" || covering.reason == "":
				covering.used = true
				pass.Reportf(g.Pos(),
					"//lint:fanout needs a role and a justification (e.g. //lint:fanout watchdog abandons a hung experiment); bare annotations are not an audit")
			default:
				covering.used = true
			}
			return true
		})
	}
	// Janitor: a fanout annotation whose go statement is gone has rotted.
	for _, e := range entries {
		if !e.used {
			pass.Reportf(e.pos, "//lint:fanout whitelists no go statement on this line; delete the stale annotation")
		}
	}
	return nil
}
