// Package lint is greednet's in-tree static-analysis suite.  It enforces
// the numerical and simulation invariants the compiler cannot see:
//
//   - floateq: floating-point values must be compared through named
//     tolerance helpers (core.ApproxEq and friends), never with raw == / !=.
//   - rngsource: every stochastic component must draw from an explicitly
//     seeded stream constructed by internal/randdist, so the EXPERIMENTS.md
//     verdicts stay bit-for-bit reproducible.
//   - panicfree: library packages must return errors instead of panicking
//     on user input; panics are reserved for documented invariant helpers.
//   - errdrop: error return values must be handled (or explicitly
//     discarded with `_ =`), errcheck-style.
//
// The framework deliberately mirrors a small slice of the
// golang.org/x/tools/go/analysis API so the analyzers read like standard
// vet checks, but it is implemented entirely on the standard library
// (go/ast, go/token, go/types) because this repository builds offline with
// no third-party modules.  cmd/greedlint drives the suite either as a
// `go vet -vettool` unitchecker or standalone over `go list` output.
//
// Findings are suppressed line-by-line with an annotation comment:
//
//	x := a == b //lint:allow floateq exact sentinel comparison
//
// A whole-line `//lint:allow <analyzer> <reason>` comment suppresses
// findings on the next source line instead.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in
	// //lint:allow annotations.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects one package through the Pass and reports findings.
	Run func(*Pass) error
}

// A Pass provides one analyzer with a single type-checked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps positions for every file in the package.
	Fset *token.FileSet
	// Files are the parsed sources, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records types and uses for every expression.
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos falls in a _test.go file.  Some analyzers
// relax their rules for tests (tests may construct local RNGs directly, and
// may panic freely).
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// A Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer names the check that produced the finding.
	Analyzer string
	// Pos locates the finding.
	Pos token.Pos
	// Message describes the violation and the expected fix.
	Message string
}

// AllowDirective is the comment prefix that suppresses a finding.
const AllowDirective = "//lint:allow"

// suppressions maps file name → line → analyzer names allowed there.
type suppressions map[string]map[int]map[string]bool

// collectSuppressions scans every comment for //lint:allow directives.  A
// directive suppresses matching findings on its own line; a directive that
// is the only thing on its line also suppresses the following line, so
// annotations can sit above long statements.
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := make(suppressions)
	add := func(file string, line int, name string) {
		if sup[file] == nil {
			sup[file] = make(map[int]map[string]bool)
		}
		if sup[file][line] == nil {
			sup[file][line] = make(map[string]bool)
		}
		sup[file][line][name] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, AllowDirective) {
					continue
				}
				rest := strings.TrimPrefix(text, AllowDirective)
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				name := fields[0]
				pos := fset.Position(c.Pos())
				add(pos.Filename, pos.Line, name)
				if pos.Column == 1 || onlyCommentOnLine(fset, f, c) {
					add(pos.Filename, pos.Line+1, name)
				}
			}
		}
	}
	return sup
}

// onlyCommentOnLine reports whether comment c shares its line with no other
// syntax, i.e. it is a standalone annotation line.
func onlyCommentOnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	alone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !alone {
			return false
		}
		switch n.(type) {
		case *ast.CommentGroup, *ast.Comment:
			return false
		}
		start := fset.Position(n.Pos()).Line
		end := fset.Position(n.End()).Line
		if end < line || start > line {
			return false // entirely off the line; skip the subtree
		}
		if start == line || end == line {
			// One of the node's own tokens sits on the comment's line, so
			// the comment shares the line with real syntax.  A node that
			// merely spans the line (the enclosing function or block) does
			// not count — recurse to check its children instead.
			alone = false
			return false
		}
		return true
	})
	return alone
}

// suppressed reports whether d is covered by an annotation.
func (s suppressions) suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	byLine := s[pos.Filename]
	if byLine == nil {
		return false
	}
	names := byLine[pos.Line]
	return names[d.Analyzer] || names["all"]
}

// Run executes the analyzers over one type-checked package and returns the
// findings that survive //lint:allow suppression, sorted by position.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: analyzer %s: %w", a.Name, err)
		}
	}
	sup := collectSuppressions(fset, files)
	kept := diags[:0]
	for _, d := range diags {
		if !sup.suppressed(fset, d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := fset.Position(kept[i].Pos), fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return kept, nil
}

// All returns the full greedlint analyzer suite: the syntactic v1
// analyzers plus the dataflow-aware v2 set built on the CFG pass.
func All() []*Analyzer {
	return []*Analyzer{
		FloatEq, RNGSource, PanicFree, ErrDrop,
		FeasGuard, DetOrder, DimCheck, ParSafe,
	}
}

// ByName resolves a comma-separated analyzer list; an empty spec means all.
func ByName(spec string) ([]*Analyzer, error) {
	if strings.TrimSpace(spec) == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
