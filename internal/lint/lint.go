// Package lint is greednet's in-tree static-analysis suite.  It enforces
// the numerical and simulation invariants the compiler cannot see:
//
//   - floateq: floating-point values must be compared through named
//     tolerance helpers (core.ApproxEq and friends), never with raw == / !=.
//   - rngsource: every stochastic component must draw from an explicitly
//     seeded stream constructed by internal/randdist, so the EXPERIMENTS.md
//     verdicts stay bit-for-bit reproducible.
//   - panicfree: library packages must return errors instead of panicking
//     on user input; panics are reserved for documented invariant helpers.
//   - errdrop: error return values must be handled (or explicitly
//     discarded with `_ =`), errcheck-style.
//
// On top of the syntactic set sit the dataflow analyzers (feasguard,
// detorder, dimcheck, parsafe — built on the intraprocedural CFG in
// cfg.go), the interprocedural set (allocfree, ctxflow, wsalias — built on
// the module-wide approximate call graph in callgraph.go, whose
// per-function summaries travel between packages as facts), and the
// concurrency-contract set (guardedby, chanown, fanout — built on the
// lock-held lattice in cfg.go and the same call-graph facts).
//
// The framework deliberately mirrors a small slice of the
// golang.org/x/tools/go/analysis API so the analyzers read like standard
// vet checks, but it is implemented entirely on the standard library
// (go/ast, go/token, go/types) because this repository builds offline with
// no third-party modules.  cmd/greedlint drives the suite either as a
// `go vet -vettool` unitchecker or standalone over `go list` output.
//
// Findings are suppressed line-by-line with an annotation comment:
//
//	x := a == b //lint:allow floateq exact sentinel comparison
//
// A whole-line `//lint:allow <analyzer> <reason>` comment suppresses
// findings on the next source line instead.  An allow that suppresses
// nothing is itself reported (as staleallow), so annotations cannot
// outlive the code they were written for.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in
	// //lint:allow annotations.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects one package through the Pass and reports findings.
	Run func(*Pass) error
}

// A Pass provides one analyzer with a single type-checked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps positions for every file in the package.
	Fset *token.FileSet
	// Files are the parsed sources, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records types and uses for every expression.
	TypesInfo *types.Info
	// Graph is the package's call-graph substrate: local functions with
	// their call edges and allocation summaries, plus the imported facts
	// of every dependency (see callgraph.go).
	Graph *Graph

	sup   *suppressions
	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos falls in a _test.go file.  Some analyzers
// relax their rules for tests (tests may construct local RNGs directly, and
// may panic freely).
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// A Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer names the check that produced the finding.
	Analyzer string
	// Pos locates the finding.
	Pos token.Pos
	// Message describes the violation and the expected fix.
	Message string
}

// AllowDirective is the comment prefix that suppresses a finding.
const AllowDirective = "//lint:allow"

// HotpathDirective marks a function as a zero-allocation hot-path root:
// the function and everything statically reachable from it must not heap-
// allocate (see the allocfree analyzer).  It is written in the function's
// doc comment (or on the line directly above the declaration).
const HotpathDirective = "//lint:hotpath"

// GuardedByDirective marks a struct field as protected by a sibling mutex
// field: `//lint:guardedby mu` on (or above) the field declaration means
// the field may only be read while mu is at least read-locked and only be
// written while mu is exclusively locked (see the guardedby analyzer).
const GuardedByDirective = "//lint:guardedby"

// LockedDirective asserts a function's locking precondition:
// `//lint:locked mu` in the doc comment means every caller must hold mu
// exclusively around the call.  The lock lattice seeds the body with mu
// held (both bare and receiver-qualified), and the requirement is exported
// as a NeedsLocks fact so cross-package call sites are checked too.
const LockedDirective = "//lint:locked"

// ChanOwnerDirective declares the single function allowed to close a
// channel: `//lint:chanowner Run` on a channel-typed struct field or var
// declaration restricts close() of that channel to a function named Run
// (see the chanown analyzer).
const ChanOwnerDirective = "//lint:chanowner"

// FanoutDirective whitelists one go statement outside internal/parallel:
// `//lint:fanout <role> <why>` on (or above) the spawning line admits the
// goroutine into the audited inventory (see the fanout analyzer).  The
// canonical role in this tree is "watchdog".
const FanoutDirective = "//lint:fanout"

// StaleAllowName is the pseudo-analyzer name under which unused
// //lint:allow directives are reported.  It is a framework invariant, not
// a member of All(): it cannot be selected, and it cannot be suppressed.
const StaleAllowName = "staleallow"

// allowEntry is one parsed //lint:allow directive.
type allowEntry struct {
	name string // analyzer being allowed
	file string
	// lines are the source lines the directive covers: its own line, and
	// the following line when the comment stands alone.
	lines [2]int
	pos   token.Pos
	used  bool
}

// suppressions indexes the //lint:allow directives of one package.
type suppressions struct {
	entries []*allowEntry
	// byLine maps file name → line → directives covering that line.
	byLine map[string]map[int][]*allowEntry
}

// collectSuppressions scans every comment for //lint:allow directives.  A
// directive suppresses matching findings on its own line; a directive that
// is the only thing on its line also suppresses the following line, so
// annotations can sit above long statements.
func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	sup := &suppressions{byLine: make(map[string]map[int][]*allowEntry)}
	add := func(e *allowEntry, line int) {
		if sup.byLine[e.file] == nil {
			sup.byLine[e.file] = make(map[int][]*allowEntry)
		}
		sup.byLine[e.file][line] = append(sup.byLine[e.file][line], e)
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, AllowDirective) {
					continue
				}
				rest := strings.TrimPrefix(text, AllowDirective)
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				e := &allowEntry{
					name: fields[0],
					file: pos.Filename,
					pos:  c.Pos(),
				}
				e.lines[0] = pos.Line
				add(e, pos.Line)
				if pos.Column == 1 || onlyCommentOnLine(fset, f, c) {
					e.lines[1] = pos.Line + 1
					add(e, pos.Line+1)
				}
				sup.entries = append(sup.entries, e)
			}
		}
	}
	return sup
}

// onlyCommentOnLine reports whether comment c shares its line with no other
// syntax, i.e. it is a standalone annotation line.
func onlyCommentOnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	alone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !alone {
			return false
		}
		switch n.(type) {
		case *ast.CommentGroup, *ast.Comment:
			return false
		}
		start := fset.Position(n.Pos()).Line
		end := fset.Position(n.End()).Line
		if end < line || start > line {
			return false // entirely off the line; skip the subtree
		}
		if start == line || end == line {
			// One of the node's own tokens sits on the comment's line, so
			// the comment shares the line with real syntax.  A node that
			// merely spans the line (the enclosing function or block) does
			// not count — recurse to check its children instead.
			alone = false
			return false
		}
		return true
	})
	return alone
}

// allowedAt reports whether a finding by the named analyzer at pos is
// covered by an annotation, marking every covering directive as used.
// Analyzers that fold allowances into facts (allocfree) call this through
// Pass.Allowed while summarizing, so an allow consumed by the fact
// computation counts as live even though no diagnostic was ever filed.
func (s *suppressions) allowedAt(fset *token.FileSet, pos token.Pos, name string) bool {
	p := fset.Position(pos)
	byLine := s.byLine[p.Filename]
	if byLine == nil {
		return false
	}
	allowed := false
	for _, e := range byLine[p.Line] {
		if e.name == name || e.name == "all" {
			e.used = true
			allowed = true
		}
	}
	return allowed
}

// Allowed reports whether a finding by the named analyzer at pos carries a
// //lint:allow annotation, marking the annotation as used.
func (p *Pass) Allowed(pos token.Pos, name string) bool {
	return p.sup.allowedAt(p.Fset, pos, name)
}

// staleDirectives returns the directives that suppressed nothing, limited
// to analyzer names in ran (an allow for an analyzer that did not run this
// pass is not stale — it may fire on the full suite).  Directives naming
// no known analyzer at all are always stale: they are typos that can never
// suppress anything.
func (s *suppressions) staleDirectives(ran map[string]bool) []*allowEntry {
	var out []*allowEntry
	for _, e := range s.entries {
		if e.used || e.name == "all" {
			continue
		}
		if ran[e.name] || !knownAnalyzer(e.name) {
			out = append(out, e)
		}
	}
	return out
}

// knownAnalyzer reports whether name identifies a member of the full suite.
func knownAnalyzer(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// Run executes the analyzers over one type-checked package and returns the
// findings that survive //lint:allow suppression, sorted by position.  It
// is RunPkg without imported facts — sufficient for single-package
// fixtures and tests; drivers use RunPkg so interprocedural facts flow.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	diags, _, err := RunPkg(analyzers, fset, files, pkg, info, nil)
	return diags, err
}

// RunPkg executes the analyzers over one type-checked package with the
// facts of its dependencies available in store (nil means none), and
// returns the surviving findings together with the package's own exported
// facts, which the driver forwards to dependent packages.
func RunPkg(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, store *FactStore) ([]Diagnostic, *PkgFacts, error) {
	if store == nil {
		store = NewFactStore()
	}
	sup := collectSuppressions(fset, files)

	// The call-graph substrate is built once per package — before any
	// analyzer runs — because fact computation itself consumes allowances
	// (an allowed allocation must not poison every caller's summary).
	var diags []Diagnostic
	base := &Pass{
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		sup:       sup,
		diags:     &diags,
	}
	graph := buildGraph(base, store)
	base.Graph = graph

	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Graph:     graph,
			sup:       sup,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("lint: analyzer %s: %w", a.Name, err)
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if !sup.allowedAt(fset, d.Pos, d.Analyzer) {
			kept = append(kept, d)
		}
	}
	// An allow that suppressed nothing — neither a filed diagnostic nor a
	// fact-level allowance — has rotted; report it at its own position.
	for _, e := range sup.staleDirectives(ran) {
		kept = append(kept, Diagnostic{
			Analyzer: StaleAllowName,
			Pos:      e.pos,
			Message: fmt.Sprintf("//lint:allow %s suppresses nothing on this line; delete the stale annotation (or fix its analyzer name)",
				e.name),
		})
	}
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := fset.Position(kept[i].Pos), fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return kept, graph.Facts, nil
}

// All returns the full greedlint analyzer suite: the syntactic v1
// analyzers, the dataflow-aware v2 set built on the CFG pass, the
// interprocedural v3 set built on the call-graph facts, and the v4
// concurrency-contract set built on the lock-held lattice.
func All() []*Analyzer {
	return []*Analyzer{
		FloatEq, RNGSource, PanicFree, ErrDrop,
		FeasGuard, DetOrder, DimCheck, ParSafe,
		AllocFree, CtxFlow, WSAlias,
		GuardedBy, ChanOwn, Fanout,
	}
}

// ByName resolves a comma-separated analyzer list; an empty spec means all.
func ByName(spec string) ([]*Analyzer, error) {
	if strings.TrimSpace(spec) == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
