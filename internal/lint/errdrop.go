package lint

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags call statements that silently discard an error result,
// errcheck-style.  A dropped error is how a failed write turns a MISMATCH
// into an empty table that still says MATCH.  Handle the error, or make
// the discard explicit with `_ = f()` (which this analyzer accepts as a
// deliberate decision), or annotate with //lint:allow errdrop.
//
// Exemptions, chosen to keep the signal high:
//   - fmt.Print / Printf / Println, and fmt.Fprint* aimed at os.Stdout or
//     os.Stderr (best-effort console output, matching errcheck's default
//     excludes);
//   - writes whose destination is an in-memory *bytes.Buffer or
//     *strings.Builder, whose Write methods are documented never to fail —
//     both direct method calls and fmt.Fprint* with such a destination.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "flags discarded error return values in statement position " +
		"(including go/defer); handle the error or discard explicitly " +
		"with `_ =`, or annotate with //lint:allow errdrop",
	Run: runErrDrop,
}

func runErrDrop(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = n.Call
			case *ast.DeferStmt:
				call = n.Call
			default:
				return true
			}
			if call == nil || !returnsError(pass, call) || errDropExempt(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s returns an error that is discarded; handle it or assign to _ explicitly (//lint:allow errdrop to override)",
				calleeName(call))
			return true
		})
	}
	return nil
}

// returnsError reports whether any result of the call has type error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypesInfo.TypeOf(call)
	if t == nil {
		return false
	}
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() == nil && obj.Name() == "error"
}

// errDropExempt implements the documented best-effort-output exemptions.
func errDropExempt(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if obj.Pkg().Path() == "fmt" {
		switch sel.Sel.Name {
		case "Print", "Printf", "Println":
			return true // stdout, best effort
		case "Fprint", "Fprintf", "Fprintln":
			return len(call.Args) > 0 &&
				(isInMemorySink(pass, call.Args[0]) || isConsole(pass, call.Args[0]))
		}
		return false
	}
	// Method calls on in-memory sinks: buf.WriteString(...) etc.
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			return isInMemorySinkType(recv.Type())
		}
	}
	return false
}

// isConsole reports whether e is the os.Stdout or os.Stderr variable:
// console output is best-effort, exactly as with fmt.Print*.
func isConsole(pass *Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return false
	}
	return sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr"
}

// isInMemorySink reports whether e is a *bytes.Buffer or *strings.Builder.
func isInMemorySink(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	return t != nil && isInMemorySinkType(t)
}

func isInMemorySinkType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (path == "bytes" && name == "Buffer") ||
		(path == "strings" && name == "Builder")
}

// calleeName renders the called function for the diagnostic.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if root := rootIdent(fun.X); root != nil {
			return root.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
