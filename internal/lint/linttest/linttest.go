// Package linttest runs lint analyzers over fixture packages in testdata
// and checks their findings against // want comments, in the spirit of
// golang.org/x/tools/go/analysis/analysistest but built on the standard
// library only.
//
// A fixture is a directory of Go files forming one package.  A line that
// should be flagged carries a trailing comment
//
//	x := a == b // want "floateq"
//
// where each quoted string must be a substring of one finding reported on
// that line (rendered as "analyzer: message").  Lines without a want
// comment must produce no finding.  Files named *_test.go in the fixture
// are parsed as such, so per-analyzer test-file policies are exercised.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"greednet/internal/lint"
)

var wantRe = regexp.MustCompile(`// want ((?:"[^"]*"\s*)+)`)

// expectation is one unmet // want pattern.
type expectation struct {
	file    string
	line    int
	pattern string
}

// Run analyzes the fixture package in dir under the given import path and
// reports any mismatch between findings and // want comments.  The import
// path matters to analyzers with package-based policies (rngsource exempts
// greednet/internal/randdist; panicfree exempts package main).
func Run(t *testing.T, dir, importPath string, analyzers []*lint.Analyzer) {
	t.Helper()

	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no fixture files in %s (err %v)", dir, err)
	}
	sort.Strings(paths)

	fset := token.NewFileSet()
	var files []*ast.File
	var wants []expectation
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		f, err := parser.ParseFile(fset, p, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", p, err)
		}
		files = append(files, f)
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, q := range regexp.MustCompile(`"[^"]*"`).FindAllString(m[1], -1) {
				wants = append(wants, expectation{file: p, line: i + 1, pattern: q[1 : len(q)-1]})
			}
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	// The source importer resolves stdlib imports from GOROOT without
	// needing compiled export data, so fixtures typecheck offline.
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}

	diags, err := lint.Run(analyzers, fset, files, pkg, info)
	if err != nil {
		t.Fatalf("lint %s: %v", dir, err)
	}

	// Index every finding by file:line so unmet expectations can say what
	// the analyzers actually reported there.
	byLine := make(map[string][]string)
	used := make([]bool, len(wants))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		full := d.Analyzer + ": " + d.Message
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		byLine[key] = append(byLine[key], full)
		matched := false
		for i, w := range wants {
			if !used[i] && w.file == pos.Filename && w.line == pos.Line &&
				strings.Contains(full, w.pattern) {
				used[i] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: %s", key, full)
		}
	}
	for i, w := range wants {
		if used[i] {
			continue
		}
		key := fmt.Sprintf("%s:%d", w.file, w.line)
		if got := byLine[key]; len(got) > 0 {
			t.Errorf("%s: expected a finding matching %q; the line's findings were:\n\t%s",
				key, w.pattern, strings.Join(got, "\n\t"))
		} else {
			t.Errorf("%s: expected a finding matching %q, but no analyzer reported anything on this line",
				key, w.pattern)
		}
	}
}
