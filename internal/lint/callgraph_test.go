package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// graphFixture typechecks one in-memory package and builds its call-graph
// substrate the same way RunPkg does.
type graphFixture struct {
	pass  *Pass
	graph *Graph
}

// mapImporter resolves imports from already-typechecked packages, letting
// tests wire up multi-package fixtures in memory; anything else falls back
// to the source importer (stdlib from GOROOT).
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok {
		return p, nil
	}
	return importer.ForCompiler(token.NewFileSet(), "source", nil).Import(path)
}

func buildGraphFixture(t *testing.T, path, src string, deps mapImporter, store *FactStore) *graphFixture {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: deps}
	pkg, err := conf.Check(path, fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", path, err)
	}
	if store == nil {
		store = NewFactStore()
	}
	var diags []Diagnostic
	pass := &Pass{
		Fset:      fset,
		Files:     []*ast.File{file},
		Pkg:       pkg,
		TypesInfo: info,
		sup:       collectSuppressions(fset, []*ast.File{file}),
		diags:     &diags,
	}
	pass.Graph = buildGraph(pass, store)
	return &graphFixture{pass: pass, graph: pass.Graph}
}

func (fx *graphFixture) fn(t *testing.T, key string) *FuncInfo {
	t.Helper()
	fi, ok := fx.graph.ByKey[key]
	if !ok {
		var keys []string
		for k := range fx.graph.ByKey {
			keys = append(keys, k)
		}
		t.Fatalf("no function %q in graph; have %v", key, keys)
	}
	return fi
}

func TestCallGraphStaticEdges(t *testing.T) {
	src := `package g
type Q struct{ n int }
func (q *Q) Bump() { q.n++ }
func helper(x int) int { return x + 1 }
func Root(q *Q) int {
	q.Bump()
	return helper(q.n)
}`
	fx := buildGraphFixture(t, "g", src, nil, nil)
	root := fx.fn(t, "g.Root")
	var callees []string
	for _, c := range root.Calls {
		if c.Local != nil {
			callees = append(callees, c.Local.Key)
		}
	}
	got := strings.Join(callees, ",")
	if got != "g.(Q).Bump,g.helper" {
		t.Errorf("Root's local edges = %q, want g.(Q).Bump then g.helper", got)
	}
}

func TestCallGraphMethodValueIsEdgeAndAllocation(t *testing.T) {
	src := `package g
type Q struct{ n int }
func (q *Q) Bump() { q.n++ }
func Root(q *Q) func() {
	h := q.Bump
	return h
}`
	fx := buildGraphFixture(t, "g", src, nil, nil)
	root := fx.fn(t, "g.Root")
	foundEdge := false
	for _, c := range root.Calls {
		if c.Local != nil && c.Local.Key == "g.(Q).Bump" {
			foundEdge = true
		}
	}
	if !foundEdge {
		t.Errorf("method value q.Bump did not produce a call edge to g.(Q).Bump")
	}
	foundAlloc := false
	for _, a := range root.Allocs {
		if strings.Contains(a.What, "method value") {
			foundAlloc = true
		}
	}
	if !foundAlloc {
		t.Errorf("method value q.Bump did not produce an allocation site; sites: %+v", root.Allocs)
	}
	// The same selector in call position must NOT be a method value.
	src2 := `package g
type Q struct{ n int }
func (q *Q) Bump() { q.n++ }
func Root(q *Q) { q.Bump() }`
	fx2 := buildGraphFixture(t, "g", src2, nil, nil)
	if allocs := fx2.fn(t, "g.Root").Allocs; len(allocs) != 0 {
		t.Errorf("plain method call flagged as allocation: %+v", allocs)
	}
}

func TestFactsTransitiveAllocation(t *testing.T) {
	src := `package g
func leaf(n int) []int { return make([]int, n) }
func mid(n int) []int { return leaf(n) }
func clean(x int) int { return x * 2 }
func cycleA(n int) int { if n == 0 { return 0 }; return cycleB(n - 1) }
func cycleB(n int) int { return cycleA(n) }`
	fx := buildGraphFixture(t, "g", src, nil, nil)
	if f := fx.fn(t, "g.leaf").Fact; !f.Allocates || !strings.Contains(f.Witness, "make") {
		t.Errorf("leaf fact = %+v, want Allocates with a make witness", f)
	}
	if f := fx.fn(t, "g.mid").Fact; !f.Allocates || !strings.Contains(f.Witness, "g.leaf") {
		t.Errorf("mid fact = %+v, want transitive Allocates witnessing g.leaf", f)
	}
	if f := fx.fn(t, "g.clean").Fact; f.Allocates {
		t.Errorf("clean fact = %+v, want allocation-free", f)
	}
	// Mutual recursion must converge (and neither function allocates).
	for _, name := range []string{"g.cycleA", "g.cycleB"} {
		if f := fx.fn(t, name).Fact; f.Allocates {
			t.Errorf("%s fact = %+v, want allocation-free despite the cycle", name, f)
		}
	}
}

func TestHotpathAndCtxBits(t *testing.T) {
	src := `package g
import "context"

//lint:hotpath
func Hot(x float64) float64 { return x }

func Work(xs []float64) float64 { return xs[0] }
func WorkCtx(ctx context.Context, xs []float64) float64 {
	if ctx.Err() != nil { return 0 }
	return Work(xs)
}`
	fx := buildGraphFixture(t, "g", src, nil, nil)
	if !fx.fn(t, "g.Hot").Fact.Hotpath {
		t.Errorf("//lint:hotpath doc directive not recorded in Hot's fact")
	}
	if !fx.fn(t, "g.WorkCtx").Fact.TakesCtx {
		t.Errorf("WorkCtx's context parameter not recorded in its fact")
	}
	if v := fx.fn(t, "g.Work").Fact.CtxVariant; v != "g.WorkCtx" {
		t.Errorf("Work's CtxVariant = %q, want g.WorkCtx", v)
	}
}

func TestGrowGuardAndAllowExemptions(t *testing.T) {
	src := `package g
func Grow(dst []float64, n int) []float64 {
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	return dst[:n]
}
func Fallback(p *float64) *float64 {
	if p == nil {
		p = new(float64) //lint:allow allocfree nil-arg fallback
	}
	return p
}`
	fx := buildGraphFixture(t, "g", src, nil, nil)
	if f := fx.fn(t, "g.Grow").Fact; f.Allocates {
		t.Errorf("guarded cap-grow make counted as allocation: %+v", f)
	}
	if f := fx.fn(t, "g.Fallback").Fact; f.Allocates {
		t.Errorf("allowed new counted as allocation: %+v", f)
	}
	// The consumed allow must not be reported stale.
	if stale := fx.pass.sup.staleDirectives(map[string]bool{AllocFreeName: true}); len(stale) != 0 {
		t.Errorf("fact-consumed allow reported stale: %+v", stale[0])
	}
}

// TestCrossPackageFacts drives the full two-package flow: package a is
// analyzed first, its facts feed package b's pass, and both allocfree and
// ctxflow report b's violations against a's summaries.
func TestCrossPackageFacts(t *testing.T) {
	srcA := `package a
import "context"
func Alloc(n int) []float64 { return make([]float64, n) }
func Clean(x float64) float64 { return 2 * x }
func Work(xs []float64) float64 { return xs[0] }
func WorkCtx(ctx context.Context, xs []float64) float64 {
	if ctx.Err() != nil { return 0 }
	return Work(xs)
}`
	fxA := buildGraphFixture(t, "a", srcA, nil, nil)

	store := NewFactStore()
	store.Add(fxA.graph.Facts)
	if !store.HasPkg("a") {
		t.Fatalf("store does not record package a after Add")
	}

	srcB := `package b
import (
	"context"

	"a"
)

//lint:hotpath
func HotCallsClean(x float64) float64 { return a.Clean(x) }

//lint:hotpath
func HotCallsAlloc(n int) []float64 { return a.Alloc(n) }

func DropsCtx(ctx context.Context, xs []float64) float64 { return a.Work(xs) }
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "b.go", srcB, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse b: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: mapImporter{"a": fxA.pass.Pkg}}
	pkg, err := conf.Check("b", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck b: %v", err)
	}
	diags, facts, err := RunPkg([]*Analyzer{AllocFree, CtxFlow}, fset, []*ast.File{file}, pkg, info, store)
	if err != nil {
		t.Fatalf("RunPkg b: %v", err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+": "+d.Message)
	}
	joined := strings.Join(got, "\n")
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2 (one allocfree, one ctxflow):\n%s", len(diags), joined)
	}
	if !strings.Contains(joined, "allocfree") || !strings.Contains(joined, "a.Alloc") {
		t.Errorf("missing allocfree finding against a.Alloc:\n%s", joined)
	}
	if strings.Contains(joined, "a.Clean") {
		t.Errorf("allocation-free cross-package callee a.Clean was flagged:\n%s", joined)
	}
	if !strings.Contains(joined, "ctxflow") || !strings.Contains(joined, "WorkCtx") {
		t.Errorf("missing ctxflow finding steering toward a.WorkCtx:\n%s", joined)
	}
	// b's export re-includes a's facts, so the chain stays transitive.
	if _, ok := facts.Funcs["b.HotCallsClean"]; !ok {
		t.Errorf("b's own facts missing from its export")
	}
}

func TestFactStoreEncodeDecode(t *testing.T) {
	store := NewFactStore()
	store.Add(&PkgFacts{
		Path: "x",
		Funcs: map[string]FuncFact{
			"x.F": {Hotpath: true, Allocates: true, Witness: "make at f.go:3"},
			"x.G": {TakesCtx: true, CtxVariant: ""},
		},
	})
	data, err := EncodeFacts(store)
	if err != nil {
		t.Fatalf("EncodeFacts: %v", err)
	}
	back, err := DecodeFacts(data)
	if err != nil {
		t.Fatalf("DecodeFacts: %v", err)
	}
	if !back.HasPkg("x") {
		t.Errorf("decoded store lost package x")
	}
	f, ok := back.Lookup("x.F")
	if !ok || !f.Hotpath || !f.Allocates || f.Witness != "make at f.go:3" {
		t.Errorf("decoded x.F = %+v, %v; want the original fact", f, ok)
	}
	// Round-tripping must be deterministic byte-for-byte (vetx files are
	// content-compared by the build cache).
	data2, err := EncodeFacts(back)
	if err != nil {
		t.Fatalf("EncodeFacts (second): %v", err)
	}
	if string(data) != string(data2) {
		t.Errorf("EncodeFacts is not deterministic:\n%s\nvs\n%s", data, data2)
	}
}
