package lint

// This file is the interprocedural substrate of the suite: a module-wide
// approximate call graph whose per-function summaries ("facts") travel
// between packages.  Within one package the graph is exact for static
// calls — function declarations linked by the calls their bodies (and
// nested function literals) make.  Across packages it is carried by
// FuncFact values: when package P is analyzed, the facts of every package
// it imports are already available (the vettool protocol hands them over
// as vetx files; the standalone driver analyzes packages in dependency
// order), so a summary like "alloc.FairShareBR.Reset does not allocate"
// flows to callers without re-analyzing alloc.
//
// The approximations, chosen so analyzers err toward fewer findings:
//
//   - Calls through interfaces are contract boundaries, not graph edges.
//     The hot-path implementations behind them (CongestionInto and
//     friends) carry their own //lint:hotpath annotations and are checked
//     in their home packages.
//   - Calls through function values are not edges either: the function
//     value's body was scanned where the literal was created (a nested
//     literal's constructs count against its enclosing declaration).
//   - Unknown callees outside the module default to "may allocate" with a
//     witness naming them, except for a small allowlist of stdlib
//     functions that are known allocation-free (math.*, the in-place
//     sort entry points, *rand.Rand draws).

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// A FuncFact is the exported, package-crossing summary of one function.
type FuncFact struct {
	// Hotpath marks a //lint:hotpath annotation on the declaration.
	Hotpath bool `json:"hotpath,omitempty"`
	// Allocates reports whether the function may heap-allocate, directly
	// or through anything it statically calls.  Allocation sites carrying
	// //lint:allow allocfree do not count.
	Allocates bool `json:"allocates,omitempty"`
	// Witness names the reason for Allocates: the first allocating
	// construct, or the first allocating callee.
	Witness string `json:"witness,omitempty"`
	// TakesCtx reports a context.Context parameter in the signature.
	TakesCtx bool `json:"takes_ctx,omitempty"`
	// CtxVariant is the key of the sibling context-aware variant (Foo →
	// FooCtx, same receiver) when one exists, so callers holding a ctx can
	// be pointed at it.
	CtxVariant string `json:"ctx_variant,omitempty"`
	// NeedsLocks lists the //lint:locked lock names of the declaration:
	// locks every caller must hold (exclusive) around a call.  The
	// guardedby analyzer checks call sites against its lock-held lattice,
	// cross-package included.
	NeedsLocks []string `json:"needs_locks,omitempty"`
}

// PkgFacts bundles one package's exported function facts.
type PkgFacts struct {
	Path  string              `json:"path"`
	Funcs map[string]FuncFact `json:"funcs"`
}

// A FactStore accumulates the facts of analyzed packages.  Stores merge
// transitively: a package's vetx output re-exports everything it imported,
// so dependents see the whole downward closure.
type FactStore struct {
	pkgs  map[string]bool
	funcs map[string]FuncFact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{pkgs: make(map[string]bool), funcs: make(map[string]FuncFact)}
}

// Add merges one package's facts into the store.
func (s *FactStore) Add(pf *PkgFacts) {
	if pf == nil {
		return
	}
	s.pkgs[pf.Path] = true
	for k, f := range pf.Funcs {
		s.funcs[k] = f
	}
}

// Merge folds another store (e.g. decoded from a dependency's vetx file)
// into this one.
func (s *FactStore) Merge(o *FactStore) {
	if o == nil {
		return
	}
	for p := range o.pkgs {
		s.pkgs[p] = true
	}
	for k, f := range o.funcs {
		s.funcs[k] = f
	}
}

// Lookup returns the fact recorded under key.
func (s *FactStore) Lookup(key string) (FuncFact, bool) {
	f, ok := s.funcs[key]
	return f, ok
}

// HasPkg reports whether facts for the package path were loaded.
func (s *FactStore) HasPkg(path string) bool { return s.pkgs[path] }

// An AllocSite is one heap-allocating construct found in a function body.
type AllocSite struct {
	Pos  token.Pos
	What string // e.g. "make", "growing append", "closure capturing i"
}

// A CallSite is one static call edge out of a function.
type CallSite struct {
	Pos token.Pos
	// Callee resolves the target; nil for dynamic calls (function values)
	// and interface dispatch, which are not graph edges.
	Callee *types.Func
	// Local is the same-package declaration when the callee has one.
	Local *FuncInfo
	// Iface marks dispatch through an interface method.
	Iface bool
}

// A FuncInfo is one declared function of the package under analysis,
// with its local summary and outgoing static edges.
type FuncInfo struct {
	// Key is the package-qualified fact key, e.g.
	// "greednet/internal/alloc.(FairShareBR).Reset".
	Key string
	// Display is the short human form used in messages, e.g.
	// "alloc.(FairShareBR).Reset".
	Display string
	Decl    *ast.FuncDecl
	Obj     *types.Func
	// Hotpath marks the //lint:hotpath annotation.
	Hotpath bool
	// Locked lists the //lint:locked lock names of the declaration.
	Locked []string
	// TakesCtx reports a context.Context parameter.
	TakesCtx bool
	// Allocs are the function's own allocating constructs (allowances and
	// the guarded-grow idiom already excluded).
	Allocs []AllocSite
	// Calls are the function's outgoing call sites in source order.
	Calls []CallSite
	// Fact is the computed transitive summary exported for dependents.
	Fact FuncFact
}

// Graph is the package-level call-graph substrate handed to analyzers.
type Graph struct {
	// Funcs lists the package's declared functions in source order.
	Funcs []*FuncInfo
	// ByObj indexes them by their type-checker object.
	ByObj map[*types.Func]*FuncInfo
	// ByKey indexes them by fact key.
	ByKey map[string]*FuncInfo
	// Imported holds the facts of every dependency.
	Imported *FactStore
	// Facts is the package's own exported fact set (dependency facts
	// re-exported for transitive flow).
	Facts *PkgFacts
}

// FuncKey builds the fact key of a function object.
func FuncKey(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if recv := recvTypeName(fn); recv != "" {
		return pkg + ".(" + recv + ")." + fn.Name()
	}
	return pkg + "." + fn.Name()
}

// displayKey is the short message form: package name instead of path.
func displayKey(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name()
	}
	if recv := recvTypeName(fn); recv != "" {
		return pkg + ".(" + recv + ")." + fn.Name()
	}
	return pkg + "." + fn.Name()
}

// recvTypeName returns the receiver's named-type name, or "".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// sigTakesCtx reports whether any parameter is a context.Context.
func sigTakesCtx(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isCtxType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// allocAllowlist lists stdlib callables known not to heap-allocate.  A
// package mapped to nil allows every function in it.
var allocAllowlist = map[string]map[string]bool{
	"math":      nil,
	"math/bits": nil,
	// The in-place sorts: they permute through the interface they are
	// handed and allocate nothing themselves (sort.Slice, which builds a
	// reflect-based swapper, is deliberately absent).
	"sort": {"Sort": true, "Stable": true, "Search": true, "SearchFloat64s": true, "SearchInts": true},
	// Draws on an existing *rand.Rand stream are arithmetic on its state.
	"math/rand": {"Float64": true, "ExpFloat64": true, "NormFloat64": true,
		"Int63": true, "Int63n": true, "Intn": true, "Int31": true, "Int31n": true,
		"Uint64": true, "Perm": false, "Shuffle": true},
}

// allowlistedAlloc reports whether a callee outside the module is known
// allocation-free.
func allowlistedAlloc(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	names, ok := allocAllowlist[fn.Pkg().Path()]
	if !ok {
		return false
	}
	if names == nil {
		return true
	}
	return names[fn.Name()]
}

// buildGraph constructs the package's call-graph substrate: declarations,
// local allocation summaries, static edges, annotation bits, and the
// fixed-point transitive facts.
func buildGraph(pass *Pass, store *FactStore) *Graph {
	g := &Graph{
		ByObj:    make(map[*types.Func]*FuncInfo),
		ByKey:    make(map[string]*FuncInfo),
		Imported: store,
	}

	// Pass 1: declare every function, with its annotation and ctx bits.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig, _ := obj.Type().(*types.Signature)
			fi := &FuncInfo{
				Key:      FuncKey(obj),
				Display:  displayKey(obj),
				Decl:     fd,
				Obj:      obj,
				Hotpath:  hasHotpathDirective(fd),
				Locked:   lockedDirective(fd),
				TakesCtx: sigTakesCtx(sig),
			}
			g.Funcs = append(g.Funcs, fi)
			g.ByObj[obj] = fi
			g.ByKey[fi.Key] = fi
		}
	}

	// Pass 2: scan bodies for allocation sites and call edges.
	for _, fi := range g.Funcs {
		scanBody(pass, g, fi)
	}

	// Ctx variants: Foo → FooCtx with the same receiver, declared in a
	// non-test file (so the fact set is identical with and without the
	// test variant's extra files).
	for _, fi := range g.Funcs {
		if fi.TakesCtx || pass.InTestFile(fi.Decl.Pos()) {
			continue
		}
		vkey := variantKey(fi.Key)
		if v, ok := g.ByKey[vkey]; ok && v.TakesCtx && !pass.InTestFile(v.Decl.Pos()) {
			fi.Fact.CtxVariant = vkey
		}
	}

	// Fixed point: a function allocates when it has a live local site or
	// statically calls something that does.  Local edges iterate to
	// convergence (recursion is a cycle, not a crash); external edges
	// consult the imported facts once.
	for _, fi := range g.Funcs {
		fi.Fact.Hotpath = fi.Hotpath
		fi.Fact.NeedsLocks = fi.Locked
		fi.Fact.TakesCtx = fi.TakesCtx
		if len(fi.Allocs) > 0 {
			fi.Fact.Allocates = true
			fi.Fact.Witness = fmt.Sprintf("%s at %s", fi.Allocs[0].What, shortPos(pass.Fset, fi.Allocs[0].Pos))
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range g.Funcs {
			if fi.Fact.Allocates {
				continue
			}
			for _, c := range fi.Calls {
				alloc, witness := calleeAllocates(g, store, c)
				if !alloc {
					continue
				}
				if pass.Allowed(c.Pos, AllocFreeName) {
					// An audited call-site allow keeps the callee's
					// allocation out of this function's summary, so it does
					// not poison callers (CtxErr's fired-path errors.Is is
					// the canonical case).
					continue
				}
				fi.Fact.Allocates = true
				fi.Fact.Witness = witness
				changed = true
				break
			}
		}
	}

	// Export: this package's functions plus a re-export of everything
	// imported, so facts flow transitively through the vetx chain.
	g.Facts = &PkgFacts{Path: pass.Pkg.Path(), Funcs: make(map[string]FuncFact)}
	for _, fi := range g.Funcs {
		g.Facts.Funcs[fi.Key] = fi.Fact
	}
	return g
}

// calleeAllocates resolves one call site's allocation behavior.
func calleeAllocates(g *Graph, store *FactStore, c CallSite) (bool, string) {
	if c.Callee == nil || c.Iface {
		// Dynamic and interface dispatch are contract boundaries — the
		// target's own package checks its body (see the file comment).
		return false, ""
	}
	if c.Local != nil {
		if c.Local.Fact.Allocates {
			w := c.Local.Fact.Witness
			if strings.HasPrefix(w, "calls ") {
				w = "transitively allocates"
			}
			return true, fmt.Sprintf("calls %s (%s)", c.Local.Display, w)
		}
		return false, ""
	}
	key := FuncKey(c.Callee)
	if fact, ok := store.Lookup(key); ok {
		if fact.Allocates {
			w := fact.Witness
			if strings.HasPrefix(w, "calls ") {
				w = "transitively allocates"
			}
			return true, fmt.Sprintf("calls %s (%s)", displayKey(c.Callee), w)
		}
		return false, ""
	}
	if allowlistedAlloc(c.Callee) {
		return false, ""
	}
	return true, fmt.Sprintf("calls %s, whose allocation behavior is unknown (no facts; outside the module)", displayKey(c.Callee))
}

// variantKey rewrites a fact key to its Ctx-variant sibling: the final
// name segment gains a "Ctx" suffix.
func variantKey(key string) string { return key + "Ctx" }

// hasHotpathDirective reports a //lint:hotpath line in the declaration's
// doc comment.
func hasHotpathDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), HotpathDirective) {
			return true
		}
	}
	return false
}

// lockedDirective parses the //lint:locked names in the declaration's doc
// comment: the locks (receiver fields or package variables, by the same
// textual paths the lock lattice uses) that every caller must hold around
// a call.  Names are sorted so the exported fact is canonical.
func lockedDirective(fd *ast.FuncDecl) []string {
	if fd.Doc == nil {
		return nil
	}
	var out []string
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if !strings.HasPrefix(text, LockedDirective) {
			continue
		}
		out = append(out, strings.Fields(strings.TrimPrefix(text, LockedDirective))...)
	}
	sort.Strings(out)
	return out
}

// shortPos renders a position as basename:line, keeping witnesses (which
// cross package boundaries inside facts) machine-independent.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// scanBody fills fi.Allocs and fi.Calls from the declaration body,
// including nested function literals (their constructs and calls count
// against the enclosing declaration; see the file comment).
func scanBody(pass *Pass, g *Graph, fi *FuncInfo) {
	// exempt spans cover the guarded-grow idiom: allocations inside
	// `if cap(buf) < n { buf = make(...) }` (or the len form) are the
	// amortized warm-up path the zero-alloc contract explicitly permits.
	var exempt []ast.Node

	addAlloc := func(pos token.Pos, what string) {
		for _, e := range exempt {
			if e.Pos() <= pos && pos <= e.End() {
				return
			}
		}
		if pass.sup.allowedAt(pass.Fset, pos, AllocFreeName) {
			return
		}
		fi.Allocs = append(fi.Allocs, AllocSite{Pos: pos, What: what})
	}

	// Selectors in call position are dispatch, not method values; collect
	// them up front so scanMethodValue can tell the two apart.
	callFuns := make(map[ast.Expr]bool)
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callFuns[unparen(call.Fun)] = true
		}
		return true
	})

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if isGrowGuard(n.Cond) {
				exempt = append(exempt, n.Body)
			}
		case *ast.GoStmt:
			addAlloc(n.Pos(), "goroutine spawn")
		case *ast.CallExpr:
			scanCall(pass, g, fi, n, addAlloc)
		case *ast.CompositeLit:
			switch types.Unalias(pass.TypesInfo.TypeOf(n)).Underlying().(type) {
			case *types.Slice:
				addAlloc(n.Pos(), "slice literal")
			case *types.Map:
				addAlloc(n.Pos(), "map literal")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					addAlloc(n.Pos(), "composite literal escaping through &")
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if idx, ok := lhs.(*ast.IndexExpr); ok {
					if _, ok := types.Unalias(pass.TypesInfo.TypeOf(idx.X)).Underlying().(*types.Map); ok {
						addAlloc(lhs.Pos(), "map write")
					}
				}
			}
			scanBoxing(pass, n, addAlloc)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(pass.TypesInfo.TypeOf(n)) {
				addAlloc(n.Pos(), "string concatenation")
			}
		case *ast.FuncLit:
			if capt := capturedLocal(pass, fi.Decl, n); capt != "" {
				addAlloc(n.Pos(), "closure capturing "+capt)
			}
			// Keep walking: the literal's body belongs to this function.
		case *ast.SelectorExpr:
			if !callFuns[n] {
				scanMethodValue(pass, g, fi, n, addAlloc)
			}
		case *ast.ValueSpec:
			scanSpecBoxing(pass, n, addAlloc)
		case *ast.ReturnStmt:
			scanReturnBoxing(pass, fi, n, addAlloc)
		}
		return true
	})
}

// isGrowGuard recognizes `cap(x) < n`-shaped conditions (either operand,
// len or cap, any ordering comparison).
func isGrowGuard(cond ast.Expr) bool {
	b, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch b.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
	default:
		return false
	}
	return isLenCapCall(b.X) || isLenCapCall(b.Y)
}

func isLenCapCall(e ast.Expr) bool {
	c, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := c.Fun.(*ast.Ident)
	return ok && (id.Name == "len" || id.Name == "cap")
}

// scanCall classifies one call expression: builtin allocators, string
// conversions, boxing at the call boundary, and the static call edge.
func scanCall(pass *Pass, g *Graph, fi *FuncInfo, call *ast.CallExpr, addAlloc func(token.Pos, string)) {
	// Conversions: T(x).  Flag the allocating string<->[]byte pair.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, pass.TypesInfo.TypeOf(call.Args[0])
		if isStringByteConv(to, from) {
			addAlloc(call.Pos(), "string/[]byte conversion")
		}
		if isIfaceBoxing(to, from) {
			addAlloc(call.Pos(), "interface boxing")
		}
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if obj, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch obj.Name() {
			case "make":
				addAlloc(call.Pos(), "make")
			case "new":
				addAlloc(call.Pos(), "new")
			case "append":
				addAlloc(call.Pos(), "growing append")
			}
			return
		}
	}
	fn := calleeFunc(pass, call.Fun)
	if fn == nil {
		return // dynamic call through a function value: not an edge
	}
	iface := ifaceMethod(fn)
	// Boxing of concrete arguments into interface parameters, and the
	// backing slice of a variadic call.
	if sig, ok := types.Unalias(fn.Type()).(*types.Signature); ok {
		scanArgBoxing(pass, sig, call, addAlloc)
	}
	cs := CallSite{Pos: call.Pos(), Callee: fn, Iface: iface}
	if fn.Pkg() == pass.Pkg {
		cs.Local = g.ByObj[fn]
	}
	fi.Calls = append(fi.Calls, cs)
}

// scanMethodValue records `x.Method` used as a value (never in call
// position — the caller filters those): a method value binds its receiver
// in a fresh closure (an allocation) and is an edge to the method.
func scanMethodValue(pass *Pass, g *Graph, fi *FuncInfo, sel *ast.SelectorExpr, addAlloc func(token.Pos, string)) {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	fn, _ := s.Obj().(*types.Func)
	if fn == nil {
		return
	}
	addAlloc(sel.Pos(), "method value binding "+fn.Name())
	cs := CallSite{Pos: sel.Pos(), Callee: fn, Iface: ifaceMethod(fn)}
	if fn.Pkg() == pass.Pkg {
		cs.Local = g.ByObj[fn]
	}
	fi.Calls = append(fi.Calls, cs)
}

// ifaceMethod reports whether fn is declared on an interface — its call
// sites are dynamic dispatch, a contract boundary rather than a graph
// edge.
func ifaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, isI := sig.Recv().Type().Underlying().(*types.Interface)
	return isI
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// scanArgBoxing flags concrete-to-interface conversions at a static call
// boundary and the argument slice of a non-empty variadic call.
func scanArgBoxing(pass *Pass, sig *types.Signature, call *ast.CallExpr, addAlloc func(token.Pos, string)) {
	params := sig.Params()
	n := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if call.Ellipsis.IsValid() {
				continue // pass-through slice: no new backing array
			}
			pt = params.At(n - 1).Type().(*types.Slice).Elem()
			if i == n-1 {
				addAlloc(call.Pos(), "variadic argument slice")
			}
		case i < n:
			pt = params.At(i).Type()
		default:
			continue
		}
		if isIfaceBoxing(pt, pass.TypesInfo.TypeOf(arg)) && !isUntypedNil(pass, arg) {
			addAlloc(arg.Pos(), "interface boxing")
		}
	}
}

// scanBoxing flags concrete-to-interface conversions in assignments.
func scanBoxing(pass *Pass, n *ast.AssignStmt, addAlloc func(token.Pos, string)) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, rhs := range n.Rhs {
		lt := pass.TypesInfo.TypeOf(n.Lhs[i])
		if lt == nil && n.Tok == token.DEFINE {
			continue // new variable takes the RHS type: no conversion
		}
		if isIfaceBoxing(lt, pass.TypesInfo.TypeOf(rhs)) && !isUntypedNil(pass, rhs) {
			addAlloc(rhs.Pos(), "interface boxing")
		}
	}
}

// scanSpecBoxing flags boxing in `var x Iface = concrete` declarations.
func scanSpecBoxing(pass *Pass, vs *ast.ValueSpec, addAlloc func(token.Pos, string)) {
	if vs.Type == nil {
		return
	}
	lt := pass.TypesInfo.TypeOf(vs.Type)
	for _, v := range vs.Values {
		if isIfaceBoxing(lt, pass.TypesInfo.TypeOf(v)) && !isUntypedNil(pass, v) {
			addAlloc(v.Pos(), "interface boxing")
		}
	}
}

// scanReturnBoxing flags boxing at return statements against the
// enclosing signature.
func scanReturnBoxing(pass *Pass, fi *FuncInfo, ret *ast.ReturnStmt, addAlloc func(token.Pos, string)) {
	sig, ok := fi.Obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, r := range ret.Results {
		if isIfaceBoxing(sig.Results().At(i).Type(), pass.TypesInfo.TypeOf(r)) && !isUntypedNil(pass, r) {
			addAlloc(r.Pos(), "interface boxing")
		}
	}
}

// isIfaceBoxing reports a conversion of a concrete, non-pointer-shaped
// value into an interface — the conversions that heap-allocate.  Pointer-
// shaped values (pointers, channels, maps, funcs, unsafe pointers) fit the
// interface word directly.
func isIfaceBoxing(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return false
	}
	switch from.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	return true
}

func isUntypedNil(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

func isStringByteConv(to, from types.Type) bool {
	return (isStringType(to) && isByteSlice(from)) || (isByteSlice(to) && isStringType(from))
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// capturedLocal returns the name of one variable the literal captures from
// the enclosing function (parameters, receivers, and locals declared
// outside the literal), or "" when the closure is capture-free.  Package-
// level variables do not force an environment — closures over them are
// static — so they do not count.
func capturedLocal(pass *Pass, decl *ast.FuncDecl, lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Declared inside the enclosing declaration but outside the
		// literal — an environment capture.
		if v.Pos() >= decl.Pos() && v.Pos() <= decl.End() &&
			(v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
			captured = v.Name()
			return false
		}
		return true
	})
	return captured
}

// SortedFuncKeys returns the fact keys of pf in sorted order (stable
// iteration for encoders and tests).
func SortedFuncKeys(pf *PkgFacts) []string {
	keys := make([]string, 0, len(pf.Funcs))
	for k := range pf.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// factsHeader versions the vetx payload; a reader that sees a different
// header treats the file as having no facts rather than failing the build.
const factsHeader = "greedlintv4\n"

// factsFile is the serialized form of a FactStore.
type factsFile struct {
	Pkgs  []string            `json:"pkgs"`
	Funcs map[string]FuncFact `json:"funcs"`
}

// EncodeFacts serializes a store for a vetx file: a version header
// followed by JSON.  encoding/json marshals maps in key order, so equal
// stores produce identical bytes — the build cache content-compares vetx
// files, and nondeterminism would defeat caching.
func EncodeFacts(s *FactStore) ([]byte, error) {
	ff := factsFile{Funcs: s.funcs}
	for p := range s.pkgs {
		ff.Pkgs = append(ff.Pkgs, p)
	}
	sort.Strings(ff.Pkgs)
	data, err := json.Marshal(ff)
	if err != nil {
		return nil, fmt.Errorf("lint: encode facts: %w", err)
	}
	return append([]byte(factsHeader), data...), nil
}

// DecodeFacts parses a vetx payload written by EncodeFacts.  Payloads
// with an unknown header (including the pre-v3 placeholder vetx files)
// decode to an empty store.
func DecodeFacts(data []byte) (*FactStore, error) {
	s := NewFactStore()
	if !strings.HasPrefix(string(data), factsHeader) {
		return s, nil
	}
	var ff factsFile
	if err := json.Unmarshal(data[len(factsHeader):], &ff); err != nil {
		return nil, fmt.Errorf("lint: decode facts: %w", err)
	}
	for _, p := range ff.Pkgs {
		s.pkgs[p] = true
	}
	for k, f := range ff.Funcs {
		s.funcs[k] = f
	}
	return s, nil
}
