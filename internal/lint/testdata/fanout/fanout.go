// Package fanout exercises the goroutine-inventory analyzer: every go
// statement must be annotated into the audited inventory (the fixture is
// not internal/parallel, so the package-level exemption does not apply).
package fanout

func compute() int { return 42 }

// spawnBad fans out with no annotation.
func spawnBad(done chan int) {
	go func() { done <- compute() }() // want "go statement outside internal/parallel"
}

// spawnWatchdog is the audited inventory shape: role plus justification.
func spawnWatchdog(done chan int) {
	//lint:fanout watchdog abandons a hung run; the result channel is buffered
	go func() { done <- compute() }()
}

// spawnTrailing annotates on the spawning line itself.
func spawnTrailing(done chan int) {
	go func() { done <- compute() }() //lint:fanout watchdog abandons a hung run; buffered channel
}

// spawnBare has a role but no justification: not an audit.
func spawnBare(done chan int) {
	//lint:fanout watchdog
	go func() { done <- compute() }() // want "needs a role and a justification"
}

// stale annotations that whitelist nothing are flagged like stale allows.
func noSpawn() int {
	//lint:fanout watchdog the goroutine below was deleted // want "whitelists no go statement"
	return compute()
}
