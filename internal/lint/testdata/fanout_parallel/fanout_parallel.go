// Package fanout_parallel exercises the fanout analyzer's package-level
// exemption: under internal/parallel's import path, the worker pool may
// spawn freely with no annotations.
package parallel

func work(jobs <-chan int, results chan<- int) {
	for j := range jobs {
		results <- j * j
	}
}

// fan spawns pool workers — exempt in this package, a finding anywhere
// else.
func fan(jobs <-chan int, results chan<- int, workers int) {
	for i := 0; i < workers; i++ {
		go work(jobs, results)
	}
}
