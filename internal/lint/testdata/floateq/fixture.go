// Fixture for the floateq analyzer: raw float comparisons are flagged,
// tolerance helpers, integer comparisons, constant folds, the NaN idiom,
// and annotated lines are not.
package floateq

import "math"

// ApproxEq is an approved tolerance helper: its internal exact fast path
// is the reason the exemption exists.
func ApproxEq(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol
}

func compare(x, y float64, n int) bool {
	if x == y { // want "floateq"
		return true
	}
	if n == 3 { // integer comparison is exact: allowed
		return false
	}
	if x != x { // the canonical NaN probe: allowed
		return false
	}
	const a, b = 0.1, 0.2
	if a == b { // both operands constant: folded at compile time, allowed
		return false
	}
	if x == 0 { //lint:allow floateq exact sentinel for the fixture
		return true
	}
	//lint:allow floateq a standalone directive suppresses the next line
	if y == 2 {
		return false
	}
	return x != y // want "floateq"
}

func switchTag(x float64) int {
	switch x { // want "floateq"
	case 0:
		return 0
	}
	return 1
}
