package floateq

// Test files are exempt: tests assert exact golden values deliberately.
func goldenExact(got, want float64) bool {
	return got == want
}
