package rngsource

import "math/rand"

// Tests may build throwaway local streams...
func localStream() *rand.Rand {
	return rand.New(rand.NewSource(1))
}

// ...but global-source draws are non-reproducible everywhere.
func globalInTest() float64 {
	return rand.Float64() // want "rngsource"
}
