// Fixture for the rngsource analyzer: global-source draws and direct
// stream construction are flagged; methods on an injected stream are not.
package rngsource

import "math/rand"

func build(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want "rngsource" "rngsource"
}

func drawGlobal() float64 {
	return rand.Float64() // want "rngsource"
}

func drawInjected(rng *rand.Rand) float64 {
	return rng.Float64() // method on a seeded stream: allowed
}

func shuffleAnnotated(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) //lint:allow rngsource fixture override
}
