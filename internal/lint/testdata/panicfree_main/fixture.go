// Fixture for the panicfree package-main exemption: commands and examples
// may panic at top level, so nothing here is flagged.
package main

func main() {
	panic("commands may panic")
}
