// Package wsalias exercises the workspace-ownership analyzer: dst
// aliasing in *Into implementations and Workspace capture by goroutines.
package wsalias

// Workspace mirrors the core/game scratch types by name, which is what
// the analyzer keys off.
type Workspace struct{ buf []float64 }

// ScaleInto is the contract in its intended shape: grow dst, write
// through it, return it.
func ScaleInto(dst, rates []float64, k float64) []float64 {
	if cap(dst) < len(rates) {
		dst = make([]float64, len(rates))
	}
	dst = dst[:len(rates)]
	for i := range rates {
		dst[i] = k * rates[i]
	}
	return dst
}

// BadReturnInto hands back an input: the caller would write through the
// "result" straight into rates.
func BadReturnInto(dst, rates []float64) []float64 {
	if len(rates) <= cap(dst) {
		return rates // want "wsalias"
	}
	dst = dst[:0]
	dst = append(dst, rates...)
	return dst
}

// BadRebindInto silently turns dst into a view of an input.
func BadRebindInto(dst, rates []float64, n int) []float64 {
	dst = rates[:n] // want "wsalias"
	return dst
}

// CopyInto copies values out of its input — append copies, so mentioning
// rates on the right-hand side is fine.
func CopyInto(dst, rates []float64) []float64 {
	dst = append(dst[:0], rates...)
	return dst
}

// SpawnShared leaks one workspace into a goroutine while the caller still
// owns it.
func SpawnShared(ws *Workspace, done chan struct{}) {
	go func() {
		ws.buf = ws.buf[:0] // want "wsalias"
		close(done)
	}()
}

// SpawnPerWorker uses the sanctioned idiom: the goroutine captures the
// per-worker slice and indexes its own slot.
func SpawnPerWorker(wss []Workspace, done chan struct{}) {
	go func() {
		wss[0].buf = wss[0].buf[:0]
		close(done)
	}()
}

// SpawnAllowed documents an audited hand-off: the spawner provably never
// touches the workspace again.
func SpawnAllowed(ws *Workspace, done chan struct{}) {
	go func() {
		ws.buf = ws.buf[:0] //lint:allow wsalias ownership handed off at spawn; spawner never reuses ws
		close(done)
	}()
}
