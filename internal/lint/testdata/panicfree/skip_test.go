package panicfree

// Test files may panic freely.
func failNow() {
	panic("test helper")
}
