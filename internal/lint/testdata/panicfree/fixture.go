// Fixture for the panicfree analyzer: bare panics in library code are
// flagged; Must-helpers, annotated invariants, shadowed panic identifiers,
// and test files are not.
package panicfree

func Lookup(xs []int, i int) int {
	if i < 0 || i >= len(xs) {
		panic("out of range") // want "panicfree"
	}
	return xs[i]
}

func mustPositive(x int) {
	if x <= 0 {
		panic("not positive") // invariant helper by naming convention: allowed
	}
}

func MustLookup(xs []int, i int) int {
	if i >= len(xs) {
		panic("out of range") // invariant helper by naming convention: allowed
	}
	return xs[i]
}

func annotated() {
	panic("documented invariant") //lint:allow panicfree fixture invariant
}

func shadowed() {
	panic := func(string) {}
	panic("not the builtin") // a local function shadowing panic: allowed
}
