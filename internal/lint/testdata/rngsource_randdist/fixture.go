// Fixture for the rngsource package exemption: when analyzed under the
// import path greednet/internal/randdist, stream construction is the
// sanctioned wrapper itself and nothing is flagged.
package randdist

import "math/rand"

func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
