// Package chanown exercises the channel-ownership analyzer: declared-owner
// closes, parameter closes, dominated send-after-close, and hot-path
// receive discipline.
package chanown

// pipe owns its output channel through run: only run may close it.
type pipe struct {
	//lint:chanowner run
	out chan int
}

// run is the declared owner: send, then close, exactly once.
func (p *pipe) run() {
	p.out <- 1
	close(p.out)
}

// stop closes from outside the owner.
func (p *pipe) stop() {
	close(p.out) // want "outside its declared owner run"
}

// closeParam closes a channel it was handed — the classic double-close
// seed.
func closeParam(ch chan int) {
	close(ch) // want "closes its channel parameter ch"
}

// sendAfterClose panics on every execution.
func sendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want "already closed"
}

// doubleClose panics on the second close.
func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want "already closed"
}

// branchClose is fine: the closing path returns before the send.
func branchClose(b bool) {
	ch := make(chan int, 1)
	if b {
		close(ch)
		return
	}
	ch <- 1
}

// deferClose is fine: the deferred close runs after the send.
func deferClose() {
	ch := make(chan int, 1)
	defer close(ch)
	ch <- 1
}

// drainHot blocks unboundedly on a hot path.
//
//lint:hotpath
func drainHot(ch chan int) int {
	return <-ch // want "channel receive on the hot path"
}

// pollHot bounds the wait with a default case: exempt.
//
//lint:hotpath
func pollHot(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

// rangeHelper is not annotated itself but is reachable from hotRoot.
func rangeHelper(ch chan int) int {
	sum := 0
	for v := range ch { // want "range over a channel"
		sum += v
	}
	return sum
}

// hotRoot pulls rangeHelper onto the hot path.
//
//lint:hotpath
func hotRoot(ch chan int) int {
	return rangeHelper(ch)
}

// allowedWait documents a bounded-wait audit.
//
//lint:hotpath
func allowedWait(ch chan int) int {
	return <-ch //lint:allow chanown producer is a buffered one-shot filled before this call
}
