// Fixture for the errdrop analyzer: discarded error results in statement
// position are flagged; explicit `_ =` discards, console fmt output, and
// in-memory sinks are not.
package errdrop

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

func fail() error { return errors.New("boom") }

func open() (*os.File, error) { return nil, errors.New("no") }

func statements() {
	fail()       // want "errdrop"
	go fail()    // want "errdrop"
	defer fail() // want "errdrop"
	open()       // want "errdrop"
	_ = fail()   // explicit discard: allowed
	fail()       //lint:allow errdrop fixture override
}

func console() {
	fmt.Println("hi")               // best-effort console: allowed
	fmt.Fprintln(os.Stderr, "hi")   // best-effort console: allowed
	fmt.Fprintf(os.Stdout, "%d", 1) // best-effort console: allowed
	f, _ := open()
	fmt.Fprintln(f, "hi") // want "errdrop"
}

func sinks() {
	var b bytes.Buffer
	fmt.Fprintf(&b, "x") // in-memory sink: allowed
	var sb strings.Builder
	sb.WriteString("y")    // in-memory sink method: allowed
	fmt.Fprintln(&sb, "z") // in-memory sink: allowed
}
