package detorder

import "fmt"

// Test files are exempt: asserting set membership inside a map range is
// order-independent reporting.
func reportMembers(m map[string]int) {
	for k := range m {
		fmt.Println("member", k)
	}
}
