// Fixture for the detorder analyzer: map-range loops whose bodies reach
// output or accumulation sinks are flagged; the collect-keys-sort idiom,
// commutative accumulation, and slice iteration are not.
package detorder

import (
	"fmt"
	"sort"
)

// Printing inside a map range leaks iteration order into output.
func printsInOrder(m map[string]float64) {
	for k, v := range m { // want "detorder"
		fmt.Println(k, v)
	}
}

// Appending into a slice declared before the loop, never sorted: the
// resulting slice order is random per run.
func accumulatesUnsorted(m map[string]float64) []string {
	var keys []string
	for k := range m { // want "detorder"
		keys = append(keys, k)
	}
	return keys
}

// The canonical fix: collect, sort, then range over the sorted slice.
// The append sink is exempt because the destination is sorted after.
func collectSortRange(m map[string]float64) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// Commutative accumulation does not observe order.
func sums(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// tableWriter mimics the experiment table writers: `row` is a sink by name.
type tableWriter struct{}

func (tableWriter) row(cells ...string) {}

func writesRows(t tableWriter, m map[string]float64) {
	for k := range m { // want "detorder"
		t.row(k)
	}
}

// Ranging over a slice is deterministic; sinks inside are fine.
func sliceRangeIsFine(xs []string) {
	for _, x := range xs {
		fmt.Println(x)
	}
}

// A sprint-family call is a sink even without direct I/O: the bytes it
// builds are observable downstream.
func buildsString(m map[string]int) string {
	out := ""
	for k := range m { // want "detorder"
		out += fmt.Sprintf("%s,", k)
	}
	return out
}

// The escape hatch: annotated loops are suppressed.
func annotated(m map[string]int) {
	//lint:allow detorder fixture exercises the annotation escape
	for k := range m {
		fmt.Println(k)
	}
}
