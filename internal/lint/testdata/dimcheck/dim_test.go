package dimcheck

// Unlike most of the suite, dimcheck runs on test files too: a dimensional
// mix in a test corrupts the expectation it encodes.
func mixedExpectation(r Rate, c Congestion) float64 {
	return r + c // want "dimcheck"
}
