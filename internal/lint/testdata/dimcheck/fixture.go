// Fixture for the dimcheck analyzer: the package declares its own Rate and
// Congestion aliases (dimcheck recognizes the dimensional types by name),
// then mixes them in every way the analyzer distinguishes.
package dimcheck

type Rate = float64

type Congestion = float64

// Additive arithmetic across dimensions is flagged at the operator.
func addsMix(r Rate, c Congestion) float64 {
	return r + c // want "dimcheck"
}

// So are comparisons: ordering a throughput against a queue length is a
// category error.
func comparesMix(r Rate, c Congestion) bool {
	return r < c // want "dimcheck"
}

// Erasing the dimensions explicitly through float64 is the sanctioned mix.
func sanctionedMix(r Rate, c Congestion) float64 {
	return float64(r) + float64(c)
}

// Multiplication and division are dimension-erasing: ratios like c/r and
// coefficient scaling are legitimate physics.
func ratiosAreFine(r Rate, c Congestion) float64 {
	return c / r * 2
}

// Converting one dimension straight into the other is flagged...
func relabels(c Congestion) Rate {
	return Rate(c) // want "dimcheck"
}

// ...unless laundered through float64, which states the intent.
func relabelsExplicitly(c Congestion) Rate {
	return Rate(float64(c))
}

func takesRate(r Rate) float64 { return float64(r) }

// Passing a congestion where a rate parameter is declared is flagged at
// the argument.
func passesWrongDim(c Congestion) float64 {
	return takesRate(c) // want "dimcheck"
}

func sumRates(vals ...Rate) Rate {
	var s Rate
	for _, v := range vals {
		s += v
	}
	return s
}

// Variadic parameters check each argument against the element dimension.
func variadicMix(r Rate, c Congestion) Rate {
	return sumRates(r, c) // want "dimcheck"
}

// Returning across dimensions is flagged against the declared result.
func returnsWrongDim(c Congestion) Rate {
	return c // want "dimcheck"
}

// Assigning into a declared slot of the other dimension is flagged; plain
// := is not (the new variable inherits the RHS dimension).
func assignsWrongDim(r Rate, c Congestion) Rate {
	var out Rate
	out = c // want "dimcheck"
	fresh := c
	_ = fresh
	return out
}

// The dataflow part: a plain float64 local fed only from rates carries the
// rate dimension to its uses.
func hiddenDimension(r Rate, c Congestion) bool {
	var x float64
	x = r + r
	return x < c // want "dimcheck"
}

// Conflicting feeds make the analyzer give up on the local rather than
// guess: no finding on the mixed use below.
func conflictingFeeds(r Rate, c Congestion, swap bool) bool {
	var x float64
	if swap {
		x = c + c
	} else {
		x = r + r
	}
	return x < c
}

// Untyped constants are dimensionless and combine with anything.
func constantsAreFine(r Rate) Rate {
	return r + 0.1
}

// The escape hatch: an annotated mix with a justification is suppressed.
func annotated(r Rate, c Congestion) float64 {
	return r + c //lint:allow dimcheck fixture exercises the annotation escape
}
