// Package allocfree exercises the interprocedural zero-alloc analyzer:
// annotated roots, transitive reachability, the guarded-grow exemption,
// the audited allow, boxing, closures, and the unknown-callee default.
package allocfree

import (
	"math"
	"strconv"
)

// HotClean is the contract in its intended shape: guarded grow, in-place
// writes, and an allocation-free transitive callee.
//
//lint:hotpath
func HotClean(dst, rates []float64) []float64 {
	if cap(dst) < len(rates) {
		dst = make([]float64, len(rates)) // guarded grow: exempt
	}
	dst = dst[:len(rates)]
	for i := range rates {
		dst[i] = double(rates[i])
	}
	return dst
}

func double(x float64) float64 { return 2 * x }

// HotMath may call the allocation-free stdlib allowlist.
//
//lint:hotpath
func HotMath(x float64) float64 { return math.Sqrt(x) }

// HotDirect allocates in its own body.
//
//lint:hotpath
func HotDirect(n int) []float64 {
	out := make([]float64, n) // want "allocfree"
	return out
}

// HotTransitive reaches an allocation two hops down.
//
//lint:hotpath
func HotTransitive(xs []float64) float64 { return middle(xs) }

func middle(xs []float64) float64 { return grows(xs) }

func grows(xs []float64) float64 {
	var tmp []float64
	tmp = append(tmp, xs...) // want "allocfree"
	return tmp[0]
}

// ColdAlloc is not reachable from any root: allocating here is fine.
func ColdAlloc(n int) []float64 { return make([]float64, n) }

// HotClosure captures a local — the closure needs a heap environment.
//
//lint:hotpath
func HotClosure(xs []float64) float64 {
	s := 0.0
	add := func(x float64) { s += x } // want "allocfree"
	for _, x := range xs {
		add(x)
	}
	return s
}

// HotBox boxes a float into an interface word.
//
//lint:hotpath
func HotBox(x float64) interface{} {
	return x // want "allocfree"
}

// HotMap writes a map key, which may grow the table.
//
//lint:hotpath
func HotMap(m map[string]int, k string) {
	m[k] = 1 // want "allocfree"
}

type stepper interface{ step(x float64) float64 }

// HotIface dispatches through an interface: a contract boundary, not an
// edge — the implementation carries its own annotation where it lives.
//
//lint:hotpath
func HotIface(s stepper, x float64) float64 { return s.step(x) }

// HotExternal calls outside the module with no facts available: the
// analyzer must assume the worst.
//
//lint:hotpath
func HotExternal(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64) // want "allocfree"
}

// HotAllowed documents an audited cold-path fallback.
//
//lint:hotpath
func HotAllowed(p *float64) *float64 {
	if p == nil {
		p = new(float64) //lint:allow allocfree nil-arg convenience fallback, cold by contract
	}
	return p
}
