// Package guardedby exercises the lock-discipline analyzer: //lint:guardedby
// field annotations checked against the CFG lock-held lattice, and
// //lint:locked call-site preconditions.
package guardedby

import "sync"

// counter is the canonical guarded struct: n may only be touched under mu.
type counter struct {
	mu sync.RWMutex
	//lint:guardedby mu
	n int
}

// bad writes without any lock.
func (c *counter) bad() {
	c.n++ // want "write to c.n"
}

// badRead reads without any lock.
func (c *counter) badRead() int {
	return c.n // want "read of c.n"
}

// good holds the exclusive lock; the deferred unlock runs at return, so
// the lock stays held for the whole body.
func (c *counter) good() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// goodRead holds the read lock across the read.
func (c *counter) goodRead() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// readLockWrite holds only the shared lock: reads are licensed, the write
// is not.
func (c *counter) readLockWrite() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.n++ // want "holding only the read lock"
	return c.n
}

// tryBranches holds the lock only where TryLock succeeded.
func (c *counter) tryBranches() {
	if c.mu.TryLock() {
		c.n++
		c.mu.Unlock()
	} else {
		c.n++ // want "write to c.n"
	}
}

// tryGate is the negated early-return idiom: past the guard, the lock is
// held.
func (c *counter) tryGate() {
	if !c.mu.TryLock() {
		return
	}
	c.n++
	c.mu.Unlock()
}

// releasedEarly loses the lock at the explicit unlock.
func (c *counter) releasedEarly() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.n++ // want "write to c.n"
}

// relockLoop releases and re-acquires per iteration; both accesses are
// covered, and the loop back-edge does not leak the held state past the
// unlock.
func (c *counter) relockLoop(rounds int) {
	for i := 0; i < rounds; i++ {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
}

// bumpLocked declares its precondition instead of acquiring: callers must
// hold c.mu exclusively.
//
//lint:locked mu
func (c *counter) bumpLocked() {
	c.n++
}

// goodCaller satisfies the //lint:locked precondition.
func (c *counter) goodCaller() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bumpLocked()
}

// badCaller calls the locked method without holding anything.
func (c *counter) badCaller() {
	c.bumpLocked() // want "requires c.mu held exclusively"
}

// spawned closures are separate units: the lock held at spawn time is no
// guarantee at run time.
func (c *counter) leakyClosure(done chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want "write to c.n"
		close(done)
	}()
}

// selfLockingClosure acquires inside the literal, which is fine.
func (c *counter) selfLockingClosure(done chan struct{}) {
	go func() {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
		close(done)
	}()
}

// misannotated names a lock that is not a sibling field.
type misannotated struct {
	//lint:guardedby nosuch // want "names no sibling field"
	v int
}

// allowEscape documents an audited exception.
func (c *counter) allowEscape() int {
	return c.n //lint:allow guardedby read is racy by design; monotonic counter used for logging only
}
