// Fixture for the parsafe analyzer: variables written both inside a go
// func literal and by the spawning function on the far side of the spawn
// are flagged unless a lock or a join orders the writes.
package parsafe

import "sync"

// The canonical race: the goroutine and the spawner both write total with
// nothing ordering them.
func racyWrite() int {
	total := 0
	go func() {
		total++ // want "parsafe"
	}()
	total = 5
	return total
}

// A spawn inside a loop races with writes anywhere in the loop: the
// previous iteration's goroutine is still live when the next iteration
// writes, even though the write precedes the go statement textually.
func racyLoop(items []int) int {
	n := 0
	for range items {
		n++
		go func() {
			n++ // want "parsafe"
		}()
	}
	return n
}

// Writes strictly before the spawn are ordered by the spawn itself.
func happensBefore() int {
	total := 41
	go func() {
		total++
	}()
	return total
}

// A mutex held around both writes is a guard.
func mutexGuarded() int {
	var mu sync.Mutex
	total := 0
	go func() {
		mu.Lock()
		total++
		mu.Unlock()
	}()
	mu.Lock()
	total = 5
	mu.Unlock()
	return total
}

// A Wait() join between the spawn and the outer write orders them.
func joined() int {
	var wg sync.WaitGroup
	total := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		total++
	}()
	wg.Wait()
	total = 5
	return total
}

// Range variables are per-iteration; the goroutine's copy is private and
// the header redefinition is not an outer write.
func loopVarIsPrivate(items []int) {
	for _, v := range items {
		go func() {
			v++
			_ = v
		}()
	}
}

// The literal's own locals and parameters cannot race with the spawner.
func localsArePrivate() int {
	shared := 0
	go func() {
		private := 0
		private++
		_ = private
	}()
	shared = 5
	return shared
}

// The escape hatch: an annotated write with a justification is suppressed.
func annotated() int {
	total := 0
	go func() {
		total++ //lint:allow parsafe fixture exercises the annotation escape
	}()
	total = 5
	return total
}
