package parsafe

// parsafe runs on test files too: a racy test is flaky regardless of what
// it asserts.
func racyInTest() int {
	total := 0
	go func() {
		total++ // want "parsafe"
	}()
	total = 5
	return total
}
