// Fixture for the feasguard analyzer: congestion-formula calls (declared
// in helpers.go) are flagged unless a dominating feasibility guard, an
// inf-safe consumer, a result-inspection idiom, or static feasibility of
// the argument covers them.
package feasguard

import "math"

// Unguarded scalar evaluation: the canonical finding.
func unguarded(r Rate) Congestion {
	return G(r) // want "feasguard"
}

// Unguarded vector evaluation.
func unguardedVec(r []Rate) Congestion {
	return GTotal(r) // want "feasguard"
}

// Derivative helpers share the pole and are flagged by name even though
// their result is a plain float64.
func unguardedDeriv(r Rate) float64 {
	return GPrime(r) // want "feasguard"
}

// A dominating guard call tied to the same rate data is clean.
func guardedByCall(r []Rate) Congestion {
	if !InDomain(r) {
		return 0
	}
	return GTotal(r)
}

// A direct comparison against 1 on every path is also a guard.
func guardedByComparison(r Rate) Congestion {
	if r >= 1 {
		return 0
	}
	return G(r)
}

// A guard and the call sharing one statement: the guard binds when it
// appears before the call.
func guardedSameStmt(r []Rate) Congestion {
	if InDomain(r) && GTotal(r) < 10 {
		return GTotal(r)
	}
	return 0
}

// Reading a *Feasible field of a report derived from the rates is a guard.
func guardedByReport(r []Rate) Congestion {
	rep := CheckFeasible(r)
	if !rep.Feasible {
		return 0
	}
	return GTotal(r)
}

// A guard over different data does not protect this rate vector.
func guardedWrongData(r, other []Rate) Congestion {
	if !InDomain(other) {
		return 0
	}
	return GTotal(r) // want "feasguard"
}

// A guard that does not dominate (only one branch checks) does not count.
func guardOnOneBranch(r []Rate, lucky bool) Congestion {
	if lucky {
		_ = InDomain(r)
	}
	return GTotal(r) // want "feasguard"
}

// Results fed directly into a Utility evaluation are inf-safe by the AU
// contract.
func consumedByUtility(u U, r Rate) float64 {
	return u.Value(G(r))
}

// The result-inspection idiom: the caller assigns the result and checks it
// for the out-of-domain sentinel.
func resultInspected(r Rate) float64 {
	c := G(r)
	if math.IsInf(float64(c), 1) {
		return -1
	}
	return float64(c)
}

// Statically feasible arguments need no guard: a constant in (0, 1)...
func staticScalar() Congestion {
	return G(0.5)
}

// ...a constant through a single reaching definition...
func staticThroughVar() Congestion {
	x := 0.3
	return G(x)
}

// ...and a literal of positive constants summing below 1.
func staticVector() Congestion {
	return GTotal([]Rate{0.2, 0.3})
}

// A literal summing above 1 is statically infeasible and gets flagged.
func staticInfeasibleVector() Congestion {
	return GTotal([]Rate{0.7, 0.6}) // want "feasguard"
}

// Allocation-contract methods are defined on all of R+^n with +Inf outside
// the domain; their bodies are exempt wholesale.
type alloc struct{}

func (alloc) Congestion(r []Rate) Congestion {
	return GTotal(r)
}

// Same-file callees are internal layering and never targets.
func viaLocalHelper(r Rate) Congestion {
	return localFormula(r)
}

func localFormula(x Rate) Congestion {
	return Congestion(x / (1 - x))
}

// The escape hatch: an annotated call with a justification is suppressed.
func annotated(r Rate) Congestion {
	return G(r) //lint:allow feasguard fixture exercises the annotation escape
}
