// Helper declarations for the feasguard fixture.  They live in a separate
// file from the call sites on purpose: feasguard exempts same-file callees
// (a file's own formula helpers are its internal layering), so the targets
// in fixture.go must resolve to another file to be visible at all.
package feasguard

import "math"

type Rate = float64

type Congestion = float64

// G is the M/M/1 congestion formula: the dimensional fingerprint feasguard
// looks for (Rate in, Congestion out).
func G(x Rate) Congestion {
	if x >= 1 {
		return Congestion(math.Inf(1))
	}
	return Congestion(x / (1 - x))
}

// GTotal maps a rate vector to its total congestion.
func GTotal(r []Rate) Congestion {
	var s Rate
	for _, v := range r {
		s += v
	}
	return G(s)
}

// GPrime is a derivative helper: plain float64 result, but it shares G's
// pole, so feasguard treats it as a target by name.
func GPrime(x Rate) float64 {
	d := 1 - x
	return 1 / (d * d)
}

// InDomain is a recognized guard function.
func InDomain(r []Rate) bool {
	var s Rate
	for _, v := range r {
		if v <= 0 {
			return false
		}
		s += v
	}
	return s < 1
}

// Report mimics core.FeasibilityReport: reading its Feasible field counts
// as a guard.
type Report struct {
	Feasible bool
}

// CheckFeasible is a recognized guard function.
func CheckFeasible(r []Rate) Report {
	return Report{Feasible: InDomain(r)}
}

// U mimics the Utility contract: Value maps c = +Inf to -Inf, so results
// fed directly into it are inf-safe by construction.
type U struct{}

// Value is a recognized inf-safe consumer.
func (U) Value(c Congestion) float64 {
	if math.IsInf(float64(c), 1) {
		return math.Inf(-1)
	}
	return -float64(c)
}
