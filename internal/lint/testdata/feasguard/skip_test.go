package feasguard

// Test files are exempt: tests deliberately probe out-of-domain behavior
// (the pole at 1, overload, negative rates).
func probePole() Congestion {
	return G(1.5)
}
