// Package staleallow exercises the framework's stale-annotation check:
// an //lint:allow that suppresses nothing is itself a finding, so the
// tree's allows cannot outlive the code they were written for.  The
// fixture is run with only floateq active: allows for analyzers outside
// the running set are left alone (they may fire on the full suite).
package staleallow

// usedAllow suppresses a real floateq finding: not stale.
func usedAllow(a, b float64) bool {
	return a == b //lint:allow floateq exact sentinel comparison
}

// usedStandaloneAllow covers the next line from a line of its own.
func usedStandaloneAllow(a, b float64) bool {
	//lint:allow floateq exact sentinel comparison
	return a == b
}

// staleAllow names a running analyzer but suppresses nothing.
func staleAllow(a, b float64) bool {
	return a < b //lint:allow floateq nothing compares floats for equality here // want "staleallow"
}

// typoAllow names no analyzer at all: always stale, whatever is running.
func typoAllow(a, b float64) bool {
	return a == b //lint:allow floatqe typo'd analyzer name // want "staleallow" "floateq"
}

// foreignAllow names an analyzer that is not running: left alone.
func foreignAllow(a, b float64) bool {
	return a < b //lint:allow parsafe not running in this fixture
}
