// Package ctxflow exercises the cancellation-flow analyzer: back-edge
// polling (for/range, labeled continue, goto-formed loops), the
// outermost-loop amortization rule, the trivial-loop exemption,
// gate-struct provenance, the Ctx sibling-variant rule, and the audited
// allow.
package ctxflow

import (
	"context"
	"math"
)

// PollsCtx checks its context on every iteration: the contract's shape.
func PollsCtx(ctx context.Context, xs []float64) float64 {
	s := 0.0
	for i := range xs {
		if ctx.Err() != nil {
			return s
		}
		s += xs[i]
	}
	return s
}

// MissesPoll does per-iteration work through a function call without
// ever consulting ctx.
func MissesPoll(ctx context.Context, xs []float64) float64 {
	s := 0.0
	for i := range xs { // want "ctxflow"
		s += square(xs[i])
	}
	return s
}

func square(x float64) float64 { return x * x }

// TrivialLoopExempt is a bounded loop of straight-line arithmetic: the
// whole pass is cheaper than a poll, so the amortization exemption
// applies and nothing is flagged.
func TrivialLoopExempt(ctx context.Context, xs []float64) float64 {
	s := 0.0
	for i := range xs {
		s += xs[i] * xs[i]
	}
	return s
}

// TrivialMathLoop stays exempt with stdlib math calls in the body —
// nanosecond work that doesn't break the microsecond budget.
func TrivialMathLoop(ctx context.Context, xs []float64) float64 {
	s := 0.0
	for i := range xs {
		s += math.Abs(xs[i])
	}
	return s
}

// UnconditionedSpin has no loop condition, so boundedness is not
// syntactically evident and the exemption never applies.
func UnconditionedSpin(ctx context.Context, xs []float64) float64 {
	s := 0.0
	i := 0
	for { // want "ctxflow"
		if i >= len(xs) {
			break
		}
		s += xs[i]
		i++
	}
	return s
}

// ChanRangeNoPoll ranges over a channel: each iteration can block
// indefinitely, so the loop is never trivial.
func ChanRangeNoPoll(ctx context.Context, ch chan float64) float64 {
	s := 0.0
	for v := range ch { // want "ctxflow"
		s += v
	}
	return s
}

// OuterPollCoversInner polls in the round loop only: the inner per-user
// loop is amortized by the outer back-edge and must not be flagged.
func OuterPollCoversInner(ctx context.Context, m [][]float64) float64 {
	s := 0.0
	for r := range m {
		if ctx.Err() != nil {
			return s
		}
		for c := range m[r] {
			s += m[r][c]
		}
	}
	return s
}

type gate struct{ ctx context.Context }

func (g gate) hit() bool { return g.ctx.Err() != nil }

// PollsViaGate wraps ctx in a gate struct first; provenance tracking must
// recognize the gate as ctx-derived.
func PollsViaGate(ctx context.Context, xs []float64) float64 {
	gt := gate{ctx: ctx}
	s := 0.0
	for i := range xs {
		if gt.hit() {
			return s
		}
		s += xs[i]
	}
	return s
}

// LabeledNoPoll's labeled continue adds a second back-edge onto the outer
// loop; neither polls, and the finding lands once, on the outer loop.
func LabeledNoPoll(ctx context.Context, m [][]float64) float64 {
	s := 0.0
outer:
	for r := range m { // want "ctxflow"
		for c := range m[r] {
			if m[r][c] < 0 {
				continue outer
			}
			s += m[r][c]
		}
	}
	return s
}

// GotoNoPoll forms its loop with a backward goto — no for statement at
// all — and still must poll on the back-edge.
func GotoNoPoll(ctx context.Context, xs []float64) float64 {
	s := 0.0
	i := 0
loop:
	if i < len(xs) { // want "ctxflow"
		s += xs[i]
		i++
		goto loop
	}
	return s
}

// GotoPolls is the same goto loop with the poll in place.
func GotoPolls(ctx context.Context, xs []float64) float64 {
	s := 0.0
	i := 0
loop:
	if i < len(xs) && ctx.Err() == nil {
		s += xs[i]
		i++
		goto loop
	}
	return s
}

// work and workCtx are the sibling pair the variant rule keys off.
func work(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[0]
}

func workCtx(ctx context.Context, xs []float64) float64 {
	if ctx.Err() != nil {
		return 0
	}
	return work(xs)
}

// DropsCtx holds a deadline but hands the work to the variant that
// ignores it.
func DropsCtx(ctx context.Context, xs []float64) float64 {
	return work(xs) // want "ctxflow"
}

// ThreadsCtx propagates the deadline through the Ctx variant.
func ThreadsCtx(ctx context.Context, xs []float64) float64 {
	return workCtx(ctx, xs)
}

// AllowedTightLoop documents an audited exception: a bounded per-item
// pass whose calls are known-cheap, accepted after review.
func AllowedTightLoop(ctx context.Context, xs []float64) float64 {
	s := 0.0
	//lint:allow ctxflow O(len) scoring pass over at most a few dozen items
	for i := range xs {
		s += square(xs[i])
	}
	return s
}
