package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ChanOwnName is the analyzer's registered name (and //lint:allow token).
const ChanOwnName = "chanown"

// ChanOwn enforces channel ownership discipline — the rules that keep
// close() panics and unbounded blocking out of the tree:
//
//   - A channel declared with `//lint:chanowner Run` (on a channel-typed
//     struct field or var declaration) may only be closed inside a function
//     named Run: exactly one owner closes, everyone else just sends or
//     receives.
//   - No function may close a channel it received as a parameter — the
//     callee cannot know whether the creator (or anyone else) will close
//     it too.  Closing a parameter is the classic double-close seed.
//   - A send (or a second close) that is dominated by a close of the same
//     channel is a guaranteed panic, detected through the CFG dominator
//     sets.
//   - A blocking receive (`<-ch` or `range ch`) must not appear in a
//     //lint:hotpath function or anything locally reachable from one: the
//     zero-alloc hot paths also carry a bounded-wait contract.  Receives
//     inside a select that has a default case are non-blocking and exempt;
//     anything else needs `//lint:allow chanown <bounded-wait reason>`.
//
// Like the lock lattice, channels are tracked per variable or field object;
// a channel reached through an alias is not tracked.  Test files are
// exempt.
var ChanOwn = &Analyzer{
	Name: ChanOwnName,
	Doc: "channel ownership: close only inside the //lint:chanowner owner, " +
		"never close a parameter, never send after a dominating close, and " +
		"no blocking receive on a //lint:hotpath function",
	Run: runChanOwn,
}

func runChanOwn(pass *Pass) error {
	owners := collectChanOwners(pass)
	fc := newFlowCache(pass)
	for _, fi := range pass.Graph.Funcs {
		if pass.InTestFile(fi.Decl.Pos()) {
			continue
		}
		checkChanFunc(pass, fc, fi, owners)
	}
	checkHotpathReceives(pass)
	return nil
}

// collectChanOwners maps annotated channel objects (struct fields and var
// declarations) to their declared owner's function name, reporting
// malformed annotations.
func collectChanOwners(pass *Pass) map[*types.Var]string {
	owners := make(map[*types.Var]string)
	record := func(names []*ast.Ident, args []string, pos token.Pos) {
		if len(args) == 0 {
			pass.Reportf(pos, "//lint:chanowner names no owner; write //lint:chanowner <FuncName>")
			return
		}
		for _, name := range names {
			v, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if _, isChan := types.Unalias(v.Type()).Underlying().(*types.Chan); !isChan {
				pass.Reportf(pos, "//lint:chanowner on non-channel %s; the annotation only applies to channels", name.Name)
				continue
			}
			owners[v] = args[0]
		}
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				if n.Fields == nil {
					return true
				}
				for _, fld := range n.Fields.List {
					args, pos, found := directiveArgs(fld.Doc, ChanOwnerDirective)
					if !found {
						args, pos, found = directiveArgs(fld.Comment, ChanOwnerDirective)
					}
					if found {
						record(fld.Names, args, pos)
					}
				}
			case *ast.ValueSpec:
				args, pos, found := directiveArgs(n.Doc, ChanOwnerDirective)
				if !found {
					args, pos, found = directiveArgs(n.Comment, ChanOwnerDirective)
				}
				if found {
					record(n.Names, args, pos)
				}
			}
			return true
		})
	}
	return owners
}

// chanUse is one close or send on a tracked channel.
type chanUse struct {
	pos  token.Pos
	node ast.Node // the close CallExpr or SendStmt
	v    *types.Var
	path string // display form, e.g. "f.out"
}

// checkChanFunc applies the close-side rules to one declaration (nested
// literals included: a closure's close counts as the enclosing function's,
// which is what the owner rule should see — the goroutine belongs to its
// spawner).
func checkChanFunc(pass *Pass, fc *flowCache, fi *FuncInfo, owners map[*types.Var]string) {
	var closes, sends []chanUse
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !isBuiltinClose(pass, n) || len(n.Args) != 1 {
				return true
			}
			v, path := chanVar(pass, n.Args[0])
			if v == nil {
				return true
			}
			closes = append(closes, chanUse{n.Pos(), n, v, path})
			if owner, ok := owners[v]; ok && fi.Obj.Name() != owner {
				pass.Reportf(n.Pos(),
					"close of %s outside its declared owner %s (//lint:chanowner); move the close into %s or change the owner annotation",
					path, owner, owner)
			} else if !ok && isParamOf(v, fi.Obj) {
				pass.Reportf(n.Pos(),
					"%s closes its channel parameter %s; only the channel's creator should close it — return instead, or declare ownership with //lint:chanowner %s at the channel's declaration",
					fi.Obj.Name(), path, fi.Obj.Name())
			}
		case *ast.SendStmt:
			v, path := chanVar(pass, n.Chan)
			if v != nil {
				sends = append(sends, chanUse{n.Pos(), n, v, path})
			}
		}
		return true
	})
	if len(closes) == 0 {
		return
	}
	// Send-after-close and double close: a use dominated by an earlier
	// close of the same channel panics on every execution that reaches it.
	sig, _ := fi.Obj.Type().(*types.Signature)
	ff := fc.flowFor(fi.Decl.Body, sig)
	checkDominatedUse := func(u chanUse, what string) {
		for _, dn := range ff.dominatorNodes(u.pos) {
			for _, cl := range closes {
				if cl.v != u.v || cl.pos >= u.pos {
					continue
				}
				if dn.Pos() <= cl.pos && cl.pos <= dn.End() && !inDeferOrLit(dn, cl.pos) {
					pass.Reportf(u.pos, "%s on %s, but it was already closed at %s — this panics; restructure so the owner closes exactly once, after the last send",
						what, u.path, shortPos(pass.Fset, cl.pos))
					return
				}
			}
		}
	}
	for _, s := range sends {
		checkDominatedUse(s, "send")
	}
	for _, c := range closes {
		checkDominatedUse(c, "second close")
	}
}

// inDeferOrLit reports whether pos sits inside a defer statement or
// function literal within node n — those closes run at another time, so
// they do not dominate a textual successor.
func inDeferOrLit(n ast.Node, pos token.Pos) bool {
	inside := false
	ast.Inspect(n, func(m ast.Node) bool {
		if inside {
			return false
		}
		switch m.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			if m.Pos() <= pos && pos <= m.End() {
				inside = true
			}
			return false
		}
		return true
	})
	return inside
}

// checkHotpathReceives walks every function locally reachable from a
// //lint:hotpath root (the allocfree BFS) and flags blocking receives.
func checkHotpathReceives(pass *Pass) {
	g := pass.Graph
	type visit struct {
		fi   *FuncInfo
		root *FuncInfo
	}
	var queue []visit
	seen := make(map[*FuncInfo]bool)
	for _, fi := range g.Funcs {
		if fi.Hotpath {
			queue = append(queue, visit{fi, fi})
			seen[fi] = true
		}
	}
	reportedAt := make(map[token.Pos]bool)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		fi, root := v.fi, v.root
		if !pass.InTestFile(fi.Decl.Pos()) {
			where := ""
			if fi != root {
				where = " (in " + fi.Display + ", reachable from it)"
			}
			// Receives inside a select carrying a default case are bounded.
			var exempt []ast.Node
			ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
				if sel, ok := n.(*ast.SelectStmt); ok && selectHasDefault(sel) {
					exempt = append(exempt, sel)
				}
				return true
			})
			inExempt := func(pos token.Pos) bool {
				for _, e := range exempt {
					if e.Pos() <= pos && pos <= e.End() {
						return true
					}
				}
				return false
			}
			report := func(pos token.Pos, form string) {
				if reportedAt[pos] || inExempt(pos) {
					return
				}
				reportedAt[pos] = true
				pass.Reportf(pos,
					"%s on the hot path rooted at //lint:hotpath %s%s blocks unboundedly; make it non-blocking (select with default) or annotate //lint:allow chanown with the bounded-wait justification",
					form, root.Display, where)
			}
			ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						report(n.Pos(), "channel receive")
					}
				case *ast.RangeStmt:
					t := pass.TypesInfo.TypeOf(n.X)
					if t != nil {
						if _, isChan := types.Unalias(t).Underlying().(*types.Chan); isChan {
							report(n.Pos(), "range over a channel")
						}
					}
				}
				return true
			})
		}
		for _, c := range fi.Calls {
			if c.Iface || c.Callee == nil || c.Local == nil || seen[c.Local] {
				continue
			}
			seen[c.Local] = true
			queue = append(queue, visit{c.Local, root})
		}
	}
}

// selectHasDefault reports a default clause in the select body.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, cs := range sel.Body.List {
		if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// isBuiltinClose reports a call to the close builtin.
func isBuiltinClose(pass *Pass, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "close"
}

// chanVar resolves a channel expression to its variable or field object
// and a display path; aliased or computed channels return nil.
func chanVar(pass *Pass, e ast.Expr) (*types.Var, string) {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok {
			return v, e.Name
		}
		if v, ok := pass.TypesInfo.Defs[e].(*types.Var); ok {
			return v, e.Name
		}
	case *ast.SelectorExpr:
		if v := selectedField(pass, e); v != nil {
			if base := lockPath(e.X); base != "" {
				return v, base + "." + e.Sel.Name
			}
			return v, e.Sel.Name
		}
	}
	return nil, ""
}

// isParamOf reports whether v is a parameter of fn.
func isParamOf(v *types.Var, fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return true
		}
	}
	return false
}
