package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// flowFixture typechecks one source file and returns the flow facts of the
// function named fn, plus lookup helpers bound to the fixture.
type flowFixture struct {
	pass *Pass
	fd   *ast.FuncDecl
	ff   *funcFlow
}

func buildFlow(t *testing.T, src, fn string) *flowFixture {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{}
	pkg, err := conf.Check("fixture", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	pass := &Pass{Fset: fset, Files: []*ast.File{file}, Pkg: pkg, TypesInfo: info}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Name.Name != fn {
			continue
		}
		sig, _ := info.TypeOf(fd.Name).(*types.Signature)
		return &flowFixture{pass: pass, fd: fd, ff: newFuncFlow(pass, fd.Body, sig)}
	}
	t.Fatalf("no function %q in fixture", fn)
	return nil
}

// varNamed finds the (unique) variable with the given name in the fixture.
func (fx *flowFixture) varNamed(t *testing.T, name string) *types.Var {
	t.Helper()
	var found *types.Var
	for id, obj := range fx.pass.TypesInfo.Defs {
		if id.Name != name {
			continue
		}
		if v, ok := obj.(*types.Var); ok {
			if found != nil {
				t.Fatalf("variable %q declared more than once in fixture", name)
			}
			found = v
		}
	}
	if found == nil {
		t.Fatalf("no variable %q in fixture", name)
	}
	return found
}

// usePos locates the marker comment and returns the position just before
// it, i.e. of the code on the marked line.
func (fx *flowFixture) usePos(t *testing.T, src, marker string) token.Pos {
	t.Helper()
	off := strings.Index(src, marker)
	if off < 0 {
		t.Fatalf("marker %q not in fixture source", marker)
	}
	return fx.pass.Fset.File(fx.fd.Pos()).Pos(off - 2)
}

func TestReachingDefsStraightLine(t *testing.T) {
	src := `package fixture
func f() float64 {
	x := 1.0
	x = 2.0
	return x // use
}`
	fx := buildFlow(t, src, "f")
	defs := fx.ff.reachingDefs(fx.varNamed(t, "x"), fx.usePos(t, src, "// use"))
	if len(defs) != 1 {
		t.Fatalf("got %d reaching defs, want 1 (the redefinition shadows)", len(defs))
	}
	if lit, ok := defs[0].rhs.(*ast.BasicLit); !ok || lit.Value != "2.0" {
		t.Errorf("reaching def rhs = %v, want the literal 2.0", defs[0].rhs)
	}
}

func TestReachingDefsBranchJoin(t *testing.T) {
	src := `package fixture
func f(c bool) float64 {
	x := 1.0
	if c {
		x = 2.0
	}
	return x // use
}`
	fx := buildFlow(t, src, "f")
	defs := fx.ff.reachingDefs(fx.varNamed(t, "x"), fx.usePos(t, src, "// use"))
	if len(defs) != 2 {
		t.Fatalf("got %d reaching defs, want 2 (both branches reach the join)", len(defs))
	}
}

func TestReachingDefsLoopBackEdge(t *testing.T) {
	src := `package fixture
func f(n int) float64 {
	x := 1.0
	for i := 0; i < n; i++ {
		x = x + 1
	}
	return x // use
}`
	fx := buildFlow(t, src, "f")
	defs := fx.ff.reachingDefs(fx.varNamed(t, "x"), fx.usePos(t, src, "// use"))
	if len(defs) != 2 {
		t.Fatalf("got %d reaching defs, want 2 (initial and loop-carried)", len(defs))
	}
}

func TestOpaqueDefsForAliasAndClosure(t *testing.T) {
	src := `package fixture
func g(p *float64) {}
func f() (float64, float64) {
	x := 1.0
	g(&x)
	y := 1.0
	h := func() { y = 2.0 }
	h()
	return x, y
}`
	fx := buildFlow(t, src, "f")
	for _, name := range []string{"x", "y"} {
		v := fx.varNamed(t, name)
		opaque := 0
		for _, d := range fx.ff.defsOf[v] {
			if d.rhs == nil {
				opaque++
			}
		}
		if opaque == 0 {
			t.Errorf("variable %s has no opaque definition despite alias/closure write", name)
		}
	}
}

func TestParamsAreEntryDefs(t *testing.T) {
	src := `package fixture
func f(r float64) float64 {
	return r // use
}`
	fx := buildFlow(t, src, "f")
	defs := fx.ff.reachingDefs(fx.varNamed(t, "r"), fx.usePos(t, src, "// use"))
	if len(defs) != 1 || defs[0].rhs != nil || defs[0].block != cfgEntry {
		t.Fatalf("parameter defs = %+v, want one opaque entry definition", defs)
	}
}

func TestDominatorNodesSeeGuardNotBranch(t *testing.T) {
	src := `package fixture
func guard(x float64) bool { return x < 1 }
func f(x float64) float64 {
	ok := guard(x)
	if ok {
		x = 0.5 // then-only
	} else {
		x = 0.9
	}
	return x // use
}`
	fx := buildFlow(t, src, "f")
	nodes := fx.ff.dominatorNodes(fx.usePos(t, src, "// use"))
	var sawGuard, sawThen bool
	for _, n := range nodes {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.CallExpr:
				if id, ok := m.Fun.(*ast.Ident); ok && id.Name == "guard" {
					sawGuard = true
				}
			case *ast.BasicLit:
				if m.Value == "0.5" {
					sawThen = true
				}
			}
			return true
		})
	}
	if !sawGuard {
		t.Errorf("dominator nodes do not include the guard call that every path crosses")
	}
	if sawThen {
		t.Errorf("dominator nodes include a branch-only statement; branches do not dominate the join")
	}
}

// The builder must not crash or mis-wire on the grabbier control shapes;
// the dataflow answers below pin the interesting joins.
func TestCFGControlShapes(t *testing.T) {
	src := `package fixture
func f(mode int, m map[int]float64) float64 {
	x := 0.0
	switch mode {
	case 0:
		x = 1.0
	case 1:
		x = 2.0
		fallthrough
	case 2:
		x = x * 2
	}
	for _, v := range m {
		if v > 3 {
			continue
		}
		if v > 4 {
			break
		}
		x = x + v
	}
loop:
	for i := 0; i < mode; i++ {
		if i == 2 {
			break loop
		}
	}
	if mode > 5 {
		goto done
	}
	x = x + 1
done:
	return x // use
}`
	fx := buildFlow(t, src, "f")
	defs := fx.ff.reachingDefs(fx.varNamed(t, "x"), fx.usePos(t, src, "// use"))
	// At minimum: the initial def, the switch arms, the range accumulation,
	// and the post-loop increment can all reach the final use (the goto
	// skips the increment on one path, so earlier defs survive the join).
	if len(defs) < 4 {
		t.Fatalf("got %d reaching defs at the exit join, want at least 4", len(defs))
	}
	if fx.ff.cfg.blocks[cfgExit].succs != nil {
		t.Errorf("exit block has successors %v, want none", fx.ff.cfg.blocks[cfgExit].succs)
	}
}

func TestUnreachableCodeNeverDominated(t *testing.T) {
	src := `package fixture
func f(x float64) float64 {
	if x < 1 {
		return x
	}
	return 0 // use
}`
	fx := buildFlow(t, src, "f")
	dom := fx.ff.dom
	for bi := range dom {
		if !dom[bi].has(cfgEntry) {
			t.Errorf("block %d is not dominated by entry", bi)
		}
	}
}

// ---- back edges (the loop substrate ctxflow leans on) -------------------

// backEdgeCount builds the flow facts for fn and returns its back-edges.
func backEdges(t *testing.T, src, fn string) [][2]int {
	t.Helper()
	fx := buildFlow(t, src, fn)
	edges := fx.ff.backEdges()
	for _, e := range edges {
		if !fx.ff.dom[e[0]].has(e[1]) {
			t.Errorf("edge %v reported as back-edge but target does not dominate source", e)
		}
	}
	return edges
}

func TestBackEdgesSimpleLoop(t *testing.T) {
	src := `package fixture
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`
	if got := backEdges(t, src, "f"); len(got) != 1 {
		t.Errorf("simple for loop has %d back-edges, want 1", len(got))
	}
}

func TestBackEdgesLabeledContinue(t *testing.T) {
	// With a for-post outer loop the labeled continue funnels through the
	// post block, so it joins the outer loop's own back-edge: two distinct
	// back-edges (inner, outer).
	src := `package fixture
func f(m [][]int) int {
	s := 0
outer:
	for i := 0; i < len(m); i++ {
		for j := range m[i] {
			if m[i][j] < 0 {
				continue outer
			}
			s += m[i][j]
		}
	}
	return s
}`
	if got := backEdges(t, src, "f"); len(got) != 2 {
		t.Errorf("labeled-continue for-post nest has %d back-edges, want 2 (inner, outer-via-post)", len(got))
	}

	// With a range outer loop there is no post block: the labeled continue
	// jumps straight to the outer head and forms its own back-edge.
	src2 := `package fixture
func f(m [][]int) int {
	s := 0
outer:
	for i := range m {
		for j := range m[i] {
			if m[i][j] < 0 {
				continue outer
			}
			s += m[i][j]
		}
	}
	return s
}`
	if got := backEdges(t, src2, "f"); len(got) != 3 {
		t.Errorf("labeled-continue range nest has %d back-edges, want 3 (inner, outer, labeled continue)", len(got))
	}
}

func TestBackEdgesGotoLoop(t *testing.T) {
	src := `package fixture
func f(n int) int {
	s := 0
	i := 0
loop:
	if i < n {
		s += i
		i++
		goto loop
	}
	return s
}`
	got := backEdges(t, src, "f")
	if len(got) != 1 {
		t.Fatalf("goto loop has %d back-edges, want 1", len(got))
	}
	// The natural loop of the goto edge must span from the labeled
	// condition through the goto statement itself.
	fx := buildFlow(t, src, "f")
	lo, hi, ok := fx.ff.loopSpan(got[0][0], got[0][1])
	if !ok {
		t.Fatalf("goto loop span empty")
	}
	loLine := fx.pass.Fset.Position(lo).Line
	hiLine := fx.pass.Fset.Position(hi).Line
	if loLine > 6 || hiLine < 9 {
		t.Errorf("goto loop span covers lines %d-%d, want the if-through-goto body (6-9)", loLine, hiLine)
	}
}

func TestBackEdgesSelectLoop(t *testing.T) {
	// A for{select{...}} event loop: the loop head block is empty (no
	// condition), so the back-edge and its span must come from the comm
	// clauses.
	src := `package fixture
func f(ch, done chan int) int {
	s := 0
	for {
		select {
		case v := <-ch:
			s += v
		case <-done:
			return s
		}
	}
}`
	got := backEdges(t, src, "f")
	if len(got) < 1 {
		t.Fatalf("select loop has %d back-edges, want at least 1", len(got))
	}
	fx := buildFlow(t, src, "f")
	covered := false
	for _, e := range got {
		if _, _, ok := fx.ff.loopSpan(e[0], e[1]); ok {
			covered = true
		}
	}
	if !covered {
		t.Errorf("no select-loop back-edge produced a non-empty span; ctxflow would go blind here")
	}
}

func TestBackEdgesNoneInStraightLine(t *testing.T) {
	src := `package fixture
func f(a, b int) int {
	if a > b {
		return a
	}
	return b
}`
	if got := backEdges(t, src, "f"); len(got) != 0 {
		t.Errorf("branch-only function has %d back-edges, want 0", len(got))
	}
}

// ---- lock-held lattice --------------------------------------------------

// lockFixtureTypes declares a mutex-shaped local type: the lattice matches
// mutex methods by name, so fixtures need no sync import (the bare
// typechecker used here has no importer).
const lockFixtureTypes = `
type rwmutex struct{ state int }

func (m *rwmutex) Lock()          {}
func (m *rwmutex) Unlock()        {}
func (m *rwmutex) RLock()         {}
func (m *rwmutex) RUnlock()       {}
func (m *rwmutex) TryLock() bool  { return m.state == 0 }
func (m *rwmutex) TryRLock() bool { return m.state >= 0 }
`

// lockHeldAt solves the lattice for fn and queries the marker's position.
func lockHeldAt(t *testing.T, src, fn, marker string, seed lockState) (lockState, bool) {
	t.Helper()
	fx := buildFlow(t, src, fn)
	lf := newLockFlow(fx.ff, fx.fd.Body, seed)
	return lf.heldAt(fx.usePos(t, src, marker))
}

func TestLockFlowDeferredUnlock(t *testing.T) {
	src := `package p
` + lockFixtureTypes + `
type box struct {
	mu rwmutex
	n  int
}

func deferred(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++ // useA
}
`
	held, reached := lockHeldAt(t, src, "deferred", "// useA", nil)
	if !reached {
		t.Fatal("marker position reported unreachable")
	}
	if held["b.mu"] != lockHeldW {
		t.Errorf("after Lock + defer Unlock, held[b.mu] = %d, want exclusive (%d)", held["b.mu"], lockHeldW)
	}
}

func TestLockFlowTryLockBranches(t *testing.T) {
	src := `package p
` + lockFixtureTypes + `
type box struct {
	mu rwmutex
	n  int
}

func try(b *box) {
	if b.mu.TryLock() {
		b.n++ // useThen
		b.mu.Unlock()
	} else {
		b.n-- // useElse
	}
	if !b.mu.TryLock() {
		return
	}
	b.n++ // useGate
	b.mu.Unlock()
}
`
	if held, _ := lockHeldAt(t, src, "try", "// useThen", nil); held["b.mu"] != lockHeldW {
		t.Errorf("TryLock success branch: held[b.mu] = %d, want exclusive", held["b.mu"])
	}
	if held, _ := lockHeldAt(t, src, "try", "// useElse", nil); held["b.mu"] != 0 {
		t.Errorf("TryLock failure branch: held[b.mu] = %d, want not held", held["b.mu"])
	}
	if held, _ := lockHeldAt(t, src, "try", "// useGate", nil); held["b.mu"] != lockHeldW {
		t.Errorf("negated TryLock gate: held[b.mu] = %d, want exclusive past the early return", held["b.mu"])
	}
}

func TestLockFlowRLockStrength(t *testing.T) {
	src := `package p
` + lockFixtureTypes + `
type box struct {
	mu rwmutex
	n  int
}

func reader(b *box) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.n // useR
}
`
	held, reached := lockHeldAt(t, src, "reader", "// useR", nil)
	if !reached {
		t.Fatal("marker position reported unreachable")
	}
	if held["b.mu"] != lockHeldR {
		t.Errorf("under RLock, held[b.mu] = %d, want shared (%d) — not exclusive", held["b.mu"], lockHeldR)
	}
}

func TestLockFlowUnlockInLoopReacquire(t *testing.T) {
	src := `package p
` + lockFixtureTypes + `
type box struct {
	mu rwmutex
	n  int
}

func relock(b *box, k int) {
	for i := 0; i < k; i++ {
		k-- // useBefore
		b.mu.Lock()
		b.n++ // useInside
		b.mu.Unlock()
	}
	k++ // useAfter
}

func sticky(b *box, k int) {
	b.mu.Lock()
	for i := 0; i < k; i++ {
		b.n++ // useEach
	}
	b.n-- // usePost
	b.mu.Unlock()
}
`
	if held, _ := lockHeldAt(t, src, "relock", "// useBefore", nil); held["b.mu"] != 0 {
		t.Errorf("loop body before re-acquire: held[b.mu] = %d, want not held", held["b.mu"])
	}
	if held, _ := lockHeldAt(t, src, "relock", "// useInside", nil); held["b.mu"] != lockHeldW {
		t.Errorf("between Lock and Unlock in the loop: held[b.mu] = %d, want exclusive", held["b.mu"])
	}
	if held, _ := lockHeldAt(t, src, "relock", "// useAfter", nil); held["b.mu"] != 0 {
		t.Errorf("after a loop that released: held[b.mu] = %d, want not held", held["b.mu"])
	}
	// A lock held across the loop must survive the back-edge meet.
	if held, _ := lockHeldAt(t, src, "sticky", "// useEach", nil); held["b.mu"] != lockHeldW {
		t.Errorf("lock held across the loop: held[b.mu] = %d in the body, want exclusive", held["b.mu"])
	}
	if held, _ := lockHeldAt(t, src, "sticky", "// usePost", nil); held["b.mu"] != lockHeldW {
		t.Errorf("lock held across the loop: held[b.mu] = %d after it, want exclusive", held["b.mu"])
	}
}

func TestLockFlowHelperAcquisitionIsOpaque(t *testing.T) {
	// The lattice is intraprocedural: a lock acquired inside a helper the
	// pointer was passed to is invisible.  //lint:locked is the sanctioned
	// escape hatch — its seed is what makes the state visible.
	src := `package p
` + lockFixtureTypes + `
type box struct {
	mu rwmutex
	n  int
}

func lockIt(m *rwmutex) { m.Lock() }

func viaHelper(b *box) {
	lockIt(&b.mu)
	b.n++ // useH
}
`
	if held, _ := lockHeldAt(t, src, "viaHelper", "// useH", nil); held["b.mu"] != 0 {
		t.Errorf("after helper acquisition: held[b.mu] = %d, want not held (helpers are opaque)", held["b.mu"])
	}
	seed := lockState{"b.mu": lockHeldW}
	if held, _ := lockHeldAt(t, src, "viaHelper", "// useH", seed); held["b.mu"] != lockHeldW {
		t.Errorf("with a //lint:locked-style seed: held[b.mu] = %d, want exclusive", held["b.mu"])
	}
}
