package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// approvedToleranceHelpers are the functions allowed to compare floats with
// == / != internally: the named tolerance helpers themselves need an exact
// fast path (ApproxEq(+Inf, +Inf) must hold even though Inf−Inf is NaN).
// Matching is by function name so the rule covers methods and any package
// that hosts a helper under the conventional names.
var approvedToleranceHelpers = map[string]bool{
	"ApproxEq":      true,
	"ApproxZero":    true,
	"ApproxEqSlice": true,
	"ApproxLE":      true,
}

// FloatEq flags == / != comparisons whose operands are floating-point (or
// complex) values, and switch statements on a floating-point tag.  Raw
// float equality is how numerical drift turns into silent wrong verdicts —
// the M/M/1 feasibility identity Σc_i = g(Σr_i) only holds to a tolerance.
// Compare through core.ApproxEq / core.ApproxZero instead, or annotate an
// intentional exact comparison with //lint:allow floateq.  Test files are
// exempt: tests assert exact golden values and byte-identical RNG streams
// deliberately.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "flags == and != on floating-point operands outside approved " +
		"tolerance helpers (core.ApproxEq and friends); use a named " +
		"tolerance or annotate with //lint:allow floateq",
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			// Tests assert exact golden values and byte-identical streams
			// on purpose; the tolerance discipline protects library logic.
			continue
		}
		// Track the enclosing function so comparisons inside approved
		// tolerance helpers are exempt.
		var exemptStack []bool
		inExempt := func() bool {
			for _, e := range exemptStack {
				if e {
					return true
				}
			}
			return false
		}
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				exemptStack = append(exemptStack, approvedToleranceHelpers[n.Name.Name])
				if n.Body != nil {
					ast.Inspect(n.Body, walk)
				}
				exemptStack = exemptStack[:len(exemptStack)-1]
				return false
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if inExempt() {
					return true
				}
				if !isFloatExpr(pass, n.X) && !isFloatExpr(pass, n.Y) {
					return true
				}
				if bothConstant(pass, n.X, n.Y) {
					return true // compile-time comparison, exact by definition
				}
				if isNaNIdiom(n) {
					return true // x != x is the canonical NaN probe
				}
				pass.Reportf(n.OpPos,
					"floating-point %s comparison; use core.ApproxEq/ApproxZero with a named tolerance (or annotate //lint:allow floateq)",
					n.Op)
			case *ast.SwitchStmt:
				if n.Tag != nil && isFloatExpr(pass, n.Tag) && !inExempt() {
					pass.Reportf(n.Tag.Pos(),
						"switch on floating-point value compares cases with ==; restructure with tolerance checks (or annotate //lint:allow floateq)")
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

// isFloatExpr reports whether e's type is a floating-point or complex
// scalar (after unwrapping named types and aliases).
func isFloatExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// bothConstant reports whether both operands are compile-time constants.
func bothConstant(pass *Pass, x, y ast.Expr) bool {
	tx, ty := pass.TypesInfo.Types[x], pass.TypesInfo.Types[y]
	return tx.Value != nil && ty.Value != nil
}

// isNaNIdiom recognizes x != x / x == x on a side-effect-free operand.
func isNaNIdiom(n *ast.BinaryExpr) bool {
	return sameSimpleExpr(n.X, n.Y)
}

// sameSimpleExpr reports whether two expressions are the identical simple
// identifier or selector chain.
func sameSimpleExpr(x, y ast.Expr) bool {
	switch x := x.(type) {
	case *ast.Ident:
		y, ok := y.(*ast.Ident)
		return ok && x.Name == y.Name
	case *ast.SelectorExpr:
		y, ok := y.(*ast.SelectorExpr)
		return ok && x.Sel.Name == y.Sel.Name && sameSimpleExpr(x.X, y.X)
	case *ast.ParenExpr:
		return sameSimpleExpr(x.X, y)
	}
	return false
}
