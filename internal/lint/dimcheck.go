package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DimCheck enforces the Rate/Congestion dimensional convention.  core.Rate
// and core.Congestion are float64 aliases, so the compiler happily adds a
// throughput to a queue length — precisely the mix that silently corrupts
// a feasibility argument (Σr < 1 guards rates; g(Σr) = Σc relates the two
// only through g).  The analyzer computes a dimension for every expression
// from declared alias (or defined) types named Rate and Congestion with
// float64 underneath, propagates it through additive arithmetic and — via
// the reaching-definitions pass — through plain float64 locals, and flags:
//
//   - additive arithmetic (+, -) or comparisons mixing the two dimensions,
//   - converting one dimension directly into the other (Rate(c)),
//   - passing one dimension to a parameter declared as the other,
//   - returning or assigning one dimension into a slot declared as the other.
//
// Multiplication and division are dimension-erasing (ratios like c_i/r_i
// and coefficient scaling are legitimate physics), as is an explicit
// float64(x) conversion — that is the sanctioned way to say "I mean this
// mix"; otherwise annotate //lint:allow dimcheck with a justification.
var DimCheck = &Analyzer{
	Name: "dimcheck",
	Doc: "flags arithmetic, comparisons, conversions, and calls that mix " +
		"the Rate and Congestion dimensions; erase a dimension explicitly " +
		"with float64(x) or annotate //lint:allow dimcheck",
	Run: runDimCheck,
}

// dim is an inferred physical dimension.
type dim int

const (
	dimNone dim = iota
	dimRate
	dimCongestion
)

func (d dim) String() string {
	switch d {
	case dimRate:
		return "rate"
	case dimCongestion:
		return "congestion"
	}
	return "dimensionless"
}

// dimOfType recognizes the dimensional types by name: an alias or defined
// type called Rate or Congestion whose underlying type is float64 (or a
// slice of one, for element lookups).  Matching by name rather than by
// package keeps the rule portable to fixtures and future packages, the
// same convention approvedToleranceHelpers uses.
func dimOfType(t types.Type) dim {
	switch t := t.(type) {
	case *types.Alias:
		return dimOfTypeName(t.Obj().Name(), types.Unalias(t))
	case *types.Named:
		return dimOfTypeName(t.Obj().Name(), t.Underlying())
	}
	return dimNone
}

func dimOfTypeName(name string, under types.Type) dim {
	b, ok := under.(*types.Basic)
	if !ok || b.Kind() != types.Float64 {
		return dimNone
	}
	switch name {
	case "Rate":
		return dimRate
	case "Congestion":
		return dimCongestion
	}
	return dimNone
}

// elemDim returns the dimension of a slice/array element type.
func elemDim(t types.Type) dim {
	switch t := types.Unalias(t).(type) {
	case *types.Slice:
		return dimOfType(t.Elem())
	case *types.Array:
		return dimOfType(t.Elem())
	}
	return dimNone
}

// dimer resolves expression dimensions within one function, caching
// through the function's dataflow facts.
type dimer struct {
	pass *Pass
	ff   *funcFlow
	// visiting guards against recursive definitions (x = x + y).
	visiting map[*vdef]bool
}

// dimOf computes the dimension of e.  Conflicting dimensions inside e are
// reported where they occur (by the main walk), so this returns dimNone
// for mixed subtrees rather than cascading the conflict upward.
func (dm *dimer) dimOf(e ast.Expr) dim {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return dm.dimOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return dm.dimOf(e.X)
		}
		return dimNone
	case *ast.BinaryExpr:
		if e.Op != token.ADD && e.Op != token.SUB {
			return dimNone // *, /, … erase dimension (ratios, scaling)
		}
		dx, dy := dm.dimOf(e.X), dm.dimOf(e.Y)
		switch {
		case dx == dimNone:
			return dy
		case dy == dimNone || dx == dy:
			return dx
		default:
			return dimNone // mixed: reported at the node itself
		}
	case *ast.CallExpr:
		if tv, ok := dm.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
			return dimOfType(tv.Type) // conversion: target type decides
		}
		if t := dm.pass.TypesInfo.TypeOf(e); t != nil {
			return dimOfType(t) // single-result call: declared result type
		}
		return dimNone
	case *ast.Ident:
		return dm.dimOfIdent(e)
	}
	// Selector, index, and anything else: trust the static type, which
	// carries the alias for declared fields, elements of []Rate, etc.
	if tv, ok := dm.pass.TypesInfo.Types[e]; ok {
		if tv.Value != nil {
			return dimNone // constants are dimensionless
		}
		return dimOfType(tv.Type)
	}
	return dimNone
}

// dimOfIdent resolves an identifier: its declared type if dimensional,
// otherwise the join of the definitions reaching this use (the dataflow
// part — a plain float64 local fed only from rates is a rate).
func (dm *dimer) dimOfIdent(id *ast.Ident) dim {
	if tv, ok := dm.pass.TypesInfo.Types[id]; ok && tv.Value != nil {
		return dimNone // named constants are dimensionless
	}
	if t := dm.pass.TypesInfo.TypeOf(id); t != nil {
		if d := dimOfType(t); d != dimNone {
			return d
		}
		// Only plain floating scalars can carry a hidden dimension.
		if b, ok := types.Unalias(t).(*types.Basic); !ok || b.Info()&types.IsFloat == 0 {
			return dimNone
		}
	}
	v := dm.ff.objVar(id)
	if v == nil {
		return dimNone
	}
	joined := dimNone
	for _, d := range dm.ff.reachingDefs(v, id.Pos()) {
		if d.rhs == nil || dm.visiting[d] {
			continue // opaque definition: no dimension evidence
		}
		dm.visiting[d] = true
		dd := dm.dimOf(d.rhs)
		delete(dm.visiting, d)
		switch {
		case dd == dimNone:
		case joined == dimNone:
			joined = dd
		case joined != dd:
			return dimNone // conflicting feeds: give up, don't guess
		}
	}
	return joined
}

func runDimCheck(pass *Pass) error {
	fc := newFlowCache(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncDims(pass, fc, fd.Body, pass.TypesInfo.TypeOf(fd.Name))
		}
	}
	return nil
}

// checkFuncDims walks one function body (function literals are visited as
// part of their enclosing function's tree but get their own flow facts).
func checkFuncDims(pass *Pass, fc *flowCache, body *ast.BlockStmt, ftyp types.Type) {
	sig, _ := types.Unalias(ftyp).(*types.Signature)
	dm := &dimer{pass: pass, ff: fc.flowFor(body, sig), visiting: make(map[*vdef]bool)}

	var results *types.Tuple
	if sig != nil {
		results = sig.Results()
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFuncDims(pass, fc, n.Body, pass.TypesInfo.TypeOf(n))
			return false
		case *ast.BinaryExpr:
			checkBinaryDims(pass, dm, n)
		case *ast.CallExpr:
			checkCallDims(pass, dm, n)
		case *ast.AssignStmt:
			checkAssignDims(pass, dm, n)
		case *ast.ReturnStmt:
			checkReturnDims(pass, dm, n, results)
		}
		return true
	})
}

func checkBinaryDims(pass *Pass, dm *dimer, n *ast.BinaryExpr) {
	switch n.Op {
	case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ,
		token.EQL, token.NEQ:
	default:
		return
	}
	dx, dy := dm.dimOf(n.X), dm.dimOf(n.Y)
	if dx == dimNone || dy == dimNone || dx == dy {
		return
	}
	pass.Reportf(n.OpPos,
		"%s mixes %s and %s; convert through float64(x) if the mix is intended (or annotate //lint:allow dimcheck)",
		n.Op, dx, dy)
}

func checkCallDims(pass *Pass, dm *dimer, n *ast.CallExpr) {
	// Cross-dimension conversion: Rate(c) / Congestion(r).
	if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
		target := dimOfType(tv.Type)
		if target == dimNone || len(n.Args) != 1 {
			return
		}
		if src := dm.dimOf(n.Args[0]); src != dimNone && src != target {
			pass.Reportf(n.Pos(),
				"converting %s directly to %s; go through float64(x) if the relabeling is intended (or annotate //lint:allow dimcheck)",
				src, target)
		}
		return
	}
	// Argument dimensions against declared parameter dimensions.
	sig, ok := types.Unalias(pass.TypesInfo.TypeOf(n.Fun)).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range n.Args {
		if i >= params.Len() {
			if !sig.Variadic() {
				break
			}
			i = params.Len() - 1
		}
		pt := params.At(i).Type()
		want := dimOfType(pt)
		if want == dimNone && sig.Variadic() && i == params.Len()-1 {
			want = elemDim(pt)
		}
		if want == dimNone {
			continue
		}
		if got := dm.dimOf(arg); got != dimNone && got != want {
			pass.Reportf(arg.Pos(),
				"passing %s where parameter %s is declared %s (annotate //lint:allow dimcheck if intended)",
				got, params.At(i).Name(), want)
		}
	}
}

func checkAssignDims(pass *Pass, dm *dimer, n *ast.AssignStmt) {
	if n.Tok == token.DEFINE || len(n.Lhs) != len(n.Rhs) {
		return // := infers the RHS dimension; multi-value RHS untracked
	}
	for i, lhs := range n.Lhs {
		t := pass.TypesInfo.TypeOf(lhs)
		if t == nil {
			continue
		}
		want := dimOfType(t)
		if want == dimNone {
			continue
		}
		if got := dm.dimOf(n.Rhs[i]); got != dimNone && got != want {
			pass.Reportf(n.Rhs[i].Pos(),
				"assigning %s into a slot declared %s (annotate //lint:allow dimcheck if intended)",
				got, want)
		}
	}
}

func checkReturnDims(pass *Pass, dm *dimer, n *ast.ReturnStmt, results *types.Tuple) {
	if results == nil || len(n.Results) != results.Len() {
		return
	}
	for i, e := range n.Results {
		want := dimOfType(results.At(i).Type())
		if want == dimNone {
			continue
		}
		if got := dm.dimOf(e); got != dimNone && got != want {
			pass.Reportf(e.Pos(),
				"returning %s where the result is declared %s (annotate //lint:allow dimcheck if intended)",
				got, want)
		}
	}
}
