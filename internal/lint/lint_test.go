package lint_test

import (
	"strings"
	"testing"

	"greednet/internal/lint"
	"greednet/internal/lint/linttest"
)

func TestFloatEq(t *testing.T) {
	linttest.Run(t, "testdata/floateq", "fixture/floateq", []*lint.Analyzer{lint.FloatEq})
}

func TestRNGSource(t *testing.T) {
	linttest.Run(t, "testdata/rngsource", "fixture/rngsource", []*lint.Analyzer{lint.RNGSource})
}

func TestRNGSourceExemptsRanddist(t *testing.T) {
	// Under the sanctioned wrapper's import path the same construction
	// pattern produces no findings.
	linttest.Run(t, "testdata/rngsource_randdist", "greednet/internal/randdist",
		[]*lint.Analyzer{lint.RNGSource})
}

func TestPanicFree(t *testing.T) {
	linttest.Run(t, "testdata/panicfree", "fixture/panicfree", []*lint.Analyzer{lint.PanicFree})
}

func TestPanicFreeExemptsMain(t *testing.T) {
	linttest.Run(t, "testdata/panicfree_main", "fixture/panicfree_main",
		[]*lint.Analyzer{lint.PanicFree})
}

func TestErrDrop(t *testing.T) {
	linttest.Run(t, "testdata/errdrop", "fixture/errdrop", []*lint.Analyzer{lint.ErrDrop})
}

func TestFeasGuard(t *testing.T) {
	linttest.Run(t, "testdata/feasguard", "fixture/feasguard", []*lint.Analyzer{lint.FeasGuard})
}

func TestDetOrder(t *testing.T) {
	linttest.Run(t, "testdata/detorder", "fixture/detorder", []*lint.Analyzer{lint.DetOrder})
}

func TestDimCheck(t *testing.T) {
	linttest.Run(t, "testdata/dimcheck", "fixture/dimcheck", []*lint.Analyzer{lint.DimCheck})
}

func TestParSafe(t *testing.T) {
	linttest.Run(t, "testdata/parsafe", "fixture/parsafe", []*lint.Analyzer{lint.ParSafe})
}

func TestAllocFree(t *testing.T) {
	linttest.Run(t, "testdata/allocfree", "fixture/allocfree", []*lint.Analyzer{lint.AllocFree})
}

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, "testdata/ctxflow", "fixture/ctxflow", []*lint.Analyzer{lint.CtxFlow})
}

func TestWSAlias(t *testing.T) {
	linttest.Run(t, "testdata/wsalias", "fixture/wsalias", []*lint.Analyzer{lint.WSAlias})
}

func TestGuardedBy(t *testing.T) {
	linttest.Run(t, "testdata/guardedby", "fixture/guardedby", []*lint.Analyzer{lint.GuardedBy})
}

func TestChanOwn(t *testing.T) {
	linttest.Run(t, "testdata/chanown", "fixture/chanown", []*lint.Analyzer{lint.ChanOwn})
}

func TestFanout(t *testing.T) {
	linttest.Run(t, "testdata/fanout", "fixture/fanout", []*lint.Analyzer{lint.Fanout})
}

func TestFanoutExemptsParallel(t *testing.T) {
	// Under the worker pool's import path the same spawns produce no
	// findings: the pool is the sanctioned fan-out mechanism.
	linttest.Run(t, "testdata/fanout_parallel", "greednet/internal/parallel",
		[]*lint.Analyzer{lint.Fanout})
}

func TestStaleAllow(t *testing.T) {
	// Run with floateq only: stale detection applies to allows naming a
	// running analyzer (or no known analyzer at all), while allows for the
	// rest of the suite are left alone.
	linttest.Run(t, "testdata/staleallow", "fixture/staleallow", []*lint.Analyzer{lint.FloatEq})
}

func TestAllRegistersEveryAnalyzer(t *testing.T) {
	names := make(map[string]bool)
	for _, a := range lint.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing Name, Doc, or Run", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{
		"floateq", "rngsource", "panicfree", "errdrop",
		"feasguard", "detorder", "dimcheck", "parsafe",
		"allocfree", "ctxflow", "wsalias",
		"guardedby", "chanown", "fanout",
	} {
		if !names[want] {
			t.Errorf("All() does not register %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	as, err := lint.ByName("floateq,errdrop")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if len(as) != 2 || as[0].Name != "floateq" || as[1].Name != "errdrop" {
		t.Errorf("ByName returned %v", as)
	}
	if _, err := lint.ByName("nosuch"); err == nil ||
		!strings.Contains(err.Error(), "nosuch") {
		t.Errorf("ByName(nosuch) err = %v, want mention of the bad name", err)
	}
}
