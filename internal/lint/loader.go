package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// A LoadConfig describes one package to parse and type-check for analysis.
// Imports are resolved through compiler ("gc") export data, exactly as the
// go command's own vet driver supplies it, so no source for dependencies
// is required.
type LoadConfig struct {
	// ImportPath is the canonical package path.
	ImportPath string
	// GoFiles are the package's source files (absolute paths).
	GoFiles []string
	// ImportMap maps import paths as written in source to canonical
	// package paths (may be nil when they coincide).
	ImportMap map[string]string
	// PackageFile maps canonical package paths to files containing gc
	// export data (from the build cache or a .a archive).
	PackageFile map[string]string
}

// A Package bundles everything an analyzer pass needs.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// LoadPackage parses and type-checks one package from export data.
func LoadPackage(cfg LoadConfig) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(error) {}, // collect what we can; first error returned below
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", cfg.ImportPath, err)
	}
	return &Package{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// Analyze loads the package and runs the given analyzers over it.
func Analyze(cfg LoadConfig, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet, error) {
	diags, fset, _, err := AnalyzePkg(cfg, analyzers, nil)
	return diags, fset, err
}

// AnalyzePkg loads the package and runs the analyzers with the facts of
// its dependencies available in store (nil means none), returning the
// package's own exported facts alongside the findings.  Drivers call this
// in dependency order, feeding each package's facts forward, so the
// interprocedural analyzers see the whole downward closure.
func AnalyzePkg(cfg LoadConfig, analyzers []*Analyzer, store *FactStore) ([]Diagnostic, *token.FileSet, *PkgFacts, error) {
	p, err := LoadPackage(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	diags, facts, err := RunPkg(analyzers, p.Fset, p.Files, p.Pkg, p.Info, store)
	return diags, p.Fset, facts, err
}
