package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PanicFree flags panic calls in library code.  Commands (package main),
// examples, and tests may panic; library packages must return errors for
// anything a caller could trigger.  A panic that guards a genuine internal
// invariant belongs in a function named Must*/must* (the documented
// invariant-helper convention) or carries a //lint:allow panicfree
// annotation explaining the invariant.
var PanicFree = &Analyzer{
	Name: "panicfree",
	Doc: "flags panic in non-main, non-test library code; return an error, " +
		"move the panic into a Must*/must* invariant helper, or annotate " +
		"with //lint:allow panicfree and state the invariant",
	Run: runPanicFree,
}

func runPanicFree(pass *Pass) error {
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		return nil // commands and examples may panic at top level
	}
	for _, f := range pass.Files {
		var funcStack []string
		inInvariantHelper := func() bool {
			for _, name := range funcStack {
				if strings.HasPrefix(name, "Must") || strings.HasPrefix(name, "must") {
					return true
				}
			}
			return false
		}
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				funcStack = append(funcStack, n.Name.Name)
				if n.Body != nil {
					ast.Inspect(n.Body, walk)
				}
				funcStack = funcStack[:len(funcStack)-1]
				return false
			case *ast.CallExpr:
				id, ok := n.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
						return true // a local function shadowing panic
					}
				}
				if pass.InTestFile(n.Pos()) || inInvariantHelper() {
					return true
				}
				pass.Reportf(n.Pos(),
					"panic in library code; return an error for caller-reachable failures, or wrap in a Must*/must* helper (//lint:allow panicfree for documented invariants)")
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}
