package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// FeasGuard flags evaluations of congestion formulas outside the protection
// of a feasibility check.  Every closed form in the library — g(x) =
// x/(1−x), the allocation functions, the protection bound — is only a
// model of the queue inside Σr < 1; evaluated on an unguarded rate vector
// it silently returns garbage (finite but meaningless values for Σr > 1,
// signed infinities at the pole) that downstream code happily averages
// into an experiment table.
//
// A call is a target when its callee lives in another package and its
// signature maps a Rate (or []Rate) parameter to a Congestion result — the
// dimensional fingerprint of a congestion formula — or is one of the g
// derivative helpers (GPrime, GPrime2, LPrime, LPrime2).  The call is
// clean when, on every path to it, a dominating block performs a
// feasibility check connected to the same rate data: a call to
// Feasible/InDomain/CheckFeasible/CheckFeasibleG/DomainSlack, a read of a
// FeasibilityReport's Feasible field, or a direct comparison against 1.
//
// Exemptions, in the spirit of "fewer findings when unclear":
//   - callees declared in the same file (a file's own formula helpers are
//     its internal layering; the file guards at its boundary);
//   - bodies of allocation-contract methods (Congestion, CongestionOf,
//     OwnDerivs, Jacobian, JacobianOf, L, LPrime, LPrime2, and their
//     workspace fast paths CongestionInto, CongestionOfInto, OwnDerivsInto,
//     JacobianInto): the Allocation contract defines them on all of R⁺ⁿ
//     with +Inf outside the domain;
//   - results fed directly to Utility.Value/Gradient/MarginalRate, which
//     the AU contract requires to map c = +Inf to −Inf, so out-of-domain
//     probes are well ordered by construction;
//   - results assigned to a variable the function later passes to one of
//     those consumers or to math.IsInf/IsNaN/core.IsFiniteVec — code that
//     inspects its result for the out-of-domain sentinel is domain-aware;
//   - constant arguments that are statically feasible (a scalar in (0,1),
//     or a composite literal of positive constants summing below 1);
//   - test files, which deliberately probe out-of-domain behavior.
//
// Anything else needs either a guard or a //lint:allow feasguard with a
// comment saying why infeasible input is impossible there.
var FeasGuard = &Analyzer{
	Name: "feasguard",
	Doc: "flags congestion/g(x) evaluations whose rate argument is not " +
		"dominated by a feasibility guard (core.Feasible, mm1.InDomain, " +
		"CheckFeasible, or a comparison against 1)",
	Run: runFeasGuard,
}

// contractMethods are enclosing functions whose own contract covers
// out-of-domain evaluation.
var contractMethods = map[string]bool{
	"Congestion":       true,
	"CongestionOf":     true,
	"CongestionInto":   true,
	"CongestionOfInto": true,
	"OwnDerivs":        true,
	"OwnDerivsInto":    true,
	"Jacobian":         true,
	"JacobianInto":     true,
	"JacobianOf":       true,
	"L":                true,
	"LPrime":           true,
	"LPrime2":          true,
}

// guardFuncs are callables whose invocation constitutes a feasibility
// check of their argument.
var guardFuncs = map[string]bool{
	"Feasible":       true,
	"InDomain":       true,
	"CheckFeasible":  true,
	"CheckFeasibleG": true,
	"DomainSlack":    true,
}

// derivHelpers are congestion-formula derivatives whose results are plain
// float64 (so the dimensional fingerprint misses them) but which share
// g's pole at Σr = 1.
var derivHelpers = map[string]bool{
	"GPrime":  true,
	"GPrime2": true,
	"LPrime":  true,
	"LPrime2": true,
}

// infSafeConsumers map infinite congestion to a well-ordered value, per
// the Utility contract.
var infSafeConsumers = map[string]bool{
	"Value":         true,
	"Gradient":      true,
	"MarginalRate":  true,
	"UtilityValues": true,
}

// infChecks are predicates whose use on a congestion result shows the
// caller handles the out-of-domain sentinel explicitly.
var infChecks = map[string]bool{
	"IsInf":       true,
	"IsNaN":       true,
	"IsFiniteVec": true,
}

func runFeasGuard(pass *Pass) error {
	fc := newFlowCache(pass)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if contractMethods[fd.Name.Name] {
				continue
			}
			sig, _ := pass.TypesInfo.TypeOf(fd.Name).(*types.Signature)
			checkFeasBody(pass, fc, fd.Body, sig)
		}
	}
	return nil
}

// checkFeasBody scans one function body; nested function literals recurse
// with their own flow facts so guards inside the literal count.
func checkFeasBody(pass *Pass, fc *flowCache, body *ast.BlockStmt, sig *types.Signature) {
	var ff *funcFlow // built lazily: most bodies contain no targets
	var parents []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			parents = parents[:len(parents)-1]
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			litSig, _ := types.Unalias(pass.TypesInfo.TypeOf(lit)).(*types.Signature)
			checkFeasBody(pass, fc, lit.Body, litSig)
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn, rateIdx := feasTarget(pass, call); fn != nil {
				if ff == nil {
					ff = fc.flowFor(body, sig)
				}
				checkFeasCall(pass, ff, body, parents, call, fn, rateIdx)
			}
		}
		parents = append(parents, n)
		return true
	})
}

// feasTarget reports whether call is a congestion-formula invocation that
// needs a guard, returning the callee and the index of its rate argument.
func feasTarget(pass *Pass, call *ast.CallExpr) (*types.Func, int) {
	fn := calleeFunc(pass, call.Fun)
	if fn == nil || fn.Pkg() == nil {
		return nil, -1
	}
	// A file's own helpers are its internal layering: the file guards at
	// its boundary, so same-file calls are exempt.
	if fn.Pos().IsValid() &&
		pass.Fset.Position(fn.Pos()).Filename == pass.Fset.Position(call.Pos()).Filename {
		return nil, -1
	}
	sig, ok := types.Unalias(fn.Type()).(*types.Signature)
	if !ok {
		return nil, -1
	}
	rateIdx := -1
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		t := params.At(i).Type()
		if dimOfType(t) == dimRate || elemDim(t) == dimRate {
			rateIdx = i
			break
		}
	}
	if rateIdx < 0 || rateIdx >= len(call.Args) {
		return nil, -1
	}
	if derivHelpers[fn.Name()] {
		return fn, rateIdx
	}
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		t := results.At(i).Type()
		if dimOfType(t) == dimCongestion || elemDim(t) == dimCongestion {
			return fn, rateIdx
		}
	}
	return nil, -1
}

// calleeFunc resolves a call's function expression to its *types.Func.
func calleeFunc(pass *Pass, fun ast.Expr) *types.Func {
	switch fun := fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.ParenExpr:
		return calleeFunc(pass, fun.X)
	}
	return nil
}

func checkFeasCall(pass *Pass, ff *funcFlow, body *ast.BlockStmt, parents []ast.Node, call *ast.CallExpr, fn *types.Func, rateIdx int) {
	arg := call.Args[rateIdx]
	if staticallyFeasible(pass, ff, arg) {
		return
	}
	if consumedInfSafely(pass, parents, call) {
		return
	}
	if resultInfChecked(pass, body, parents, call) {
		return
	}
	rateVars := provenanceVars(pass, ff, arg)
	for _, n := range ff.dominatorNodes(call.Pos()) {
		if containsNode(n, call) {
			// The use's own statement: only a guard textually before the
			// call counts (`if mm1.InDomain(r) && … { … G(x) }` shapes).
			if guardInNodeBefore(pass, n, call, rateVars) {
				return
			}
			continue
		}
		if nodeHasGuard(pass, n, rateVars) {
			return
		}
	}
	pass.Reportf(call.Pos(),
		"call to %s.%s with rate argument not dominated by a feasibility guard (core.Feasible / mm1.InDomain / compare Σr against 1); annotate //lint:allow feasguard if infeasible input is impossible here",
		fn.Pkg().Name(), fn.Name())
}

// containsNode reports whether outer's source span contains inner.
func containsNode(outer, inner ast.Node) bool {
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}

// guardInNodeBefore searches the part of a statement before the target
// call for a guard (covers `if mm1.InDomain(r) && … { G(…) }` shapes where
// guard and use share one block node).
func guardInNodeBefore(pass *Pass, n ast.Node, call *ast.CallExpr, rateVars map[*types.Var]bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil || found {
			return false
		}
		if m.Pos() >= call.Pos() {
			return false
		}
		if isGuardNode(pass, m, rateVars) {
			found = true
			return false
		}
		return true
	})
	return found
}

// nodeHasGuard reports whether a dominating block node performs a
// feasibility check tied to the rate data.
func nodeHasGuard(pass *Pass, n ast.Node, rateVars map[*types.Var]bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if isGuardNode(pass, m, rateVars) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isGuardNode recognizes one feasibility-check expression with data
// provenance into rateVars (an empty provenance set accepts any guard).
func isGuardNode(pass *Pass, m ast.Node, rateVars map[*types.Var]bool) bool {
	switch m := m.(type) {
	case *ast.CallExpr:
		fn := calleeFunc(pass, m.Fun)
		if fn == nil || !guardFuncs[fn.Name()] {
			return false
		}
		return mentionsAny(pass, m, rateVars)
	case *ast.SelectorExpr:
		// FeasibilityReport.Feasible (or a *Feasible-suffixed field read).
		if v, ok := pass.TypesInfo.Uses[m.Sel].(*types.Var); ok && v.IsField() &&
			strings.HasSuffix(m.Sel.Name, "Feasible") {
			return mentionsAny(pass, m, rateVars)
		}
	case *ast.BinaryExpr:
		// Direct comparison against 1: `sum < 1`, `1 <= total`, …
		switch m.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
		default:
			return false
		}
		if isConstOne(pass, m.Y) {
			return mentionsAny(pass, m.X, rateVars)
		}
		if isConstOne(pass, m.X) {
			return mentionsAny(pass, m.Y, rateVars)
		}
	}
	return false
}

func isConstOne(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Float64Val(constant.ToFloat(tv.Value))
	return ok && v == 1 //lint:allow floateq recognizing the literal constant 1 exactly is the point
}

// provenanceVars collects the variables the rate argument derives from:
// those mentioned directly, expanded twice through reaching definitions so
// local copies and accumulations trace back to their sources.
func provenanceVars(pass *Pass, ff *funcFlow, arg ast.Expr) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	collectVars(pass, arg, out)
	for depth := 0; depth < 2; depth++ {
		grown := make(map[*types.Var]bool, len(out))
		for v := range out {
			grown[v] = true
			for _, d := range ff.defsOf[v] {
				if d.rhs != nil {
					collectVars(pass, d.rhs, grown)
				}
			}
		}
		if len(grown) == len(out) {
			break
		}
		out = grown
	}
	return out
}

func collectVars(pass *Pass, e ast.Expr, into map[*types.Var]bool) {
	ast.Inspect(e, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
				into[v] = true
			}
		}
		return true
	})
}

// mentionsAny reports whether the expression references one of the
// provenance variables.  An empty provenance set (a rate argument with no
// variable roots) accepts any guard.
func mentionsAny(pass *Pass, n ast.Node, rateVars map[*types.Var]bool) bool {
	if len(rateVars) == 0 {
		return true
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && rateVars[v] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// consumedInfSafely reports whether the call's result feeds directly into
// a Utility evaluation, whose contract maps c = +Inf to −Inf.
func consumedInfSafely(pass *Pass, parents []ast.Node, call *ast.CallExpr) bool {
	for i := len(parents) - 1; i >= 0; i-- {
		switch p := parents[i].(type) {
		case *ast.CallExpr:
			if p == call {
				continue
			}
			if fn := calleeFunc(pass, p.Fun); fn != nil && infSafeConsumers[fn.Name()] {
				return true
			}
			return false // argument to some other call: stop climbing
		case *ast.ParenExpr, *ast.IndexExpr:
			continue // transparent wrappers
		case ast.Stmt:
			return false
		}
	}
	return false
}

// resultInfChecked reports whether the call's result lands in variables
// the function later feeds to an infinity check or a Utility evaluation —
// the result-inspection idiom (`c := a.CongestionOf(r, i); if
// math.IsInf(c, 1) { … }`).
func resultInfChecked(pass *Pass, body *ast.BlockStmt, parents []ast.Node, call *ast.CallExpr) bool {
	if len(parents) == 0 {
		return false
	}
	assign, ok := parents[len(parents)-1].(*ast.AssignStmt)
	if !ok {
		return false
	}
	dests := make(map[*types.Var]bool)
	for _, lhs := range assign.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		if v := varOf(pass, id); v != nil {
			dests[v] = true
		}
	}
	if len(dests) == 0 {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok || c.Pos() <= call.End() {
			return true
		}
		fn := calleeFunc(pass, c.Fun)
		if fn == nil || !(infChecks[fn.Name()] || infSafeConsumers[fn.Name()]) {
			return true
		}
		for _, a := range c.Args {
			ast.Inspect(a, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v := varOf(pass, id); v != nil && dests[v] {
						found = true
					}
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// varOf resolves an identifier's variable object through Uses or Defs.
func varOf(pass *Pass, id *ast.Ident) *types.Var {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// staticallyFeasible recognizes arguments whose feasibility is decidable
// at compile time: scalar constants in (0,1) and composite literals of
// positive constants summing below 1 (reached directly or through a single
// reaching definition).
func staticallyFeasible(pass *Pass, ff *funcFlow, arg ast.Expr) bool {
	if v, ok := elemConstFloat(pass, ff, arg); ok {
		return v > 0 && v < 1
	}
	if lit, ok := asRateLiteral(pass, ff, arg); ok {
		sum := 0.0
		for _, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			v, ok := elemConstFloat(pass, ff, el)
			if !ok || v <= 0 {
				return false
			}
			sum += v
		}
		return sum < 1 && len(lit.Elts) > 0
	}
	return false
}

// elemConstFloat resolves an expression to a compile-time float: a
// constant, or a variable fed by exactly one constant definition
// (x := 0.3; … G(x)).
func elemConstFloat(pass *Pass, ff *funcFlow, e ast.Expr) (float64, bool) {
	if v, ok := constFloat(pass, e); ok {
		return v, true
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return 0, false
	}
	v := ff.objVar(id)
	if v == nil {
		return 0, false
	}
	if defs := ff.reachingDefs(v, id.Pos()); len(defs) == 1 && defs[0].rhs != nil {
		return constFloat(pass, defs[0].rhs)
	}
	return 0, false
}

func constFloat(pass *Pass, e ast.Expr) (float64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, ok := constant.Float64Val(constant.ToFloat(tv.Value))
	return v, ok
}

// asRateLiteral unwraps arg to a slice composite literal, following one
// unambiguous reaching definition if needed.
func asRateLiteral(pass *Pass, ff *funcFlow, arg ast.Expr) (*ast.CompositeLit, bool) {
	for unwrapped := true; unwrapped; {
		unwrapped = false
		switch a := arg.(type) {
		case *ast.ParenExpr:
			arg, unwrapped = a.X, true
		case *ast.CallExpr:
			// Conversion like []core.Rate(lit).
			if tv, ok := pass.TypesInfo.Types[a.Fun]; ok && tv.IsType() && len(a.Args) == 1 {
				arg, unwrapped = a.Args[0], true
			}
		}
	}
	if lit, ok := arg.(*ast.CompositeLit); ok {
		return lit, true
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil, false
	}
	v := ff.objVar(id)
	if v == nil {
		return nil, false
	}
	defs := ff.reachingDefs(v, id.Pos())
	if len(defs) != 1 || defs[0].rhs == nil {
		return nil, false
	}
	lit, ok := defs[0].rhs.(*ast.CompositeLit)
	return lit, ok
}
