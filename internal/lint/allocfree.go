package lint

import (
	"fmt"
	"go/token"
)

// AllocFreeName is the analyzer's registered name (also the //lint:allow
// token that suppresses its findings — including at fact-computation time,
// where an allowed allocation site is excluded from the function summary
// so it does not poison every caller).
const AllocFreeName = "allocfree"

// AllocFree statically enforces the zero-allocation hot-path contract that
// PR 5 established dynamically through the BENCH_hotpath allocs gate:
// a function annotated //lint:hotpath, and every function statically
// reachable from it through the call graph, must contain no
// heap-allocating construct — make, new, growing append, map writes,
// composite literals, string concatenation or string<->[]byte conversion,
// interface boxing of non-pointer-shaped values, capturing closures,
// method values, and goroutine spawns.
//
// Two escape hatches keep the rule honest rather than noisy:
//
//   - The guarded-grow idiom `if cap(buf) < n { buf = make(...) }` is
//     auto-exempt: it is the documented amortized warm-up path of every
//     workspace in the tree.
//   - `//lint:allow allocfree <reason>` marks an audited exception, e.g.
//     a nil-workspace convenience fallback or a closure the compiler
//     provably keeps on the stack (truth pinned by the benchmark gate).
//     On an allocation line it exempts that site; on a call line it stops
//     traversal into the callee — the audit covers everything behind the
//     call, so a constructor invoked on a documented fallback path does
//     not leak findings into every hot caller.
//
// Cross-package reachability rides on the call-graph facts: when a
// hot-path function calls into an already-analyzed package, the callee's
// exported summary says whether it (transitively) allocates, and the
// finding is reported at the call site with the callee's own witness.
// Calls through interfaces and function values are contract boundaries,
// not edges — the implementations carry their own annotations (see
// callgraph.go).
var AllocFree = &Analyzer{
	Name: AllocFreeName,
	Doc: "functions reachable from a //lint:hotpath annotation must not " +
		"heap-allocate; the guarded cap-grow idiom is exempt and " +
		"//lint:allow allocfree marks audited exceptions",
	Run: runAllocFree,
}

func runAllocFree(pass *Pass) error {
	g := pass.Graph

	// BFS the local call graph from the package's hot-path roots.  via
	// remembers one call chain per function for the message; roots map to
	// themselves.
	type visit struct {
		fi   *FuncInfo
		root *FuncInfo
	}
	var queue []visit
	seen := make(map[*FuncInfo]bool)
	for _, fi := range g.Funcs {
		if fi.Hotpath {
			queue = append(queue, visit{fi, fi})
			seen[fi] = true
		}
	}

	// A site can be reachable from several roots; report it once.
	reportedAt := make(map[token.Pos]bool)
	report := func(pos token.Pos, format string, args ...interface{}) {
		if reportedAt[pos] {
			return
		}
		reportedAt[pos] = true
		pass.Reportf(pos, format, args...)
	}

	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		fi, root := v.fi, v.root

		where := ""
		if fi != root {
			where = fmt.Sprintf(" (in %s, reachable from it)", fi.Display)
		}
		for _, site := range fi.Allocs {
			report(site.Pos,
				"%s on the zero-alloc hot path rooted at //lint:hotpath %s%s; hoist it into a workspace, use the guarded cap-grow idiom, or annotate //lint:allow allocfree with the audit reason",
				site.What, root.Display, where)
		}
		for _, c := range fi.Calls {
			if c.Iface || c.Callee == nil {
				continue // contract boundary: implementations are annotated directly
			}
			if pass.Allowed(c.Pos, AllocFreeName) {
				// An audited call-site allow stops traversal: the reviewer
				// accepted everything behind this call (the nil-workspace
				// constructor fallback is the canonical case), so findings
				// inside the callee are not re-reported against this root.
				continue
			}
			if c.Local != nil {
				if !seen[c.Local] {
					seen[c.Local] = true
					queue = append(queue, visit{c.Local, root})
				}
				continue
			}
			if alloc, witness := calleeAllocates(g, g.Imported, c); alloc {
				report(c.Pos,
					"%s on the zero-alloc hot path rooted at //lint:hotpath %s%s; make the callee allocation-free or annotate //lint:allow allocfree with the audit reason",
					witness, root.Display, where)
			}
		}
	}
	return nil
}
