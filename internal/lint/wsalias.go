package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// WSAliasName is the analyzer's registered name.
const WSAliasName = "wsalias"

// WSAlias enforces the two ownership rules of the workspace API family.
//
// Rule 1 — *Into implementations own dst.  A function named FooInto with a
// `dst` slice parameter promises its callers that the returned slice is
// dst's storage (possibly regrown), never a view of another input: callers
// are allowed to write through the result while still reading the inputs.
// The analyzer flags paths that break the promise — rebinding dst to an
// expression rooted at another slice parameter (`dst = rates[:n]`) and
// returning an input parameter directly (`return rates`).  Copying values
// is fine: `dst = append(dst[:0], rates...)` copies, so only bare
// identifier / slice / index roots of input parameters are flagged.
//
// Rule 2 — workspaces don't cross goroutines.  A core.Workspace /
// game.Workspace value (any named type called Workspace, by value or
// pointer) is single-owner scratch memory; capturing one in a `go func`
// literal hands the same backing arrays to two threads.  Per-worker
// workspace slices (`wss[w]` where wss is []Workspace) are the sanctioned
// idiom and are not flagged, because the captured variable is the slice,
// not a workspace.  This composes with parsafe: parsafe flags the unsynced
// writes, wsalias flags the escape itself even when every access is
// perfectly locked — a workspace is not a shared resource to begin with.
var WSAlias = &Analyzer{
	Name: WSAliasName,
	Doc: "*Into implementations must not return or rebind dst as an alias " +
		"of an input slice, and Workspace values must not be captured by " +
		"goroutine literals",
	Run: runWSAlias,
}

func runWSAlias(pass *Pass) error {
	for _, fi := range pass.Graph.Funcs {
		if strings.HasSuffix(fi.Obj.Name(), "Into") {
			checkIntoAliasing(pass, fi)
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				checkWorkspaceCapture(pass, lit)
			}
			return true
		})
	}
	return nil
}

// checkIntoAliasing applies Rule 1 to one *Into function.
func checkIntoAliasing(pass *Pass, fi *FuncInfo) {
	sig, _ := fi.Obj.Type().(*types.Signature)
	if sig == nil {
		return
	}
	var dst *types.Var
	inputs := make(map[*types.Var]bool)
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if _, ok := p.Type().Underlying().(*types.Slice); !ok {
			continue
		}
		if p.Name() == "dst" {
			dst = p
		} else {
			inputs = setVar(inputs, p)
		}
	}
	if dst == nil || len(inputs) == 0 {
		return
	}

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a nested literal has its own parameter space
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || pass.TypesInfo.Uses[id] != dst {
					continue
				}
				if i >= len(n.Rhs) {
					continue
				}
				if root := sliceRootParam(pass, n.Rhs[i], inputs); root != nil {
					pass.Reportf(n.Rhs[i].Pos(),
						"%s rebinds dst to a view of input %s; callers own dst's storage and may write through it while reading %s — copy the values instead (or annotate //lint:allow wsalias)",
						fi.Display, root.Name(), root.Name())
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if root := sliceRootParam(pass, r, inputs); root != nil {
					pass.Reportf(r.Pos(),
						"%s returns input %s instead of dst; callers own the result's storage and may write through it while reading %s — copy into dst and return that (or annotate //lint:allow wsalias)",
						fi.Display, root.Name(), root.Name())
				}
			}
		}
		return true
	})
}

func setVar(m map[*types.Var]bool, v *types.Var) map[*types.Var]bool {
	m[v] = true
	return m
}

// sliceRootParam peels slicing, indexing, and parens off e and reports the
// input parameter at its root, if any.  Expressions that construct new
// storage (append, make, calls) have no parameter root.
func sliceRootParam(pass *Pass, e ast.Expr, inputs map[*types.Var]bool) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			if v, ok := pass.TypesInfo.Uses[x].(*types.Var); ok && inputs[v] {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// checkWorkspaceCapture applies Rule 2 to one goroutine literal.
func checkWorkspaceCapture(pass *Pass, lit *ast.FuncLit) {
	reported := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || reported[v] || !capturedVar(v, lit) {
			return true
		}
		if !isWorkspaceType(v.Type()) {
			return true
		}
		reported[v] = true
		pass.Reportf(id.Pos(),
			"workspace %s is captured by this goroutine; workspaces are single-owner scratch memory — give each worker its own (e.g. index a per-worker slice), or annotate //lint:allow wsalias",
			v.Name())
		return true
	})
}

// isWorkspaceType reports whether t is a named type called Workspace, or a
// pointer to one.
func isWorkspaceType(t types.Type) bool {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	return ok && n.Obj().Name() == "Workspace"
}
