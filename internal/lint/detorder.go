package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetOrder flags map iteration whose order can leak into observable
// output.  Go randomizes map range order per run, so a `for k, v := range
// m` that prints, writes a table row, logs, or appends into a result slice
// produces different bytes on every invocation — the classic
// nondeterministic-reproduction bug: experiment tables that cannot be
// diffed against the paper's, golden files that flap, seeds that "work"
// only sometimes.
//
// A loop is flagged when its body reaches an output or accumulation sink:
// a call whose name starts with Print, Fprint, Sprint, Log, or Write (or
// is the experiment table writers' `row`), or an append into a slice
// declared outside the loop.  The append sink is exempt when the
// destination is sorted after the loop — the canonical fix of collecting
// keys, sorting, and ranging over the sorted slice never triggers the
// analyzer.  Commutative accumulation (`sum += v`) is not a sink.
//
// Test files are skipped: t.Errorf inside a map range reports set
// membership, where order is irrelevant.
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc: "flags range-over-map loops whose bodies reach output or " +
		"accumulation sinks without sorting; collect keys, sort, then range",
	Run: runDetOrder,
}

// sinkPrefixes match function or method names that emit observable bytes.
var sinkPrefixes = []string{"Print", "Fprint", "Sprint", "Log", "Write"}

// sinkExact are additional sink names (the experiment table row writer).
var sinkExact = map[string]bool{"row": true}

func runDetOrder(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if _, isMap := types.Unalias(pass.TypesInfo.TypeOf(rs.X)).(*types.Map); !isMap {
					return true
				}
				checkMapRange(pass, fd.Body, rs)
				return true
			})
		}
	}
	return nil
}

// checkMapRange scans one map-range body for sinks and reports the first.
func checkMapRange(pass *Pass, fn *ast.BlockStmt, rs *ast.RangeStmt) {
	var sink string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := outputSinkName(pass, n); ok {
				sink = name
				return false
			}
			if dest := appendDest(pass, n); dest != nil &&
				dest.Pos() < rs.Pos() && !sortedAfter(pass, fn, rs, dest) {
				sink = "append to " + dest.Name()
				return false
			}
		}
		return true
	})
	if sink != "" {
		pass.Reportf(rs.For,
			"map iteration order reaches %s; collect the keys, sort them, and range over the sorted slice (or annotate //lint:allow detorder)",
			sink)
	}
}

// outputSinkName reports whether the call emits observable output.
func outputSinkName(pass *Pass, call *ast.CallExpr) (string, bool) {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return "", false
	}
	if sinkExact[name] {
		return name, true
	}
	for _, p := range sinkPrefixes {
		if strings.HasPrefix(name, p) {
			return name, true
		}
	}
	return "", false
}

// appendDest returns the variable an `x = append(x, …)` call grows, if the
// call is the builtin append with an identifier destination.
func appendDest(pass *Pass, call *ast.CallExpr) *types.Var {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	dest, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pass.TypesInfo.Uses[dest].(*types.Var)
	return v
}

// sortedAfter reports whether the destination slice is passed to a sort
// after the loop — the collect-then-sort idiom.
func sortedAfter(pass *Pass, fn *ast.BlockStmt, rs *ast.RangeStmt, dest *types.Var) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == dest {
					mentioned = true
					return false
				}
				return !mentioned
			})
			if mentioned {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall recognizes the sort/slices package entry points and anything
// whose name starts with Sort.
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	var pkg, name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		if base, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[base].(*types.PkgName); ok {
				pkg = pn.Imported().Path()
			}
		}
	default:
		return false
	}
	if strings.HasPrefix(name, "Sort") {
		return true
	}
	switch pkg {
	case "sort":
		return name == "Strings" || name == "Ints" || name == "Float64s" ||
			name == "Slice" || name == "SliceStable" || name == "Stable"
	case "slices":
		return strings.HasPrefix(name, "Sort")
	}
	return false
}
