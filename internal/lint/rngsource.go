package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// randdistPath is the one package allowed to construct math/rand sources:
// everything else must obtain streams through its seeded constructors so
// the EXPERIMENTS.md verdicts stay reproducible run-over-run.
const randdistPath = "greednet/internal/randdist"

// rngConstructors are the math/rand entry points that build new streams.
var rngConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// RNGSource flags draws from math/rand's global, implicitly seeded source
// (rand.Float64(), rand.Intn(), ... at package level) everywhere, and
// direct stream construction (rand.New, rand.NewSource) outside
// internal/randdist in non-test code.  All simulation randomness must flow
// through randdist.NewRand(seed) so every experiment is a deterministic
// function of its seed.
var RNGSource = &Analyzer{
	Name: "rngsource",
	Doc: "flags math/rand global-source draws everywhere and rand.New / " +
		"rand.NewSource construction outside internal/randdist; use " +
		"randdist.NewRand(seed) for an injectable seeded stream",
	Run: runRNGSource,
}

func runRNGSource(pass *Pass) error {
	if pass.Pkg != nil && pass.Pkg.Path() == randdistPath {
		return nil // the sanctioned wrapper itself
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			path := obj.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Only package-level selectors matter: rand.Float64 is the
			// global source, rng.Float64 is a method on an injected stream.
			if _, isPkg := pass.TypesInfo.Uses[rootIdent(sel.X)].(*types.PkgName); !isPkg {
				return true
			}
			name := sel.Sel.Name
			switch {
			case rngConstructors[name]:
				if pass.InTestFile(sel.Pos()) {
					return true // tests may build throwaway local streams
				}
				pass.Reportf(sel.Pos(),
					"direct %s.%s outside internal/randdist; construct seeded streams with randdist.NewRand (//lint:allow rngsource to override)",
					lastPathElem(path), name)
			case isFunc(obj):
				pass.Reportf(sel.Pos(),
					"draw from %s.%s uses the global implicitly-seeded source; inject a randdist.NewRand stream instead (//lint:allow rngsource to override)",
					lastPathElem(path), name)
			}
			return true
		})
	}
	return nil
}

// rootIdent returns the leftmost identifier of a selector chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isFunc(obj types.Object) bool {
	_, ok := obj.(*types.Func)
	return ok
}

func lastPathElem(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
