package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GuardedByName is the analyzer's registered name (and //lint:allow token).
const GuardedByName = "guardedby"

// GuardedBy enforces the lock discipline declared by //lint:guardedby
// annotations: a struct field marked `//lint:guardedby mu` may only be read
// while the sibling field mu is at least read-locked and only be written
// (assigned, inc/dec'd, or address-taken) while mu is exclusively locked.
// Held locks are computed by the lock-held lattice in cfg.go — a forward
// must-analysis over the CFG that understands `defer mu.Unlock()` (the lock
// stays held to the end of the body), RLock versus Lock strength, TryLock
// branch refinement, and release/re-acquisition in loops.
//
// Functions annotated `//lint:locked mu` declare a locking precondition
// instead of acquiring: their bodies start with mu held (both "mu" and
// "recv.mu" forms), and the requirement is exported cross-package as a
// NeedsLocks fact, so a method called under a lock inherits the context and
// every call site — local or importing — is checked for the lock being held
// exclusively.
//
// The lattice identifies locks by printed receiver path ("c.mu"), so a
// guarded access is only checkable when the field access and the lock share
// a base path; a lock acquired through an alias or inside a helper is
// invisible — annotate the helper //lint:locked, or the access
// //lint:allow guardedby, to teach the analyzer.  Function literals are
// analyzed as separate units with an empty entry state: a closure may run
// long after the creating scope's locks were released.  Test files are
// exempt.
var GuardedBy = &Analyzer{
	Name: GuardedByName,
	Doc: "fields annotated //lint:guardedby mu may only be accessed with mu " +
		"held (read lock for reads, exclusive for writes), verified by a " +
		"CFG lock-held lattice; //lint:locked declares a callee's lock " +
		"precondition, checked at every call site",
	Run: runGuardedBy,
}

// directiveArgs finds the first comment in cg starting with directive and
// returns its whitespace-separated arguments.  A directive immediately
// followed by more word characters ("//lint:guardedbyx") does not match.
func directiveArgs(cg *ast.CommentGroup, directive string) (args []string, pos token.Pos, found bool) {
	if cg == nil {
		return nil, token.NoPos, false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if !strings.HasPrefix(text, directive) {
			continue
		}
		rest := strings.TrimPrefix(text, directive)
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue
		}
		return strings.Fields(rest), c.Pos(), true
	}
	return nil, token.NoPos, false
}

// collectGuardedFields maps each annotated field object to the name of its
// guarding sibling field, reporting malformed annotations (no lock name, or
// a lock that is not a sibling field) as findings of their own.
func collectGuardedFields(pass *Pass) map[*types.Var]string {
	guards := make(map[*types.Var]string)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			siblings := make(map[string]bool)
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					siblings[name.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				args, pos, found := directiveArgs(fld.Doc, GuardedByDirective)
				if !found {
					args, pos, found = directiveArgs(fld.Comment, GuardedByDirective)
				}
				if !found {
					continue
				}
				if len(args) == 0 {
					pass.Reportf(pos, "//lint:guardedby names no lock; write //lint:guardedby <sibling mutex field>")
					continue
				}
				lock := args[0]
				if !siblings[lock] {
					pass.Reportf(pos, "//lint:guardedby %s names no sibling field of this struct; fix the lock name or delete the annotation", lock)
					continue
				}
				for _, name := range fld.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[v] = lock
					}
				}
			}
			return true
		})
	}
	return guards
}

func runGuardedBy(pass *Pass) error {
	guards := collectGuardedFields(pass)
	fc := newFlowCache(pass)
	for _, fi := range pass.Graph.Funcs {
		if pass.InTestFile(fi.Decl.Pos()) {
			continue
		}
		// The declaration body starts with its //lint:locked seed; every
		// nested literal is a separate unit with an empty entry state.
		sig, _ := fi.Obj.Type().(*types.Signature)
		checkLockUnit(pass, fc, fi.Decl.Body, sig, lockSeed(fi), guards)
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				lsig, _ := types.Unalias(pass.TypesInfo.TypeOf(lit)).(*types.Signature)
				checkLockUnit(pass, fc, lit.Body, lsig, nil, guards)
			}
			return true
		})
	}
	return nil
}

// lockSeed builds the entry lock state of a //lint:locked function: each
// declared lock is held exclusively, under both its bare name and the
// receiver-qualified path, so "n" and "c.n" accesses both see it.
func lockSeed(fi *FuncInfo) lockState {
	if len(fi.Locked) == 0 {
		return nil
	}
	seed := lockState{}
	recv := ""
	if fi.Decl.Recv != nil && len(fi.Decl.Recv.List) > 0 && len(fi.Decl.Recv.List[0].Names) > 0 {
		recv = fi.Decl.Recv.List[0].Names[0].Name
	}
	for _, l := range fi.Locked {
		seed[l] = lockHeldW
		if recv != "" && recv != "_" {
			seed[recv+"."+l] = lockHeldW
		}
	}
	return seed
}

// guardedAccess is one guarded-field use awaiting a lattice query.
type guardedAccess struct {
	sel     *ast.SelectorExpr
	lockKey string // e.g. "c.mu"
	field   string // display form, e.g. "c.n"
	lock    string // bare lock name from the annotation
	write   bool
}

// lockedCall is one call to a //lint:locked function awaiting a query.
type lockedCall struct {
	call    *ast.CallExpr
	display string
	keys    []string // qualified lock paths that must be held
}

// checkLockUnit verifies one body (declaration or literal): it collects the
// guarded accesses and locked-callee calls outside nested literals, and —
// only when there are any — solves the lattice and queries it.
func checkLockUnit(pass *Pass, fc *flowCache, body *ast.BlockStmt, sig *types.Signature, seed lockState, guards map[*types.Var]string) {
	writes := writeTargets(body)
	var accesses []guardedAccess
	var calls []lockedCall
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n.Body != body {
				return false // separate unit
			}
		case *ast.SelectorExpr:
			v := selectedField(pass, n)
			lock, ok := guards[v]
			if !ok {
				return true
			}
			base := lockPath(n.X)
			if base == "" {
				return true // untracked base path: lattice cannot help
			}
			accesses = append(accesses, guardedAccess{
				sel:     n,
				lockKey: base + "." + lock,
				field:   base + "." + n.Sel.Name,
				lock:    lock,
				write:   writes[unparenKey(n)],
			})
		case *ast.CallExpr:
			fn := calleeFunc(pass, n.Fun)
			if fn == nil {
				return true
			}
			needs := needsLocksOf(pass, fn)
			if len(needs) == 0 {
				return true
			}
			prefix := callRecvPath(pass, n)
			keys := make([]string, len(needs))
			for i, l := range needs {
				if prefix != "" {
					keys[i] = prefix + "." + l
				} else {
					keys[i] = l
				}
			}
			calls = append(calls, lockedCall{call: n, display: displayKey(fn), keys: keys})
		}
		return true
	})
	if len(accesses) == 0 && len(calls) == 0 {
		return
	}
	ff := fc.flowFor(body, sig)
	lf := newLockFlow(ff, body, seed)
	for _, a := range accesses {
		held, reached := lf.heldAt(a.sel.Pos())
		if !reached {
			continue
		}
		kind := held[a.lockKey]
		switch {
		case a.write && kind == lockHeldR:
			pass.Reportf(a.sel.Pos(),
				"write to %s (//lint:guardedby %s) while holding only the read lock; upgrade %s.RLock() to %s.Lock()",
				a.field, a.lock, a.lockKey, a.lockKey)
		case a.write && kind == 0:
			pass.Reportf(a.sel.Pos(),
				"write to %s (//lint:guardedby %s) without %s held; acquire %s.Lock(), annotate the enclosing function //lint:locked %s, or //lint:allow guardedby with the reason",
				a.field, a.lock, a.lockKey, a.lockKey, a.lock)
		case !a.write && kind == 0:
			pass.Reportf(a.sel.Pos(),
				"read of %s (//lint:guardedby %s) without %s held; acquire %s.RLock(), annotate the enclosing function //lint:locked %s, or //lint:allow guardedby with the reason",
				a.field, a.lock, a.lockKey, a.lockKey, a.lock)
		}
	}
	for _, c := range calls {
		held, reached := lf.heldAt(c.call.Pos())
		if !reached {
			continue
		}
		for _, key := range c.keys {
			if held[key] == lockHeldW {
				continue
			}
			pass.Reportf(c.call.Pos(),
				"call to %s requires %s held exclusively (//lint:locked); acquire it, propagate the //lint:locked annotation, or //lint:allow guardedby with the reason",
				c.display, key)
		}
	}
}

// selectedField resolves a selector to the field object it reads or
// writes, or nil when it is not a field access.
func selectedField(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pass.TypesInfo.Selections[sel]; ok {
		if s.Kind() == types.FieldVal {
			v, _ := s.Obj().(*types.Var)
			return v
		}
		return nil
	}
	if v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// needsLocksOf returns the callee's //lint:locked requirement, from the
// local graph or the imported cross-package facts.
func needsLocksOf(pass *Pass, fn *types.Func) []string {
	if fi, ok := pass.Graph.ByObj[fn]; ok {
		return fi.Locked
	}
	if fact, ok := pass.Graph.Imported.Lookup(FuncKey(fn)); ok {
		return fact.NeedsLocks
	}
	return nil
}

// callRecvPath returns the canonical receiver path of a method call
// ("c" for c.bump()), or "" for plain and package-qualified calls.
func callRecvPath(pass *Pass, call *ast.CallExpr) string {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
			return ""
		}
	}
	return lockPath(sel.X)
}

// writeTargets marks the expressions a body writes: assignment left-hand
// sides, inc/dec operands, and address-taken operands (a pointer to a
// guarded field can be written through at any time, so &x counts as a
// write).
func writeTargets(body *ast.BlockStmt) map[ast.Expr]bool {
	writes := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				writes[unparenKey(lhs)] = true
			}
		case *ast.IncDecStmt:
			writes[unparenKey(n.X)] = true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				writes[unparenKey(n.X)] = true
			}
		}
		return true
	})
	return writes
}

// unparenKey strips parens so `(c.n)++` and `c.n++` share a map key.
func unparenKey(e ast.Expr) ast.Expr { return unparen(e) }
