package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ParSafe flags data races on variables captured by goroutine literals:
// a variable written inside a `go func() { … }()` body and also written
// by the spawning function on the far side of the spawn — after the `go`
// statement, or anywhere in a loop that re-executes the spawn — with no
// visible synchronization.  Writes strictly before the spawn are safe
// (the spawn is a happens-before edge); writes after it race with the
// goroutine unless a lock or join orders them.
//
// The analyzer accepts any of the usual orderings as a guard: a
// Lock/RLock call preceding the write on the goroutine side, one
// preceding the conflicting write on the spawning side, or a Wait() join
// between the spawn and the outer write.  Writes through pointers and
// atomic.* calls are never ident writes, so they are out of scope (and
// out of danger of false positives).
//
// The tree's goroutines are either internal/parallel's pool workers
// (tasks write through per-index slice slots and join on a WaitGroup,
// which is exactly the shape this analyzer wants) or the few direct
// spawns whitelisted into the fanout analyzer's audited inventory via
// //lint:fanout — the experiment watchdog being the canonical one.
// fanout polices where goroutines may exist; parsafe keeps whatever
// spawns honest about the accumulators they share.
var ParSafe = &Analyzer{
	Name: "parsafe",
	Doc: "flags variables written both inside a go func literal and by " +
		"the spawning function after (or around) the spawn without a " +
		"sync guard",
	Run: runParSafe,
}

// identWrite is one assignment/inc-dec to a plain identifier.
type identWrite struct {
	v   *types.Var
	pos token.Pos
}

func runParSafe(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoSpawns(pass, fd.Body)
		}
	}
	return nil
}

func checkGoSpawns(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		checkSpawn(pass, body, g, lit)
		return true
	})
}

func checkSpawn(pass *Pass, body *ast.BlockStmt, g *ast.GoStmt, lit *ast.FuncLit) {
	inside := identWrites(pass, lit.Body)
	if len(inside) == 0 {
		return
	}
	var outside []identWrite
	for _, w := range identWrites(pass, body) {
		if w.pos < lit.Pos() || w.pos > lit.End() {
			outside = append(outside, w)
		}
	}
	loops := enclosingLoops(body, g)

	reported := make(map[*types.Var]bool)
	for _, in := range inside {
		// Only variables captured from the enclosing scope can race; the
		// literal's own locals and parameters are goroutine-private.
		if in.v == nil || reported[in.v] || !capturedVar(in.v, lit) {
			continue
		}
		for _, out := range outside {
			if out.v != in.v || !conflicts(out.pos, g, loops) {
				continue
			}
			if lockBefore(pass, lit.Body, in.pos) ||
				lockBefore(pass, body, out.pos) && out.pos > g.End() ||
				waitBetween(pass, body, g.End(), out.pos) {
				continue
			}
			reported[in.v] = true
			// The conflicting write is in the same function body, hence the
			// same file: line:col alone identifies it without baking an
			// absolute path into the message (which must stay byte-stable
			// across machines for golden files).
			outPos := pass.Fset.Position(out.pos)
			pass.Reportf(in.pos,
				"%s is written in this goroutine and by the spawning function at line %d:%d with no sync guard; protect both writes with a mutex or join the goroutine first (or annotate //lint:allow parsafe)",
				in.v.Name(), outPos.Line, outPos.Column)
			break
		}
	}
}

// capturedVar reports whether v is declared outside the literal (a true
// capture, including package-level variables).
func capturedVar(v *types.Var, lit *ast.FuncLit) bool {
	return v.Pos() < lit.Pos() || v.Pos() > lit.End()
}

// conflicts reports whether an outer write at pos races with the spawn:
// it follows the go statement, or shares a loop with it (a prior
// iteration's goroutine is still live when the next iteration writes).
func conflicts(pos token.Pos, g *ast.GoStmt, loops []ast.Node) bool {
	if pos > g.End() {
		return true
	}
	for _, l := range loops {
		if l.Pos() <= pos && pos <= l.End() {
			return true
		}
	}
	return false
}

// enclosingLoops lists the for/range statements containing g.
func enclosingLoops(body *ast.BlockStmt, g *ast.GoStmt) []ast.Node {
	var loops []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if n.Pos() <= g.Pos() && g.End() <= n.End() {
				loops = append(loops, n)
			}
		}
		return true
	})
	return loops
}

// identWrites collects assignments and inc/dec statements targeting plain
// identifiers anywhere under n.
func identWrites(pass *Pass, n ast.Node) []identWrite {
	var out []identWrite
	record := func(id *ast.Ident) {
		if id.Name == "_" {
			return
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if v, ok := obj.(*types.Var); ok {
			out = append(out, identWrite{v: v, pos: id.Pos()})
		}
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					record(id)
				}
			}
		case *ast.IncDecStmt:
			if id, ok := m.X.(*ast.Ident); ok {
				record(id)
			}
		}
		return true
	})
	return out
}

// lockBefore reports whether a Lock/RLock call precedes pos within scope.
func lockBefore(pass *Pass, scope ast.Node, pos token.Pos) bool {
	found := false
	ast.Inspect(scope, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// waitBetween reports whether a Wait() join sits between the spawn and
// the outer write, ordering the goroutine's writes before it.
func waitBetween(pass *Pass, scope ast.Node, after, before token.Pos) bool {
	found := false
	ast.Inspect(scope, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok || call.Pos() <= after || call.Pos() >= before {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
			found = true
			return false
		}
		return true
	})
	return found
}
