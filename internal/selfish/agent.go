package selfish

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"

	"greednet/internal/core"
	"greednet/internal/randdist"
	"greednet/internal/service"
	"greednet/internal/utility"
)

// Agent is one selfish client speaking the greedd HTTP API — the
// network half of the closed control loop.  Like the simulator-backed
// climbers in this package it observes nothing but its own experienced
// service: it publishes a demanded rate, asks the service to (re)solve,
// reads back its published congestion, scores the point with its
// private utility, and hill-climbs its rate.  All randomness comes from
// the construction seed, so against a deterministic server two agents
// with the same seed trace the same trajectory.
//
// An Agent is single-goroutine; give each simulated client its own.
type Agent struct {
	id   string
	base string
	hc   *http.Client
	opt  AgentOptions

	rate   float64
	dir    float64
	best   float64
	primed bool
	rounds int
	rng    *rand.Rand
}

// AgentOptions configures one climbing client.
type AgentOptions struct {
	// Rate0 is the initial demand.  Default 0.1.
	Rate0 float64
	// Step0 is the initial climb step; it decays as 1/√round.
	// Default 0.02.
	Step0 float64
	// Lo and Hi clamp the demanded rate; defaults 0.001 and 0.95.
	Lo, Hi float64
	// Utility is the cliutil spec published to the service on first
	// contact ("" keeps the server default); U is the same utility used
	// locally to score observed points.  Default linear:1,4.
	Utility string
	U       core.Utility
	// DeadlineMS is the latency budget shipped with each solve; zero
	// means the server default.
	DeadlineMS int64
	// Seed drives the initial climb direction.
	Seed int64
}

func (o AgentOptions) withDefaults() AgentOptions {
	if o.Rate0 <= 0 {
		o.Rate0 = 0.1
	}
	if o.Step0 <= 0 {
		o.Step0 = 0.02
	}
	if o.Lo <= 0 {
		o.Lo = 0.001
	}
	if o.Hi <= 0 || o.Hi >= 1 {
		o.Hi = 0.95
	}
	if o.U == nil {
		o.U = utility.Linear{A: 1, Gamma: 4}
	}
	return o
}

// NewAgent builds a climbing client for the service at base (e.g.
// "http://127.0.0.1:8080") using hc for transport (nil means
// http.DefaultClient).
func NewAgent(base, id string, hc *http.Client, opt AgentOptions) *Agent {
	opt = opt.withDefaults()
	if hc == nil {
		hc = http.DefaultClient
	}
	a := &Agent{id: id, base: base, hc: hc, opt: opt, rate: opt.Rate0, rng: randdist.NewRand(opt.Seed)}
	a.dir = 1
	if a.rng.Intn(2) == 0 {
		a.dir = -1
	}
	return a
}

// Rate returns the agent's current demanded rate.
func (a *Agent) Rate() float64 { return a.rate }

// ID returns the client id the agent publishes under.
func (a *Agent) ID() string { return a.id }

// StepResult reports one control-loop iteration.
type StepResult struct {
	// Admitted is true when the update was accepted this step.
	Admitted bool
	// Shed is the service's rejection reason when any leg of the step
	// was shed ("" when the whole round trip succeeded).
	Shed string
	// Utility is the score of the observed operating point (NaN when
	// no point was observed this step).
	Utility float64
	// Rate is the demand the agent will publish next step.
	Rate float64
}

// Step runs one iteration of the control loop: publish the current
// rate, request a solve, observe the republished congestion, and climb.
// Admission rejections trigger a retreat (halve the demand — the
// service told this agent its greed would make someone's protection
// bound infinite); overload and deadline sheds leave the rate alone so
// the agent simply retries later, which is exactly the backpressure the
// service's shedding is designed to exert.
func (a *Agent) Step(ctx context.Context) (StepResult, error) {
	res := StepResult{Utility: math.NaN()}

	code, rej, err := a.call(ctx, "POST", "/v1/update",
		service.UpdateRequest{Client: a.id, Rate: a.rate, Utility: a.opt.Utility}, nil)
	if err != nil {
		return res, err
	}
	if code != http.StatusOK {
		res.Shed = rejReason(rej, code)
		if res.Shed == service.ReasonAdmission {
			a.rate = core.Clamp(a.rate/2, a.opt.Lo, a.opt.Hi)
		}
		res.Rate = a.rate
		return res, nil
	}
	res.Admitted = true

	var solved service.SolveResponse
	code, rej, err = a.call(ctx, "POST", "/v1/solve",
		service.SolveRequest{Client: a.id, DeadlineMS: a.opt.DeadlineMS}, &solved)
	if err != nil {
		return res, err
	}
	if code != http.StatusOK {
		res.Shed = rejReason(rej, code)
		res.Rate = a.rate
		return res, nil
	}

	var pt service.CongestionResponse
	code, rej, err = a.call(ctx, "GET", "/v1/congestion?client="+a.id, nil, &pt)
	if err != nil {
		return res, err
	}
	if code != http.StatusOK {
		res.Shed = rejReason(rej, code)
		res.Rate = a.rate
		return res, nil
	}

	res.Utility = a.opt.U.Value(pt.Rate, pt.Congestion)
	a.climb(res.Utility)
	res.Rate = a.rate
	return res, nil
}

// climb moves the demanded rate one decaying step in the direction the
// observed utility says is uphill: keep going while the score improves,
// turn around when it drops.
func (a *Agent) climb(v float64) {
	if a.primed && v < a.best {
		a.dir = -a.dir
	}
	a.primed = true
	a.best = v
	a.rounds++
	step := a.opt.Step0 / math.Sqrt(float64(a.rounds))
	a.rate = core.Clamp(a.rate+a.dir*step, a.opt.Lo, a.opt.Hi)
}

// call performs one JSON round trip.  Non-2xx bodies are decoded as
// typed rejections and returned alongside the status code.
func (a *Agent) call(ctx context.Context, method, path string, in, out any) (int, *service.Rejection, error) {
	var body *bytes.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return 0, nil, err
		}
		body = bytes.NewReader(raw)
	} else {
		body = bytes.NewReader(nil)
	}
	req, err := http.NewRequestWithContext(ctx, method, a.base+path, body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := a.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode/100 != 2 {
		var rej service.Rejection
		if derr := json.NewDecoder(resp.Body).Decode(&rej); derr != nil {
			return resp.StatusCode, nil, fmt.Errorf("selfish: %s %s: status %d with undecodable body: %w",
				method, path, resp.StatusCode, derr)
		}
		return resp.StatusCode, &rej, nil
	}
	if out != nil {
		if derr := json.NewDecoder(resp.Body).Decode(out); derr != nil {
			return resp.StatusCode, nil, fmt.Errorf("selfish: %s %s: bad 2xx body: %w", method, path, derr)
		}
	}
	return resp.StatusCode, nil, nil
}

// rejReason extracts the typed reason from a rejection, falling back to
// the status code when the body carried none.
func rejReason(rej *service.Rejection, code int) string {
	if rej != nil && rej.Reason != "" {
		return rej.Reason
	}
	return fmt.Sprintf("http-%d", code)
}
