// Package selfish closes the loop the paper's premises describe: selfish
// users who observe nothing but their own experienced service.  Rates are
// adjusted by stochastic hill climbing on utilities computed from
// congestion *measured* in the discrete-event simulator (not from the
// analytic allocation), exactly the "adjust the knob until the picture
// looks best" behaviour of §2.2.  If the paper's premise 2 is right, these
// blind optimizers must land on the Nash equilibrium of the induced
// allocation function — which the experiments verify for both FIFO and
// Fair Share switches.
package selfish

import (
	"math"

	"greednet/internal/core"
	"greednet/internal/des"
	"greednet/internal/randdist"
)

// DisciplineFactory builds a fresh simulator discipline for each
// measurement epoch (disciplines are stateful).
type DisciplineFactory func() des.Discipline

// Options configures a closed-loop run.
type Options struct {
	// Epoch is the simulated time per payoff measurement; longer epochs
	// mean less noise.  Default 4000.
	Epoch float64
	// Rounds is the number of adjustment rounds (each round lets every
	// user probe once, round-robin).  Default 60.
	Rounds int
	// Delta0 is the initial probe distance; it decays as 1/√round.
	// Default 0.02.
	Delta0 float64
	// Step0 is the initial step size; it decays as 1/√round.  Default 0.04.
	Step0 float64
	// Lo and Hi clamp rates; defaults 0.005 and 0.95.
	Lo, Hi float64
	// Seed seeds all measurement randomness.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Epoch <= 0 {
		o.Epoch = 4000
	}
	if o.Rounds <= 0 {
		o.Rounds = 60
	}
	if o.Delta0 <= 0 {
		o.Delta0 = 0.02
	}
	if o.Step0 <= 0 {
		o.Step0 = 0.04
	}
	if o.Lo <= 0 {
		o.Lo = 0.005
	}
	if o.Hi <= 0 || o.Hi >= 1 {
		o.Hi = 0.95
	}
	return o
}

// Result reports a closed-loop run.
type Result struct {
	// R is the final rate vector.
	R []float64
	// Trajectory records the rates after each round (including the start).
	Trajectory [][]float64
	// Epochs counts simulator runs performed.
	Epochs int
}

// measure runs one epoch and returns user i's utility at the current
// rates, using the measured (not analytic) congestion.  Rates whose total
// reaches the server capacity yield −Inf (the user experiences meltdown).
func measure(factory DisciplineFactory, u core.Utility, r []core.Rate, i int, epoch float64, seed int64) float64 {
	total := 0.0
	for _, v := range r {
		total += v
	}
	if total >= 0.99 {
		return math.Inf(-1)
	}
	res, err := des.Run(des.Config{
		Rates:      r,
		Discipline: factory(),
		Horizon:    epoch,
		Seed:       seed,
	})
	if err != nil {
		return math.Inf(-1)
	}
	return u.Value(r[i], res.AvgQueue[i])
}

// Run executes the closed loop: in each round every user, in turn, probes
// its payoff at r_i ± δ with two measurement epochs and moves its rate by
// a bounded step in the better direction (a Kiefer–Wolfowitz scheme with
// decaying probe and step sizes).
func Run(factory DisciplineFactory, us core.Profile, r0 []core.Rate, opt Options) Result {
	opt = opt.withDefaults()
	n := len(r0)
	r := append([]float64(nil), r0...)
	res := Result{}
	res.Trajectory = append(res.Trajectory, append([]float64(nil), r...))
	rng := randdist.NewRand(opt.Seed)
	for round := 1; round <= opt.Rounds; round++ {
		decay := 1 / math.Sqrt(float64(round))
		delta := opt.Delta0 * decay
		step := opt.Step0 * decay
		// Stretch measurement epochs as steps shrink so the noise-to-step
		// ratio keeps falling (the Kiefer–Wolfowitz requirement).
		epoch := opt.Epoch * (1 + float64(round)/8)
		for i := 0; i < n; i++ {
			up := core.Clamp(r[i]+delta, opt.Lo, opt.Hi)
			dn := core.Clamp(r[i]-delta, opt.Lo, opt.Hi)
			rUp := core.WithRate(r, i, up)
			rDn := core.WithRate(r, i, dn)
			// Common random numbers: measuring both probes under the same
			// seed cancels most of the shared queueing noise, which is
			// what makes small probe differences detectable.
			seed := rng.Int63()
			vUp := measure(factory, us[i], rUp, i, epoch, seed)
			vDn := measure(factory, us[i], rDn, i, epoch, seed)
			res.Epochs += 2
			switch {
			case math.IsInf(vUp, -1) && math.IsInf(vDn, -1):
				// Meltdown in both directions: retreat.
				r[i] = core.Clamp(r[i]-step, opt.Lo, opt.Hi)
			case vUp > vDn:
				r[i] = core.Clamp(r[i]+step, opt.Lo, opt.Hi)
			case vDn > vUp:
				r[i] = core.Clamp(r[i]-step, opt.Lo, opt.Hi)
			}
		}
		res.Trajectory = append(res.Trajectory, append([]float64(nil), r...))
	}
	res.R = r
	return res
}

// TailAverage returns the per-user average of the last k trajectory
// entries — a lower-variance estimate of the settled operating point.
func (r Result) TailAverage(k int) []float64 {
	if k <= 0 || k > len(r.Trajectory) {
		k = len(r.Trajectory)
	}
	n := len(r.Trajectory[0])
	out := make([]float64, n)
	for _, row := range r.Trajectory[len(r.Trajectory)-k:] {
		for i, v := range row {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(k)
	}
	return out
}
