package selfish

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"

	"greednet/internal/service"
)

// startService spins up a greedd server on an httptest listener with
// token buckets effectively disabled (the agents here step far faster
// than real clients would).
func startService(t *testing.T) (*service.Server, string) {
	t.Helper()
	s := service.New(service.Options{Burst: 1e9, Refill: 1e9})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = s.Shutdown(context.Background())
	})
	return s, ts.URL
}

// TestAgentClosedLoopImprovesUtility drives one climbing agent against
// a live service and checks the loop actually closes: the agent gets
// admitted, observes solved congestion, and its settled utility is no
// worse than the first point it saw.
func TestAgentClosedLoopImprovesUtility(t *testing.T) {
	_, base := startService(t)
	a := NewAgent(base, "climber", nil, AgentOptions{Rate0: 0.05, Seed: 1})

	ctx := context.Background()
	first, last := math.NaN(), math.NaN()
	for i := 0; i < 40; i++ {
		res, err := a.Step(ctx)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if !res.Admitted {
			t.Fatalf("step %d: sole agent rejected (%s)", i, res.Shed)
		}
		if !math.IsNaN(res.Utility) {
			if math.IsNaN(first) {
				first = res.Utility
			}
			last = res.Utility
		}
	}
	if math.IsNaN(first) {
		t.Fatal("agent never observed a solved point")
	}
	if last < first-1e-9 {
		t.Fatalf("closed loop made things worse: first utility %v, last %v", first, last)
	}
}

// TestAgentRetreatsOnAdmissionRejection pins the backpressure path: a
// greedy newcomer whose rate would blow the incumbent's protection
// bound is rejected with the admission reason and halves its demand
// until the service lets it in.
func TestAgentRetreatsOnAdmissionRejection(t *testing.T) {
	_, base := startService(t)
	ctx := context.Background()

	incumbent := NewAgent(base, "inc", nil, AgentOptions{Rate0: 0.3, Seed: 2})
	if res, err := incumbent.Step(ctx); err != nil || !res.Admitted {
		t.Fatalf("incumbent not admitted: %+v, %v", res, err)
	}

	greedy := NewAgent(base, "greedy", nil, AgentOptions{Rate0: 0.9, Seed: 3})
	sawAdmissionShed := false
	admitted := false
	for i := 0; i < 10 && !admitted; i++ {
		res, err := greedy.Step(ctx)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if res.Shed == service.ReasonAdmission {
			sawAdmissionShed = true
		}
		admitted = res.Admitted
	}
	if !sawAdmissionShed {
		t.Fatal("greedy agent was never admission-rejected at rate 0.9 with N=2")
	}
	if !admitted {
		t.Fatalf("greedy agent never retreated into admission (rate now %v)", greedy.Rate())
	}
	if greedy.Rate() >= 0.5 {
		t.Fatalf("admitted rate %v should be below the N=2 pole 0.5", greedy.Rate())
	}
}

// TestAgentDeterministic pins the reproducibility contract: two agents
// with the same seed against identically configured servers trace the
// same rate trajectory.
func TestAgentDeterministic(t *testing.T) {
	_, baseA := startService(t)
	_, baseB := startService(t)
	a := NewAgent(baseA, "x", nil, AgentOptions{Rate0: 0.08, Seed: 9})
	b := NewAgent(baseB, "x", nil, AgentOptions{Rate0: 0.08, Seed: 9})
	ctx := context.Background()
	for i := 0; i < 25; i++ {
		ra, errA := a.Step(ctx)
		rb, errB := b.Step(ctx)
		if errA != nil || errB != nil {
			t.Fatalf("step %d: errors %v, %v", i, errA, errB)
		}
		if ra.Rate != rb.Rate {
			t.Fatalf("step %d: trajectories diverge: %v vs %v", i, ra.Rate, rb.Rate)
		}
	}
}
