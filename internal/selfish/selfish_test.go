package selfish

import (
	"math"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/des"
	"greednet/internal/game"
	"greednet/internal/utility"
)

func TestClosedLoopFindsFairShareNash(t *testing.T) {
	// Blind stochastic hill climbers over the simulator must settle near
	// the analytic Fair Share Nash equilibrium.
	n := 3
	gamma := 0.25
	us := utility.Identical(utility.NewLinear(1, gamma), n)
	want := (1 - math.Sqrt(gamma)) / float64(n)
	res := Run(func() des.Discipline { return &des.FairShareSplitter{} },
		us, []float64{0.05, 0.3, 0.15}, Options{Seed: 1})
	settled := res.TailAverage(10)
	for i, v := range settled {
		if math.Abs(v-want) > 0.03 {
			t.Errorf("user %d settled at %v, analytic Nash %v", i, v, want)
		}
	}
	if res.Epochs == 0 || len(res.Trajectory) != 61 {
		t.Errorf("unexpected bookkeeping: epochs=%d rounds=%d", res.Epochs, len(res.Trajectory))
	}
}

func TestClosedLoopFindsFIFONash(t *testing.T) {
	// Premise 2 cuts both ways: under FIFO the blind optimizers land on
	// the (inefficient) proportional Nash equilibrium.
	n := 2
	gamma := 0.25
	us := utility.Identical(utility.NewLinear(1, gamma), n)
	nash, err := game.SolveNash(alloc.Proportional{}, us, []float64{0.1, 0.1}, game.NashOptions{})
	if err != nil || !nash.Converged {
		t.Fatal("analytic solve failed")
	}
	res := Run(func() des.Discipline { return &des.FIFO{} },
		us, []float64{0.1, 0.4}, Options{Seed: 2})
	settled := res.TailAverage(10)
	for i, v := range settled {
		if math.Abs(v-nash.R[i]) > 0.04 {
			t.Errorf("user %d settled at %v, analytic FIFO Nash %v", i, v, nash.R[i])
		}
	}
}

func TestTailAverage(t *testing.T) {
	r := Result{Trajectory: [][]float64{{0, 0}, {1, 2}, {3, 4}}}
	got := r.TailAverage(2)
	if got[0] != 2 || got[1] != 3 {
		t.Errorf("TailAverage = %v", got)
	}
	all := r.TailAverage(0)
	if math.Abs(all[0]-4.0/3) > 1e-12 {
		t.Errorf("TailAverage(0) = %v", all)
	}
}

func TestMeltdownRetreat(t *testing.T) {
	// Starting at meltdown rates, users must retreat into the stable
	// region rather than sticking at −Inf payoffs.
	us := utility.Identical(utility.NewLinear(1, 0.25), 2)
	res := Run(func() des.Discipline { return &des.FIFO{} },
		us, []float64{0.6, 0.6}, Options{Seed: 3, Rounds: 30})
	total := res.R[0] + res.R[1]
	if total >= 0.99 {
		t.Errorf("users failed to retreat from meltdown: %v", res.R)
	}
}
