package mm1

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestG(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0},
		{0.5, 1},
		{0.8, 4},
		{0.9, 9},
	}
	for _, c := range cases {
		if got := G(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("G(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if !math.IsInf(G(1), 1) || !math.IsInf(G(1.5), 1) {
		t.Error("G should be +Inf at and beyond saturation")
	}
}

func TestGDerivativesMatchFD(t *testing.T) {
	for _, x := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		h := 1e-6
		fd1 := (G(x+h) - G(x-h)) / (2 * h)
		if math.Abs(fd1-GPrime(x)) > 1e-4*GPrime(x) {
			t.Errorf("GPrime(%v) = %v, FD %v", x, GPrime(x), fd1)
		}
		fd2 := (GPrime(x+h) - GPrime(x-h)) / (2 * h)
		if math.Abs(fd2-GPrime2(x)) > 1e-4*GPrime2(x) {
			t.Errorf("GPrime2(%v) = %v, FD %v", x, GPrime2(x), fd2)
		}
	}
}

func TestGInverse(t *testing.T) {
	for _, x := range []float64{0.01, 0.25, 0.5, 0.9, 0.99} {
		if got := GInverse(G(x)); math.Abs(got-x) > 1e-12 {
			t.Errorf("GInverse(G(%v)) = %v", x, got)
		}
	}
	if GInverse(math.Inf(1)) != 1 {
		t.Error("GInverse(+Inf) should be 1")
	}
}

func TestGConvexityProperty(t *testing.T) {
	// g is strictly increasing and strictly convex on [0, 1).
	f := func(a, b uint16) bool {
		x := float64(a) / 65536 * 0.99
		y := float64(b) / 65536 * 0.99
		if x > y {
			x, y = y, x
		}
		if x == y {
			return true
		}
		mid := (x + y) / 2
		return G(x) < G(y) && G(mid) < (G(x)+G(y))/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInDomain(t *testing.T) {
	if !InDomain([]float64{0.2, 0.3}) {
		t.Error("0.5 total should be in domain")
	}
	if InDomain([]float64{0.5, 0.5}) {
		t.Error("total 1 is out of domain")
	}
	if InDomain([]float64{0.2, 0}) {
		t.Error("zero rate is out of domain")
	}
	if InDomain([]float64{-0.1, 0.3}) {
		t.Error("negative rate is out of domain")
	}
	if InDomain([]float64{math.NaN(), 0.1}) {
		t.Error("NaN is out of domain")
	}
}

func TestCheckFeasibleProportional(t *testing.T) {
	// The proportional allocation is feasible and interior.
	r := []float64{0.1, 0.2, 0.3}
	s := Sum(r)
	c := make([]float64, len(r))
	for i := range r {
		c[i] = r[i] / (1 - s)
	}
	rep := CheckFeasible(r, c, 1e-9)
	if !rep.Feasible || !rep.Interior {
		t.Errorf("proportional should be feasible interior: %+v", rep)
	}
}

func TestCheckFeasibleRejectsUndershoot(t *testing.T) {
	// Giving everyone less than the M/M/1 total is infeasible.
	r := []float64{0.2, 0.2}
	c := []float64{0.1, 0.1} // total 0.2 < g(0.4) ≈ 0.667
	rep := CheckFeasible(r, c, 1e-9)
	if rep.Feasible {
		t.Errorf("undershoot should be infeasible: %+v", rep)
	}
}

func TestCheckFeasibleRejectsSubsetViolation(t *testing.T) {
	// Total matches g(s) but one user gets less queue than an isolated
	// M/M/1 at its own rate would have — impossible for work-conserving
	// disciplines.
	r := []float64{0.4, 0.4}
	total := G(0.8) // = 4
	cLow := G(0.4) * 0.5
	c := []float64{cLow, total - cLow}
	rep := CheckFeasible(r, c, 1e-9)
	if rep.Feasible {
		t.Errorf("subset violation should be infeasible: %+v", rep)
	}
}

func TestCheckFeasibleBoundarySaturated(t *testing.T) {
	// Strict priority puts the high-priority user exactly at its isolated
	// M/M/1 queue: feasible but on the boundary, not interior.
	r := []float64{0.3, 0.4}
	c1 := G(0.3)
	c := []float64{c1, G(0.7) - c1}
	rep := CheckFeasible(r, c, 1e-9)
	if !rep.Feasible {
		t.Errorf("priority allocation should be feasible: %+v", rep)
	}
	if rep.Interior {
		t.Errorf("priority allocation should not be interior: %+v", rep)
	}
}

func TestCheckFeasibleDegenerateInputs(t *testing.T) {
	if CheckFeasible(nil, nil, 1e-9).Feasible {
		t.Error("empty input must be infeasible")
	}
	if CheckFeasible([]float64{0.1}, []float64{0.1, 0.2}, 1e-9).Feasible {
		t.Error("length mismatch must be infeasible")
	}
	if CheckFeasible([]float64{0.1}, []float64{math.Inf(1)}, 1e-9).Feasible {
		t.Error("infinite congestion must be infeasible")
	}
}

func TestSymmetricCongestion(t *testing.T) {
	// n users at rate r split g(nr) evenly.
	got := SymmetricCongestion(4, 0.2)
	want := G(0.8) / 4
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("SymmetricCongestion = %v, want %v", got, want)
	}
	if !math.IsNaN(SymmetricCongestion(0, 0.2)) {
		t.Error("n=0 should be NaN")
	}
}

func TestProtectionBound(t *testing.T) {
	if got := ProtectionBound(2, 0.25); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ProtectionBound = %v, want 0.5", got)
	}
	if !math.IsInf(ProtectionBound(4, 0.25), 1) {
		t.Error("saturated bound should be +Inf")
	}
}

func TestZ(t *testing.T) {
	r := []float64{0.25, 0.25}
	if got := Z(r); math.Abs(got-(-4)) > 1e-12 {
		t.Errorf("Z = %v, want -4", got)
	}
	if !math.IsInf(Z([]float64{0.6, 0.6}), -1) {
		t.Error("overloaded Z should be -Inf")
	}
}

func TestFeasibleRandomConvexCombos(t *testing.T) {
	// Convex combinations of proportional and priority allocations remain
	// feasible (the feasible set is convex in c for fixed r).
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(4)
		r := make([]float64, n)
		total := 0.1 + 0.8*rng.Float64()
		sum := 0.0
		for i := range r {
			r[i] = rng.Float64() + 0.01
			sum += r[i]
		}
		for i := range r {
			r[i] *= total / sum
		}
		// Proportional allocation.
		cp := make([]float64, n)
		for i := range r {
			cp[i] = r[i] / (1 - total)
		}
		// Priority allocation in index order (ascending c/r not required
		// by CheckFeasible, which sorts internally).
		cq := make([]float64, n)
		acc := 0.0
		prev := 0.0
		for i := range r {
			acc += r[i]
			cq[i] = G(acc) - prev
			prev = G(acc)
		}
		lam := rng.Float64()
		c := make([]float64, n)
		for i := range r {
			c[i] = lam*cp[i] + (1-lam)*cq[i]
		}
		if rep := CheckFeasible(r, c, 1e-7); !rep.Feasible {
			t.Fatalf("trial %d: convex combo infeasible: %+v", trial, rep)
		}
	}
}
