package mm1

import (
	"fmt"
	"math"

	"greednet/internal/core"
)

// ServerModel abstracts the total-congestion function of a work-conserving
// queueing station: L(x) is the mean number in system at total arrival
// rate x (unit mean service time).  The paper's results hold for any model
// whose L is strictly increasing and strictly convex on [0, 1) (footnote
// 5) — which covers M/M/1, M/D/1, and general M/G/1 stations.
type ServerModel interface {
	// Name identifies the model, e.g. "mm1" or "mg1(cv2=2)".
	Name() string
	// L is the mean number in system at total rate x; +Inf for x ≥ 1.
	L(x core.Rate) core.Congestion
	// LPrime is dL/dx.
	LPrime(x core.Rate) float64
	// LPrime2 is d²L/dx².
	LPrime2(x core.Rate) float64
}

// MM1 is the exponential-service station: L(x) = x/(1−x) — the paper's
// base model.
type MM1 struct{}

// Name implements ServerModel.
func (MM1) Name() string { return "mm1" }

// L implements ServerModel.
func (MM1) L(x core.Rate) core.Congestion { return G(x) }

// LPrime implements ServerModel.
func (MM1) LPrime(x core.Rate) float64 { return GPrime(x) }

// LPrime2 implements ServerModel.
func (MM1) LPrime2(x core.Rate) float64 { return GPrime2(x) }

// MG1 is the Pollaczek–Khinchine station with unit-mean service times of
// squared coefficient of variation CV2:
//
//	L(x) = x + x²·(1 + CV2) / (2(1 − x))
//
// CV2 = 1 recovers M/M/1's mean (though not its higher moments); CV2 = 0
// is M/D/1 (deterministic service).
type MG1 struct {
	// CV2 is the squared coefficient of variation of service times (≥ 0).
	CV2 float64
}

// Name implements ServerModel.
func (m MG1) Name() string { return fmt.Sprintf("mg1(cv2=%g)", m.CV2) }

// L implements ServerModel.
func (m MG1) L(x core.Rate) core.Congestion {
	if x >= 1 {
		return math.Inf(1)
	}
	// Pollaczek–Khinchine: the utilization x doubles as the mean number in
	// service, so it enters the queue-length sum as a dimensionless count.
	return float64(x) + x*x*(1+m.CV2)/(2*(1-x))
}

// LPrime implements ServerModel.
func (m MG1) LPrime(x core.Rate) float64 {
	if x >= 1 {
		return math.Inf(1)
	}
	k := (1 + m.CV2) / 2
	d := 1 - x
	// d/dx [x²/(1−x)] = (2x(1−x) + x²)/(1−x)² = x(2−x)/(1−x)².
	return 1 + k*x*(2-x)/(d*d)
}

// LPrime2 implements ServerModel.
func (m MG1) LPrime2(x core.Rate) float64 {
	if x >= 1 {
		return math.Inf(1)
	}
	k := (1 + m.CV2) / 2
	d := 1 - x
	// d²/dx² [x²/(1−x)] = 2/(1−x)³.
	return k * 2 / (d * d * d)
}

// MD1 returns the deterministic-service station (CV² = 0).
func MD1() MG1 { return MG1{CV2: 0} }

// SymmetricCongestionG is the per-user congestion of the completely
// symmetric allocation under an arbitrary server model: L(n·r)/n.  It is
// also the generalized Definition-7 protection bound.
func SymmetricCongestionG(m ServerModel, n int, r core.Rate) core.Congestion {
	if n <= 0 {
		return math.NaN()
	}
	return m.L(float64(n)*r) / float64(n)
}

// CheckFeasibleG validates (r, c) against the work-conserving feasible set
// of an arbitrary server model (the Kleinrock conservation analogue of
// CheckFeasible).
func CheckFeasibleG(m ServerModel, r []core.Rate, c []core.Congestion, tol float64) FeasibilityReport {
	var rep FeasibilityReport
	rep.MinPrefixSlack = math.Inf(1)
	if len(r) != len(c) || len(r) == 0 || !InDomain(r) {
		rep.TotalResidual = math.NaN()
		return rep
	}
	for _, v := range c {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			rep.TotalResidual = math.NaN()
			return rep
		}
	}
	n := len(r)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Sort by increasing c_i/r_i as in CheckFeasible.
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if c[idx[b]]*r[idx[a]] < c[idx[a]]*r[idx[b]] {
				idx[a], idx[b] = idx[b], idx[a]
			}
		}
	}
	sumC, sumR := 0.0, 0.0
	interior := true
	for k := 0; k < n; k++ {
		sumC += c[idx[k]]
		sumR += r[idx[k]]
		slack := sumC - m.L(sumR)
		if k < n-1 {
			if slack < rep.MinPrefixSlack {
				rep.MinPrefixSlack = slack
			}
			if slack <= tol {
				interior = false
			}
		} else {
			rep.TotalResidual = slack
		}
	}
	if n == 1 {
		rep.MinPrefixSlack = 0
	}
	rep.Feasible = math.Abs(rep.TotalResidual) <= tol && rep.MinPrefixSlack >= -tol
	rep.Interior = rep.Feasible && interior
	return rep
}
