// Package mm1 provides the M/M/1 analytics that underpin the feasibility
// structure of the single-switch model in Shenker's "Making Greed Work in
// Networks" (SIGCOMM 1994).
//
// The switch is an exponential server of rate 1 shared by N independent
// Poisson sources with rates r_i > 0.  Any work-conserving (nonstalling)
// service discipline yields per-user average queue lengths c_i satisfying
//
//	Σ c_i = g(Σ r_i),  g(x) = x / (1 − x),
//
// together with the Coffman–Mitrani subset constraints: ordering users so
// that c_i/r_i is increasing, every prefix must satisfy
// Σ_{i≤k} c_i ≥ g(Σ_{i≤k} r_i).  This package implements g and its
// derivatives, the feasibility predicate, and assorted helpers used by the
// allocation functions and the game solvers.
package mm1

import (
	"math"
	"sort"

	"greednet/internal/core"
)

// G is the M/M/1 mean-queue-length function g(x) = x/(1−x).
// For x ≥ 1 (an overloaded server) it returns +Inf; for x < 0 it returns
// the analytic continuation, which callers should treat as out of domain.
func G(x core.Rate) core.Congestion {
	if x >= 1 {
		return math.Inf(1)
	}
	return x / (1 - x)
}

// GPrime is g'(x) = 1/(1−x)², the marginal congestion of total load.
// It returns +Inf for x ≥ 1.
func GPrime(x core.Rate) float64 {
	if x >= 1 {
		return math.Inf(1)
	}
	d := 1 - x
	return 1 / (d * d)
}

// GPrime2 is g”(x) = 2/(1−x)³.  It returns +Inf for x ≥ 1.
func GPrime2(x core.Rate) float64 {
	if x >= 1 {
		return math.Inf(1)
	}
	d := 1 - x
	return 2 / (d * d * d)
}

// GInverse solves g(y) = q for y given q ≥ 0: y = q/(1+q).
func GInverse(q core.Congestion) core.Rate {
	if math.IsInf(q, 1) {
		return 1
	}
	return q / (1 + q)
}

// Sum returns the total of the vector.
func Sum(r []core.Rate) core.Rate {
	var s core.Rate
	for _, v := range r {
		s += v
	}
	return s
}

// InDomain reports whether the rate vector lies in the natural domain
// D = { r : r_i > 0 and Σ r_i < 1 } of the allocation functions.
func InDomain(r []core.Rate) bool {
	var s core.Rate
	for _, v := range r {
		if v <= 0 || math.IsNaN(v) {
			return false
		}
		s += v
	}
	return s < 1
}

// DomainSlack returns 1 − Σ r, the residual capacity.  Negative values mean
// the server is overloaded.
func DomainSlack(r []core.Rate) core.Rate { return 1 - Sum(r) }

// FeasibilityReport describes how a proposed allocation (r, c) relates to
// the feasible set of work-conserving service disciplines.
type FeasibilityReport struct {
	// TotalResidual is Σc − g(Σr); zero (within tolerance) for any
	// nonstalling discipline, positive for stalling ones.
	TotalResidual float64
	// MinPrefixSlack is the minimum over prefixes k (in increasing c_i/r_i
	// order) of Σ_{i≤k} c_i − g(Σ_{i≤k} r_i).  Nonnegative iff the subset
	// constraints hold; strictly positive for all k < N iff the allocation
	// lies in the interior of the feasible set.
	MinPrefixSlack float64
	// Feasible is true when the equality holds within tol and every subset
	// constraint is satisfied within −tol.
	Feasible bool
	// Interior is true when additionally every proper-prefix slack exceeds
	// +tol (the inequalities are unsaturated).
	Interior bool
}

// CheckFeasible validates the allocation (r, c) against the work-conserving
// feasible set with absolute tolerance tol.  It requires len(r) == len(c)
// and r in D; otherwise Feasible is false.
func CheckFeasible(r []core.Rate, c []core.Congestion, tol float64) FeasibilityReport {
	var rep FeasibilityReport
	rep.MinPrefixSlack = math.Inf(1)
	if len(r) != len(c) || len(r) == 0 || !InDomain(r) {
		rep.TotalResidual = math.NaN()
		return rep
	}
	for _, v := range c {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			rep.TotalResidual = math.NaN()
			return rep
		}
	}
	n := len(r)
	// Order users by increasing c_i/r_i.  The paper notes it suffices to
	// check the prefix constraints in this ordering.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return c[idx[a]]*r[idx[b]] < c[idx[b]]*r[idx[a]]
	})
	sumC, sumR := 0.0, 0.0
	interior := true
	for k := 0; k < n; k++ {
		sumC += c[idx[k]]
		sumR += r[idx[k]]
		slack := sumC - G(sumR)
		if k < n-1 {
			if slack < rep.MinPrefixSlack {
				rep.MinPrefixSlack = slack
			}
			if slack <= tol {
				interior = false
			}
		} else {
			rep.TotalResidual = slack
		}
	}
	if n == 1 {
		rep.MinPrefixSlack = 0
	}
	rep.Feasible = math.Abs(rep.TotalResidual) <= tol && rep.MinPrefixSlack >= -tol
	rep.Interior = rep.Feasible && interior
	return rep
}

// SymmetricCongestion returns the per-user congestion at the completely
// symmetric allocation where each of the n users sends rate r: g(n·r)/n.
func SymmetricCongestion(n int, r core.Rate) core.Congestion {
	if n <= 0 {
		return math.NaN()
	}
	return G(float64(n)*r) / float64(n)
}

// ProtectionBound is the best symmetric out-of-equilibrium guarantee the
// paper defines (Definition 7): the congestion user i would suffer if all n
// users sent her rate, r/(1 − n·r).  For n·r ≥ 1 it is +Inf.
func ProtectionBound(n int, r core.Rate) core.Congestion {
	nr := float64(n) * r
	if nr >= 1 {
		return math.Inf(1)
	}
	return r / (1 - nr)
}

// Z is the Pareto first-derivative quantity Z_i = −1/(1−Σr)² (the ratio of
// constraint partials ∂F/∂r_i ÷ ∂F/∂c_i), identical for every user.
func Z(r []core.Rate) float64 {
	s := Sum(r)
	if s >= 1 {
		return math.Inf(-1)
	}
	d := 1 - s
	return -1 / (d * d)
}
