package mm1

import (
	"math"
	"testing"
)

func TestDomainSlack(t *testing.T) {
	if s := DomainSlack([]float64{0.2, 0.3}); math.Abs(s-0.5) > 1e-15 {
		t.Errorf("DomainSlack = %v", s)
	}
	if s := DomainSlack([]float64{0.7, 0.7}); s >= 0 {
		t.Errorf("overload slack should be negative: %v", s)
	}
}

func TestModelNames(t *testing.T) {
	if (MM1{}).Name() != "mm1" {
		t.Error("MM1 name")
	}
	if (MG1{CV2: 2}).Name() != "mg1(cv2=2)" {
		t.Errorf("MG1 name: %q", (MG1{CV2: 2}).Name())
	}
}

func TestMD1HalvesMM1Queueing(t *testing.T) {
	// M/D/1 waiting is half of M/M/1's: L_MD1 = ρ + ρ²/(2(1−ρ)).
	x := 0.8
	md1 := MD1().L(x)
	want := x + x*x/(2*(1-x))
	if math.Abs(md1-want) > 1e-12 {
		t.Errorf("MD1 L = %v, want %v", md1, want)
	}
	if md1 >= G(x) {
		t.Errorf("M/D/1 (%v) should queue less than M/M/1 (%v)", md1, G(x))
	}
}

func TestModelSaturation(t *testing.T) {
	for _, m := range []ServerModel{MM1{}, MD1(), MG1{CV2: 3}} {
		if !math.IsInf(m.L(1.2), 1) || !math.IsInf(m.LPrime(1), 1) || !math.IsInf(m.LPrime2(1.5), 1) {
			t.Errorf("%s should saturate", m.Name())
		}
	}
}

func TestSymmetricCongestionG(t *testing.T) {
	m := MG1{CV2: 2}
	got := SymmetricCongestionG(m, 4, 0.2)
	want := m.L(0.8) / 4
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("SymmetricCongestionG = %v, want %v", got, want)
	}
	if !math.IsNaN(SymmetricCongestionG(m, 0, 0.2)) {
		t.Error("n=0 should be NaN")
	}
}

func TestCheckFeasibleGMatchesMM1Version(t *testing.T) {
	r := []float64{0.1, 0.2, 0.3}
	s := Sum(r)
	c := make([]float64, len(r))
	for i := range r {
		c[i] = r[i] / (1 - s)
	}
	a := CheckFeasible(r, c, 1e-9)
	b := CheckFeasibleG(MM1{}, r, c, 1e-9)
	if a.Feasible != b.Feasible || a.Interior != b.Interior {
		t.Errorf("feasibility engines disagree: %+v vs %+v", a, b)
	}
	if math.Abs(a.TotalResidual-b.TotalResidual) > 1e-12 {
		t.Errorf("residuals differ: %v vs %v", a.TotalResidual, b.TotalResidual)
	}
}

func TestCheckFeasibleGRejections(t *testing.T) {
	m := MD1()
	if CheckFeasibleG(m, nil, nil, 1e-9).Feasible {
		t.Error("empty should be infeasible")
	}
	if CheckFeasibleG(m, []float64{0.1}, []float64{0.1, 0.2}, 1e-9).Feasible {
		t.Error("length mismatch should be infeasible")
	}
	if CheckFeasibleG(m, []float64{0.2}, []float64{math.NaN()}, 1e-9).Feasible {
		t.Error("NaN congestion should be infeasible")
	}
	// Total too small for the station.
	if CheckFeasibleG(m, []float64{0.4, 0.4}, []float64{0.1, 0.1}, 1e-9).Feasible {
		t.Error("undershoot should be infeasible")
	}
	// Single user: exactly the station curve is feasible.
	if !CheckFeasibleG(m, []float64{0.4}, []float64{m.L(0.4)}, 1e-9).Feasible {
		t.Error("single-user station value should be feasible")
	}
}

func TestCheckFeasibleGPrioritySaturated(t *testing.T) {
	m := MG1{CV2: 1}
	r := []float64{0.3, 0.4}
	c1 := m.L(0.3)
	c := []float64{c1, m.L(0.7) - c1}
	rep := CheckFeasibleG(m, r, c, 1e-9)
	if !rep.Feasible || rep.Interior {
		t.Errorf("priority split should be feasible boundary: %+v", rep)
	}
}
