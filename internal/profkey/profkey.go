// Package profkey renders game profiles as canonical string keys.  A
// profile's key is a pure function of the strategic content of the game
// — utility specs and exact rates, never map iteration order or client
// identity — so two byte-equal keys name the same game and may share a
// cached solution.
//
// Two layers of canonicalization exist:
//
//   - PerUser keeps one entry per user, sorted by caller-supplied id.
//     This was internal/service's historical cache key: it distinguishes
//     profiles by client identity, so the same game under renamed (or
//     permuted) clients missed the cache.
//   - Classes coalesces users with identical (spec, rate) into one
//     (spec, rate, count) class, sorted by spec then rate.  Because
//     every in-tree allocation is symmetric (permutation-equivariant),
//     the solved equilibrium depends only on this multiset — the class
//     key is the right cache key for solve results, and it is exactly
//     the canonical ordering internal/game's ClassGame uses.
//
// Rates are rendered as shortest round-trip hex floats
// (strconv.FormatFloat 'x', -1), so distinct float64 values never
// collide and equal values always agree byte for byte.
package profkey

import (
	"sort"
	"strconv"
	"strings"
)

// Rate renders a float64 rate in the canonical collision-free form
// shared by every key in this package.
func Rate(r float64) string {
	return strconv.FormatFloat(r, 'x', -1, 64)
}

// PerUser renders one entry per user as "id=rate:spec;" in ascending id
// order.  ids, rates and specs are parallel; ids must be unique.  The
// inputs are not modified.
func PerUser(ids []string, rates []float64, specs []string) string {
	ord := make([]int, len(ids))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return ids[ord[a]] < ids[ord[b]] })
	var b strings.Builder
	for _, i := range ord {
		b.WriteString(ids[i])
		b.WriteByte('=')
		b.WriteString(Rate(rates[i]))
		b.WriteByte(':')
		b.WriteString(specs[i])
		b.WriteByte(';')
	}
	return b.String()
}

// ClassEntry is one coalesced utility class of a profile.
type ClassEntry struct {
	// Spec identifies the utility (a cliutil spec or utility String()).
	Spec string
	// RateVal is the per-user rate of every member, bit-exact.
	RateVal float64
	// Count is the class multiplicity.
	Count int
}

// byClass is the canonical class order: ascending by spec, then by
// rate.  Equal (spec, rate) pairs are the same class, so the order is
// total on distinct classes.
type byClass []ClassEntry

func (s byClass) Len() int      { return len(s) }
func (s byClass) Swap(a, b int) { s[a], s[b] = s[b], s[a] }
func (s byClass) Less(a, b int) bool {
	if s[a].Spec != s[b].Spec {
		return s[a].Spec < s[b].Spec
	}
	return s[a].RateVal < s[b].RateVal
}

// Coalesce groups users with identical (spec, rate) into classes in
// canonical order.  specs and rates are parallel; the inputs are not
// modified.  Rates compare bit-exactly (two rates an ulp apart are
// different classes), so coalescing never changes the game being
// solved.  NaN rates are each their own class (NaN != NaN under <, and
// the class key renders their payload bits), preserving "distinct
// profiles never collide" even for hostile inputs.
func Coalesce(specs []string, rates []float64) []ClassEntry {
	classes := make([]ClassEntry, 0, len(specs))
	for i, spec := range specs {
		classes = append(classes, ClassEntry{Spec: spec, RateVal: rates[i], Count: 1})
	}
	sort.Stable(byClass(classes))
	out := classes[:0]
	for _, c := range classes {
		if n := len(out); n > 0 && out[n-1].Spec == c.Spec && sameRate(out[n-1].RateVal, c.RateVal) {
			out[n-1].Count++
			continue
		}
		out = append(out, c)
	}
	return out
}

// sameRate is bit-exact float equality via the canonical rendering, so
// that Coalesce's merge test and the key's collision-freedom are one
// definition.  (Renders agree iff the bits agree, including the NaN
// payload; +0 and -0 render differently and stay distinct classes.)
func sameRate(a, b float64) bool {
	return Rate(a) == Rate(b)
}

// Classes renders coalesced classes as "spec@rate*count;" in canonical
// order — the class-canonical profile key.
func Classes(classes []ClassEntry) string {
	var b strings.Builder
	for _, c := range classes {
		b.WriteString(c.Spec)
		b.WriteByte('@')
		b.WriteString(Rate(c.RateVal))
		b.WriteByte('*')
		b.WriteString(strconv.Itoa(c.Count))
		b.WriteByte(';')
	}
	return b.String()
}

// ClassKey is Classes(Coalesce(specs, rates)): the canonical key of the
// symmetric game induced by the profile, identity-free.
func ClassKey(specs []string, rates []float64) string {
	return Classes(Coalesce(specs, rates))
}
