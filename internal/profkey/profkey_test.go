package profkey

import (
	"math"
	"testing"
)

func TestPerUserSortsAndRoundTrips(t *testing.T) {
	ids := []string{"b", "a", "c"}
	rates := []float64{0.2, 0.1, 0.3}
	specs := []string{"linear:1,4", "linear:1,4", "log:2,1"}
	got := PerUser(ids, rates, specs)
	want := "a=" + Rate(0.1) + ":linear:1,4;" +
		"b=" + Rate(0.2) + ":linear:1,4;" +
		"c=" + Rate(0.3) + ":log:2,1;"
	if got != want {
		t.Fatalf("PerUser:\n got %q\nwant %q", got, want)
	}
	// Permuting the input must not change the key.
	perm := PerUser([]string{"c", "b", "a"}, []float64{0.3, 0.2, 0.1},
		[]string{"log:2,1", "linear:1,4", "linear:1,4"})
	if perm != got {
		t.Fatalf("PerUser not permutation-invariant:\n %q\n %q", perm, got)
	}
}

func TestCoalesceMergesIdenticalUsers(t *testing.T) {
	specs := []string{"linear:1,4", "log:2,1", "linear:1,4", "linear:1,4"}
	rates := []float64{0.1, 0.2, 0.1, 0.15}
	cls := Coalesce(specs, rates)
	want := []ClassEntry{
		{Spec: "linear:1,4", RateVal: 0.1, Count: 2},
		{Spec: "linear:1,4", RateVal: 0.15, Count: 1},
		{Spec: "log:2,1", RateVal: 0.2, Count: 1},
	}
	if len(cls) != len(want) {
		t.Fatalf("Coalesce: got %d classes, want %d: %+v", len(cls), len(want), cls)
	}
	for i := range want {
		if cls[i] != want[i] {
			t.Errorf("class %d: got %+v, want %+v", i, cls[i], want[i])
		}
	}
}

// TestClassKeyRoundTrip pins the satellite's round-trip property: the
// class key of an expanded class set is the key of the classes
// themselves, whatever order the users arrive in.
func TestClassKeyRoundTrip(t *testing.T) {
	classes := []ClassEntry{
		{Spec: "linear:1,2", RateVal: 0.05, Count: 3},
		{Spec: "linear:1,4", RateVal: 0.01, Count: 2},
	}
	// Expand into per-user specs/rates in a scrambled order.
	specs := []string{"linear:1,4", "linear:1,2", "linear:1,2", "linear:1,4", "linear:1,2"}
	rates := []float64{0.01, 0.05, 0.05, 0.01, 0.05}
	if got, want := ClassKey(specs, rates), Classes(classes); got != want {
		t.Fatalf("round trip:\n got %q\nwant %q", got, want)
	}
	back := Coalesce(specs, rates)
	if len(back) != len(classes) {
		t.Fatalf("Coalesce: %d classes, want %d", len(back), len(classes))
	}
	for i := range classes {
		if back[i] != classes[i] {
			t.Errorf("class %d: got %+v, want %+v", i, back[i], classes[i])
		}
	}
}

func TestUlpApartRatesStayDistinct(t *testing.T) {
	r := 0.1
	r2 := math.Nextafter(r, 1)
	cls := Coalesce([]string{"linear:1,4", "linear:1,4"}, []float64{r, r2})
	if len(cls) != 2 {
		t.Fatalf("ulp-apart rates coalesced: %+v", cls)
	}
	if ClassKey([]string{"s"}, []float64{r}) == ClassKey([]string{"s"}, []float64{r2}) {
		t.Fatal("ulp-apart rates share a class key")
	}
}

func TestNaNAndSignedZeroRates(t *testing.T) {
	cls := Coalesce([]string{"s", "s", "s"}, []float64{math.NaN(), math.NaN(), 0.1})
	// Two identical-payload NaNs may merge (same bits); they must never
	// merge with the finite rate.
	for _, c := range cls {
		if !math.IsNaN(c.RateVal) && c.Count != 1 {
			t.Fatalf("finite class absorbed a NaN: %+v", cls)
		}
	}
	zc := Coalesce([]string{"s", "s"}, []float64{0.0, math.Copysign(0, -1)})
	if len(zc) != 2 {
		t.Fatalf("+0 and -0 coalesced: %+v", zc)
	}
}
