package utility

import (
	"math"
	"strings"
	"testing"

	"greednet/internal/core"
)

func TestStringDescriptions(t *testing.T) {
	cases := []struct {
		u    interface{ String() string }
		want string
	}{
		{Linear{A: 1, Gamma: 2}, "linear"},
		{Exponential{Alpha: 1, Beta: 2, Gamma: 3, Nu: 4}, "exp"},
		{Log{W: 1, Gamma: 2}, "log"},
		{Power{A: 1, Gamma: 2, P: 3}, "power"},
		{Sqrt{W: 1, Gamma: 2}, "sqrt"},
		{DelaySensitive{A: 1, Gamma: 2}, "delay"},
	}
	for _, c := range cases {
		if s := c.u.String(); !strings.HasPrefix(s, c.want) {
			t.Errorf("String() = %q, want prefix %q", s, c.want)
		}
	}
}

func TestExponentialGradientAtInfiniteCongestion(t *testing.T) {
	u := Exponential{Alpha: 1, Beta: 2, Gamma: 1, Nu: 2}
	dr, dc := u.Gradient(0.2, math.Inf(1))
	if dr <= 0 {
		t.Errorf("∂U/∂r should stay positive: %v", dr)
	}
	if !math.IsInf(dc, -1) {
		t.Errorf("∂U/∂c at c=+Inf should be −Inf: %v", dc)
	}
}

func TestLogDegenerateRate(t *testing.T) {
	u := Log{W: 1, Gamma: 1}
	if !math.IsInf(u.Value(0, 1), -1) || !math.IsInf(u.Value(-0.1, 1), -1) {
		t.Error("log utility must be −Inf at nonpositive rates")
	}
	dr, _ := u.Gradient(0, 1)
	if !math.IsInf(dr, 1) {
		t.Errorf("log marginal at 0 should be +Inf: %v", dr)
	}
}

func TestSqrtDegenerateRate(t *testing.T) {
	u := Sqrt{W: 1, Gamma: 1}
	if !math.IsInf(u.Value(-0.5, 1), -1) {
		t.Error("sqrt utility must be −Inf at negative rates")
	}
	dr, _ := u.Gradient(0, 1)
	if !math.IsInf(dr, 1) {
		t.Errorf("sqrt marginal at 0 should be +Inf: %v", dr)
	}
}

func TestPowerGradientAtInfiniteCongestion(t *testing.T) {
	u := Power{A: 1, Gamma: 1, P: 2}
	dr, dc := u.Gradient(0.2, math.Inf(1))
	if dr != 1 || !math.IsInf(dc, -1) {
		t.Errorf("power gradient at c=+Inf: %v %v", dr, dc)
	}
}

func TestDelaySensitiveGradientBranches(t *testing.T) {
	u := DelaySensitive{A: 1, Gamma: 2}
	dr, dc := u.Gradient(0.5, 1)
	if dr <= 1 || dc >= 0 {
		t.Errorf("delay-sensitive gradient signs: %v %v", dr, dc)
	}
	drZero, _ := u.Gradient(0, 1)
	if !math.IsInf(drZero, 1) {
		t.Errorf("gradient at r=0 should diverge: %v", drZero)
	}
}

func TestScaledAsUtilityInterface(t *testing.T) {
	var u core.Utility = Scaled{U: Linear{A: 1, Gamma: 1}, Scale: 3, Shift: 1}
	if v := u.Value(1, 0); math.Abs(v-4) > 1e-15 {
		t.Errorf("scaled value %v", v)
	}
	dr, dc := u.Gradient(1, 0)
	if dr != 3 || dc != -3 {
		t.Errorf("scaled gradient %v %v", dr, dc)
	}
}

func TestRandomProfileLength(t *testing.T) {
	// Covered indirectly elsewhere; check direct contract here.
	p := Identical(Linear{A: 1, Gamma: 1}, 3)
	if len(p) != 3 {
		t.Fatalf("profile length %d", len(p))
	}
}
