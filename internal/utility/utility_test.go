package utility

import (
	"math"
	"math/rand"
	"testing"

	"greednet/internal/core"
	"greednet/internal/numeric"
)

func sampleUtilities() []core.Utility {
	return []core.Utility{
		Linear{A: 1, Gamma: 4},
		Exponential{Alpha: 2, Beta: 5, Gamma: 1, Nu: 3, R0: 0.2, C0: 0.5},
		Log{W: 0.8, Gamma: 2},
		Power{A: 1, Gamma: 2, P: 1.5},
		Sqrt{W: 1.2, Gamma: 3},
	}
}

func TestMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, u := range sampleUtilities() {
		for trial := 0; trial < 200; trial++ {
			r := 0.01 + 0.8*rng.Float64()
			c := 0.01 + 5*rng.Float64()
			dr := 0.001 + 0.01*rng.Float64()
			dc := 0.001 + 0.01*rng.Float64()
			if u.Value(r+dr, c) <= u.Value(r, c) {
				t.Fatalf("%v not increasing in r at (%v,%v)", u, r, c)
			}
			if u.Value(r, c+dc) >= u.Value(r, c) {
				t.Fatalf("%v not decreasing in c at (%v,%v)", u, r, c)
			}
		}
	}
}

func TestGradientMatchesFD(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, u := range sampleUtilities() {
		for trial := 0; trial < 100; trial++ {
			r := 0.05 + 0.8*rng.Float64()
			c := 0.05 + 5*rng.Float64()
			dr, dc := u.Gradient(r, c)
			fdr := numeric.Derivative(func(x float64) float64 { return u.Value(x, c) }, r, 1e-7)
			fdc := numeric.Derivative(func(x float64) float64 { return u.Value(r, x) }, c, 1e-7)
			if math.Abs(dr-fdr) > 1e-4*(1+math.Abs(dr)) {
				t.Fatalf("%v ∂U/∂r = %v, FD %v at (%v,%v)", u, dr, fdr, r, c)
			}
			if math.Abs(dc-fdc) > 1e-4*(1+math.Abs(dc)) {
				t.Fatalf("%v ∂U/∂c = %v, FD %v at (%v,%v)", u, dc, fdc, r, c)
			}
			if dr <= 0 || dc >= 0 {
				t.Fatalf("%v gradient signs wrong: %v %v", u, dr, dc)
			}
		}
	}
}

func TestInfiniteCongestionIsWorst(t *testing.T) {
	for _, u := range sampleUtilities() {
		if v := u.Value(0.3, math.Inf(1)); !math.IsInf(v, -1) {
			t.Errorf("%v at c=+Inf gave %v, want -Inf", u, v)
		}
	}
	if v := (DelaySensitive{A: 1, Gamma: 2}).Value(0.3, math.Inf(1)); !math.IsInf(v, -1) {
		t.Errorf("delay-sensitive at c=+Inf gave %v", v)
	}
}

func TestConcavityAlongLines(t *testing.T) {
	// Every AU family here should have concave restrictions to segments in
	// the (r, c) quadrant (convex preferences).
	rng := rand.New(rand.NewSource(3))
	for _, u := range sampleUtilities() {
		for trial := 0; trial < 200; trial++ {
			r1, c1 := 0.05+0.6*rng.Float64(), 0.05+4*rng.Float64()
			r2, c2 := 0.05+0.6*rng.Float64(), 0.05+4*rng.Float64()
			mid := u.Value((r1+r2)/2, (c1+c2)/2)
			avg := (u.Value(r1, c1) + u.Value(r2, c2)) / 2
			if mid < avg-1e-9 {
				t.Fatalf("%v not concave between (%v,%v) and (%v,%v): mid %v < avg %v",
					u, r1, c1, r2, c2, mid, avg)
			}
		}
	}
}

func TestMarginalRateNegative(t *testing.T) {
	for _, u := range sampleUtilities() {
		if m := core.MarginalRate(u, 0.3, 1.2); m >= 0 {
			t.Errorf("%v marginal rate %v should be negative", u, m)
		}
	}
}

func TestScaledPreservesOrdering(t *testing.T) {
	u := Linear{A: 1, Gamma: 3}
	s := Scaled{U: u, Scale: 2.5, Shift: -7}
	pts := [][2]float64{{0.1, 0.2}, {0.3, 0.5}, {0.2, 2}, {0.6, 0.1}}
	for i := range pts {
		for j := range pts {
			a := u.Value(pts[i][0], pts[i][1]) < u.Value(pts[j][0], pts[j][1])
			b := s.Value(pts[i][0], pts[i][1]) < s.Value(pts[j][0], pts[j][1])
			if a != b {
				t.Fatalf("Scaled changed preference order between %v and %v", pts[i], pts[j])
			}
		}
	}
	// Marginal rate is invariant under monotone affine rescaling.
	mu := core.MarginalRate(u, 0.3, 1)
	ms := core.MarginalRate(s, 0.3, 1)
	if math.Abs(mu-ms) > 1e-12 {
		t.Errorf("marginal rate not ordinal: %v vs %v", mu, ms)
	}
}

func TestPlantNashFDC(t *testing.T) {
	// PlantNash puts M(r0, c0) = −slope exactly.
	u := PlantNash(0.25, 0.8, 3.5, 10, 10)
	m := core.MarginalRate(u, 0.25, 0.8)
	if math.Abs(m+3.5) > 1e-12 {
		t.Errorf("planted marginal rate %v, want -3.5", m)
	}
}

func TestRandomAUProducesValidUtilities(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		u := RandomAU(rng)
		dr, dc := u.Gradient(0.3, 1)
		if dr <= 0 || dc >= 0 {
			t.Fatalf("RandomAU %v has bad gradient signs", u)
		}
	}
}

func TestIdenticalProfile(t *testing.T) {
	u := Linear{A: 1, Gamma: 2}
	p := Identical(u, 5)
	if len(p) != 5 {
		t.Fatalf("profile length %d", len(p))
	}
	for _, q := range p {
		if q.Value(0.2, 0.3) != u.Value(0.2, 0.3) {
			t.Fatal("Identical should replicate the utility")
		}
	}
}

func TestDelaySensitiveShape(t *testing.T) {
	u := DelaySensitive{A: 1, Gamma: 2}
	// Increasing in r (for fixed c) and decreasing in c.
	if u.Value(0.4, 1) <= u.Value(0.2, 1) {
		t.Error("delay-sensitive should increase in r")
	}
	if u.Value(0.3, 2) >= u.Value(0.3, 1) {
		t.Error("delay-sensitive should decrease in c")
	}
	if !math.IsInf(u.Value(0, 1), -1) {
		t.Error("zero rate should be -Inf for delay-sensitive")
	}
}
