// Package utility implements families of admissible utility functions
// U(r, c) from the paper's set AU: strictly increasing in throughput r,
// strictly decreasing in congestion c, smooth, with convex preferences.
// Utilities are ordinal; every family here is used only through the
// core.Utility interface so results stay invariant under monotone
// relabelings.
package utility

import (
	"fmt"
	"math"
	"math/rand"

	"greednet/internal/core"
)

// Linear is U(r, c) = A·r − Gamma·c, the paper's explicit example family
// (§4.2.3 uses U = r − γc).  A and Gamma must be positive.
type Linear struct {
	A     float64
	Gamma float64
}

// NewLinear returns the linear utility A·r − Gamma·c.
func NewLinear(a, gamma float64) Linear { return Linear{A: a, Gamma: gamma} }

// Value implements core.Utility.
func (u Linear) Value(r core.Rate, c core.Congestion) float64 {
	if math.IsInf(c, 1) {
		return math.Inf(-1)
	}
	return u.A*r - u.Gamma*c
}

// Gradient implements core.Utility.
func (u Linear) Gradient(r core.Rate, c core.Congestion) (float64, float64) { return u.A, -u.Gamma }

// String describes the utility.
func (u Linear) String() string { return fmt.Sprintf("linear(a=%g, γ=%g)", u.A, u.Gamma) }

// Exponential is the Lemma-5 family
//
//	U(r, c) = −(α²/β)·e^{−(β/α)(r−R0)} − (γ²/ν)·e^{(ν/γ)(c−C0)}
//
// with all four shape parameters positive.  It is strictly concave, and by
// construction its unconstrained marginal-rate condition M = −α/γ holds at
// (R0, C0), which is how the paper plants Nash equilibria at chosen points.
type Exponential struct {
	Alpha, Beta, Gamma, Nu float64
	R0, C0                 float64
}

// Value implements core.Utility.
func (u Exponential) Value(r core.Rate, c core.Congestion) float64 {
	if math.IsInf(c, 1) {
		return math.Inf(-1)
	}
	t1 := -(u.Alpha * u.Alpha / u.Beta) * math.Exp(-(u.Beta/u.Alpha)*(r-u.R0))
	t2 := -(u.Gamma * u.Gamma / u.Nu) * math.Exp((u.Nu/u.Gamma)*(c-u.C0))
	return t1 + t2
}

// Gradient implements core.Utility.
func (u Exponential) Gradient(r core.Rate, c core.Congestion) (float64, float64) {
	dr := u.Alpha * math.Exp(-(u.Beta/u.Alpha)*(r-u.R0))
	if math.IsInf(c, 1) {
		return dr, math.Inf(-1)
	}
	dc := -u.Gamma * math.Exp((u.Nu/u.Gamma)*(c-u.C0))
	return dr, dc
}

// String describes the utility.
func (u Exponential) String() string {
	return fmt.Sprintf("exp(α=%g, β=%g, γ=%g, ν=%g, r0=%g, c0=%g)",
		u.Alpha, u.Beta, u.Gamma, u.Nu, u.R0, u.C0)
}

// PlantNash constructs the Lemma-5 exponential utility whose Nash
// first-derivative condition M = −slope is satisfied exactly at (r0, c0),
// with curvature parameters beta and nu controlling how sharply utility
// falls away from that point.  slope must be the positive value ∂C_i/∂r_i
// at the target point.
func PlantNash(r0, c0, slope, beta, nu float64) Exponential {
	// Choose α/γ = slope with γ = 1.
	return Exponential{Alpha: slope, Beta: beta, Gamma: 1, Nu: nu, R0: r0, C0: c0}
}

// Log is U(r, c) = W·log(r) − Gamma·c, a throughput-saturating family.
type Log struct {
	W     float64
	Gamma float64
}

// Value implements core.Utility.
func (u Log) Value(r core.Rate, c core.Congestion) float64 {
	if r <= 0 {
		return math.Inf(-1)
	}
	if math.IsInf(c, 1) {
		return math.Inf(-1)
	}
	return u.W*math.Log(r) - u.Gamma*c
}

// Gradient implements core.Utility.
func (u Log) Gradient(r core.Rate, c core.Congestion) (float64, float64) {
	if r <= 0 {
		return math.Inf(1), -u.Gamma
	}
	return u.W / r, -u.Gamma
}

// String describes the utility.
func (u Log) String() string { return fmt.Sprintf("log(w=%g, γ=%g)", u.W, u.Gamma) }

// Power is U(r, c) = A·r − Gamma·c^P with P ≥ 1 (congestion pain grows
// superlinearly).
type Power struct {
	A     float64
	Gamma float64
	P     float64
}

// Value implements core.Utility.
func (u Power) Value(r core.Rate, c core.Congestion) float64 {
	if math.IsInf(c, 1) {
		return math.Inf(-1)
	}
	return u.A*r - u.Gamma*math.Pow(c, u.P)
}

// Gradient implements core.Utility.
func (u Power) Gradient(r core.Rate, c core.Congestion) (float64, float64) {
	if math.IsInf(c, 1) {
		return u.A, math.Inf(-1)
	}
	return u.A, -u.Gamma * u.P * math.Pow(c, u.P-1)
}

// String describes the utility.
func (u Power) String() string { return fmt.Sprintf("power(a=%g, γ=%g, p=%g)", u.A, u.Gamma, u.P) }

// Sqrt is U(r, c) = W·√r − Gamma·c, concave in throughput.
type Sqrt struct {
	W     float64
	Gamma float64
}

// Value implements core.Utility.
func (u Sqrt) Value(r core.Rate, c core.Congestion) float64 {
	if r < 0 || math.IsInf(c, 1) {
		return math.Inf(-1)
	}
	return u.W*math.Sqrt(r) - u.Gamma*c
}

// Gradient implements core.Utility.
func (u Sqrt) Gradient(r core.Rate, c core.Congestion) (float64, float64) {
	if r <= 0 {
		return math.Inf(1), -u.Gamma
	}
	return u.W / (2 * math.Sqrt(r)), -u.Gamma
}

// String describes the utility.
func (u Sqrt) String() string { return fmt.Sprintf("sqrt(w=%g, γ=%g)", u.W, u.Gamma) }

// DelaySensitive is U(r, c) = A·r − Gamma·(c/r), a §5.2 "Telnet" archetype
// that penalizes average delay d = c/r rather than queue length.  It is
// strictly monotone in the right directions but lies slightly outside the
// paper's convexity assumptions; it is used only in the applications
// experiments, with robust (grid-started) best-response search.
type DelaySensitive struct {
	A     float64
	Gamma float64
}

// Value implements core.Utility.
func (u DelaySensitive) Value(r core.Rate, c core.Congestion) float64 {
	if r <= 0 || math.IsInf(c, 1) {
		return math.Inf(-1)
	}
	return u.A*r - u.Gamma*c/r
}

// Gradient implements core.Utility.
func (u DelaySensitive) Gradient(r core.Rate, c core.Congestion) (float64, float64) {
	if r <= 0 {
		return math.Inf(1), -math.Inf(1)
	}
	return u.A + u.Gamma*c/(r*r), -u.Gamma / r
}

// String describes the utility.
func (u DelaySensitive) String() string {
	return fmt.Sprintf("delay(a=%g, γ=%g)", u.A, u.Gamma)
}

// Scaled wraps a utility with a strictly increasing affine transform
// G(u) = Scale·u + Shift (Scale > 0).  Because utilities are ordinal, any
// solver output must be invariant under this wrapper; tests rely on that.
type Scaled struct {
	U     core.Utility
	Scale float64
	Shift float64
}

// Value implements core.Utility.
func (s Scaled) Value(r core.Rate, c core.Congestion) float64 {
	return s.Scale*s.U.Value(r, c) + s.Shift
}

// Gradient implements core.Utility.
func (s Scaled) Gradient(r core.Rate, c core.Congestion) (float64, float64) {
	dr, dc := s.U.Gradient(r, c)
	return s.Scale * dr, s.Scale * dc
}

// RandomAU draws a random utility from the smooth families above with
// moderate parameters.  The draw never produces DelaySensitive (which is
// outside AU).
func RandomAU(rng *rand.Rand) core.Utility {
	switch rng.Intn(4) {
	case 0:
		return Linear{A: 0.5 + 2*rng.Float64(), Gamma: 1 + 15*rng.Float64()}
	case 1:
		return Log{W: 0.2 + 1.5*rng.Float64(), Gamma: 0.5 + 4*rng.Float64()}
	case 2:
		return Power{A: 0.5 + 2*rng.Float64(), Gamma: 0.5 + 4*rng.Float64(), P: 1 + 2*rng.Float64()}
	default:
		return Sqrt{W: 0.5 + 2*rng.Float64(), Gamma: 0.5 + 4*rng.Float64()}
	}
}

// RandomProfile draws n independent random AU utilities.
func RandomProfile(rng *rand.Rand, n int) core.Profile {
	p := make(core.Profile, n)
	for i := range p {
		p[i] = RandomAU(rng)
	}
	return p
}

// Identical returns a profile of n copies of u.
func Identical(u core.Utility, n int) core.Profile {
	p := make(core.Profile, n)
	for i := range p {
		p[i] = u
	}
	return p
}
