package numeric

import (
	"math"
	"testing"
)

func TestEigenvaluesJordanBlock(t *testing.T) {
	// A defective matrix (Jordan block) still has both eigenvalues = 2.
	a := MatrixFromRows([][]float64{{2, 1}, {0, 2}})
	ev, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range ev {
		if math.Abs(real(l)-2) > 1e-6 || math.Abs(imag(l)) > 1e-6 {
			t.Errorf("Jordan block eigenvalue %v, want 2", l)
		}
	}
}

func TestEigenvaluesZeroMatrix(t *testing.T) {
	ev, err := Eigenvalues(NewMatrix(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 4 {
		t.Fatalf("got %d eigenvalues", len(ev))
	}
	for _, l := range ev {
		if l != 0 {
			t.Errorf("zero matrix eigenvalue %v", l)
		}
	}
}

func TestEigenvaluesNonSquare(t *testing.T) {
	if _, err := Eigenvalues(NewMatrix(2, 3)); err == nil {
		t.Error("non-square should error")
	}
}

func TestEigenvaluesStrictlyTriangular(t *testing.T) {
	// Strictly lower triangular (nilpotent): all eigenvalues zero — the
	// structure of the Fair Share relaxation matrix.  A length-n Jordan
	// chain at 0 is the worst case for QR accuracy: computed eigenvalues
	// scatter by O(‖A‖·ε^{1/n}) ≈ 1e−4 for n = 4, so the check uses a
	// matching tolerance (this is why IsNilpotent multiplies the matrix
	// out instead of trusting the spectrum).
	a := MatrixFromRows([][]float64{
		{0, 0, 0, 0},
		{3, 0, 0, 0},
		{1, -2, 0, 0},
		{4, 5, 6, 0},
	})
	ev, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range ev {
		if math.Abs(real(l)) > 1e-3 || math.Abs(imag(l)) > 1e-3 {
			t.Errorf("nilpotent eigenvalue %v, want ≈0", l)
		}
	}
	if !IsNilpotent(a, 1e-12) {
		t.Error("IsNilpotent should certify the exact structure")
	}
}
