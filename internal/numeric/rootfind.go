// Package numeric is the from-scratch numerical substrate for greednet:
// scalar root finding, bounded one-dimensional maximization, finite
// differences, dense linear algebra, and a real-matrix eigenvalue solver.
// Only the Go standard library is used.
package numeric

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoBracket is returned when a root finder is given an interval whose
// endpoint function values do not straddle zero.
var ErrNoBracket = errors.New("numeric: interval does not bracket a root")

// ErrMaxIter is returned when an iterative method exhausts its iteration
// budget before meeting its tolerance.
var ErrMaxIter = errors.New("numeric: maximum iterations exceeded")

// Bisect finds a root of f in [a, b] by bisection.  f(a) and f(b) must have
// opposite signs (or one of them must be zero).  The result is accurate to
// within tol in the argument.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 { //lint:allow floateq exact root at the endpoint needs no iteration
		return a, nil
	}
	if fb == 0 { //lint:allow floateq exact root at the endpoint needs no iteration
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	for i := 0; i < 200; i++ {
		m := a + (b-a)/2
		if b-a <= tol || m == a || m == b { //lint:allow floateq midpoint collapse: no representable point remains between a and b
			return m, nil
		}
		fm := f(m)
		if fm == 0 { //lint:allow floateq exact root terminates bisection
			return m, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return a + (b-a)/2, nil
}

// Brent finds a root of f in the bracketing interval [a, b] using Brent's
// method (inverse quadratic interpolation guarded by bisection).  It
// converges superlinearly for smooth f and never leaves the bracket.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 { //lint:allow floateq exact root at the endpoint needs no iteration
		return a, nil
	}
	if fb == 0 { //lint:allow floateq exact root at the endpoint needs no iteration
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < 200; i++ {
		if fb == 0 || math.Abs(b-a) <= tol { //lint:allow floateq exact root terminates Brent's method
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc { //lint:allow floateq guards the inverse-quadratic denominators against exact zero
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant step.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = a + (b-a)/2
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d = c
		c, fc = b, fb
		if math.Signbit(fa) != math.Signbit(fs) {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
	}
	return b, ErrMaxIter
}

// Newton1D runs Newton's method on f with derivative df starting from x0.
// It stops when |f(x)| ≤ ftol or the step falls below xtol.  If the
// derivative vanishes or iterations are exhausted it returns ErrMaxIter
// with the best iterate found.
func Newton1D(f, df func(float64) float64, x0, xtol, ftol float64, maxIter int) (float64, error) {
	x := x0
	for i := 0; i < maxIter; i++ {
		fx := f(x)
		if math.Abs(fx) <= ftol {
			return x, nil
		}
		d := df(x)
		if d == 0 || math.IsNaN(d) || math.IsInf(d, 0) { //lint:allow floateq division guard: any nonzero derivative is usable
			return x, fmt.Errorf("%w: derivative unusable at x=%g", ErrMaxIter, x)
		}
		step := fx / d
		x -= step
		if math.Abs(step) <= xtol {
			return x, nil
		}
	}
	return x, ErrMaxIter
}

// FindBracket expands outward from [a, b] by the golden ratio until f takes
// opposite signs at the ends or the budget is exhausted.
func FindBracket(f func(float64) float64, a, b float64) (lo, hi float64, err error) {
	const grow = 1.618033988749895
	fa, fb := f(a), f(b)
	for i := 0; i < 64; i++ {
		if math.Signbit(fa) != math.Signbit(fb) || fa == 0 || fb == 0 { //lint:allow floateq exact zero at an endpoint is a valid bracket
			return a, b, nil
		}
		if math.Abs(fa) < math.Abs(fb) {
			a += grow * (a - b)
			fa = f(a)
		} else {
			b += grow * (b - a)
			fb = f(b)
		}
	}
	return a, b, ErrNoBracket
}
