package numeric

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveKnown(t *testing.T) {
	a := MatrixFromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// 2x + y = 5, x + 3y = 10 → x = 1, y = 3.
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("Solve = %v, want [1 3]", x)
	}
}

func TestSolveRandomResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonally dominant
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		r := a.MulVec(x)
		for i := range r {
			if math.Abs(r[i]-b[i]) > 1e-9 {
				t.Fatalf("trial %d residual[%d] = %v", trial, i, r[i]-b[i])
			}
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Error("Solve should reject a singular matrix")
	}
}

func TestDet(t *testing.T) {
	a := MatrixFromRows([][]float64{{4, 3}, {6, 3}})
	f, err := Factor(a)
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	if got := f.Det(); math.Abs(got-(-6)) > 1e-12 {
		t.Errorf("Det = %v, want -6", got)
	}
}

func TestDetPermutationSign(t *testing.T) {
	// A matrix that forces a row swap during pivoting.
	a := MatrixFromRows([][]float64{{0, 1}, {1, 0}})
	f, err := Factor(a)
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	if got := f.Det(); math.Abs(got-(-1)) > 1e-12 {
		t.Errorf("Det = %v, want -1", got)
	}
}

func TestInverse(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2, 0}, {0, 1, 1}, {2, 0, 1}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	if d := a.Mul(inv).Sub(Identity(3)).MaxAbs(); d > 1e-12 {
		t.Errorf("A·A⁻¹ differs from I by %v", d)
	}
}
