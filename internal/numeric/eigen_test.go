package numeric

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
)

func realsOf(ev []complex128) []float64 {
	out := make([]float64, len(ev))
	for i, l := range ev {
		out[i] = real(l)
	}
	sort.Float64s(out)
	return out
}

func TestEigenvaluesDiagonal(t *testing.T) {
	a := MatrixFromRows([][]float64{{3, 0, 0}, {0, -1, 0}, {0, 0, 7}})
	ev, err := Eigenvalues(a)
	if err != nil {
		t.Fatalf("Eigenvalues: %v", err)
	}
	got := realsOf(ev)
	want := []float64{-1, 3, 7}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("eig[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEigenvaluesSymmetric(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := MatrixFromRows([][]float64{{2, 1}, {1, 2}})
	ev, err := Eigenvalues(a)
	if err != nil {
		t.Fatalf("Eigenvalues: %v", err)
	}
	got := realsOf(ev)
	if math.Abs(got[0]-1) > 1e-9 || math.Abs(got[1]-3) > 1e-9 {
		t.Errorf("eigs = %v, want [1 3]", got)
	}
}

func TestEigenvaluesRotation(t *testing.T) {
	// Rotation by 90°: eigenvalues ±i.
	a := MatrixFromRows([][]float64{{0, -1}, {1, 0}})
	ev, err := Eigenvalues(a)
	if err != nil {
		t.Fatalf("Eigenvalues: %v", err)
	}
	for _, l := range ev {
		if math.Abs(cmplx.Abs(l)-1) > 1e-9 || math.Abs(real(l)) > 1e-9 {
			t.Errorf("eigenvalue %v, want ±i", l)
		}
	}
}

func TestEigenvaluesCompanion(t *testing.T) {
	// Companion matrix of p(x) = x³ − 6x² + 11x − 6 = (x−1)(x−2)(x−3).
	a := MatrixFromRows([][]float64{
		{6, -11, 6},
		{1, 0, 0},
		{0, 1, 0},
	})
	ev, err := Eigenvalues(a)
	if err != nil {
		t.Fatalf("Eigenvalues: %v", err)
	}
	got := realsOf(ev)
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Errorf("eig[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEigenvaluesTraceDet(t *testing.T) {
	// Σλ = tr(A) and Πλ = det(A) for random matrices.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(6)
		a := NewMatrix(n, n)
		tr := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			tr += a.At(i, i)
		}
		ev, err := Eigenvalues(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(ev) != n {
			t.Fatalf("trial %d: got %d eigenvalues, want %d", trial, len(ev), n)
		}
		sum := complex(0, 0)
		prod := complex(1, 0)
		for _, l := range ev {
			sum += l
			prod *= l
		}
		if math.Abs(real(sum)-tr) > 1e-6*(1+math.Abs(tr)) || math.Abs(imag(sum)) > 1e-6 {
			t.Errorf("trial %d: Σλ = %v, trace = %v", trial, sum, tr)
		}
		f, err := Factor(a)
		if err != nil {
			continue
		}
		det := f.Det()
		if math.Abs(real(prod)-det) > 1e-5*(1+math.Abs(det)) {
			t.Errorf("trial %d: Πλ = %v, det = %v", trial, prod, det)
		}
	}
}

func TestEigenvaluesJminusI(t *testing.T) {
	// J − I (all-ones minus identity) has eigenvalues N−1 (once) and −1
	// (N−1 times): the structure behind the paper's 1−N instability claim.
	for _, n := range []int{2, 3, 5, 8} {
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					a.Set(i, j, 1)
				}
			}
		}
		ev, err := Eigenvalues(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := realsOf(ev)
		if math.Abs(got[n-1]-float64(n-1)) > 1e-8 {
			t.Errorf("n=%d: max eig %v, want %d", n, got[n-1], n-1)
		}
		for i := 0; i < n-1; i++ {
			if math.Abs(got[i]+1) > 1e-8 {
				t.Errorf("n=%d: eig %v, want -1", n, got[i])
			}
		}
	}
}

func TestSpectralRadius(t *testing.T) {
	a := MatrixFromRows([][]float64{{0, 2}, {0.5, 0}})
	r, err := SpectralRadius(a)
	if err != nil {
		t.Fatalf("SpectralRadius: %v", err)
	}
	if math.Abs(r-1) > 1e-9 {
		t.Errorf("ρ = %v, want 1", r)
	}
}

func TestPowerIteration(t *testing.T) {
	a := MatrixFromRows([][]float64{{2, 0}, {0, 0.5}})
	if got := PowerIteration(a, 200); math.Abs(got-2) > 1e-6 {
		t.Errorf("PowerIteration = %v, want 2", got)
	}
}

func TestIsNilpotent(t *testing.T) {
	n := MatrixFromRows([][]float64{{0, 0, 0}, {5, 0, 0}, {2, -3, 0}})
	if !IsNilpotent(n, 1e-10) {
		t.Error("strictly lower triangular matrix should be nilpotent")
	}
	m := MatrixFromRows([][]float64{{0, 1}, {1, 0}})
	if IsNilpotent(m, 1e-10) {
		t.Error("involution should not be nilpotent")
	}
}

func TestEigenvaluesTrivialSizes(t *testing.T) {
	if ev, err := Eigenvalues(NewMatrix(0, 0)); err != nil || len(ev) != 0 {
		t.Errorf("0×0: %v %v", ev, err)
	}
	ev, err := Eigenvalues(MatrixFromRows([][]float64{{42}}))
	if err != nil || len(ev) != 1 || real(ev[0]) != 42 {
		t.Errorf("1×1: %v %v", ev, err)
	}
}
