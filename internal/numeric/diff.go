package numeric

import "math"

// defaultStep picks a central-difference step scaled to the magnitude of x.
func defaultStep(x float64) float64 {
	h := 1e-6 * (math.Abs(x) + 1)
	return h
}

// Derivative estimates f'(x) with a central difference.  Pass h ≤ 0 to use
// a magnitude-scaled default step.
func Derivative(f func(float64) float64, x, h float64) float64 {
	if h <= 0 {
		h = defaultStep(x)
	}
	return (f(x+h) - f(x-h)) / (2 * h)
}

// SecondDerivative estimates f”(x) with a central difference.
func SecondDerivative(f func(float64) float64, x, h float64) float64 {
	if h <= 0 {
		h = 1e-4 * (math.Abs(x) + 1)
	}
	return (f(x+h) - 2*f(x) + f(x-h)) / (h * h)
}

// Gradient estimates ∇f(x) component-wise with central differences.
// The input vector is not modified.
func Gradient(f func([]float64) float64, x []float64, h float64) []float64 {
	g := make([]float64, len(x))
	xx := append([]float64(nil), x...)
	for i := range x {
		hi := h
		if hi <= 0 {
			hi = defaultStep(x[i])
		}
		orig := xx[i]
		xx[i] = orig + hi
		fp := f(xx)
		xx[i] = orig - hi
		fm := f(xx)
		xx[i] = orig
		g[i] = (fp - fm) / (2 * hi)
	}
	return g
}

// Partial estimates ∂f/∂x_i at x with a central difference.
func Partial(f func([]float64) float64, x []float64, i int, h float64) float64 {
	if h <= 0 {
		h = defaultStep(x[i])
	}
	xx := append([]float64(nil), x...)
	xx[i] = x[i] + h
	fp := f(xx)
	xx[i] = x[i] - h
	fm := f(xx)
	return (fp - fm) / (2 * h)
}

// Partial2 estimates ∂²f/∂x_i∂x_j at x.  For i == j it uses the standard
// three-point stencil; otherwise the four-point mixed stencil.
func Partial2(f func([]float64) float64, x []float64, i, j int, h float64) float64 {
	if h <= 0 {
		h = 1e-4 * (math.Abs(x[i]) + math.Abs(x[j]) + 1)
	}
	xx := append([]float64(nil), x...)
	if i == j {
		f0 := f(xx)
		xx[i] = x[i] + h
		fp := f(xx)
		xx[i] = x[i] - h
		fm := f(xx)
		return (fp - 2*f0 + fm) / (h * h)
	}
	xx[i], xx[j] = x[i]+h, x[j]+h
	fpp := f(xx)
	xx[i], xx[j] = x[i]+h, x[j]-h
	fpm := f(xx)
	xx[i], xx[j] = x[i]-h, x[j]+h
	fmp := f(xx)
	xx[i], xx[j] = x[i]-h, x[j]-h
	fmm := f(xx)
	return (fpp - fpm - fmp + fmm) / (4 * h * h)
}

// JacobianFD estimates the Jacobian of a vector field F: R^n → R^m with
// central differences; the result has m rows and n columns.
func JacobianFD(F func([]float64) []float64, x []float64, h float64) *Matrix {
	xx := append([]float64(nil), x...)
	n := len(x)
	var m int
	var jac *Matrix
	for j := 0; j < n; j++ {
		hj := h
		if hj <= 0 {
			hj = defaultStep(x[j])
		}
		orig := xx[j]
		xx[j] = orig + hj
		fp := F(xx)
		xx[j] = orig - hj
		fm := F(xx)
		xx[j] = orig
		if jac == nil {
			m = len(fp)
			jac = NewMatrix(m, n)
		}
		for i := 0; i < m; i++ {
			jac.Set(i, j, (fp[i]-fm[i])/(2*hj))
		}
	}
	if jac == nil {
		return NewMatrix(0, n)
	}
	return jac
}
