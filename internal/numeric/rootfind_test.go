package numeric

import (
	"math"
	"testing"
)

func TestBisectSimple(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	x, err := Bisect(f, 0, 2, 1e-12)
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	if math.Abs(x-math.Sqrt2) > 1e-10 {
		t.Errorf("Bisect got %v, want √2", x)
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	f := func(x float64) float64 { return x }
	if x, err := Bisect(f, 0, 1, 1e-12); err != nil || x != 0 {
		t.Errorf("Bisect endpoint: got %v, %v", x, err)
	}
	if x, err := Bisect(f, -1, 0, 1e-12); err != nil || x != 0 {
		t.Errorf("Bisect endpoint hi: got %v, %v", x, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Bisect(f, -1, 1, 1e-12); err == nil {
		t.Error("Bisect should fail without a bracket")
	}
}

func TestBrentPolynomial(t *testing.T) {
	f := func(x float64) float64 { return (x + 3) * (x - 1) * (x - 1) * (x - 4) }
	x, err := Brent(f, 2, 5, 1e-13)
	if err != nil {
		t.Fatalf("Brent: %v", err)
	}
	if math.Abs(x-4) > 1e-9 {
		t.Errorf("Brent got %v, want 4", x)
	}
}

func TestBrentTranscendental(t *testing.T) {
	f := func(x float64) float64 { return math.Cos(x) - x }
	x, err := Brent(f, 0, 1, 1e-13)
	if err != nil {
		t.Fatalf("Brent: %v", err)
	}
	// Dottie number.
	if math.Abs(x-0.7390851332151607) > 1e-9 {
		t.Errorf("Brent got %v, want Dottie number", x)
	}
}

func TestBrentNoBracket(t *testing.T) {
	f := func(x float64) float64 { return 1 + x*x }
	if _, err := Brent(f, -2, 2, 1e-12); err == nil {
		t.Error("Brent should fail without a bracket")
	}
}

func TestNewton1D(t *testing.T) {
	f := func(x float64) float64 { return x*x*x - 8 }
	df := func(x float64) float64 { return 3 * x * x }
	x, err := Newton1D(f, df, 3, 1e-14, 1e-14, 100)
	if err != nil {
		t.Fatalf("Newton1D: %v", err)
	}
	if math.Abs(x-2) > 1e-10 {
		t.Errorf("Newton1D got %v, want 2", x)
	}
}

func TestNewton1DZeroDerivative(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	df := func(x float64) float64 { return 2 * x }
	if _, err := Newton1D(f, df, 0, 1e-14, 1e-14, 50); err == nil {
		t.Error("Newton1D should report failure when derivative vanishes")
	}
}

func TestFindBracket(t *testing.T) {
	f := func(x float64) float64 { return x - 10 }
	lo, hi, err := FindBracket(f, 0, 1)
	if err != nil {
		t.Fatalf("FindBracket: %v", err)
	}
	if math.Signbit(f(lo)) == math.Signbit(f(hi)) {
		t.Errorf("FindBracket returned non-bracket [%v, %v]", lo, hi)
	}
}
