package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatrixMul(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatrixMulIdentity(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	if d := a.Mul(Identity(3)).Sub(a).MaxAbs(); d != 0 {
		t.Errorf("A·I ≠ A, max diff %v", d)
	}
	if d := Identity(3).Mul(a).Sub(a).MaxAbs(); d != 0 {
		t.Errorf("I·A ≠ A, max diff %v", d)
	}
}

func TestMatrixMulVec(t *testing.T) {
	a := MatrixFromRows([][]float64{{2, 0}, {1, 3}})
	y := a.MulVec([]float64{4, 5})
	if y[0] != 8 || y[1] != 19 {
		t.Errorf("MulVec = %v, want [8 19]", y)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(a, b, c, d, e, g float64) bool {
		m := MatrixFromRows([][]float64{{a, b, c}, {d, e, g}})
		return m.Transpose().Transpose().Sub(m).MaxAbs() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSubScale(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if d := a.Add(a).Sub(a.Scale(2)).MaxAbs(); d != 0 {
		t.Errorf("A+A ≠ 2A, diff %v", d)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	a := MatrixFromRows([][]float64{{3, 0}, {0, 4}})
	if got := a.FrobeniusNorm(); math.Abs(got-5) > 1e-15 {
		t.Errorf("Frobenius = %v, want 5", got)
	}
}

func TestVecHelpers(t *testing.T) {
	if VecNormInf([]float64{1, -7, 3}) != 7 {
		t.Error("VecNormInf wrong")
	}
	if math.Abs(VecNorm2([]float64{3, 4})-5) > 1e-15 {
		t.Error("VecNorm2 wrong")
	}
	if d := VecDist([]float64{1, 2}, []float64{1, 5}); d != 3 {
		t.Errorf("VecDist = %v, want 3", d)
	}
}

func TestMatrixRowClone(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	r := a.Row(1)
	r[0] = 99
	if a.At(1, 0) != 3 {
		t.Error("Row must return a copy")
	}
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("Clone must deep-copy")
	}
}
