package numeric

import (
	"math"
	"testing"
)

func TestDerivative(t *testing.T) {
	f := math.Sin
	if d := Derivative(f, 1, 0); math.Abs(d-math.Cos(1)) > 1e-8 {
		t.Errorf("d/dx sin(1) = %v, want cos(1)", d)
	}
}

func TestSecondDerivative(t *testing.T) {
	f := func(x float64) float64 { return x * x * x }
	if d := SecondDerivative(f, 2, 0); math.Abs(d-12) > 1e-4 {
		t.Errorf("f''(2) = %v, want 12", d)
	}
}

func TestGradient(t *testing.T) {
	f := func(x []float64) float64 { return x[0]*x[0] + 3*x[0]*x[1] }
	g := Gradient(f, []float64{2, 5}, 0)
	if math.Abs(g[0]-19) > 1e-6 || math.Abs(g[1]-6) > 1e-6 {
		t.Errorf("∇f = %v, want [19 6]", g)
	}
}

func TestGradientDoesNotMutate(t *testing.T) {
	x := []float64{1, 2}
	Gradient(func(v []float64) float64 { return v[0] + v[1] }, x, 0)
	if x[0] != 1 || x[1] != 2 {
		t.Error("Gradient mutated its input")
	}
}

func TestPartial(t *testing.T) {
	f := func(x []float64) float64 { return math.Exp(x[0]) * x[1] }
	if d := Partial(f, []float64{0, 3}, 0, 0); math.Abs(d-3) > 1e-6 {
		t.Errorf("∂f/∂x0 = %v, want 3", d)
	}
}

func TestPartial2Mixed(t *testing.T) {
	f := func(x []float64) float64 { return x[0] * x[0] * x[1] }
	if d := Partial2(f, []float64{3, 4}, 0, 1, 0); math.Abs(d-6) > 1e-3 {
		t.Errorf("∂²f/∂x0∂x1 = %v, want 6", d)
	}
	if d := Partial2(f, []float64{3, 4}, 0, 0, 0); math.Abs(d-8) > 1e-3 {
		t.Errorf("∂²f/∂x0² = %v, want 8", d)
	}
}

func TestJacobianFD(t *testing.T) {
	F := func(x []float64) []float64 {
		return []float64{x[0] * x[1], x[0] + 2*x[1], math.Sin(x[0])}
	}
	j := JacobianFD(F, []float64{1, 2}, 0)
	if j.Rows() != 3 || j.Cols() != 2 {
		t.Fatalf("Jacobian shape %dx%d", j.Rows(), j.Cols())
	}
	want := [][]float64{{2, 1}, {1, 2}, {math.Cos(1), 0}}
	for i := range want {
		for k := range want[i] {
			if math.Abs(j.At(i, k)-want[i][k]) > 1e-6 {
				t.Errorf("J[%d][%d] = %v, want %v", i, k, j.At(i, k), want[i][k])
			}
		}
	}
}
