package numeric

import (
	"errors"
	"math"
	"math/cmplx"
	"sort"
)

// Eigenvalues computes all eigenvalues of a real square matrix using
// balancing, elimination to upper Hessenberg form, and the Francis
// double-shift QR iteration.  Complex conjugate pairs are returned as
// complex numbers.  The input matrix is not modified.
func Eigenvalues(a *Matrix) ([]complex128, error) {
	if !a.IsSquare() {
		return nil, errors.New("numeric: Eigenvalues requires a square matrix")
	}
	n := a.Rows()
	if n == 0 {
		return nil, nil
	}
	if n == 1 {
		return []complex128{complex(a.At(0, 0), 0)}, nil
	}
	w := a.Clone()
	balance(w)
	hessenberg(w)
	ev, err := hqr(w)
	if err != nil {
		return nil, err
	}
	// Sort by decreasing magnitude, then by real part for determinism.
	sort.Slice(ev, func(i, j int) bool {
		mi, mj := cmplx.Abs(ev[i]), cmplx.Abs(ev[j])
		if mi != mj { //lint:allow floateq exact tie-break keeps the sort deterministic
			return mi > mj
		}
		if real(ev[i]) != real(ev[j]) { //lint:allow floateq exact tie-break keeps the sort deterministic
			return real(ev[i]) > real(ev[j])
		}
		return imag(ev[i]) > imag(ev[j])
	})
	return ev, nil
}

// SpectralRadius returns max |λ_i| over the eigenvalues of a.
func SpectralRadius(a *Matrix) (float64, error) {
	ev, err := Eigenvalues(a)
	if err != nil {
		return 0, err
	}
	r := 0.0
	for _, l := range ev {
		if m := cmplx.Abs(l); m > r {
			r = m
		}
	}
	return r, nil
}

// balance applies the Osborne/Parlett–Reinsch diagonal similarity scaling
// in-place so that row and column norms are comparable (improves the
// accuracy of the QR iteration).
func balance(a *Matrix) {
	const radix = 2.0
	n := a.Rows()
	sqrdx := radix * radix
	for done := false; !done; {
		done = true
		for i := 0; i < n; i++ {
			r, c := 0.0, 0.0
			for j := 0; j < n; j++ {
				if j != i {
					c += math.Abs(a.At(j, i))
					r += math.Abs(a.At(i, j))
				}
			}
			if c == 0 || r == 0 { //lint:allow floateq balancing skips exactly-zero rows/columns
				continue
			}
			g := r / radix
			f := 1.0
			s := c + r
			for c < g {
				f *= radix
				c *= sqrdx
			}
			g = r * radix
			for c > g {
				f /= radix
				c /= sqrdx
			}
			if (c+r)/f < 0.95*s {
				done = false
				g = 1 / f
				for j := 0; j < n; j++ {
					a.Set(i, j, a.At(i, j)*g)
				}
				for j := 0; j < n; j++ {
					a.Set(j, i, a.At(j, i)*f)
				}
			}
		}
	}
}

// hessenberg reduces a to upper Hessenberg form in-place by Gaussian
// elimination with partial pivoting (similarity transformations).
func hessenberg(a *Matrix) {
	n := a.Rows()
	for m := 1; m < n-1; m++ {
		// Pivot: largest |a[i][m-1]| for i ≥ m.
		x := 0.0
		im := m
		for i := m; i < n; i++ {
			if math.Abs(a.At(i, m-1)) > math.Abs(x) {
				x = a.At(i, m-1)
				im = i
			}
		}
		if im != m {
			for j := m - 1; j < n; j++ {
				t := a.At(im, j)
				a.Set(im, j, a.At(m, j))
				a.Set(m, j, t)
			}
			for i := 0; i < n; i++ {
				t := a.At(i, im)
				a.Set(i, im, a.At(i, m))
				a.Set(i, m, t)
			}
		}
		if x == 0 { //lint:allow floateq elimination skips an exactly-zero pivot column
			continue
		}
		for i := m + 1; i < n; i++ {
			y := a.At(i, m-1)
			if y == 0 { //lint:allow floateq exactly-zero entry needs no elimination
				continue
			}
			y /= x
			a.Set(i, m-1, 0)
			for j := m; j < n; j++ {
				a.Set(i, j, a.At(i, j)-y*a.At(m, j))
			}
			for j := 0; j < n; j++ {
				a.Set(j, m, a.At(j, m)+y*a.At(j, i))
			}
		}
	}
	// Zero the spurious sub-sub-diagonal entries left by elimination.
	for i := 2; i < n; i++ {
		for j := 0; j < i-1; j++ {
			a.Set(i, j, 0)
		}
	}
}

// hqr finds all eigenvalues of an upper Hessenberg matrix by the Francis
// double-shift QR algorithm (after Numerical Recipes' hqr).  The matrix is
// destroyed.
func hqr(a *Matrix) ([]complex128, error) {
	n := a.Rows()
	ev := make([]complex128, 0, n)
	anorm := 0.0
	for i := 0; i < n; i++ {
		for j := maxInt(i-1, 0); j < n; j++ {
			anorm += math.Abs(a.At(i, j))
		}
	}
	if anorm == 0 { //lint:allow floateq the exactly-zero matrix has all-zero eigenvalues
		for i := 0; i < n; i++ {
			ev = append(ev, 0)
		}
		return ev, nil
	}
	nn := n - 1
	t := 0.0
	var x, y, z, w, v, u, s, r, q, p float64
	for nn >= 0 {
		its := 0
		var l int
		for {
			// Look for a single small subdiagonal element.
			for l = nn; l >= 1; l-- {
				s = math.Abs(a.At(l-1, l-1)) + math.Abs(a.At(l, l))
				if s == 0 { //lint:allow floateq scale fallback for an exactly-zero diagonal pair
					s = anorm
				}
				if math.Abs(a.At(l, l-1))+s == s { //lint:allow floateq classic machine-epsilon deflation test (NR hqr)
					a.Set(l, l-1, 0)
					break
				}
			}
			x = a.At(nn, nn)
			if l == nn {
				// One root found.
				ev = append(ev, complex(x+t, 0))
				nn--
				break
			}
			y = a.At(nn-1, nn-1)
			w = a.At(nn, nn-1) * a.At(nn-1, nn)
			if l == nn-1 {
				// Two roots found.
				p = 0.5 * (y - x)
				q = p*p + w
				z = math.Sqrt(math.Abs(q))
				x += t
				if q >= 0 {
					// Real pair.
					if p >= 0 {
						z = p + z
					} else {
						z = p - z
					}
					ev = append(ev, complex(x+z, 0))
					if z != 0 { //lint:allow floateq division guard: any nonzero z is usable
						ev = append(ev, complex(x-w/z, 0))
					} else {
						ev = append(ev, complex(x, 0))
					}
				} else {
					// Complex pair.
					ev = append(ev, complex(x+p, z), complex(x+p, -z))
				}
				nn -= 2
				break
			}
			// No roots yet; continue iteration.
			if its == 60 {
				return nil, errors.New("numeric: too many QR iterations")
			}
			if its == 10 || its == 20 {
				// Exceptional shift.
				t += x
				for i := 0; i <= nn; i++ {
					a.Set(i, i, a.At(i, i)-x)
				}
				s = math.Abs(a.At(nn, nn-1)) + math.Abs(a.At(nn-1, nn-2))
				y = 0.75 * s
				x = y
				w = -0.4375 * s * s
			}
			its++
			// Form shift and look for two consecutive small subdiagonals.
			var m int
			for m = nn - 2; m >= l; m-- {
				z = a.At(m, m)
				r = x - z
				s = y - z
				p = (r*s-w)/a.At(m+1, m) + a.At(m, m+1)
				q = a.At(m+1, m+1) - z - r - s
				r = a.At(m+2, m+1)
				s = math.Abs(p) + math.Abs(q) + math.Abs(r)
				p /= s
				q /= s
				r /= s
				if m == l {
					break
				}
				u = math.Abs(a.At(m, m-1)) * (math.Abs(q) + math.Abs(r))
				v = math.Abs(p) * (math.Abs(a.At(m-1, m-1)) + math.Abs(z) + math.Abs(a.At(m+1, m+1)))
				if u+v == v { //lint:allow floateq classic machine-epsilon smallness test (NR hqr)
					break
				}
			}
			for i := m + 2; i <= nn; i++ {
				a.Set(i, i-2, 0)
				if i != m+2 {
					a.Set(i, i-3, 0)
				}
			}
			// Double QR step on rows l..nn and columns m..nn.
			for k := m; k <= nn-1; k++ {
				if k != m {
					p = a.At(k, k-1)
					q = a.At(k+1, k-1)
					r = 0
					if k != nn-1 {
						r = a.At(k+2, k-1)
					}
					x = math.Abs(p) + math.Abs(q) + math.Abs(r)
					if x != 0 { //lint:allow floateq division guard: any nonzero scale is usable
						p /= x
						q /= x
						r /= x
					}
				}
				s = math.Copysign(math.Sqrt(p*p+q*q+r*r), p)
				if s == 0 { //lint:allow floateq Householder reflector vanishes exactly; skip
					continue
				}
				if k == m {
					if l != m {
						a.Set(k, k-1, -a.At(k, k-1))
					}
				} else {
					a.Set(k, k-1, -s*x)
				}
				p += s
				x = p / s
				y = q / s
				z = r / s
				q /= p
				r /= p
				// Row modification.
				for j := k; j <= nn; j++ {
					p = a.At(k, j) + q*a.At(k+1, j)
					if k != nn-1 {
						p += r * a.At(k+2, j)
						a.Set(k+2, j, a.At(k+2, j)-p*z)
					}
					a.Set(k+1, j, a.At(k+1, j)-p*y)
					a.Set(k, j, a.At(k, j)-p*x)
				}
				// Column modification.
				mmin := nn
				if k+3 < nn {
					mmin = k + 3
				}
				for i := l; i <= mmin; i++ {
					p = x*a.At(i, k) + y*a.At(i, k+1)
					if k != nn-1 {
						p += z * a.At(i, k+2)
						a.Set(i, k+2, a.At(i, k+2)-p*r)
					}
					a.Set(i, k+1, a.At(i, k+1)-p*q)
					a.Set(i, k, a.At(i, k)-p)
				}
			}
		}
	}
	return ev, nil
}

// PowerIteration estimates the dominant eigenvalue magnitude of a by the
// power method with the given iteration budget.  It returns the Rayleigh
// estimate of |λ_max|; for matrices whose dominant eigenvalue is complex
// the estimate oscillates and the max over a trailing window is returned.
func PowerIteration(a *Matrix, iters int) float64 {
	n := a.Rows()
	if n == 0 {
		return 0
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(n))
	}
	best := 0.0
	for k := 0; k < iters; k++ {
		y := a.MulVec(x)
		ny := VecNorm2(y)
		if ny == 0 { //lint:allow floateq exactly-zero iterate: matrix annihilates the start vector
			return 0
		}
		if k >= iters-10 && ny > best {
			best = ny
		}
		for i := range y {
			y[i] /= ny
		}
		x = y
	}
	return best
}

// IsNilpotent reports whether the square matrix a is nilpotent within the
// numeric tolerance tol: a^n must have max-norm ≤ tol·(1+‖a‖∞ⁿ scale).
func IsNilpotent(a *Matrix, tol float64) bool {
	if !a.IsSquare() {
		return false
	}
	n := a.Rows()
	p := a.Clone()
	scale := math.Max(1, a.MaxAbs())
	bound := tol
	for k := 1; k < n; k++ {
		p = p.Mul(a)
		bound *= scale
	}
	return p.MaxAbs() <= bound+tol
}
