package numeric

import (
	"math"
	"testing"
)

func TestMaximizeGoldenQuadratic(t *testing.T) {
	f := func(x float64) float64 { return -(x - 3) * (x - 3) }
	x, fx := MaximizeGolden(f, 0, 10, 1e-10)
	if math.Abs(x-3) > 1e-7 {
		t.Errorf("argmax %v, want 3", x)
	}
	if fx > 0 || fx < -1e-12 {
		t.Errorf("max %v, want 0", fx)
	}
}

func TestMaximizeGoldenReversedInterval(t *testing.T) {
	f := func(x float64) float64 { return -x * x }
	x, _ := MaximizeGolden(f, 5, -5, 1e-10)
	if math.Abs(x) > 1e-7 {
		t.Errorf("argmax %v, want 0", x)
	}
}

func TestMaximizeBrent(t *testing.T) {
	f := func(x float64) float64 { return math.Sin(x) }
	x, fx := MaximizeBrent(f, 0, math.Pi, 1e-12)
	if math.Abs(x-math.Pi/2) > 1e-6 {
		t.Errorf("argmax %v, want π/2", x)
	}
	if math.Abs(fx-1) > 1e-10 {
		t.Errorf("max %v, want 1", fx)
	}
}

func TestMaximizeGridNonUnimodal(t *testing.T) {
	// Two humps; the taller one is at x = 7.
	f := func(x float64) float64 {
		return math.Exp(-(x-2)*(x-2)) + 2*math.Exp(-(x-7)*(x-7))
	}
	x, _ := MaximizeGrid(f, 0, 10, 50, 1e-10)
	if math.Abs(x-7) > 1e-3 {
		t.Errorf("argmax %v, want ≈7", x)
	}
}

func TestMaximizeGridInfPlateau(t *testing.T) {
	// −Inf outside [0, 0.5], maximum at 0.3: the shape best-response
	// searches encounter at domain boundaries.
	f := func(x float64) float64 {
		if x > 0.5 {
			return math.Inf(-1)
		}
		return -(x - 0.3) * (x - 0.3)
	}
	x, _ := MaximizeGrid(f, 0, 1, 64, 1e-10)
	if math.Abs(x-0.3) > 1e-6 {
		t.Errorf("argmax %v, want 0.3", x)
	}
}

func TestMaximizeGridEndpointMax(t *testing.T) {
	f := func(x float64) float64 { return x }
	x, _ := MaximizeGrid(f, 0, 1, 16, 1e-10)
	if math.Abs(x-1) > 1e-6 {
		t.Errorf("argmax %v, want 1", x)
	}
}
