package numeric

import (
	"errors"
	"math"
)

// ErrSingular is returned when a linear solve encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("numeric: singular matrix")

// LU holds an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	lu    *Matrix
	pivot []int
	sign  float64
}

// Factor computes the LU factorization of the square matrix a with partial
// pivoting (Doolittle).  The input is not modified.
func Factor(a *Matrix) (*LU, error) {
	if !a.IsSquare() {
		return nil, errors.New("numeric: Factor requires a square matrix")
	}
	n := a.Rows()
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1.0
	for k := 0; k < n; k++ {
		// Find pivot.
		p, mx := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > mx {
				p, mx = i, v
			}
		}
		pivot[k] = p
		if mx == 0 { //lint:allow floateq exactly-zero pivot means structurally singular
			return nil, ErrSingular
		}
		if p != k {
			sign = -sign
			for j := 0; j < n; j++ {
				t := lu.At(k, j)
				lu.Set(k, j, lu.At(p, j))
				lu.Set(p, j, t)
			}
		}
		d := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / d
			lu.Set(i, k, m)
			if m == 0 { //lint:allow floateq exactly-zero multiplier needs no elimination
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Set(i, j, lu.At(i, j)-m*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

// Solve solves A·x = b for the factored A.  b is not modified.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.Rows()
	if len(b) != n {
		return nil, errors.New("numeric: Solve length mismatch")
	}
	x := append([]float64(nil), b...)
	// Apply row permutations.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		d := f.lu.At(i, i)
		if d == 0 { //lint:allow floateq division guard: exactly-zero diagonal means singular
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// Det returns det(A) of the factored matrix.
func (f *LU) Det() float64 {
	d := f.sign
	n := f.lu.Rows()
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves A·x = b directly (factor + solve).
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse returns A⁻¹, or ErrSingular.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows()
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}
