package numeric

import "math"

// invPhi = 1/φ, the golden-section step ratio.
const invPhi = 0.6180339887498949

// MaximizeGolden maximizes f over the closed interval [a, b] by
// golden-section search, assuming f is unimodal there.  It returns the
// argmax and max; the argmax is accurate to within tol.
func MaximizeGolden(f func(float64) float64, a, b, tol float64) (x, fx float64) {
	if b < a {
		a, b = b, a
	}
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc > fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	x = a + (b-a)/2
	return x, f(x)
}

// MaximizeBrent maximizes f over [a, b] using Brent's method for
// minimization applied to −f (golden-section steps guarded by successive
// parabolic interpolation).  f should be unimodal on [a, b].
func MaximizeBrent(f func(float64) float64, a, b, tol float64) (xmax, fmax float64) {
	if b < a {
		a, b = b, a
	}
	neg := func(x float64) float64 { return -f(x) }
	x, fx := brentMin(neg, a, b, tol)
	return x, -fx
}

// brentMin is the classic Brent minimizer on [a, b].
func brentMin(f func(float64) float64, a, b, tol float64) (float64, float64) {
	const cgold = 0.3819660112501051 // 2 − φ
	const eps = 1e-12
	x := a + cgold*(b-a)
	w, v := x, x
	fx := f(x)
	fw, fv := fx, fx
	var d, e float64
	for iter := 0; iter < 200; iter++ {
		xm := (a + b) / 2
		tol1 := tol*math.Abs(x) + eps
		tol2 := 2 * tol1
		if math.Abs(x-xm) <= tol2-(b-a)/2 {
			break
		}
		useGolden := true
		if math.Abs(e) > tol1 {
			// Fit a parabola through x, w, v.
			r := (x - w) * (fx - fv)
			q := (x - v) * (fx - fw)
			p := (x-v)*q - (x-w)*r
			q = 2 * (q - r)
			if q > 0 {
				p = -p
			}
			q = math.Abs(q)
			etemp := e
			e = d
			if math.Abs(p) < math.Abs(q*etemp/2) && p > q*(a-x) && p < q*(b-x) {
				d = p / q
				u := x + d
				if u-a < tol2 || b-u < tol2 {
					d = math.Copysign(tol1, xm-x)
				}
				useGolden = false
			}
		}
		if useGolden {
			if x >= xm {
				e = a - x
			} else {
				e = b - x
			}
			d = cgold * e
		}
		var u float64
		if math.Abs(d) >= tol1 {
			u = x + d
		} else {
			u = x + math.Copysign(tol1, d)
		}
		fu := f(u)
		if fu <= fx {
			if u >= x {
				a = x
			} else {
				b = x
			}
			v, w, x = w, x, u
			fv, fw, fx = fw, fx, fu
		} else {
			if u < x {
				a = u
			} else {
				b = u
			}
			if fu <= fw || w == x { //lint:allow floateq Brent bookkeeping tracks exact bracket-point identity
				v, fv = w, fw
				w, fw = u, fu
			} else if fu <= fv || v == x || v == w { //lint:allow floateq Brent bookkeeping tracks exact bracket-point identity
				v, fv = u, fu
			}
		}
	}
	return x, fx
}

// MaximizeGrid maximizes f over [a, b] by evaluating n+1 equally spaced
// points and then refining the best cell with golden-section search.  It is
// robust to mild non-unimodality (e.g. flat −Inf plateaus near a domain
// boundary) at the cost of n extra evaluations.
func MaximizeGrid(f func(float64) float64, a, b float64, n int, tol float64) (x, fx float64) {
	if n < 2 {
		n = 2
	}
	if b < a {
		a, b = b, a
	}
	h := (b - a) / float64(n)
	bestI, bestF := 0, math.Inf(-1)
	for i := 0; i <= n; i++ {
		v := f(a + float64(i)*h)
		if v > bestF {
			bestF, bestI = v, i
		}
	}
	lo := a + float64(maxInt(bestI-1, 0))*h
	hi := a + float64(minInt(bestI+1, n))*h
	return MaximizeGolden(f, lo, hi, tol)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
