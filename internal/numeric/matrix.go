package numeric

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major real matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix allocates a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("numeric: negative matrix dimension") //lint:allow panicfree dimension invariant: negative size is a programmer error (gonum convention)
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from row slices, which must be rectangular.
func MatrixFromRows(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("numeric: ragged rows") //lint:allow panicfree shape invariant: ragged input is a programmer error (gonum convention)
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	return append([]float64(nil), m.data[i*m.cols:(i+1)*m.cols]...)
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("numeric: Mul dimension mismatch %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols)) //lint:allow panicfree shape invariant: mismatched product dims are a programmer error (gonum convention)
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 { //lint:allow floateq sparsity fast path skips exactly-zero entries
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			orow := out.data[i*out.cols : (i+1)*out.cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.cols != len(x) {
		panic("numeric: MulVec dimension mismatch") //lint:allow panicfree shape invariant: mismatched vector length is a programmer error (gonum convention)
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.assertSameShape(b)
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out
}

// Sub returns m − b.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.assertSameShape(b)
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out
}

// Scale returns s·m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// MaxAbs returns the largest absolute entry (the max norm).
func (m *Matrix) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// FrobeniusNorm returns √Σ m_ij².
func (m *Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// IsSquare reports whether the matrix is square.
func (m *Matrix) IsSquare() bool { return m.rows == m.cols }

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%10.4g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

func (m *Matrix) assertSameShape(b *Matrix) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("numeric: shape mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols)) //lint:allow panicfree shape invariant: mismatched operand shapes are a programmer error (gonum convention)
	}
}

// VecNormInf returns max |x_i|.
func VecNormInf(x []float64) float64 {
	mx := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// VecNorm2 returns the Euclidean norm.
func VecNorm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// VecSub returns a − b as a new slice.
func VecSub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("numeric: VecSub length mismatch") //lint:allow panicfree shape invariant: mismatched vector lengths are a programmer error (gonum convention)
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// VecDist returns ‖a − b‖∞.
func VecDist(a, b []float64) float64 { return VecNormInf(VecSub(a, b)) }
