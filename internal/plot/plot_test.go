package plot

import (
	"math"
	"strings"
	"testing"
)

func TestSparkBasic(t *testing.T) {
	s := Spark([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("spark length %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("spark endpoints wrong: %q", s)
	}
}

func TestSparkFlatSeries(t *testing.T) {
	s := Spark([]float64{5, 5, 5})
	if len([]rune(s)) != 3 {
		t.Fatalf("length %d", len([]rune(s)))
	}
}

func TestSparkHandlesNaNInf(t *testing.T) {
	s := []rune(Spark([]float64{1, math.NaN(), 2, math.Inf(1)}))
	if s[1] != ' ' || s[3] != ' ' {
		t.Errorf("NaN/Inf should render as spaces: %q", string(s))
	}
}

func TestSparkEmpty(t *testing.T) {
	if Spark(nil) != "" {
		t.Error("empty input should yield empty string")
	}
	if Spark([]float64{math.NaN()}) != " " {
		t.Error("all-NaN input should yield spaces")
	}
}

func TestChartRender(t *testing.T) {
	out := Chart{Width: 30, Height: 8}.Render(
		Series{Name: "up", Y: []float64{0, 1, 2, 3, 4}},
		Series{Name: "down", Y: []float64{4, 3, 2, 1, 0}},
	)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("missing glyphs:\n%s", out)
	}
	if !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Errorf("missing legend:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 8 plot rows + axis + 2 legend lines.
	if len(lines) != 11 {
		t.Errorf("got %d lines, want 11:\n%s", len(lines), out)
	}
}

func TestChartLogY(t *testing.T) {
	out := Chart{Width: 20, Height: 6, LogY: true}.Render(
		Series{Name: "decay", Y: []float64{1, 0.1, 0.01, 0.001}},
	)
	if !strings.Contains(out, "*") {
		t.Errorf("log chart empty:\n%s", out)
	}
	// Non-positive values must not panic and are skipped.
	out2 := Chart{LogY: true}.Render(Series{Name: "zeros", Y: []float64{0, -1}})
	if !strings.Contains(out2, "no data") {
		t.Errorf("all-non-positive log chart should say no data: %q", out2)
	}
}

func TestChartEmpty(t *testing.T) {
	if out := (Chart{}).Render(); !strings.Contains(out, "no data") {
		t.Errorf("empty chart should say no data: %q", out)
	}
}

func TestColumn(t *testing.T) {
	traj := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	col := Column(traj, 1)
	if col[0] != 2 || col[1] != 4 || col[2] != 6 {
		t.Errorf("Column = %v", col)
	}
}
