// Package plot renders small ASCII line charts and sparklines for the
// convergence trajectories and parameter sweeps the experiments produce —
// terminal-native stand-ins for the figures a paper reproduction would
// normally plot.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// sparkRunes are the eight block heights used by Spark.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Spark renders a one-line sparkline of the series.  NaN/Inf samples
// render as spaces.  An empty series yields an empty string.
func Spark(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat(" ", len(xs))
	}
	var b strings.Builder
	for _, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			b.WriteRune(' ')
			continue
		}
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// Series is one named line in a Chart.
type Series struct {
	// Name labels the series in the legend.
	Name string
	// Y holds the sample values; X is implicit (sample index).
	Y []float64
}

// Chart renders one or more series into a width×height ASCII grid with a
// numeric Y-axis and a legend line per series (marked with distinct
// glyphs).
type Chart struct {
	// Width and Height of the plot area in characters; defaults 60×12.
	Width, Height int
	// LogY plots log10 of the values (non-positive samples are skipped).
	LogY bool
}

// seriesGlyphs mark successive series.
var seriesGlyphs = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the chart.
func (c Chart) Render(series ...Series) string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 12
	}
	transform := func(v float64) (float64, bool) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, false
		}
		if c.LogY {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
		return v, true
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range series {
		if len(s.Y) > maxLen {
			maxLen = len(s.Y)
		}
		for _, v := range s.Y {
			if t, ok := transform(v); ok {
				lo = math.Min(lo, t)
				hi = math.Max(hi, t)
			}
		}
	}
	if maxLen == 0 || math.IsInf(lo, 1) {
		return "(no data)\n"
	}
	if hi == lo { //lint:allow floateq degenerate exactly-flat range widened for display
		hi = lo + 1
	}
	grid := make([][]byte, h)
	for row := range grid {
		grid[row] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for k, v := range s.Y {
			t, ok := transform(v)
			if !ok {
				continue
			}
			col := 0
			if maxLen > 1 {
				col = k * (w - 1) / (maxLen - 1)
			}
			row := int((hi - t) / (hi - lo) * float64(h-1))
			if row < 0 {
				row = 0
			}
			if row >= h {
				row = h - 1
			}
			grid[row][col] = glyph
		}
	}
	yLabel := func(t float64) string {
		if c.LogY {
			return fmt.Sprintf("%9.3g", math.Pow(10, t))
		}
		return fmt.Sprintf("%9.3g", t)
	}
	var b strings.Builder
	for row := 0; row < h; row++ {
		frac := float64(row) / float64(h-1)
		val := hi - frac*(hi-lo)
		label := strings.Repeat(" ", 9)
		if row == 0 || row == h-1 || row == (h-1)/2 {
			label = yLabel(val)
		}
		b.WriteString(label)
		b.WriteString(" |")
		b.Write(grid[row])
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 9) + " +" + strings.Repeat("-", w) + "\n")
	for si, s := range series {
		fmt.Fprintf(&b, "%s %c = %s\n", strings.Repeat(" ", 9), seriesGlyphs[si%len(seriesGlyphs)], s.Name)
	}
	return b.String()
}

// Column extracts column i from a trajectory of vectors (one series per
// user from dynamics output).
func Column(traj [][]float64, i int) []float64 {
	out := make([]float64, len(traj))
	for k, row := range traj {
		out[k] = row[i]
	}
	return out
}
