package cliutil

import (
	"testing"

	"greednet/internal/game"
	"greednet/internal/utility"
)

func TestParseClasses(t *testing.T) {
	cs, err := ParseClasses(" 125000 x linear:1,0.2 @ 4e-7 ;3xlog:0.3,1@0.01")
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("got %d classes", len(cs))
	}
	if cs[0].Count != 125000 || cs[0].Rate != 4e-7 {
		t.Errorf("class 0 = %+v", cs[0])
	}
	if l, ok := cs[0].U.(utility.Linear); !ok || l.A != 1 || l.Gamma != 0.2 {
		t.Errorf("class 0 utility %#v", cs[0].U)
	}
	if cs[1].Count != 3 || cs[1].Rate != 0.01 {
		t.Errorf("class 1 = %+v", cs[1])
	}
	// The parse output feeds NewClassGame directly.
	cg, err := game.NewClassGame(cs)
	if err != nil {
		t.Fatal(err)
	}
	if cg.N() != 125003 || cg.K() != 2 {
		t.Errorf("N=%d K=%d", cg.N(), cg.K())
	}
}

func TestParseClassesRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",                    // empty profile
		";;",                  // only separators
		"linear:1,0.2@0.1",    // missing COUNTx
		"2xlinear:1,0.2",      // missing @RATE
		"0xlinear:1,0.2@0.1",  // zero count
		"-1xlinear:1,0.2@0.1", // negative count
		"2xnope:1,2@0.1",      // unknown utility
		"2xlinear:1,0.2@-0.1", // negative rate
		"2xlinear:1,0.2@zz",   // unparsable rate
	} {
		if _, err := ParseClasses(bad); err == nil {
			t.Errorf("ParseClasses(%q) should fail", bad)
		}
	}
}
