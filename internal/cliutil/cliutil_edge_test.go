package cliutil

import (
	"strings"
	"testing"
)

// Edge cases for the flag parsers: malformed floats, non-finite and
// non-positive values, empty flag values, and wrong parameter counts must
// all come back as errors, never as silently-misparsed configurations.

func TestParseRatesEdgeCases(t *testing.T) {
	bad := []struct {
		in, why string
	}{
		{"", "empty flag value"},
		{"   ", "blank flag value"},
		{",,", "only separators"},
		{"abc", "not a float"},
		{"0.1,abc", "bad entry mid-list"},
		{"-1", "negative rate"},
		{"0.1,-0.2", "negative entry mid-list"},
		{"0", "zero rate"},
		{"1e400", "overflows float64"},
		{"NaN", "NaN is not a rate"},
		{"Inf", "infinite rate"},
		{"-Inf", "negative infinite rate"},
	}
	for _, tc := range bad {
		if got, err := ParseRates(tc.in); err == nil {
			t.Errorf("ParseRates(%q) = %v, want error (%s)", tc.in, got, tc.why)
		}
	}

	// Empty entries between separators are skipped, not errors.
	got, err := ParseRates(" 0.1, ,0.2 ,")
	if err != nil || len(got) != 2 {
		t.Errorf("ParseRates with blank entries = %v, %v; want two rates", got, err)
	}
}

func TestParseUtilityEdgeCases(t *testing.T) {
	bad := []struct {
		in, why string
	}{
		{"linear", "missing colon"},
		{"linear:", "empty parameter list"},
		{"linear:1", "too few parameters"},
		{"linear:1,2,3", "too many parameters"},
		{"linear:1,abc", "bad parameter float"},
		{"power:1,2", "power needs three parameters"},
		{"bogus:1,2", "unknown family"},
		{":1,2", "empty family name"},
	}
	for _, tc := range bad {
		if got, err := ParseUtility(tc.in); err == nil {
			t.Errorf("ParseUtility(%q) = %v, want error (%s)", tc.in, got, tc.why)
		}
	}

	// Family names are case-insensitive.
	if _, err := ParseUtility("LINEAR:1,0.5"); err != nil {
		t.Errorf("ParseUtility(LINEAR:1,0.5) error: %v", err)
	}
}

func TestParseProfileEdgeCases(t *testing.T) {
	for _, in := range []string{"", " ; ; ", "linear:1,2;bogus:1"} {
		if got, err := ParseProfile(in); err == nil {
			t.Errorf("ParseProfile(%q) = %v, want error", in, got)
		}
	}

	// A bad spec's error names the offending piece, not just the profile.
	_, err := ParseProfile("linear:1,2;linear:1,abc")
	if err == nil || !strings.Contains(err.Error(), "abc") {
		t.Errorf("ParseProfile error = %v, want mention of the bad parameter", err)
	}
}

func TestParseAllocEdgeCases(t *testing.T) {
	bad := []struct {
		in, why string
	}{
		{"", "empty flag value"},
		{"blend", "blend without θ"},
		{"blend:", "blend with empty θ"},
		{"blend:abc", "θ not a float"},
		{"blend:-0.1", "θ below range"},
		{"blend:1.5", "θ above range"},
		{"nosuch", "unknown allocation"},
	}
	for _, tc := range bad {
		if got, err := ParseAlloc(tc.in); err == nil {
			t.Errorf("ParseAlloc(%q) = %v, want error (%s)", tc.in, got, tc.why)
		}
	}

	// Boundary θ values and case/space-insensitive names are accepted.
	for _, in := range []string{"blend:0", "blend:1", " BLEND:0.5 ", "Fair-Share"} {
		if _, err := ParseAlloc(in); err != nil {
			t.Errorf("ParseAlloc(%q) error: %v", in, err)
		}
	}
}

func TestParseDisciplineEdgeCases(t *testing.T) {
	for _, in := range []string{"", "  ", "nosuch", "fifo2"} {
		if got, err := ParseDiscipline(in); err == nil {
			t.Errorf("ParseDiscipline(%q) = %v, want error", in, got)
		}
	}
	for _, in := range []string{"FIFO", " fifo ", "Fair-Share", "FQ"} {
		if _, err := ParseDiscipline(in); err != nil {
			t.Errorf("ParseDiscipline(%q) error: %v", in, err)
		}
	}
}
