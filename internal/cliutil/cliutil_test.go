package cliutil

import (
	"math"
	"testing"

	"greednet/internal/utility"
)

func TestParseRates(t *testing.T) {
	r, err := ParseRates("0.1, 0.2,0.15")
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 3 || r[0] != 0.1 || r[1] != 0.2 || r[2] != 0.15 {
		t.Errorf("got %v", r)
	}
	for _, bad := range []string{"", "x", "0.1,-0.2", "0,0.1"} {
		if _, err := ParseRates(bad); err == nil {
			t.Errorf("ParseRates(%q) should fail", bad)
		}
	}
}

func TestParseUtility(t *testing.T) {
	u, err := ParseUtility("linear:1,0.3")
	if err != nil {
		t.Fatal(err)
	}
	if l, ok := u.(utility.Linear); !ok || l.A != 1 || l.Gamma != 0.3 {
		t.Errorf("got %#v", u)
	}
	if _, err := ParseUtility("power:1,2,1.5"); err != nil {
		t.Errorf("power: %v", err)
	}
	if _, err := ParseUtility("log:0.4,1"); err != nil {
		t.Errorf("log: %v", err)
	}
	if _, err := ParseUtility("sqrt:1,2"); err != nil {
		t.Errorf("sqrt: %v", err)
	}
	if _, err := ParseUtility("delay:1,2"); err != nil {
		t.Errorf("delay: %v", err)
	}
	for _, bad := range []string{"linear", "linear:1", "nope:1,2", "linear:a,b", "power:1,2"} {
		if _, err := ParseUtility(bad); err == nil {
			t.Errorf("ParseUtility(%q) should fail", bad)
		}
	}
}

func TestParseProfile(t *testing.T) {
	p, err := ParseProfile("linear:1,0.2; log:0.3,1")
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 {
		t.Errorf("profile length %d", len(p))
	}
	if _, err := ParseProfile(""); err == nil {
		t.Error("empty profile should fail")
	}
	if _, err := ParseProfile("linear:1,0.2; bogus:1"); err == nil {
		t.Error("bad member should fail")
	}
}

func TestParseAlloc(t *testing.T) {
	for _, good := range []string{"fair-share", "fs", "fifo", "proportional", "hol", "hol-largest", "blend:0.5"} {
		if _, err := ParseAlloc(good); err != nil {
			t.Errorf("ParseAlloc(%q): %v", good, err)
		}
	}
	for _, bad := range []string{"", "wfq", "blend:2", "blend:x"} {
		if _, err := ParseAlloc(bad); err == nil {
			t.Errorf("ParseAlloc(%q) should fail", bad)
		}
	}
}

func TestParseDiscipline(t *testing.T) {
	for _, good := range []string{"fifo", "lifo", "ps", "holps", "fq", "fairshare", "ratepriority"} {
		if _, err := ParseDiscipline(good); err != nil {
			t.Errorf("ParseDiscipline(%q): %v", good, err)
		}
	}
	if _, err := ParseDiscipline("red"); err == nil {
		t.Error("unknown discipline should fail")
	}
}

func TestCheckRate(t *testing.T) {
	for _, good := range []float64{0.1, 0.9, 1, 1e-9, 1e9} {
		if err := CheckRate(good); err != nil {
			t.Errorf("CheckRate(%v): %v", good, err)
		}
	}
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := CheckRate(bad); err == nil {
			t.Errorf("CheckRate(%v) should fail", bad)
		}
	}
}
