package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"greednet/internal/game"
)

// ParseClasses parses a class-aggregated profile: semicolon-separated
// "COUNTxSPEC@RATE" entries, e.g.
//
//	"125000xlinear:1,0.2@4e-7;125000xlinear:1,0.5@4e-7"
//
// COUNT is the class multiplicity (≥ 1), SPEC a utility spec in the
// ParseUtility grammar, and RATE the per-member starting rate.  The
// returned classes are validated but not canonicalized — hand them to
// game.NewClassGame, which sorts and merges duplicates.
func ParseClasses(s string) ([]game.Class, error) {
	var out []game.Class
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		countStr, rest, ok := strings.Cut(part, "x")
		if !ok {
			return nil, fmt.Errorf("cliutil: class %q: want COUNTxSPEC@RATE", part)
		}
		count, err := strconv.Atoi(strings.TrimSpace(countStr))
		if err != nil || count < 1 {
			return nil, fmt.Errorf("cliutil: class %q: count %q must be a positive integer", part, countStr)
		}
		specStr, rateStr, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("cliutil: class %q: missing @RATE", part)
		}
		u, err := ParseUtility(strings.TrimSpace(specStr))
		if err != nil {
			return nil, err
		}
		rate, err := strconv.ParseFloat(strings.TrimSpace(rateStr), 64)
		if err != nil {
			return nil, fmt.Errorf("cliutil: class %q: bad rate %q", part, rateStr)
		}
		if err := CheckRate(rate); err != nil {
			return nil, err
		}
		out = append(out, game.Class{U: u, Rate: rate, Count: count})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cliutil: empty class profile")
	}
	return out, nil
}
