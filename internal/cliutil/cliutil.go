// Package cliutil holds the flag-parsing helpers shared by the greednet
// command-line tools: rate lists, utility specs, allocation names, and
// simulator discipline names.
package cliutil

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/des"
	"greednet/internal/utility"
)

// CheckRate validates a single rate value: positive and finite (NaN and
// ±Inf rejected).  It is the one rate-validation rule shared by the CLI
// flag parsers and the greedd service boundary, so a rate that would
// poison a solver is rejected identically everywhere it can enter.
func CheckRate(v float64) error {
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("cliutil: rate %v must be positive and finite", v)
	}
	return nil
}

// ParseRates parses a comma-separated list of positive rates, e.g.
// "0.1,0.2,0.15".
func ParseRates(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("cliutil: bad rate %q: %w", p, err)
		}
		if err := CheckRate(v); err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cliutil: empty rate list %q", s)
	}
	return out, nil
}

// ParseUtility parses one utility spec of the form family:params, with
// families
//
//	linear:A,GAMMA     U = A·r − GAMMA·c
//	log:W,GAMMA        U = W·log r − GAMMA·c
//	sqrt:W,GAMMA       U = W·√r − GAMMA·c
//	power:A,GAMMA,P    U = A·r − GAMMA·c^P
//	delay:A,GAMMA      U = A·r − GAMMA·(c/r)
func ParseUtility(s string) (core.Utility, error) {
	name, argstr, found := strings.Cut(s, ":")
	if !found {
		return nil, fmt.Errorf("cliutil: utility spec %q needs family:params", s)
	}
	var args []float64
	for _, p := range strings.Split(argstr, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("cliutil: bad utility parameter %q: %w", p, err)
		}
		args = append(args, v)
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("cliutil: %s needs %d parameters, got %d", name, n, len(args))
		}
		return nil
	}
	switch strings.ToLower(name) {
	case "linear":
		if err := need(2); err != nil {
			return nil, err
		}
		return utility.Linear{A: args[0], Gamma: args[1]}, nil
	case "log":
		if err := need(2); err != nil {
			return nil, err
		}
		return utility.Log{W: args[0], Gamma: args[1]}, nil
	case "sqrt":
		if err := need(2); err != nil {
			return nil, err
		}
		return utility.Sqrt{W: args[0], Gamma: args[1]}, nil
	case "power":
		if err := need(3); err != nil {
			return nil, err
		}
		return utility.Power{A: args[0], Gamma: args[1], P: args[2]}, nil
	case "delay":
		if err := need(2); err != nil {
			return nil, err
		}
		return utility.DelaySensitive{A: args[0], Gamma: args[1]}, nil
	default:
		return nil, fmt.Errorf("cliutil: unknown utility family %q", name)
	}
}

// ParseProfile parses a semicolon-separated list of utility specs.
func ParseProfile(s string) (core.Profile, error) {
	var out core.Profile
	for _, spec := range strings.Split(s, ";") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		u, err := ParseUtility(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, u)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cliutil: empty profile %q", s)
	}
	return out, nil
}

// ParseAlloc resolves an allocation-function name:
// fair-share | proportional | hol-smallest | hol-largest | blend:THETA.
func ParseAlloc(s string) (core.Allocation, error) {
	name, arg, _ := strings.Cut(strings.ToLower(strings.TrimSpace(s)), ":")
	switch name {
	case "fair-share", "fairshare", "fs":
		return alloc.FairShare{}, nil
	case "proportional", "fifo":
		return alloc.Proportional{}, nil
	case "hol-smallest", "hol":
		return alloc.HOLPriority{Order: alloc.SmallestFirst}, nil
	case "hol-largest":
		return alloc.HOLPriority{Order: alloc.LargestFirst}, nil
	case "blend":
		th, err := strconv.ParseFloat(arg, 64)
		if err != nil || th < 0 || th > 1 {
			return nil, fmt.Errorf("cliutil: blend needs θ in [0,1], got %q", arg)
		}
		return alloc.Blend{Theta: th}, nil
	default:
		return nil, fmt.Errorf("cliutil: unknown allocation %q", s)
	}
}

// ParseDiscipline resolves a simulator discipline name:
// fifo | lifo | ps | holps | fairshare | ratepriority.
func ParseDiscipline(s string) (des.Discipline, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "fifo":
		return &des.FIFO{}, nil
	case "lifo":
		return &des.LIFOPreemptive{}, nil
	case "ps":
		return &des.ProcessorSharing{}, nil
	case "holps", "fq":
		return &des.HOLProcessorSharing{}, nil
	case "fairshare", "fair-share", "fs":
		return &des.FairShareSplitter{}, nil
	case "ratepriority", "priority":
		return &des.RatePriority{}, nil
	default:
		return nil, fmt.Errorf("cliutil: unknown discipline %q", s)
	}
}
