package randdist

import (
	"math"
	"math/rand"
	"testing"

	"greednet/internal/stats"
)

func sampleStats(d Dist, n int, seed int64) (mean, variance float64) {
	rng := rand.New(rand.NewSource(seed))
	var w stats.Welford
	for i := 0; i < n; i++ {
		w.Add(d.Sample(rng))
	}
	return w.Mean(), w.Variance()
}

func TestUnitMeans(t *testing.T) {
	for _, d := range []Dist{
		Exponential{}, Deterministic{}, Gamma{K: 0.5}, Gamma{K: 1}, Gamma{K: 4},
	} {
		mean, _ := sampleStats(d, 200000, 1)
		if math.Abs(mean-1) > 0.01 {
			t.Errorf("%s sample mean %v, want 1", d.Name(), mean)
		}
	}
}

func TestCV2Matches(t *testing.T) {
	for _, d := range []Dist{
		Exponential{}, Deterministic{}, Gamma{K: 0.5}, Gamma{K: 2}, GammaFromCV2(3),
	} {
		_, v := sampleStats(d, 300000, 2)
		if math.Abs(v-d.CV2()) > 0.05*(d.CV2()+0.01) {
			t.Errorf("%s sample variance %v, want CV² %v", d.Name(), v, d.CV2())
		}
	}
}

func TestSamplesNonnegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range []Dist{Exponential{}, Gamma{K: 0.3}, Gamma{K: 7}} {
		for i := 0; i < 10000; i++ {
			if x := d.Sample(rng); x < 0 || math.IsNaN(x) {
				t.Fatalf("%s produced %v", d.Name(), x)
			}
		}
	}
}

func TestFromCV2Dispatch(t *testing.T) {
	if _, ok := FromCV2(0).(Deterministic); !ok {
		t.Error("cv2=0 should be deterministic")
	}
	if _, ok := FromCV2(1).(Exponential); !ok {
		t.Error("cv2=1 should be exponential")
	}
	g, ok := FromCV2(2).(Gamma)
	if !ok || math.Abs(g.CV2()-2) > 1e-12 {
		t.Errorf("cv2=2 should be gamma with CV²=2, got %#v", g)
	}
}

func TestGammaFromCV2RoundTrip(t *testing.T) {
	for _, cv2 := range []float64{0.25, 0.5, 2, 5} {
		if g := GammaFromCV2(cv2); math.Abs(g.CV2()-cv2) > 1e-12 {
			t.Errorf("round trip failed for %v: %v", cv2, g.CV2())
		}
	}
}
