// Package randdist provides the service-time distributions used by the
// general-service (M/G/1) simulator: exponential, deterministic, and gamma
// with a chosen squared coefficient of variation.  All distributions here
// have unit mean so the server's load equals the total arrival rate.
package randdist

import (
	"fmt"
	"math"
	"math/rand"
)

// NewRand returns a deterministic stream seeded with seed.  It is the one
// sanctioned constructor for simulation randomness: the greedlint
// rngsource analyzer flags direct rand.New / rand.NewSource use outside
// this package, so every stochastic experiment is forced to be an
// explicit, reproducible function of its seed.  The stream is exactly
// rand.New(rand.NewSource(seed)), keeping historical fixed-seed outputs
// (EXPERIMENTS.md) byte-identical.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Dist is a nonnegative service-time distribution with unit mean.
type Dist interface {
	// Name identifies the distribution.
	Name() string
	// Sample draws one service time.
	Sample(rng *rand.Rand) float64
	// CV2 is the squared coefficient of variation (variance, since the
	// mean is 1).
	CV2() float64
}

// Exponential is the unit-mean exponential distribution (CV² = 1).
type Exponential struct{}

// Name implements Dist.
func (Exponential) Name() string { return "exponential" }

// Sample implements Dist.
func (Exponential) Sample(rng *rand.Rand) float64 { return rng.ExpFloat64() }

// CV2 implements Dist.
func (Exponential) CV2() float64 { return 1 }

// Deterministic is the constant unit service time (CV² = 0).
type Deterministic struct{}

// Name implements Dist.
func (Deterministic) Name() string { return "deterministic" }

// Sample implements Dist.
func (Deterministic) Sample(rng *rand.Rand) float64 { return 1 }

// CV2 implements Dist.
func (Deterministic) CV2() float64 { return 0 }

// Gamma is a unit-mean gamma distribution with shape K (CV² = 1/K).
type Gamma struct {
	// K is the shape parameter (> 0); the scale is 1/K so the mean is 1.
	K float64
}

// GammaFromCV2 builds the unit-mean gamma distribution with the given
// squared coefficient of variation (> 0).
func GammaFromCV2(cv2 float64) Gamma { return Gamma{K: 1 / cv2} }

// Name implements Dist.
func (g Gamma) Name() string { return fmt.Sprintf("gamma(k=%g)", g.K) }

// CV2 implements Dist.
func (g Gamma) CV2() float64 { return 1 / g.K }

// Sample implements Dist using the Marsaglia–Tsang method, with the
// standard boosting trick for shape < 1.
func (g Gamma) Sample(rng *rand.Rand) float64 {
	k := g.K
	boost := 1.0
	if k < 1 {
		// X_k = X_{k+1} · U^{1/k}.
		boost = math.Pow(rng.Float64(), 1/k)
		k++
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return boost * d * v / g.K
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return boost * d * v / g.K
		}
	}
}

// FromCV2 returns the natural unit-mean distribution with the requested
// squared coefficient of variation: deterministic at 0, exponential at 1,
// gamma otherwise.
func FromCV2(cv2 float64) Dist {
	switch {
	case cv2 == 0: //lint:allow floateq exact sentinel selecting the deterministic family
		return Deterministic{}
	case cv2 == 1: //lint:allow floateq exact sentinel selecting the exponential family
		return Exponential{}
	default:
		return GammaFromCV2(cv2)
	}
}
