package randdist

import "math/rand"

// Batched variate generation for the DES engines.  The engines' seeded
// streams are part of the repository's reproducibility contract (every
// EXPERIMENTS.md number is a function of its seed), so batching must
// not reorder a single draw.  Three shapes cover the engines:
//
//   - FillExp fills a workspace slice with consecutive ExpFloat64
//     draws — the event-queue seeding loops (one draw per source) are
//     exactly this shape, so prefetching them in one call is
//     order-preserving by construction.
//
//   - ExpBatch serves a run whose remaining draws are a pure
//     ExpFloat64 sequence (exponential service, stream-free
//     classifier).  With block size 1 each Next() performs the draw at
//     the exact point the unbatched engine would have; larger blocks
//     prefetch runs of draws that were going to be consecutive anyway.
//
//   - PairBatch serves the memoryless engines' strict per-iteration
//     (ExpFloat64, Float64) alternation.  Refills draw E,F,E,F,… in
//     today's consumption order; block size 1 is always safe (the two
//     draws of a pair are adjacent in the unbatched stream), larger
//     blocks require that nothing else draws from the rng mid-run.
//
// A block's trailing variates may be drawn past the run's final event;
// the rng is per-run and discarded, so no later consumer can observe
// the overshoot.  Differential tests in internal/des pin all of this
// against frozen unbatched engines, bit for bit.

// batchCap bounds a batch's buffer; blocks live inline in the struct so
// an engine-stack batch adds zero heap allocations.
const batchCap = 256

// FillExp fills dst with len(dst) consecutive rng.ExpFloat64 draws, in
// index order — byte-identical to the loop it replaces.
func FillExp(rng *rand.Rand, dst []float64) {
	for i := range dst {
		dst[i] = rng.ExpFloat64()
	}
}

// IsExponential reports whether d's Sample is exactly one
// rng.ExpFloat64 draw — the condition for funneling service draws
// through an ExpBatch.
func IsExponential(d Dist) bool {
	_, ok := d.(Exponential)
	return ok
}

// BlockSize picks a batch's block size: the full buffer when the run's
// draw order is provably batch-safe, else 1, which preserves the
// unbatched order no matter what else draws in between.
func BlockSize(batchSafe bool) int {
	if batchSafe {
		return batchCap
	}
	return 1
}

// ExpBatch serves ExpFloat64 draws from a prefetched block.
type ExpBatch struct {
	rng *rand.Rand
	k   int // block size (1..batchCap)
	pos int // next unread index; pos == k means empty
	buf [batchCap]float64
}

// Init readies the batch with the given block size (clamped to
// [1, 256]).  No draws happen until the first Next.
func (b *ExpBatch) Init(rng *rand.Rand, k int) {
	if k < 1 {
		k = 1
	}
	if k > batchCap {
		k = batchCap
	}
	b.rng = rng
	b.k = k
	b.pos = k
}

// Next returns the next exponential variate, refilling the block
// in-place when it runs dry.
//
//lint:hotpath
func (b *ExpBatch) Next() float64 {
	if b.pos >= b.k {
		b.refill()
	}
	v := b.buf[b.pos]
	b.pos++
	return v
}

//lint:hotpath
func (b *ExpBatch) refill() {
	for i := 0; i < b.k; i++ {
		b.buf[i] = b.rng.ExpFloat64()
	}
	b.pos = 0
}

// PairBatch serves (ExpFloat64, Float64) pairs in the memoryless
// engines' per-iteration draw order.
type PairBatch struct {
	rng *rand.Rand
	k   int
	pos int
	exp [batchCap]float64
	uni [batchCap]float64
}

// Init readies the batch with the given block size (clamped to
// [1, 256]).  No draws happen until the first Pair.
func (b *PairBatch) Init(rng *rand.Rand, k int) {
	if k < 1 {
		k = 1
	}
	if k > batchCap {
		k = batchCap
	}
	b.rng = rng
	b.k = k
	b.pos = k
}

// Pair returns the next (exponential, uniform) pair, refilling the
// block — E,F,E,F,… in stream order — when it runs dry.
//
//lint:hotpath
func (b *PairBatch) Pair() (e, u float64) {
	if b.pos >= b.k {
		b.refill()
	}
	e, u = b.exp[b.pos], b.uni[b.pos]
	b.pos++
	return e, u
}

//lint:hotpath
func (b *PairBatch) refill() {
	for i := 0; i < b.k; i++ {
		b.exp[i] = b.rng.ExpFloat64()
		b.uni[i] = b.rng.Float64()
	}
	b.pos = 0
}
