package randdist

import (
	"math"
	"testing"
)

// TestFillExpMatchesLoop pins FillExp against the loop it replaces:
// same seed, same draws, bit for bit.
func TestFillExpMatchesLoop(t *testing.T) {
	a, b := NewRand(11), NewRand(11)
	got := make([]float64, 100)
	FillExp(a, got)
	for i := range got {
		if want := b.ExpFloat64(); math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Fatalf("draw %d: got %v, want %v", i, got[i], want)
		}
	}
}

// TestExpBatchStreamOrder pins ExpBatch at every block size against the
// unbatched stream: a pure ExpFloat64 consumer sees identical values in
// identical order regardless of the prefetch block.
func TestExpBatchStreamOrder(t *testing.T) {
	for _, k := range []int{1, 2, 7, 256, 0, -5, 10_000} {
		ref := NewRand(42)
		var eb ExpBatch
		eb.Init(NewRand(42), k)
		for i := 0; i < 1000; i++ {
			if got, want := eb.Next(), ref.ExpFloat64(); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("k=%d draw %d: got %v, want %v", k, i, got, want)
			}
		}
	}
}

// TestPairBatchStreamOrder pins PairBatch's refill order (E,F,E,F,…)
// against the unbatched alternation for every block size.
func TestPairBatchStreamOrder(t *testing.T) {
	for _, k := range []int{1, 3, 256, 0, 10_000} {
		ref := NewRand(7)
		var pb PairBatch
		pb.Init(NewRand(7), k)
		for i := 0; i < 1000; i++ {
			e, u := pb.Pair()
			we, wu := ref.ExpFloat64(), ref.Float64()
			if math.Float64bits(e) != math.Float64bits(we) || math.Float64bits(u) != math.Float64bits(wu) {
				t.Fatalf("k=%d pair %d: got (%v,%v), want (%v,%v)", k, i, e, u, we, wu)
			}
		}
	}
}

// TestPairBatchBlockOneInterleaves proves the always-safe property of
// block size 1: draws made between pairs (a discipline consuming the
// shared rng) land at exactly the unbatched stream positions.
func TestPairBatchBlockOneInterleaves(t *testing.T) {
	ref := NewRand(3)
	rng := NewRand(3)
	var pb PairBatch
	pb.Init(rng, 1)
	for i := 0; i < 500; i++ {
		e, u := pb.Pair()
		we, wu := ref.ExpFloat64(), ref.Float64()
		if math.Float64bits(e) != math.Float64bits(we) || math.Float64bits(u) != math.Float64bits(wu) {
			t.Fatalf("pair %d diverged", i)
		}
		// Mid-iteration discipline draw from the same rng.
		if i%3 == 0 {
			if got, want := rng.Float64(), ref.Float64(); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("interleaved draw %d diverged: got %v want %v", i, got, want)
			}
		}
	}
}

// TestIsExponential pins the batch-safety predicate.
func TestIsExponential(t *testing.T) {
	if !IsExponential(Exponential{}) {
		t.Error("Exponential{} not recognized")
	}
	if IsExponential(Deterministic{}) || IsExponential(Gamma{K: 2}) || IsExponential(nil) {
		t.Error("non-exponential Dist recognized as exponential")
	}
}

// TestBlockSize pins the safe/unsafe block selection.
func TestBlockSize(t *testing.T) {
	if BlockSize(false) != 1 {
		t.Errorf("BlockSize(false) = %d, want 1", BlockSize(false))
	}
	if BlockSize(true) != batchCap {
		t.Errorf("BlockSize(true) = %d, want %d", BlockSize(true), batchCap)
	}
}
