package hotpath

import (
	"runtime"

	"greednet/internal/des"
)

// The events/sec headline family: the same seeded general-service run
// executed by the calendar-queue engine (des.RunG) and by the frozen
// container/heap baseline (des.RunGHeap), at three event-queue
// populations.  The two engines are bit-identical in results and event
// sequence (internal/des's differential suite pins that), so each pair
// processes EXACTLY the same events and the events/sec ratio reduces to
// the inverse runtime ratio — which is what greedbench -events gates on.
// Ratios are machine-relative by construction, so the gate travels
// across hosts, unlike absolute events/sec, which the JSON artifact
// records for trending only.

// EventScale is one population point of the events/sec family.
type EventScale struct {
	// Name is the stable identifier recorded in BENCH_events.json.
	Name string
	// Sources is the number of Poisson sources; the event-queue population
	// is Sources+1 (one pending arrival per source plus the in-service
	// completion).
	Sources int
	// Horizon is the simulated time span (events scale with it at ≈1.8
	// events per unit time under the fixed 0.9 total load).
	Horizon float64
	// RatioFloor is the minimum calendar/heap events-per-second ratio the
	// -events gate accepts.  The O(1)-vs-O(log N) gap widens with the
	// population, so the floor rises with Sources; at N=10² the calendar
	// only has to not lose.
	RatioFloor float64
}

// AllocsPerEventBudget is the -events gate's ceiling on steady-state
// allocations per event in the calendar-queue engine.  The two-horizon
// delta cancels all setup and ramp-up allocations, so the warm event
// loop must measure as allocation-free; the budget is nonzero only to
// absorb measurement noise (stray runtime allocations between the
// MemStats reads), not to license any per-event allocation.
const AllocsPerEventBudget = 0.01

// EventScales returns the benchmark family in emission order:
// N = 10², 10⁴, 10⁵ sources.
func EventScales() []EventScale {
	return []EventScale{
		{Name: "n1e2", Sources: 100, Horizon: 2e4, RatioFloor: 0.9},
		{Name: "n1e4", Sources: 10_000, Horizon: 5e4, RatioFloor: 1.3},
		// The largest scale runs a longer horizon so per-run event work
		// dominates the O(N) fixed costs both engines share (seeding the
		// first arrivals, assembling per-user statistics): events/sec is a
		// steady-state throughput claim, and a short horizon would dilute
		// the queue-op gap with identical setup time.
		{Name: "n1e5", Sources: 100_000, Horizon: 6e5, RatioFloor: 2.0},
	}
}

// eventConfig builds the scale's run: equal-rate sources at total load
// 0.9, near-zero warmup so every processed event is counted, and a fixed
// seed so calendar and heap runs consume identical streams.
func eventConfig(s EventScale, horizonScale float64) des.GConfig {
	rates := make([]float64, s.Sources)
	for i := range rates {
		rates[i] = 0.9 / float64(s.Sources)
	}
	return des.GConfig{
		Rates:   rates,
		Horizon: s.Horizon * horizonScale,
		Warmup:  1e-9,
		Seed:    17,
	}
}

// EventRun executes the calendar-queue engine at scale s with the
// horizon stretched by horizonScale, returning the number of processed
// (counted) events: arrivals plus departures.
func EventRun(s EventScale, horizonScale float64) (int64, error) {
	res, err := des.RunG(eventConfig(s, horizonScale))
	if err != nil {
		return 0, err
	}
	return res.Arrivals + res.Departures, nil
}

// EventRunHeap is EventRun on the frozen heap baseline; it processes the
// identical event sequence.
func EventRunHeap(s EventScale, horizonScale float64) (int64, error) {
	res, err := des.RunGHeap(eventConfig(s, horizonScale))
	if err != nil {
		return 0, err
	}
	return res.Arrivals + res.Departures, nil
}

// EventAllocsPerEvent measures the calendar engine's steady-state
// allocations per event by the two-horizon delta: runs at H and 2H
// allocate identically during setup and ramp-up (same config shapes,
// same pool high-water marks by determinism), so the malloc difference
// divided by the event difference isolates the warm per-event cost.
func EventAllocsPerEvent(s EventScale) (float64, error) {
	a1, e1, err := eventRunMallocs(s, 1)
	if err != nil {
		return 0, err
	}
	a2, e2, err := eventRunMallocs(s, 2)
	if err != nil {
		return 0, err
	}
	if e2 <= e1 {
		return 0, nil
	}
	da := float64(a2) - float64(a1)
	if da < 0 {
		da = 0
	}
	return da / float64(e2-e1), nil
}

func eventRunMallocs(s EventScale, horizonScale float64) (uint64, int64, error) {
	// Warm run: lets the first invocation's one-time costs (lazy runtime
	// init) happen outside the measured window.
	if _, err := EventRun(s, horizonScale); err != nil {
		return 0, 0, err
	}
	var m1, m2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m1)
	events, err := EventRun(s, horizonScale)
	if err != nil {
		return 0, 0, err
	}
	runtime.ReadMemStats(&m2)
	return m2.Mallocs - m1.Mallocs, events, nil
}
