// Package hotpath pins the performance of the repository's hottest code
// paths.  Each Case is a named micro-benchmark runnable both by `go test
// -bench` (see hotpath_test.go) and programmatically by greedbench's
// -hotpath flag, which times every case with testing.Benchmark and writes
// the results — ns/op, allocs/op, bytes/op — to BENCH_hotpath.json.
//
// Cases marked Gated are paths whose warm steady state must stay at or
// under their allocation Budget per operation — zero for the workspace
// fast paths, a small audited number for end-to-end cases whose results
// are freshly allocated by contract (SolveNashWS's R and C, des.Run's
// result vectors).  A gated case measuring above its budget is a perf
// regression and fails the emitter.  Cases with a Baseline name the
// legacy implementation benchmarked alongside them, so the JSON artifact
// carries the before/after comparison (the ≥5× allocs/op acceptance
// criterion) instead of a bare number.
package hotpath

import (
	"context"
	"math"
	"sort"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/des"
	"greednet/internal/game"
	"greednet/internal/mm1"
	"greednet/internal/utility"
)

// Case is one named micro-benchmark.
type Case struct {
	// Name is the stable identifier recorded in BENCH_hotpath.json.
	Name string
	// Gated marks the allocation-gated paths: allocs/op must not exceed
	// Budget.
	Gated bool
	// Budget is the allocs/op ceiling for a gated case.  The workspace
	// fast paths leave it 0 (zero-alloc); end-to-end cases budget the
	// allocations their contracts require (fresh result vectors), so any
	// *new* allocation on the path still trips the gate.
	Budget int64
	// Baseline, when non-empty, names the legacy case this one replaced.
	Baseline string
	// Bench runs the benchmark; it must call b.ReportAllocs so the
	// programmatic testing.Benchmark results carry allocation counts.
	Bench func(b *testing.B)
}

// rates64 is the fixed 64-user profile the allocation benches share:
// feasible (Σ < 1), unsorted, with exact ties to exercise the stable
// argsort's tie-breaking.
func rates64() []float64 {
	r := make([]float64, 64)
	for i := range r {
		r[i] = (0.3 + 0.5*float64(i%7)/7) / 64
	}
	return r
}

// Cases returns the hot-path benchmark suite in emission order: the
// per-user paths below, then the class-solver headline scales
// (classes.go).
func Cases() []Case {
	cases := []Case{
		{
			Name:     "fairshare_congestion_into_n64",
			Gated:    true,
			Baseline: "fairshare_congestion_legacy_n64",
			Bench: func(b *testing.B) {
				r := rates64()
				if !core.Feasible(r) {
					b.Fatal("hotpath: rates64 profile is infeasible")
				}
				dst := make([]float64, len(r))
				var ws core.Workspace
				(alloc.FairShare{}).CongestionInto(&ws, dst, r) // warm
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					(alloc.FairShare{}).CongestionInto(&ws, dst, r)
				}
			},
		},
		{
			Name: "fairshare_congestion_legacy_n64",
			Bench: func(b *testing.B) {
				r := rates64()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					legacyFairShareCongestion(r)
				}
			},
		},
		{
			Name:  "proportional_congestion_into_n64",
			Gated: true,
			Bench: func(b *testing.B) {
				r := rates64()
				if !core.Feasible(r) {
					b.Fatal("hotpath: rates64 profile is infeasible")
				}
				dst := make([]float64, len(r))
				var ws core.Workspace
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					(alloc.Proportional{}).CongestionInto(&ws, dst, r)
				}
			},
		},
		{
			Name:     "bestresponse_fairshare_ws_n64",
			Gated:    true,
			Baseline: "bestresponse_fairshare_legacy_n64",
			Bench: func(b *testing.B) {
				r := rates64()
				var u core.Utility = utility.NewLinear(1, 0.25)
				ws := game.NewWorkspace()
				game.BestResponseWS(ws, alloc.FairShare{}, u, r, 5, game.BROptions{}) // warm
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					game.BestResponseWS(ws, alloc.FairShare{}, u, r, 5, game.BROptions{})
				}
			},
		},
		{
			Name: "bestresponse_fairshare_legacy_n64",
			Bench: func(b *testing.B) {
				r := rates64()
				var u core.Utility = utility.NewLinear(1, 0.25)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					legacyBestResponse(u, r, 5)
				}
			},
		},
		{
			Name: "solvenash_fairshare_n8",
			// Per solve: the returned R (append) and C (fresh Congestion
			// vector) the NashResult contract promises, plus the few
			// fixed-size pieces behind them.  Everything else rides the
			// workspace; a 6th allocation means scratch started escaping.
			Gated:  true,
			Budget: 5,
			Bench: func(b *testing.B) {
				us := utility.Identical(utility.NewLinear(1, 0.25), 8)
				r0 := make([]float64, 8)
				for i := range r0 {
					r0[i] = 0.4 / 8
				}
				ws := game.NewWorkspace()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := game.SolveNashWS(context.Background(), ws, alloc.FairShare{}, us, r0, game.NashOptions{}); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			Name: "des_run",
			// Per run: the Config slices built inside the loop, the
			// lazy-queue accumulators, and the Result vectors — setup and
			// teardown, not per-event work.  The per-event path (bump,
			// pickSource, the event loop) is allocation-free, which is what
			// pins the budget at run-setup scale instead of event scale.
			Gated:  true,
			Budget: 29,
			Bench: func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cfg := des.Config{
						Rates:      []float64{0.2, 0.3, 0.2},
						Discipline: &des.FIFO{},
						Horizon:    2000,
						Seed:       11,
					}
					if _, err := des.Run(cfg); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
	}
	return append(cases, classCases()...)
}

// legacyFairShareCongestion is the pre-workspace Fair Share evaluation,
// kept as the benchmark baseline: fresh sort.SliceStable argsort plus a
// fresh output vector per call.
func legacyFairShareCongestion(r []float64) []float64 {
	n := len(r)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return r[idx[a]] < r[idx[b]] })
	prefix := 0.0
	prevG := 0.0
	c := 0.0
	for k := 1; k <= n; k++ {
		i := idx[k-1]
		xk := float64(n-k+1)*r[i] + prefix
		gk := mm1.G(xk)
		if math.IsInf(gk, 1) {
			for m := k; m <= n; m++ {
				out[idx[m-1]] = math.Inf(1)
			}
			return out
		}
		c += (gk - prevG) / float64(n-k+1)
		out[i] = c
		prevG = gk
		prefix += r[i]
	}
	return out
}

// legacyBestResponse is the pre-workspace best-response search, kept as
// the benchmark baseline: a fresh r|ⁱx copy per call and a full Fair
// Share evaluation (fresh sort, fresh vectors) per probe, with the same
// grid+golden schedule and defaults as the live solver.
func legacyBestResponse(u core.Utility, r []core.Rate, i int) (float64, float64) {
	rr := append([]float64(nil), r...)
	h := func(x float64) float64 {
		rr[i] = x
		return u.Value(x, legacyFairShareCongestion(rr)[i])
	}
	const lo, hi = 1e-9, 1 - 1e-9
	const grid = 64
	const tol = 1e-10
	return maximizeGrid(h, lo, hi, grid, tol)
}

// maximizeGrid is the grid-seeded golden-section maximizer, copied from
// the solver so the legacy baseline probes on the identical schedule.
func maximizeGrid(f func(float64) float64, a, b float64, n int, tol float64) (float64, float64) {
	h := (b - a) / float64(n)
	bestI, bestF := 0, math.Inf(-1)
	for i := 0; i <= n; i++ {
		if v := f(a + float64(i)*h); v > bestF {
			bestF, bestI = v, i
		}
	}
	lo := a + float64(bestI-1)*h
	if bestI == 0 {
		lo = a
	}
	hi := a + float64(bestI+1)*h
	if bestI == n {
		hi = b
	}
	const invPhi = 0.6180339887498949
	c := hi - invPhi*(hi-lo)
	d := lo + invPhi*(hi-lo)
	fc, fd := f(c), f(d)
	for hi-lo > tol {
		if fc > fd {
			hi, d, fd = d, c, fc
			c = hi - invPhi*(hi-lo)
			fc = f(c)
		} else {
			lo, c, fc = c, d, fd
			d = lo + invPhi*(hi-lo)
			fd = f(d)
		}
	}
	x := lo + (hi-lo)/2
	return x, f(x)
}
