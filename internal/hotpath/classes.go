package hotpath

import (
	"context"
	"fmt"
	"math"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/game"
	"greednet/internal/utility"
)

// The class-solver benchmark family behind `greedbench -classes` and the
// solvenashclass_* registry cases: K utility classes carrying N users in
// total, solved by the O(K)-per-step class arithmetic.  The headline
// configuration — K = 8 classes, N = 10^6 users — is the regime the
// per-user solver cannot touch (10^6 inner line searches per round);
// the class solver's cost depends on K alone, so the same equilibrium
// falls out in milliseconds, and BENCH_classes.json pins both that
// ceiling and the warm steady state's zero allocs/op.

// ClassScale is one (K, N) configuration of the class-solver family.
type ClassScale struct {
	// Name is the stable identifier recorded in BENCH_classes.json.
	Name string
	// K is the class count, N the total user count (multiplicity N/K per
	// class).
	K, N int
	// NsCeiling is the ns/op gate ceiling for the class solve at this
	// scale.  Ceilings are set an order of magnitude above a warm
	// measurement on a commodity core: they catch "the solve went
	// accidentally O(N)" — the failure mode that matters — without
	// contending with host-to-host variance.
	NsCeiling float64
	// ExactCompare marks scales small enough to also time the exact
	// per-user solver on the expanded profile, so the artifact carries a
	// measured class-vs-exact speedup instead of a claim.
	ExactCompare bool
}

// ClassScales returns the -classes benchmark family in emission order.
func ClassScales() []ClassScale {
	return []ClassScale{
		{Name: "k8_n64", K: 8, N: 64, NsCeiling: 10e6, ExactCompare: true},
		{Name: "k8_n256", K: 8, N: 256, NsCeiling: 10e6, ExactCompare: true},
		{Name: "k8_n4096", K: 8, N: 4096, NsCeiling: 10e6},
		{Name: "k8_n1e6", K: 8, N: 1_000_000, NsCeiling: 10e6},
		{Name: "k64_n1e6", K: 64, N: 1_000_000, NsCeiling: 100e6},
	}
}

// ClassGameFor builds the family's canonical K-class game over N users:
// linear utilities with K distinct γ spread over [0.2, 0.8] (distinct
// specs keep the classes from merging), every member demanding 0.4/N so
// the start is feasible at total load 0.4 for every scale.
func ClassGameFor(k, n int) (game.ClassGame, error) {
	if k < 1 || n < k || n%k != 0 {
		return game.ClassGame{}, fmt.Errorf("hotpath: class scale needs 1 <= K <= N with K | N, got K=%d N=%d", k, n)
	}
	classes := make([]game.Class, k)
	for j := range classes {
		classes[j] = game.Class{
			U:     utility.NewLinear(1, 0.2+0.6*float64(j)/float64(k)),
			Rate:  0.4 / float64(n),
			Count: n / k,
		}
	}
	return game.NewClassGame(classes)
}

// ClassNashOpts returns the family's solve options.  Tol sits at 1e-9:
// below the per-member rate scale even at N = 10^6 (0.4/N = 4e-7), yet
// above the ≈1e-10 argmax noise of the inner golden-section searches, so
// every scale converges instead of jittering at the tolerance floor.
func ClassNashOpts() game.ClassNashOptions {
	return game.ClassNashOptions{NashOptions: game.NashOptions{
		Tol:     1e-9,
		Damping: 0.5,
		MaxIter: 2000,
	}}
}

// ClassBench owns the warm state for repeated solves of one scale: the
// game, a workspace, and the result destinations, so each Solve is the
// pure steady-state cost the allocation gate measures.
type ClassBench struct {
	cg         game.ClassGame
	ws         *game.ClassWorkspace
	r0         []float64
	rdst, cdst []float64
	opt        game.ClassNashOptions
}

// NewClassBench builds the warm harness for a scale and runs one solve
// to materialize every workspace buffer.
func NewClassBench(s ClassScale) (*ClassBench, error) {
	cg, err := ClassGameFor(s.K, s.N)
	if err != nil {
		return nil, err
	}
	k := cg.K()
	cb := &ClassBench{
		cg:   cg,
		ws:   game.NewClassWorkspace(),
		r0:   cg.Rates(),
		rdst: make([]float64, k),
		cdst: make([]float64, k),
		opt:  ClassNashOpts(),
	}
	res, err := cb.Solve()
	if err != nil {
		return nil, err
	}
	if !res.Converged {
		return nil, fmt.Errorf("hotpath: class scale %s did not converge in %d rounds", s.Name, res.Iters)
	}
	return cb, nil
}

// Solve runs one full class-aggregated Nash solve from the family start.
// With the harness warm this is allocation-free.
func (cb *ClassBench) Solve() (game.ClassNashResult, error) {
	return game.SolveNashClassInto(context.Background(), cb.ws, alloc.FairShare{}, cb.cg, cb.r0, cb.opt, cb.rdst, cb.cdst)
}

// ExactSolve solves the same game with the per-user solver on the
// expanded profile — the baseline the class-vs-exact speedup in
// BENCH_classes.json is measured against.  O(N) per inner step; only
// the ExactCompare scales pay for it.
func (cb *ClassBench) ExactSolve() (game.NashResult, error) {
	us, r0 := cb.cg.Expand()
	return game.SolveNashWS(context.Background(), game.NewWorkspace(), alloc.FairShare{}, us, r0, cb.opt.NashOptions)
}

// ClassBitEquality verifies the fast class arithmetic against the exact
// per-user solver at the two scales where bit-equality is the contract:
// K = N (every class multiplicity one — the summation-order contract
// degenerates to the per-user expression sequence) and K = 1 (one
// symmetric class).  It returns nil when every solved rate and
// congestion is Float64bits-equal, and a description of the first
// mismatch otherwise.  greedbench -classes runs this before timing, so
// BENCH_classes.json never records the speed of a solver that drifted
// off the exact answers.
func ClassBitEquality() error {
	const n = 64
	for _, k := range []int{n, 1} {
		cg, err := ClassGameFor(k, n)
		if err != nil {
			return err
		}
		opt := ClassNashOpts()
		if k == 1 {
			// A multiplicity-n class carries fl's position-dependent
			// rounding in the expansion, which pure class arithmetic
			// cannot reproduce bit for bit; the mirror mode runs the
			// per-user machinery with class-synchronized updates and is
			// the documented bit-equality contract at K = 1.
			opt.Summation = game.ClassMirror
		}
		cres, err := game.SolveNashClassWS(context.Background(), nil, alloc.FairShare{}, cg, nil, opt)
		if err != nil {
			return err
		}
		us, r0 := cg.Expand()
		xres, err := game.SolveNashWS(context.Background(), nil, alloc.FairShare{}, us, r0, opt.NashOptions)
		if err != nil {
			return err
		}
		if cres.Converged != xres.Converged || cres.Iters != xres.Iters {
			return fmt.Errorf("hotpath: K=%d N=%d converged/iters (%v, %d) vs exact (%v, %d)",
				k, n, cres.Converged, cres.Iters, xres.Converged, xres.Iters)
		}
		// The class result reports each class at its first member in
		// canonical expansion order — the same positions the in-tree
		// differential tests pin (mid-iteration rounding can split
		// same-class members by an ulp, so members past the first are
		// tolerance-equal, not bit-equal).
		pos := 0
		for j, c := range cg.Classes {
			if math.Float64bits(cres.R[j]) != math.Float64bits(xres.R[pos]) {
				return fmt.Errorf("hotpath: K=%d N=%d class %d rate: class %v, exact %v", k, n, j, cres.R[j], xres.R[pos])
			}
			if math.Float64bits(cres.C[j]) != math.Float64bits(xres.C[pos]) {
				return fmt.Errorf("hotpath: K=%d N=%d class %d congestion: class %v, exact %v", k, n, j, cres.C[j], xres.C[pos])
			}
			pos += c.Count
		}
	}
	return nil
}

// classCases returns the class-solver entries of the hot-path registry.
// Both headline scales are gated at zero allocations: the Into core with
// a warm workspace must not touch the heap, whatever N is.
func classCases() []Case {
	bench := func(s ClassScale) func(b *testing.B) {
		return func(b *testing.B) {
			cb, err := NewClassBench(s)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cb.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	var out []Case
	for _, s := range ClassScales() {
		if s.N < 1_000_000 {
			continue // the registry carries the headline scales; -classes sweeps the rest
		}
		out = append(out, Case{
			Name:  "solvenashclass_fairshare_" + s.Name,
			Gated: true,
			Bench: bench(s),
		})
	}
	return out
}
