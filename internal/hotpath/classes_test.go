package hotpath

import (
	"testing"
)

// classChecks builds the warm AllocsPerRun closures for the gated
// class-solver registry cases, merged into TestGatedCasesWithinAllocBudget's
// check table.
func classChecks(t *testing.T) map[string]func() {
	t.Helper()
	checks := make(map[string]func())
	for _, s := range ClassScales() {
		if s.N < 1_000_000 {
			continue // only the headline scales are in the registry
		}
		cb, err := NewClassBench(s)
		if err != nil {
			t.Fatal(err)
		}
		checks["solvenashclass_fairshare_"+s.Name] = func() {
			if _, err := cb.Solve(); err != nil {
				t.Fatal(err)
			}
		}
	}
	return checks
}

// TestClassBitEquality runs the differential check greedbench -classes
// gates on: fast class arithmetic Float64bits-equal to the exact
// per-user solver at K = N and (via the mirror mode) K = 1.
func TestClassBitEquality(t *testing.T) {
	if err := ClassBitEquality(); err != nil {
		t.Fatal(err)
	}
}

// TestClassScalesMetadata pins the family's invariants: unique names,
// divisible populations, positive ceilings, and at least one scale that
// carries the exact-solver comparison and one at the N = 10^6 headline.
func TestClassScalesMetadata(t *testing.T) {
	names := make(map[string]bool)
	exact, headline := false, false
	for _, s := range ClassScales() {
		if s.Name == "" || names[s.Name] {
			t.Fatalf("scale name %q empty or duplicate", s.Name)
		}
		names[s.Name] = true
		if s.K < 1 || s.N < s.K || s.N%s.K != 0 {
			t.Fatalf("scale %s: K=%d must divide N=%d", s.Name, s.K, s.N)
		}
		if s.NsCeiling <= 0 {
			t.Fatalf("scale %s: ns ceiling %v must be positive", s.Name, s.NsCeiling)
		}
		if s.ExactCompare {
			exact = true
		}
		if s.N >= 1_000_000 {
			headline = true
		}
	}
	if !exact {
		t.Fatal("no scale carries the exact-solver comparison")
	}
	if !headline {
		t.Fatal("no scale at the N=10^6 headline")
	}
}

// TestClassBenchConvergesAtHeadline checks the headline configuration
// solves to a converged equilibrium whose per-member rates sit at the
// 1/N scale — the result the README's milliseconds-at-a-million claim
// is about, not just a fast return.
func TestClassBenchConvergesAtHeadline(t *testing.T) {
	var head *ClassScale
	for _, s := range ClassScales() {
		if s.K == 8 && s.N == 1_000_000 {
			sc := s
			head = &sc
		}
	}
	if head == nil {
		t.Fatal("k8_n1e6 scale missing")
	}
	cb, err := NewClassBench(*head)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cb.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("headline solve did not converge in %d rounds", res.Iters)
	}
	for j, r := range res.R {
		if r <= 0 || r > 100.0/1e6 {
			t.Errorf("class %d equilibrium rate %g outside the per-member 1/N scale", j, r)
		}
	}
}
