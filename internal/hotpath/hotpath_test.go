package hotpath

import (
	"context"
	"math"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/des"
	"greednet/internal/game"
	"greednet/internal/utility"
)

// BenchmarkHotpaths runs every registered case as a sub-benchmark, so
// `go test -bench Hotpaths ./internal/hotpath` reports the same numbers
// greedbench -hotpath writes to BENCH_hotpath.json.
func BenchmarkHotpaths(b *testing.B) {
	for _, c := range Cases() {
		b.Run(c.Name, c.Bench)
	}
}

// Every gated case must measure at or under its allocation budget per
// operation once its workspace is warm — zero for the fast paths, the
// audited result-allocation count for the end-to-end cases.  This is the
// regression gate behind greedbench -hotpath's exit status, run here
// directly so a plain `go test` catches a path that started escaping to
// the heap.
func TestGatedCasesWithinAllocBudget(t *testing.T) {
	r := rates64()
	dst := make([]float64, len(r))
	var ws core.Workspace
	var u core.Utility = utility.NewLinear(1, 0.25)
	gws := game.NewWorkspace()
	game.BestResponseWS(gws, alloc.FairShare{}, u, r, 5, game.BROptions{}) // warm

	us := utility.Identical(utility.NewLinear(1, 0.25), 8)
	r0 := make([]float64, 8)
	for i := range r0 {
		r0[i] = 0.4 / 8
	}
	nws := game.NewWorkspace()

	checks := map[string]func(){
		"fairshare_congestion_into_n64": func() {
			(alloc.FairShare{}).CongestionInto(&ws, dst, r)
		},
		"proportional_congestion_into_n64": func() {
			(alloc.Proportional{}).CongestionInto(&ws, dst, r)
		},
		"bestresponse_fairshare_ws_n64": func() {
			game.BestResponseWS(gws, alloc.FairShare{}, u, r, 5, game.BROptions{})
		},
		"solvenash_fairshare_n8": func() {
			if _, err := game.SolveNashWS(context.Background(), nws, alloc.FairShare{}, us, r0, game.NashOptions{}); err != nil {
				t.Fatal(err)
			}
		},
		"des_run": func() {
			cfg := des.Config{
				Rates:      []float64{0.2, 0.3, 0.2},
				Discipline: &des.FIFO{},
				Horizon:    2000,
				Seed:       11,
			}
			if _, err := des.Run(cfg); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, fn := range classChecks(t) {
		checks[name] = fn
	}
	for _, c := range Cases() {
		if !c.Gated {
			continue
		}
		fn, ok := checks[c.Name]
		if !ok {
			t.Fatalf("gated case %q has no AllocsPerRun check; add one", c.Name)
		}
		fn() // warm outside the measured runs
		if allocs := testing.AllocsPerRun(200, fn); allocs > float64(c.Budget) {
			t.Errorf("%s: %.1f allocs/op, want <= %d", c.Name, allocs, c.Budget)
		}
	}
}

// The legacy baselines must still compute the same answers as the live
// fast paths — a baseline that drifted would make the before/after
// comparison in BENCH_hotpath.json meaningless.
func TestLegacyBaselinesStillAgree(t *testing.T) {
	r := rates64()

	want := (alloc.FairShare{}).Congestion(r)
	got := legacyFairShareCongestion(r)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("fair share congestion[%d]: legacy %v, live %v", i, got[i], want[i])
		}
	}

	var u core.Utility = utility.NewLinear(1, 0.25)
	wx, wv := game.BestResponse(alloc.FairShare{}, u, r, 5, game.BROptions{})
	gx, gv := legacyBestResponse(u, r, 5)
	if math.Float64bits(gx) != math.Float64bits(wx) || math.Float64bits(gv) != math.Float64bits(wv) {
		t.Fatalf("best response: legacy (%v, %v), live (%v, %v)", gx, gv, wx, wv)
	}
}

// Case metadata must be coherent: names unique and non-empty, and every
// Baseline reference must resolve to a registered case.
func TestCaseMetadata(t *testing.T) {
	names := make(map[string]bool)
	for _, c := range Cases() {
		if c.Name == "" || c.Bench == nil {
			t.Fatalf("case %+v missing name or bench", c)
		}
		if names[c.Name] {
			t.Fatalf("duplicate case name %q", c.Name)
		}
		names[c.Name] = true
	}
	for _, c := range Cases() {
		if c.Baseline != "" && !names[c.Baseline] {
			t.Fatalf("case %q references unknown baseline %q", c.Name, c.Baseline)
		}
	}
}
