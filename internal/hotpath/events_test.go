package hotpath

import "testing"

// BenchmarkEventsPerSec runs the events/sec family as sub-benchmarks:
// the calendar-queue engine and its frozen heap baseline at each
// population scale, with the processed-events rate attached as a custom
// metric.  `go test -bench EventsPerSec ./internal/hotpath` reports the
// same measurements greedbench -events writes to BENCH_events.json.
func BenchmarkEventsPerSec(b *testing.B) {
	for _, s := range EventScales() {
		events, err := EventRun(s, 1)
		if err != nil {
			b.Fatal(err)
		}
		bench := func(run func(EventScale, float64) (int64, error)) func(b *testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := run(s, 1); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
			}
		}
		b.Run("calq/"+s.Name, bench(EventRun))
		b.Run("heap/"+s.Name, bench(EventRunHeap))
	}
}

// The two engines must process identical event counts — they are pinned
// bit-identical in internal/des; this guards the benchmark pairing
// itself (same config, same seed) so the events/sec ratio stays a pure
// runtime ratio.
func TestEventEnginesProcessSameEvents(t *testing.T) {
	s := EventScales()[0]
	calq, err := EventRun(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := EventRunHeap(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if calq != heap {
		t.Fatalf("event counts diverged: calendar %d, heap %d", calq, heap)
	}
	if calq < int64(float64(s.Horizon)) {
		t.Fatalf("suspiciously few events (%d) for horizon %g", calq, s.Horizon)
	}
}

// The warm calendar-queue event loop must be allocation-free at every
// scale: the two-horizon delta cancels setup and ramp-up, so anything
// above the noise budget means a per-event allocation crept in.
func TestEventAllocsPerEventWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run allocation measurement")
	}
	for _, s := range EventScales() {
		ape, err := EventAllocsPerEvent(s)
		if err != nil {
			t.Fatal(err)
		}
		if ape > AllocsPerEventBudget {
			t.Errorf("%s: %.4f allocs/event, budget %g", s.Name, ape, AllocsPerEventBudget)
		}
	}
}

// Scale metadata must be coherent: unique names, rising populations and
// ratio floors, and a horizon long enough that per-run event counts
// dwarf the population (so seeding cost cannot masquerade as steady
// state).
func TestEventScaleMetadata(t *testing.T) {
	names := make(map[string]bool)
	prevSources := 0
	for _, s := range EventScales() {
		if s.Name == "" || names[s.Name] {
			t.Fatalf("bad or duplicate scale name %q", s.Name)
		}
		names[s.Name] = true
		if s.Sources <= prevSources {
			t.Fatalf("scale %s: sources %d not increasing", s.Name, s.Sources)
		}
		prevSources = s.Sources
		if s.RatioFloor <= 0 {
			t.Fatalf("scale %s: ratio floor %g not positive", s.Name, s.RatioFloor)
		}
		if s.Horizon < float64(s.Sources) {
			t.Fatalf("scale %s: horizon %g shorter than population %d", s.Name, s.Horizon, s.Sources)
		}
	}
}
