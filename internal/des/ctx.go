package des

import (
	"context"

	"greednet/internal/core"
)

// ctxGateEvery is how many events pass between context polls in the DES
// event loops.  A power of two keeps the gate a mask-and-compare; 4096
// events is ~microseconds of simulation work, so cancellation latency is
// negligible while the poll cost is amortized to nothing.
const ctxGateEvery = 4096

// ctxGate polls a context once every ctxGateEvery calls.  The zero-ish
// value (ctx set, n zero) is ready to use; a nil ctx never fires.
type ctxGate struct {
	ctx context.Context
	n   uint
}

// Err reports the typed core.ErrCanceled / core.ErrDeadline once the
// context fires, checking at the gate cadence.  The very first call polls
// (so a dead-on-arrival context stops a run before any event), then every
// ctxGateEvery-th call after that.
//
//lint:hotpath
func (g *ctxGate) Err() error {
	open := g.n&(ctxGateEvery-1) == 0
	g.n++
	if !open {
		return nil
	}
	return core.CtxErr(g.ctx)
}
