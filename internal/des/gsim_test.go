package des

import (
	"math"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/mm1"
	"greednet/internal/randdist"
)

func runG(t *testing.T, cfg GConfig) Result {
	t.Helper()
	res, err := RunG(cfg)
	if err != nil {
		t.Fatalf("RunG: %v", err)
	}
	return res
}

func TestGFIFOMatchesPollaczekKhinchine(t *testing.T) {
	// Total queue of M/G/1 FIFO must match L(x) = x + x²(1+cv²)/(2(1−x)).
	rates := []float64{0.2, 0.3}
	for _, cv2 := range []float64{0, 1, 2.5} {
		model := mm1.MG1{CV2: cv2}
		want := model.L(0.5)
		res := runG(t, GConfig{
			Rates:   rates,
			Service: randdist.FromCV2(cv2),
			Horizon: 4e5,
			Seed:    11,
		})
		if math.Abs(res.TotalAvgQueue-want) > 0.06*want {
			t.Errorf("cv²=%v: total queue %v, want P-K %v", cv2, res.TotalAvgQueue, want)
		}
		// Class-blind FIFO splits congestion in proportion to rate.
		prop := alloc.ProportionalG{Model: model}.Congestion(rates)
		for i := range rates {
			if math.Abs(res.AvgQueue[i]-prop[i]) > math.Max(5*res.QueueCI95[i], 0.06*prop[i]) {
				t.Errorf("cv²=%v user %d: %v, want %v", cv2, i, res.AvgQueue[i], prop[i])
			}
		}
	}
}

func TestGExponentialMatchesMemorylessEngine(t *testing.T) {
	// With exponential service both engines sample the same CTMC.
	rates := []float64{0.15, 0.35}
	g := runG(t, GConfig{Rates: rates, Service: randdist.Exponential{}, Horizon: 3e5, Seed: 12})
	m, err := Run(Config{Rates: rates, Discipline: &FIFO{}, Horizon: 3e5, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rates {
		tol := 5 * (g.QueueCI95[i] + m.QueueCI95[i])
		if math.Abs(g.AvgQueue[i]-m.AvgQueue[i]) > tol {
			t.Errorf("engines disagree for user %d: %v vs %v (±%v)",
				i, g.AvgQueue[i], m.AvgQueue[i], tol)
		}
	}
}

func TestGSerialSplitterMatchesTablePriorityG(t *testing.T) {
	// The Table-1 construction under general service realizes exactly the
	// preemptive-resume priority allocation TablePriorityG (which equals
	// the serial ideal only at cv² = 1).
	rates := []float64{0.1, 0.15, 0.2, 0.25}
	for _, cv2 := range []float64{0, 1, 2} {
		want := alloc.TablePriorityG{Model: mm1.MG1{CV2: cv2}}.Congestion(rates)
		res := runG(t, GConfig{
			Rates:    rates,
			Service:  randdist.FromCV2(cv2),
			Classify: &SerialClass{},
			Horizon:  5e5,
			Seed:     14,
		})
		for i := range rates {
			tol := math.Max(5*res.QueueCI95[i], 0.05*want[i]+0.01)
			if math.Abs(res.AvgQueue[i]-want[i]) > tol {
				t.Errorf("cv²=%v user %d: DES %v, table-priority-G %v (±%v)",
					cv2, i, res.AvgQueue[i], want[i], tol)
			}
		}
	}
}

func TestGRankClassMatchesHOLPriorityG(t *testing.T) {
	// One class per user (ascending rate) under general service matches
	// the preemptive-resume priority sojourn formulas.
	rates := []float64{0.1, 0.2, 0.3}
	for _, cv2 := range []float64{0, 2} {
		want := alloc.HOLPriorityG{Model: mm1.MG1{CV2: cv2}}.Congestion(rates)
		res := runG(t, GConfig{
			Rates:    rates,
			Service:  randdist.FromCV2(cv2),
			Classify: &RankClass{},
			Horizon:  5e5,
			Seed:     15,
		})
		for k := range rates {
			tol := math.Max(5*res.QueueCI95[k], 0.06*want[k]+0.01)
			if math.Abs(res.AvgQueue[k]-want[k]) > tol {
				t.Errorf("cv²=%v class %d: DES %v, analytic %v (±%v)",
					cv2, k, res.AvgQueue[k], want[k], tol)
			}
		}
	}
}

func TestGLittlesLaw(t *testing.T) {
	rates := []float64{0.2, 0.3}
	res := runG(t, GConfig{
		Rates:    rates,
		Service:  randdist.FromCV2(2),
		Classify: &SerialClass{},
		Horizon:  2e5,
		Seed:     16,
	})
	for i, r := range rates {
		pred := r * res.AvgDelay[i]
		if math.Abs(pred-res.AvgQueue[i]) > 0.08*(res.AvgQueue[i]+0.05) {
			t.Errorf("Little's law broken for user %d: λd=%v c=%v", i, pred, res.AvgQueue[i])
		}
	}
}

func TestGRejectsBadConfig(t *testing.T) {
	if _, err := RunG(GConfig{}); err == nil {
		t.Error("empty config should error")
	}
	if _, err := RunG(GConfig{Rates: []float64{0.7, 0.7}}); err == nil {
		t.Error("overload should error")
	}
}

func TestGDeterministicBySeed(t *testing.T) {
	cfg := GConfig{Rates: []float64{0.2, 0.2}, Service: randdist.FromCV2(2), Horizon: 1e4, Seed: 99}
	a := runG(t, cfg)
	b := runG(t, cfg)
	for i := range a.AvgQueue {
		if a.AvgQueue[i] != b.AvgQueue[i] {
			t.Fatal("same seed must reproduce")
		}
	}
}

func TestDequeSemantics(t *testing.T) {
	var d deque
	p1 := &gpacket{user: 1}
	p2 := &gpacket{user: 2}
	p3 := &gpacket{user: 3}
	d.pushBack(p1)
	d.pushBack(p2)
	d.pushFront(p3) // a resumed packet jumps the queue
	if d.len() != 3 {
		t.Fatal("len")
	}
	if d.popFront() != p3 || d.popFront() != p1 || d.popFront() != p2 {
		t.Error("deque order wrong")
	}
}
