package des

import (
	"container/heap"
	"context"
	"math"

	"greednet/internal/des/calq"
	"greednet/internal/randdist"
	"greednet/internal/stats"
)

// The scheduling engine: Poisson arrivals, general unit-mean service, and
// NON-preemptive schedulers that pick the next packet to transmit whole —
// the setting of real packet networks and of the Fair Queueing algorithm
// of Demers, Keshav & Shenker that §5.2 discusses.  (The preemptive
// priority engine lives in gsim.go; the memoryless CTMC engine in des.go.)
// Like gsim.go, the event core is the internal/des/calq calendar queue
// with the frozen heap baseline preserved in heapref.go.

// Scheduler selects the next packet to transmit.
type Scheduler interface {
	// Name identifies the scheduler.
	Name() string
	// Reset prepares for a run.
	Reset(rates []float64)
	// Enqueue admits an arriving packet; now is the arrival time and
	// p.remaining its full transmission time (known at arrival, as packet
	// lengths are on real links).
	Enqueue(p *gpacket, now float64)
	// Dequeue removes and returns the next packet to transmit.  Called
	// only when Len() > 0, at time now.
	Dequeue(now float64) *gpacket
	// Len is the number of queued packets.
	Len() int
}

// FCFSSched transmits packets in arrival order (the baseline).  The queue
// advances a head index on Dequeue and compacts in place once the dead
// prefix dominates — the same amortization as fifoQueue in
// disciplines.go — so the backing array stops growing (and stops
// re-allocating) at the high-water backlog.  The historical `q = q[1:]`
// dequeue kept every popped packet reachable and leaked capacity forever.
type FCFSSched struct {
	q    []*gpacket
	head int
}

// Name implements Scheduler.
func (f *FCFSSched) Name() string { return "fcfs" }

// Reset implements Scheduler.
func (f *FCFSSched) Reset(rates []float64) {
	f.q = f.q[:0]
	f.head = 0
}

// Enqueue implements Scheduler.
func (f *FCFSSched) Enqueue(p *gpacket, now float64) { f.q = append(f.q, p) }

// Dequeue implements Scheduler.
func (f *FCFSSched) Dequeue(now float64) *gpacket {
	p := f.q[f.head]
	f.q[f.head] = nil // release the slot: a departed packet must not stay reachable
	f.head++
	if f.head > 64 && f.head*2 >= len(f.q) {
		f.q = append(f.q[:0], f.q[f.head:]...)
		f.head = 0
	}
	return p
}

// Len implements Scheduler.
func (f *FCFSSched) Len() int { return len(f.q) - f.head }

// fqItem is a tagged packet in the FQ heap.
type fqItem struct {
	p      *gpacket
	finish float64
	seq    int64 // FIFO tie-break
}

type fqHeap []fqItem

func (h fqHeap) Len() int { return len(h) }
func (h fqHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish { //lint:allow floateq exact finish-tag tie-break keeps the heap deterministic
		return h[i].finish < h[j].finish
	}
	return h[i].seq < h[j].seq
}
func (h fqHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *fqHeap) Push(x interface{}) { *h = append(*h, x.(fqItem)) }
func (h *fqHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = fqItem{} // zero the vacated tail: the popped packet pointer must not linger in the backing array
	*h = old[:n-1]
	return x
}

// FQSched is the Fair Queueing scheduler of Demers, Keshav & Shenker:
// it emulates bit-by-bit round robin by tracking a virtual time V(t) that
// advances at rate 1/(number of backlogged flows), stamps each arriving
// packet with a virtual finish time
//
//	F = max(V(arrival), F_prev(flow)) + length,
//
// and always transmits the queued packet with the smallest finish tag.
// It approximates head-of-line processor sharing without time-slicing.
type FQSched struct {
	h          fqHeap
	lastFinish []float64 // per-flow previous finish tag
	queued     []int     // per-flow queued-packet count (backlog tracking)
	backlogged int
	vtime      float64
	lastUpdate float64
	seq        int64
}

// Name implements Scheduler.
func (f *FQSched) Name() string { return "fair-queueing" }

// Reset implements Scheduler.
func (f *FQSched) Reset(rates []float64) {
	n := len(rates)
	f.h = f.h[:0]
	f.lastFinish = make([]float64, n)
	f.queued = make([]int, n)
	f.backlogged = 0
	f.vtime = 0
	f.lastUpdate = 0
	f.seq = 0
}

// advance moves virtual time forward to now.  While k flows are
// backlogged, each receives a 1/k share of the server, so a bit-round
// completes every k real time units.
func (f *FQSched) advance(now float64) {
	if now > f.lastUpdate {
		if f.backlogged > 0 {
			f.vtime += (now - f.lastUpdate) / float64(f.backlogged)
		} else {
			// An idle server lets virtual time track real time so stale
			// finish tags do not advantage long-idle flows.
			f.vtime += now - f.lastUpdate
		}
		f.lastUpdate = now
	}
}

// Enqueue implements Scheduler.
func (f *FQSched) Enqueue(p *gpacket, now float64) {
	f.advance(now)
	u := p.user
	start := f.vtime
	if f.lastFinish[u] > start {
		start = f.lastFinish[u]
	}
	finish := start + p.remaining
	f.lastFinish[u] = finish
	if f.queued[u] == 0 {
		f.backlogged++
	}
	f.queued[u]++
	f.seq++
	heap.Push(&f.h, fqItem{p: p, finish: finish, seq: f.seq})
}

// Dequeue implements Scheduler.
func (f *FQSched) Dequeue(now float64) *gpacket {
	f.advance(now)
	it := heap.Pop(&f.h).(fqItem)
	u := it.p.user
	f.queued[u]--
	if f.queued[u] == 0 {
		f.backlogged--
	}
	return it.p
}

// Len implements Scheduler.
func (f *FQSched) Len() int { return len(f.h) }

// SchedConfig parameterizes a non-preemptive scheduling run.
type SchedConfig struct {
	// Rates are the per-flow Poisson rates (Σ < 1).
	Rates []float64
	// Service is the unit-mean packet-length distribution; default
	// exponential.
	Service randdist.Dist
	// Sched is the scheduler under test; default FCFS.
	Sched Scheduler
	// Horizon, Warmup, Seed, Batches behave as in Config.
	Horizon, Warmup float64
	Seed            int64
	Batches         int
}

// RunSched simulates the non-preemptive scheduler.
func RunSched(cfg SchedConfig) (Result, error) {
	return RunSchedCtx(context.Background(), cfg)
}

// RunSchedCtx is RunSched under a context; see RunCtx for the
// cancellation contract (typed error, no partial statistics).
func RunSchedCtx(ctx context.Context, cfg SchedConfig) (Result, error) {
	n := len(cfg.Rates)
	if n == 0 {
		return Result{}, ErrBadConfig
	}
	total := 0.0
	for _, r := range cfg.Rates {
		if r <= 0 || math.IsNaN(r) {
			return Result{}, ErrBadConfig
		}
		total += r
	}
	if total >= 1 {
		return Result{}, ErrBadConfig
	}
	if !validSpan(cfg.Horizon) || !validSpan(cfg.Warmup) {
		return Result{}, ErrBadConfig
	}
	if cfg.Service == nil {
		cfg.Service = randdist.Exponential{}
	}
	if cfg.Sched == nil {
		cfg.Sched = &FCFSSched{}
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 2e5
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 0.05 * cfg.Horizon
	}
	if cfg.Batches <= 0 {
		cfg.Batches = 20
	}

	rng := randdist.NewRand(cfg.Seed)
	cfg.Sched.Reset(cfg.Rates)

	end := cfg.Warmup + cfg.Horizon
	batchLen := cfg.Horizon / float64(cfg.Batches)
	lq := newLazyQueues(n, cfg.Batches, cfg.Warmup, end, batchLen)
	var totalAvg stats.TimeAverage
	delaySum := make([]float64, n)
	departed := make([]int64, n)
	var res Result
	res.AvgQueue = make([]float64, n)
	res.QueueCI95 = make([]float64, n)
	res.AvgDelay = make([]float64, n)
	res.Throughput = make([]float64, n)

	// The Scheduler interface has no rng access (Reset takes only rates),
	// so after seeding the draw order is pure ExpFloat64 exactly when the
	// service distribution is exponential; then arrivals AND transmission
	// times prefetch from one batch.  Otherwise block size 1 reproduces
	// the unbatched stream.
	pureExp := randdist.IsExponential(cfg.Service)
	var eb randdist.ExpBatch
	eb.Init(rng, randdist.BlockSize(pureExp))

	var events calq.Queue
	seedArrivals(&events, rng, cfg.Rates)

	var pool gpacketPool
	var serving *gpacket
	inSystem := 0
	prev := 0.0

	gate := ctxGate{ctx: ctx}
	for events.Len() > 0 {
		if err := gate.Err(); err != nil {
			return Result{}, err
		}
		ev, _ := events.DequeueMin()
		now := ev.T
		if now > end {
			now = end
		}
		// O(1) total-queue average per event; per-user integrals advance
		// lazily at count changes (lq.bump).
		if now > cfg.Warmup && now > prev {
			lo := math.Max(prev, cfg.Warmup)
			span := now - lo
			if span > 0 {
				totalAvg.Accumulate(float64(inSystem), span)
			}
		}
		prev = now
		if ev.T > end {
			break
		}
		if ev.Arr {
			u := int(ev.User)
			events.Enqueue(calq.Event{T: ev.T + eb.Next()/cfg.Rates[u], User: ev.User, Arr: true})
			p := pool.get()
			p.user = u
			p.class = 0
			p.arrive = ev.T
			if pureExp {
				p.remaining = eb.Next()
			} else {
				p.remaining = cfg.Service.Sample(rng)
			}
			lq.bump(u, ev.T, 1)
			inSystem++
			if ev.T >= cfg.Warmup {
				res.Arrivals++
			}
			if serving == nil {
				serving = p
				events.Enqueue(calq.Event{T: ev.T + p.remaining})
			} else {
				cfg.Sched.Enqueue(p, ev.T)
			}
		} else {
			if serving == nil {
				continue
			}
			p := serving
			lq.bump(p.user, ev.T, -1)
			inSystem--
			if ev.T >= cfg.Warmup {
				res.Departures++
				departed[p.user]++
				delaySum[p.user] += ev.T - p.arrive
			}
			pool.put(p)
			serving = nil
			if cfg.Sched.Len() > 0 {
				serving = cfg.Sched.Dequeue(ev.T)
				events.Enqueue(calq.Event{T: ev.T + serving.remaining})
			}
		}
	}

	lq.finish()

	res.Duration = cfg.Horizon
	//lint:allow ctxflow O(n) post-run stats assembly over per-source accumulators; the event loop above already honored the deadline
	for i := 0; i < n; i++ {
		res.AvgQueue[i] = lq.avgQueue(i)
		res.QueueCI95[i] = batchCI(lq.batchRow(i), batchLen)
		if departed[i] > 0 {
			res.AvgDelay[i] = delaySum[i] / float64(departed[i])
		} else {
			res.AvgDelay[i] = math.NaN()
		}
		res.Throughput[i] = float64(departed[i]) / cfg.Horizon
	}
	res.TotalAvgQueue = totalAvg.Value()
	return res, nil
}
