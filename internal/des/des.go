// Package des is a discrete-event simulator for the paper's switch model: a
// single exponential server of rate 1 fed by independent Poisson sources.
//
// Because service requirements are exponential and preemption is allowed,
// the system is a continuous-time Markov chain whatever the (work-
// conserving, non-anticipating) discipline does: the state advances with a
// single exponential clock of rate Σλ + 1{busy}, and disciplines differ
// only in WHICH queued packet completes at a departure epoch.  The event
// loop below exploits this, so the simulation is exact, not an
// approximation — sampling noise is the only error source, which is what
// makes the DES a sharp validator for the analytic allocation functions
// (Table 1 in particular).
package des

import (
	"context"
	"errors"
	"math"
	"math/rand"

	"greednet/internal/randdist"
	"greednet/internal/stats"
)

// Packet is one queued job.
type Packet struct {
	// User is the source index.
	User int
	// Arrive is the arrival timestamp.
	Arrive float64
	// Class is the priority class assigned at arrival (used by priority
	// disciplines; 0 otherwise).
	Class int
}

// Discipline picks which packet the (memoryless) server completes at each
// departure epoch.  Implementations are single-goroutine; the Simulator
// drives them sequentially.
type Discipline interface {
	// Name identifies the discipline.
	Name() string
	// Reset prepares for a fresh run with the given source rates.  The rng
	// is owned by the simulator and shared for the whole run.
	Reset(rates []float64, rng *rand.Rand)
	// Enqueue admits an arriving packet.
	Enqueue(p Packet)
	// Dequeue removes and returns the packet the server completes now.
	// It is called only when Len() > 0.
	Dequeue() Packet
	// Len reports the number of queued packets.
	Len() int
}

// Config parameterizes a simulation run.
type Config struct {
	// Rates are the per-user Poisson arrival rates; the server has rate 1,
	// so Σ Rates < 1 is required for stability.
	Rates []float64
	// Discipline is the service discipline under test.
	Discipline Discipline
	// Horizon is the simulated time after warmup; default 2e5.
	Horizon float64
	// Warmup is the initial period excluded from statistics; default 5%
	// of Horizon.
	Warmup float64
	// Seed seeds the run's random source.
	Seed int64
	// Batches is the number of batch-means segments for confidence
	// intervals; default 20.
	Batches int
	// OnDeparture, when non-nil, is invoked for every post-warmup
	// departure with the departing packet and the departure time (e.g. a
	// Tracer's Observe method).
	OnDeparture func(p Packet, depart float64)
}

// Result carries the measured per-user statistics.
type Result struct {
	// AvgQueue is the time-averaged number of user-i packets in the system
	// — the paper's congestion c_i.
	AvgQueue []float64
	// QueueCI95 is the batch-means 95% half-width for AvgQueue.
	QueueCI95 []float64
	// AvgDelay is the mean sojourn time of departed user-i packets.
	AvgDelay []float64
	// Throughput is the measured departure rate of user i.
	Throughput []float64
	// TotalAvgQueue is the time-averaged total queue (should match
	// g(Σr) = Σr/(1−Σr) for any work-conserving discipline).
	TotalAvgQueue float64
	// Arrivals and Departures count post-warmup events.
	Arrivals, Departures int64
	// Duration is the measured (post-warmup) time span.
	Duration float64
}

// ErrBadConfig reports an unusable configuration.
var ErrBadConfig = errors.New("des: bad config")

// validSpan reports whether a Horizon/Warmup value is usable: NaN and
// ±Inf would silently poison every time average (yielding all-NaN
// statistics with a nil error), so they are rejected up front; negative
// and zero values remain "use the default".
func validSpan(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// Run simulates the switch and returns the measured statistics.
func Run(cfg Config) (Result, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx is Run under a context, polled every few thousand events (see
// ctxGate).  A canceled run returns a zero Result with the typed
// core.ErrCanceled / core.ErrDeadline: partial time averages from a
// truncated horizon are not unbiased estimates, so none are reported.
func RunCtx(ctx context.Context, cfg Config) (Result, error) {
	n := len(cfg.Rates)
	if n == 0 || cfg.Discipline == nil {
		return Result{}, ErrBadConfig
	}
	total := 0.0
	for _, r := range cfg.Rates {
		if r <= 0 || math.IsNaN(r) {
			return Result{}, ErrBadConfig
		}
		total += r
	}
	if total >= 1 {
		return Result{}, ErrBadConfig
	}
	if !validSpan(cfg.Horizon) || !validSpan(cfg.Warmup) {
		return Result{}, ErrBadConfig
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 2e5
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 0.05 * cfg.Horizon
	}
	if cfg.Batches <= 0 {
		cfg.Batches = 20
	}

	rng := randdist.NewRand(cfg.Seed)
	d := cfg.Discipline
	d.Reset(cfg.Rates, rng)

	end := cfg.Warmup + cfg.Horizon
	batchLen := cfg.Horizon / float64(cfg.Batches)

	lq := newLazyQueues(n, cfg.Batches, cfg.Warmup, end, batchLen)
	var totalAvg stats.TimeAverage
	cum := cumRates(cfg.Rates) // prefix sums for O(log N) source picks
	delaySum := make([]float64, n)
	departed := make([]int64, n)
	var res Result
	res.AvgQueue = make([]float64, n)
	res.QueueCI95 = make([]float64, n)
	res.AvgDelay = make([]float64, n)
	res.Throughput = make([]float64, n)

	// Each iteration consumes exactly one (ExpFloat64, Float64) pair: the
	// holding time and the event pick.  A stream-free discipline never
	// touches the rng mid-run, so the pairs prefetch in full blocks;
	// otherwise block size 1 lands every draw at its unbatched stream
	// position.  Either way the run is byte-identical to the historical
	// draw-per-event loop (the final pair's uniform may be drawn past the
	// break, but the rng is per-run, so nothing can observe it).
	var pb randdist.PairBatch
	pb.Init(rng, randdist.BlockSize(streamFree(d)))

	t := 0.0
	inSystem := 0
	gate := ctxGate{ctx: ctx}
	for t < end {
		if err := gate.Err(); err != nil {
			return Result{}, err
		}
		rate := total
		if inSystem > 0 {
			rate += 1
		}
		e, uu := pb.Pair()
		dt := e / rate
		// Split the elapsed interval across warmup/measurement boundary.
		// Only the O(1) total-queue average advances per event; the per-user
		// integrals advance lazily at count changes (lq.bump below).
		tNext := t + dt
		if tNext > cfg.Warmup {
			lo := math.Max(t, cfg.Warmup)
			hi := math.Min(tNext, end)
			if hi > lo {
				totalAvg.Accumulate(float64(inSystem), hi-lo)
			}
		}
		t = tNext
		if t >= end {
			break
		}
		// Choose the event type.
		u := uu * rate
		if u < total {
			// Arrival: pick the source by binary search on the rate prefix
			// sums (the same source the linear scan chose for this draw).
			i := pickSource(cum, u)
			d.Enqueue(Packet{User: i, Arrive: t})
			lq.bump(i, t, 1)
			inSystem++
			if t >= cfg.Warmup {
				res.Arrivals++
			}
		} else if inSystem > 0 {
			p := d.Dequeue()
			lq.bump(p.User, t, -1)
			inSystem--
			if t >= cfg.Warmup {
				res.Departures++
				departed[p.User]++
				delaySum[p.User] += t - p.Arrive
				if cfg.OnDeparture != nil {
					cfg.OnDeparture(p, t)
				}
			}
		}
	}
	lq.finish()

	res.Duration = cfg.Horizon
	//lint:allow ctxflow O(n) post-run stats assembly over per-source accumulators; the event loop above already honored the deadline
	for i := 0; i < n; i++ {
		res.AvgQueue[i] = lq.avgQueue(i)
		res.QueueCI95[i] = batchCI(lq.batchRow(i), batchLen)
		if departed[i] > 0 {
			res.AvgDelay[i] = delaySum[i] / float64(departed[i])
		} else {
			res.AvgDelay[i] = math.NaN()
		}
		res.Throughput[i] = float64(departed[i]) / cfg.Horizon
	}
	res.TotalAvgQueue = totalAvg.Value()
	return res, nil
}

// batchCI converts per-batch queue integrals into a 95% half-width for the
// run-level time average.
func batchCI(integrals []float64, batchLen float64) float64 {
	means := make([]float64, len(integrals))
	for i, v := range integrals {
		means[i] = v / batchLen
	}
	return stats.CI95(means)
}
