package des

import (
	"context"
	"fmt"

	"greednet/internal/parallel"
)

// RunReplications fans independent replications of cfg across a worker
// pool, one replication per seed, and returns the results in seed order.
// Each replication owns its rng stream (randdist.NewRand(seed)) and a
// fresh Discipline from newDisc — Discipline implementations are
// stateful and single-goroutine, so cfg.Discipline is ignored here and
// newDisc must build a new instance per call.  Determinism is free:
// replication i's result depends only on cfg and seeds[i], so the output
// is identical for every worker count (≤ 0 means runtime.GOMAXPROCS(0)).
//
// cfg.OnDeparture must be nil: a shared callback would be invoked from
// several replications at once.  On failure the lowest-index
// replication's error is returned.
func RunReplications(cfg Config, newDisc func() Discipline, seeds []int64, workers int) ([]Result, error) {
	return RunReplicationsCtx(context.Background(), cfg, newDisc, seeds, workers)
}

// RunReplicationsCtx is RunReplications under a context: the pool stops
// claiming new seeds once ctx fires, in-flight replications stop at their
// next event gate, and the typed core.ErrCanceled / core.ErrDeadline is
// returned with a nil result slice (replication sets are all-or-nothing —
// a partial set would silently shrink the confidence intervals built on
// it).
func RunReplicationsCtx(ctx context.Context, cfg Config, newDisc func() Discipline, seeds []int64, workers int) ([]Result, error) {
	if newDisc == nil || len(seeds) == 0 || cfg.OnDeparture != nil {
		return nil, ErrBadConfig
	}
	results := make([]Result, len(seeds))
	err := parallel.MapOrderedCtx(ctx, workers, len(seeds), func(i int) error {
		c := cfg
		c.Discipline = newDisc()
		c.Seed = seeds[i]
		res, err := RunCtx(ctx, c)
		if err != nil {
			return fmt.Errorf("des: replication %d (seed %d): %w", i, seeds[i], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
