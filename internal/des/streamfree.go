package des

// Stream-free markers.  The engines share one seeded rng per run, and the
// batched variate generation in internal/randdist may only prefetch whole
// blocks when nothing else consumes that stream mid-run — otherwise the
// prefetch would reorder draws and change every seeded result.  A
// discipline, classifier, or scheduler declares that it never draws from
// the run's rng (after Reset) by implementing StreamFree; anything
// without the marker — including randomized disciplines like
// ProcessorSharing (rng.Intn per departure), the FairShareSplitter and
// SerialClass thinners (rng.Float64 per arrival), and any external
// implementation — falls back to block size 1, which is byte-identical to
// the unbatched stream no matter who draws in between.  Claiming the
// marker falsely is the one way to change seeded results, so new
// randomized implementations must simply not implement it.

// StreamFree is implemented by disciplines, classifiers, and schedulers
// that perform no draws from the run's shared rng between Reset and the
// end of the run.
type StreamFree interface {
	// StreamFree reports that the implementation is draw-free for the
	// whole run.
	StreamFree() bool
}

// streamFree reports whether v declares itself draw-free.
func streamFree(v interface{}) bool {
	sf, ok := v.(StreamFree)
	return ok && sf.StreamFree()
}

// StreamFree implements the draw-free marker: FIFO keeps a deterministic
// queue and never touches the rng.
func (f *FIFO) StreamFree() bool { return true }

// StreamFree implements the draw-free marker: the preemptive stack is
// deterministic.
func (l *LIFOPreemptive) StreamFree() bool { return true }

// StreamFree implements the draw-free marker: polling order is fixed.
func (c *CyclicPolling) StreamFree() bool { return true }

// StreamFree implements the draw-free marker: class queues are
// deterministic, but a user-supplied Classify closure could draw from
// anywhere, so only the nil (Packet.Class) default is declared safe.
func (s *StrictPriority) StreamFree() bool { return s.Classify == nil }

// StreamFree implements the draw-free marker: the rank table is computed
// at Reset and the underlying strict-priority queues are deterministic.
func (r *RatePriority) StreamFree() bool { return true }

// StreamFree implements the draw-free marker: the single class is
// constant.
func (SingleClass) StreamFree() bool { return true }

// StreamFree implements the draw-free marker: ranks are computed at
// Reset.
func (rc *RankClass) StreamFree() bool { return true }

// StreamFree implements the draw-free marker: the Scheduler interface
// gives schedulers no access to the run's rng at all (Reset takes only
// rates); declared for uniformity.
func (f *FCFSSched) StreamFree() bool { return true }

// StreamFree implements the draw-free marker; see FCFSSched.StreamFree.
func (f *FQSched) StreamFree() bool { return true }
