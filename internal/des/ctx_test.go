package des

import (
	"context"
	"errors"
	"testing"
	"time"

	"greednet/internal/core"
)

// TestRunCtxCanceledAllEngines checks every engine stops at its event
// gate on a dead-on-arrival context and returns the typed error with a
// zero result (partial time averages are not unbiased estimates, so none
// may leak out).
func TestRunCtxCanceledAllEngines(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rates := []float64{0.2, 0.3}

	res, err := RunCtx(ctx, Config{Rates: rates, Discipline: &FIFO{}, Horizon: 1e4, Seed: 1})
	if !errors.Is(err, core.ErrCanceled) {
		t.Errorf("RunCtx: got %v, want core.ErrCanceled", err)
	}
	if res.AvgQueue != nil {
		t.Errorf("RunCtx: canceled run leaked statistics: %+v", res)
	}

	if _, err := RunGCtx(ctx, GConfig{Rates: rates, Horizon: 1e4, Seed: 1}); !errors.Is(err, core.ErrCanceled) {
		t.Errorf("RunGCtx: got %v, want core.ErrCanceled", err)
	}
	if _, err := RunSchedCtx(ctx, SchedConfig{Rates: rates, Horizon: 1e4, Seed: 1}); !errors.Is(err, core.ErrCanceled) {
		t.Errorf("RunSchedCtx: got %v, want core.ErrCanceled", err)
	}
	tcfg := TandemConfig{
		LongRates: []float64{0.2},
		CrossA:    []float64{0.1},
		CrossB:    []float64{0.1},
		NewDisc:   func() Discipline { return &FIFO{} },
		Horizon:   1e4,
		Seed:      1,
	}
	if _, err := RunTandemCtx(ctx, tcfg); !errors.Is(err, core.ErrCanceled) {
		t.Errorf("RunTandemCtx: got %v, want core.ErrCanceled", err)
	}
}

// TestRunCtxDeadlineMidRun gives a long simulation a few milliseconds and
// checks the gate notices mid-run (the horizon would take far longer) and
// reports the deadline flavor.
func TestRunCtxDeadlineMidRun(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := RunCtx(ctx, Config{Rates: []float64{0.45, 0.45}, Discipline: &FIFO{}, Horizon: 1e9, Seed: 7})
	if !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("got %v, want core.ErrDeadline", err)
	}
}

// TestRunCtxLiveMatchesPlain pins the wrapper contract: a live context
// changes nothing — bitwise — about the simulated statistics.
func TestRunCtxLiveMatchesPlain(t *testing.T) {
	cfg := Config{Rates: []float64{0.2, 0.3}, Discipline: &FIFO{}, Horizon: 5e3, Seed: 42}
	plain, err := Run(withFreshFIFO(cfg))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	viaCtx, err := RunCtx(context.Background(), withFreshFIFO(cfg))
	if err != nil {
		t.Fatalf("RunCtx: %v", err)
	}
	for i := range plain.AvgQueue {
		if plain.AvgQueue[i] != viaCtx.AvgQueue[i] { // same seed and engine must agree bitwise with and without a live ctx
			t.Errorf("AvgQueue[%d]: %v vs %v", i, plain.AvgQueue[i], viaCtx.AvgQueue[i])
		}
	}
	if plain.Departures != viaCtx.Departures {
		t.Errorf("Departures: %d vs %d", plain.Departures, viaCtx.Departures)
	}
}

// TestRunReplicationsCtxCanceled checks a canceled replication fan
// returns no partial result set.
func TestRunReplicationsCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{Rates: []float64{0.2, 0.3}, Horizon: 1e3}
	results, err := RunReplicationsCtx(ctx, cfg, func() Discipline { return &FIFO{} }, []int64{1, 2, 3}, 2)
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("got %v, want core.ErrCanceled", err)
	}
	if results != nil {
		t.Errorf("canceled fan leaked a partial result set")
	}
}

// withFreshFIFO hands each run its own discipline instance (disciplines
// are stateful and single-run).
func withFreshFIFO(cfg Config) Config {
	cfg.Discipline = &FIFO{}
	return cfg
}
