package des

import (
	"math/rand"
	"sort"
)

// mustNonEmpty enforces the Discipline.Dequeue contract: Dequeue is called
// only when Len() > 0, so an empty structure here is an internal invariant
// violation (a corrupted Len bookkeeping or a misused Discipline), never a
// user-recoverable condition.  Panicking with a uniform message beats the
// bare index panic the slice access would otherwise produce.
func mustNonEmpty(name string, n int) {
	if n == 0 {
		panic("des: Dequeue on empty " + name + " (Discipline contract requires Len() > 0)")
	}
}

// fifoQueue is a slice-backed FIFO with amortized compaction.
type fifoQueue struct {
	buf  []Packet
	head int
}

func (q *fifoQueue) push(p Packet) { q.buf = append(q.buf, p) }

func (q *fifoQueue) pop() Packet {
	p := q.buf[q.head]
	q.head++
	if q.head > 64 && q.head*2 >= len(q.buf) {
		q.buf = append(q.buf[:0], q.buf[q.head:]...)
		q.head = 0
	}
	return p
}

func (q *fifoQueue) len() int { return len(q.buf) - q.head }

func (q *fifoQueue) reset() { q.buf = q.buf[:0]; q.head = 0 }

// FIFO serves packets in arrival order — the discipline that realizes the
// proportional allocation.
type FIFO struct {
	q fifoQueue
}

// Name implements Discipline.
func (f *FIFO) Name() string { return "fifo" }

// Reset implements Discipline.
func (f *FIFO) Reset(rates []float64, rng *rand.Rand) { f.q.reset() }

// Enqueue implements Discipline.
func (f *FIFO) Enqueue(p Packet) { f.q.push(p) }

// Dequeue implements Discipline.
func (f *FIFO) Dequeue() Packet {
	mustNonEmpty("FIFO", f.q.len())
	return f.q.pop()
}

// Len implements Discipline.
func (f *FIFO) Len() int { return f.q.len() }

// LIFOPreemptive always serves the most recent arrival (preemptive-resume;
// with exponential service the resume detail is immaterial).  Class-blind,
// so it also realizes the proportional allocation — a useful check that
// per-user mean queues depend on the discipline only through class
// awareness.
type LIFOPreemptive struct {
	stack []Packet
}

// Name implements Discipline.
func (l *LIFOPreemptive) Name() string { return "lifo-preemptive" }

// Reset implements Discipline.
func (l *LIFOPreemptive) Reset(rates []float64, rng *rand.Rand) { l.stack = l.stack[:0] }

// Enqueue implements Discipline.
func (l *LIFOPreemptive) Enqueue(p Packet) { l.stack = append(l.stack, p) }

// Dequeue implements Discipline.
func (l *LIFOPreemptive) Dequeue() Packet {
	mustNonEmpty("LIFOPreemptive", len(l.stack))
	p := l.stack[len(l.stack)-1]
	l.stack = l.stack[:len(l.stack)-1]
	return p
}

// Len implements Discipline.
func (l *LIFOPreemptive) Len() int { return len(l.stack) }

// ProcessorSharing serves all queued packets at equal rates; with
// exponential service the completing packet is uniform among those present.
// Class-blind ⇒ proportional allocation.
type ProcessorSharing struct {
	pkts []Packet
	rng  *rand.Rand
}

// Name implements Discipline.
func (ps *ProcessorSharing) Name() string { return "processor-sharing" }

// Reset implements Discipline.
func (ps *ProcessorSharing) Reset(rates []float64, rng *rand.Rand) {
	ps.pkts = ps.pkts[:0]
	ps.rng = rng
}

// Enqueue implements Discipline.
func (ps *ProcessorSharing) Enqueue(p Packet) { ps.pkts = append(ps.pkts, p) }

// Dequeue implements Discipline.
func (ps *ProcessorSharing) Dequeue() Packet {
	mustNonEmpty("ProcessorSharing", len(ps.pkts))
	i := ps.rng.Intn(len(ps.pkts))
	p := ps.pkts[i]
	last := len(ps.pkts) - 1
	ps.pkts[i] = ps.pkts[last]
	ps.pkts = ps.pkts[:last]
	return p
}

// Len implements Discipline.
func (ps *ProcessorSharing) Len() int { return len(ps.pkts) }

// HOLProcessorSharing shares the server equally among *backlogged users*
// (head-of-line processor sharing): the completing packet is the head of a
// uniformly chosen backlogged user's queue.  This is the fluid ideal that
// Fair Queueing approximates (§5.2).
type HOLProcessorSharing struct {
	queues    []fifoQueue
	backlog   []int // user indices with nonempty queues
	positions []int // user → index in backlog, or −1
	total     int
	rng       *rand.Rand
}

// Name implements Discipline.
func (h *HOLProcessorSharing) Name() string { return "hol-processor-sharing" }

// Reset implements Discipline.
func (h *HOLProcessorSharing) Reset(rates []float64, rng *rand.Rand) {
	n := len(rates)
	h.queues = make([]fifoQueue, n)
	h.backlog = h.backlog[:0]
	h.positions = make([]int, n)
	for i := range h.positions {
		h.positions[i] = -1
	}
	h.total = 0
	h.rng = rng
}

// Enqueue implements Discipline.
func (h *HOLProcessorSharing) Enqueue(p Packet) {
	q := &h.queues[p.User]
	if q.len() == 0 {
		h.positions[p.User] = len(h.backlog)
		h.backlog = append(h.backlog, p.User)
	}
	q.push(p)
	h.total++
}

// Dequeue implements Discipline.
func (h *HOLProcessorSharing) Dequeue() Packet {
	mustNonEmpty("HOLProcessorSharing", len(h.backlog))
	k := h.rng.Intn(len(h.backlog))
	u := h.backlog[k]
	q := &h.queues[u]
	p := q.pop()
	h.total--
	if q.len() == 0 {
		last := len(h.backlog) - 1
		h.backlog[k] = h.backlog[last]
		h.positions[h.backlog[k]] = k
		h.backlog = h.backlog[:last]
		h.positions[u] = -1
	}
	return p
}

// Len implements Discipline.
func (h *HOLProcessorSharing) Len() int { return h.total }

// CyclicPolling serves backlogged users in fixed cyclic order, one packet
// per visit (limited-1 polling with zero switchover) — one of the paper's
// §4 examples of a MAC discipline.  With exponential service it behaves
// like HOL processor sharing with a deterministic instead of random visit
// order: backlogged users receive equal long-run service shares.
type CyclicPolling struct {
	queues []fifoQueue
	total  int
	cursor int
}

// Name implements Discipline.
func (c *CyclicPolling) Name() string { return "cyclic-polling" }

// Reset implements Discipline.
func (c *CyclicPolling) Reset(rates []float64, rng *rand.Rand) {
	c.queues = make([]fifoQueue, len(rates))
	c.total = 0
	c.cursor = 0
}

// Enqueue implements Discipline.
func (c *CyclicPolling) Enqueue(p Packet) {
	c.queues[p.User].push(p)
	c.total++
}

// Dequeue implements Discipline.
func (c *CyclicPolling) Dequeue() Packet {
	n := len(c.queues)
	for k := 0; k < n; k++ {
		u := (c.cursor + k) % n
		if c.queues[u].len() > 0 {
			c.cursor = (u + 1) % n
			c.total--
			return c.queues[u].pop()
		}
	}
	mustNonEmpty("CyclicPolling", 0)
	return Packet{} // unreachable
}

// Len implements Discipline.
func (c *CyclicPolling) Len() int { return c.total }

// StrictPriority serves the lowest-numbered nonempty class first (FIFO
// within a class), preemptively.  Classes are read from Packet.Class; use
// a Classifier to assign them at arrival time.
type StrictPriority struct {
	classes []fifoQueue
	total   int
	// Classify maps an arriving packet to its class in [0, len(classes)).
	// The default (nil) uses Packet.Class as provided by the caller, which
	// must then pre-assign classes.
	Classify func(p *Packet)
	// NumClasses fixes the class count at Reset; default = number of users.
	NumClasses int
}

// Name implements Discipline.
func (s *StrictPriority) Name() string { return "strict-priority" }

// Reset implements Discipline.
func (s *StrictPriority) Reset(rates []float64, rng *rand.Rand) {
	n := s.NumClasses
	if n <= 0 {
		n = len(rates)
	}
	s.classes = make([]fifoQueue, n)
	s.total = 0
}

// Enqueue implements Discipline.
func (s *StrictPriority) Enqueue(p Packet) {
	if s.Classify != nil {
		s.Classify(&p)
	}
	if p.Class < 0 {
		p.Class = 0
	}
	if p.Class >= len(s.classes) {
		p.Class = len(s.classes) - 1
	}
	s.classes[p.Class].push(p)
	s.total++
}

// Dequeue implements Discipline.
func (s *StrictPriority) Dequeue() Packet {
	for i := range s.classes {
		if s.classes[i].len() > 0 {
			s.total--
			return s.classes[i].pop()
		}
	}
	mustNonEmpty("StrictPriority", 0)
	return Packet{} // unreachable
}

// Len implements Discipline.
func (s *StrictPriority) Len() int { return s.total }

// RatePriority is head-of-line strict priority keyed to the rate order:
// the user with the k-th smallest declared rate is (permanently) assigned
// priority class k.  It realizes the alloc.HOLPriority(SmallestFirst)
// allocation for distinct rates.
type RatePriority struct {
	sp    StrictPriority
	class []int
}

// Name implements Discipline.
func (r *RatePriority) Name() string { return "rate-priority" }

// Reset implements Discipline.
func (r *RatePriority) Reset(rates []float64, rng *rand.Rand) {
	n := len(rates)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return rates[idx[a]] < rates[idx[b]] })
	r.class = make([]int, n)
	for rank, u := range idx {
		r.class[u] = rank
	}
	r.sp.NumClasses = n
	r.sp.Classify = func(p *Packet) { p.Class = r.class[p.User] }
	r.sp.Reset(rates, rng)
}

// Enqueue implements Discipline.
func (r *RatePriority) Enqueue(p Packet) { r.sp.Enqueue(p) }

// Dequeue implements Discipline.
func (r *RatePriority) Dequeue() Packet { return r.sp.Dequeue() }

// Len implements Discipline.
func (r *RatePriority) Len() int { return r.sp.Len() }

// FairShareSplitter implements the paper's Table 1: with users relabeled so
// rates ascend, class m (m = 1..N) carries, from every user with rank ≥ m,
// a Poisson substream of rate r_(m) − r_(m−1); classes are served with
// strict preemptive priority (class 1 highest).  Splitting a user's Poisson
// stream by i.i.d. class sampling with probabilities proportional to the
// increments realizes exactly those substreams, and the resulting per-user
// mean queues equal the Fair Share allocation C^FS.
type FairShareSplitter struct {
	sp   StrictPriority
	cdf  [][]float64 // per user: cumulative class probabilities
	rng  *rand.Rand
	rank []int
}

// Name implements Discipline.
func (f *FairShareSplitter) Name() string { return "fair-share-splitter" }

// Reset implements Discipline.
func (f *FairShareSplitter) Reset(rates []float64, rng *rand.Rand) {
	n := len(rates)
	f.rng = rng
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return rates[idx[a]] < rates[idx[b]] })
	sorted := make([]float64, n)
	for rank, u := range idx {
		sorted[rank] = rates[u]
	}
	f.rank = make([]int, n)
	for rank, u := range idx {
		f.rank[u] = rank
	}
	// User with rank k (0-based) sends into classes m = 0..k with
	// probability (sorted[m] − sorted[m−1]) / sorted[k].
	f.cdf = make([][]float64, n)
	for u := 0; u < n; u++ {
		k := f.rank[u]
		cdf := make([]float64, k+1)
		prev := 0.0
		acc := 0.0
		for m := 0; m <= k; m++ {
			acc += sorted[m] - prev
			prev = sorted[m]
			cdf[m] = acc / sorted[k]
		}
		cdf[k] = 1 // guard against rounding
		f.cdf[u] = cdf
	}
	f.sp.NumClasses = n
	f.sp.Classify = nil
	f.sp.Reset(rates, rng)
}

// Enqueue implements Discipline.
func (f *FairShareSplitter) Enqueue(p Packet) {
	cdf := f.cdf[p.User]
	x := f.rng.Float64()
	cls := sort.SearchFloat64s(cdf, x)
	if cls >= len(cdf) {
		cls = len(cdf) - 1
	}
	p.Class = cls
	f.sp.Enqueue(p)
}

// Dequeue implements Discipline.
func (f *FairShareSplitter) Dequeue() Packet { return f.sp.Dequeue() }

// Len implements Discipline.
func (f *FairShareSplitter) Len() int { return f.sp.Len() }
