package des

import (
	"math"
	"testing"

	"greednet/internal/randdist"
	"greednet/internal/stats"
)

// Differential equivalence suite: the calendar-queue engines must
// reproduce the frozen pre-calendar engines BIT FOR BIT for every seeded
// configuration — same event order, same rng consumption, same Result.
// The heap engines live in heapref.go; the memoryless and tandem
// references below are verbatim copies of the historical draw-per-event
// loops (direct rng draws, linear stream scan).  Any change to the
// engines' draw order, tie-breaking, or accumulation arithmetic shows up
// here as a bit-level diff.

// refRun is the frozen memoryless engine: identical to RunCtx before
// batched variate generation (one ExpFloat64 and one Float64 drawn
// directly from the rng per iteration).
func refRun(cfg Config) (Result, error) {
	n := len(cfg.Rates)
	if n == 0 || cfg.Discipline == nil {
		return Result{}, ErrBadConfig
	}
	total := 0.0
	for _, r := range cfg.Rates {
		if r <= 0 || math.IsNaN(r) {
			return Result{}, ErrBadConfig
		}
		total += r
	}
	if total >= 1 {
		return Result{}, ErrBadConfig
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 2e5
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 0.05 * cfg.Horizon
	}
	if cfg.Batches <= 0 {
		cfg.Batches = 20
	}

	rng := randdist.NewRand(cfg.Seed)
	d := cfg.Discipline
	d.Reset(cfg.Rates, rng)

	end := cfg.Warmup + cfg.Horizon
	batchLen := cfg.Horizon / float64(cfg.Batches)
	lq := newLazyQueues(n, cfg.Batches, cfg.Warmup, end, batchLen)
	var totalAvg stats.TimeAverage
	cum := cumRates(cfg.Rates)
	delaySum := make([]float64, n)
	departed := make([]int64, n)
	var res Result
	res.AvgQueue = make([]float64, n)
	res.QueueCI95 = make([]float64, n)
	res.AvgDelay = make([]float64, n)
	res.Throughput = make([]float64, n)

	t := 0.0
	inSystem := 0
	for t < end {
		rate := total
		if inSystem > 0 {
			rate += 1
		}
		dt := rng.ExpFloat64() / rate
		tNext := t + dt
		if tNext > cfg.Warmup {
			lo := math.Max(t, cfg.Warmup)
			hi := math.Min(tNext, end)
			if hi > lo {
				totalAvg.Accumulate(float64(inSystem), hi-lo)
			}
		}
		t = tNext
		if t >= end {
			break
		}
		u := rng.Float64() * rate
		if u < total {
			i := pickSource(cum, u)
			d.Enqueue(Packet{User: i, Arrive: t})
			lq.bump(i, t, 1)
			inSystem++
			if t >= cfg.Warmup {
				res.Arrivals++
			}
		} else if inSystem > 0 {
			p := d.Dequeue()
			lq.bump(p.User, t, -1)
			inSystem--
			if t >= cfg.Warmup {
				res.Departures++
				departed[p.User]++
				delaySum[p.User] += t - p.Arrive
				if cfg.OnDeparture != nil {
					cfg.OnDeparture(p, t)
				}
			}
		}
	}
	lq.finish()

	res.Duration = cfg.Horizon
	for i := 0; i < n; i++ {
		res.AvgQueue[i] = lq.avgQueue(i)
		res.QueueCI95[i] = batchCI(lq.batchRow(i), batchLen)
		if departed[i] > 0 {
			res.AvgDelay[i] = delaySum[i] / float64(departed[i])
		} else {
			res.AvgDelay[i] = math.NaN()
		}
		res.Throughput[i] = float64(departed[i]) / cfg.Horizon
	}
	res.TotalAvgQueue = totalAvg.Value()
	return res, nil
}

// refTandem is the frozen tandem engine: direct draws and the linear
// stream scan the binary search replaced.
func refTandem(cfg TandemConfig) (TandemResult, error) {
	nLong, nA, nB := len(cfg.LongRates), len(cfg.CrossA), len(cfg.CrossB)
	nUsers := nLong + nA + nB
	if nUsers == 0 || cfg.NewDisc == nil || nLong == 0 {
		return TandemResult{}, ErrBadConfig
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 2e5
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 0.05 * cfg.Horizon
	}

	ratesA := make([]float64, nLong+nA)
	ratesB := make([]float64, nLong+nB)
	copy(ratesA, cfg.LongRates)
	copy(ratesA[nLong:], cfg.CrossA)
	copy(ratesB, cfg.LongRates)
	copy(ratesB[nLong:], cfg.CrossB)
	globalA := make([]int, len(ratesA))
	globalB := make([]int, len(ratesB))
	for i := range globalA {
		globalA[i] = i
	}
	for i := 0; i < nLong; i++ {
		globalB[i] = i
	}
	for i := 0; i < nB; i++ {
		globalB[nLong+i] = nLong + nA + i
	}

	rng := randdist.NewRand(cfg.Seed)
	discA := cfg.NewDisc()
	discB := cfg.NewDisc()
	discA.Reset(ratesA, rng)
	discB.Reset(ratesB, rng)

	extRates := make([]float64, 0, nUsers)
	extRates = append(extRates, ratesA...)
	extRates = append(extRates, cfg.CrossB...)
	extTotal := 0.0
	for _, r := range extRates {
		extTotal += r
	}

	end := cfg.Warmup + cfg.Horizon
	countsA := make([]int, nUsers)
	countsB := make([]int, nUsers)
	avgA := make([]stats.TimeAverage, nUsers)
	avgB := make([]stats.TimeAverage, nUsers)
	delaySum := make([]float64, nUsers)
	departed := make([]int64, nUsers)
	busyA, busyB := 0, 0

	t := 0.0
	for t < end {
		rate := extTotal
		if busyA > 0 {
			rate++
		}
		if busyB > 0 {
			rate++
		}
		dt := rng.ExpFloat64() / rate
		tNext := t + dt
		if tNext > cfg.Warmup {
			lo := math.Max(t, cfg.Warmup)
			hi := math.Min(tNext, end)
			if span := hi - lo; span > 0 {
				for u := 0; u < nUsers; u++ {
					avgA[u].Accumulate(float64(countsA[u]), span)
					avgB[u].Accumulate(float64(countsB[u]), span)
				}
			}
		}
		t = tNext
		if t >= end {
			break
		}
		u := rng.Float64() * rate
		switch {
		case u < extTotal:
			i := 0
			acc := extRates[0]
			for u > acc && i < len(extRates)-1 {
				i++
				acc += extRates[i]
			}
			if i < len(ratesA) {
				discA.Enqueue(Packet{User: i, Arrive: t})
				countsA[globalA[i]]++
				busyA++
			} else {
				local := nLong + (i - len(ratesA))
				discB.Enqueue(Packet{User: local, Arrive: t})
				countsB[globalB[local]]++
				busyB++
			}
		case u < extTotal+boolRate(busyA):
			p := discA.Dequeue()
			g := globalA[p.User]
			countsA[g]--
			busyA--
			if p.User < nLong {
				discB.Enqueue(Packet{User: p.User, Arrive: p.Arrive})
				countsB[g]++
				busyB++
			} else if t >= cfg.Warmup {
				departed[g]++
				delaySum[g] += t - p.Arrive
			}
		default:
			p := discB.Dequeue()
			g := globalB[p.User]
			countsB[g]--
			busyB--
			if t >= cfg.Warmup {
				departed[g]++
				delaySum[g] += t - p.Arrive
			}
		}
	}

	res := TandemResult{
		QueueA:        make([]float64, nUsers),
		QueueB:        make([]float64, nUsers),
		TotalQueue:    make([]float64, nUsers),
		EndToEndDelay: make([]float64, nUsers),
		Departures:    departed,
	}
	for u := 0; u < nUsers; u++ {
		res.QueueA[u] = avgA[u].Value()
		res.QueueB[u] = avgB[u].Value()
		res.TotalQueue[u] = res.QueueA[u] + res.QueueB[u]
		if departed[u] > 0 {
			res.EndToEndDelay[u] = delaySum[u] / float64(departed[u])
		} else {
			res.EndToEndDelay[u] = math.NaN()
		}
	}
	return res, nil
}

// sameF64s compares float slices bit for bit (NaN == NaN, +0 != −0):
// "statistically close" is not the contract here, identity is.
func sameF64s(t *testing.T, field string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d != %d", field, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Errorf("%s[%d]: got %v (%#x), want %v (%#x)", field, i,
				got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

func sameResult(t *testing.T, got, want Result) {
	t.Helper()
	sameF64s(t, "AvgQueue", got.AvgQueue, want.AvgQueue)
	sameF64s(t, "QueueCI95", got.QueueCI95, want.QueueCI95)
	sameF64s(t, "AvgDelay", got.AvgDelay, want.AvgDelay)
	sameF64s(t, "Throughput", got.Throughput, want.Throughput)
	if math.Float64bits(got.TotalAvgQueue) != math.Float64bits(want.TotalAvgQueue) {
		t.Errorf("TotalAvgQueue: got %v, want %v", got.TotalAvgQueue, want.TotalAvgQueue)
	}
	if got.Arrivals != want.Arrivals || got.Departures != want.Departures {
		t.Errorf("counts: got (%d,%d), want (%d,%d)",
			got.Arrivals, got.Departures, want.Arrivals, want.Departures)
	}
	if math.Float64bits(got.Duration) != math.Float64bits(want.Duration) {
		t.Errorf("Duration: got %v, want %v", got.Duration, want.Duration)
	}
}

var diffSeeds = []int64{1, 2, 7, 123}

func diffRates() [][]float64 {
	many := make([]float64, 64)
	for i := range many {
		many[i] = (0.5 + 0.5*float64(i%7)/6) * 0.9 / 64
	}
	return [][]float64{
		{0.5},
		{0.2, 0.3, 0.2},
		{0.6, 1e-12, 1e-12}, // adversarial: trailing rates below one ulp of the prefix sum
		many,
	}
}

// TestRunMatchesRef pins the batched memoryless engine against the frozen
// draw-per-event engine for every discipline family — including the
// randomized ones, which force the always-safe block size 1.
func TestRunMatchesRef(t *testing.T) {
	discs := map[string]func() Discipline{
		"fifo":     func() Discipline { return &FIFO{} },
		"lifo":     func() Discipline { return &LIFOPreemptive{} },
		"ps":       func() Discipline { return &ProcessorSharing{} },
		"hol-ps":   func() Discipline { return &HOLProcessorSharing{} },
		"polling":  func() Discipline { return &CyclicPolling{} },
		"rate-pri": func() Discipline { return &RatePriority{} },
		"fss":      func() Discipline { return &FairShareSplitter{} },
	}
	for name, mk := range discs {
		for _, rates := range diffRates() {
			for _, seed := range diffSeeds {
				cfg := Config{Rates: rates, Horizon: 1200, Seed: seed, Discipline: mk()}
				got, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s n=%d seed %d: Run: %v", name, len(rates), seed, err)
				}
				cfg.Discipline = mk()
				want, err := refRun(cfg)
				if err != nil {
					t.Fatalf("%s n=%d seed %d: refRun: %v", name, len(rates), seed, err)
				}
				t.Run("", func(t *testing.T) { sameResult(t, got, want) })
				if t.Failed() {
					t.Fatalf("%s n=%d seed %d diverged from the frozen engine", name, len(rates), seed)
				}
			}
		}
	}
}

// TestGMatchesHeap pins the calendar-queue general-service engine against
// the frozen heap engine across classifiers (exercising preemptive
// resume) and service distributions (exercising both batch modes).
func TestGMatchesHeap(t *testing.T) {
	classifiers := map[string]func() Classifier{
		"single": func() Classifier { return SingleClass{} },
		"rank":   func() Classifier { return &RankClass{} },
		"serial": func() Classifier { return &SerialClass{} },
	}
	services := map[string]randdist.Dist{
		"exp":   randdist.Exponential{},
		"det":   randdist.Deterministic{},
		"gamma": randdist.Gamma{K: 2},
	}
	for cname, mk := range classifiers {
		for sname, svc := range services {
			for _, rates := range diffRates() {
				for _, seed := range diffSeeds {
					cfg := GConfig{Rates: rates, Service: svc, Classify: mk(), Horizon: 1200, Seed: seed}
					got, err := RunG(cfg)
					if err != nil {
						t.Fatalf("%s/%s n=%d seed %d: RunG: %v", cname, sname, len(rates), seed, err)
					}
					cfg.Classify = mk()
					want, err := RunGHeap(cfg)
					if err != nil {
						t.Fatalf("%s/%s n=%d seed %d: RunGHeap: %v", cname, sname, len(rates), seed, err)
					}
					t.Run("", func(t *testing.T) { sameResult(t, got, want) })
					if t.Failed() {
						t.Fatalf("%s/%s n=%d seed %d diverged from the heap engine", cname, sname, len(rates), seed)
					}
				}
			}
		}
	}
}

// TestSchedMatchesHeap pins the calendar-queue scheduling engine against
// the frozen heap engine for both schedulers and all service shapes.
func TestSchedMatchesHeap(t *testing.T) {
	scheds := map[string]func() Scheduler{
		"fcfs": func() Scheduler { return &FCFSSched{} },
		"fq":   func() Scheduler { return &FQSched{} },
	}
	services := map[string]randdist.Dist{
		"exp":   randdist.Exponential{},
		"det":   randdist.Deterministic{},
		"gamma": randdist.Gamma{K: 2},
	}
	for schname, mk := range scheds {
		for sname, svc := range services {
			for _, rates := range diffRates() {
				for _, seed := range diffSeeds {
					cfg := SchedConfig{Rates: rates, Service: svc, Sched: mk(), Horizon: 1200, Seed: seed}
					got, err := RunSched(cfg)
					if err != nil {
						t.Fatalf("%s/%s n=%d seed %d: RunSched: %v", schname, sname, len(rates), seed, err)
					}
					cfg.Sched = mk()
					want, err := RunSchedHeap(cfg)
					if err != nil {
						t.Fatalf("%s/%s n=%d seed %d: RunSchedHeap: %v", schname, sname, len(rates), seed, err)
					}
					t.Run("", func(t *testing.T) { sameResult(t, got, want) })
					if t.Failed() {
						t.Fatalf("%s/%s n=%d seed %d diverged from the heap engine", schname, sname, len(rates), seed)
					}
				}
			}
		}
	}
}

// TestTandemMatchesRef pins the tandem engine (batched pairs, binary
// stream pick) against the frozen linear-scan engine.
func TestTandemMatchesRef(t *testing.T) {
	discs := map[string]func() Discipline{
		"fifo": func() Discipline { return &FIFO{} },
		"fss":  func() Discipline { return &FairShareSplitter{} },
		"ps":   func() Discipline { return &ProcessorSharing{} },
	}
	shapes := []TandemConfig{
		{LongRates: []float64{0.2}, CrossA: []float64{0.3}, CrossB: []float64{0.25}},
		{LongRates: []float64{0.1, 0.15}, CrossA: []float64{0.2, 0.1}, CrossB: []float64{0.3}},
		{LongRates: []float64{0.4}}, // no cross traffic at all
	}
	for name, mk := range discs {
		for _, shape := range shapes {
			for _, seed := range diffSeeds {
				cfg := shape
				cfg.Horizon = 1200
				cfg.Seed = seed
				cfg.NewDisc = mk
				got, err := RunTandem(cfg)
				if err != nil {
					t.Fatalf("%s seed %d: RunTandem: %v", name, seed, err)
				}
				want, err := refTandem(cfg)
				if err != nil {
					t.Fatalf("%s seed %d: refTandem: %v", name, seed, err)
				}
				sameF64s(t, "QueueA", got.QueueA, want.QueueA)
				sameF64s(t, "QueueB", got.QueueB, want.QueueB)
				sameF64s(t, "TotalQueue", got.TotalQueue, want.TotalQueue)
				sameF64s(t, "EndToEndDelay", got.EndToEndDelay, want.EndToEndDelay)
				for i := range got.Departures {
					if got.Departures[i] != want.Departures[i] {
						t.Errorf("Departures[%d]: got %d, want %d", i, got.Departures[i], want.Departures[i])
					}
				}
				if t.Failed() {
					t.Fatalf("%s seed %d diverged from the frozen tandem engine", name, seed)
				}
			}
		}
	}
}

// TestPickSourceClamp pins the arrival-pick bounds: no uniform draw — not
// the exact prefix-sum boundary, not a value beyond the last entry, not
// even NaN — may index past user n−1.
func TestPickSourceClamp(t *testing.T) {
	cases := [][]float64{
		{0.5},
		{0.2, 0.3, 0.2},
		{0.6, 1e-300, 1e-300},          // trailing rates vanish into the prefix sum
		{1e-300, 1e-300, 0.5},          // leading rates vanish
		{0.1, 0.1, 0.1, 0.1, 0.1, 0.1}, // repeated equal boundaries
	}
	for _, rates := range cases {
		cum := cumRates(rates)
		n := len(rates)
		total := cum[n-1]
		draws := []float64{
			0, total / 3, total,
			math.Nextafter(total, 2*total), // first float past the last boundary
			total * 2,                      // far past (cannot happen from a guarded caller, must still clamp)
			math.NaN(),
		}
		for i, c := range cum {
			draws = append(draws, c, math.Nextafter(c, 0), math.Nextafter(c, 2*total))
			_ = i
		}
		for _, u := range draws {
			got := pickSource(cum, u)
			if got < 0 || got >= n {
				t.Fatalf("rates %v draw %v: pickSource returned %d, out of [0,%d)", rates, u, got, n)
			}
			// Cross-check against the historical linear scan on every
			// non-NaN draw: same pick, boundary semantics included.
			if !math.IsNaN(u) {
				j := 0
				acc := rates[0]
				for u > acc && j < n-1 {
					j++
					acc += rates[j]
				}
				if got != j {
					t.Fatalf("rates %v draw %v: pickSource %d != linear scan %d", rates, u, got, j)
				}
			}
		}
	}
}
