package des

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// TraceRecord is one completed packet's life in the simulator.
type TraceRecord struct {
	// User is the packet's source.
	User int
	// Class is the priority class it was served in (0 for class-blind
	// disciplines).
	Class int
	// Arrive and Depart are its timestamps.
	Arrive, Depart float64
}

// Delay is the packet's total sojourn time.
func (t TraceRecord) Delay() float64 { return t.Depart - t.Arrive }

// Tracer collects per-packet records, bounded by a capacity to keep long
// runs affordable; once full, further records are counted but dropped.
type Tracer struct {
	// Records holds the collected packets in departure order.
	Records []TraceRecord
	// Dropped counts records discarded after capacity was reached.
	Dropped int64
	cap     int
}

// NewTracer returns a tracer bounded to capacity records (≤ 0 means a
// default of 100000).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 100000
	}
	return &Tracer{cap: capacity}
}

// Observe implements the departure hook.
func (tr *Tracer) Observe(p Packet, depart float64) {
	if len(tr.Records) >= tr.cap {
		tr.Dropped++
		return
	}
	tr.Records = append(tr.Records, TraceRecord{
		User:   p.User,
		Class:  p.Class,
		Arrive: p.Arrive,
		Depart: depart,
	})
}

// WriteCSV emits the trace as CSV (user, class, arrive, depart, delay).
func (tr *Tracer) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"user", "class", "arrive", "depart", "delay"}); err != nil {
		return err
	}
	for _, r := range tr.Records {
		rec := []string{
			strconv.Itoa(r.User),
			strconv.Itoa(r.Class),
			strconv.FormatFloat(r.Arrive, 'g', -1, 64),
			strconv.FormatFloat(r.Depart, 'g', -1, 64),
			strconv.FormatFloat(r.Delay(), 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// DelayPercentiles returns the requested delay percentiles (each in
// [0, 100]) for one user's packets, or NaNs when the user has no records.
func (tr *Tracer) DelayPercentiles(user int, ps ...float64) []float64 {
	var delays []float64
	for _, r := range tr.Records {
		if r.User == user {
			delays = append(delays, r.Delay())
		}
	}
	out := make([]float64, len(ps))
	if len(delays) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	insertionSort(delays)
	for i, p := range ps {
		idx := int(p / 100 * float64(len(delays)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(delays) {
			idx = len(delays) - 1
		}
		out[i] = delays[idx]
	}
	return out
}

// insertionSort avoids importing sort for a hot loop on mostly-sorted
// departure-ordered delays.
func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// String summarizes the tracer.
func (tr *Tracer) String() string {
	return fmt.Sprintf("trace{records=%d dropped=%d}", len(tr.Records), tr.Dropped)
}
