package des

import (
	"errors"
	"math"
	"testing"
)

// TestRunRejectsNaNConfig is the regression test for the silent-NaN bug:
// Config{Horizon: NaN} used to sail past validation and return
// all-NaN statistics with a nil error.  Every non-finite span must be
// ErrBadConfig across all four engines.
func TestRunRejectsNaNConfig(t *testing.T) {
	rates := []float64{0.2, 0.3}
	bad := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, v := range bad {
		if _, err := Run(Config{Rates: rates, Discipline: &FIFO{}, Horizon: v}); !errors.Is(err, ErrBadConfig) {
			t.Errorf("Run(Horizon=%v): err=%v, want ErrBadConfig", v, err)
		}
		if _, err := Run(Config{Rates: rates, Discipline: &FIFO{}, Warmup: v}); !errors.Is(err, ErrBadConfig) {
			t.Errorf("Run(Warmup=%v): err=%v, want ErrBadConfig", v, err)
		}
		if _, err := RunG(GConfig{Rates: rates, Horizon: v}); !errors.Is(err, ErrBadConfig) {
			t.Errorf("RunG(Horizon=%v): err=%v, want ErrBadConfig", v, err)
		}
		if _, err := RunSched(SchedConfig{Rates: rates, Warmup: v}); !errors.Is(err, ErrBadConfig) {
			t.Errorf("RunSched(Warmup=%v): err=%v, want ErrBadConfig", v, err)
		}
		if _, err := RunTandem(TandemConfig{
			LongRates: []float64{0.2},
			NewDisc:   func() Discipline { return &FIFO{} },
			Horizon:   v,
		}); !errors.Is(err, ErrBadConfig) {
			t.Errorf("RunTandem(Horizon=%v): err=%v, want ErrBadConfig", v, err)
		}
	}
	// NaN rates must not slip through the stability sum either.
	if _, err := RunTandem(TandemConfig{
		LongRates: []float64{math.NaN()},
		NewDisc:   func() Discipline { return &FIFO{} },
	}); !errors.Is(err, ErrBadConfig) {
		t.Error("RunTandem(NaN rate) should be ErrBadConfig")
	}
}

// TestRunReplicationsMatchesSequentialRuns checks the fan-out changes
// nothing: each replication must equal a direct Run with the same seed,
// for any worker count.
func TestRunReplicationsMatchesSequentialRuns(t *testing.T) {
	cfg := Config{Rates: []float64{0.15, 0.25}, Horizon: 2e4}
	seeds := []int64{1, 2, 3, 4, 5}

	want := make([]Result, len(seeds))
	for i, s := range seeds {
		c := cfg
		c.Discipline = &FIFO{}
		c.Seed = s
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	for _, workers := range []int{1, 4} {
		got, err := RunReplications(cfg, func() Discipline { return &FIFO{} }, seeds, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(seeds) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(seeds))
		}
		for i := range seeds {
			for u := range cfg.Rates {
				if got[i].AvgQueue[u] != want[i].AvgQueue[u] { // same seed, same stream: results must be bit-identical
					t.Errorf("workers=%d seed %d user %d: AvgQueue %v != sequential %v",
						workers, seeds[i], u, got[i].AvgQueue[u], want[i].AvgQueue[u])
				}
			}
			if got[i].Departures != want[i].Departures {
				t.Errorf("workers=%d seed %d: Departures %d != %d", workers, seeds[i], got[i].Departures, want[i].Departures)
			}
		}
	}
}

func TestRunReplicationsRejectsBadUse(t *testing.T) {
	cfg := Config{Rates: []float64{0.2}}
	mk := func() Discipline { return &FIFO{} }
	if _, err := RunReplications(cfg, nil, []int64{1}, 2); !errors.Is(err, ErrBadConfig) {
		t.Error("nil factory should be ErrBadConfig")
	}
	if _, err := RunReplications(cfg, mk, nil, 2); !errors.Is(err, ErrBadConfig) {
		t.Error("no seeds should be ErrBadConfig")
	}
	shared := cfg
	shared.OnDeparture = func(Packet, float64) {}
	if _, err := RunReplications(shared, mk, []int64{1}, 2); !errors.Is(err, ErrBadConfig) {
		t.Error("shared OnDeparture callback should be ErrBadConfig")
	}
	// A failing replication surfaces its seed and index.
	bad := Config{Rates: []float64{0.6, 0.6}}
	if _, err := RunReplications(bad, mk, []int64{7, 8}, 2); !errors.Is(err, ErrBadConfig) {
		t.Errorf("overloaded replications should wrap ErrBadConfig, got %v", err)
	}
}
