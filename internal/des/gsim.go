package des

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"greednet/internal/des/calq"
	"greednet/internal/randdist"
	"greednet/internal/stats"
)

// The general-service engine: Poisson arrivals, arbitrary unit-mean
// service-time distribution, and preemptive-resume strict priority across
// classes (FIFO within a class).  With a single class this is plain M/G/1
// FIFO; with the Table-1 thinning classifier it realizes the generalized
// serial (Fair Share) allocation; with rank classes it is HOL priority.
// Unlike the memoryless engine in des.go, service completions must be
// scheduled explicitly and preempted work tracked.
//
// Event management runs on the calendar queue in internal/des/calq (O(1)
// amortized per event, no boxing); the frozen container/heap engine it
// replaced survives in heapref.go as the differential baseline.  Variates
// come through internal/randdist batches whose block size is 1 unless the
// run's draw order is provably pure (see seedArrivals and streamfree.go),
// so every seeded stream is byte-identical to the historical engine.

// Classifier assigns a priority class (0 = highest) to an arriving packet.
type Classifier interface {
	// Name identifies the classifier.
	Name() string
	// Reset prepares for a run; rates are the per-user Poisson rates.
	Reset(rates []float64, rng *rand.Rand)
	// Classify returns the class for a packet from the given user, in
	// [0, NumClasses()).
	Classify(user int) int
	// NumClasses is the number of priority classes.
	NumClasses() int
}

// SingleClass puts every packet in one class: plain M/G/1 FIFO.
type SingleClass struct{}

// Name implements Classifier.
func (SingleClass) Name() string { return "fifo" }

// Reset implements Classifier.
func (SingleClass) Reset(rates []float64, rng *rand.Rand) {}

// Classify implements Classifier.
func (SingleClass) Classify(user int) int { return 0 }

// NumClasses implements Classifier.
func (SingleClass) NumClasses() int { return 1 }

// RankClass gives the k-th smallest-rate user priority class k: HOL strict
// priority keyed to the rate order.
type RankClass struct {
	rank []int
}

// Name implements Classifier.
func (rc *RankClass) Name() string { return "rate-priority" }

// Reset implements Classifier.
func (rc *RankClass) Reset(rates []float64, rng *rand.Rand) {
	n := len(rates)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return rates[idx[a]] < rates[idx[b]] })
	rc.rank = make([]int, n)
	for rank, u := range idx {
		rc.rank[u] = rank
	}
}

// Classify implements Classifier.
func (rc *RankClass) Classify(user int) int { return rc.rank[user] }

// NumClasses implements Classifier.
func (rc *RankClass) NumClasses() int { return len(rc.rank) }

// SerialClass is the Table-1 thinning classifier: the rank-k user's
// packets are spread over classes 0..k with probabilities proportional to
// the sorted-rate increments, realizing the serial (Fair Share) allocation
// for any service distribution.
type SerialClass struct {
	cdf [][]float64
	rng *rand.Rand
	n   int
}

// Name implements Classifier.
func (sc *SerialClass) Name() string { return "serial-splitter" }

// Reset implements Classifier.
func (sc *SerialClass) Reset(rates []float64, rng *rand.Rand) {
	n := len(rates)
	sc.n = n
	sc.rng = rng
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return rates[idx[a]] < rates[idx[b]] })
	sorted := make([]float64, n)
	rank := make([]int, n)
	for k, u := range idx {
		sorted[k] = rates[u]
		rank[u] = k
	}
	sc.cdf = make([][]float64, n)
	for u := 0; u < n; u++ {
		k := rank[u]
		cdf := make([]float64, k+1)
		prev, acc := 0.0, 0.0
		for m := 0; m <= k; m++ {
			acc += sorted[m] - prev
			prev = sorted[m]
			cdf[m] = acc / sorted[k]
		}
		cdf[k] = 1
		sc.cdf[u] = cdf
	}
}

// Classify implements Classifier.
func (sc *SerialClass) Classify(user int) int {
	cdf := sc.cdf[user]
	x := sc.rng.Float64()
	cls := sort.SearchFloat64s(cdf, x)
	if cls >= len(cdf) {
		cls = len(cdf) - 1
	}
	return cls
}

// NumClasses implements Classifier.
func (sc *SerialClass) NumClasses() int { return sc.n }

// GConfig parameterizes a general-service run.
type GConfig struct {
	// Rates are the per-user Poisson rates (Σ < 1 for stability).
	Rates []float64
	// Service is the unit-mean service-time distribution; default
	// exponential.
	Service randdist.Dist
	// Classify maps packets to preemptive priority classes; default
	// SingleClass (FIFO).
	Classify Classifier
	// Horizon, Warmup, Seed, Batches behave as in Config.
	Horizon, Warmup float64
	Seed            int64
	Batches         int
}

// gpacket is one job in the general-service engine.
type gpacket struct {
	user      int
	class     int
	arrive    float64
	remaining float64
}

// gpacketPool recycles gpackets across departures and arrivals so the
// steady-state event loop allocates nothing.  get overwrites every field
// at the call site; put is deliberately unannotated (its append may grow
// the free list) and is amortized against the arrival that created the
// packet.
type gpacketPool struct {
	free []*gpacket
}

func (pl *gpacketPool) get() *gpacket {
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		return p
	}
	return new(gpacket)
}

func (pl *gpacketPool) put(p *gpacket) { pl.free = append(pl.free, p) }

// deque is a double-ended packet queue (resumed packets re-enter at the
// front to preserve preemptive-resume FIFO order), backed by a
// power-of-two ring so both ends are O(1) and, once the ring has reached
// its high-water size, allocation-free — the old slice deque allocated a
// fresh backing array on every pushFront.
type deque struct {
	buf  []*gpacket
	head int // ring index of the front element
	n    int
}

// grow doubles the ring; unannotated, amortized against the pushes that
// filled it.
func (d *deque) grow() {
	c := 2 * len(d.buf)
	if c == 0 {
		c = 8
	}
	nb := make([]*gpacket, c)
	for i := 0; i < d.n; i++ {
		nb[i] = d.buf[(d.head+i)&(len(d.buf)-1)]
	}
	d.buf = nb
	d.head = 0
}

func (d *deque) pushBack(p *gpacket) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)&(len(d.buf)-1)] = p
	d.n++
}

func (d *deque) pushFront(p *gpacket) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1) & (len(d.buf) - 1)
	d.buf[d.head] = p
	d.n++
}

func (d *deque) popFront() *gpacket {
	p := d.buf[d.head]
	d.buf[d.head] = nil // release the slot: no stale packet outlives its queue stay
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.n--
	return p
}

func (d *deque) len() int { return d.n }

// seedArrivals initializes the calendar and schedules each source's first
// arrival.  The first-arrival variates prefetch in one FillExp call
// (byte-identical to the historical per-source draw loop).
//
// The bucket width is derived from the event RATE, not the pending-event
// span: the engines process ≈ 2·Σλ events per unit time (arrivals at
// rate Σλ, completions at rate busy ≈ Σλ for the unit-rate server), so
// 1/(2·Σλ) keeps about one event per bucket near the cursor and about
// one bucket step per dequeue.  Pending arrivals are exponentially
// spread, so a span-derived width would be stretched by the tail —
// piling width·density events into every cursor bucket and making the
// window slide through virgin buckets (first-touch growth allocations)
// for the whole run.  With the rate-derived width the tail simply wraps
// into later calendar years, which the windowed scan is built for, and
// after one year every bucket's capacity is recycled: the steady state
// allocates nothing.  The steady population is ≈ len(rates)+1 events, so
// no rehash ever fires to re-derive the width mid-run.
func seedArrivals(events *calq.Queue, rng *rand.Rand, rates []float64) {
	n := len(rates)
	arr := make([]float64, n)
	randdist.FillExp(rng, arr)
	total := 0.0
	for _, r := range rates {
		total += r
	}
	events.Init(n+1, 1/(2*total))
	for i, r := range rates {
		events.Enqueue(calq.Event{T: arr[i] / r, User: int32(i), Arr: true})
	}
}

// RunG simulates the general-service preemptive-priority station.
func RunG(cfg GConfig) (Result, error) {
	return RunGCtx(context.Background(), cfg)
}

// RunGCtx is RunG under a context; see RunCtx for the cancellation
// contract (typed error, no partial statistics).
func RunGCtx(ctx context.Context, cfg GConfig) (Result, error) {
	n := len(cfg.Rates)
	if n == 0 {
		return Result{}, ErrBadConfig
	}
	total := 0.0
	for _, r := range cfg.Rates {
		if r <= 0 || math.IsNaN(r) {
			return Result{}, ErrBadConfig
		}
		total += r
	}
	if total >= 1 {
		return Result{}, ErrBadConfig
	}
	if !validSpan(cfg.Horizon) || !validSpan(cfg.Warmup) {
		return Result{}, ErrBadConfig
	}
	if cfg.Service == nil {
		cfg.Service = randdist.Exponential{}
	}
	if cfg.Classify == nil {
		cfg.Classify = SingleClass{}
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 2e5
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 0.05 * cfg.Horizon
	}
	if cfg.Batches <= 0 {
		cfg.Batches = 20
	}

	rng := randdist.NewRand(cfg.Seed)
	cfg.Classify.Reset(cfg.Rates, rng)
	classes := make([]deque, cfg.Classify.NumClasses())

	end := cfg.Warmup + cfg.Horizon
	batchLen := cfg.Horizon / float64(cfg.Batches)

	lq := newLazyQueues(n, cfg.Batches, cfg.Warmup, end, batchLen)
	var totalAvg stats.TimeAverage
	delaySum := make([]float64, n)
	departed := make([]int64, n)
	var res Result
	res.AvgQueue = make([]float64, n)
	res.QueueCI95 = make([]float64, n)
	res.AvgDelay = make([]float64, n)
	res.Throughput = make([]float64, n)

	// After seeding, every rng draw is an inter-arrival or service
	// ExpFloat64 unless the classifier consumes the stream too; when the
	// order is provably pure-exponential the batch prefetches full blocks
	// and service draws come from the same batch, otherwise block size 1
	// reproduces the unbatched stream draw for draw.
	pureExp := randdist.IsExponential(cfg.Service) && streamFree(cfg.Classify)
	var eb randdist.ExpBatch
	eb.Init(rng, randdist.BlockSize(pureExp))

	var events calq.Queue
	seedArrivals(&events, rng, cfg.Rates)

	var pool gpacketPool
	var serving *gpacket
	servingToken := 0
	tokenSeq := 0
	compT := 0.0       // scheduled completion time of the serving packet
	var compSeq uint64 // its calendar stamp, for O(1) preemption removal
	inSystem := 0
	prev := 0.0

	startService := func(p *gpacket, now float64) {
		serving = p
		tokenSeq++
		servingToken = tokenSeq
		compT = now + p.remaining
		compSeq = events.Enqueue(calq.Event{T: compT, Token: servingToken})
	}
	nextFromQueues := func(now float64) {
		serving = nil
		for c := range classes {
			if classes[c].len() > 0 {
				startService(classes[c].popFront(), now)
				return
			}
		}
	}

	gate := ctxGate{ctx: ctx}
	for events.Len() > 0 {
		if err := gate.Err(); err != nil {
			return Result{}, err
		}
		ev, _ := events.DequeueMin()
		now := ev.T
		if now > end {
			now = end
		}
		// Accumulate the O(1) total-queue average over [prev, now); the
		// per-user integrals advance lazily at count changes (lq.bump).
		if now > cfg.Warmup && now > prev {
			lo := math.Max(prev, cfg.Warmup)
			span := now - lo
			if span > 0 {
				totalAvg.Accumulate(float64(inSystem), span)
			}
		}
		prev = now
		if ev.T > end {
			break
		}
		if ev.Arr {
			u := int(ev.User)
			events.Enqueue(calq.Event{T: ev.T + eb.Next()/cfg.Rates[u], User: ev.User, Arr: true})
			p := pool.get()
			p.user = u
			p.class = cfg.Classify.Classify(u)
			p.arrive = ev.T
			if pureExp {
				p.remaining = eb.Next()
			} else {
				p.remaining = cfg.Service.Sample(rng)
			}
			lq.bump(u, ev.T, 1)
			inSystem++
			if ev.T >= cfg.Warmup {
				res.Arrivals++
			}
			switch {
			case serving == nil:
				startService(p, ev.T)
			case p.class < serving.class:
				// Preempt: bank the remaining work and resume later.  The
				// engine tracks the pending completion's (time, stamp), so
				// canceling it is a direct calendar removal — the old heap
				// engine scanned the whole event array here.
				preempted := serving
				rem := compT - ev.T
				if rem < 0 {
					rem = 0
				}
				preempted.remaining = rem
				events.Remove(compT, compSeq)
				servingToken = -1 // invalidate
				classes[preempted.class].pushFront(preempted)
				startService(p, ev.T)
			default:
				classes[p.class].pushBack(p)
			}
		} else {
			if ev.Token != servingToken || serving == nil {
				continue // stale completion from a preempted service
			}
			p := serving
			lq.bump(p.user, ev.T, -1)
			inSystem--
			if ev.T >= cfg.Warmup {
				res.Departures++
				departed[p.user]++
				delaySum[p.user] += ev.T - p.arrive
			}
			pool.put(p)
			nextFromQueues(ev.T)
		}
	}

	lq.finish()

	res.Duration = cfg.Horizon
	//lint:allow ctxflow O(n) post-run stats assembly over per-source accumulators; the event loop above already honored the deadline
	for i := 0; i < n; i++ {
		res.AvgQueue[i] = lq.avgQueue(i)
		res.QueueCI95[i] = batchCI(lq.batchRow(i), batchLen)
		if departed[i] > 0 {
			res.AvgDelay[i] = delaySum[i] / float64(departed[i])
		} else {
			res.AvgDelay[i] = math.NaN()
		}
		res.Throughput[i] = float64(departed[i]) / cfg.Horizon
	}
	res.TotalAvgQueue = totalAvg.Value()
	return res, nil
}
