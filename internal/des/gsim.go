package des

import (
	"container/heap"
	"context"
	"math"
	"math/rand"
	"sort"

	"greednet/internal/randdist"
	"greednet/internal/stats"
)

// The general-service engine: Poisson arrivals, arbitrary unit-mean
// service-time distribution, and preemptive-resume strict priority across
// classes (FIFO within a class).  With a single class this is plain M/G/1
// FIFO; with the Table-1 thinning classifier it realizes the generalized
// serial (Fair Share) allocation; with rank classes it is HOL priority.
// Unlike the memoryless engine in des.go, service completions must be
// scheduled explicitly and preempted work tracked.

// Classifier assigns a priority class (0 = highest) to an arriving packet.
type Classifier interface {
	// Name identifies the classifier.
	Name() string
	// Reset prepares for a run; rates are the per-user Poisson rates.
	Reset(rates []float64, rng *rand.Rand)
	// Classify returns the class for a packet from the given user, in
	// [0, NumClasses()).
	Classify(user int) int
	// NumClasses is the number of priority classes.
	NumClasses() int
}

// SingleClass puts every packet in one class: plain M/G/1 FIFO.
type SingleClass struct{}

// Name implements Classifier.
func (SingleClass) Name() string { return "fifo" }

// Reset implements Classifier.
func (SingleClass) Reset(rates []float64, rng *rand.Rand) {}

// Classify implements Classifier.
func (SingleClass) Classify(user int) int { return 0 }

// NumClasses implements Classifier.
func (SingleClass) NumClasses() int { return 1 }

// RankClass gives the k-th smallest-rate user priority class k: HOL strict
// priority keyed to the rate order.
type RankClass struct {
	rank []int
}

// Name implements Classifier.
func (rc *RankClass) Name() string { return "rate-priority" }

// Reset implements Classifier.
func (rc *RankClass) Reset(rates []float64, rng *rand.Rand) {
	n := len(rates)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return rates[idx[a]] < rates[idx[b]] })
	rc.rank = make([]int, n)
	for rank, u := range idx {
		rc.rank[u] = rank
	}
}

// Classify implements Classifier.
func (rc *RankClass) Classify(user int) int { return rc.rank[user] }

// NumClasses implements Classifier.
func (rc *RankClass) NumClasses() int { return len(rc.rank) }

// SerialClass is the Table-1 thinning classifier: the rank-k user's
// packets are spread over classes 0..k with probabilities proportional to
// the sorted-rate increments, realizing the serial (Fair Share) allocation
// for any service distribution.
type SerialClass struct {
	cdf [][]float64
	rng *rand.Rand
	n   int
}

// Name implements Classifier.
func (sc *SerialClass) Name() string { return "serial-splitter" }

// Reset implements Classifier.
func (sc *SerialClass) Reset(rates []float64, rng *rand.Rand) {
	n := len(rates)
	sc.n = n
	sc.rng = rng
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return rates[idx[a]] < rates[idx[b]] })
	sorted := make([]float64, n)
	rank := make([]int, n)
	for k, u := range idx {
		sorted[k] = rates[u]
		rank[u] = k
	}
	sc.cdf = make([][]float64, n)
	for u := 0; u < n; u++ {
		k := rank[u]
		cdf := make([]float64, k+1)
		prev, acc := 0.0, 0.0
		for m := 0; m <= k; m++ {
			acc += sorted[m] - prev
			prev = sorted[m]
			cdf[m] = acc / sorted[k]
		}
		cdf[k] = 1
		sc.cdf[u] = cdf
	}
}

// Classify implements Classifier.
func (sc *SerialClass) Classify(user int) int {
	cdf := sc.cdf[user]
	x := sc.rng.Float64()
	cls := sort.SearchFloat64s(cdf, x)
	if cls >= len(cdf) {
		cls = len(cdf) - 1
	}
	return cls
}

// NumClasses implements Classifier.
func (sc *SerialClass) NumClasses() int { return sc.n }

// GConfig parameterizes a general-service run.
type GConfig struct {
	// Rates are the per-user Poisson rates (Σ < 1 for stability).
	Rates []float64
	// Service is the unit-mean service-time distribution; default
	// exponential.
	Service randdist.Dist
	// Classify maps packets to preemptive priority classes; default
	// SingleClass (FIFO).
	Classify Classifier
	// Horizon, Warmup, Seed, Batches behave as in Config.
	Horizon, Warmup float64
	Seed            int64
	Batches         int
}

// gpacket is one job in the general-service engine.
type gpacket struct {
	user      int
	class     int
	arrive    float64
	remaining float64
}

// gevent is a scheduled event.
type gevent struct {
	t     float64
	user  int  // arrival: which user; completion: unused
	token int  // completion: validity token
	isArr bool // arrival vs completion
}

type geventHeap []gevent

func (h geventHeap) Len() int            { return len(h) }
func (h geventHeap) Less(i, j int) bool  { return h[i].t < h[j].t }
func (h geventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *geventHeap) Push(x interface{}) { *h = append(*h, x.(gevent)) }
func (h *geventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// deque is a double-ended packet queue (resumed packets re-enter at the
// front to preserve preemptive-resume FIFO order).
type deque struct {
	items []*gpacket
}

func (d *deque) pushBack(p *gpacket)  { d.items = append(d.items, p) }
func (d *deque) pushFront(p *gpacket) { d.items = append([]*gpacket{p}, d.items...) }
func (d *deque) popFront() *gpacket {
	p := d.items[0]
	d.items = d.items[1:]
	return p
}
func (d *deque) len() int { return len(d.items) }

// RunG simulates the general-service preemptive-priority station.
func RunG(cfg GConfig) (Result, error) {
	return RunGCtx(context.Background(), cfg)
}

// RunGCtx is RunG under a context; see RunCtx for the cancellation
// contract (typed error, no partial statistics).
func RunGCtx(ctx context.Context, cfg GConfig) (Result, error) {
	n := len(cfg.Rates)
	if n == 0 {
		return Result{}, ErrBadConfig
	}
	total := 0.0
	for _, r := range cfg.Rates {
		if r <= 0 || math.IsNaN(r) {
			return Result{}, ErrBadConfig
		}
		total += r
	}
	if total >= 1 {
		return Result{}, ErrBadConfig
	}
	if !validSpan(cfg.Horizon) || !validSpan(cfg.Warmup) {
		return Result{}, ErrBadConfig
	}
	if cfg.Service == nil {
		cfg.Service = randdist.Exponential{}
	}
	if cfg.Classify == nil {
		cfg.Classify = SingleClass{}
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 2e5
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 0.05 * cfg.Horizon
	}
	if cfg.Batches <= 0 {
		cfg.Batches = 20
	}

	rng := randdist.NewRand(cfg.Seed)
	cfg.Classify.Reset(cfg.Rates, rng)
	classes := make([]deque, cfg.Classify.NumClasses())

	end := cfg.Warmup + cfg.Horizon
	batchLen := cfg.Horizon / float64(cfg.Batches)

	lq := newLazyQueues(n, cfg.Batches, cfg.Warmup, end, batchLen)
	var totalAvg stats.TimeAverage
	delaySum := make([]float64, n)
	departed := make([]int64, n)
	var res Result
	res.AvgQueue = make([]float64, n)
	res.QueueCI95 = make([]float64, n)
	res.AvgDelay = make([]float64, n)
	res.Throughput = make([]float64, n)

	var events geventHeap
	//lint:allow ctxflow O(n log n) event-heap seeding before the run loop; the run loop itself polls the gate
	for i, r := range cfg.Rates {
		heap.Push(&events, gevent{t: rng.ExpFloat64() / r, user: i, isArr: true})
	}
	var serving *gpacket
	servingToken := 0
	tokenSeq := 0
	inSystem := 0
	prev := 0.0

	startService := func(p *gpacket, now float64) {
		serving = p
		tokenSeq++
		servingToken = tokenSeq
		heap.Push(&events, gevent{t: now + p.remaining, token: servingToken})
	}
	nextFromQueues := func(now float64) {
		serving = nil
		for c := range classes {
			if classes[c].len() > 0 {
				startService(classes[c].popFront(), now)
				return
			}
		}
	}

	gate := ctxGate{ctx: ctx}
	for events.Len() > 0 {
		if err := gate.Err(); err != nil {
			return Result{}, err
		}
		ev := heap.Pop(&events).(gevent)
		now := ev.t
		if now > end {
			now = end
		}
		// Accumulate the O(1) total-queue average over [prev, now); the
		// per-user integrals advance lazily at count changes (lq.bump).
		if now > cfg.Warmup && now > prev {
			lo := math.Max(prev, cfg.Warmup)
			span := now - lo
			if span > 0 {
				totalAvg.Accumulate(float64(inSystem), span)
			}
		}
		prev = now
		if ev.t > end {
			break
		}
		if ev.isArr {
			u := ev.user
			heap.Push(&events, gevent{t: ev.t + rng.ExpFloat64()/cfg.Rates[u], user: u, isArr: true})
			p := &gpacket{
				user:      u,
				class:     cfg.Classify.Classify(u),
				arrive:    ev.t,
				remaining: cfg.Service.Sample(rng),
			}
			lq.bump(u, ev.t, 1)
			inSystem++
			if ev.t >= cfg.Warmup {
				res.Arrivals++
			}
			switch {
			case serving == nil:
				startService(p, ev.t)
			case p.class < serving.class:
				// Preempt: bank the remaining work and resume later.
				preempted := serving
				// Find the scheduled completion to compute remaining work:
				// remaining = scheduled completion − now; rather than
				// searching the heap, track it via the packet itself.
				preempted.remaining = preemptRemaining(&events, servingToken, ev.t)
				servingToken = -1 // invalidate
				classes[preempted.class].pushFront(preempted)
				startService(p, ev.t)
			default:
				classes[p.class].pushBack(p)
			}
		} else {
			if ev.token != servingToken || serving == nil {
				continue // stale completion from a preempted service
			}
			p := serving
			lq.bump(p.user, ev.t, -1)
			inSystem--
			if ev.t >= cfg.Warmup {
				res.Departures++
				departed[p.user]++
				delaySum[p.user] += ev.t - p.arrive
			}
			nextFromQueues(ev.t)
		}
	}

	lq.finish()

	res.Duration = cfg.Horizon
	//lint:allow ctxflow O(n) post-run stats assembly over per-source accumulators; the event loop above already honored the deadline
	for i := 0; i < n; i++ {
		res.AvgQueue[i] = lq.avgQueue(i)
		res.QueueCI95[i] = batchCI(lq.batchInt[i], batchLen)
		if departed[i] > 0 {
			res.AvgDelay[i] = delaySum[i] / float64(departed[i])
		} else {
			res.AvgDelay[i] = math.NaN()
		}
		res.Throughput[i] = float64(departed[i]) / cfg.Horizon
	}
	res.TotalAvgQueue = totalAvg.Value()
	return res, nil
}

// preemptRemaining removes the pending completion with the given token
// from the heap and returns its residual service time relative to now.
func preemptRemaining(events *geventHeap, token int, now float64) float64 {
	for i, ev := range *events {
		if !ev.isArr && ev.token == token {
			rem := ev.t - now
			heap.Remove(events, i)
			if rem < 0 {
				rem = 0
			}
			return rem
		}
	}
	return 0
}
