package des

import "math"

// lazyQueues tracks the per-user time-averaged queue statistics with lazy
// accumulation.  The historical event loop touched every user at every
// event — an O(N) scan per event just to record that N−1 counts had not
// changed.  Each user's count is piecewise constant between its own
// arrivals and departures, so the integral ∫ counts_i(t) dt only needs
// advancing when counts_i actually changes (bump) and once at the end of
// the measurement window (finish): O(1) amortized per event, with the
// same piecewise-constant integrand as the eager scan.
//
// Segments are clamped to the measurement window [warmup, end] at flush
// time, and zero-count segments are skipped — they contribute nothing to
// either the run integral or the batch-means integrals.
//
// Layout.  All per-user state lives in ONE flat float64 arena,
// interleaved per user: [count, lastT, integral, batch₀ … batch₋₁] —
// uStride header slots followed by the batch-means row.  At 10⁵ users
// the stats dwarf every cache level and each bump indexes a random
// user, so the miss count per bump IS the cost; the historical three
// parallel arrays plus a separately-allocated batch row cost four
// misses where the interleaved stride costs one or two (header and the
// current batch entry usually share or neighbor a cache line).  The
// count lives in a float64 slot: queue counts are tiny integers, exactly
// representable, and the arithmetic (count·segment) is bit-identical to
// the historical int-count version.
type lazyQueues struct {
	data []float64 // n strides of uStride+batches slots each

	warmup, end, batchLen float64
	batches               int
}

// Interleaved per-user slot offsets within a stride.
const (
	uCount    = 0 // current packets in system (integer-valued)
	uLastT    = 1 // start of the open constant-count segment
	uIntegral = 2 // ∫ count over [warmup, end] so far
	uStride   = 3 // header slots before the batch row
)

func newLazyQueues(n, batches int, warmup, end, batchLen float64) *lazyQueues {
	return &lazyQueues{
		data:     make([]float64, n*(uStride+batches)),
		warmup:   warmup,
		end:      end,
		batchLen: batchLen,
		batches:  batches,
	}
}

// user is user i's interleaved stride: header slots plus batch row.
//
//lint:hotpath
func (lq *lazyQueues) user(i int) []float64 {
	s := uStride + lq.batches
	return lq.data[i*s : (i+1)*s]
}

// batchRow is user i's per-batch integral row (valid after finish).
func (lq *lazyQueues) batchRow(i int) []float64 {
	return lq.user(i)[uStride:]
}

// flush closes user i's open constant-count segment at time now.
//
//lint:hotpath
func (lq *lazyQueues) flush(i int, now float64) {
	u := lq.user(i)
	if c := u[uCount]; c > 0 {
		lo := math.Max(u[uLastT], lq.warmup)
		hi := math.Min(now, lq.end)
		if hi > lo {
			u[uIntegral] += c * (hi - lo)
			accumulateBatchUser(u[uStride:], c, lo-lq.warmup, hi-lq.warmup, lq.batchLen, lq.batches)
		}
	}
	u[uLastT] = now
}

// bump records that user i's count changes by delta at time now, closing
// the constant-count segment that ends here.
//
//lint:hotpath
func (lq *lazyQueues) bump(i int, now float64, delta int) {
	lq.flush(i, now)
	lq.user(i)[uCount] += float64(delta)
}

// finish closes every user's open segment at the end of measurement.
// Statistics are complete only after finish.
func (lq *lazyQueues) finish() {
	n := len(lq.data) / (uStride + lq.batches)
	for i := 0; i < n; i++ {
		lq.flush(i, lq.end)
	}
}

// avgQueue returns the time-averaged queue of user i over the window.
func (lq *lazyQueues) avgQueue(i int) float64 {
	if dur := lq.end - lq.warmup; dur > 0 {
		return lq.user(i)[uIntegral] / dur
	}
	return math.NaN()
}

// accumulateBatchUser spreads one user's constant-count segment [lo, hi)
// (times relative to warmup) over the batch buckets.
//
// Boundary care: after lo advances to a batch boundary, int(lo/batchLen)
// can round down to the batch just finished (the division need not be
// exact), leaving bEnd ≤ lo.  The historical splitter's fallback dumped
// the whole remaining interval into that earlier batch — a small-bias bug
// while intervals were single event spans, a large one for the long
// constant-count segments flushed here — so the boundary case steps to
// the next batch instead.
// The count c is integer-valued (see lazyQueues layout); c·seg is
// bit-identical to the historical float64(int-count)·seg product.
func accumulateBatchUser(batchInt []float64, c float64, lo, hi, batchLen float64, batches int) {
	for lo < hi {
		b := int(lo / batchLen)
		if b >= batches {
			b = batches - 1
		}
		bEnd := float64(b+1) * batchLen
		if bEnd <= lo && b < batches-1 {
			b++
			bEnd = float64(b+1) * batchLen
		}
		seg := math.Min(hi, bEnd) - lo
		if seg <= 0 {
			// Only reachable in the clamped last batch, where the
			// remainder belongs anyway.
			seg = hi - lo
		}
		batchInt[b] += c * seg
		lo += seg
	}
}

// cumRates builds the left-to-right prefix sums of the arrival rates, the
// table behind the O(log N) arrival-source pick.  The summation order is
// the same as the historical linear scan's running accumulator, so the
// table entries equal the scan's intermediate sums bit for bit.
func cumRates(rates []float64) []float64 {
	cum := make([]float64, len(rates))
	acc := 0.0
	for i, r := range rates {
		acc += r
		cum[i] = acc
	}
	return cum
}

// pickSource returns the arrival source for the uniform draw u: the
// smallest i with u ≤ cum[i], clamped to the last source.  This is the
// binary-search form of the historical linear scan (advance while
// u > acc), choosing the identical source for every draw.
//
// The clamp is structural, not a patch-up branch: hi starts at
// len(cum)−1 and only ever decreases, so the result cannot index past
// user n−1 even when u exceeds cum[n−1].  Callers draw u = Float64()·rate
// with rate ≥ total; the caller's `u < total` guard uses total computed
// in the same left-to-right order as cum, so total == cum[n−1] bit for
// bit — but tiny trailing rates (cum entries separated by less than one
// ulp) and a draw landing exactly on cum[n−1] still land in range by the
// bound alone, with no float equality anywhere.  Degenerate u (NaN)
// compares false against every entry and resolves to source 0 rather
// than panicking.
//
//lint:hotpath
func pickSource(cum []float64, u float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if u > cum[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
