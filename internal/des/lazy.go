package des

import "math"

// lazyQueues tracks the per-user time-averaged queue statistics with lazy
// accumulation.  The historical event loop touched every user at every
// event — an O(N) scan per event just to record that N−1 counts had not
// changed.  Each user's count is piecewise constant between its own
// arrivals and departures, so the integral ∫ counts_i(t) dt only needs
// advancing when counts_i actually changes (bump) and once at the end of
// the measurement window (finish): O(1) amortized per event, with the
// same piecewise-constant integrand as the eager scan.
//
// Segments are clamped to the measurement window [warmup, end] at flush
// time, and zero-count segments are skipped — they contribute nothing to
// either the run integral or the batch-means integrals.
type lazyQueues struct {
	counts   []int       // current per-user packets in system
	lastT    []float64   // start of user i's open constant-count segment
	integral []float64   // ∫ counts_i over [warmup, end] so far
	batchInt [][]float64 // per-user, per-batch integrals for batch means

	warmup, end, batchLen float64
	batches               int
}

func newLazyQueues(n, batches int, warmup, end, batchLen float64) *lazyQueues {
	lq := &lazyQueues{
		counts:   make([]int, n),
		lastT:    make([]float64, n),
		integral: make([]float64, n),
		batchInt: make([][]float64, n),
		warmup:   warmup,
		end:      end,
		batchLen: batchLen,
		batches:  batches,
	}
	for i := range lq.batchInt {
		lq.batchInt[i] = make([]float64, batches)
	}
	return lq
}

// flush closes user i's open constant-count segment at time now.
func (lq *lazyQueues) flush(i int, now float64) {
	if c := lq.counts[i]; c > 0 {
		lo := math.Max(lq.lastT[i], lq.warmup)
		hi := math.Min(now, lq.end)
		if hi > lo {
			lq.integral[i] += float64(c) * (hi - lo)
			accumulateBatchUser(lq.batchInt[i], c, lo-lq.warmup, hi-lq.warmup, lq.batchLen, lq.batches)
		}
	}
	lq.lastT[i] = now
}

// bump records that user i's count changes by delta at time now, closing
// the constant-count segment that ends here.
//
//lint:hotpath
func (lq *lazyQueues) bump(i int, now float64, delta int) {
	lq.flush(i, now)
	lq.counts[i] += delta
}

// finish closes every user's open segment at the end of measurement.
// Statistics are complete only after finish.
func (lq *lazyQueues) finish() {
	for i := range lq.counts {
		lq.flush(i, lq.end)
	}
}

// avgQueue returns the time-averaged queue of user i over the window.
func (lq *lazyQueues) avgQueue(i int) float64 {
	if dur := lq.end - lq.warmup; dur > 0 {
		return lq.integral[i] / dur
	}
	return math.NaN()
}

// accumulateBatchUser spreads one user's constant-count segment [lo, hi)
// (times relative to warmup) over the batch buckets.
//
// Boundary care: after lo advances to a batch boundary, int(lo/batchLen)
// can round down to the batch just finished (the division need not be
// exact), leaving bEnd ≤ lo.  The historical splitter's fallback dumped
// the whole remaining interval into that earlier batch — a small-bias bug
// while intervals were single event spans, a large one for the long
// constant-count segments flushed here — so the boundary case steps to
// the next batch instead.
func accumulateBatchUser(batchInt []float64, c int, lo, hi, batchLen float64, batches int) {
	for lo < hi {
		b := int(lo / batchLen)
		if b >= batches {
			b = batches - 1
		}
		bEnd := float64(b+1) * batchLen
		if bEnd <= lo && b < batches-1 {
			b++
			bEnd = float64(b+1) * batchLen
		}
		seg := math.Min(hi, bEnd) - lo
		if seg <= 0 {
			// Only reachable in the clamped last batch, where the
			// remainder belongs anyway.
			seg = hi - lo
		}
		batchInt[b] += float64(c) * seg
		lo += seg
	}
}

// cumRates builds the left-to-right prefix sums of the arrival rates, the
// table behind the O(log N) arrival-source pick.  The summation order is
// the same as the historical linear scan's running accumulator, so the
// table entries equal the scan's intermediate sums bit for bit.
func cumRates(rates []float64) []float64 {
	cum := make([]float64, len(rates))
	acc := 0.0
	for i, r := range rates {
		acc += r
		cum[i] = acc
	}
	return cum
}

// pickSource returns the arrival source for the uniform draw u: the
// smallest i with u ≤ cum[i], clamped to the last source.  This is the
// binary-search form of the historical linear scan (advance while
// u > acc), choosing the identical source for every draw.
//
//lint:hotpath
func pickSource(cum []float64, u float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if u > cum[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
