package des

import (
	"context"
	"math"

	"greednet/internal/randdist"
	"greednet/internal/stats"
)

// Tandem simulation for the §5.4 network generalization: two exponential
// stations in series.  "Long" users traverse station A then station B;
// cross users visit only their own station.  The paper's network analysis
// treats each station's input as Poisson at the source rate; this
// simulator measures how good that approximation is.  By Burke's theorem
// the output of a class-blind M/M/1 station IS Poisson, so a FIFO tandem
// matches the approximation exactly (Jackson product form), while
// class-aware disciplines like the Fair Share splitter produce non-Poisson
// outputs and a measurable (small) drift.

// TandemConfig parameterizes a two-station tandem run.
type TandemConfig struct {
	// LongRates are the Poisson rates of users routed A → B.
	LongRates []float64
	// CrossA and CrossB are the rates of users local to each station.
	CrossA, CrossB []float64
	// NewDisc builds a fresh discipline instance per station (e.g.
	// func() Discipline { return &FairShareSplitter{} }).
	NewDisc func() Discipline
	// Horizon, Warmup, Seed behave as in Config.
	Horizon, Warmup float64
	Seed            int64
}

// TandemResult reports per-user, per-station measurements.  Users are
// indexed globally: long users first, then cross-A, then cross-B.
type TandemResult struct {
	// QueueA and QueueB are time-averaged per-user queue lengths at each
	// station (zero where a user does not visit).
	QueueA, QueueB []float64
	// TotalQueue is the per-user sum across its route.
	TotalQueue []float64
	// EndToEndDelay is the mean total sojourn of long users' packets (NaN
	// for cross users' entries).
	EndToEndDelay []float64
	// Departures counts post-warmup route completions per user.
	Departures []int64
}

// RunTandem simulates the tandem.  Both stations must be stable:
// Σ(long)+Σ(crossA) < 1 and Σ(long)+Σ(crossB) < 1.
func RunTandem(cfg TandemConfig) (TandemResult, error) {
	return RunTandemCtx(context.Background(), cfg)
}

// RunTandemCtx is RunTandem under a context; see RunCtx for the
// cancellation contract (typed error, no partial statistics).
func RunTandemCtx(ctx context.Context, cfg TandemConfig) (TandemResult, error) {
	nLong, nA, nB := len(cfg.LongRates), len(cfg.CrossA), len(cfg.CrossB)
	nUsers := nLong + nA + nB
	if nUsers == 0 || cfg.NewDisc == nil || nLong == 0 {
		return TandemResult{}, ErrBadConfig
	}
	sumLong := 0.0
	for _, r := range cfg.LongRates {
		if r <= 0 || math.IsNaN(r) {
			return TandemResult{}, ErrBadConfig
		}
		sumLong += r
	}
	loadA, loadB := sumLong, sumLong
	for _, r := range cfg.CrossA {
		if r <= 0 || math.IsNaN(r) {
			return TandemResult{}, ErrBadConfig
		}
		loadA += r
	}
	for _, r := range cfg.CrossB {
		if r <= 0 || math.IsNaN(r) {
			return TandemResult{}, ErrBadConfig
		}
		loadB += r
	}
	if loadA >= 1 || loadB >= 1 {
		return TandemResult{}, ErrBadConfig
	}
	if !validSpan(cfg.Horizon) || !validSpan(cfg.Warmup) {
		return TandemResult{}, ErrBadConfig
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 2e5
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 0.05 * cfg.Horizon
	}

	// Station-local user tables.  Station A serves long users (local 0..
	// nLong−1) then cross-A; station B serves long users then cross-B.
	ratesA := make([]float64, nLong+nA)
	ratesB := make([]float64, nLong+nB)
	copy(ratesA, cfg.LongRates)
	copy(ratesA[nLong:], cfg.CrossA)
	copy(ratesB, cfg.LongRates)
	copy(ratesB[nLong:], cfg.CrossB)
	globalA := make([]int, len(ratesA)) // station-A local → global user
	globalB := make([]int, len(ratesB))
	for i := range globalA {
		globalA[i] = i // long then cross-A
	}
	for i := 0; i < nLong; i++ {
		globalB[i] = i
	}
	for i := 0; i < nB; i++ {
		globalB[nLong+i] = nLong + nA + i
	}

	rng := randdist.NewRand(cfg.Seed)
	discA := cfg.NewDisc()
	discB := cfg.NewDisc()
	discA.Reset(ratesA, rng)
	discB.Reset(ratesB, rng)

	// External arrival streams: all of station A's users plus cross-B.
	extRates := make([]float64, 0, nUsers)
	extRates = append(extRates, ratesA...)     // long + cross-A (arrive at A)
	extRates = append(extRates, cfg.CrossB...) // arrive at B
	extTotal := 0.0
	for _, r := range extRates {
		extTotal += r
	}
	// Prefix sums for O(log N) stream picks; cumExt[len-1] accumulates in
	// the same order as extTotal above, so the binary search picks exactly
	// the stream the historical linear scan chose for every draw.
	cumExt := cumRates(extRates)

	end := cfg.Warmup + cfg.Horizon
	countsA := make([]int, nUsers)
	countsB := make([]int, nUsers)
	avgA := make([]stats.TimeAverage, nUsers)
	avgB := make([]stats.TimeAverage, nUsers)
	delaySum := make([]float64, nUsers)
	departed := make([]int64, nUsers)
	busyA, busyB := 0, 0

	// One (ExpFloat64, Float64) pair per iteration, batch-safe only when
	// BOTH station disciplines are stream-free; see RunCtx.
	var pb randdist.PairBatch
	pb.Init(rng, randdist.BlockSize(streamFree(discA) && streamFree(discB)))

	t := 0.0
	gate := ctxGate{ctx: ctx}
	for t < end {
		if err := gate.Err(); err != nil {
			return TandemResult{}, err
		}
		rate := extTotal
		if busyA > 0 {
			rate++
		}
		if busyB > 0 {
			rate++
		}
		e, uu := pb.Pair()
		dt := e / rate
		tNext := t + dt
		if tNext > cfg.Warmup {
			lo := math.Max(t, cfg.Warmup)
			hi := math.Min(tNext, end)
			if span := hi - lo; span > 0 {
				for u := 0; u < nUsers; u++ {
					avgA[u].Accumulate(float64(countsA[u]), span)
					avgB[u].Accumulate(float64(countsB[u]), span)
				}
			}
		}
		t = tNext
		if t >= end {
			break
		}
		u := uu * rate
		switch {
		case u < extTotal:
			// External arrival: pick the stream by binary search on the
			// prefix sums (same pick as the old linear scan, clamped to the
			// last stream just as the scan's bounds check was).
			i := pickSource(cumExt, u)
			if i < len(ratesA) {
				// Arrives at station A (long or cross-A); local index i.
				discA.Enqueue(Packet{User: i, Arrive: t})
				countsA[globalA[i]]++
				busyA++
			} else {
				// Cross-B user; local index at B is nLong + (i − len(ratesA)).
				local := nLong + (i - len(ratesA))
				discB.Enqueue(Packet{User: local, Arrive: t})
				countsB[globalB[local]]++
				busyB++
			}
		case u < extTotal+boolRate(busyA):
			// Station A completion.
			p := discA.Dequeue()
			g := globalA[p.User]
			countsA[g]--
			busyA--
			if p.User < nLong {
				// Long user: forward to B, preserving the original arrival
				// time for end-to-end delay.
				discB.Enqueue(Packet{User: p.User, Arrive: p.Arrive})
				countsB[g]++
				busyB++
			} else if t >= cfg.Warmup {
				departed[g]++
				delaySum[g] += t - p.Arrive
			}
		default:
			// Station B completion.
			p := discB.Dequeue()
			g := globalB[p.User]
			countsB[g]--
			busyB--
			if t >= cfg.Warmup {
				departed[g]++
				delaySum[g] += t - p.Arrive
			}
		}
	}

	res := TandemResult{
		QueueA:        make([]float64, nUsers),
		QueueB:        make([]float64, nUsers),
		TotalQueue:    make([]float64, nUsers),
		EndToEndDelay: make([]float64, nUsers),
		Departures:    departed,
	}
	//lint:allow ctxflow O(n) post-run stats assembly over per-user accumulators; the event loop above already honored the deadline
	for u := 0; u < nUsers; u++ {
		res.QueueA[u] = avgA[u].Value()
		res.QueueB[u] = avgB[u].Value()
		res.TotalQueue[u] = res.QueueA[u] + res.QueueB[u]
		if departed[u] > 0 {
			res.EndToEndDelay[u] = delaySum[u] / float64(departed[u])
		} else {
			res.EndToEndDelay[u] = math.NaN()
		}
	}
	return res, nil
}

func boolRate(busy int) float64 {
	if busy > 0 {
		return 1
	}
	return 0
}
