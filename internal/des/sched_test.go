package des

import (
	"math"
	"testing"

	"greednet/internal/mm1"
	"greednet/internal/randdist"
)

func runSched(t *testing.T, cfg SchedConfig) Result {
	t.Helper()
	res, err := RunSched(cfg)
	if err != nil {
		t.Fatalf("RunSched: %v", err)
	}
	return res
}

func TestFCFSSchedMatchesPK(t *testing.T) {
	// The FCFS scheduler must reproduce the P-K mean for any service law.
	rates := []float64{0.2, 0.3}
	for _, cv2 := range []float64{0, 1, 2} {
		res := runSched(t, SchedConfig{
			Rates:   rates,
			Service: randdist.FromCV2(cv2),
			Sched:   &FCFSSched{},
			Horizon: 4e5,
			Seed:    21,
		})
		want := mm1.MG1{CV2: cv2}.L(0.5)
		if math.Abs(res.TotalAvgQueue-want) > 0.06*want {
			t.Errorf("cv²=%v: total %v, want %v", cv2, res.TotalAvgQueue, want)
		}
	}
}

func TestFQTotalQueueConservedDeterministic(t *testing.T) {
	// The Kleinrock conservation law covers non-preemptive work-conserving
	// disciplines that ignore service times.  FQ's finish tags DO use
	// packet lengths, so conservation is only guaranteed when lengths are
	// constant — where it must match the M/D/1 P-K value exactly.
	rates := []float64{0.1, 0.2, 0.4}
	res := runSched(t, SchedConfig{
		Rates:   rates,
		Service: randdist.Deterministic{},
		Sched:   &FQSched{},
		Horizon: 4e5,
		Seed:    22,
	})
	want := mm1.MD1().L(0.7)
	if math.Abs(res.TotalAvgQueue-want) > 0.06*want {
		t.Errorf("FQ total %v, want conserved %v", res.TotalAvgQueue, want)
	}
}

func TestFQShortPacketBiasWithExponentialLengths(t *testing.T) {
	// With variable lengths the finish tags mildly favor short packets
	// (an SJF flavor), so FQ's mean total number in system falls at or
	// below the FIFO/P-K value — never above.
	rates := []float64{0.1, 0.2, 0.4}
	res := runSched(t, SchedConfig{
		Rates:   rates,
		Service: randdist.Exponential{},
		Sched:   &FQSched{},
		Horizon: 4e5,
		Seed:    22,
	})
	pk := mm1.MG1{CV2: 1}.L(0.7)
	if res.TotalAvgQueue > 1.03*pk {
		t.Errorf("FQ total %v should not exceed P-K %v", res.TotalAvgQueue, pk)
	}
	if res.TotalAvgQueue < 0.7*pk {
		t.Errorf("FQ total %v implausibly far below P-K %v", res.TotalAvgQueue, pk)
	}
}

func TestFQSymmetricFlows(t *testing.T) {
	// Equal-rate flows must receive equal treatment under FQ.
	rates := []float64{0.2, 0.2, 0.2}
	res := runSched(t, SchedConfig{
		Rates:   rates,
		Sched:   &FQSched{},
		Horizon: 4e5,
		Seed:    23,
	})
	for i := 1; i < 3; i++ {
		if math.Abs(res.AvgQueue[i]-res.AvgQueue[0]) > 6*(res.QueueCI95[i]+res.QueueCI95[0]) {
			t.Errorf("asymmetric FQ queues: %v", res.AvgQueue)
		}
	}
}

func TestFQInsulatesLightFlow(t *testing.T) {
	// §5.2's claim: under FQ a light flow's delay is far below its FIFO
	// delay when a heavy flow dominates, and near the Fair Share ideal's
	// delay ballpark.
	rates := []float64{0.05, 0.7}
	fq := runSched(t, SchedConfig{Rates: rates, Sched: &FQSched{}, Horizon: 4e5, Seed: 24})
	ff := runSched(t, SchedConfig{Rates: rates, Sched: &FCFSSched{}, Horizon: 4e5, Seed: 24})
	if fq.AvgDelay[0] > 0.7*ff.AvgDelay[0] {
		t.Errorf("FQ should cut the light flow's delay: FQ %v vs FIFO %v",
			fq.AvgDelay[0], ff.AvgDelay[0])
	}
	// The heavy flow absorbs the backlog it creates.
	if fq.AvgQueue[1] <= ff.AvgQueue[1] {
		t.Errorf("heavy flow should carry more under FQ: %v vs %v",
			fq.AvgQueue[1], ff.AvgQueue[1])
	}
}

func TestFQProtectionAgainstFlooding(t *testing.T) {
	// A near-saturating attacker cannot drag a light flow's delay far up
	// under FQ; under FIFO the delay explodes with load.
	light := 0.05
	fqLowLoad := runSched(t, SchedConfig{Rates: []float64{light, 0.3}, Sched: &FQSched{}, Horizon: 3e5, Seed: 25})
	fqHighLoad := runSched(t, SchedConfig{Rates: []float64{light, 0.9}, Sched: &FQSched{}, Horizon: 3e5, Seed: 25})
	ffHighLoad := runSched(t, SchedConfig{Rates: []float64{light, 0.9}, Sched: &FCFSSched{}, Horizon: 3e5, Seed: 25})
	if fqHighLoad.AvgDelay[0] > 4*fqLowLoad.AvgDelay[0] {
		t.Errorf("FQ light-flow delay should be nearly load-insensitive: %v vs %v",
			fqHighLoad.AvgDelay[0], fqLowLoad.AvgDelay[0])
	}
	if ffHighLoad.AvgDelay[0] < 3*fqHighLoad.AvgDelay[0] {
		t.Errorf("FIFO should hurt the light flow far more: fifo %v vs fq %v",
			ffHighLoad.AvgDelay[0], fqHighLoad.AvgDelay[0])
	}
}

func TestRunSchedRejectsBadConfig(t *testing.T) {
	if _, err := RunSched(SchedConfig{}); err == nil {
		t.Error("empty config should error")
	}
	if _, err := RunSched(SchedConfig{Rates: []float64{0.6, 0.6}}); err == nil {
		t.Error("overload should error")
	}
}

func TestRunSchedDeterministic(t *testing.T) {
	cfg := SchedConfig{Rates: []float64{0.2, 0.3}, Sched: &FQSched{}, Horizon: 1e4, Seed: 9}
	a := runSched(t, cfg)
	cfg.Sched = &FQSched{}
	b := runSched(t, cfg)
	for i := range a.AvgQueue {
		if a.AvgQueue[i] != b.AvgQueue[i] {
			t.Fatal("same seed must reproduce")
		}
	}
}

func TestFQSchedTagMonotonicity(t *testing.T) {
	// Within one flow, finish tags must be nondecreasing.
	var f FQSched
	f.Reset([]float64{1, 1})
	prev := -1.0
	for k := 0; k < 20; k++ {
		p := &gpacket{user: 0, remaining: 0.5}
		f.Enqueue(p, float64(k)*0.1)
		it := f.h[0]
		_ = it
		if f.lastFinish[0] < prev {
			t.Fatalf("finish tags regressed at packet %d", k)
		}
		prev = f.lastFinish[0]
	}
	if f.Len() != 20 {
		t.Errorf("len %d", f.Len())
	}
}
