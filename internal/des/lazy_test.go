package des

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// countEvent is one count change in a synthetic event stream.
type countEvent struct {
	t     float64
	user  int
	delta int
}

// eagerAccumulate is the historical per-event accumulation, kept as the
// in-test reference: at every event it scans all users, adding each one's
// constant count over the elapsed interval (clipped to [warmup, end]) to
// the run integral and the batch buckets.  (The batch split reuses the
// boundary-corrected accumulateBatchUser — the historical splitter could
// dump an interval's remainder into the wrong batch when a split landed
// exactly on a batch boundary — so the comparison isolates the lazy
// bookkeeping, not that fixed bias.)
func eagerAccumulate(n, batches int, warmup, end, batchLen float64, evs []countEvent) ([]float64, [][]float64) {
	counts := make([]int, n)
	integral := make([]float64, n)
	batchInt := make([][]float64, n)
	for i := range batchInt {
		batchInt[i] = make([]float64, batches)
	}
	prev := 0.0
	accumulate := func(now float64) {
		lo := math.Max(prev, warmup)
		hi := math.Min(now, end)
		if hi > lo {
			for i, c := range counts {
				if c > 0 {
					integral[i] += float64(c) * (hi - lo)
					accumulateBatchUser(batchInt[i], float64(c), lo-warmup, hi-warmup, batchLen, batches)
				}
			}
		}
		prev = now
	}
	for _, ev := range evs {
		accumulate(ev.t)
		counts[ev.user] += ev.delta
	}
	accumulate(end)
	return integral, batchInt
}

// The lazy per-user accumulation must agree with the historical eager
// scan on the run integrals and the batch-means integrals, for event
// streams that straddle the warmup boundary, batch boundaries, and the
// horizon end.  (Bit-identity is not expected — the lazy path sums one
// product per constant-count segment where the eager path summed one per
// event — so the comparison is a tight relative tolerance.)
func TestLazyQueuesMatchesEagerReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		batches := 1 + rng.Intn(6)
		warmup := rng.Float64() * 2
		horizon := 1 + rng.Float64()*8
		end := warmup + horizon
		batchLen := horizon / float64(batches)

		counts := make([]int, n)
		var evs []countEvent
		tt := 0.0
		for len(evs) < 60 {
			tt += rng.ExpFloat64() * 0.2
			if tt >= end+1 { // events past the horizon must be ignored
				break
			}
			u := rng.Intn(n)
			delta := 1
			if counts[u] > 0 && rng.Intn(2) == 0 {
				delta = -1
			}
			counts[u] += delta
			evs = append(evs, countEvent{t: tt, user: u, delta: delta})
		}

		wantInt, wantBatch := eagerAccumulate(n, batches, warmup, end, batchLen, evs)
		lq := newLazyQueues(n, batches, warmup, end, batchLen)
		for _, ev := range evs {
			if ev.t >= end {
				break
			}
			lq.bump(ev.user, ev.t, ev.delta)
		}
		lq.finish()

		for i := 0; i < n; i++ {
			if d := math.Abs(lq.user(i)[uIntegral] - wantInt[i]); d > 1e-9*(1+wantInt[i]) {
				t.Fatalf("trial %d user %d: lazy integral %v, eager %v", trial, i, lq.user(i)[uIntegral], wantInt[i])
			}
			for b := 0; b < batches; b++ {
				if d := math.Abs(lq.batchRow(i)[b] - wantBatch[i][b]); d > 1e-9*(1+wantBatch[i][b]) {
					t.Fatalf("trial %d user %d batch %d: lazy %v, eager %v",
						trial, i, b, lq.batchRow(i)[b], wantBatch[i][b])
				}
			}
		}
	}
}

// The binary-search source pick must choose the identical source as the
// historical linear scan for every draw, including draws that land
// exactly on a prefix sum and draws beyond the last one.
func TestPickSourceMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	linear := func(rates []float64, u float64) int {
		i := 0
		acc := rates[0]
		for u > acc && i < len(rates)-1 {
			i++
			acc += rates[i]
		}
		return i
	}
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(12)
		rates := make([]float64, n)
		total := 0.0
		for i := range rates {
			rates[i] = 0.01 + rng.Float64()
			total += rates[i]
		}
		cum := cumRates(rates)
		for k := 0; k < 40; k++ {
			u := rng.Float64() * total * 1.01 // occasionally past the end
			if got, want := pickSource(cum, u), linear(rates, u); got != want {
				t.Fatalf("rates=%v u=%v: binary %d, linear %d", rates, u, got, want)
			}
		}
		for _, u := range cum { // exact boundary draws
			if got, want := pickSource(cum, u), linear(rates, u); got != want {
				t.Fatalf("rates=%v boundary u=%v: binary %d, linear %d", rates, u, got, want)
			}
		}
	}
}

// The steady-state event loop must be O(1) amortized allocations per
// event: doubling the horizon roughly doubles the event count, and the
// extra events must cost (amortized) nothing beyond occasional queue
// regrowth.  This is the allocs/event regression gate for the lazy
// accumulation rewrite.
func TestRunSteadyStateAllocsPerEvent(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc-scaling gate needs a long horizon")
	}
	run := func(h float64) (uint64, int64) {
		cfg := Config{
			Rates:      []float64{0.2, 0.3, 0.2},
			Discipline: &FIFO{},
			Horizon:    h,
			Warmup:     100,
			Seed:       7,
		}
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		res, err := Run(cfg)
		runtime.ReadMemStats(&m1)
		if err != nil {
			t.Fatal(err)
		}
		return m1.Mallocs - m0.Mallocs, res.Arrivals + res.Departures
	}
	m1, e1 := run(2e4)
	m2, e2 := run(4e4)
	if e2 <= e1 {
		t.Fatalf("event counts did not grow with horizon: %d then %d", e1, e2)
	}
	extraAllocs := float64(m2) - float64(m1)
	extraEvents := float64(e2 - e1)
	if perEvent := extraAllocs / extraEvents; perEvent > 0.01 {
		t.Errorf("steady-state loop allocates %.4f/event (extra allocs %v over %v extra events), want ~0",
			perEvent, extraAllocs, extraEvents)
	}
}
