package des

import (
	"math"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/network"
)

func TestTandemFIFOMatchesJackson(t *testing.T) {
	// Burke's theorem: a class-blind M/M/1's output is Poisson, so a FIFO
	// tandem has Jackson product form and the Poisson approximation is
	// exact — measured queues must match the network model within noise.
	cfg := TandemConfig{
		LongRates: []float64{0.2},
		CrossA:    []float64{0.3},
		CrossB:    []float64{0.25},
		NewDisc:   func() Discipline { return &FIFO{} },
		Horizon:   4e5,
		Seed:      31,
	}
	res, err := RunTandem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := network.New(2, [][]int{{0, 1}, {0}, {1}}, alloc.Proportional{})
	if err != nil {
		t.Fatal(err)
	}
	want := nw.Congestion([]float64{0.2, 0.3, 0.25})
	for u := range want {
		if math.Abs(res.TotalQueue[u]-want[u]) > 0.05*want[u]+0.02 {
			t.Errorf("user %d: measured %v, Jackson %v", u, res.TotalQueue[u], want[u])
		}
	}
}

func TestTandemFairShareApproximationQuality(t *testing.T) {
	// With Fair Share (priority) stations the outputs are not Poisson;
	// the approximation should still be qualitatively right (within ~20%)
	// and the insulation property must hold end to end.
	cfg := TandemConfig{
		LongRates: []float64{0.1},
		CrossA:    []float64{0.45},
		CrossB:    []float64{0.35},
		NewDisc:   func() Discipline { return &FairShareSplitter{} },
		Horizon:   4e5,
		Seed:      32,
	}
	res, err := RunTandem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := network.New(2, [][]int{{0, 1}, {0}, {1}}, alloc.FairShare{})
	if err != nil {
		t.Fatal(err)
	}
	want := nw.Congestion([]float64{0.1, 0.45, 0.35})
	for u := range want {
		rel := math.Abs(res.TotalQueue[u]-want[u]) / want[u]
		if rel > 0.2 {
			t.Errorf("user %d: measured %v vs approx %v (rel %v)", u, res.TotalQueue[u], want[u], rel)
		}
	}
	// End-to-end insulation: the light long flow's summed queue stays at
	// most its two-hop protection bound.
	bound := nw.ProtectionBound(0, 0.1)
	if res.TotalQueue[0] > bound*1.1 {
		t.Errorf("long flow queue %v above two-hop bound %v", res.TotalQueue[0], bound)
	}
}

func TestTandemCrossUsersUnaffectedByOtherStation(t *testing.T) {
	// Cross-A users never appear at station B and vice versa.
	res, err := RunTandem(TandemConfig{
		LongRates: []float64{0.1},
		CrossA:    []float64{0.2},
		CrossB:    []float64{0.2},
		NewDisc:   func() Discipline { return &FIFO{} },
		Horizon:   5e4,
		Seed:      33,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QueueB[1] != 0 {
		t.Errorf("cross-A user has station-B queue %v", res.QueueB[1])
	}
	if res.QueueA[2] != 0 {
		t.Errorf("cross-B user has station-A queue %v", res.QueueA[2])
	}
}

func TestTandemEndToEndDelayViaLittle(t *testing.T) {
	cfg := TandemConfig{
		LongRates: []float64{0.2},
		CrossA:    []float64{0.2},
		CrossB:    []float64{0.3},
		NewDisc:   func() Discipline { return &FIFO{} },
		Horizon:   3e5,
		Seed:      34,
	}
	res, err := RunTandem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Little's law over the long flow's whole route.
	pred := 0.2 * res.EndToEndDelay[0]
	if math.Abs(pred-res.TotalQueue[0]) > 0.08*res.TotalQueue[0] {
		t.Errorf("Little's law end-to-end: λd=%v vs q=%v", pred, res.TotalQueue[0])
	}
}

func TestTandemRejectsBadConfig(t *testing.T) {
	if _, err := RunTandem(TandemConfig{}); err == nil {
		t.Error("empty config should error")
	}
	if _, err := RunTandem(TandemConfig{
		LongRates: []float64{0.5},
		CrossA:    []float64{0.6},
		NewDisc:   func() Discipline { return &FIFO{} },
	}); err == nil {
		t.Error("overloaded station should error")
	}
	if _, err := RunTandem(TandemConfig{
		CrossA:  []float64{0.2},
		NewDisc: func() Discipline { return &FIFO{} },
	}); err == nil {
		t.Error("tandem without long users should error")
	}
}
