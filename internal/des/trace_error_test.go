package des

import (
	"errors"
	"math"
	"testing"
)

// limitWriter fails once more than limit bytes have been written, standing
// in for a full disk or closed pipe.
type limitWriter struct {
	limit   int
	written int
}

var errSinkFull = errors.New("sink full")

func (w *limitWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.limit {
		n := w.limit - w.written
		if n < 0 {
			n = 0
		}
		w.written = w.limit
		return n, errSinkFull
	}
	w.written += len(p)
	return len(p), nil
}

func TestWriteCSVHeaderError(t *testing.T) {
	tr := NewTracer(10)
	if err := tr.WriteCSV(&limitWriter{limit: 0}); !errors.Is(err, errSinkFull) {
		t.Errorf("WriteCSV to a dead writer = %v, want %v", err, errSinkFull)
	}
}

func TestWriteCSVMidRecordError(t *testing.T) {
	tr := NewTracer(100000)
	for i := 0; i < 5000; i++ {
		tr.Observe(Packet{User: i % 3, Arrive: float64(i)}, float64(i)+0.5)
	}
	// Enough room for the header and some records, not the whole trace,
	// so the failure surfaces from a record write or the final flush.
	if err := tr.WriteCSV(&limitWriter{limit: 4096}); !errors.Is(err, errSinkFull) {
		t.Errorf("WriteCSV to a filling writer = %v, want %v", err, errSinkFull)
	}
}

func TestDelayPercentilesNoRecordsIsNaN(t *testing.T) {
	tr := NewTracer(10)
	tr.Observe(Packet{User: 0, Arrive: 1}, 2)
	got := tr.DelayPercentiles(7, 50, 99) // user 7 never departed
	if len(got) != 2 || !math.IsNaN(got[0]) || !math.IsNaN(got[1]) {
		t.Errorf("DelayPercentiles(absent user) = %v, want NaNs", got)
	}
}

func TestDelayPercentilesClampsRange(t *testing.T) {
	tr := NewTracer(10)
	for i := 0; i < 4; i++ {
		tr.Observe(Packet{User: 0, Arrive: 0}, float64(i+1)) // delays 1..4
	}
	got := tr.DelayPercentiles(0, -5, 0, 100, 150)
	want := []float64{1, 1, 4, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("DelayPercentiles clamp: got %v, want %v", got, want)
			break
		}
	}
}
