package calq

import (
	"math"
	"testing"

	"greednet/internal/randdist"
)

// model is the reference priority queue: a flat slice scanned for the
// (T, seq)-lexicographic minimum.  Dead slow and obviously correct.
type model struct {
	evs []Event
}

func (m *model) enqueue(ev Event) { m.evs = append(m.evs, ev) }
func (m *model) len() int         { return len(m.evs) }
func (m *model) remove(seq uint64) bool {
	for i := range m.evs {
		if m.evs[i].seq == seq {
			m.evs = append(m.evs[:i], m.evs[i+1:]...)
			return true
		}
	}
	return false
}
func (m *model) popMin() Event {
	best := 0
	for i := range m.evs {
		if eventBefore(m.evs[i], m.evs[best]) {
			best = i
		}
	}
	ev := m.evs[best]
	m.evs = append(m.evs[:best], m.evs[best+1:]...)
	return ev
}

func sameEvent(a, b Event) bool {
	return math.Float64bits(a.T) == math.Float64bits(b.T) &&
		a.User == b.User && a.Token == b.Token && a.Arr == b.Arr && a.seq == b.seq
}

// TestFIFOTieBreak pins the tie-break contract: events enqueued with
// exactly equal timestamps dequeue in insertion order, interleaved
// arbitrarily with distinct-time events.
func TestFIFOTieBreak(t *testing.T) {
	var q Queue
	q.Init(8, 0.5)
	const tie = 3.25
	for i := 0; i < 50; i++ {
		q.Enqueue(Event{T: tie, User: int32(i)})
		q.Enqueue(Event{T: tie + 1 + float64(i), User: int32(1000 + i)})
	}
	for i := 0; i < 50; i++ {
		ev, ok := q.DequeueMin()
		if !ok || int(ev.User) != i {
			t.Fatalf("tie %d: got user %d (ok=%v), want %d", i, ev.User, ok, i)
		}
	}
	for i := 0; i < 50; i++ {
		ev, ok := q.DequeueMin()
		if !ok || int(ev.User) != 1000+i {
			t.Fatalf("post-tie %d: got user %d (ok=%v), want %d", i, ev.User, ok, 1000+i)
		}
	}
	if _, ok := q.DequeueMin(); ok {
		t.Fatal("DequeueMin on empty queue reported ok")
	}
}

// TestModelEquivalence drives the calendar queue and the reference
// model through the same randomized operation sequences — enqueues
// (including exact ties and out-of-order earlier times), dequeues, and
// removes — across seeds and load shapes that force both grow and
// shrink rehashes, asserting every dequeued event matches the model's.
func TestModelEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42} {
		for _, span := range []float64{1.0, 1e3, 2e5} {
			rng := randdist.NewRand(seed)
			var q Queue
			q.Init(4, span/64)
			var m model
			var live []uint64 // stamps still queued (candidates for Remove)
			lastT := 0.0
			for op := 0; op < 4000; op++ {
				switch r := rng.Float64(); {
				case r < 0.55 || m.len() == 0:
					ev := Event{T: rng.Float64() * span, User: int32(op)}
					switch {
					case rng.Float64() < 0.15 && m.len() > 0:
						// exact tie with a queued event
						ev.T = m.evs[rng.Intn(m.len())].T
					case rng.Float64() < 0.15:
						// strictly earlier than the last dequeue
						ev.T = lastT * rng.Float64()
					}
					seq := q.Enqueue(ev)
					ev.seq = seq
					m.enqueue(ev)
					live = append(live, seq)
				case r < 0.85:
					got, ok := q.DequeueMin()
					if !ok {
						t.Fatalf("seed %d span %g op %d: queue empty, model has %d", seed, span, op, m.len())
					}
					want := m.popMin()
					if !sameEvent(got, want) {
						t.Fatalf("seed %d span %g op %d: got %+v, want %+v", seed, span, op, got, want)
					}
					lastT = got.T
					live = removeStamp(live, got.seq)
				default:
					if len(live) == 0 {
						continue
					}
					k := rng.Intn(len(live))
					seq := live[k]
					tm := timeOf(&m, seq)
					if got, want := q.Remove(tm, seq), m.remove(seq); got != want {
						t.Fatalf("seed %d span %g op %d: Remove(%d)=%v, model=%v", seed, span, op, seq, got, want)
					}
					live = removeStamp(live, seq)
				}
				if q.Len() != m.len() {
					t.Fatalf("seed %d span %g op %d: Len=%d, model=%d", seed, span, op, q.Len(), m.len())
				}
			}
			// Drain: the full remaining order must match.
			for m.len() > 0 {
				got, ok := q.DequeueMin()
				if !ok {
					t.Fatalf("seed %d span %g drain: queue empty early", seed, span)
				}
				if want := m.popMin(); !sameEvent(got, want) {
					t.Fatalf("seed %d span %g drain: got %+v, want %+v", seed, span, got, want)
				}
			}
			if q.Len() != 0 {
				t.Fatalf("seed %d span %g: %d events left after drain", seed, span, q.Len())
			}
		}
	}
}

func removeStamp(live []uint64, seq uint64) []uint64 {
	for i, s := range live {
		if s == seq {
			live[i] = live[len(live)-1]
			return live[:len(live)-1]
		}
	}
	return live
}

func timeOf(m *model, seq uint64) float64 {
	for i := range m.evs {
		if m.evs[i].seq == seq {
			return m.evs[i].T
		}
	}
	return 0
}

// TestResizeInvariants forces the calendar through its grow and shrink
// cascades and checks the structural invariants after every resize:
// power-of-two bucket count, event conservation, per-bucket ordering
// (tail = minimum), and zeroed slack capacity (bucket recycling leaves
// no stale events behind the length).
func TestResizeInvariants(t *testing.T) {
	rng := randdist.NewRand(9)
	var q Queue
	q.Init(4, 0.25)
	check := func(stage string) {
		t.Helper()
		if nb := len(q.buckets); nb&(nb-1) != 0 || nb < minBuckets {
			t.Fatalf("%s: bucket count %d not a power of two ≥ %d", stage, nb, minBuckets)
		}
		if q.mask != len(q.buckets)-1 {
			t.Fatalf("%s: mask %d != nb-1 %d", stage, q.mask, len(q.buckets)-1)
		}
		n := 0
		for i, b := range q.buckets {
			n += len(b)
			for j := 0; j+1 < len(b); j++ {
				if eventBefore(b[j], b[j+1]) {
					t.Fatalf("%s: bucket %d out of order at %d", stage, i, j)
				}
			}
			slack := b[len(b):cap(b)]
			for j, ev := range slack {
				if ev != (Event{}) {
					t.Fatalf("%s: bucket %d slack slot %d not zeroed: %+v", stage, i, j, ev)
				}
			}
		}
		if n != q.size {
			t.Fatalf("%s: bucket population %d != size %d", stage, n, q.size)
		}
	}
	for i := 0; i < 3000; i++ {
		q.Enqueue(Event{T: rng.Float64() * 1e4, User: int32(i)})
		if i%251 == 0 {
			check("grow")
		}
	}
	grown := len(q.buckets)
	if grown <= minBuckets {
		t.Fatalf("3000 enqueues never grew the calendar (nb=%d)", grown)
	}
	prev := Event{T: math.Inf(-1)}
	for q.Len() > 0 {
		ev, _ := q.DequeueMin()
		if eventBefore(ev, prev) {
			t.Fatalf("drain out of order: %+v after %+v", ev, prev)
		}
		prev = ev
		if q.Len()%397 == 0 {
			check("shrink")
		}
	}
	if len(q.buckets) >= grown {
		t.Fatalf("drain never shrank the calendar (nb=%d, peak %d)", len(q.buckets), grown)
	}
}

// TestInitSanitizesWidth covers the degenerate width hints: NaN, zero,
// negative, and infinities must all still yield a working queue.
func TestInitSanitizesWidth(t *testing.T) {
	for _, w := range []float64{math.NaN(), 0, -3, math.Inf(1), math.Inf(-1), 1e-300, 1e300} {
		var q Queue
		q.Init(8, w)
		q.Enqueue(Event{T: 2, User: 1})
		q.Enqueue(Event{T: 1, User: 2})
		if ev, ok := q.DequeueMin(); !ok || ev.User != 2 {
			t.Fatalf("widthHint %g: first dequeue got %+v (ok=%v)", w, ev, ok)
		}
		if ev, ok := q.DequeueMin(); !ok || ev.User != 1 {
			t.Fatalf("widthHint %g: second dequeue got %+v (ok=%v)", w, ev, ok)
		}
	}
}

// TestRemoveMissing pins Remove's misses: an already-dequeued stamp, a
// never-issued stamp, and an empty queue all report false.
func TestRemoveMissing(t *testing.T) {
	var q Queue
	q.Init(4, 1)
	seq := q.Enqueue(Event{T: 5})
	if !q.Remove(5, seq) {
		t.Fatal("Remove of a queued stamp failed")
	}
	if q.Remove(5, seq) {
		t.Fatal("Remove of a removed stamp succeeded")
	}
	q.Enqueue(Event{T: 1})
	if q.Remove(1, 999) {
		t.Fatal("Remove of a never-issued stamp succeeded")
	}
	q.DequeueMin()
	if q.Remove(1, 2) {
		t.Fatal("Remove on an empty queue succeeded")
	}
}

// TestCursorBoundaryLongRun drives millions of enqueue/dequeue pairs
// with a monotonically growing clock, checking every DequeueMin against
// a small sorted model.  This is the regression test for the cursor
// drift bug: a cursor that carries its window bound as a float
// accumulator (top += width across pops) slides away from the
// ⌊T/width⌋ bucket assignment as the clock grows, and an event landing
// within the accumulated error of a bucket boundary is skipped for a
// full calendar year — here surfacing as an out-of-order pop against
// the model.  The integer virtual-bucket cursor recomputes membership
// with the same division insert hashes with, so no clock magnitude can
// split the two.
func TestCursorBoundaryLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long-run drift sweep")
	}
	rng := randdist.NewRand(99)
	var q Queue
	q.Init(8, 0.5556)

	type mev struct {
		t   float64
		ord int
	}
	var model []mev // sorted ascending by (t, ord); pop from front
	clock := 0.0
	next := 0
	push := func(tm float64) {
		e := mev{t: tm, ord: next}
		q.Enqueue(Event{T: tm, User: int32(next & 0x7fffffff)})
		next++
		i := len(model)
		for i > 0 && (tm < model[i-1].t || (tm == model[i-1].t && e.ord < model[i-1].ord)) {
			i--
		}
		model = append(model, mev{})
		copy(model[i+1:], model[i:])
		model[i] = e
	}
	// Keep a handful pending so pops interleave with inserts landing in
	// nearby and far buckets alike.
	for i := 0; i < 8; i++ {
		push(clock + rng.Float64()*4)
	}
	const steps = 2_000_000
	for i := 0; i < steps; i++ {
		ev, ok := q.DequeueMin()
		if !ok {
			t.Fatalf("step %d: queue empty with %d modeled", i, len(model))
		}
		want := model[0]
		model = model[:copy(model, model[1:])]
		if math.Float64bits(ev.T) != math.Float64bits(want.t) || int(ev.User) != want.ord&0x7fffffff {
			t.Fatalf("step %d (clock %g): popped (T=%v user=%d), model min (T=%v ord=%d)",
				i, clock, ev.T, ev.User, want.t, want.ord)
		}
		if ev.T > clock {
			clock = ev.T
		}
		// Mostly near-future events so the cursor advances steadily;
		// occasionally a far-future one that wraps into a later year.
		gap := rng.ExpFloat64()
		if i%97 == 0 {
			gap += 100 + rng.Float64()*1000
		}
		push(clock + gap)
	}
}

// TestCursorDriftEngineShaped reproduces the DES engines' event-queue
// shape at scale: 10⁵ pending events, most far in the future (next
// arrivals, mean 1.1·10⁵ ahead) plus a near-term stream (completions,
// mean 1 ahead), popped for millions of steps with the clock growing
// past 10⁶.  Every push is at or after the current clock, so the popped
// timestamps must be globally non-decreasing — the cursor-drift bug
// (float window accumulator diverging from the ⌊T/width⌋ assignment as
// the clock grows) surfaces as a boundary event skipped for a whole
// calendar year and popped out of order.
func TestCursorDriftEngineShaped(t *testing.T) {
	if testing.Short() {
		t.Skip("long-run drift sweep")
	}
	rng := randdist.NewRand(5)
	const n = 100_000
	var q Queue
	q.Init(n+1, 1/(2*0.9))
	for i := 0; i < n; i++ {
		q.Enqueue(Event{T: rng.ExpFloat64() * 111111, User: int32(i)})
	}
	prev := 0.0
	clock := 0.0
	const steps = 4_000_000
	for i := 0; i < steps; i++ {
		ev, ok := q.DequeueMin()
		if !ok {
			t.Fatal("queue drained")
		}
		if ev.T < prev {
			t.Fatalf("step %d: popped T=%v after T=%v (clock %g): event was skipped past its year",
				i, ev.T, prev, clock)
		}
		prev = ev.T
		if ev.T > clock {
			clock = ev.T
		}
		if i%2 == 0 {
			q.Enqueue(Event{T: clock + rng.ExpFloat64()*111111, User: int32(i)})
		} else {
			q.Enqueue(Event{T: clock + rng.ExpFloat64(), User: int32(i)})
		}
	}
	if clock < 1e6 {
		t.Fatalf("clock only reached %g; the sweep must cross 1e6 to exercise large-magnitude boundaries", clock)
	}
}
